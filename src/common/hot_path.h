// Hot-path region markers, consumed by shflbw_lint (tools/lint/).
//
// Every kernel inner loop in src/kernels/ is bracketed:
//
//   SHFLBW_HOT_BEGIN;
//   for (std::size_t r = r0; r < r1; ++r) { ... }
//   SHFLBW_HOT_END;
//
// Between the markers the lint bans heap allocation (new/malloc,
// push_back/resize, container construction), locking, I/O and throw —
// the zero-steady-state-allocation contract the kernels have carried
// since PR 1, previously enforced only by review. Scratch buffers are
// prepared (and SHFLBW_CHECKs run) BEFORE the region opens; the region
// body touches only pre-sized memory.
//
// The markers compile to nothing; they exist so the lint can find the
// regions and police balance (nested BEGIN / dangling END / region
// left open at EOF are findings too — rule `hot-marker`). Escape hatch
// for deliberate exceptions, justification required:
//
//   // SHFLBW_LINT_ALLOW(hot-path): why the contract holds anyway
#pragma once

#define SHFLBW_HOT_BEGIN \
  do {                   \
  } while (0)
#define SHFLBW_HOT_END \
  do {                 \
  } while (0)
