// Compile-time lock discipline for the whole stack, built on Clang's
// capability analysis (-Wthread-safety). Every shared field in the
// runtime declares WHICH lock guards it (SHFLBW_GUARDED_BY), every
// private helper declares which locks it assumes held
// (SHFLBW_REQUIRES), and the annotated Mutex / MutexLock / UniqueLock /
// CondVar wrappers below let the analysis track acquisition through
// RAII scopes and condition-variable waits. Under Clang the CI gate
// compiles with -Werror=thread-safety, so a mutex misuse — writing a
// guarded field without the lock, calling a REQUIRES helper unlocked,
// double-acquiring — is a compile error, not a flaky TSan repro. Under
// GCC (which has no capability analysis) every macro expands to
// nothing and the wrappers behave exactly like std::mutex +
// std::lock_guard/std::unique_lock + std::condition_variable_any.
//
// tests/static/probe_*.cpp are negative-compilation probes: CMake
// asserts at configure time (Clang only) that each violation class
// FAILS to compile, so the macros cannot silently rot into no-ops.
//
// ---------------------------------------------------------------------
// GLOBAL MUTEX ACQUISITION ORDER
//
// A thread holding a lock may only acquire locks of strictly greater
// rank. The ranks (and the subsystems that own them):
//
//   kLockRankPool      (10)  WorkerPool::mu_          common/thread_pool.cpp
//   kLockRankServer    (20)  BatchServer::mu_         runtime/server.h
//   kLockRankCache     (30)  PackedWeightCache::mu_   runtime/weight_cache.h
//   kLockRankEvaluator (40)  QualityEvaluator::mu_    quality/quality_evaluator.h
//   kLockRankRegistry  (50)  obs::Registry::mu_       obs/metrics.h
//
// i.e. pool -> server -> cache -> evaluator -> registry. The only
// cross-subsystem nesting today is server -> registry
// (BatchServer::MetricsText refreshes gauges under mu_); everything
// else holds at most one of these locks at a time — kernels run inside
// ParallelFor chunks with NO lock held (the pool mutex is released
// before chunks drain), packing runs under the cache lock but calls
// only lock-free pruners, and the evaluator's mask searches are
// serial. The order is enforced two ways:
//
//   1. SHFLBW_ACQUIRED_BEFORE annotations where a class can name the
//      later lock (checked by Clang under -Wthread-safety-beta).
//   2. A runtime rank assertion, always compiled in: Mutex carries an
//      optional rank, and acquiring a rank <= any rank already held by
//      the calling thread throws shflbw::Error BEFORE blocking — a
//      deterministic report of the would-be deadlock instead of a
//      hang. Disable with -DSHFLBW_LOCK_ORDER_CHECKS=0 if a profile
//      ever shows the (one thread_local vector scan per ranked
//      acquisition) cost; it is noise next to the futex transition.
//
// Adding a lock: pick the rank matching where it may nest, document it
// here, and pass it to the Mutex constructor.
// ---------------------------------------------------------------------
#pragma once

#include <condition_variable>
#include <chrono>
#include <mutex>

#include "common/check.h"

// Attribute plumbing: Clang implements the capability analysis; other
// compilers see empty macros (and the wrappers degrade to plain
// std::mutex semantics).
#if defined(__clang__)
#define SHFLBW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SHFLBW_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define SHFLBW_CAPABILITY(x) SHFLBW_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define SHFLBW_SCOPED_CAPABILITY SHFLBW_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the named capability.
#define SHFLBW_GUARDED_BY(x) SHFLBW_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose POINTEE is protected by the named capability.
#define SHFLBW_PT_GUARDED_BY(x) SHFLBW_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does
/// not release them).
#define SHFLBW_REQUIRES(...) \
  SHFLBW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define SHFLBW_ACQUIRE(...) \
  SHFLBW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define SHFLBW_RELEASE(...) \
  SHFLBW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts acquisition; the first argument is the return
/// value that means success.
#define SHFLBW_TRY_ACQUIRE(...) \
  SHFLBW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (anti-deadlock: the
/// function acquires them itself).
#define SHFLBW_EXCLUDES(...) SHFLBW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// This capability must be acquired before (after) the listed ones.
/// Checked by Clang under -Wthread-safety-beta; the runtime rank
/// assertion below enforces the same order unconditionally.
#define SHFLBW_ACQUIRED_BEFORE(...) \
  SHFLBW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SHFLBW_ACQUIRED_AFTER(...) \
  SHFLBW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SHFLBW_RETURN_CAPABILITY(x) SHFLBW_THREAD_ANNOTATION(lock_returned(x))

/// Assert-at-runtime that the capability is held (teaches the analysis
/// a fact it cannot see, e.g. across an opaque callback boundary).
#define SHFLBW_ASSERT_CAPABILITY(x) \
  SHFLBW_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a comment explaining why the discipline cannot be expressed.
#define SHFLBW_NO_THREAD_SAFETY_ANALYSIS \
  SHFLBW_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Runtime lock-order assertion switch (see header comment). On by
/// default in every build type so the tier-1 suite exercises it.
#ifndef SHFLBW_LOCK_ORDER_CHECKS
#define SHFLBW_LOCK_ORDER_CHECKS 1
#endif

namespace shflbw {

/// The documented global acquisition order (see header comment). Gaps
/// leave room for future locks without renumbering.
inline constexpr int kLockRankPool = 10;
inline constexpr int kLockRankServer = 20;
inline constexpr int kLockRankCache = 30;
inline constexpr int kLockRankEvaluator = 40;
inline constexpr int kLockRankRegistry = 50;
/// Rank of an unordered (leaf, never-nested) mutex: exempt from the
/// order assertion.
inline constexpr int kLockRankUnordered = -1;

namespace lock_order_detail {

/// Ranks of the ordered mutexes this thread currently holds, in
/// acquisition order. Thread-local, so maintenance is race-free.
/// Deliberately a trivially-destructible POD, NOT a std::vector: a
/// vector's TLS destructor runs before atexit-time destructors of
/// process statics (e.g. the worker pool), and a static's destructor
/// locking a ranked mutex would then write into freed storage. The
/// strict ordering bounds the depth at one lock per distinct rank, so
/// a small fixed array loses nothing.
struct HeldRankStack {
  static constexpr int kCapacity = 16;
  int ranks[kCapacity];
  int size = 0;
};

inline HeldRankStack& HeldRanks() {
  thread_local HeldRankStack held;
  return held;
}

/// Throws before a would-be order violation blocks: acquiring rank r
/// is legal only while every held rank is strictly smaller (equal
/// ranks are rejected too — that covers same-mutex recursion, which is
/// UB on std::mutex, and sibling locks that were never meant to nest).
inline void CheckAcquire(int rank) {
  if (rank < 0) return;
  const HeldRankStack& held = HeldRanks();
  for (int i = 0; i < held.size; ++i) {
    SHFLBW_CHECK_MSG(held.ranks[i] < rank,
                     "lock-order violation: acquiring mutex rank "
                         << rank << " while holding rank " << held.ranks[i]
                         << "; the global order is pool(10) -> server(20) -> "
                            "cache(30) -> evaluator(40) -> registry(50) "
                            "(common/thread_annotations.h)");
  }
}

inline void NoteAcquired(int rank) {
  if (rank < 0) return;
  HeldRankStack& held = HeldRanks();
  SHFLBW_CHECK_MSG(held.size < HeldRankStack::kCapacity,
                   "lock-order tracker overflow: " << held.size
                                                   << " ranked locks held");
  held.ranks[held.size++] = rank;
}

inline void NoteReleased(int rank) {
  if (rank < 0) return;
  HeldRankStack& held = HeldRanks();
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.size; ++j) held.ranks[j] = held.ranks[j + 1];
      --held.size;
      return;
    }
  }
}

}  // namespace lock_order_detail

/// std::mutex with a capability annotation (so fields can be
/// SHFLBW_GUARDED_BY it) and an optional lock-order rank. Satisfies
/// Lockable, so std::unique_lock<Mutex> and condition_variable_any
/// work — but prefer MutexLock / UniqueLock below, which the analysis
/// tracks.
class SHFLBW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the global acquisition-order
  /// assertion (see kLockRank*).
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SHFLBW_ACQUIRE() {
#if SHFLBW_LOCK_ORDER_CHECKS
    lock_order_detail::CheckAcquire(rank_);
#endif
    mu_.lock();
#if SHFLBW_LOCK_ORDER_CHECKS
    lock_order_detail::NoteAcquired(rank_);
#endif
  }

  void unlock() SHFLBW_RELEASE() {
#if SHFLBW_LOCK_ORDER_CHECKS
    lock_order_detail::NoteReleased(rank_);
#endif
    mu_.unlock();
  }

  bool try_lock() SHFLBW_TRY_ACQUIRE(true) {
#if SHFLBW_LOCK_ORDER_CHECKS
    lock_order_detail::CheckAcquire(rank_);
#endif
    if (!mu_.try_lock()) return false;
#if SHFLBW_LOCK_ORDER_CHECKS
    lock_order_detail::NoteAcquired(rank_);
#endif
    return true;
  }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  int rank_ = kLockRankUnordered;
};

/// RAII lock held for the full scope (std::lock_guard shape). The
/// analysis sees the capability held from construction to destruction.
class SHFLBW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SHFLBW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SHFLBW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that can be released and reacquired mid-scope
/// (std::unique_lock shape, as the scheduler loops need). The analysis
/// tracks the Unlock()/Lock() state transitions; the destructor
/// releases only if currently held.
class SHFLBW_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SHFLBW_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() SHFLBW_RELEASE() {
    if (held_) mu_.unlock();
  }

  void Unlock() SHFLBW_RELEASE() {
    SHFLBW_CHECK_MSG(held_, "UniqueLock: unlock of a lock not held");
    held_ = false;
    mu_.unlock();
  }

  void Lock() SHFLBW_ACQUIRE() {
    SHFLBW_CHECK_MSG(!held_, "UniqueLock: recursive lock");
    mu_.lock();
    held_ = true;
  }

  bool held() const { return held_; }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable that waits on an annotated Mutex directly (it is
/// Lockable), so wait sites keep their REQUIRES-visible lock. Callers
/// hold `mu` via a surrounding MutexLock/UniqueLock; Wait atomically
/// releases and reacquires it internally, which the analysis —
/// correctly — models as "held before, held after". Predicates access
/// guarded state, so annotate them at the lambda:
///
///   cv.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) { return stop_; });
class CondVar {
 public:
  void Wait(Mutex& mu) SHFLBW_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) SHFLBW_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// wait_for with predicate; true iff the predicate held on return.
  template <typename Predicate>
  bool WaitFor(Mutex& mu, double seconds, Predicate pred) SHFLBW_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds),
                        std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace shflbw
