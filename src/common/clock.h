// Monotonic wall-clock helper shared by the runtime and the benches.
#pragma once

#include <chrono>

namespace shflbw {

/// Seconds on the steady (monotonic) clock; differences are wall-clock
/// durations, the absolute value has no epoch meaning.
inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace shflbw
