// Runtime invariant checking. All public-API precondition failures throw
// shflbw::Error so callers (tests, examples) can observe them; internal
// invariant violations also throw, which keeps the library usable from
// long-running benchmark harnesses without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shflbw {

/// Exception type for all library errors (bad arguments, format violations,
/// shape mismatches).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace shflbw

/// Checks a condition; throws shflbw::Error with location info on failure.
#define SHFLBW_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::shflbw::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, "");   \
  } while (0)

/// Checks a condition with a streamed message, e.g.
/// SHFLBW_CHECK_MSG(m > 0, "rows must be positive, got " << m);
#define SHFLBW_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream shflbw_check_os;                                   \
      shflbw_check_os << stream_expr;                                       \
      ::shflbw::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,        \
                                          shflbw_check_os.str());           \
    }                                                                       \
  } while (0)
