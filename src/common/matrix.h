// Dense row-major matrix container used throughout the library.
//
// The paper assumes row-major dense activations ("we make batch the
// innermost dimension", §4.3); this container is the canonical carrier for
// weights (M x K), activations (K x N) and outputs (M x N).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/fp16.h"

namespace shflbw {

/// Row-major dense matrix. Value type is typically float (master weights,
/// importance scores) or Fp16 (kernel operands).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, T init = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, init) {
    SHFLBW_CHECK_MSG(rows >= 0 && cols >= 0,
                     "negative shape " << rows << "x" << cols);
  }
  Matrix(int rows, int cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    SHFLBW_CHECK_MSG(
        data_.size() == static_cast<std::size_t>(rows) * cols,
        "data size " << data_.size() << " != " << rows << "*" << cols);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  /// Re-shapes in place to rows x cols, reusing storage capacity where
  /// possible. The logical extent is always exactly rows*cols — growing
  /// value-initializes the new elements and shrinking drops the tail —
  /// so a scratch buffer cycled through mixed shapes (e.g. fused-batch
  /// activations of varying width) can never expose stale tail data to
  /// stats or normalization passes. Surviving contents are meaningless
  /// after a shape change; callers overwrite every element.
  void Reshape(int rows, int cols) {
    SHFLBW_CHECK_MSG(rows >= 0 && cols >= 0,
                     "negative shape " << rows << "x" << cols);
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * cols);
  }

  T& at(int r, int c) {
    SHFLBW_CHECK_MSG(InBounds(r, c), "(" << r << "," << c << ") out of "
                                         << rows_ << "x" << cols_);
    return data_[Index(r, c)];
  }
  const T& at(int r, int c) const {
    SHFLBW_CHECK_MSG(InBounds(r, c), "(" << r << "," << c << ") out of "
                                         << rows_ << "x" << cols_);
    return data_[Index(r, c)];
  }
  /// Unchecked access for inner loops.
  T& operator()(int r, int c) { return data_[Index(r, c)]; }
  const T& operator()(int r, int c) const { return data_[Index(r, c)]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(int r) { return data_.data() + Index(r, 0); }
  const T* row(int r) const { return data_.data() + Index(r, 0); }

  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  bool InBounds(int r, int c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }
  std::size_t Index(int r, int c) const {
    return static_cast<std::size_t>(r) * cols_ + c;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// Lossy elementwise conversion float -> fp16 (round-to-nearest-even).
inline Matrix<Fp16> ToFp16(const Matrix<float>& m) {
  Matrix<Fp16> out(m.rows(), m.cols());
  EncodeRows(m.data(), out.data(), m.size());
  return out;
}

/// Elementwise fp16 round-trip: every entry is rounded to fp16 and
/// widened back, yielding the values a tensor-core fragment load would
/// observe. Kernels pre-round whole operands once with this so their
/// inner loops run pure float FMA.
inline Matrix<float> RoundThroughFp16(const Matrix<float>& m) {
  Matrix<float> out(m.rows(), m.cols());
  RoundRows(m.data(), out.data(), m.size());
  return out;
}

/// Exact elementwise widening fp16 -> float.
inline Matrix<float> ToFloat(const Matrix<Fp16>& m) {
  Matrix<float> out(m.rows(), m.cols());
  DecodeRows(m.data(), out.data(), m.size());
  return out;
}

/// Number of non-zero entries.
inline std::size_t CountNonZeros(const Matrix<float>& m) {
  return static_cast<std::size_t>(
      std::count_if(m.storage().begin(), m.storage().end(),
                    [](float v) { return v != 0.0f; }));
}

/// Fraction of zero entries in [0, 1].
inline double Sparsity(const Matrix<float>& m) {
  if (m.size() == 0) return 0.0;
  return 1.0 - static_cast<double>(CountNonZeros(m)) /
                   static_cast<double>(m.size());
}

/// Max |a - b| over all entries; shapes must match.
inline float MaxAbsDiff(const Matrix<float>& a, const Matrix<float>& b) {
  SHFLBW_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a.storage()[i] - b.storage()[i]));
  }
  return worst;
}

}  // namespace shflbw
