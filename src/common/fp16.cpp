#include "common/fp16.h"

#include <array>
#include <bit>
#include <cstring>
#include <ostream>

namespace shflbw {
namespace {

std::uint32_t FloatBits(float f) { return std::bit_cast<std::uint32_t>(f); }

}  // namespace

std::uint16_t Fp16::FromFloat(float f) {
  const std::uint32_t x = FloatBits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN. Preserve NaN-ness with a quiet mantissa bit.
    const std::uint32_t mantissa = (abs > 0x7F800000u) ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | mantissa);
  }
  if (abs >= 0x477FF000u) {
    // Rounds to a magnitude >= 65520 -> fp16 infinity.
    // (0x477FF000 is 65520.0f, the smallest float that rounds to inf.)
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal fp16 (or zero): |f| < 2^-14. Align mantissa to a fixed
    // binary point and round-to-nearest-even.
    if (abs < 0x33000000u) {
      // Below half of the smallest subnormal (2^-25): rounds to zero.
      return static_cast<std::uint16_t>(sign);
    }
    // Result = round(value / 2^-24) subnormal units. With the implicit
    // leading bit, value = m * 2^(exp-150), so units = m * 2^(exp-126):
    // discard (126 - exp) bits with round-to-nearest-even.
    const int exp = static_cast<int>(abs >> 23);
    const std::uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
    const int shift = 126 - exp;
    const std::uint32_t kept = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = kept;
    if (rem > half || (rem == half && (kept & 1u))) ++rounded;
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal range. Re-bias exponent from 127 to 15, keep 10 mantissa bits,
  // round-to-nearest-even (carry may overflow into the exponent, which is
  // exactly what we want).
  const std::uint32_t mant = abs & 0x7FFFFFu;
  const std::uint32_t exp16 = ((abs >> 23) - 127 + 15) << 10;
  const std::uint32_t kept = mant >> 13;
  const std::uint32_t rem = mant & 0x1FFFu;
  std::uint32_t h = exp16 | kept;
  if (rem > 0x1000u || (rem == 0x1000u && (kept & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

namespace detail {
namespace {

constexpr std::array<float, 65536> BuildDecodeTable() {
  std::array<float, 65536> t{};
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    t[b] = Fp16::DecodeReference(static_cast<std::uint16_t>(b));
  }
  return t;
}

}  // namespace

// `constinit` guarantees the table is built at compile time (no dynamic
// initializer), so it is valid during any other translation unit's
// static initialization — no init-order hazard for the inline ToFloat().
alignas(64) constinit const std::array<float, 65536> kFp16DecodeTable =
    BuildDecodeTable();

}  // namespace detail

std::ostream& operator<<(std::ostream& os, Fp16 h) {
  return os << h.ToFloat();
}

}  // namespace shflbw
