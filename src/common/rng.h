// Deterministic random number generation for reproducible experiments.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/matrix.h"

namespace shflbw {

/// Thin wrapper over std::mt19937_64 with convenience samplers. All
/// experiments seed explicitly so every table/figure is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : gen_(seed) {}

  std::mt19937_64& engine() { return gen_; }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(gen_);
  }
  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }
  /// Normal with the given mean/stddev.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Dense matrix with iid N(mean, stddev) entries.
  Matrix<float> NormalMatrix(int rows, int cols, float mean = 0.0f,
                             float stddev = 1.0f) {
    Matrix<float> m(rows, cols);
    for (auto& v : m.storage()) {
      v = static_cast<float>(Normal(mean, stddev));
    }
    return m;
  }

  /// Dense matrix with iid U[lo, hi) entries.
  Matrix<float> UniformMatrix(int rows, int cols, float lo = -1.0f,
                              float hi = 1.0f) {
    Matrix<float> m(rows, cols);
    for (auto& v : m.storage()) {
      v = static_cast<float>(Uniform(lo, hi));
    }
    return m;
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Matrix where each entry is kept (N(0,1)) with probability `density`
  /// and zero otherwise — an unstructured-sparse weight generator.
  Matrix<float> SparseMatrix(int rows, int cols, double density);

 private:
  std::mt19937_64 gen_;
};

}  // namespace shflbw
