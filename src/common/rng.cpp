#include "common/rng.h"

#include <numeric>

namespace shflbw {

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  std::shuffle(p.begin(), p.end(), gen_);
  return p;
}

Matrix<float> Rng::SparseMatrix(int rows, int cols, double density) {
  SHFLBW_CHECK_MSG(density >= 0.0 && density <= 1.0,
                   "density " << density << " outside [0,1]");
  Matrix<float> m(rows, cols);
  for (auto& v : m.storage()) {
    v = Bernoulli(density) ? static_cast<float>(Normal()) : 0.0f;
  }
  return m;
}

}  // namespace shflbw
