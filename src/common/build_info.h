// Build provenance: the compile-time facts stamped into every
// BENCH_*.json (so tools/benchdiff can label the runs it compares) and
// into the statusz build section. The values come from CMake via
// per-file compile definitions on build_info.cpp only — changing the
// git sha recompiles one translation unit, not the tree.
#pragma once

#include <string>

namespace shflbw {

struct BuildInfo {
  std::string git_sha;     ///< `git rev-parse --short HEAD` at configure,
                           ///< or "unknown" outside a git checkout.
  std::string compiler;    ///< __VERSION__ of the compiler that built this.
  std::string build_type;  ///< CMAKE_BUILD_TYPE ("" for multi-config).
  std::string cxx_flags;   ///< CMAKE_CXX_FLAGS as configured.
  long cxx_standard = 0;   ///< __cplusplus of the build.
  bool obs_compiled_in = false;  ///< SHFLBW_OBS state of this binary.
};

/// The process's build info; constructed once, immutable after.
const BuildInfo& GetBuildInfo();

}  // namespace shflbw
