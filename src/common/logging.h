// Minimal leveled logging to stderr; benches use it for progress lines.
#pragma once

#include <sstream>
#include <string>

namespace shflbw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void LogLine(LogLevel level, const std::string& msg);
}

}  // namespace shflbw

#define SHFLBW_LOG(level, stream_expr)                                   \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::shflbw::GetLogLevel())) {                     \
      std::ostringstream shflbw_log_os;                                  \
      shflbw_log_os << stream_expr;                                      \
      ::shflbw::detail::LogLine(level, shflbw_log_os.str());             \
    }                                                                    \
  } while (0)

#define SHFLBW_INFO(stream_expr) \
  SHFLBW_LOG(::shflbw::LogLevel::kInfo, stream_expr)
#define SHFLBW_WARN(stream_expr) \
  SHFLBW_LOG(::shflbw::LogLevel::kWarn, stream_expr)
#define SHFLBW_DEBUG(stream_expr) \
  SHFLBW_LOG(::shflbw::LogLevel::kDebug, stream_expr)
