#include "common/build_info.h"

#include "obs/obs_config.h"

// CMake stamps these three onto this file alone (see the
// set_source_files_properties block in CMakeLists.txt); the fallbacks
// keep the file buildable outside CMake (IDE indexers, tooling).
#ifndef SHFLBW_GIT_SHA
#define SHFLBW_GIT_SHA "unknown"
#endif
#ifndef SHFLBW_BUILD_TYPE
#define SHFLBW_BUILD_TYPE ""
#endif
#ifndef SHFLBW_CXX_FLAGS
#define SHFLBW_CXX_FLAGS ""
#endif

namespace shflbw {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_sha = SHFLBW_GIT_SHA;
    b.compiler = __VERSION__;
    b.build_type = SHFLBW_BUILD_TYPE;
    b.cxx_flags = SHFLBW_CXX_FLAGS;
    b.cxx_standard = __cplusplus;
    b.obs_compiled_in = obs::kCompiledIn;
    return b;
  }();
  return info;
}

}  // namespace shflbw
