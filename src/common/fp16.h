// IEEE 754 binary16 (half precision) software emulation.
//
// The paper's kernels run in half precision on tensor-cores (fp16 inputs,
// fp32 accumulation, as the NVIDIA mma.sync instruction does). Since this
// build targets CPUs without native _Float16 guarantees, we emulate fp16
// with explicit bit-level conversion. Arithmetic is performed in float and
// rounded back through the fp16 format, matching the value semantics of
// loading an fp16 operand into a tensor-core fragment.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace shflbw {

/// Half-precision float stored as its 16-bit pattern. Round-to-nearest-even
/// on conversion from float. Supports subnormals, infinities and NaN.
class Fp16 {
 public:
  constexpr Fp16() = default;
  /// Converts from float with round-to-nearest-even.
  explicit Fp16(float f) : bits_(FromFloat(f)) {}

  /// Reinterprets a raw 16-bit pattern as an Fp16.
  static constexpr Fp16 FromBits(std::uint16_t bits) {
    Fp16 h;
    h.bits_ = bits;
    return h;
  }

  /// Widens to float (exact: every fp16 value is representable in fp32).
  float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  constexpr std::uint16_t bits() const { return bits_; }

  bool IsNan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  bool IsInf() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) == 0;
  }
  bool IsZero() const { return (bits_ & 0x7FFFu) == 0; }

  /// Bit-exact comparison except that +0 == -0 and NaN != NaN.
  friend bool operator==(Fp16 a, Fp16 b) {
    if (a.IsNan() || b.IsNan()) return false;
    if (a.IsZero() && b.IsZero()) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Fp16 a, Fp16 b) { return !(a == b); }

  friend Fp16 operator+(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() + b.ToFloat());
  }
  friend Fp16 operator-(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() - b.ToFloat());
  }
  friend Fp16 operator*(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() * b.ToFloat());
  }
  friend Fp16 operator/(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() / b.ToFloat());
  }
  Fp16 operator-() const { return FromBits(bits_ ^ 0x8000u); }

 private:
  static std::uint16_t FromFloat(float f);
  static float ToFloatImpl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Fp16 h);

/// Fused multiply-accumulate in fp32, as tensor-core MMA accumulates:
/// fp16 operands are widened exactly, the product and sum are fp32.
inline float FmaF16F32(Fp16 a, Fp16 b, float acc) {
  return acc + a.ToFloat() * b.ToFloat();
}

}  // namespace shflbw
