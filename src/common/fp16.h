// IEEE 754 binary16 (half precision) software emulation.
//
// The paper's kernels run in half precision on tensor-cores (fp16 inputs,
// fp32 accumulation, as the NVIDIA mma.sync instruction does). Since this
// build targets CPUs without native _Float16 guarantees, we emulate fp16
// with explicit bit-level conversion. Arithmetic is performed in float and
// rounded back through the fp16 format, matching the value semantics of
// loading an fp16 operand into a tensor-core fragment.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace shflbw {

namespace detail {
/// 65536-entry fp16 -> fp32 decode table. Constant-initialized (the
/// initializer is a constexpr call), so it is valid before any dynamic
/// initialization runs and Fp16::ToFloat() is a single indexed load.
extern const std::array<float, 65536> kFp16DecodeTable;
}  // namespace detail

/// Half-precision float stored as its 16-bit pattern. Round-to-nearest-even
/// on conversion from float. Supports subnormals, infinities and NaN.
class Fp16 {
 public:
  constexpr Fp16() = default;
  /// Converts from float with round-to-nearest-even.
  explicit Fp16(float f) : bits_(FromFloat(f)) {}

  /// Reinterprets a raw 16-bit pattern as an Fp16.
  static constexpr Fp16 FromBits(std::uint16_t bits) {
    Fp16 h;
    h.bits_ = bits;
    return h;
  }

  /// Widens to float (exact: every fp16 value is representable in fp32).
  /// Table lookup — the hot-path decode used inside kernel loops.
  float ToFloat() const { return detail::kFp16DecodeTable[bits_]; }
  explicit operator float() const { return ToFloat(); }

  /// Arithmetic (bit-manipulation) decoder the table is built from.
  /// Slow path; exists so tests can prove the table matches it
  /// bit-for-bit over every pattern, and so benchmarks can replicate
  /// the pre-table hot path.
  static constexpr float DecodeReference(std::uint16_t bits) {
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u)
                               << 16;
    const std::uint32_t exp = (bits >> 10) & 0x1Fu;
    const std::uint32_t mant = bits & 0x3FFu;

    if (exp == 0x1Fu) {  // Inf / NaN
      return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13));
    }
    if (exp == 0) {
      if (mant == 0) return std::bit_cast<float>(sign);  // +-0
      // Subnormal: value = mant * 2^-24. Normalize into fp32.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const std::uint32_t exp32 = (127 - 15 - e) << 23;
      return std::bit_cast<float>(sign | exp32 | ((m & 0x3FFu) << 13));
    }
    const std::uint32_t exp32 = (exp - 15 + 127) << 23;
    return std::bit_cast<float>(sign | exp32 | (mant << 13));
  }

  constexpr std::uint16_t bits() const { return bits_; }

  bool IsNan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  bool IsInf() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) == 0;
  }
  bool IsZero() const { return (bits_ & 0x7FFFu) == 0; }

  /// Bit-exact comparison except that +0 == -0 and NaN != NaN.
  friend bool operator==(Fp16 a, Fp16 b) {
    if (a.IsNan() || b.IsNan()) return false;
    if (a.IsZero() && b.IsZero()) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Fp16 a, Fp16 b) { return !(a == b); }

  friend Fp16 operator+(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() + b.ToFloat());
  }
  friend Fp16 operator-(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() - b.ToFloat());
  }
  friend Fp16 operator*(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() * b.ToFloat());
  }
  friend Fp16 operator/(Fp16 a, Fp16 b) {
    return Fp16(a.ToFloat() / b.ToFloat());
  }
  Fp16 operator-() const { return FromBits(bits_ ^ 0x8000u); }

 private:
  static std::uint16_t FromFloat(float f);

  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Fp16 h);

/// Fused multiply-accumulate in fp32, as tensor-core MMA accumulates:
/// fp16 operands are widened exactly, the product and sum are fp32.
inline float FmaF16F32(Fp16 a, Fp16 b, float acc) {
  return acc + a.ToFloat() * b.ToFloat();
}

/// Batch decode: widens n fp16 values into a contiguous float array
/// (table lookups). Used to hoist operand decoding out of MMA loops.
inline void DecodeRows(const Fp16* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i].ToFloat();
}

/// Batch encode: rounds n floats to fp16 (round-to-nearest-even).
inline void EncodeRows(const float* src, Fp16* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = Fp16(src[i]);
}

/// The value a tensor-core fragment load observes for a float operand:
/// rounded to fp16, then widened exactly.
inline float RoundToFp16(float f) { return Fp16(f).ToFloat(); }

/// Batch fused round-trip (EncodeRows + DecodeRows without the staging
/// array): fp16-rounds n floats in place of the fragment load.
inline void RoundRows(const float* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = RoundToFp16(src[i]);
}

}  // namespace shflbw
