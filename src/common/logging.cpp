#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace shflbw {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void LogLine(LogLevel level, const std::string& msg) {
  std::cerr << "[shflbw " << LevelName(level) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace shflbw
