// Fork-join parallelism for the functional kernel simulators.
//
// The paper's kernels expose their parallelism as independent output
// tiles: every (row-group x column-tile) pair can retire on any SM in
// any order because output regions are disjoint (§4.1). ParallelFor is
// the CPU analogue — a work queue of [begin, end) index chunks drained
// by a team of std::threads. Callers must guarantee that distinct
// indices touch disjoint output, which also makes the parallel result
// bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <functional>

namespace shflbw {

/// Number of worker threads ParallelFor will use, resolved in priority
/// order: SetParallelThreads override > SHFLBW_NUM_THREADS env var >
/// std::thread::hardware_concurrency() (never less than 1).
int ParallelThreadCount();

/// Programmatic thread-count override (takes precedence over the env
/// var). Pass 0 to clear the override and return to env/auto detection.
/// Used by benchmarks and the determinism tests to sweep thread counts.
void SetParallelThreads(int n);

/// Runs fn over [begin, end) split into chunks of at most `grain`
/// indices. Chunks are handed out dynamically (atomic counter), so the
/// schedule load-balances ragged work; fn(lo, hi) receives a half-open
/// subrange. Runs serially (on the calling thread, no pool traffic) when
/// the resolved thread count is 1 or the range fits in a single chunk.
/// The first exception thrown by any chunk is rethrown on the caller.
///
/// Workers come from a process-wide lazily-grown persistent pool: the
/// first region that asks for N threads spawns the missing workers, and
/// they park on a condition variable between regions. This keeps worker
/// thread_local scratch (the VW-family stage buffers) alive across the
/// many small kernel launches a multi-layer inference run issues, and
/// removes the per-call spawn/join cost the runtime engine would
/// otherwise pay per layer. Thread-count changes between calls still
/// work (a region only wakes as many workers as it resolved); nested
/// ParallelFor calls from inside a region run serially on the calling
/// worker, so kernels stay composable with outer-level parallelism.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace shflbw
