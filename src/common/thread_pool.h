// Fork-join parallelism for the functional kernel simulators.
//
// The paper's kernels expose their parallelism as independent output
// tiles: every (row-group x column-tile) pair can retire on any SM in
// any order because output regions are disjoint (§4.1). ParallelFor is
// the CPU analogue — a work queue of [begin, end) index chunks drained
// by a team of std::threads. Callers must guarantee that distinct
// indices touch disjoint output, which also makes the parallel result
// bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <functional>

namespace shflbw {

/// Number of worker threads ParallelFor will use, resolved in priority
/// order: SetParallelThreads override > SHFLBW_NUM_THREADS env var >
/// std::thread::hardware_concurrency() (never less than 1).
int ParallelThreadCount();

/// Programmatic thread-count override (takes precedence over the env
/// var). Pass 0 to clear the override and return to env/auto detection.
/// Used by benchmarks and the determinism tests to sweep thread counts.
///
/// Contract: the argument is clamped to [0, 1024]. Negative values are
/// treated as 0 (clear the override, never an error), and values above
/// 1024 are capped — the same bound applied to SHFLBW_NUM_THREADS — so
/// no caller can demand an absurd worker pool. The effective count
/// ParallelThreadCount() returns is therefore always >= 1.
void SetParallelThreads(int n);

/// Runs fn over [begin, end) split into chunks of at most `grain`
/// indices. Chunks are handed out dynamically (atomic counter), so the
/// schedule load-balances ragged work; fn(lo, hi) receives a half-open
/// subrange. Runs serially (on the calling thread, no pool traffic) when
/// the resolved thread count is 1 or the range fits in a single chunk.
/// The first exception thrown by any chunk is rethrown on the caller.
///
/// Workers come from a process-wide lazily-grown persistent pool: the
/// first region that asks for N threads spawns the missing workers, and
/// they park on a condition variable between regions. This keeps worker
/// thread_local scratch (the VW-family stage buffers) alive across the
/// many small kernel launches a multi-layer inference run issues, and
/// removes the per-call spawn/join cost the runtime engine would
/// otherwise pay per layer. Thread-count changes between calls still
/// work (a region only claims as many workers as it resolved); nested
/// ParallelFor calls from inside a region run serially on the calling
/// worker, so kernels stay composable with outer-level parallelism.
///
/// Concurrent callers partition the pool instead of serializing: each
/// region claims a disjoint subset of the idle workers at entry, capped
/// at its proportional share max(1, pool_capacity / active_regions), so
/// R simultaneous callers (e.g. BatchServer replicas) genuinely run
/// side by side on ~capacity/R workers each. A region that finds the
/// pool fully claimed runs on its calling thread alone; shares
/// rebalance at every region entry, so short frequent regions converge
/// to the proportional split. Outputs stay bit-identical to serial
/// regardless of how workers are partitioned, because chunk index — not
/// worker identity — determines what is computed.
///
/// Liveness: every parallel region registers a heartbeat slot in
/// obs::GlobalHeartbeats() ("parallel_for") and beats it once per
/// retired chunk, so a watchdog (obs/watchdog.h) can distinguish a
/// region wedged inside kernel code from a scheduler stall. Serial
/// fallbacks publish nothing.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Point-in-time view of the process-wide worker pool, for telemetry
/// (obs::Telemetry publishes these as gauges). Cheap — one acquisition
/// of the pool mutex (rank kLockRankPool, the OUTERMOST rank; see
/// common/thread_annotations.h for the global order); safe to call at
/// any time.
struct PoolStats {
  /// Workers spawned so far (the pool never shrinks).
  int workers = 0;
  /// ParallelFor regions currently executing inside the pool.
  int active_regions = 0;
  /// Total parallel regions the pool has run since process start
  /// (serial fallbacks — single-chunk or nested calls — not counted).
  std::uint64_t regions_entered = 0;
};

PoolStats GetPoolStats();

}  // namespace shflbw
