// Fork-join parallelism for the functional kernel simulators.
//
// The paper's kernels expose their parallelism as independent output
// tiles: every (row-group x column-tile) pair can retire on any SM in
// any order because output regions are disjoint (§4.1). ParallelFor is
// the CPU analogue — a work queue of [begin, end) index chunks drained
// by a team of std::threads. Callers must guarantee that distinct
// indices touch disjoint output, which also makes the parallel result
// bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <functional>

namespace shflbw {

/// Number of worker threads ParallelFor will use, resolved in priority
/// order: SetParallelThreads override > SHFLBW_NUM_THREADS env var >
/// std::thread::hardware_concurrency() (never less than 1).
int ParallelThreadCount();

/// Programmatic thread-count override (takes precedence over the env
/// var). Pass 0 to clear the override and return to env/auto detection.
/// Used by benchmarks and the determinism tests to sweep thread counts.
void SetParallelThreads(int n);

/// Runs fn over [begin, end) split into chunks of at most `grain`
/// indices. Chunks are handed out dynamically (atomic counter), so the
/// schedule load-balances ragged work; fn(lo, hi) receives a half-open
/// subrange. Runs serially (on the calling thread, no spawn) when the
/// resolved thread count is 1 or the range fits in a single chunk.
/// The first exception thrown by any chunk is rethrown on the caller.
///
/// Workers are forked per call and joined before return (no persistent
/// pool): kernel invocations are ms-scale, so spawn cost is noise there,
/// and a fork-join lifetime keeps thread-count changes (env/override
/// between calls) and error handling trivial. If profiles ever show the
/// spawn dominating (many tiny layers per forward pass), a lazily-grown
/// persistent pool can replace the internals behind this same signature.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace shflbw
