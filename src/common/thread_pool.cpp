#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace shflbw {
namespace {

std::atomic<int> g_thread_override{0};

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int EnvThreads() {
  const char* s = std::getenv("SHFLBW_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 1) return 0;  // malformed or non-positive: ignore
  return static_cast<int>(std::min<long>(v, 1024));
}

/// One parallel region: a chunked [begin, end) range drained through an
/// atomic claim counter by the caller and any pool workers assigned to
/// its partition.
struct Job {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  /// Pool workers currently assigned to this job (guarded by the pool
  /// mutex). The caller waits for it to reach zero before returning, so
  /// no worker still references the stack-allocated Job afterwards.
  int attached = 0;

  void Drain() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};

/// True on threads that must not re-enter the pool: pool workers (a
/// nested ParallelFor inside a chunk would deadlock waiting on workers
/// that are all busy in the outer region) and callers already inside a
/// parallel region on this thread.
thread_local bool t_in_parallel_region = false;

/// Lazily-grown persistent worker pool with region partitioning.
/// Workers are spawned the first time a region asks for them, then
/// parked between regions, so worker thread_local scratch (the
/// VW-family stage buffers and accumulators) survives across the many
/// small kernel launches a multi-layer inference run issues.
///
/// Concurrent ParallelFor regions do NOT serialize: each region claims
/// a disjoint subset of the idle workers at entry — its partition — and
/// only those workers drain its chunks. The claim is capped at the
/// region's proportional share of the pool, max(1, capacity / active
/// regions), so R concurrent callers (the BatchServer's replicas) each
/// keep roughly capacity/R workers instead of the first caller starving
/// the rest. A region that arrives while the pool is fully claimed
/// simply runs on its calling thread (its partition is empty) — regions
/// are short and frequent, so shares rebalance at the next region
/// entry. A worker serves exactly one job at a time, which is what
/// makes the partitions disjoint by construction.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  PoolStats Stats() {
    std::lock_guard<std::mutex> lock(mu_);
    PoolStats s;
    s.workers = static_cast<int>(workers_.size());
    s.active_regions = active_regions_;
    s.regions_entered = regions_entered_;
    return s;
  }

  /// Runs `job` with up to `extra_workers` pool workers assisting the
  /// calling thread; fewer (possibly zero) join when other regions hold
  /// part of the pool. Returns once every chunk has retired and no
  /// assigned worker still references `job`.
  void Run(Job& job, int extra_workers) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_regions_;
      ++regions_entered_;
      Grow(extra_workers);
      const int capacity = static_cast<int>(slots_.size());
      const int fair_share = std::max(1, capacity / active_regions_);
      int claim = std::min(extra_workers, fair_share);
      for (std::size_t i = 0; i < slots_.size() && claim > 0; ++i) {
        if (slots_[i].job == nullptr) {
          slots_[i].job = &job;
          ++job.attached;
          --claim;
        }
      }
    }
    cv_.notify_all();
    t_in_parallel_region = true;
    job.Drain();
    t_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(mu_);
    // Reclaim workers that never woke up: their slot still points at
    // this job but `started` is false, so when they do wake the cleared
    // slot keeps them parked. The caller then only waits for workers
    // that actually entered the region (matters for tiny regions whose
    // chunks all retire before the wakeups land).
    for (Slot& slot : slots_) {
      if (slot.job == &job && !slot.started) {
        slot.job = nullptr;
        --job.attached;
      }
    }
    done_cv_.wait(lock, [&] { return job.attached == 0; });
    --active_regions_;
  }

 private:
  /// Assignment slot of one worker: the job its partition belongs to
  /// (nullptr when idle) and whether the worker has woken up and
  /// entered that job. Guarded by mu_.
  struct Slot {
    Job* job = nullptr;
    bool started = false;
  };

  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& th : workers_) th.join();
  }

  /// Spawns workers until `wanted` exist (never shrinks). Thread
  /// exhaustion degrades to however many workers spawned — the caller
  /// drains too, so the region still completes.
  void Grow(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted) {
      try {
        const int index = static_cast<int>(workers_.size());
        slots_.resize(workers_.size() + 1);
        workers_.emplace_back([this, index] { WorkerLoop(index); });
      } catch (const std::system_error&) {
        slots_.resize(workers_.size());
        break;
      }
    }
  }

  void WorkerLoop(int index) {
    t_in_parallel_region = true;  // nested ParallelFor runs serially
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || slots_[index].job != nullptr; });
      if (stop_) return;
      Job* job = slots_[index].job;
      slots_[index].started = true;
      lock.unlock();
      job->Drain();
      lock.lock();
      slots_[index].job = nullptr;
      slots_[index].started = false;
      if (--job->attached == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;  // guards everything below
  std::condition_variable cv_;       // workers wait for an assignment
  std::condition_variable done_cv_;  // callers wait for attached == 0
  std::vector<std::thread> workers_;
  std::vector<Slot> slots_;  // slots_[i] belongs to workers_[i]
  int active_regions_ = 0;   // concurrent Run calls, for the fair share
  std::uint64_t regions_entered_ = 0;  // lifetime total, for PoolStats
  bool stop_ = false;
};

}  // namespace

int ParallelThreadCount() {
  const int forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetParallelThreads(int n) {
  // Clamp to [0, 1024]: negative requests mean "no override" (0), and
  // the upper bound matches the env-var cap so neither path can demand
  // an absurd pool.
  g_thread_override.store(std::clamp(n, 0, 1024), std::memory_order_relaxed);
}

PoolStats GetPoolStats() { return WorkerPool::Instance().Stats(); }

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<std::int64_t>(ParallelThreadCount(), chunks));
  if (threads <= 1 || t_in_parallel_region) {
    fn(begin, end);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.grain = grain;
  job.end = end;
  job.chunks = chunks;
  WorkerPool::Instance().Run(job, threads - 1);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace shflbw
