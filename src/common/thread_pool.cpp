#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/watchdog.h"

namespace shflbw {
namespace {

std::atomic<int> g_thread_override{0};

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int EnvThreads() {
  // getenv without setenv anywhere in the process is benign; the
  // NOLINT is for concurrency-mt-unsafe, which cannot see that no
  // writer exists.
  const char* s = std::getenv("SHFLBW_NUM_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 1) return 0;  // malformed or non-positive: ignore
  return static_cast<int>(std::min<long>(v, 1024));
}

/// One parallel region: a chunked [begin, end) range drained through an
/// atomic claim counter by the caller and any pool workers assigned to
/// its partition.
struct Job {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  Mutex error_mu;
  std::exception_ptr error SHFLBW_GUARDED_BY(error_mu);
  /// Pool workers currently assigned to this job. Guarded by the pool
  /// mutex (WorkerPool::mu_ — not nameable from here, so no
  /// SHFLBW_GUARDED_BY; every access site sits inside a WorkerPool
  /// method that REQUIRES(mu_)). The caller waits for it to reach zero
  /// before returning, so no worker still references the
  /// stack-allocated Job afterwards.
  int attached = 0;
  /// Region heartbeat slot in obs::GlobalHeartbeats() (-1 = none):
  /// every retired chunk beats it, so a wedged region shows a stale
  /// heartbeat and the watchdog can tell "stuck in a kernel" from
  /// "stuck in the scheduler". Registered/armed by ParallelFor.
  int heartbeat_slot = -1;

  void Drain() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        MutexLock lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
      obs::GlobalHeartbeats().Beat(heartbeat_slot, NowSeconds());
    }
  }

  /// First captured exception, if any. Called by ParallelFor after the
  /// pool reports attached == 0 (so no worker is still writing).
  std::exception_ptr TakeError() SHFLBW_EXCLUDES(error_mu) {
    MutexLock lock(error_mu);
    return error;
  }
};

/// True on threads that must not re-enter the pool: pool workers (a
/// nested ParallelFor inside a chunk would deadlock waiting on workers
/// that are all busy in the outer region) and callers already inside a
/// parallel region on this thread.
thread_local bool t_in_parallel_region = false;

/// Lazily-grown persistent worker pool with region partitioning.
/// Workers are spawned the first time a region asks for them, then
/// parked between regions, so worker thread_local scratch (the
/// VW-family stage buffers and accumulators) survives across the many
/// small kernel launches a multi-layer inference run issues.
///
/// Concurrent ParallelFor regions do NOT serialize: each region claims
/// a disjoint subset of the idle workers at entry — its partition — and
/// only those workers drain its chunks. The claim is capped at the
/// region's proportional share of the pool, max(1, capacity / active
/// regions), so R concurrent callers (the BatchServer's replicas) each
/// keep roughly capacity/R workers instead of the first caller starving
/// the rest. A region that arrives while the pool is fully claimed
/// simply runs on its calling thread (its partition is empty) — regions
/// are short and frequent, so shares rebalance at the next region
/// entry. A worker serves exactly one job at a time, which is what
/// makes the partitions disjoint by construction.
///
/// Lock discipline: mu_ is rank kLockRankPool — the OUTERMOST rank —
/// but is never held while a chunk executes (both the caller and the
/// workers release it before Job::Drain), so kernel code runs
/// lock-free and may touch any other subsystem.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  PoolStats Stats() SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    PoolStats s;
    s.workers = static_cast<int>(workers_.size());
    s.active_regions = active_regions_;
    s.regions_entered = regions_entered_;
    return s;
  }

  /// Runs `job` with up to `extra_workers` pool workers assisting the
  /// calling thread; fewer (possibly zero) join when other regions hold
  /// part of the pool. Returns once every chunk has retired and no
  /// assigned worker still references `job`.
  void Run(Job& job, int extra_workers) SHFLBW_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      ++active_regions_;
      ++regions_entered_;
      Grow(extra_workers);
      const int capacity = static_cast<int>(slots_.size());
      const int fair_share = std::max(1, capacity / active_regions_);
      int claim = std::min(extra_workers, fair_share);
      for (std::size_t i = 0; i < slots_.size() && claim > 0; ++i) {
        if (slots_[i].job == nullptr) {
          slots_[i].job = &job;
          ++job.attached;
          --claim;
        }
      }
    }
    cv_.NotifyAll();
    t_in_parallel_region = true;
    job.Drain();
    t_in_parallel_region = false;
    UniqueLock lock(mu_);
    // Reclaim workers that never woke up: their slot still points at
    // this job but `started` is false, so when they do wake the cleared
    // slot keeps them parked. The caller then only waits for workers
    // that actually entered the region (matters for tiny regions whose
    // chunks all retire before the wakeups land).
    for (Slot& slot : slots_) {
      if (slot.job == &job && !slot.started) {
        slot.job = nullptr;
        --job.attached;
      }
    }
    done_cv_.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) { return job.attached == 0; });
    --active_regions_;
  }

 private:
  /// Assignment slot of one worker: the job its partition belongs to
  /// (nullptr when idle) and whether the worker has woken up and
  /// entered that job. Guarded by mu_.
  struct Slot {
    Job* job = nullptr;
    bool started = false;
  };

  WorkerPool() = default;

  ~WorkerPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& th : workers_) th.join();
  }

  /// Spawns workers until `wanted` exist (never shrinks). Thread
  /// exhaustion degrades to however many workers spawned — the caller
  /// drains too, so the region still completes.
  void Grow(int wanted) SHFLBW_REQUIRES(mu_) {
    while (static_cast<int>(workers_.size()) < wanted) {
      try {
        const int index = static_cast<int>(workers_.size());
        slots_.resize(workers_.size() + 1);
        workers_.emplace_back([this, index] { WorkerLoop(index); });
      } catch (const std::system_error&) {
        slots_.resize(workers_.size());
        break;
      }
    }
  }

  void WorkerLoop(int index) SHFLBW_EXCLUDES(mu_) {
    t_in_parallel_region = true;  // nested ParallelFor runs serially
    UniqueLock lock(mu_);
    for (;;) {
      cv_.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) {
        return stop_ || slots_[static_cast<std::size_t>(index)].job != nullptr;
      });
      if (stop_) return;
      Job* job = slots_[static_cast<std::size_t>(index)].job;
      slots_[static_cast<std::size_t>(index)].started = true;
      lock.Unlock();
      job->Drain();
      lock.Lock();
      slots_[static_cast<std::size_t>(index)].job = nullptr;
      slots_[static_cast<std::size_t>(index)].started = false;
      if (--job->attached == 0) done_cv_.NotifyAll();
    }
  }

  /// Guards everything below; rank kLockRankPool (outermost — see the
  /// order table in common/thread_annotations.h).
  Mutex mu_{kLockRankPool};
  CondVar cv_;       // workers wait for an assignment
  CondVar done_cv_;  // callers wait for attached == 0
  /// Joined only by the destructor (process exit, single-threaded);
  /// grown under mu_.
  std::vector<std::thread> workers_ SHFLBW_GUARDED_BY(mu_);
  std::vector<Slot> slots_ SHFLBW_GUARDED_BY(mu_);  // slots_[i] is workers_[i]
  int active_regions_ SHFLBW_GUARDED_BY(mu_) = 0;   // concurrent Run calls
  std::uint64_t regions_entered_ SHFLBW_GUARDED_BY(mu_) = 0;  // lifetime total
  bool stop_ SHFLBW_GUARDED_BY(mu_) = false;
};

}  // namespace

int ParallelThreadCount() {
  const int forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetParallelThreads(int n) {
  // Clamp to [0, 1024]: negative requests mean "no override" (0), and
  // the upper bound matches the env-var cap so neither path can demand
  // an absurd pool.
  g_thread_override.store(std::clamp(n, 0, 1024), std::memory_order_relaxed);
}

PoolStats GetPoolStats() { return WorkerPool::Instance().Stats(); }

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<std::int64_t>(ParallelThreadCount(), chunks));
  if (threads <= 1 || t_in_parallel_region) {
    fn(begin, end);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.grain = grain;
  job.end = end;
  job.chunks = chunks;
  // Publish a region heartbeat for the watchdog (obs/watchdog.h). A
  // full slot table degrades to slot -1, which every heartbeat op
  // ignores — liveness reporting must never gate the actual work.
  obs::HeartbeatRegistry& heartbeats = obs::GlobalHeartbeats();
  job.heartbeat_slot = heartbeats.Register("parallel_for");
  heartbeats.Arm(job.heartbeat_slot, NowSeconds());
  WorkerPool::Instance().Run(job, threads - 1);
  heartbeats.Unregister(job.heartbeat_slot);
  // Run() returned, so attached == 0 and no worker can still be
  // writing; the lock inside TakeError orders this read after the
  // failing worker's store.
  if (std::exception_ptr err = job.TakeError()) std::rethrow_exception(err);
}

}  // namespace shflbw
