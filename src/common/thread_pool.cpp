#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace shflbw {
namespace {

std::atomic<int> g_thread_override{0};

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int EnvThreads() {
  const char* s = std::getenv("SHFLBW_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 1) return 0;  // malformed or non-positive: ignore
  return static_cast<int>(std::min<long>(v, 1024));
}

/// One parallel region: a chunked [begin, end) range drained through an
/// atomic claim counter by the caller and any pool workers that join.
struct Job {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t chunks = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  void Drain() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};

/// True on threads that must not re-enter the pool: pool workers (a
/// nested ParallelFor inside a chunk would deadlock waiting on workers
/// that are all busy in the outer region) and callers already inside a
/// parallel region on this thread.
thread_local bool t_in_parallel_region = false;

/// Lazily-grown persistent worker pool. Workers are spawned the first
/// time a region asks for them, then parked on a condition variable
/// between regions, so worker thread_local scratch (the VW-family stage
/// buffers and accumulators) survives across the many small kernel
/// launches a multi-layer inference run issues. One region runs at a
/// time (guarded by run_mu_); concurrent callers serialize, which
/// matches the library's one-kernel-at-a-time execution model.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  /// Runs `job` with up to `extra_workers` pool workers assisting the
  /// calling thread. Returns once every chunk has retired and no worker
  /// still references `job`. Only workers with index < extra_workers
  /// join (the quota below), so a region never uses more threads than
  /// it resolved at entry even after the pool has grown larger for an
  /// earlier region, and the participating set is deterministic.
  void Run(Job& job, int extra_workers) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      Grow(extra_workers);
      job_ = &job;
      quota_ = extra_workers;
      ++epoch_;
    }
    cv_.notify_all();
    t_in_parallel_region = true;
    job.Drain();
    t_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;  // workers that have not joined yet never will
    done_cv_.wait(lock, [&] { return busy_ == 0; });
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& th : workers_) th.join();
  }

  /// Spawns workers until `wanted` exist (never shrinks). Thread
  /// exhaustion degrades to however many workers spawned — the caller
  /// drains too, so the region still completes.
  void Grow(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted) {
      try {
        const int index = static_cast<int>(workers_.size());
        workers_.emplace_back([this, index] { WorkerLoop(index); });
      } catch (const std::system_error&) {
        break;
      }
    }
  }

  void WorkerLoop(int index) {
    t_in_parallel_region = true;  // nested ParallelFor runs serially
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] {
        return stop_ ||
               (job_ != nullptr && epoch_ != seen && index < quota_);
      });
      if (stop_) return;
      seen = epoch_;
      Job* job = job_;
      ++busy_;
      lock.unlock();
      job->Drain();
      lock.lock();
      if (--busy_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes whole parallel regions

  std::mutex mu_;  // guards everything below
  std::condition_variable cv_;       // workers wait for a new epoch
  std::condition_variable done_cv_;  // caller waits for busy_ == 0
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int quota_ = 0;  // workers with index < quota_ may join the epoch
  int busy_ = 0;
  bool stop_ = false;
};

}  // namespace

int ParallelThreadCount() {
  const int forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetParallelThreads(int n) {
  g_thread_override.store(std::max(0, n), std::memory_order_relaxed);
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<std::int64_t>(ParallelThreadCount(), chunks));
  if (threads <= 1 || t_in_parallel_region) {
    fn(begin, end);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.grain = grain;
  job.end = end;
  job.chunks = chunks;
  WorkerPool::Instance().Run(job, threads - 1);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace shflbw
