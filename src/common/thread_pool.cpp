#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace shflbw {
namespace {

std::atomic<int> g_thread_override{0};

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int EnvThreads() {
  const char* s = std::getenv("SHFLBW_NUM_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || v < 1) return 0;  // malformed or non-positive: ignore
  return static_cast<int>(std::min<long>(v, 1024));
}

}  // namespace

int ParallelThreadCount() {
  const int forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetParallelThreads(int n) {
  g_thread_override.store(std::max(0, n), std::memory_order_relaxed);
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t chunks = (end - begin + grain - 1) / grain;
  const int threads =
      static_cast<int>(std::min<std::int64_t>(ParallelThreadCount(), chunks));
  if (threads <= 1) {
    fn(begin, end);
    return;
  }

  std::atomic<std::int64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto drain = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::int64_t lo = begin + c * grain;
      const std::int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) {
    try {
      team.emplace_back(drain);
    } catch (const std::system_error&) {
      // Thread exhaustion: degrade to however many workers spawned
      // (the caller drains too) instead of letting joinable threads
      // unwind into std::terminate.
      break;
    }
  }
  drain();
  for (std::thread& th : team) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace shflbw
