// cuSPARSELt-style 2:4 balanced-sparsity SpMM, as executed by the A100
// sparse tensor-core (§2.2). The sparse tensor-core doubles MMA
// throughput at exactly 50% sparsity, but the dense operand must still be
// loaded in full before operand selection — the memory-bound issue the
// paper points out; this is why it only reaches 1.07-1.16x end to end.
#pragma once

#include "arch/gpu_spec.h"
#include "format/balanced24.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// C = A_24 * B using the sparse tensor-core model. Only meaningful on
/// A100 (the only evaluated GPU with sparse-TC support); the functional
/// result is architecture-independent.
KernelResult SpmmBalanced24(const Balanced24Matrix& a, const Matrix<float>& b,
                            const GpuSpec& spec);

/// Stats-only model for shape (m, n, k).
KernelStats SpmmBalanced24Stats(int m, int n, int k, const GpuSpec& spec);

}  // namespace shflbw
