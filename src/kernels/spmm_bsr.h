// cuSPARSE-style block-wise (BSR) tensor-core SpMM — the "BW" baseline
// of Fig. 6. Dense V x V blocks map directly onto MMA tiles, giving the
// best possible data reuse but with the accuracy cost of block pruning
// and cuSPARSE's erratic efficiency across GPUs/V (§6.2).
#pragma once

#include "arch/gpu_spec.h"
#include "format/bsr.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// C = A_bsr * B on tensor-cores.
KernelResult SpmmBsr(const BsrMatrix& a, const Matrix<float>& b,
                     const GpuSpec& spec, const TileConfig& cfg = {});

/// Stats-only model: m, n, k element dims; nnz_blocks stored blocks of
/// size v.
KernelStats SpmmBsrStats(int m, int n, int k, double nnz_blocks, int v,
                         const GpuSpec& spec, const TileConfig& cfg = {});

}  // namespace shflbw
