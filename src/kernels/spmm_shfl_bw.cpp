#include "kernels/spmm_shfl_bw.h"

#include "common/check.h"

namespace shflbw {
namespace {

std::vector<int> KeptPerGroup(const VectorWiseMatrix& vw) {
  std::vector<int> kept(static_cast<std::size_t>(vw.Groups()));
  for (int g = 0; g < vw.Groups(); ++g) kept[g] = vw.KeptColumnsInGroup(g);
  return kept;
}

/// Evenly-spread kept-vector counts for a stats-only layer model: total
/// kept vectors = alpha * (m/v groups) * k columns, rounded per group.
std::vector<int> UniformKept(int m, int k, double alpha, int v) {
  SHFLBW_CHECK_MSG(v > 0 && m % v == 0,
                   "m=" << m << " not divisible by v=" << v);
  const int groups = m / v;
  const int per_group =
      static_cast<int>(std::llround(alpha * static_cast<double>(k)));
  return std::vector<int>(static_cast<std::size_t>(groups), per_group);
}

}  // namespace

KernelResult SpmmShflBw(const ShflBwMatrix& a, const Matrix<float>& b,
                        const GpuSpec& spec, const TileConfig& cfg) {
  KernelResult r;
  // Hot path lives in RunVwFamilyKernel's ExecuteVwTile (the SHFLBW_HOT
  // region in spmm_vector_wise.cpp); this wrapper only shapes operands.
  r.c = RunVwFamilyKernel(a.vw, a.storage_to_original, b, cfg, nullptr);
  r.stats = VwFamilyStats(a.rows(), b.cols(), a.cols(), KeptPerGroup(a.vw),
                          a.v(), spec, cfg, KernelClass::kShflBwTensorCore,
                          /*extra_metadata_bytes=*/4.0 * a.rows());
  return r;
}

KernelResult SpmmShflBwTraced(const ShflBwMatrix& a, const Matrix<float>& b,
                              const GpuSpec& spec, const TileConfig& cfg,
                              std::vector<PipelineEvent>& trace) {
  KernelResult r;
  r.c = RunVwFamilyKernel(a.vw, a.storage_to_original, b, cfg, &trace);
  r.stats = VwFamilyStats(a.rows(), b.cols(), a.cols(), KeptPerGroup(a.vw),
                          a.v(), spec, cfg, KernelClass::kShflBwTensorCore,
                          /*extra_metadata_bytes=*/4.0 * a.rows());
  return r;
}

KernelStats SpmmShflBwStats(int m, int n, int k, double alpha, int v,
                            const GpuSpec& spec, const TileConfig& cfg) {
  return VwFamilyStats(m, n, k, UniformKept(m, k, alpha, v), v, spec, cfg,
                       KernelClass::kShflBwTensorCore,
                       /*extra_metadata_bytes=*/4.0 * m);
}

KernelStats SpmmVectorWiseStats(int m, int n, int k, double alpha, int v,
                                const GpuSpec& spec, const TileConfig& cfg) {
  return VwFamilyStats(m, n, k, UniformKept(m, k, alpha, v), v, spec, cfg,
                       KernelClass::kVectorWiseTensorCore,
                       /*extra_metadata_bytes=*/0.0);
}

}  // namespace shflbw
