// The Shfl-BW tensor-core SpMM — the paper's kernel (§4, Algorithm 1,
// Fig. 4). Composition of:
//   (a) offline processing: the ShflBwMatrix format (vector-wise storage
//       over reordered rows + original row indices);
//   (b) in-buffer stitching of the dense operand (§4.3);
//   (c) tensor-core MMA over dense stitched tiles;
//   (d) two-level pipelining with bulk metadata prefetch (§4.4);
//   (e) reordered write-back to original row positions (§4.2).
#pragma once

#include "arch/gpu_spec.h"
#include "format/shfl_bw.h"
#include "kernels/spmm_vector_wise.h"

namespace shflbw {

/// C = A_shflbw * B on tensor-cores; C rows are in ORIGINAL order.
KernelResult SpmmShflBw(const ShflBwMatrix& a, const Matrix<float>& b,
                        const GpuSpec& spec, const TileConfig& cfg = {});

/// As above, also recording the pipeline counter trace of the first tile
/// (for testing the Algorithm 1 prefetch schedule).
KernelResult SpmmShflBwTraced(const ShflBwMatrix& a, const Matrix<float>& b,
                              const GpuSpec& spec, const TileConfig& cfg,
                              std::vector<PipelineEvent>& trace);

/// Stats-only model for a layer of shape (m, n, k) pruned to Shfl-BW with
/// vector size v at stored density `alpha` (kept vectors spread evenly
/// across groups) — used by the Fig. 2/6 layer sweeps.
KernelStats SpmmShflBwStats(int m, int n, int k, double alpha, int v,
                            const GpuSpec& spec, const TileConfig& cfg = {});

/// Same, for our vector-wise kernel (identical except no row-index
/// metadata).
KernelStats SpmmVectorWiseStats(int m, int n, int k, double alpha, int v,
                                const GpuSpec& spec,
                                const TileConfig& cfg = {});

}  // namespace shflbw
