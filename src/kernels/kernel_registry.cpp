#include "kernels/kernel_registry.h"

#include <cmath>

#include "common/check.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_csr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_tilewise.h"
#include "kernels/spmm_vector_sparse.h"

namespace shflbw {

std::optional<KernelStats> LayerStats(KernelClass klass,
                                      const LayerProblem& p,
                                      const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(p.m > 0 && p.n > 0 && p.k > 0,
                   "bad layer shape " << p.m << "/" << p.n << "/" << p.k);
  SHFLBW_CHECK_MSG(p.density > 0.0 && p.density <= 1.0,
                   "density " << p.density);
  const double nnz = p.density * p.m * p.k;

  switch (klass) {
    case KernelClass::kDenseTensorCore:
      return GemmTensorCoreStats(p.m, p.n, p.k, spec);
    case KernelClass::kDenseCudaCore:
      return GemmCudaCoreStats(p.m, p.n, p.k, spec);
    case KernelClass::kCsrScalar:
      return SpmmCsrScalarStats(p.m, p.n, p.k, nnz, spec);
    case KernelClass::kSputnik:
      return SpmmSputnikStats(p.m, p.n, p.k, nnz, spec);
    case KernelClass::kBsrTensorCore: {
      if (p.m % p.v != 0 || p.k % p.v != 0) return std::nullopt;
      const double nnz_blocks =
          p.density * (static_cast<double>(p.m) / p.v) *
          (static_cast<double>(p.k) / p.v);
      return SpmmBsrStats(p.m, p.n, p.k, nnz_blocks, p.v, spec);
    }
    case KernelClass::kVectorWiseTensorCore:
      if (p.m % p.v != 0) return std::nullopt;
      return SpmmVectorWiseStats(p.m, p.n, p.k, p.density, p.v, spec);
    case KernelClass::kShflBwTensorCore:
      if (p.m % p.v != 0) return std::nullopt;
      return SpmmShflBwStats(p.m, p.n, p.k, p.density, p.v, spec);
    case KernelClass::kBalanced24:
      // Hardware 2:4 exists only at 50% density and only on A100.
      if (std::abs(p.density - 0.5) > 1e-9) return std::nullopt;
      if (spec.arch != GpuArch::kA100) return std::nullopt;
      if (p.k % 4 != 0) return std::nullopt;
      return SpmmBalanced24Stats(p.m, p.n, p.k, spec);
    case KernelClass::kVectorSparse:
      if (p.m % kVectorSparseV != 0) return std::nullopt;
      return SpmmVectorSparseStats(p.m, p.n, p.k, p.density, spec);
    case KernelClass::kTilewise:
      if (p.m % kTilewiseV != 0) return std::nullopt;
      return SpmmTilewiseStats(p.m, p.n, p.k, p.density, spec);
  }
  return std::nullopt;
}

std::optional<double> LayerSeconds(KernelClass klass, const LayerProblem& p,
                                   const GpuSpec& spec) {
  const auto stats = LayerStats(klass, p, spec);
  if (!stats) return std::nullopt;
  return CostModel(spec).Seconds(*stats);
}

std::optional<double> SpeedupOverDense(KernelClass klass,
                                       const LayerProblem& p,
                                       const GpuSpec& spec) {
  const auto sparse_s = LayerSeconds(klass, p, spec);
  if (!sparse_s) return std::nullopt;
  const auto dense_s =
      LayerSeconds(KernelClass::kDenseTensorCore, p, spec);
  return *dense_s / *sparse_s;
}

std::optional<double> TotalSeconds(KernelClass klass,
                                   const std::vector<LayerProblem>& layers,
                                   const GpuSpec& spec) {
  double total = 0.0;
  for (const LayerProblem& p : layers) {
    const auto s = LayerSeconds(klass, p, spec);
    if (!s) return std::nullopt;
    total += *s;
  }
  return total;
}

const std::vector<KernelClass>& Fig6KernelClasses() {
  static const std::vector<KernelClass> kOrder{
      KernelClass::kCsrScalar,      KernelClass::kSputnik,
      KernelClass::kVectorSparse,   KernelClass::kTilewise,
      KernelClass::kBsrTensorCore,  KernelClass::kVectorWiseTensorCore,
      KernelClass::kShflBwTensorCore, KernelClass::kBalanced24,
  };
  return kOrder;
}

}  // namespace shflbw
