#include "kernels/layernorm_fuse.h"

#include <cmath>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"

namespace shflbw {
namespace {

void CheckParams(const Matrix<float>& x, const LayerNormParams& p) {
  SHFLBW_CHECK_MSG(
      static_cast<int>(p.gamma.size()) == x.cols() &&
          static_cast<int>(p.beta.size()) == x.cols(),
      "LayerNorm params sized " << p.gamma.size() << "/" << p.beta.size()
                                << " but features = " << x.cols());
  SHFLBW_CHECK_MSG(p.epsilon > 0.0f, "epsilon must be positive");
}

/// Normalizes one token row; emit(feature, value) stores the result.
template <typename Emit>
void NormalizeRow(const Matrix<float>& x, const LayerNormParams& p, int row,
                  Emit&& emit) {
  const int features = x.cols();
  const float* in = x.row(row);
  SHFLBW_HOT_BEGIN;
  double mean = 0.0;
  for (int f = 0; f < features; ++f) mean += in[f];
  mean /= features;
  double var = 0.0;
  for (int f = 0; f < features; ++f) {
    const double d = in[f] - mean;
    var += d * d;
  }
  var /= features;
  const float inv_std =
      1.0f / std::sqrt(static_cast<float>(var) + p.epsilon);
  for (int f = 0; f < features; ++f) {
    const float norm =
        (in[f] - static_cast<float>(mean)) * inv_std * p.gamma[f] +
        p.beta[f];
    // Output rounds through fp16, as the downstream kernel operand.
    emit(f, Fp16(norm).ToFloat());
  }
  SHFLBW_HOT_END;
}

}  // namespace

Matrix<float> LayerNorm(const Matrix<float>& x, const LayerNormParams& p) {
  CheckParams(x, p);
  Matrix<float> out(x.rows(), x.cols());
  for (int t = 0; t < x.rows(); ++t) {
    NormalizeRow(x, p, t, [&](int f, float v) { out(t, f) = v; });
  }
  return out;
}

Matrix<float> LayerNormTransposed(const Matrix<float>& x,
                                  const LayerNormParams& p) {
  CheckParams(x, p);
  Matrix<float> out(x.cols(), x.rows());  // features x tokens
  for (int t = 0; t < x.rows(); ++t) {
    NormalizeRow(x, p, t, [&](int f, float v) { out(f, t) = v; });
  }
  return out;
}

KernelStats LayerNormFusedStats(int tokens, int features,
                                const GpuSpec& spec) {
  (void)spec;
  KernelStats s;
  s.kernel_name = "layernorm-transposed";
  s.kernel_class = KernelClass::kDenseCudaCore;  // elementwise, CUDA cores
  s.tensor_core = false;
  const double elems = static_cast<double>(tokens) * features;
  s.useful_flops = 8.0 * elems;  // mean, var, normalize, affine
  s.issued_macs = 4.0 * elems;
  s.dram_read_bytes = elems * kHalfBytes + 2.0 * features * 4.0;
  s.dram_write_bytes = elems * kHalfBytes;
  s.l2_read_bytes = s.dram_read_bytes;
  s.threadblocks = tokens;
  s.main_loop_iters = 1;
  return s;
}

KernelStats LayerNormThenTransposeStats(int tokens, int features,
                                        const GpuSpec& spec) {
  KernelStats s = LayerNormFusedStats(tokens, features, spec);
  s.kernel_name = "layernorm+standalone-transpose";
  // The separate transpose re-reads and re-writes the whole activation.
  const double elems = static_cast<double>(tokens) * features;
  s.dram_read_bytes += elems * kHalfBytes;
  s.dram_write_bytes += elems * kHalfBytes;
  s.l2_read_bytes += elems * kHalfBytes;
  s.num_kernel_launches = 2;
  return s;
}

}  // namespace shflbw
