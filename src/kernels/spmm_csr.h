// cuSPARSE-style scalar CSR SpMM baseline (the "cuSPARSE" unstructured
// line of Fig. 6). One thread per output row, scalar gathers from B —
// the layout and loop structure of csrmm2.
#pragma once

#include "arch/gpu_spec.h"
#include "format/csr.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// C = A_csr * B, fp16 operands / fp32 accumulation, ascending-K order.
KernelResult SpmmCsrScalar(const CsrMatrix& a, const Matrix<float>& b,
                           const GpuSpec& spec);

/// Stats-only model for shape (m, n, k) at non-zero count nnz.
KernelStats SpmmCsrScalarStats(int m, int n, int k, double nnz,
                               const GpuSpec& spec);

/// Shared row-parallel CSR gather-accumulate: pre-rounds both operands
/// through fp16 once, then accumulates each output row in ascending
/// column order (pure float FMA). Functional core of both the scalar
/// cuSPARSE baseline and the Sputnik kernel — they differ only in the
/// modelled stats.
Matrix<float> RunCsrRowParallel(const CsrMatrix& a, const Matrix<float>& b);

}  // namespace shflbw
