#include "kernels/gemm_dense.h"

#include <algorithm>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"

namespace shflbw {

Matrix<float> GemmReference(const Matrix<float>& a, const Matrix<float>& b) {
  SHFLBW_CHECK_MSG(a.cols() == b.rows(), "GEMM shape mismatch: A is "
                                             << a.rows() << "x" << a.cols()
                                             << ", B is " << b.rows() << "x"
                                             << b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Matrix<float> c(m, n);
  // Pre-round both operands through fp16 once; each output row then
  // accumulates pure float FMA in ascending-k order, rows in parallel
  // (bit-identical to the serial elementwise version).
  const Matrix<float> ah = RoundThroughFp16(a);
  const Matrix<float> bh = RoundThroughFp16(b);
  ParallelFor(0, m, /*grain=*/4, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(n));
    SHFLBW_HOT_BEGIN;
    for (std::int64_t i = lo; i < hi; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      const float* arow = ah.row(static_cast<int>(i));
      for (int kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = bh.row(kk);
        for (int j = 0; j < n; ++j) acc[j] += av * brow[j];
      }
      float* crow = c.row(static_cast<int>(i));
      for (int j = 0; j < n; ++j) crow[j] = RoundToFp16(acc[j]);
    }
    SHFLBW_HOT_END;
  });
  return c;
}

namespace {

/// Shared traffic model for a tiled dense GEMM with TM x TN threadblock
/// tiles and TK-step main loop.
KernelStats DenseStats(int m, int n, int k, int tm, int tn, int tk,
                       const GpuSpec& spec, KernelClass klass,
                       bool tensor_core) {
  KernelStats s;
  s.kernel_name = KernelClassName(klass);
  s.kernel_class = klass;
  s.tensor_core = tensor_core;
  s.useful_flops = 2.0 * m * n * k;
  // Tiles are padded to the threadblock granularity; padded lanes issue
  // wasted MACs exactly as a real kernel does.
  const double m_pad = std::ceil(static_cast<double>(m) / tm) * tm;
  const double n_pad = std::ceil(static_cast<double>(n) / tn) * tn;
  s.issued_macs = m_pad * n_pad * k;

  const double row_tiles = m_pad / tm;
  const double col_tiles = n_pad / tn;
  const double a_bytes = static_cast<double>(m) * k * kHalfBytes;
  const double b_bytes = static_cast<double>(k) * n * kHalfBytes;
  // Each operand streams from DRAM once as long as the slice reused
  // across the opposing tile dimension stays L2-resident (an A row
  // strip of tm x K, a B column slice of K x tn); otherwise every pass
  // re-reads it.
  const double a_strip = static_cast<double>(tm) * k * kHalfBytes;
  const double b_slice = static_cast<double>(k) * tn * kHalfBytes;
  s.dram_read_bytes = a_bytes * ReloadFactor(a_strip, spec.l2_capacity,
                                             col_tiles) +
                      b_bytes * ReloadFactor(b_slice, spec.l2_capacity,
                                             row_tiles);
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  // L2 serves each tile load: A tiles once per column pass, B tiles once
  // per row pass.
  s.l2_read_bytes = a_bytes * col_tiles + b_bytes * row_tiles;
  s.threadblocks = static_cast<int>(row_tiles * col_tiles);
  s.main_loop_iters = static_cast<int>(std::ceil(static_cast<double>(k) / tk));
  s.pipeline_stages = 2;
  return s;
}

}  // namespace

KernelStats GemmTensorCoreStats(int m, int n, int k, const GpuSpec& spec) {
  // cuBLAS TC kernels use 128x128 (or 128x64 for narrow N) tiles.
  const int tn = n >= 128 ? 128 : 64;
  return DenseStats(m, n, k, /*tm=*/128, tn, /*tk=*/32, spec,
                    KernelClass::kDenseTensorCore, /*tensor_core=*/true);
}

KernelStats GemmCudaCoreStats(int m, int n, int k, const GpuSpec& spec) {
  return DenseStats(m, n, k, /*tm=*/64, /*tn=*/64, /*tk=*/16, spec,
                    KernelClass::kDenseCudaCore, /*tensor_core=*/false);
}

KernelResult GemmTensorCore(const Matrix<float>& a, const Matrix<float>& b,
                            const GpuSpec& spec) {
  KernelResult r;
  r.c = GemmReference(a, b);
  r.stats = GemmTensorCoreStats(a.rows(), b.cols(), a.cols(), spec);
  return r;
}

KernelResult GemmCudaCore(const Matrix<float>& a, const Matrix<float>& b,
                          const GpuSpec& spec) {
  KernelResult r;
  r.c = GemmReference(a, b);
  r.stats = GemmCudaCoreStats(a.rows(), b.cols(), a.cols(), spec);
  return r;
}

}  // namespace shflbw
