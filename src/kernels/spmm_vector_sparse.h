// VectorSparse baseline (Chen et al., SC'21): tensor-core vector-wise
// SpMM tuned for fine-grained vectors (V <= 8). The paper finds it "less
// performant than ours because their small vector size (V=8) limits data
// reuse" — which falls straight out of the VW-family traffic model: L2
// traffic for the dense operand scales with 1/V.
#pragma once

#include "arch/gpu_spec.h"
#include "format/vector_wise.h"
#include "kernels/spmm_vector_wise.h"

namespace shflbw {

inline constexpr int kVectorSparseV = 8;

/// C = A_vw * B with the VectorSparse schedule. a.v must be <= 8.
KernelResult SpmmVectorSparse(const VectorWiseMatrix& a,
                              const Matrix<float>& b, const GpuSpec& spec);

/// Stats-only model at stored density alpha (V fixed to 8).
KernelStats SpmmVectorSparseStats(int m, int n, int k, double alpha,
                                  const GpuSpec& spec);

}  // namespace shflbw
