#include "kernels/spmm_vector_wise.h"

#include <numeric>

#include "common/check.h"
#include "common/fp16.h"

namespace shflbw {

KernelStats VwFamilyStats(int m, int n, int k,
                          const std::vector<int>& kept_per_group, int v,
                          const GpuSpec& spec, const TileConfig& cfg,
                          KernelClass klass, double extra_metadata_bytes) {
  KernelStats s;
  s.kernel_name = KernelClassName(klass);
  s.kernel_class = klass;
  s.tensor_core = true;
  s.block_size = v;

  const int tn = std::min(cfg.tn, std::max(kMmaN, n));
  const double n_pad = std::ceil(static_cast<double>(n) / tn) * tn;
  const double col_tiles = n_pad / tn;
  const double kept_total =
      std::accumulate(kept_per_group.begin(), kept_per_group.end(), 0.0);

  s.useful_flops = 2.0 * kept_total * v * n;
  // The main loop advances tk kept-columns per step; the final partial
  // step pads with zero vectors, issuing wasted MACs.
  double padded_cols = 0;
  int max_steps = 0;
  for (int kept : kept_per_group) {
    const int steps =
        static_cast<int>(std::ceil(static_cast<double>(kept) / cfg.tk));
    padded_cols += static_cast<double>(steps) * cfg.tk;
    max_steps = std::max(max_steps, steps);
  }
  const double v_pad = std::ceil(static_cast<double>(v) / kMmaM) * kMmaM;
  s.issued_macs = padded_cols * v_pad * n_pad;

  // Sparse operand: values stream once per column tile (vector-contiguous
  // after the offline reorder, §4.2); metadata is one int32 column index
  // per kept vector plus group pointers (bulk-prefetched, Alg. 1).
  s.metadata_bytes =
      4.0 * (kept_total + kept_per_group.size() + 1) + extra_metadata_bytes;
  const double a_bytes = kept_total * v * kHalfBytes + s.metadata_bytes;

  // Dense operand: in-buffer stitching gathers exactly the kept rows of
  // the B tile — kept_g rows x tn columns per (group, column-tile). This
  // is the §3.2.2 full-reuse traffic (divided by v versus unstructured).
  s.l2_read_bytes = kept_total * tn * kHalfBytes * col_tiles +
                    a_bytes * col_tiles;
  // DRAM side: the kernel iterates column tiles in the outer loop, so a
  // K x tn slice of B stays L2-resident while every row group consumes
  // it — B streams from DRAM once as long as one slice fits.
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  const double b_slice = static_cast<double>(k) * tn * kHalfBytes;
  s.dram_read_bytes =
      a_bytes + b_unique * ReloadFactor(b_slice, spec.l2_capacity,
                                        static_cast<double>(
                                            kept_per_group.size()));
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;

  s.threadblocks = static_cast<int>(kept_per_group.size() * col_tiles);
  s.main_loop_iters = std::max(1, max_steps);
  s.pipeline_stages = cfg.pipeline_stages;
  return s;
}

Matrix<float> RunVwFamilyKernel(const VectorWiseMatrix& a,
                                const std::vector<int>& row_map,
                                const Matrix<float>& b, const TileConfig& cfg,
                                std::vector<PipelineEvent>* pipeline_trace) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  SHFLBW_CHECK_MSG(static_cast<int>(row_map.size()) == a.rows,
                   "row_map size " << row_map.size() << " != rows " << a.rows);
  SHFLBW_CHECK_MSG(cfg.tk > 0 && cfg.pipeline_stages > 0 &&
                       cfg.meta_prefetch_stage > 0,
                   "bad tile config");
  const int n = b.cols();
  const int v = a.v;
  const int tn = std::min(cfg.tn, std::max(1, n));
  Matrix<float> c(a.rows, n);

  // Software-pipeline buffers (Fig. 4(d)): each stage holds one stitched
  // A tile (v x tk fp16) and one stitched B tile (tk x tn fp16).
  struct StageBuffer {
    std::vector<Fp16> a_tile;  // v * tk, vector-major
    std::vector<Fp16> b_tile;  // tk * tn
    int valid_k = 0;           // kept vectors in this step (<= tk)
  };
  std::vector<StageBuffer> buffers(cfg.pipeline_stages);
  for (auto& buf : buffers) {
    buf.a_tile.assign(static_cast<std::size_t>(v) * cfg.tk, Fp16());
    buf.b_tile.assign(static_cast<std::size_t>(cfg.tk) * tn, Fp16());
  }

  bool first_tile = true;
  for (int g = 0; g < a.Groups(); ++g) {
    const int base = a.group_col_ptr[g];
    const int kept = a.KeptColumnsInGroup(g);
    const int total_step =
        static_cast<int>(std::ceil(static_cast<double>(kept) / cfg.tk));

    for (int j0 = 0; j0 < n; j0 += tn) {
      const int jw = std::min(tn, n - j0);
      // fp32 accumulators for the v x tn output tile (register file).
      std::vector<float> acc(static_cast<std::size_t>(v) * tn, 0.0f);

      // Metadata queue: BulkLoadMeta fetches meta_prefetch_stage steps'
      // worth of column indices ahead of the stitch that consumes them
      // (Alg. 1 lines 6-8). meta_loaded_until tracks the frontier.
      int meta_loaded_until = 0;

      // Pipelined main loop (Alg. 1 lines 1-16): the three counters run
      // skewed so that metadata is MetaPrefetchStage steps ahead of the
      // stitch, and the stitch is pipeline_stages ahead of the MMA.
      int metaload_step = 0;
      int load_step = metaload_step - cfg.meta_prefetch_stage;
      int step = load_step - cfg.pipeline_stages;
      while (step < total_step) {
        const bool record =
            first_tile && pipeline_trace != nullptr && step < total_step;
        bool meta_ready = true;

        if (metaload_step % cfg.meta_prefetch_stage == 0 &&
            metaload_step < total_step + cfg.meta_prefetch_stage +
                                cfg.pipeline_stages) {
          // BulkLoadMeta: aggregate column indices of the next
          // meta_prefetch_stage steps (bandwidth-efficient bulk load).
          meta_loaded_until =
              std::min(total_step,
                       std::max(meta_loaded_until,
                                metaload_step + cfg.meta_prefetch_stage));
        }

        if (step >= 0 && step < total_step) {
          // WarpMMA (Fig. 4(c)): dense v x tn x tk tile product, fp32
          // accumulation, ascending-k order within the buffer. On real
          // hardware this overlaps the stitch of a later step; in this
          // serial simulation it must retire BEFORE the stitch below
          // reuses the same ring slot (load_step - step == ring size).
          const StageBuffer& buf = buffers[step % cfg.pipeline_stages];
          for (int kk = 0; kk < buf.valid_k; ++kk) {
            const Fp16* arow = &buf.a_tile[static_cast<std::size_t>(kk) * v];
            const Fp16* brow = &buf.b_tile[static_cast<std::size_t>(kk) * tn];
            for (int r = 0; r < v; ++r) {
              const float av = arow[r].ToFloat();
              if (av == 0.0f) continue;  // padded lane
              float* crow = &acc[static_cast<std::size_t>(r) * tn];
              for (int j = 0; j < jw; ++j) {
                crow[j] += av * brow[j].ToFloat();
              }
            }
          }
        }

        if (load_step >= 0 && load_step < total_step) {
          // StitchTile (Fig. 4(b)): requires the metadata of this step.
          meta_ready = load_step < meta_loaded_until;
          SHFLBW_CHECK_MSG(meta_ready,
                           "pipeline hazard: stitching step "
                               << load_step << " before its metadata loaded");
          StageBuffer& buf = buffers[load_step % cfg.pipeline_stages];
          const int k0 = load_step * cfg.tk;
          buf.valid_k = std::min(cfg.tk, kept - k0);
          for (int kk = 0; kk < cfg.tk; ++kk) {
            const bool in_range = kk < buf.valid_k;
            const int vec = base + k0 + kk;
            // A tile: vector-contiguous fp16 load (zero-padded tail).
            for (int r = 0; r < v; ++r) {
              buf.a_tile[static_cast<std::size_t>(kk) * v + r] =
                  in_range ? Fp16(a.ValueAt(vec, r)) : Fp16();
            }
            // B tile: gather row col_idx[vec] — the in-buffer stitching
            // that turns the vector-wise matrix into a dense tile.
            for (int j = 0; j < tn; ++j) {
              const bool col_ok = in_range && j < jw;
              buf.b_tile[static_cast<std::size_t>(kk) * tn + j] =
                  col_ok ? Fp16(b(a.col_idx[vec], j0 + j)) : Fp16();
            }
          }
        }

        if (record) {
          pipeline_trace->push_back(
              {metaload_step, load_step, step, meta_ready});
        }
        ++step;
        ++load_step;
        ++metaload_step;
      }

      // Write-back (Fig. 4(e)): row r of the tile goes to C row
      // row_map[g*v + r] — identity for VW, storage_to_original for
      // Shfl-BW (the reordered write-back, §4.2).
      for (int r = 0; r < v; ++r) {
        const int out_row = row_map[static_cast<std::size_t>(g) * v + r];
        for (int j = 0; j < jw; ++j) {
          c(out_row, j0 + j) =
              Fp16(acc[static_cast<std::size_t>(r) * tn + j]).ToFloat();
        }
      }
      first_tile = false;
    }
  }
  return c;
}

KernelResult SpmmVectorWise(const VectorWiseMatrix& a, const Matrix<float>& b,
                            const GpuSpec& spec, const TileConfig& cfg) {
  std::vector<int> identity(static_cast<std::size_t>(a.rows));
  std::iota(identity.begin(), identity.end(), 0);
  KernelResult r;
  r.c = RunVwFamilyKernel(a, identity, b, cfg, nullptr);
  std::vector<int> kept(static_cast<std::size_t>(a.Groups()));
  for (int g = 0; g < a.Groups(); ++g) kept[g] = a.KeptColumnsInGroup(g);
  r.stats = VwFamilyStats(a.rows, b.cols(), a.cols, kept, a.v, spec, cfg,
                          KernelClass::kVectorWiseTensorCore,
                          /*extra_metadata_bytes=*/0.0);
  return r;
}

}  // namespace shflbw
