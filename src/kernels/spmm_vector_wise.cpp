#include "kernels/spmm_vector_wise.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"

namespace shflbw {

KernelStats VwFamilyStats(int m, int n, int k,
                          const std::vector<int>& kept_per_group, int v,
                          const GpuSpec& spec, const TileConfig& cfg,
                          KernelClass klass, double extra_metadata_bytes) {
  KernelStats s;
  s.kernel_name = KernelClassName(klass);
  s.kernel_class = klass;
  s.tensor_core = true;
  s.block_size = v;

  const int tn = std::min(cfg.tn, std::max(kMmaN, n));
  const double n_pad = std::ceil(static_cast<double>(n) / tn) * tn;
  const double col_tiles = n_pad / tn;
  const double kept_total =
      std::accumulate(kept_per_group.begin(), kept_per_group.end(), 0.0);

  s.useful_flops = 2.0 * kept_total * v * n;
  // The main loop advances tk kept-columns per step; the final partial
  // step pads with zero vectors, issuing wasted MACs.
  double padded_cols = 0;
  int max_steps = 0;
  for (int kept : kept_per_group) {
    const int steps =
        static_cast<int>(std::ceil(static_cast<double>(kept) / cfg.tk));
    padded_cols += static_cast<double>(steps) * cfg.tk;
    max_steps = std::max(max_steps, steps);
  }
  const double v_pad = std::ceil(static_cast<double>(v) / kMmaM) * kMmaM;
  s.issued_macs = padded_cols * v_pad * n_pad;

  // Sparse operand: values stream once per column tile (vector-contiguous
  // after the offline reorder, §4.2); metadata is one int32 column index
  // per kept vector plus group pointers (bulk-prefetched, Alg. 1).
  s.metadata_bytes =
      4.0 * (kept_total + kept_per_group.size() + 1) + extra_metadata_bytes;
  const double a_bytes = kept_total * v * kHalfBytes + s.metadata_bytes;

  // Dense operand: in-buffer stitching gathers exactly the kept rows of
  // the B tile — kept_g rows x tn columns per (group, column-tile). This
  // is the §3.2.2 full-reuse traffic (divided by v versus unstructured).
  s.l2_read_bytes = kept_total * tn * kHalfBytes * col_tiles +
                    a_bytes * col_tiles;
  // DRAM side: the kernel iterates column tiles in the outer loop, so a
  // K x tn slice of B stays L2-resident while every row group consumes
  // it — B streams from DRAM once as long as one slice fits.
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  const double b_slice = static_cast<double>(k) * tn * kHalfBytes;
  s.dram_read_bytes =
      a_bytes + b_unique * ReloadFactor(b_slice, spec.l2_capacity,
                                        static_cast<double>(
                                            kept_per_group.size()));
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;

  s.threadblocks = static_cast<int>(kept_per_group.size() * col_tiles);
  s.main_loop_iters = std::max(1, max_steps);
  s.pipeline_stages = cfg.pipeline_stages;
  return s;
}

namespace {

/// Per-thread reusable scratch for one output tile: the software-pipeline
/// ring (Fig. 4(d)) and the fp32 accumulator. Stage buffers hold fp16
/// values already widened to float (decoded once per stitch), so the MMA
/// loop is pure float FMA over contiguous arrays.
struct TileScratch {
  struct Stage {
    std::vector<float> a_tile;  // v * tk, vector-major, fp16-rounded
    std::vector<float> b_tile;  // tk * tn, fp16-rounded
    int valid_k = 0;            // kept vectors in this step (<= tk)
  };
  std::vector<Stage> stages;
  std::vector<float> acc;  // v * tn fp32 accumulators (register file)

  void Prepare(int v, int tk, int tn, int num_stages) {
    stages.resize(static_cast<std::size_t>(num_stages));
    const std::size_t a_size = static_cast<std::size_t>(v) * tk;
    const std::size_t b_size = static_cast<std::size_t>(tk) * tn;
    for (Stage& s : stages) {
      if (s.a_tile.size() != a_size) s.a_tile.assign(a_size, 0.0f);
      if (s.b_tile.size() != b_size) s.b_tile.assign(b_size, 0.0f);
      s.valid_k = 0;
    }
    // The accumulator must start at zero for every tile; the stage
    // buffers are fully rewritten by each stitch before the MMA reads
    // them, so they carry over between tiles.
    acc.assign(static_cast<std::size_t>(v) * tn, 0.0f);
  }
};

TileScratch& LocalTileScratch() {
  thread_local TileScratch scratch;
  return scratch;
}

/// Executes one (row-group, column-tile) work item: the pipelined
/// stitch + MMA loop of Alg. 1 followed by the write-back. Output rows
/// row_map[g*v + r], columns [j0, j0+jw) — disjoint across work items,
/// which is what makes the parallel schedule bit-identical to serial.
/// a_vals / bh are the operands already rounded through fp16 (done once
/// per kernel call), so the stitch is a pure copy.
void ExecuteVwTile(const VectorWiseMatrix& a, const std::vector<float>& a_vals,
                   const std::vector<int>& row_map, const Matrix<float>& bh,
                   const TileConfig& cfg, int tn, int g, int j0,
                   TileScratch& scratch, Matrix<float>& c,
                   std::vector<PipelineEvent>* pipeline_trace) {
  const int n = bh.cols();
  const int v = a.v;
  const int jw = std::min(tn, n - j0);
  const int base = a.group_col_ptr[g];
  const int kept = a.KeptColumnsInGroup(g);
  const int total_step =
      static_cast<int>(std::ceil(static_cast<double>(kept) / cfg.tk));
  float* acc = scratch.acc.data();

  SHFLBW_HOT_BEGIN;
  // Metadata queue: BulkLoadMeta fetches meta_prefetch_stage steps'
  // worth of column indices ahead of the stitch that consumes them
  // (Alg. 1 lines 6-8). meta_loaded_until tracks the frontier.
  int meta_loaded_until = 0;

  // Pipelined main loop (Alg. 1 lines 1-16): the three counters run
  // skewed so that metadata is MetaPrefetchStage steps ahead of the
  // stitch, and the stitch is pipeline_stages ahead of the MMA.
  int metaload_step = 0;
  int load_step = metaload_step - cfg.meta_prefetch_stage;
  int step = load_step - cfg.pipeline_stages;
  while (step < total_step) {
    const bool record = pipeline_trace != nullptr && step < total_step;
    bool meta_ready = true;

    if (metaload_step % cfg.meta_prefetch_stage == 0 &&
        metaload_step <
            total_step + cfg.meta_prefetch_stage + cfg.pipeline_stages) {
      // BulkLoadMeta: aggregate column indices of the next
      // meta_prefetch_stage steps (bandwidth-efficient bulk load).
      meta_loaded_until =
          std::min(total_step, std::max(meta_loaded_until,
                                        metaload_step +
                                            cfg.meta_prefetch_stage));
    }

    if (step >= 0 && step < total_step) {
      // WarpMMA (Fig. 4(c)): dense v x tn x tk tile product, fp32
      // accumulation, ascending-k order within the buffer. Operands were
      // decoded at stitch time, so this is pure float FMA.
      const TileScratch::Stage& buf =
          scratch.stages[static_cast<std::size_t>(step % cfg.pipeline_stages)];
      for (int kk = 0; kk < buf.valid_k; ++kk) {
        const float* arow = &buf.a_tile[static_cast<std::size_t>(kk) * v];
        const float* brow = &buf.b_tile[static_cast<std::size_t>(kk) * tn];
        for (int r = 0; r < v; ++r) {
          const float av = arow[r];
          if (av == 0.0f) continue;  // padded lane
          float* crow = &acc[static_cast<std::size_t>(r) * tn];
          for (int j = 0; j < jw; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }

    if (load_step >= 0 && load_step < total_step) {
      // StitchTile (Fig. 4(b)): requires the metadata of this step.
      meta_ready = load_step < meta_loaded_until;
      // SHFLBW_LINT_ALLOW(hot-path): hazard assert; allocates only on failure
      SHFLBW_CHECK_MSG(meta_ready, "pipeline hazard: stitching step "
                                       << load_step
                                       << " before its metadata loaded");
      TileScratch::Stage& buf =
          scratch.stages[static_cast<std::size_t>(load_step %
                                                  cfg.pipeline_stages)];
      const int k0 = load_step * cfg.tk;
      buf.valid_k = std::min(cfg.tk, kept - k0);
      for (int kk = 0; kk < cfg.tk; ++kk) {
        const bool in_range = kk < buf.valid_k;
        const int vec = base + k0 + kk;
        float* arow = &buf.a_tile[static_cast<std::size_t>(kk) * v];
        float* brow = &buf.b_tile[static_cast<std::size_t>(kk) * tn];
        if (in_range) {
          // A tile: vector-contiguous fp16 load (pre-rounded values).
          const float* asrc = &a_vals[static_cast<std::size_t>(vec) * v];
          std::copy(asrc, asrc + v, arow);
          // B tile: gather row col_idx[vec] — the in-buffer stitching
          // that turns the vector-wise matrix into a dense tile.
          const float* bsrc = bh.row(a.col_idx[vec]) + j0;
          std::copy(bsrc, bsrc + jw, brow);
          std::fill(brow + jw, brow + tn, 0.0f);
        } else {
          std::fill(arow, arow + v, 0.0f);
          std::fill(brow, brow + tn, 0.0f);
        }
      }
    }

    if (record) {
      // SHFLBW_LINT_ALLOW(hot-path): first-tile-only trace, off steady path
      pipeline_trace->push_back({metaload_step, load_step, step, meta_ready});
    }
    ++step;
    ++load_step;
    ++metaload_step;
  }

  // Write-back (Fig. 4(e)): row r of the tile goes to C row
  // row_map[g*v + r] — identity for VW, storage_to_original for
  // Shfl-BW (the reordered write-back, §4.2).
  for (int r = 0; r < v; ++r) {
    const int out_row = row_map[static_cast<std::size_t>(g) * v + r];
    float* dst = c.row(out_row) + j0;
    const float* src = &acc[static_cast<std::size_t>(r) * tn];
    for (int j = 0; j < jw; ++j) {
      dst[j] = RoundToFp16(src[j]);
    }
  }
  SHFLBW_HOT_END;
}

}  // namespace

Matrix<float> RunVwFamilyKernel(const VectorWiseMatrix& a,
                                const std::vector<int>& row_map,
                                const Matrix<float>& b, const TileConfig& cfg,
                                std::vector<PipelineEvent>* pipeline_trace) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  SHFLBW_CHECK_MSG(static_cast<int>(row_map.size()) == a.rows,
                   "row_map size " << row_map.size() << " != rows " << a.rows);
  SHFLBW_CHECK_MSG(cfg.tk > 0 && cfg.pipeline_stages > 0 &&
                       cfg.meta_prefetch_stage > 0,
                   "bad tile config");
  const int n = b.cols();
  const int v = a.v;
  // Tile width is clamped to the MMA granularity, matching VwFamilyStats
  // (a narrower-than-kMmaN output still occupies a full MMA tile).
  const int tn = std::min(cfg.tn, std::max(kMmaN, n));
  Matrix<float> c(a.rows, n);

  // Round both operands through fp16 once; every stitch then copies
  // floats instead of re-encoding the same entries per row-group.
  std::vector<float> a_vals(a.values.size());
  RoundRows(a.values.data(), a_vals.data(), a_vals.size());
  const Matrix<float> bh = RoundThroughFp16(b);

  // Every (row-group, column-tile) pair is an independent work item —
  // the same decomposition the CUDA grid uses (one threadblock per
  // output tile). Output regions are disjoint and each tile accumulates
  // in ascending-k order, so the result is bit-identical at any thread
  // count. The pipeline trace is only recorded for the first tile
  // (work item 0), exactly as the serial engine did.
  const int col_tiles = n > 0 ? (n + tn - 1) / tn : 0;
  const std::int64_t items =
      static_cast<std::int64_t>(a.Groups()) * col_tiles;
  ParallelFor(0, items, /*grain=*/1,
              [&](std::int64_t lo, std::int64_t hi) {
                TileScratch& scratch = LocalTileScratch();
                for (std::int64_t t = lo; t < hi; ++t) {
                  scratch.Prepare(v, cfg.tk, tn, cfg.pipeline_stages);
                  const int g = static_cast<int>(t / col_tiles);
                  const int j0 = static_cast<int>(t % col_tiles) * tn;
                  ExecuteVwTile(a, a_vals, row_map, bh, cfg, tn, g, j0,
                                scratch, c,
                                t == 0 ? pipeline_trace : nullptr);
                }
              });
  return c;
}

KernelResult SpmmVectorWise(const VectorWiseMatrix& a, const Matrix<float>& b,
                            const GpuSpec& spec, const TileConfig& cfg) {
  std::vector<int> identity(static_cast<std::size_t>(a.rows));
  std::iota(identity.begin(), identity.end(), 0);
  KernelResult r;
  r.c = RunVwFamilyKernel(a, identity, b, cfg, nullptr);
  std::vector<int> kept(static_cast<std::size_t>(a.Groups()));
  for (int g = 0; g < a.Groups(); ++g) kept[g] = a.KeptColumnsInGroup(g);
  r.stats = VwFamilyStats(a.rows, b.cols(), a.cols, kept, a.v, spec, cfg,
                          KernelClass::kVectorWiseTensorCore,
                          /*extra_metadata_bytes=*/0.0);
  return r;
}

}  // namespace shflbw
