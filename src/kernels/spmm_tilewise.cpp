#include "kernels/spmm_tilewise.h"

#include <numeric>

#include "common/check.h"

namespace shflbw {
namespace {

TileConfig TilewiseConfig() {
  TileConfig cfg;
  cfg.tn = 128;
  cfg.tk = 32;
  cfg.pipeline_stages = 2;
  cfg.meta_prefetch_stage = 2;
  return cfg;
}

void ApplyLaunchModel(KernelStats& s, int groups) {
  // One dense-GEMM launch per kept row-group tile, issued round-robin
  // over a fixed stream pool. Stream sync + launch overheads are what
  // sink this approach at real layer shapes. (Functional execution goes
  // through the shared tile-parallel VW engine — the launch overhead is
  // a property of the modelled GPU schedule, not of the simulator.)
  s.num_kernel_launches = std::max(1, groups);
  s.num_streams = kTilewiseStreams;
}

}  // namespace

KernelResult SpmmTilewise(const VectorWiseMatrix& a, const Matrix<float>& b,
                          const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(a.v == kTilewiseV,
                   "Tilewise uses V=128, got V=" << a.v);
  const TileConfig cfg = TilewiseConfig();
  std::vector<int> identity(static_cast<std::size_t>(a.rows));
  std::iota(identity.begin(), identity.end(), 0);
  KernelResult r;
  // Hot path lives in RunVwFamilyKernel's ExecuteVwTile (the SHFLBW_HOT
  // region in spmm_vector_wise.cpp).
  r.c = RunVwFamilyKernel(a, identity, b, cfg, nullptr);
  std::vector<int> kept(static_cast<std::size_t>(a.Groups()));
  for (int g = 0; g < a.Groups(); ++g) kept[g] = a.KeptColumnsInGroup(g);
  r.stats = VwFamilyStats(a.rows, b.cols(), a.cols, kept, a.v, spec, cfg,
                          KernelClass::kTilewise,
                          /*extra_metadata_bytes=*/0.0);
  ApplyLaunchModel(r.stats, a.Groups());
  return r;
}

KernelStats SpmmTilewiseStats(int m, int n, int k, double alpha,
                              const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(m % kTilewiseV == 0,
                   "m=" << m << " not divisible by V=128");
  const int groups = m / kTilewiseV;
  const int per_group =
      static_cast<int>(std::llround(alpha * static_cast<double>(k)));
  std::vector<int> kept(static_cast<std::size_t>(groups), per_group);
  KernelStats s =
      VwFamilyStats(m, n, k, kept, kTilewiseV, spec, TilewiseConfig(),
                    KernelClass::kTilewise, /*extra_metadata_bytes=*/0.0);
  ApplyLaunchModel(s, groups);
  return s;
}

}  // namespace shflbw
