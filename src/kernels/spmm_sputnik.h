// Sputnik-style unstructured SpMM (Gale et al., SC'20) — the strongest
// CUDA-core unstructured baseline in the paper (Fig. 1 "Cuda-Core
// Sparse", Fig. 6 "Unstructured"). Row-split 1-dimensional tiling with
// vector loads of B and subwarp reductions; no tensor-cores.
#pragma once

#include "arch/gpu_spec.h"
#include "format/csr.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// C = A_csr * B with Sputnik's row-split schedule.
KernelResult SpmmSputnik(const CsrMatrix& a, const Matrix<float>& b,
                         const GpuSpec& spec);

/// Stats-only model for shape (m, n, k) at non-zero count nnz.
KernelStats SpmmSputnikStats(int m, int n, int k, double nnz,
                             const GpuSpec& spec);

}  // namespace shflbw
