// Dense GEMM baselines: the cuBLAS tensor-core and CUDA-core kernels the
// paper normalizes against (Fig. 1 "Tensor-Core" / "Cuda-Core" lines,
// Fig. 6 "dense baseline").
#pragma once

#include "arch/gpu_spec.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// Numerically exact reference: C = A * B with fp16 operands and fp32
/// accumulation in ascending-K order. All sparse kernels in this library
/// produce bit-identical results to this reference on the same (masked)
/// A. Output values are representable in fp16 (final round).
Matrix<float> GemmReference(const Matrix<float>& a, const Matrix<float>& b);

/// cuBLAS-style tensor-core dense GEMM (128x128 threadblock tiles).
KernelResult GemmTensorCore(const Matrix<float>& a, const Matrix<float>& b,
                            const GpuSpec& spec);

/// cuBLAS-style CUDA-core dense GEMM (64x64 threadblock tiles).
KernelResult GemmCudaCore(const Matrix<float>& a, const Matrix<float>& b,
                          const GpuSpec& spec);

/// Stats-only variants for pure performance modelling (no functional
/// execution; used by layer sweeps over big shapes).
KernelStats GemmTensorCoreStats(int m, int n, int k, const GpuSpec& spec);
KernelStats GemmCudaCoreStats(int m, int n, int k, const GpuSpec& spec);

}  // namespace shflbw
