// Shared types for the functional GPU-kernel simulators.
//
// Every kernel in this directory does two things, exactly as described in
// DESIGN.md §0:
//   1. *Functional execution*: computes the output matrix by performing
//      the same algorithmic steps as the corresponding CUDA kernel
//      (tile loads, in-buffer stitching, MMA-granularity accumulation,
//      reordered write-back), with fp16 operands and fp32 accumulation.
//      All kernels accumulate along K in ascending order, so their
//      outputs are bit-identical to the dense reference on the same
//      masked weights.
//   2. *Stats collection*: counts the DRAM/L2 traffic and MAC
//      instructions the CUDA kernel would issue; the arch cost model
//      converts these into modelled time on V100/T4/A100.
//
// Wide-batch contract: N (the dense-operand column count) is a free
// dimension, not a fixed model property. Output column j depends only
// on input column j, accumulated along K in ascending order regardless
// of N or of the column-tile decomposition, and operand fp16 rounding
// is elementwise. Therefore packing K independent activations
// side-by-side into one N*K-column operand yields, in each column
// block, bits identical to K separate narrow launches — the invariant
// the runtime's cross-request fused batching (Engine::RunBatched) is
// built on. Kernels must not let a column's result depend on its
// neighbours (no cross-column reductions, no N-dependent accumulation
// reordering).
#pragma once

#include <algorithm>
#include <cmath>

#include "arch/kernel_stats.h"
#include "common/matrix.h"

namespace shflbw {

/// Bytes per stored element (half precision).
inline constexpr double kHalfBytes = 2.0;

/// Output of one kernel invocation.
struct KernelResult {
  Matrix<float> c;    // M x N output (fp16-representable values)
  KernelStats stats;  // resource counts for the cost model
};

/// Threadblock tile configuration. Defaults follow the paper's kernels
/// (TM is set per-kernel: V for vector/Shfl-BW kernels, 128 for dense).
struct TileConfig {
  int tn = 128;  // output-tile columns
  int tk = 16;   // K-step per MMA main-loop iteration
  int pipeline_stages = 2;      // double buffering (Fig. 4(d))
  int meta_prefetch_stage = 4;  // MetaPrefetchStage of Algorithm 1
};

/// Tensor-core MMA instruction granularity (mma.sync.m16n8k16, §2.1).
inline constexpr int kMmaM = 16;
inline constexpr int kMmaN = 8;
inline constexpr int kMmaK = 16;

/// Number of 16x8x16 MMA instructions needed to cover a TM x TN x TK
/// dense tile multiply (each dimension rounded up to the granularity).
inline double MmaInstructionCount(double tm, double tn, double tk) {
  const double m_tiles = std::ceil(tm / kMmaM);
  const double n_tiles = std::ceil(tn / kMmaN);
  const double k_tiles = std::ceil(tk / kMmaK);
  return m_tiles * n_tiles * k_tiles;
}

/// DRAM reload factor for a dense operand that is re-read across tile
/// passes: 1 if it fits in (80% of) the L2, otherwise every pass misses.
inline double ReloadFactor(double unique_bytes, double l2_capacity,
                           double passes) {
  return unique_bytes <= 0.8 * l2_capacity ? 1.0 : std::max(1.0, passes);
}

}  // namespace shflbw
