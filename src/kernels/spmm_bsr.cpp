#include "kernels/spmm_bsr.h"

#include <algorithm>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"

namespace shflbw {

KernelStats SpmmBsrStats(int m, int n, int k, double nnz_blocks, int v,
                         const GpuSpec& spec, const TileConfig& cfg) {
  KernelStats s;
  s.kernel_name = "cusparse-bsrmm";
  s.kernel_class = KernelClass::kBsrTensorCore;
  s.tensor_core = true;
  s.block_size = v;
  const double nnz = nnz_blocks * v * v;  // stored elements (incl. padding)
  s.useful_flops = 2.0 * nnz * n;
  const int tn = std::min(cfg.tn, std::max(kMmaN, n));
  const double n_pad = std::ceil(static_cast<double>(n) / tn) * tn;
  s.issued_macs = nnz * n_pad;

  s.metadata_bytes = 4.0 * (static_cast<double>(m) / v + 1 + nnz_blocks);
  const double a_bytes = nnz * kHalfBytes + s.metadata_bytes;
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  const double col_tiles = n_pad / tn;
  // Dense blocks: per output tile, B contributes only the rows covered by
  // non-zero blocks — V rows per block, shared across the whole V-tall
  // tile. This is the full data reuse of §3.2.2.
  s.l2_read_bytes = nnz_blocks * v * tn * kHalfBytes * col_tiles +
                    a_bytes * col_tiles;
  // Column-tile-outer loop order keeps a K x tn slice of B L2-resident
  // across block rows; B streams from DRAM once if the slice fits.
  const double b_slice = static_cast<double>(k) * tn * kHalfBytes;
  s.dram_read_bytes =
      a_bytes + b_unique * ReloadFactor(b_slice, spec.l2_capacity,
                                        static_cast<double>(m) / v);
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  s.threadblocks = static_cast<int>((static_cast<double>(m) / v) * col_tiles);
  s.main_loop_iters = std::max(
      1, static_cast<int>(nnz_blocks / std::max(1.0, static_cast<double>(m) / v)));
  s.pipeline_stages = cfg.pipeline_stages;
  return s;
}

KernelResult SpmmBsr(const BsrMatrix& a, const Matrix<float>& b,
                     const GpuSpec& spec, const TileConfig& cfg) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  const int n = b.cols();
  const int v = a.block_size;
  KernelResult r;
  r.c = Matrix<float>(a.rows, n);
  // Block-row schedule: accumulate dense V x V blocks in ascending
  // block-column order (== ascending K). Block rows are independent
  // output strips, so they run in parallel over pre-rounded operands.
  std::vector<float> vals(a.values.size());
  RoundRows(a.values.data(), vals.data(), vals.size());
  const Matrix<float> bh = RoundThroughFp16(b);
  ParallelFor(0, a.BlockRows(), /*grain=*/1,
              [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(n));
    SHFLBW_HOT_BEGIN;
    for (std::int64_t br = lo; br < hi; ++br) {
      for (int rr = 0; rr < v; ++rr) {
        const int row = static_cast<int>(br) * v + rr;
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (int i = a.block_row_ptr[br]; i < a.block_row_ptr[br + 1]; ++i) {
          const int bc = a.block_col_idx[i];
          const float* block =
              &vals[static_cast<std::size_t>(i) * v * v + rr * v];
          for (int cc = 0; cc < v; ++cc) {
            const float av = block[cc];
            const float* brow = bh.row(bc * v + cc);
            for (int j = 0; j < n; ++j) acc[j] += av * brow[j];
          }
        }
        float* crow = r.c.row(row);
        for (int j = 0; j < n; ++j) crow[j] = RoundToFp16(acc[j]);
      }
    }
    SHFLBW_HOT_END;
  });
  r.stats = SpmmBsrStats(a.rows, n, a.cols, a.NnzBlocks(), v, spec, cfg);
  return r;
}

}  // namespace shflbw
