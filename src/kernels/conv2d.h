// 2D convolution via the implicit-GEMM algorithm (§4.1: "the input
// feature map is unfolded into a matrix form temporally in on-chip
// buffers"). Dense baseline models cuDNN; the sparse variant runs the
// Shfl-BW SpMM over the unfolded input. Used for the ResNet50 column of
// Fig. 6.
#pragma once

#include <vector>

#include "arch/gpu_spec.h"
#include "common/check.h"
#include "format/shfl_bw.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// NCHW activation tensor.
struct Tensor4 {
  int n = 0, c = 0, h = 0, w = 0;
  std::vector<float> data;  // n*c*h*w, NCHW

  Tensor4() = default;
  Tensor4(int n_, int c_, int h_, int w_)
      : n(n_), c(c_), h(h_), w(w_),
        data(static_cast<std::size_t>(n_) * c_ * h_ * w_, 0.0f) {}

  float& at(int ni, int ci, int hi, int wi) {
    return data[Index(ni, ci, hi, wi)];
  }
  float at(int ni, int ci, int hi, int wi) const {
    return data[Index(ni, ci, hi, wi)];
  }

  /// Re-shapes in place, reusing storage capacity. Exact-extent like
  /// Matrix<T>::Reshape: shrinking (e.g. a narrower fused batch after a
  /// wide one) drops the tail instead of leaving stale activations
  /// reachable. Contents are unspecified after a shape change.
  void Reshape(int n_, int c_, int h_, int w_) {
    SHFLBW_CHECK_MSG(n_ >= 0 && c_ >= 0 && h_ >= 0 && w_ >= 0,
                     "negative shape " << n_ << "x" << c_ << "x" << h_
                                       << "x" << w_);
    n = n_;
    c = c_;
    h = h_;
    w = w_;
    data.resize(static_cast<std::size_t>(n_) * c_ * h_ * w_);
  }

 private:
  std::size_t Index(int ni, int ci, int hi, int wi) const {
    return ((static_cast<std::size_t>(ni) * c + ci) * h + hi) * w + wi;
  }
};

/// Convolution problem description.
struct ConvShape {
  int batch = 1;
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int kh = 1, kw = 1;
  int stride = 1;
  int pad = 0;

  int OutH() const { return (in_h + 2 * pad - kh) / stride + 1; }
  int OutW() const { return (in_w + 2 * pad - kw) / stride + 1; }
  /// Implicit-GEMM dims: M = out_c, K = in_c*kh*kw, N = batch*OutH*OutW.
  int GemmM() const { return out_c; }
  int GemmK() const { return in_c * kh * kw; }
  int GemmN() const { return batch * OutH() * OutW(); }
};

/// Unfolds the input into the implicit-GEMM operand: row (ci*kh+r)*kw+s,
/// column ((b*OutH+y)*OutW+x), zero-padded at the borders. Columns are
/// batch-major, so concatenating K inputs along the batch dimension
/// concatenates their unfolded matrices column-block-wise — which is
/// what lets the runtime fuse K requests into one conv launch under the
/// kernel_api.h wide-batch contract (each request's output occupies a
/// contiguous GemmN-wide column block, bit-identical to its own narrow
/// launch).
Matrix<float> Im2Col(const Tensor4& input, const ConvShape& shape);

/// Filter tensor [out_c][in_c][kh][kw] flattened to the GEMM weight
/// matrix out_c x (in_c*kh*kw).
Matrix<float> FilterToMatrix(const std::vector<float>& filter,
                             const ConvShape& shape);

/// Dense cuDNN-style implicit-GEMM convolution on tensor-cores.
/// Output layout: M x N matrix (out channel x (batch*oh*ow)).
KernelResult Conv2dDense(const Tensor4& input, const Matrix<float>& weights,
                         const ConvShape& shape, const GpuSpec& spec);

/// Shfl-BW sparse implicit-GEMM convolution.
KernelResult Conv2dShflBw(const Tensor4& input, const ShflBwMatrix& weights,
                          const ConvShape& shape, const GpuSpec& spec,
                          const TileConfig& cfg = {});

/// Stats-only models (used by the ResNet50 layer sweeps): the implicit-
/// GEMM traffic equals the GEMM traffic except the dense operand's DRAM
/// footprint is the (un-duplicated) feature map — the kh*kw overlap is
/// served from L2/shared memory.
KernelStats Conv2dDenseStats(const ConvShape& shape, const GpuSpec& spec);
KernelStats Conv2dShflBwStats(const ConvShape& shape, double alpha, int v,
                              const GpuSpec& spec, const TileConfig& cfg = {});

/// Stats-only model for the vector-wise kernel on conv: identical
/// engine to Shfl-BW minus the row-index metadata of the reordered
/// write-back. Shared by the Fig. 6 evaluator and the runtime planner.
KernelStats Conv2dVectorWiseStats(const ConvShape& shape, double alpha, int v,
                                  const GpuSpec& spec,
                                  const TileConfig& cfg = {});

}  // namespace shflbw
