// Uniform interface over every kernel's stats model, keyed by
// KernelClass — the engine behind the Fig. 1/2/6 sweeps: given a layer
// shape, sparsity and block size, produce the modelled time of each
// implementation on each GPU.
#pragma once

#include <optional>
#include <vector>

#include "arch/cost_model.h"
#include "arch/gpu_spec.h"
#include "arch/kernel_stats.h"

namespace shflbw {

/// A GEMM-shaped layer problem at a given sparsity.
struct LayerProblem {
  int m = 0;  // output features (weight rows)
  int n = 0;  // batch * sequence (activation columns)
  int k = 0;  // input features (weight cols)
  double density = 1.0;  // non-zero ratio alpha (1.0 = dense)
  int v = 32;            // block / vector size where applicable
};

/// Stats model of `klass` on the problem. Returns nullopt where the
/// combination is undefined (e.g. balanced 2:4 at density != 0.5, or a
/// pattern whose V constraint the shape cannot satisfy).
std::optional<KernelStats> LayerStats(KernelClass klass,
                                      const LayerProblem& p,
                                      const GpuSpec& spec);

/// Modelled seconds of `klass` on the problem, through the cost model.
std::optional<double> LayerSeconds(KernelClass klass, const LayerProblem& p,
                                   const GpuSpec& spec);

/// Speedup of `klass` over the dense tensor-core baseline on this GPU.
std::optional<double> SpeedupOverDense(KernelClass klass,
                                       const LayerProblem& p,
                                       const GpuSpec& spec);

/// Sum of modelled times over a set of layers (a whole model's
/// compute-intensive layers, as Fig. 6 reports).
std::optional<double> TotalSeconds(KernelClass klass,
                                   const std::vector<LayerProblem>& layers,
                                   const GpuSpec& spec);

/// All kernel classes evaluated in Fig. 6, in plot order.
const std::vector<KernelClass>& Fig6KernelClasses();

}  // namespace shflbw
