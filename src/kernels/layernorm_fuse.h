// Fused LayerNorm + transposition (§4.3 discussion).
//
// The Shfl-BW kernels assume row-major activations with batch innermost.
// "In models which apply LayerNorm and require feature to be stored
// contiguously, transposition is necessary, but transposition can be
// easily fused into previous LayerNorm and involves negligible
// overhead." This module provides exactly that fusion: a LayerNorm that
// reads feature-major input and writes the batch-innermost layout the
// sparse kernels consume, plus a traffic model showing the fusion costs
// no extra DRAM round-trip.
#pragma once

#include <vector>

#include "arch/gpu_spec.h"
#include "kernels/kernel_api.h"

namespace shflbw {

struct LayerNormParams {
  std::vector<float> gamma;  // per-feature scale
  std::vector<float> beta;   // per-feature shift
  float epsilon = 1e-5f;
};

/// Plain LayerNorm over features: input and output are feature-major
/// (rows = batch tokens, cols = features), normalized per token.
Matrix<float> LayerNorm(const Matrix<float>& tokens_by_features,
                        const LayerNormParams& params);

/// Fused LayerNorm + transpose: same math, but the output is written
/// directly in the sparse-kernel layout (rows = features, cols = batch
/// tokens). Numerically identical to LayerNorm followed by a transpose.
Matrix<float> LayerNormTransposed(const Matrix<float>& tokens_by_features,
                                  const LayerNormParams& params);

/// Traffic/time model: the fused kernel reads the input once and writes
/// the transposed output once; the unfused pipeline pays an extra full
/// read+write for the standalone transpose.
KernelStats LayerNormFusedStats(int tokens, int features,
                                const GpuSpec& spec);
KernelStats LayerNormThenTransposeStats(int tokens, int features,
                                        const GpuSpec& spec);

}  // namespace shflbw
