// Tilewise baseline (Guo et al., SC'20): tile-wise sparsity executed as
// per-tile dense GEMMs on CUDA multi-streams (V=128 granularity). The
// paper observes that "due to the overhead when the number of streams
// grows, their multi-stream approach cannot exceed the dense baseline
// under real weight shapes" — modelled here as one kernel launch per row
// group spread over a fixed stream pool.
#pragma once

#include "arch/gpu_spec.h"
#include "format/vector_wise.h"
#include "kernels/spmm_vector_wise.h"

namespace shflbw {

inline constexpr int kTilewiseV = 128;
inline constexpr int kTilewiseStreams = 8;

/// C = A_vw * B with the Tilewise schedule. a.v must be 128.
KernelResult SpmmTilewise(const VectorWiseMatrix& a, const Matrix<float>& b,
                          const GpuSpec& spec);

/// Stats-only model at stored density alpha (V fixed to 128).
KernelStats SpmmTilewiseStats(int m, int n, int k, double alpha,
                              const GpuSpec& spec);

}  // namespace shflbw
