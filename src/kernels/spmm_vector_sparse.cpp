#include "kernels/spmm_vector_sparse.h"

#include <numeric>

#include "common/check.h"

namespace shflbw {
namespace {

TileConfig VectorSparseConfig() {
  TileConfig cfg;
  cfg.tn = 64;  // narrower tiles: small V leaves less register budget
  cfg.tk = 16;
  cfg.pipeline_stages = 2;
  cfg.meta_prefetch_stage = 2;
  return cfg;
}

}  // namespace

KernelResult SpmmVectorSparse(const VectorWiseMatrix& a,
                              const Matrix<float>& b, const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(a.v <= kVectorSparseV,
                   "VectorSparse supports V<=8, got V=" << a.v);
  const TileConfig cfg = VectorSparseConfig();
  std::vector<int> identity(static_cast<std::size_t>(a.rows));
  std::iota(identity.begin(), identity.end(), 0);
  KernelResult r;
  // Hot path lives in RunVwFamilyKernel's ExecuteVwTile (the SHFLBW_HOT
  // region in spmm_vector_wise.cpp).
  r.c = RunVwFamilyKernel(a, identity, b, cfg, nullptr);
  std::vector<int> kept(static_cast<std::size_t>(a.Groups()));
  for (int g = 0; g < a.Groups(); ++g) kept[g] = a.KeptColumnsInGroup(g);
  r.stats = VwFamilyStats(a.rows, b.cols(), a.cols, kept, a.v, spec, cfg,
                          KernelClass::kVectorSparse,
                          /*extra_metadata_bytes=*/0.0);
  return r;
}

KernelStats SpmmVectorSparseStats(int m, int n, int k, double alpha,
                                  const GpuSpec& spec) {
  const int groups = m / kVectorSparseV;
  const int per_group =
      static_cast<int>(std::llround(alpha * static_cast<double>(k)));
  std::vector<int> kept(static_cast<std::size_t>(groups), per_group);
  return VwFamilyStats(m, n, k, kept, kVectorSparseV, spec,
                       VectorSparseConfig(), KernelClass::kVectorSparse,
                       /*extra_metadata_bytes=*/0.0);
}

}  // namespace shflbw
