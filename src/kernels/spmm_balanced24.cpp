#include "kernels/spmm_balanced24.h"

#include <algorithm>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"

namespace shflbw {

KernelStats SpmmBalanced24Stats(int m, int n, int k, const GpuSpec& spec) {
  KernelStats s;
  s.kernel_name = "cusparselt-2in4";
  s.kernel_class = KernelClass::kBalanced24;
  s.tensor_core = true;
  const double nnz = 0.5 * m * k;
  s.useful_flops = 2.0 * nnz * n;
  // The sparse tensor-core runs the 16x8x16 MMA over the compressed
  // operand: half the MACs of the dense kernel at the same tile shape.
  const int tm = 128;
  const int tn = n >= 128 ? 128 : 64;
  const double m_pad = std::ceil(static_cast<double>(m) / tm) * tm;
  const double n_pad = std::ceil(static_cast<double>(n) / tn) * tn;
  s.issued_macs = 0.5 * m_pad * n_pad * k;

  s.metadata_bytes = nnz * 2.0 / 8.0;  // 2-bit position per kept value
  const double a_bytes = nnz * kHalfBytes + s.metadata_bytes;
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  const double row_tiles = m_pad / tm;
  const double col_tiles = n_pad / tn;
  // Key inefficiency (§1): the FULL K x TN B tile is loaded before the
  // hardware selects the 2-of-4 operands, so B traffic equals the dense
  // kernel's despite the halved compute.
  s.l2_read_bytes = b_unique * row_tiles + a_bytes * col_tiles;
  s.dram_read_bytes =
      a_bytes + b_unique * ReloadFactor(b_unique, spec.l2_capacity,
                                        row_tiles);
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  s.threadblocks = static_cast<int>(row_tiles * col_tiles);
  s.main_loop_iters = std::max(1, k / 32);
  s.pipeline_stages = 2;
  return s;
}

KernelResult SpmmBalanced24(const Balanced24Matrix& a, const Matrix<float>& b,
                            const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  const int n = b.cols();
  KernelResult r;
  r.c = Matrix<float>(a.rows, n);
  // Operand selection + MMA: for each quad, the two kept values multiply
  // the B rows their metadata points at (ascending position within the
  // quad == ascending K). Rows are independent and run in parallel over
  // pre-rounded operands.
  std::vector<float> vals(a.values.size());
  RoundRows(a.values.data(), vals.data(), vals.size());
  const Matrix<float> bh = RoundThroughFp16(b);
  ParallelFor(0, a.rows, /*grain=*/8, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(n));
    SHFLBW_HOT_BEGIN;
    for (std::int64_t row = lo; row < hi; ++row) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      std::size_t slot = static_cast<std::size_t>(row) * a.cols / 2;
      for (int q = 0; q < a.QuadsPerRow(); ++q) {
        for (int ss = 0; ss < 2; ++ss, ++slot) {
          if (a.values[slot] == 0.0f) continue;  // padding slot
          const float v = vals[slot];
          const float* brow = bh.row(q * 4 + a.meta[slot]);
          for (int j = 0; j < n; ++j) acc[j] += v * brow[j];
        }
      }
      float* crow = r.c.row(static_cast<int>(row));
      for (int j = 0; j < n; ++j) crow[j] = RoundToFp16(acc[j]);
    }
    SHFLBW_HOT_END;
  });
  r.stats = SpmmBalanced24Stats(a.rows, n, a.cols, spec);
  return r;
}

}  // namespace shflbw
