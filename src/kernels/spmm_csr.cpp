#include "kernels/spmm_csr.h"

#include <algorithm>

#include "common/check.h"
#include "common/fp16.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"

namespace shflbw {

KernelStats SpmmCsrScalarStats(int m, int n, int k, double nnz,
                               const GpuSpec& spec) {
  KernelStats s;
  s.kernel_name = "cusparse-csrmm";
  s.kernel_class = KernelClass::kCsrScalar;
  s.tensor_core = false;
  s.useful_flops = 2.0 * nnz * n;
  s.issued_macs = nnz * n;

  s.metadata_bytes = 4.0 * (m + 1) + 4.0 * nnz;  // row_ptr + col_idx
  const double a_bytes = nnz * kHalfBytes + s.metadata_bytes;
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  // Scalar gathers: every non-zero pulls one B row segment of N values
  // through the L2 with no shared-memory reuse across rows.
  s.l2_read_bytes = nnz * n * kHalfBytes + a_bytes;
  s.dram_read_bytes =
      a_bytes +
      b_unique * ReloadFactor(b_unique, spec.l2_capacity,
                              std::max(1.0, nnz / std::max(1, k)));
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  s.threadblocks = (m + 127) / 128;
  s.main_loop_iters = m > 0 ? static_cast<int>(nnz / m) : 0;
  s.pipeline_stages = 0;  // csrmm does not software-pipeline
  return s;
}

Matrix<float> RunCsrRowParallel(const CsrMatrix& a, const Matrix<float>& b) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  const int n = b.cols();
  Matrix<float> c(a.rows, n);
  // Pre-round both operands through fp16 once, then run pure float
  // gather-accumulate, row-parallel (each output row is independent;
  // per element the sum stays in ascending column order, so results are
  // bit-identical to the serial elementwise version).
  std::vector<float> vals(a.values.size());
  RoundRows(a.values.data(), vals.data(), vals.size());
  const Matrix<float> bh = RoundThroughFp16(b);
  ParallelFor(0, a.rows, /*grain=*/8, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(n));
    SHFLBW_HOT_BEGIN;
    for (std::int64_t row = lo; row < hi; ++row) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (int i = a.row_ptr[row]; i < a.row_ptr[row + 1]; ++i) {
        const float av = vals[static_cast<std::size_t>(i)];
        const float* brow = bh.row(a.col_idx[i]);
        for (int j = 0; j < n; ++j) acc[j] += av * brow[j];
      }
      float* crow = c.row(static_cast<int>(row));
      for (int j = 0; j < n; ++j) crow[j] = RoundToFp16(acc[j]);
    }
    SHFLBW_HOT_END;
  });
  return c;
}

KernelResult SpmmCsrScalar(const CsrMatrix& a, const Matrix<float>& b,
                           const GpuSpec& spec) {
  KernelResult r;
  r.c = RunCsrRowParallel(a, b);
  r.stats = SpmmCsrScalarStats(a.rows, b.cols(), a.cols, a.Nnz(), spec);
  return r;
}

}  // namespace shflbw
