#include "kernels/spmm_csr.h"

#include "common/check.h"
#include "common/fp16.h"

namespace shflbw {

KernelStats SpmmCsrScalarStats(int m, int n, int k, double nnz,
                               const GpuSpec& spec) {
  KernelStats s;
  s.kernel_name = "cusparse-csrmm";
  s.kernel_class = KernelClass::kCsrScalar;
  s.tensor_core = false;
  s.useful_flops = 2.0 * nnz * n;
  s.issued_macs = nnz * n;

  s.metadata_bytes = 4.0 * (m + 1) + 4.0 * nnz;  // row_ptr + col_idx
  const double a_bytes = nnz * kHalfBytes + s.metadata_bytes;
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  // Scalar gathers: every non-zero pulls one B row segment of N values
  // through the L2 with no shared-memory reuse across rows.
  s.l2_read_bytes = nnz * n * kHalfBytes + a_bytes;
  s.dram_read_bytes =
      a_bytes +
      b_unique * ReloadFactor(b_unique, spec.l2_capacity,
                              std::max(1.0, nnz / std::max(1, k)));
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  s.threadblocks = (m + 127) / 128;
  s.main_loop_iters = m > 0 ? static_cast<int>(nnz / m) : 0;
  s.pipeline_stages = 0;  // csrmm does not software-pipeline
  return s;
}

KernelResult SpmmCsrScalar(const CsrMatrix& a, const Matrix<float>& b,
                           const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(a.cols == b.rows(), "SpMM shape mismatch");
  const int n = b.cols();
  KernelResult r;
  r.c = Matrix<float>(a.rows, n);
  for (int row = 0; row < a.rows; ++row) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int i = a.row_ptr[row]; i < a.row_ptr[row + 1]; ++i) {
        acc = FmaF16F32(Fp16(a.values[i]), Fp16(b(a.col_idx[i], j)), acc);
      }
      r.c(row, j) = Fp16(acc).ToFloat();
    }
  }
  r.stats = SpmmCsrScalarStats(a.rows, n, a.cols, a.Nnz(), spec);
  return r;
}

}  // namespace shflbw
