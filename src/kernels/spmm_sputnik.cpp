#include "kernels/spmm_sputnik.h"

#include "common/check.h"
#include "kernels/spmm_csr.h"

namespace shflbw {

KernelStats SpmmSputnikStats(int m, int n, int k, double nnz,
                             const GpuSpec& spec) {
  KernelStats s;
  s.kernel_name = "sputnik";
  s.kernel_class = KernelClass::kSputnik;
  s.tensor_core = false;
  s.useful_flops = 2.0 * nnz * n;
  s.issued_macs = nnz * n;

  // Sputnik stores fp16 values with int16 relative column offsets after
  // its index compression, plus row offsets.
  s.metadata_bytes = 2.0 * nnz + 4.0 * (m + 1);
  const double a_bytes = nnz * kHalfBytes + s.metadata_bytes;
  const double b_unique = static_cast<double>(k) * n * kHalfBytes;
  // Row-split: each non-zero triggers a vector load of the N-wide B row
  // slice. Sputnik's 128-bit vector loads and row-sorted schedule give
  // high L1 locality on the B slices, so only ~1/4 of the gather volume
  // reaches the L2 (the rest hits in L1).
  constexpr double kL1MissRate = 0.25;
  s.l2_read_bytes = nnz * n * kHalfBytes * kL1MissRate + a_bytes;
  s.dram_read_bytes =
      a_bytes + b_unique * ReloadFactor(b_unique, spec.l2_capacity,
                                        std::max(1.0, nnz / std::max(1, k)));
  s.dram_write_bytes = static_cast<double>(m) * n * kHalfBytes;
  s.threadblocks = (m + 3) / 4;  // 4 rows per threadblock (subwarp tiling)
  s.main_loop_iters =
      m > 0 ? std::max(1, static_cast<int>(nnz / m / 32)) : 0;
  s.pipeline_stages = 1;  // single-stage prefetch in Sputnik
  return s;
}

KernelResult SpmmSputnik(const CsrMatrix& a, const Matrix<float>& b,
                         const GpuSpec& spec) {
  // Row-split schedule: each "subwarp" owns one row; functionally this
  // is the shared row-parallel CSR gather-accumulate (ascending column
  // order, bit-identical to the dense reference on the masked matrix).
  // Sputnik differs from the scalar baseline only in its traffic model.
  // Hot path lives in RunCsrRowParallel (the SHFLBW_HOT region in
  // spmm_csr.cpp).
  KernelResult r;
  r.c = RunCsrRowParallel(a, b);
  r.stats = SpmmSputnikStats(a.rows, b.cols(), a.cols, a.Nnz(), spec);
  return r;
}

}  // namespace shflbw
