#include "kernels/conv2d.h"

#include "common/check.h"
#include "common/hot_path.h"
#include "common/thread_pool.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_shfl_bw.h"

namespace shflbw {

Matrix<float> Im2Col(const Tensor4& input, const ConvShape& shape) {
  SHFLBW_CHECK_MSG(input.n == shape.batch && input.c == shape.in_c &&
                       input.h == shape.in_h && input.w == shape.in_w,
                   "input tensor does not match conv shape");
  const int oh = shape.OutH();
  const int ow = shape.OutW();
  Matrix<float> b(shape.GemmK(), shape.GemmN());
  // Input channels write disjoint row bands of the unfolded matrix, so
  // the unfold runs channel-parallel.
  auto unfold_channel = [&](int ci) {
    SHFLBW_HOT_BEGIN;
    for (int r = 0; r < shape.kh; ++r) {
      for (int s = 0; s < shape.kw; ++s) {
        const int row = (ci * shape.kh + r) * shape.kw + s;
        for (int bi = 0; bi < shape.batch; ++bi) {
          for (int y = 0; y < oh; ++y) {
            const int hy = y * shape.stride - shape.pad + r;
            for (int x = 0; x < ow; ++x) {
              const int wx = x * shape.stride - shape.pad + s;
              const int col = (bi * oh + y) * ow + x;
              const bool in_bounds =
                  hy >= 0 && hy < shape.in_h && wx >= 0 && wx < shape.in_w;
              b(row, col) = in_bounds ? input.at(bi, ci, hy, wx) : 0.0f;
            }
          }
        }
      }
    }
    SHFLBW_HOT_END;
  };
  ParallelFor(0, shape.in_c, /*grain=*/1,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t ci = lo; ci < hi; ++ci) {
                  unfold_channel(static_cast<int>(ci));
                }
              });
  return b;
}

Matrix<float> FilterToMatrix(const std::vector<float>& filter,
                             const ConvShape& shape) {
  const std::size_t expected = static_cast<std::size_t>(shape.out_c) *
                               shape.in_c * shape.kh * shape.kw;
  SHFLBW_CHECK_MSG(filter.size() == expected,
                   "filter size " << filter.size() << " != " << expected);
  // [out_c][in_c][kh][kw] is already row-major out_c x (in_c*kh*kw).
  return Matrix<float>(shape.out_c, shape.GemmK(),
                       std::vector<float>(filter));
}

namespace {

/// Adjusts a GEMM stats object for implicit-GEMM convolution: the dense
/// operand's unique DRAM footprint is the feature map itself, not the
/// kh*kw-duplicated unfolded matrix (duplication is materialized only in
/// on-chip buffers, §4.1).
void DeduplicateActivationTraffic(KernelStats& s, const ConvShape& shape,
                                  const GpuSpec& spec) {
  const double unfolded =
      static_cast<double>(shape.GemmK()) * shape.GemmN() * kHalfBytes;
  const double feature_map = static_cast<double>(shape.batch) * shape.in_c *
                             shape.in_h * shape.in_w * kHalfBytes;
  // Replace the unfolded-B contribution with the feature map, using the
  // same slice-resident reload rule the GEMM stats applied (a K x 128
  // column slice of B held in L2 across row passes).
  const double passes =
      std::max(1.0, static_cast<double>(shape.GemmM()) / 128.0);
  const double slice = static_cast<double>(shape.GemmK()) * 128 * kHalfBytes;
  const double old_b =
      unfolded * ReloadFactor(slice, spec.l2_capacity, passes);
  const double new_b =
      feature_map * ReloadFactor(slice, spec.l2_capacity, passes);
  s.dram_read_bytes = std::max(0.0, s.dram_read_bytes - old_b) + new_b;
}

}  // namespace

KernelStats Conv2dDenseStats(const ConvShape& shape, const GpuSpec& spec) {
  KernelStats s =
      GemmTensorCoreStats(shape.GemmM(), shape.GemmN(), shape.GemmK(), spec);
  s.kernel_name = "cudnn-implicit-gemm";
  DeduplicateActivationTraffic(s, shape, spec);
  return s;
}

KernelStats Conv2dShflBwStats(const ConvShape& shape, double alpha, int v,
                              const GpuSpec& spec, const TileConfig& cfg) {
  KernelStats s = SpmmShflBwStats(shape.GemmM(), shape.GemmN(), shape.GemmK(),
                                  alpha, v, spec, cfg);
  s.kernel_name = "shflbw-implicit-gemm";
  DeduplicateActivationTraffic(s, shape, spec);
  return s;
}

KernelStats Conv2dVectorWiseStats(const ConvShape& shape, double alpha, int v,
                                  const GpuSpec& spec,
                                  const TileConfig& cfg) {
  KernelStats s = Conv2dShflBwStats(shape, alpha, v, spec, cfg);
  s.kernel_name = "vw-implicit-gemm";
  s.kernel_class = KernelClass::kVectorWiseTensorCore;
  s.metadata_bytes -= 4.0 * shape.GemmM();
  s.dram_read_bytes -= 4.0 * shape.GemmM();
  return s;
}

KernelResult Conv2dDense(const Tensor4& input, const Matrix<float>& weights,
                         const ConvShape& shape, const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(weights.rows() == shape.out_c &&
                       weights.cols() == shape.GemmK(),
                   "weights " << weights.rows() << "x" << weights.cols()
                              << " do not match conv shape");
  const Matrix<float> b = Im2Col(input, shape);
  KernelResult r;
  r.c = GemmReference(weights, b);
  r.stats = Conv2dDenseStats(shape, spec);
  return r;
}

KernelResult Conv2dShflBw(const Tensor4& input, const ShflBwMatrix& weights,
                          const ConvShape& shape, const GpuSpec& spec,
                          const TileConfig& cfg) {
  SHFLBW_CHECK_MSG(weights.rows() == shape.out_c &&
                       weights.cols() == shape.GemmK(),
                   "sparse weights do not match conv shape");
  const Matrix<float> b = Im2Col(input, shape);
  KernelResult r = SpmmShflBw(weights, b, spec, cfg);
  DeduplicateActivationTraffic(r.stats, shape, spec);
  r.stats.kernel_name = "shflbw-implicit-gemm";
  return r;
}

}  // namespace shflbw
