// Our vector-wise tensor-core SpMM — the paper's own "VW" kernel
// (Fig. 6), and the execution engine shared with Shfl-BW: Shfl-BW *is*
// this kernel plus the row-index indirection in the write-back phase.
#pragma once

#include <vector>

#include "arch/gpu_spec.h"
#include "format/vector_wise.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// C = A_vw * B on tensor-cores (rows written back in storage order).
KernelResult SpmmVectorWise(const VectorWiseMatrix& a, const Matrix<float>& b,
                            const GpuSpec& spec, const TileConfig& cfg = {});

/// Shared VW-family stats model: v-tall dense tiles over kept vectors.
/// kept_per_group holds the number of kept columns of each row group;
/// extra_metadata_bytes covers kernel-specific additions (the Shfl-BW
/// row-index array).
KernelStats VwFamilyStats(int m, int n, int k,
                          const std::vector<int>& kept_per_group, int v,
                          const GpuSpec& spec, const TileConfig& cfg,
                          KernelClass klass, double extra_metadata_bytes);

/// Shared functional engine (Fig. 4 steps (b)-(e)): executes the
/// pipelined stitch + MMA loop over every (row-group, column-tile) pair
/// and writes each output row r of group g to row row_map[g*v + r] of C.
/// Passing the identity map gives the VW kernel; passing
/// storage_to_original gives Shfl-BW's reordered write-back.
/// pipeline_trace, when non-null, records {metaload, load, mma} step
/// counters for every pipeline iteration of the first tile (used by
/// tests to verify the two-level prefetch invariant of Algorithm 1).
struct PipelineEvent {
  int metaload_step;
  int load_step;
  int mma_step;
  bool meta_ready;  // stitched tile's metadata was prefetched in time
};

Matrix<float> RunVwFamilyKernel(const VectorWiseMatrix& a,
                                const std::vector<int>& row_map,
                                const Matrix<float>& b, const TileConfig& cfg,
                                std::vector<PipelineEvent>* pipeline_trace);

}  // namespace shflbw
