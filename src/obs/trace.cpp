#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/clock.h"

namespace shflbw {
namespace obs {
namespace {

void CopyLabel(char* dst, std::size_t cap, const std::string& s) {
  const std::size_t n = std::min(s.size(), cap - 1);
  std::memcpy(dst, s.data(), n);
  dst[n] = '\0';
}

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (*s == '\n' || *s == '\t') {
      out.push_back(' ');
      continue;
    }
    out.push_back(*s);
  }
  return out;
}

/// Spans that belong to a request's track (pid 2); the rest narrate
/// the replica scheduler thread (pid 1).
bool RequestScoped(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission:
    case SpanKind::kQueue:
    case SpanKind::kRun:
    case SpanKind::kShed:
      return true;
    case SpanKind::kCoalesce:
    case SpanKind::kKernel:
    case SpanKind::kRetry:
      return false;
  }
  return false;
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission: return "admission";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kCoalesce: return "coalesce";
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kRun: return "run";
    case SpanKind::kShed: return "shed";
  }
  return "?";
}

void TraceEvent::SetLabel(const std::string& s) {
  CopyLabel(label, sizeof(label), s);
}

void TraceEvent::SetLabel2(const std::string& s) {
  CopyLabel(label2, sizeof(label2), s);
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : slots_(capacity > 0 ? capacity : 1), start_seconds_(NowSeconds()) {}

std::size_t TraceRecorder::size() const {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  std::size_t n = 0;
  const std::size_t upto =
      std::min<std::uint64_t>(claimed, slots_.size());
  for (std::size_t i = 0; i < upto; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  const std::size_t upto =
      std::min<std::uint64_t>(claimed, slots_.size());
  events.reserve(upto);
  for (std::size_t i = 0; i < upto; ++i) {
    // Acquire pairs with Record's release publish: a ready slot's
    // payload is fully written. A claimed-but-unpublished slot (writer
    // mid-copy) is simply skipped.
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      events.push_back(slots_[i].ev);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_seconds < b.begin_seconds;
            });
  return events;
}

void TraceRecorder::Clear() {
  for (Slot& s : slots_) {
    s.ready.store(false, std::memory_order_relaxed);
    s.ev = TraceEvent{};
  }
  dropped_.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
  start_seconds_ = NowSeconds();
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"shflbw server\"}},\n";
  os << "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
        "\"args\":{\"name\":\"requests\"}}";
  // One thread_name per replica track seen in the events.
  std::vector<std::int32_t> replicas;
  for (const TraceEvent& ev : events) {
    if (!RequestScoped(ev.kind) && ev.replica >= 0 &&
        std::find(replicas.begin(), replicas.end(), ev.replica) ==
            replicas.end()) {
      replicas.push_back(ev.replica);
    }
  }
  std::sort(replicas.begin(), replicas.end());
  for (std::int32_t r : replicas) {
    os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << (r + 1)
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"replica " << r
       << "\"}}";
  }

  os.precision(3);
  os << std::fixed;
  for (const TraceEvent& ev : events) {
    const double ts = (ev.begin_seconds - start_seconds_) * 1e6;
    const double dur =
        std::max(0.0, (ev.end_seconds - ev.begin_seconds) * 1e6);
    const bool req = RequestScoped(ev.kind);
    const int pid = req ? 2 : 1;
    // Request tracks key on the id (+1 keeps tid 0 free); replica
    // tracks on the scheduler thread's replica index.
    const std::uint64_t tid =
        req ? (ev.request_id == kNoId ? 0 : ev.request_id + 1)
            : static_cast<std::uint64_t>(ev.replica + 1);
    const char* name = ev.kind == SpanKind::kKernel && ev.label[0] != '\0'
                           ? ev.label
                           : SpanKindName(ev.kind);
    os << ",\n{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\""
       << SpanKindName(ev.kind) << "\",\"ph\":\"X\",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"args\":{";
    bool first = true;
    const auto arg = [&](const char* key, auto value) {
      if (!first) os << ",";
      first = false;
      os << "\"" << key << "\":" << value;
    };
    if (ev.request_id != kNoId) arg("request", ev.request_id);
    if (ev.batch_id != kNoId) arg("batch", ev.batch_id);
    if (ev.replica >= 0) arg("replica", ev.replica);
    if (ev.level >= 0) arg("level", ev.level);
    if (ev.layer >= 0) arg("layer", ev.layer);
    if (ev.width > 0) arg("width", ev.width);
    if (ev.attempt >= 0) arg("attempt", ev.attempt);
    if (ev.kind == SpanKind::kRun) arg("retries", ev.retries);
    if (ev.kind == SpanKind::kAdmission) arg("verdict", ev.detail);
    if (ev.label2[0] != '\0') {
      std::string quoted = "\"";
      quoted += JsonEscape(ev.label2);
      quoted += "\"";
      arg("format", quoted);
    }
    os << "}}";
  }
  os << "\n]}\n";
}

bool TraceRecorder::DumpChromeTrace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  WriteChromeTrace(f);
  return static_cast<bool>(f);
}

}  // namespace obs
}  // namespace shflbw
