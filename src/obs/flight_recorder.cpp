#include "obs/flight_recorder.h"

#include <fstream>
#include <ostream>

#include "obs/json_escape.h"

namespace shflbw {
namespace obs {

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSubmit: return "submit";
    case FlightKind::kReject: return "reject";
    case FlightKind::kSeal: return "seal";
    case FlightKind::kLaunch: return "launch";
    case FlightKind::kComplete: return "complete";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kShed: return "shed";
    case FlightKind::kShift: return "shift";
    case FlightKind::kStall: return "stall";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      slots_(new Slot[capacity_]) {}

void FlightRecorder::Record(const FlightEvent& ev) {
  if constexpr (!kCompiledIn) {
    (void)ev;
    return;
  }
  const std::uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[t % capacity_];
  const std::uint64_t gen = t / capacity_;
  // Claim the slot for this generation. Failure means we were lapped
  // (a later generation already claimed it) or the previous lap's
  // writer is still mid-write; either way the event is stale relative
  // to what the ring now holds, so drop it rather than spin.
  std::uint64_t expect = 2 * gen;
  if (!s.seq.compare_exchange_strong(expect, 2 * gen + 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t words[8];
  std::memcpy(words, &ev, sizeof ev);
  for (std::size_t i = 0; i < 8; ++i) {
    s.words[i].store(words[i], std::memory_order_relaxed);
  }
  s.seq.store(2 * (gen + 1), std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  if constexpr (!kCompiledIn) return out;
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = total > capacity_ ? total - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(total - begin));
  for (std::uint64_t t = begin; t < total; ++t) {
    const Slot& s = slots_[t % capacity_];
    const std::uint64_t want = 2 * (t / capacity_ + 1);
    if (s.seq.load(std::memory_order_acquire) != want) continue;
    std::uint64_t words[8];
    for (std::size_t i = 0; i < 8; ++i) {
      words[i] = s.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    // Re-check: if a writer claimed the slot while we copied, the copy
    // may be torn — discard it. Unchanged seq proves the words we read
    // all belong to generation t / capacity_.
    if (s.seq.load(std::memory_order_relaxed) != want) continue;
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof ev);
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::WriteJson(std::ostream& os) const {
  const std::vector<FlightEvent> events = Snapshot();
  os.precision(9);
  os << "{\n";
  os << "  \"total\": " << total() << ",\n";
  os << "  \"dropped\": " << dropped() << ",\n";
  os << "  \"capacity\": " << capacity_ << ",\n";
  os << "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& ev = events[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kind\": \"" << FlightKindName(ev.kind) << "\""
       << ", \"t\": " << ev.t_seconds;
    if (ev.request_id != FlightEvent::kNoId) {
      os << ", \"request\": " << ev.request_id;
    }
    if (ev.batch_id != FlightEvent::kNoId) {
      os << ", \"batch\": " << ev.batch_id;
    }
    if (ev.replica >= 0) {
      os << ", \"replica\": " << static_cast<int>(ev.replica);
    }
    if (ev.level >= 0) os << ", \"level\": " << ev.level;
    if (ev.width > 0) os << ", \"width\": " << ev.width;
    if (ev.detail != 0) os << ", \"detail\": " << ev.detail;
    if (ev.detail2 != 0) os << ", \"detail2\": " << ev.detail2;
    if (ev.value != 0) os << ", \"value\": " << ev.value;
    if (ev.label[0] != '\0') {
      os << ", \"label\": \"" << JsonEscape(ev.label) << "\"";
    }
    os << "}";
  }
  os << (events.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
}

bool FlightRecorder::DumpJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteJson(os);
  os.flush();
  return os.good();
}

void FlightRecorder::Clear() {
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
    for (std::size_t w = 0; w < 8; ++w) {
      slots_[i].words[w].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace shflbw
