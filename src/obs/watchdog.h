// Liveness detection for the serving stack: heartbeats + watchdog.
//
// Every scheduler thread and every ParallelFor region publishes a
// heartbeat into a HeartbeatRegistry — a fixed array of slots whose
// publish path (Arm/Beat/Disarm) is pure relaxed atomics, cheap enough
// to beat once per batch phase or per drained chunk. Registration and
// snapshotting are cold paths guarded by an unordered leaf mutex (slot
// names are plain bytes; a mutex there keeps TSan and the capability
// analysis honest without touching the publish path).
//
// The Watchdog owns one polling thread that watches one or more
// registries. A slot whose heartbeat is armed but older than the stall
// budget opens a *stall episode*: the callback fires once, a counter
// bumps once, and the episode closes only when the slot beats again
// (or disarms). The BatchServer wires the callback to record a kStall
// flight-recorder event and dump statusz + flight recorder to disk —
// the postmortem pipeline of docs/OBSERVABILITY.md.
//
// False-positive discipline: a thread *disarms* before blocking on
// work it legitimately waits for (an empty queue), so only armed
// silence counts as a stall. The budget must exceed the longest
// legitimate armed pause (coalesce window, one kernel launch).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace shflbw {
namespace obs {

/// Fixed-capacity heartbeat slot table. Thread-safe; slots are claimed
/// with Register and returned with Unregister so short-lived
/// publishers (ParallelFor regions) can reuse them.
class HeartbeatRegistry {
 public:
  static constexpr int kMaxSlots = 64;

  HeartbeatRegistry() = default;
  HeartbeatRegistry(const HeartbeatRegistry&) = delete;
  HeartbeatRegistry& operator=(const HeartbeatRegistry&) = delete;

  /// Claims a free slot under `name` (truncated to 31 chars); -1 when
  /// the table is full, in which case every later call on the handle
  /// is a no-op — heartbeats degrade, they never fail the caller.
  [[nodiscard]] int Register(const std::string& name) SHFLBW_EXCLUDES(mu_);

  /// Returns the slot to the free pool (disarmed).
  void Unregister(int slot) SHFLBW_EXCLUDES(mu_);

  /// Marks the slot live and records a beat: from now until Disarm,
  /// silence longer than the watchdog budget is a stall.
  void Arm(int slot, double now_seconds);

  /// Publishes progress. Lock-free relaxed stores — safe from any
  /// thread, any lock held.
  void Beat(int slot, double now_seconds);

  /// Marks the slot as legitimately idle (blocked on work to do).
  void Disarm(int slot);

  struct View {
    std::string name;
    int slot = -1;
    bool armed = false;
    double beat_seconds = 0;
    std::uint64_t beats = 0;
  };

  /// Copies out every registered slot.
  [[nodiscard]] std::vector<View> Snapshot() const SHFLBW_EXCLUDES(mu_);

 private:
  struct Slot {
    std::atomic<double> beat_seconds{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<int> armed{0};
    bool used = false;     // guarded by mu_ (array member: annotated at use)
    char name[32] = {};    // guarded by mu_
  };

  mutable Mutex mu_;  // unordered leaf: only slot bookkeeping
  Slot slots_[kMaxSlots];
};

/// Process-wide registry that ParallelFor regions publish into (one
/// slot per active region, beaten per drained chunk). Server replica
/// threads use the server's own registry; a server's watchdog watches
/// both.
HeartbeatRegistry& GlobalHeartbeats();

struct WatchdogOptions {
  /// Off by default: the watchdog is an opt-in serving feature, not a
  /// tax on every test server.
  bool enabled = false;
  /// Armed silence longer than this is a stall. Must exceed the
  /// longest legitimate armed pause (coalesce window + one launch).
  double stall_budget_seconds = 1.0;
  /// Poll cadence of the watchdog thread.
  double poll_interval_seconds = 0.05;
  /// Base path for the stall postmortem dump written by the server's
  /// callback (`<base>_statusz.{txt,json}` + `<base>_flight.json`);
  /// empty = detect and count, but write nothing.
  std::string dump_path;
};

/// The polling thread. Construction starts it; Stop (or destruction)
/// joins it promptly via the condition variable.
class Watchdog {
 public:
  /// `on_stall(name, age_seconds)` fires once per stall episode, from
  /// the watchdog thread, with no Watchdog lock held — it may take
  /// subsystem mutexes (the server's callback takes the server lock).
  using StallCallback = std::function<void(const std::string&, double)>;

  Watchdog(WatchdogOptions options,
           std::vector<const HeartbeatRegistry*> registries,
           StallCallback on_stall);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Stop();

  /// Stall episodes detected so far.
  [[nodiscard]] std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const WatchdogOptions& options() const { return options_; }

 private:
  void Loop();
  /// One scan over every registry; `episode` is loop-thread-only state
  /// tracking which (registry, slot) pairs are inside a stall episode.
  void Poll(std::vector<std::vector<bool>>& episode);

  WatchdogOptions options_;
  std::vector<const HeartbeatRegistry*> registries_;
  StallCallback on_stall_;
  std::atomic<std::uint64_t> stalls_{0};

  Mutex mu_;  // unordered leaf: guards only stop_ for the CV
  CondVar cv_;
  bool stop_ SHFLBW_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace shflbw
