// statusz: a structured "what is this process doing right now?"
// snapshot, rendered as aligned human-readable text and as JSON. The
// obs layer owns only the report structure and the renderers — the
// runtime composes the content (BatchServer::Status() fills sections
// for build info, queue, ladder, replicas, cache, pool, watchdog, and
// the per-layer plan/drift table), which keeps obs/ independent of
// runtime/ and concentrates all file output in statusz.cpp, one of the
// lint-sanctioned sinks.
#pragma once

#include <string>
#include <vector>

namespace shflbw {
namespace obs {

/// One key/value line in a section. Numeric items render as JSON
/// numbers; text items as JSON strings.
struct StatusItem {
  std::string key;
  std::string text;
  double number = 0;
  bool is_number = false;
};

/// A small fixed-column table (replica states, ladder levels, plan
/// rows). Cells are preformatted strings; JSON renders rows as string
/// arrays so the two renderings cannot drift.
struct StatusTable {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct StatusSection {
  std::string name;
  std::vector<StatusItem> items;
  std::vector<StatusTable> tables;

  StatusSection& AddText(const std::string& key, const std::string& value);
  StatusSection& AddNumber(const std::string& key, double value);
  StatusTable& AddTable(const std::string& table_name,
                        std::vector<std::string> columns);
};

/// The whole snapshot.
struct StatusReport {
  std::string title;
  std::vector<StatusSection> sections;

  StatusSection& AddSection(const std::string& name);

  /// Aligned plain text, one section per block.
  [[nodiscard]] std::string RenderText() const;
  /// `{"title": ..., "sections": [{"name": ..., "items": {...},
  /// "tables": [...]}]}`; numbers as numbers, text escaped.
  [[nodiscard]] std::string RenderJson() const;

  /// Write the renderings to disk; false on I/O failure.
  [[nodiscard]] bool DumpText(const std::string& path) const;
  [[nodiscard]] bool DumpJson(const std::string& path) const;
};

}  // namespace obs
}  // namespace shflbw
