// Minimal JSON string escaping shared by the observability sinks
// (flight recorder, statusz) and the bench JSON writers. Header-only
// so bench/ can use it without linking anything beyond the library it
// already links.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace shflbw {
namespace obs {

/// Escapes `s` for embedding inside a double-quoted JSON string:
/// backslash, quote, and control characters. Everything else passes
/// through byte-for-byte (the repo's JSON artifacts are ASCII/UTF-8).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace shflbw
