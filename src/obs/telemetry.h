// The telemetry bundle one server (and its engines) share: a metrics
// Registry, a TraceRecorder, and the runtime enable flags that sit on
// top of the SHFLBW_OBS compile-time switch.
//
// Ownership: BatchServer constructs one Telemetry from
// ServerOptions::telemetry and hands a shared_ptr to every Engine
// replica via EngineOptions::telemetry, so kernel spans and profiling
// counters from a fused launch land in the same registry/trace as the
// serving-side spans. A standalone Engine may also be given its own
// Telemetry directly.
//
// Cost model: with `metrics` off, histograms and kernel profiling are
// skipped (counters/gauges — the ServerStats mechanism — stay live).
// With `tracing` off (the default), span recording is skipped and the
// ring buffer is never touched.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace shflbw {
namespace obs {

/// Per-server runtime telemetry switches (ServerOptions::telemetry).
struct TelemetryOptions {
  /// Latency histograms + kernel profiling accumulation. Counters and
  /// gauges are unaffected — they back ServerStats.
  bool metrics = true;
  /// Per-request span tracing into the ring buffer. Off by default:
  /// tracing is an opt-in debugging/analysis surface.
  bool tracing = false;
  /// Span ring capacity; the trace keeps the first `trace_capacity`
  /// spans of the run and drops the rest (TraceRecorder::dropped()).
  std::size_t trace_capacity = 1 << 16;
  /// Flight-recorder ring capacity (always-on postmortem buffer of the
  /// last N scheduler events; see obs/flight_recorder.h).
  std::size_t flight_capacity = FlightRecorder::kDefaultCapacity;
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options = {});

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// True when histogram/profiling recording should happen.
  bool metrics_on() const {
    if constexpr (!kCompiledIn) return false;
    return metrics_.load(std::memory_order_relaxed);
  }
  /// True when span recording should happen (folds in the compile-time
  /// switch and the ring's runtime flag).
  bool tracing_on() const { return trace_.enabled(); }

  /// Runtime toggles, safe on a live server: every recording site
  /// re-reads the flags per call, so metrics or tracing can be flipped
  /// on to capture an incident window (or off to A/B the overhead)
  /// without reconstructing engines. `set_tracing` forwards to the
  /// ring's own flag; both are no-ops at SHFLBW_OBS=0.
  void set_metrics(bool on) { metrics_.store(on, std::memory_order_relaxed); }
  void set_tracing(bool on) { trace_.SetEnabled(kCompiledIn && on); }

 private:
  std::atomic<bool> metrics_;
  Registry registry_;
  TraceRecorder trace_;
  FlightRecorder flight_;
};

}  // namespace obs
}  // namespace shflbw
