// Metrics registry for the serving stack: typed counters, gauges and
// log-bucketed latency histograms with a Prometheus-style text
// exposition. Built for the hot path the BatchServer and Engine live
// on:
//
//   - Counters and histograms are SHARDED PER THREAD: Add()/Record()
//     touch one cache-line-private atomic cell with a relaxed
//     fetch_add, so concurrent replicas never contend on a shared
//     counter line. Reads (Value, Quantile, ExpositionText) merge the
//     shards — reads are the cold path, writes are the hot one.
//   - Histograms are log-bucketed (4 buckets per octave), so p50/p90/
//     p99/p99.9 come out of a fixed 1 KiB bucket array without
//     retaining a single sample. The price is bounded relative error:
//     a quantile is reported at the geometric midpoint of its bucket,
//     within a factor of 2^(1/8) (~9%) of the exact sample quantile
//     (tests/obs/metrics_test.cpp pins the bound).
//   - Registration (name -> metric) takes a mutex once per metric;
//     call sites cache the returned pointer, which stays valid for the
//     registry's lifetime.
//
// Metric names follow the Prometheus convention and may carry an
// inline label set: `shflbw_kernel_seconds_total{layer="enc0_ffn1",
// format="shfl_bw"}`. The exposition groups families (the part before
// '{') and emits standard `# HELP` / `# TYPE` headers, cumulative
// `_bucket{le=...}` lines for histograms, and `_sum`/`_count`.
//
// The whole subsystem honours the SHFLBW_OBS compile-time master
// switch (obs/obs_config.h): with SHFLBW_OBS=0 the histogram recording
// path compiles to nothing. Counters and gauges stay live at any
// setting — they are the mechanism ServerStats sits on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/obs_config.h"

namespace shflbw {
namespace obs {

/// Number of per-thread shards counters and histograms fan writes over.
/// A power of two; threads are assigned round-robin, so up to kShards
/// writers proceed with zero cache-line contention.
inline constexpr std::size_t kShards = 16;

/// This thread's shard index (assigned round-robin on first use).
std::size_t ThisThreadShard();

/// Monotonic counter (double-valued: counts and second/FLOP totals use
/// the same type; doubles are exact to 2^53 for integer counts).
/// Add() is one relaxed atomic fetch_add on a thread-private cell.
class Counter {
 public:
  void Add(double d = 1.0) {
    cells_[ThisThreadShard()].v.fetch_add(d, std::memory_order_relaxed);
  }

  /// Merged value over all shards. Safe concurrently with Add();
  /// repeated reads from one thread are monotone non-decreasing (each
  /// cell's modification order is coherent).
  double Value() const {
    double sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<double> v{0.0};
  };
  Cell cells_[kShards];
};

/// Point-in-time value (queue depth, ladder level, drift ratio).
class Gauge {
 public:
  void Set(double d) { v_.store(d, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram: bucket i covers [min*2^(i/4), min*2^((i+1)/4)).
/// 128 buckets span min_value * [1, 2^32) (with 1e-6 s as the default
/// min, that is 1 us .. ~71 min) plus underflow/overflow buckets, so
/// recording never branches on range. Record() is two relaxed atomic
/// adds (bucket + sum) on thread-private cells; no sample is retained.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;          // buckets per octave
  static constexpr int kBuckets = 128;           // 32 octaves
  /// Relative half-width of one bucket: Quantile() returns the
  /// geometric midpoint, so it sits within a factor kQuantileBound of
  /// the exact sample quantile (for in-range samples).
  static double QuantileErrorFactor() { return 1.0905077326652577; }  // 2^(1/8)

  explicit Histogram(double min_value = 1e-6);

  void Record(double value) {
#if SHFLBW_OBS
    const int b = BucketOf(value);
    Shard& s = shards_[ThisThreadShard()];
    s.buckets[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Total samples recorded (merged over shards).
  std::uint64_t Count() const;
  /// Sum of recorded values.
  double Sum() const;
  /// Quantile q in [0, 1] by nearest rank over the merged buckets,
  /// reported at the bucket's geometric midpoint (underflow reports
  /// min_value, overflow the top bucket bound). 0 with no samples.
  double Quantile(double q) const;
  double min_value() const { return min_value_; }

  /// Merged per-bucket counts: index 0 = underflow, 1..kBuckets =
  /// log buckets, kBuckets+1 = overflow. For exposition and tests.
  std::vector<std::uint64_t> MergedBuckets() const;
  /// Upper bound of merged bucket index i (inf for the overflow).
  double BucketUpperBound(std::size_t i) const;

 private:
  /// 0 = underflow, 1..kBuckets = log buckets, kBuckets+1 = overflow.
  int BucketOf(double value) const;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets + 2];
    std::atomic<double> sum{0.0};
  };

  double min_value_;
  double inv_min_;
  std::unique_ptr<Shard[]> shards_;  // kShards entries
};

/// Named metric registry with Prometheus text exposition. GetX()
/// registers on first use (mutex; cold path) and returns a stable
/// pointer call sites cache; the same name always maps to the same
/// metric, and requesting an existing name as a different type throws.
class Registry {
 public:
  Counter& GetCounter(const std::string& name, const std::string& help = "")
      SHFLBW_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name, const std::string& help = "")
      SHFLBW_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "",
                          double min_value = 1e-6) SHFLBW_EXCLUDES(mu_);

  /// Lookup without registration; nullptr when absent or a different
  /// type. Safe concurrently with recording.
  const Counter* FindCounter(const std::string& name) const
      SHFLBW_EXCLUDES(mu_);
  const Gauge* FindGauge(const std::string& name) const SHFLBW_EXCLUDES(mu_);
  const Histogram* FindHistogram(const std::string& name) const
      SHFLBW_EXCLUDES(mu_);

  /// All registered metric names, sorted.
  std::vector<std::string> Names() const SHFLBW_EXCLUDES(mu_);

  /// Prometheus text exposition (version 0.0.4): families grouped and
  /// sorted, `# HELP`/`# TYPE` once per family, histogram cumulative
  /// buckets + `_sum` + `_count`. Safe concurrently with recording
  /// (values are a consistent-enough snapshot: each metric is read
  /// once; counters never decrease).
  std::string ExpositionText() const SHFLBW_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, Type type, const std::string& help,
                  double min_value) SHFLBW_EXCLUDES(mu_);

  /// Guards the map TOPOLOGY only (registration is the cold path);
  /// recording into a Counter/Gauge/Histogram is lock-free on
  /// thread-sharded atomics and needs no capability. Rank
  /// kLockRankRegistry — the INNERMOST rank, because MetricsText
  /// refreshes gauges while holding the server mutex.
  mutable Mutex mu_{kLockRankRegistry};
  std::map<std::string, Entry> metrics_ SHFLBW_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace shflbw
