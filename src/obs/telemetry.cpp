#include "obs/telemetry.h"

namespace shflbw {
namespace obs {

Telemetry::Telemetry(const TelemetryOptions& options)
    : metrics_(options.metrics),
      trace_(options.trace_capacity > 0 ? options.trace_capacity : 1),
      flight_(options.flight_capacity > 0 ? options.flight_capacity : 1) {
  trace_.SetEnabled(options.tracing);
}

}  // namespace obs
}  // namespace shflbw
