#include "obs/statusz.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json_escape.h"

namespace shflbw {
namespace obs {
namespace {

void AppendJsonNumber(std::ostringstream& os, double v) {
  // JSON has no Inf/NaN literals; null is the conventional stand-in.
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

}  // namespace

StatusSection& StatusSection::AddText(const std::string& key,
                                      const std::string& value) {
  StatusItem item;
  item.key = key;
  item.text = value;
  items.push_back(std::move(item));
  return *this;
}

StatusSection& StatusSection::AddNumber(const std::string& key, double value) {
  StatusItem item;
  item.key = key;
  item.number = value;
  item.is_number = true;
  items.push_back(std::move(item));
  return *this;
}

StatusTable& StatusSection::AddTable(const std::string& table_name,
                                     std::vector<std::string> columns) {
  StatusTable table;
  table.name = table_name;
  table.columns = std::move(columns);
  tables.push_back(std::move(table));
  return tables.back();
}

StatusSection& StatusReport::AddSection(const std::string& name) {
  StatusSection section;
  section.name = name;
  sections.push_back(std::move(section));
  return sections.back();
}

std::string StatusReport::RenderText() const {
  std::ostringstream os;
  os.precision(9);
  os << "==== " << title << " ====\n";
  for (const StatusSection& section : sections) {
    os << "\n[" << section.name << "]\n";
    std::size_t key_width = 0;
    for (const StatusItem& item : section.items) {
      key_width = std::max(key_width, item.key.size());
    }
    for (const StatusItem& item : section.items) {
      os << "  " << item.key
         << std::string(key_width - item.key.size() + 2, ' ');
      if (item.is_number) {
        os << item.number;
      } else {
        os << item.text;
      }
      os << "\n";
    }
    for (const StatusTable& table : section.tables) {
      os << "  " << table.name << ":\n";
      // Column widths from header + cells; rows shorter than the
      // header render their missing cells empty.
      std::vector<std::size_t> widths(table.columns.size(), 0);
      for (std::size_t c = 0; c < table.columns.size(); ++c) {
        widths[c] = table.columns[c].size();
      }
      for (const std::vector<std::string>& row : table.rows) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
      auto emit_row = [&](const std::vector<std::string>& cells) {
        os << "   ";
        for (std::size_t c = 0; c < widths.size(); ++c) {
          const std::string& cell = c < cells.size() ? cells[c] : "";
          os << " " << cell << std::string(widths[c] - cell.size(), ' ');
        }
        os << "\n";
      };
      emit_row(table.columns);
      for (const std::vector<std::string>& row : table.rows) emit_row(row);
    }
  }
  return os.str();
}

std::string StatusReport::RenderJson() const {
  std::ostringstream os;
  os.precision(9);
  os << "{\n  \"title\": \"" << JsonEscape(title) << "\",\n";
  os << "  \"sections\": [";
  for (std::size_t s = 0; s < sections.size(); ++s) {
    const StatusSection& section = sections[s];
    os << (s == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << JsonEscape(section.name) << "\",\n";
    os << "     \"items\": {";
    for (std::size_t i = 0; i < section.items.size(); ++i) {
      const StatusItem& item = section.items[i];
      os << (i == 0 ? "" : ", ");
      os << "\"" << JsonEscape(item.key) << "\": ";
      if (item.is_number) {
        AppendJsonNumber(os, item.number);
      } else {
        os << "\"" << JsonEscape(item.text) << "\"";
      }
    }
    os << "},\n";
    os << "     \"tables\": [";
    for (std::size_t t = 0; t < section.tables.size(); ++t) {
      const StatusTable& table = section.tables[t];
      os << (t == 0 ? "" : ", ");
      os << "{\"name\": \"" << JsonEscape(table.name) << "\", \"columns\": [";
      for (std::size_t c = 0; c < table.columns.size(); ++c) {
        os << (c == 0 ? "" : ", ") << "\"" << JsonEscape(table.columns[c])
           << "\"";
      }
      os << "], \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        os << (r == 0 ? "" : ", ") << "[";
        for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
          os << (c == 0 ? "" : ", ") << "\"" << JsonEscape(table.rows[r][c])
             << "\"";
        }
        os << "]";
      }
      os << "]}";
    }
    os << "]}";
  }
  os << (sections.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

bool StatusReport::DumpText(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << RenderText();
  os.flush();
  return os.good();
}

bool StatusReport::DumpJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << RenderJson();
  os.flush();
  return os.good();
}

}  // namespace obs
}  // namespace shflbw
