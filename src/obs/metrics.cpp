#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace shflbw {
namespace obs {
namespace {

/// 2^(-3/4), 2^(-1/2), 2^(-1/4): the quarter-octave thresholds of the
/// frexp fraction (in [0.5, 1)) used to place a value inside its
/// octave without calling log().
constexpr double kQ1 = 0.5946035575013605;   // 2^(-3/4)
constexpr double kQ2 = 0.7071067811865476;   // 2^(-1/2)
constexpr double kQ3 = 0.8408964152537145;   // 2^(-1/4)

/// Escapes a metric name's label values for the exposition ('\' and
/// '"' and newlines; label values here are layer/format names, so this
/// is belt-and-braces).
std::string EscapeExpo(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Family = name up to the label set; `shflbw_x_total{layer="a"}` ->
/// `shflbw_x_total`.
std::string FamilyOf(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splits `name` into (family, label set incl. braces or empty).
std::string LabelsOf(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? std::string() : name.substr(brace);
}

/// Inserts `extra` ('le="..."') into a name's label set, creating one
/// when absent: `f{a="b"}` + `le="x"` -> `f{a="b",le="x"}`.
std::string WithExtraLabel(const std::string& family,
                           const std::string& labels,
                           const std::string& extra) {
  if (labels.empty()) return family + "{" + extra + "}";
  return family + labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

void AppendNumber(std::ostringstream& os, double v) {
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  os << v;
}

}  // namespace

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

Histogram::Histogram(double min_value)
    : min_value_(min_value > 0 ? min_value : 1e-6),
      inv_min_(1.0 / min_value_),
      shards_(new Shard[kShards]) {
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < kBuckets + 2; ++b) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

int Histogram::BucketOf(double value) const {
  const double r = value * inv_min_;
  if (!(r >= 1.0)) return 0;  // underflow (and NaN)
  int e = 0;
  const double f = std::frexp(r, &e);  // r = f * 2^e, f in [0.5, 1)
  // log2(r) lies in [e-1, e); the quarter within the octave comes from
  // comparing the fraction against the 2^(-k/4) thresholds.
  const int quarter = (f >= kQ1) + (f >= kQ2) + (f >= kQ3);
  const int idx = (e - 1) * kSubBuckets + quarter;
  if (idx >= kBuckets) return kBuckets + 1;  // overflow
  return idx + 1;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < kBuckets + 2; ++b) {
      n += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return n;
}

double Histogram::Sum() const {
  double sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<std::uint64_t> Histogram::MergedBuckets() const {
  std::vector<std::uint64_t> merged(kBuckets + 2, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < kBuckets + 2; ++b) {
      merged[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::BucketUpperBound(std::size_t i) const {
  if (i == 0) return min_value_;
  if (i >= kBuckets + 1) return std::numeric_limits<double>::infinity();
  return min_value_ *
         std::exp2(static_cast<double>(i) / kSubBuckets);
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<std::uint64_t> merged = MergedBuckets();
  std::uint64_t total = 0;
  for (std::uint64_t c : merged) total += c;
  if (total == 0) return 0;
  // Nearest-rank (1-based): the smallest bucket whose cumulative count
  // reaches ceil(q * total), clamped to at least rank 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    cum += merged[i];
    if (cum >= rank) {
      if (i == 0) return min_value_;                    // underflow bucket
      if (i == kBuckets + 1) {                          // overflow bucket
        return min_value_ * std::exp2(static_cast<double>(kBuckets) /
                                      kSubBuckets);
      }
      // Geometric midpoint of [min*2^((i-1)/4), min*2^(i/4)).
      return min_value_ *
             std::exp2((static_cast<double>(i) - 0.5) / kSubBuckets);
    }
  }
  return min_value_;  // unreachable
}

Registry::Entry& Registry::GetEntry(const std::string& name, Type type,
                                    const std::string& help,
                                    double min_value) {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SHFLBW_CHECK_MSG(it->second.type == type,
                     "metric '" << name
                                << "' already registered as a different type");
    return it->second;
  }
  Entry e;
  e.type = type;
  e.help = help;
  switch (type) {
    case Type::kCounter: e.counter = std::make_unique<Counter>(); break;
    case Type::kGauge: e.gauge = std::make_unique<Gauge>(); break;
    case Type::kHistogram:
      e.histogram = std::make_unique<Histogram>(min_value);
      break;
  }
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  return *GetEntry(name, Type::kCounter, help, 0).counter;
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help) {
  return *GetEntry(name, Type::kGauge, help, 0).gauge;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  double min_value) {
  return *GetEntry(name, Type::kHistogram, help, min_value).histogram;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.type == Type::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.type == Type::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.type == Type::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

std::vector<std::string> Registry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) names.push_back(name);
  return names;
}

std::string Registry::ExpositionText() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os.precision(9);
  std::string last_family;
  // metrics_ is name-sorted, so one family's metrics are contiguous.
  for (const auto& [name, entry] : metrics_) {
    const std::string family = FamilyOf(name);
    const std::string labels = LabelsOf(name);
    if (family != last_family) {
      last_family = family;
      if (!entry.help.empty()) {
        os << "# HELP " << family << " " << EscapeExpo(entry.help) << "\n";
      }
      const char* type = entry.type == Type::kCounter   ? "counter"
                         : entry.type == Type::kGauge   ? "gauge"
                                                        : "histogram";
      os << "# TYPE " << family << " " << type << "\n";
    }
    switch (entry.type) {
      case Type::kCounter:
        os << name << " ";
        AppendNumber(os, entry.counter->Value());
        os << "\n";
        break;
      case Type::kGauge:
        os << name << " ";
        AppendNumber(os, entry.gauge->Value());
        os << "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        const std::vector<std::uint64_t> merged = h.MergedBuckets();
        std::uint64_t cum = 0;
        // Cumulative buckets; empty tail buckets are folded into the
        // final +Inf line to keep the dump readable.
        std::size_t last_used = 0;
        for (std::size_t i = 0; i < merged.size(); ++i) {
          if (merged[i] > 0) last_used = i;
        }
        for (std::size_t i = 0; i <= last_used && i + 1 < merged.size();
             ++i) {
          cum += merged[i];
          std::ostringstream le;
          le.precision(9);
          le << "le=\"";
          AppendNumber(le, h.BucketUpperBound(i));
          le << "\"";
          os << WithExtraLabel(family + "_bucket", labels, le.str()) << " "
             << cum << "\n";
        }
        os << WithExtraLabel(family + "_bucket", labels, "le=\"+Inf\"") << " "
           << h.Count() << "\n";
        os << family << "_sum" << labels << " ";
        AppendNumber(os, h.Sum());
        os << "\n";
        os << family << "_count" << labels << " " << h.Count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace obs
}  // namespace shflbw
