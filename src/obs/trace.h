// Structured per-request tracing for the serving stack: every stage a
// request passes through — admission, queue wait, coalesce window,
// the fused launch (one kernel span per layer), retry backoff,
// completion or shed — becomes a span in a fixed-capacity lock-free
// ring of POD events, exportable as Chrome trace-event JSON that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Recording contract:
//   - Record() is wait-free on the hot path: one relaxed fetch_add to
//     claim a slot, a POD copy, one release store to publish. No
//     allocation, no lock, no string formatting.
//   - The buffer is fixed capacity and DROPS NEWEST once full (the
//     `dropped` counter says how many): overwriting oldest would need
//     writer-writer synchronization on wrapped slots, and a bounded
//     prefix of a serving run is the more useful artifact anyway —
//     size the capacity to the window you care about.
//   - Snapshot()/WriteChromeTrace() are safe concurrently with
//     recording: a slot is only read after its release-published
//     `ready` flag is observed (acquire), so readers never see a
//     half-written event. Clear() is NOT — it requires quiescence
//     (e.g. after BatchServer::Drain).
//
// Track layout of the export: pid 1 "shflbw server" holds one track
// per replica (kernel, coalesce and retry spans — what the scheduler
// thread was doing); pid 2 "requests" holds one track per request id
// (admission, queue, run, shed spans — what each request experienced).
// A fused launch is K request `run` spans sharing one set of kernel
// spans; they correlate through the `batch` arg carried by both.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace shflbw {
namespace obs {

/// Sentinel for "no request/batch attached to this span".
inline constexpr std::uint64_t kNoId = ~0ULL;

enum class SpanKind : std::uint8_t {
  kAdmission = 0,  // submit entry -> verdict          (request track)
  kQueue,          // submit -> batch seal             (request track)
  kCoalesce,       // window wait begin -> seal        (replica track)
  kKernel,         // one fused layer launch           (replica track)
  kRetry,          // fault -> end of backoff sleep    (replica track)
  kRun,            // dispatch -> completion           (request track)
  kShed,           // seal-time deadline drop          (request track)
};

const char* SpanKindName(SpanKind kind);

/// One completed span. POD on purpose: recorded whole with no
/// allocation; the two label fields carry the layer / format names of
/// kernel spans (truncated, never unterminated).
struct TraceEvent {
  SpanKind kind = SpanKind::kQueue;
  double begin_seconds = 0;  // NowSeconds timebase
  double end_seconds = 0;
  std::uint64_t request_id = kNoId;  // kNoId on replica-scoped spans
  std::uint64_t batch_id = kNoId;    // fused-launch correlation key
  std::int32_t replica = -1;
  std::int32_t level = -1;    // ladder level (run/kernel spans)
  std::int32_t layer = -1;    // layer index (kernel spans)
  std::int32_t width = 0;     // fused width (kernel/run/coalesce spans)
  std::int32_t attempt = -1;  // retry ordinal (retry spans)
  std::int32_t retries = 0;   // retries the launch needed (run spans)
  std::int32_t detail = 0;    // admission verdict / shed marker
  char label[32] = {0};       // layer name (kernel spans)
  char label2[16] = {0};      // format name (kernel spans)

  void SetLabel(const std::string& s);
  void SetLabel2(const std::string& s);
};

/// Fixed-capacity lock-free span buffer; see the header comment for
/// the recording contract. Recording is atomics-only, so the recorder
/// takes no capability annotations (common/thread_annotations.h) and
/// is safe to call from any thread with any subsystem mutex held.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Runtime switch; Record() is a no-op while disabled. Off by
  /// default — tracing is opt-in per server/engine.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const {
    if constexpr (!kCompiledIn) return false;
    return enabled_.load(std::memory_order_relaxed);
  }

  void Record(const TraceEvent& ev) {
    if constexpr (!kCompiledIn) {
      (void)ev;
      return;
    }
    if (!enabled()) return;
    const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slot& s = slots_[idx];
    s.ev = ev;
    s.ready.store(true, std::memory_order_release);
  }

  std::size_t capacity() const { return slots_.size(); }
  /// Events published so far (<= capacity).
  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  double start_seconds() const { return start_seconds_; }

  /// Copies every published event (begin-time sorted). Safe
  /// concurrently with recording.
  std::vector<TraceEvent> Snapshot() const;

  /// Resets the buffer. Requires quiescence: no concurrent Record().
  void Clear();

  /// Chrome trace-event JSON ("X" complete events + process/thread
  /// metadata), microsecond timestamps relative to the recorder's
  /// start. Loads in Perfetto and chrome://tracing.
  void WriteChromeTrace(std::ostream& os) const;
  /// WriteChromeTrace to a file; false (with no partial file promise)
  /// when the path cannot be opened.
  bool DumpChromeTrace(const std::string& path) const;

 private:
  struct Slot {
    TraceEvent ev;
    std::atomic<bool> ready{false};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> enabled_{false};
  double start_seconds_ = 0;
};

}  // namespace obs
}  // namespace shflbw
