#include "obs/watchdog.h"

#include <cstring>

#include "common/clock.h"

namespace shflbw {
namespace obs {

int HeartbeatRegistry::Register(const std::string& name) {
  MutexLock lock(mu_);
  for (int i = 0; i < kMaxSlots; ++i) {
    Slot& s = slots_[i];
    if (s.used) continue;
    s.used = true;
    std::strncpy(s.name, name.c_str(), sizeof(s.name) - 1);
    s.name[sizeof(s.name) - 1] = '\0';
    s.armed.store(0, std::memory_order_relaxed);
    s.beats.store(0, std::memory_order_relaxed);
    s.beat_seconds.store(0, std::memory_order_relaxed);
    return i;
  }
  return -1;  // table full: heartbeats degrade, callers keep running
}

void HeartbeatRegistry::Unregister(int slot) {
  if (slot < 0 || slot >= kMaxSlots) return;
  MutexLock lock(mu_);
  slots_[slot].armed.store(0, std::memory_order_relaxed);
  slots_[slot].used = false;
}

void HeartbeatRegistry::Arm(int slot, double now_seconds) {
  if (slot < 0 || slot >= kMaxSlots) return;
  Slot& s = slots_[slot];
  s.beat_seconds.store(now_seconds, std::memory_order_relaxed);
  s.beats.fetch_add(1, std::memory_order_relaxed);
  s.armed.store(1, std::memory_order_release);
}

void HeartbeatRegistry::Beat(int slot, double now_seconds) {
  if (slot < 0 || slot >= kMaxSlots) return;
  Slot& s = slots_[slot];
  s.beat_seconds.store(now_seconds, std::memory_order_relaxed);
  s.beats.fetch_add(1, std::memory_order_relaxed);
}

void HeartbeatRegistry::Disarm(int slot) {
  if (slot < 0 || slot >= kMaxSlots) return;
  slots_[slot].armed.store(0, std::memory_order_release);
}

std::vector<HeartbeatRegistry::View> HeartbeatRegistry::Snapshot() const {
  std::vector<View> out;
  MutexLock lock(mu_);
  for (int i = 0; i < kMaxSlots; ++i) {
    const Slot& s = slots_[i];
    if (!s.used) continue;
    View v;
    v.name = s.name;
    v.slot = i;
    v.armed = s.armed.load(std::memory_order_acquire) != 0;
    v.beat_seconds = s.beat_seconds.load(std::memory_order_relaxed);
    v.beats = s.beats.load(std::memory_order_relaxed);
    out.push_back(std::move(v));
  }
  return out;
}

HeartbeatRegistry& GlobalHeartbeats() {
  static HeartbeatRegistry registry;
  return registry;
}

Watchdog::Watchdog(WatchdogOptions options,
                   std::vector<const HeartbeatRegistry*> registries,
                   StallCallback on_stall)
    : options_(options),
      registries_(std::move(registries)),
      on_stall_(std::move(on_stall)) {
  if (options_.poll_interval_seconds <= 0) {
    options_.poll_interval_seconds = 0.05;
  }
  thread_ = std::thread([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Loop() {
  std::vector<std::vector<bool>> episode(
      registries_.size(),
      std::vector<bool>(HeartbeatRegistry::kMaxSlots, false));
  UniqueLock lock(mu_);
  while (!stop_) {
    const bool stopping = cv_.WaitFor(
        mu_, options_.poll_interval_seconds,
        [this]() SHFLBW_REQUIRES(mu_) { return stop_; });
    if (stopping) return;
    lock.Unlock();
    Poll(episode);
    lock.Lock();
  }
}

void Watchdog::Poll(std::vector<std::vector<bool>>& episode) {
  const double now = NowSeconds();
  for (std::size_t r = 0; r < registries_.size(); ++r) {
    const std::vector<HeartbeatRegistry::View> views =
        registries_[r]->Snapshot();
    // Episode flags for slots that dropped out of the snapshot (slot
    // freed) must clear, so walk the snapshot and clear the rest.
    std::vector<bool> seen(HeartbeatRegistry::kMaxSlots, false);
    for (const HeartbeatRegistry::View& v : views) {
      if (v.slot < 0 || v.slot >= HeartbeatRegistry::kMaxSlots) continue;
      seen[v.slot] = true;
      const double age = now - v.beat_seconds;
      if (!v.armed || age <= options_.stall_budget_seconds) {
        episode[r][v.slot] = false;  // healthy or idle: close any episode
        continue;
      }
      if (episode[r][v.slot]) continue;  // already reported this episode
      episode[r][v.slot] = true;
      stalls_.fetch_add(1, std::memory_order_relaxed);
      if (on_stall_) on_stall_(v.name, age);
    }
    for (int i = 0; i < HeartbeatRegistry::kMaxSlots; ++i) {
      if (!seen[i]) episode[r][i] = false;
    }
  }
}

}  // namespace obs
}  // namespace shflbw
