// Always-on bounded flight recorder: a lock-free ring of the last ~4k
// structured scheduler events (submit / seal / launch / retry / shed /
// shift / ...), cheap enough to leave recording in production and
// dumped to disk on a watchdog stall, a fatal error, or an explicit
// operator request. This is the postmortem half of the observability
// layer: metrics say *that* something went wrong, the flight recorder
// says what the scheduler was doing right before it did.
//
// Concurrency design (all std::atomic, so TSan-provable and free of
// capability annotations — the same contract as TraceRecorder and
// FaultInjector):
//
//   - A writer claims a ticket t with a relaxed fetch_add; its slot is
//     t % capacity and its generation g = t / capacity.
//   - Each slot carries a seqlock word: 2*g means "generation g may
//     write", odd means "write in progress", 2*(g+1) means "generation
//     g published". The writer CASes 2*g -> 2*g+1, stores the payload,
//     then release-stores 2*(g+1).
//   - A writer that lost its slot (it was lapped before it could
//     claim, or the previous lap's writer is still mid-write) drops
//     its event and bumps `dropped` instead of spinning: recording is
//     wait-free, which is what lets it sit on the scheduler's paths.
//   - Readers (Snapshot) accept a slot only when the seqlock word
//     reads 2*(g+1) before *and* after copying the payload, so a
//     concurrent overwrite can only hide an event, never tear one.
//
// Unlike TraceRecorder (drop-newest, bounded per run), the flight ring
// *wraps*: it always holds the most recent events, which is the only
// useful behaviour for a postmortem buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace shflbw {
namespace obs {

/// What happened. Mirrors the scheduler's decision points; kStall is
/// recorded by the watchdog callback so the dump shows the detection
/// itself in sequence with the events that led to it.
enum class FlightKind : std::uint8_t {
  kSubmit = 0,
  kReject,
  kSeal,
  kLaunch,
  kComplete,
  kRetry,
  kShed,
  kShift,
  kStall,
};

const char* FlightKindName(FlightKind kind);

/// One recorded event. Exactly 64 bytes and trivially copyable: the
/// ring stores it as eight relaxed atomic words, so the layout is part
/// of the concurrency contract (see static_asserts below).
struct FlightEvent {
  static constexpr std::uint64_t kNoId = ~0ULL;

  double t_seconds = 0;             ///< Clock::NowSeconds at record time.
  std::uint64_t request_id = kNoId; ///< Request id, or kNoId.
  std::uint64_t batch_id = kNoId;   ///< Batch id, or kNoId.
  double value = 0;                 ///< Kind-specific (seconds, age, ...).
  std::int32_t detail = 0;          ///< Kind-specific small payload.
  std::int32_t detail2 = 0;         ///< Second kind-specific payload.
  FlightKind kind = FlightKind::kSubmit;
  std::int8_t replica = -1;         ///< Replica index, -1 = none.
  std::int16_t level = -1;          ///< Ladder level, -1 = none.
  std::int32_t width = 0;           ///< Batch width where it applies.
  char label[16] = {};              ///< NUL-terminated annotation.

  /// Copies `s` into `label`, truncating; always NUL-terminates.
  void SetLabel(const char* s) {
    std::strncpy(label, s, sizeof(label) - 1);
    label[sizeof(label) - 1] = '\0';
  }
};

static_assert(sizeof(FlightEvent) == 64,
              "FlightEvent must stay exactly eight 64-bit words: the "
              "ring publishes it word-by-word through atomics");

/// The ring. One instance lives inside Telemetry next to the registry
/// and the trace recorder; capacity comes from
/// TelemetryOptions::flight_capacity.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event. Wait-free; never blocks, never allocates.
  /// Compiles to nothing when SHFLBW_OBS=0 (kCompiledIn false), like
  /// every other per-event record call in obs/.
  void Record(const FlightEvent& ev);

  /// Copies out the surviving window of recent events in ticket
  /// (i.e. chronological-claim) order. Safe to call concurrently with
  /// writers: events being overwritten right now are skipped, never
  /// torn.
  [[nodiscard]] std::vector<FlightEvent> Snapshot() const;

  /// Total events ever recorded (including ones since overwritten).
  [[nodiscard]] std::uint64_t total() const {
    return next_.load(std::memory_order_acquire);
  }
  /// Events dropped because the writer was lapped mid-claim.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Renders a Snapshot as a JSON document (object with a summary
  /// header and an `events` array).
  void WriteJson(std::ostream& os) const;

  /// Dumps WriteJson to `path`; false on I/O failure. File output in
  /// obs/ is concentrated here and in statusz/trace — the repo lint's
  /// logging rule pins the sanctioned sink list.
  [[nodiscard]] bool DumpJson(const std::string& path) const;

  /// Resets the ring. Requires quiescence (no concurrent writers):
  /// meant for tests, not for live servers.
  void Clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[8] = {};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace shflbw
