// Compile-time master switch of the observability subsystem.
//
// SHFLBW_OBS=1 (the default) compiles the full telemetry surface:
// trace-span recording, latency histograms, and kernel profiling.
// SHFLBW_OBS=0 compiles those hot-path record calls down to nothing —
// the types and APIs stay (so call sites and tests keep compiling),
// but Record()/span emission are empty and exports report zero events.
// Counters and gauges remain live at either setting: they are the
// mechanism ServerStats is built on, and one relaxed atomic add is the
// baseline cost of having stats at all.
//
// Runtime granularity lives on top of this: obs::Telemetry carries
// per-server enable flags (TelemetryOptions::metrics / ::tracing) that
// gate recording per instance without recompiling.
#pragma once

#ifndef SHFLBW_OBS
#define SHFLBW_OBS 1
#endif

namespace shflbw {
namespace obs {

/// True when the subsystem is compiled in; `if constexpr` on this
/// lets hot paths vanish entirely under SHFLBW_OBS=0.
inline constexpr bool kCompiledIn = SHFLBW_OBS != 0;

}  // namespace obs
}  // namespace shflbw
