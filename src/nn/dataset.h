// Synthetic classification dataset for the Table 1 proxy experiments:
// Gaussian clusters passed through a fixed random nonlinear feature map,
// so a linear model cannot solve it and pruning damage is measurable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace shflbw {
namespace nn {

struct DatasetOptions {
  int num_classes = 10;
  int dim = 64;
  int train_per_class = 200;
  int test_per_class = 50;
  double cluster_spread = 0.9;  // intra-class noise vs inter-class sep.
  std::uint64_t seed = 99;
};

struct Dataset {
  Matrix<float> train_x;  // dim x n_train
  std::vector<int> train_y;
  Matrix<float> test_x;  // dim x n_test
  std::vector<int> test_y;
};

Dataset MakeClusterDataset(const DatasetOptions& opts = {});

}  // namespace nn
}  // namespace shflbw
