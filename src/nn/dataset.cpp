#include "nn/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "common/check.h"

namespace shflbw {
namespace nn {
namespace {

/// Fills one split: for each class, samples around its center, then
/// applies a shared random rotation + tanh warp.
void FillSplit(Matrix<float>& x, std::vector<int>& y, int per_class,
               const std::vector<float>& centers,
               const Matrix<float>& warp, double spread,
               std::mt19937_64& gen, int num_classes, int dim) {
  std::normal_distribution<float> noise(0.0f, static_cast<float>(spread));
  const int n = per_class * num_classes;
  x = Matrix<float>(dim, n);
  y.assign(static_cast<std::size_t>(n), 0);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), gen);
  for (int i = 0; i < n; ++i) {
    const int cls = i / per_class;
    const int col = order[i];
    y[col] = cls;
    // Raw point: center + noise.
    std::vector<float> raw(static_cast<std::size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      raw[d] = centers[static_cast<std::size_t>(cls) * dim + d] + noise(gen);
    }
    // Warp through a fixed random linear map + tanh, creating the
    // nonlinear structure the MLP must actually learn.
    for (int d = 0; d < dim; ++d) {
      float acc = 0.0f;
      for (int e = 0; e < dim; ++e) acc += warp(d, e) * raw[e];
      x(d, col) = std::tanh(acc);
    }
  }
}

}  // namespace

Dataset MakeClusterDataset(const DatasetOptions& opts) {
  SHFLBW_CHECK(opts.num_classes > 1 && opts.dim > 0);
  std::mt19937_64 gen(opts.seed);
  std::normal_distribution<float> normal(0.0f, 1.0f);

  // Class centers on a scaled sphere.
  std::vector<float> centers(
      static_cast<std::size_t>(opts.num_classes) * opts.dim);
  for (auto& v : centers) v = normal(gen);

  Matrix<float> warp(opts.dim, opts.dim);
  for (auto& v : warp.storage()) {
    v = normal(gen) / std::sqrt(static_cast<float>(opts.dim));
  }

  Dataset ds;
  FillSplit(ds.train_x, ds.train_y, opts.train_per_class, centers, warp,
            opts.cluster_spread, gen, opts.num_classes, opts.dim);
  FillSplit(ds.test_x, ds.test_y, opts.test_per_class, centers, warp,
            opts.cluster_spread, gen, opts.num_classes, opts.dim);
  return ds;
}

}  // namespace nn
}  // namespace shflbw
