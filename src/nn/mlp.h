// A small MLP classifier — the trainable proxy model for the Table 1
// quality experiments (see DESIGN.md §0: prune each pattern, fine-tune,
// compare real accuracy).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"

namespace shflbw {
namespace nn {

class Mlp {
 public:
  /// dims = {input, hidden..., classes}; ReLU between linear layers.
  Mlp(const std::vector<int>& dims, std::uint64_t seed = 7);

  Matrix<float> Forward(const Matrix<float>& x);
  /// Backward from dL/dlogits (accumulates all layer gradients).
  void Backward(const Matrix<float>& dlogits);

  std::vector<Linear*> Layers();
  /// Hidden layers only (the ones worth pruning; the tiny output head is
  /// excluded, as papers exclude final classifiers).
  std::vector<Linear*> PrunableLayers();

 private:
  std::vector<std::unique_ptr<Linear>> linears_;
  std::vector<ReLU> relus_;
};

}  // namespace nn
}  // namespace shflbw
