#include "nn/trainer.h"

#include <algorithm>
#include <numeric>
#include <random>

#include "common/check.h"
#include "prune/grow_and_prune.h"
#include "prune/importance.h"

namespace shflbw {
namespace nn {
namespace {

Matrix<float> GatherColumns(const Matrix<float>& x,
                            const std::vector<int>& idx, int begin,
                            int end) {
  Matrix<float> out(x.rows(), end - begin);
  for (int j = begin; j < end; ++j) {
    for (int r = 0; r < x.rows(); ++r) {
      out(r, j - begin) = x(r, idx[j]);
    }
  }
  return out;
}

std::vector<int> GatherLabels(const std::vector<int>& y,
                              const std::vector<int>& idx, int begin,
                              int end) {
  std::vector<int> out(static_cast<std::size_t>(end - begin));
  for (int j = begin; j < end; ++j) out[j - begin] = y[idx[j]];
  return out;
}

}  // namespace

Trainer::Trainer(Mlp& model, const Dataset& data)
    : model_(model), data_(data) {}

double Trainer::Train(const TrainOptions& opts) {
  Sgd sgd(model_.Layers(), opts.sgd);
  std::mt19937_64 gen(opts.shuffle_seed);
  const int n = data_.train_x.cols();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), gen);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int b = 0; b < n; b += opts.batch_size) {
      const int e = std::min(n, b + opts.batch_size);
      const Matrix<float> x = GatherColumns(data_.train_x, order, b, e);
      const std::vector<int> y = GatherLabels(data_.train_y, order, b, e);
      const Matrix<float> logits = model_.Forward(x);
      LossResult lr = SoftmaxCrossEntropy(logits, y);
      model_.Backward(lr.grad_logits);
      sgd.Step();
      epoch_loss += lr.loss;
      ++batches;
    }
    last_loss = epoch_loss / std::max(1, batches);
  }
  return last_loss;
}

void Trainer::PruneModel(const LayerMasker& masker, double density) {
  for (Linear* l : model_.PrunableLayers()) {
    const Matrix<float> scores = MagnitudeScores(l->weights());
    l->SetMask(masker(scores, density));
  }
}

void Trainer::GrowAndPruneFineTune(const LayerMasker& masker,
                                   double final_density, int rounds,
                                   double grow_ratio,
                                   const TrainOptions& opts) {
  const std::vector<double> schedule =
      GrowAndPruneDensities(1.0, final_density, rounds);
  for (double density : schedule) {
    for (Linear* l : model_.PrunableLayers()) {
      const Matrix<float> scores = MagnitudeScores(l->weights());
      const Matrix<float> current =
          l->mask() ? *l->mask()
                    : Matrix<float>(scores.rows(), scores.cols(), 1.0f);
      l->SetMask(
          GrowAndPruneRound(scores, current, density, grow_ratio, masker));
    }
    Train(opts);
  }
}

double Trainer::TrainAccuracy() {
  return Accuracy(model_.Forward(data_.train_x), data_.train_y);
}

double Trainer::TestAccuracy() {
  return Accuracy(model_.Forward(data_.test_x), data_.test_y);
}

}  // namespace nn
}  // namespace shflbw
