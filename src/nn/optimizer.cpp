#include "nn/optimizer.h"

#include "common/check.h"

namespace shflbw {
namespace nn {

Sgd::Sgd(std::vector<Linear*> layers, const SgdOptions& opts)
    : layers_(std::move(layers)), opts_(opts) {
  for (Linear* l : layers_) {
    SHFLBW_CHECK(l != nullptr);
    vel_w_.emplace_back(l->weights().rows(), l->weights().cols());
    vel_b_.emplace_back(l->bias().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    Linear& l = *layers_[li];
    Matrix<float>& w = l.weights();
    Matrix<float>& gw = l.grad_weights();
    Matrix<float>& vw = vel_w_[li];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float g =
          gw.storage()[i] + opts_.weight_decay * w.storage()[i];
      vw.storage()[i] = opts_.momentum * vw.storage()[i] + g;
      w.storage()[i] -= opts_.lr * vw.storage()[i];
      gw.storage()[i] = 0.0f;
    }
    std::vector<float>& b = l.bias();
    std::vector<float>& gb = l.grad_bias();
    std::vector<float>& vb = vel_b_[li];
    for (std::size_t i = 0; i < b.size(); ++i) {
      vb[i] = opts_.momentum * vb[i] + gb[i];
      b[i] -= opts_.lr * vb[i];
      gb[i] = 0.0f;
    }
    l.EnforceMask();  // pruned weights stay exactly zero
  }
}

}  // namespace nn
}  // namespace shflbw
