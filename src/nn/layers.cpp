#include "nn/layers.h"

#include <cmath>
#include <random>

#include "common/check.h"
#include "nn/tensor.h"

namespace shflbw {
namespace nn {

Linear::Linear(int out_features, int in_features, std::uint64_t seed)
    : w_(out_features, in_features),
      b_(static_cast<std::size_t>(out_features), 0.0f),
      grad_w_(out_features, in_features),
      grad_b_(static_cast<std::size_t>(out_features), 0.0f) {
  // Kaiming-uniform init.
  std::mt19937_64 gen(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (auto& v : w_.storage()) v = dist(gen);
}

Matrix<float> Linear::Forward(const Matrix<float>& x) {
  SHFLBW_CHECK_MSG(x.rows() == w_.cols(), "Linear: input features "
                                              << x.rows() << " != "
                                              << w_.cols());
  cached_x_ = x;
  Matrix<float> y = MatMul(w_, x);
  AddBias(y, b_);
  return y;
}

Matrix<float> Linear::Backward(const Matrix<float>& dy) {
  // dW = dY X^T ; db = rowsum(dY) ; dX = W^T dY.
  Matrix<float> gw = MatMulTransB(dy, cached_x_);
  if (mask_) {
    for (std::size_t i = 0; i < gw.size(); ++i) {
      gw.storage()[i] *= mask_->storage()[i];
    }
  }
  for (std::size_t i = 0; i < gw.size(); ++i) {
    grad_w_.storage()[i] += gw.storage()[i];
  }
  const std::vector<float> gb = RowSums(dy);
  for (std::size_t i = 0; i < gb.size(); ++i) grad_b_[i] += gb[i];
  return MatMulTransA(w_, dy);
}

void Linear::SetMask(Matrix<float> mask) {
  SHFLBW_CHECK_MSG(mask.rows() == w_.rows() && mask.cols() == w_.cols(),
                   "mask shape mismatch");
  mask_ = std::move(mask);
  EnforceMask();
}

void Linear::EnforceMask() {
  if (!mask_) return;
  for (std::size_t i = 0; i < w_.size(); ++i) {
    w_.storage()[i] *= mask_->storage()[i];
  }
}

Matrix<float> ReLU::Forward(const Matrix<float>& x) {
  cached_x_ = x;
  Matrix<float> y(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y.storage()[i] = x.storage()[i] > 0.0f ? x.storage()[i] : 0.0f;
  }
  return y;
}

Matrix<float> ReLU::Backward(const Matrix<float>& dy) const {
  SHFLBW_CHECK(dy.rows() == cached_x_.rows() && dy.cols() == cached_x_.cols());
  Matrix<float> dx(dy.rows(), dy.cols());
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dx.storage()[i] = cached_x_.storage()[i] > 0.0f ? dy.storage()[i] : 0.0f;
  }
  return dx;
}

}  // namespace nn
}  // namespace shflbw
