// Softmax cross-entropy over column-batched logits.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace shflbw {
namespace nn {

struct LossResult {
  double loss = 0;            // mean over the batch
  Matrix<float> grad_logits;  // dL/dlogits (already divided by batch)
};

/// logits: (classes x batch); labels: one class index per column.
LossResult SoftmaxCrossEntropy(const Matrix<float>& logits,
                               const std::vector<int>& labels);

/// argmax over each column.
std::vector<int> Predictions(const Matrix<float>& logits);

/// Fraction of columns whose argmax equals the label.
double Accuracy(const Matrix<float>& logits, const std::vector<int>& labels);

}  // namespace nn
}  // namespace shflbw
