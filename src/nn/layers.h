// Layers with manual backprop for the Table 1 fine-tuning experiments.
#pragma once

#include <optional>
#include <vector>

#include "common/matrix.h"

namespace shflbw {
namespace nn {

/// Fully-connected layer y = W x + b with an optional frozen sparsity
/// mask: when set, masked weights stay exactly zero through training
/// (gradients are masked too), which is how pruned models fine-tune.
class Linear {
 public:
  Linear(int out_features, int in_features, std::uint64_t seed);

  /// Forward; caches x for backward.
  Matrix<float> Forward(const Matrix<float>& x);

  /// Backward from dL/dy; accumulates grad_w/grad_b, returns dL/dx.
  Matrix<float> Backward(const Matrix<float>& dy);

  /// Installs (or replaces) the sparsity mask and zeroes masked weights.
  void SetMask(Matrix<float> mask);
  void ClearMask() { mask_.reset(); }
  const std::optional<Matrix<float>>& mask() const { return mask_; }

  Matrix<float>& weights() { return w_; }
  const Matrix<float>& weights() const { return w_; }
  std::vector<float>& bias() { return b_; }
  Matrix<float>& grad_weights() { return grad_w_; }
  std::vector<float>& grad_bias() { return grad_b_; }

  int in_features() const { return w_.cols(); }
  int out_features() const { return w_.rows(); }

  /// Re-applies the mask to the weights (after an optimizer step).
  void EnforceMask();

 private:
  Matrix<float> w_;
  std::vector<float> b_;
  Matrix<float> grad_w_;
  std::vector<float> grad_b_;
  std::optional<Matrix<float>> mask_;
  Matrix<float> cached_x_;
};

/// Elementwise ReLU with cached activation pattern.
class ReLU {
 public:
  Matrix<float> Forward(const Matrix<float>& x);
  Matrix<float> Backward(const Matrix<float>& dy) const;

 private:
  Matrix<float> cached_x_;
};

}  // namespace nn
}  // namespace shflbw
