// Training / fine-tuning loop for the Table 1 pipeline:
//   train dense -> prune with a pattern -> fine-tune with frozen masks ->
//   measure test accuracy. Supports ADMM pre-regularization and
//   grow-and-prune fine-tuning schedules (§6.1 pruning settings).
#pragma once

#include <cstdint>
#include <functional>

#include "nn/dataset.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace shflbw {
namespace nn {

struct TrainOptions {
  int epochs = 30;
  int batch_size = 64;
  SgdOptions sgd;
  std::uint64_t shuffle_seed = 3;
};

/// (scores, density) -> binary mask for one layer (pattern-specific).
using LayerMasker =
    std::function<Matrix<float>(const Matrix<float>&, double)>;

class Trainer {
 public:
  Trainer(Mlp& model, const Dataset& data);

  /// Trains for opts.epochs; returns final train loss.
  double Train(const TrainOptions& opts);

  /// Prunes every prunable layer with the masker at `density` (scores =
  /// |W|), installing frozen masks.
  void PruneModel(const LayerMasker& masker, double density);

  /// Grow-and-prune fine-tuning: `rounds` rounds of re-masking along a
  /// cubic density schedule, each followed by `epochs_per_round` epochs.
  void GrowAndPruneFineTune(const LayerMasker& masker, double final_density,
                            int rounds, double grow_ratio,
                            const TrainOptions& opts);

  double TrainAccuracy();
  double TestAccuracy();

 private:
  Mlp& model_;
  const Dataset& data_;
};

}  // namespace nn
}  // namespace shflbw
