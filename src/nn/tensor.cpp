#include "nn/tensor.h"

#include "common/check.h"

namespace shflbw {
namespace nn {

Matrix<float> MatMul(const Matrix<float>& a, const Matrix<float>& b) {
  SHFLBW_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix<float> c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int kk = 0; kk < a.cols(); ++kk) {
      const float av = a(i, kk);
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      float* crow = c.row(i);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix<float> MatMulTransA(const Matrix<float>& a, const Matrix<float>& b) {
  SHFLBW_CHECK_MSG(a.rows() == b.rows(), "matmul(T,) shape mismatch");
  Matrix<float> c(a.cols(), b.cols());
  for (int kk = 0; kk < a.rows(); ++kk) {
    const float* arow = a.row(kk);
    const float* brow = b.row(kk);
    for (int i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < b.cols(); ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix<float> MatMulTransB(const Matrix<float>& a, const Matrix<float>& b) {
  SHFLBW_CHECK_MSG(a.cols() == b.cols(), "matmul(,T) shape mismatch");
  Matrix<float> c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (int kk = 0; kk < a.cols(); ++kk) acc += arow[kk] * brow[kk];
      c(i, j) = acc;
    }
  }
  return c;
}

Matrix<float> Transpose(const Matrix<float>& a) {
  Matrix<float> t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

void AddBias(Matrix<float>& y, const std::vector<float>& bias) {
  SHFLBW_CHECK_MSG(static_cast<int>(bias.size()) == y.rows(),
                   "bias size mismatch");
  for (int i = 0; i < y.rows(); ++i) {
    float* row = y.row(i);
    for (int j = 0; j < y.cols(); ++j) row[j] += bias[i];
  }
}

std::vector<float> RowSums(const Matrix<float>& a) {
  std::vector<float> sums(static_cast<std::size_t>(a.rows()), 0.0f);
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (int j = 0; j < a.cols(); ++j) sums[i] += row[j];
  }
  return sums;
}

}  // namespace nn
}  // namespace shflbw
