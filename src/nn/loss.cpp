#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace shflbw {
namespace nn {

LossResult SoftmaxCrossEntropy(const Matrix<float>& logits,
                               const std::vector<int>& labels) {
  const int classes = logits.rows();
  const int batch = logits.cols();
  SHFLBW_CHECK_MSG(static_cast<int>(labels.size()) == batch,
                   "labels size mismatch");
  LossResult out;
  out.grad_logits = Matrix<float>(classes, batch);
  double total = 0.0;
  for (int j = 0; j < batch; ++j) {
    SHFLBW_CHECK_MSG(labels[j] >= 0 && labels[j] < classes,
                     "label out of range");
    // Numerically-stable softmax per column.
    float maxv = logits(0, j);
    for (int i = 1; i < classes; ++i) maxv = std::max(maxv, logits(i, j));
    double denom = 0.0;
    for (int i = 0; i < classes; ++i) {
      denom += std::exp(static_cast<double>(logits(i, j) - maxv));
    }
    for (int i = 0; i < classes; ++i) {
      const double p =
          std::exp(static_cast<double>(logits(i, j) - maxv)) / denom;
      out.grad_logits(i, j) = static_cast<float>(
          (p - (i == labels[j] ? 1.0 : 0.0)) / batch);
      if (i == labels[j]) total -= std::log(std::max(p, 1e-12));
    }
  }
  out.loss = total / batch;
  return out;
}

std::vector<int> Predictions(const Matrix<float>& logits) {
  std::vector<int> pred(static_cast<std::size_t>(logits.cols()));
  for (int j = 0; j < logits.cols(); ++j) {
    int best = 0;
    for (int i = 1; i < logits.rows(); ++i) {
      if (logits(i, j) > logits(best, j)) best = i;
    }
    pred[j] = best;
  }
  return pred;
}

double Accuracy(const Matrix<float>& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = Predictions(logits);
  SHFLBW_CHECK(pred.size() == labels.size());
  if (pred.empty()) return 0.0;
  int correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace nn
}  // namespace shflbw
