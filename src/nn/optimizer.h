// SGD with momentum and weight decay, mask-aware: after each step, a
// layer with a frozen sparsity mask re-zeroes its pruned weights.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace shflbw {
namespace nn {

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  explicit Sgd(std::vector<Linear*> layers, const SgdOptions& opts = {});

  /// One update from accumulated gradients; then zeroes them.
  void Step();

  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }

 private:
  std::vector<Linear*> layers_;
  SgdOptions opts_;
  std::vector<Matrix<float>> vel_w_;
  std::vector<std::vector<float>> vel_b_;
};

}  // namespace nn
}  // namespace shflbw
