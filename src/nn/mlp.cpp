#include "nn/mlp.h"

#include "common/check.h"

namespace shflbw {
namespace nn {

Mlp::Mlp(const std::vector<int>& dims, std::uint64_t seed) {
  SHFLBW_CHECK_MSG(dims.size() >= 2, "need at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    linears_.push_back(
        std::make_unique<Linear>(dims[i + 1], dims[i], seed + i));
  }
  relus_.resize(linears_.size() - 1);
}

Matrix<float> Mlp::Forward(const Matrix<float>& x) {
  Matrix<float> h = x;
  for (std::size_t i = 0; i < linears_.size(); ++i) {
    h = linears_[i]->Forward(h);
    if (i + 1 < linears_.size()) h = relus_[i].Forward(h);
  }
  return h;
}

void Mlp::Backward(const Matrix<float>& dlogits) {
  Matrix<float> d = dlogits;
  for (std::size_t i = linears_.size(); i-- > 0;) {
    d = linears_[i]->Backward(d);
    if (i > 0) d = relus_[i - 1].Backward(d);
  }
}

std::vector<Linear*> Mlp::Layers() {
  std::vector<Linear*> out;
  for (auto& l : linears_) out.push_back(l.get());
  return out;
}

std::vector<Linear*> Mlp::PrunableLayers() {
  std::vector<Linear*> out;
  for (std::size_t i = 0; i + 1 < linears_.size(); ++i) {
    out.push_back(linears_[i].get());
  }
  // With a single linear layer there is nothing but the head; prune it.
  if (out.empty() && !linears_.empty()) out.push_back(linears_[0].get());
  return out;
}

}  // namespace nn
}  // namespace shflbw
