// Dense fp32 linear-algebra helpers for the training substrate. Training
// runs in fp32 (as the paper's fine-tuning does); only inference kernels
// use fp16.
//
// Convention: activations are (features x batch) — batch is the
// innermost (column) dimension, matching the row-major layout assumption
// of §4.3.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace shflbw {
namespace nn {

/// C = A * B (fp32, no fp16 rounding).
Matrix<float> MatMul(const Matrix<float>& a, const Matrix<float>& b);

/// C = A^T * B.
Matrix<float> MatMulTransA(const Matrix<float>& a, const Matrix<float>& b);

/// C = A * B^T.
Matrix<float> MatMulTransB(const Matrix<float>& a, const Matrix<float>& b);

Matrix<float> Transpose(const Matrix<float>& a);

/// y += bias per row (bias has one entry per feature row).
void AddBias(Matrix<float>& y, const std::vector<float>& bias);

/// Row-wise sum (gradient of AddBias).
std::vector<float> RowSums(const Matrix<float>& a);

}  // namespace nn
}  // namespace shflbw
