#include "format/shfl_bw.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"

namespace shflbw {
namespace {

/// Non-zero column set of one row, as a sorted vector (the row's
/// "pattern" in the paper's Fig. 5 sense).
std::vector<int> RowPattern(const Matrix<float>& dense, int r) {
  std::vector<int> p;
  for (int c = 0; c < dense.cols(); ++c) {
    if (dense(r, c) != 0.0f) p.push_back(c);
  }
  return p;
}

/// |a ∩ b| for sorted vectors.
int OverlapCount(const std::vector<int>& a, const std::vector<int>& b) {
  int count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) ++ia;
    else if (*ib < *ia) ++ib;
    else { ++count; ++ia; ++ib; }
  }
  return count;
}

Matrix<float> PermuteRows(const Matrix<float>& dense,
                          const std::vector<int>& storage_to_original) {
  Matrix<float> out(dense.rows(), dense.cols());
  for (int s = 0; s < dense.rows(); ++s) {
    const int orig = storage_to_original[s];
    for (int c = 0; c < dense.cols(); ++c) {
      out(s, c) = dense(orig, c);
    }
  }
  return out;
}

void ValidatePermutation(const std::vector<int>& p, int n) {
  SHFLBW_CHECK_MSG(static_cast<int>(p.size()) == n,
                   "permutation size " << p.size() << " != rows " << n);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (int x : p) {
    SHFLBW_CHECK_MSG(x >= 0 && x < n, "permutation entry " << x
                                                           << " out of range");
    SHFLBW_CHECK_MSG(!seen[x], "duplicate permutation entry " << x);
    seen[x] = 1;
  }
}

}  // namespace

ShflBwMatrix ShflBwMatrix::FromDense(const Matrix<float>& dense, int v,
                                     std::vector<int> storage_to_original) {
  ValidatePermutation(storage_to_original, dense.rows());
  ShflBwMatrix m;
  m.vw = VectorWiseMatrix::FromDense(PermuteRows(dense, storage_to_original),
                                     v);
  m.storage_to_original = std::move(storage_to_original);
  return m;
}

ShflBwMatrix ShflBwMatrix::FromDenseAuto(const Matrix<float>& dense, int v) {
  SHFLBW_CHECK_MSG(v > 0 && dense.rows() % v == 0,
                   "rows=" << dense.rows() << " not divisible by v=" << v);
  const int rows = dense.rows();

  // Bucket rows by identical non-zero pattern. Full buckets of v rows
  // form exact groups (zero padding); remainders are grouped greedily by
  // pattern overlap.
  std::map<std::vector<int>, std::vector<int>> buckets;
  for (int r = 0; r < rows; ++r) {
    buckets[RowPattern(dense, r)].push_back(r);
  }

  std::vector<int> order;
  order.reserve(rows);
  std::vector<std::pair<std::vector<int>, std::vector<int>>> leftovers;
  for (auto& [pattern, members] : buckets) {
    while (static_cast<int>(members.size()) >= v) {
      order.insert(order.end(), members.end() - v, members.end());
      members.erase(members.end() - v, members.end());
    }
    if (!members.empty()) leftovers.emplace_back(pattern, members);
  }

  // Greedy: repeatedly start a group from the largest leftover bucket and
  // fill it with the most-overlapping remaining rows.
  std::sort(leftovers.begin(), leftovers.end(),
            [](const auto& a, const auto& b) {
              return a.second.size() > b.second.size();
            });
  std::vector<std::pair<std::vector<int>, int>> pool;  // (pattern, row)
  for (const auto& [pattern, members] : leftovers) {
    for (int r : members) pool.emplace_back(pattern, r);
  }
  while (!pool.empty()) {
    // Seed with the first row, then pick the v-1 best overlaps.
    const std::vector<int> seed_pattern = pool.front().first;
    order.push_back(pool.front().second);
    pool.erase(pool.begin());
    for (int picked = 1; picked < v; ++picked) {
      SHFLBW_CHECK_MSG(!pool.empty(), "row pool exhausted mid-group");
      auto best = pool.begin();
      int best_overlap = -1;
      for (auto it = pool.begin(); it != pool.end(); ++it) {
        const int ov = OverlapCount(seed_pattern, it->first);
        if (ov > best_overlap) {
          best_overlap = ov;
          best = it;
        }
      }
      order.push_back(best->second);
      pool.erase(best);
    }
  }

  return FromDense(dense, v, std::move(order));
}

Matrix<float> ShflBwMatrix::ToDense() const {
  const Matrix<float> permuted = vw.ToDense();
  Matrix<float> out(rows(), cols());
  for (int s = 0; s < rows(); ++s) {
    const int orig = storage_to_original[s];
    for (int c = 0; c < cols(); ++c) {
      out(orig, c) = permuted(s, c);
    }
  }
  return out;
}

void ShflBwMatrix::Validate() const {
  vw.Validate();
  ValidatePermutation(storage_to_original, vw.rows);
}

bool IsShflBw(const Matrix<float>& dense, int v) {
  if (v <= 0 || dense.rows() % v != 0) return false;
  std::map<std::vector<int>, int> pattern_counts;
  for (int r = 0; r < dense.rows(); ++r) {
    ++pattern_counts[RowPattern(dense, r)];
  }
  for (const auto& [pattern, count] : pattern_counts) {
    if (count % v != 0) return false;
  }
  return true;
}

}  // namespace shflbw
