// Binary serialization of the sparse formats — what a deployment
// pipeline stores after offline pruning/compression (Fig. 4 step (a) is
// run once; inference servers load the compressed artifact).
//
// Format: a small tagged header (magic, version, format kind) followed
// by dimension fields and raw little-endian arrays. Round-trips are
// exact (bit-level) for all value/index data.
#pragma once

#include <iosfwd>
#include <string>

#include "format/balanced24.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/shfl_bw.h"
#include "format/vector_wise.h"

namespace shflbw {

void Serialize(const CsrMatrix& m, std::ostream& os);
void Serialize(const BsrMatrix& m, std::ostream& os);
void Serialize(const VectorWiseMatrix& m, std::ostream& os);
void Serialize(const ShflBwMatrix& m, std::ostream& os);
void Serialize(const Balanced24Matrix& m, std::ostream& os);

CsrMatrix DeserializeCsr(std::istream& is);
BsrMatrix DeserializeBsr(std::istream& is);
VectorWiseMatrix DeserializeVectorWise(std::istream& is);
ShflBwMatrix DeserializeShflBw(std::istream& is);
Balanced24Matrix DeserializeBalanced24(std::istream& is);

/// Peeks the format kind of a serialized stream without consuming it.
/// Returns one of "csr", "bsr", "vw", "shflbw", "b24".
std::string PeekFormatKind(std::istream& is);

/// Convenience file helpers (throw shflbw::Error on I/O failure).
void SaveShflBw(const ShflBwMatrix& m, const std::string& path);
ShflBwMatrix LoadShflBw(const std::string& path);

}  // namespace shflbw
