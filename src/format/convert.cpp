#include "format/convert.h"

#include "common/check.h"

namespace shflbw {

Matrix<float> ExtractMask(const Matrix<float>& dense) {
  Matrix<float> mask(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    mask.storage()[i] = dense.storage()[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

Matrix<float> ApplyMask(const Matrix<float>& dense,
                        const Matrix<float>& mask) {
  SHFLBW_CHECK(dense.rows() == mask.rows() && dense.cols() == mask.cols());
  Matrix<float> out(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    out.storage()[i] = dense.storage()[i] * mask.storage()[i];
  }
  return out;
}

BsrMatrix ShflBwToBlockWise(const ShflBwMatrix& m) {
  const VectorWiseMatrix& vw = m.vw;
  const int v = vw.v;
  BsrMatrix bsr;
  bsr.rows = vw.rows;
  bsr.block_size = v;
  bsr.block_row_ptr.push_back(0);

  // Column stitching: within each group, the kept columns are packed
  // left-to-right into V-wide blocks (Fig. 3(c) -> (d)); the last block
  // of a group is zero-padded. Note the stitched matrix has its own
  // (compacted) column space — it is only used to run a dense-block
  // kernel per group; the kernel maps block columns back through col_idx.
  int max_blocks_per_group = 0;
  for (int g = 0; g < vw.Groups(); ++g) {
    const int kept = vw.KeptColumnsInGroup(g);
    max_blocks_per_group =
        std::max(max_blocks_per_group, (kept + v - 1) / v);
  }
  bsr.cols = std::max(1, max_blocks_per_group) * v;

  for (int g = 0; g < vw.Groups(); ++g) {
    const int base = vw.group_col_ptr[g];
    const int kept = vw.KeptColumnsInGroup(g);
    const int blocks = (kept + v - 1) / v;
    for (int b = 0; b < blocks; ++b) {
      bsr.block_col_idx.push_back(b);
      for (int r = 0; r < v; ++r) {
        for (int c = 0; c < v; ++c) {
          const int vec = b * v + c;
          bsr.values.push_back(vec < kept ? vw.ValueAt(base + vec, r) : 0.0f);
        }
      }
    }
    bsr.block_row_ptr.push_back(static_cast<int>(bsr.block_col_idx.size()));
  }
  return bsr;
}

CsrMatrix VectorWiseToCsr(const VectorWiseMatrix& vw) {
  return CsrMatrix::FromDense(vw.ToDense());
}

Matrix<float> QuantizeFp16(const Matrix<float>& dense) {
  Matrix<float> out(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    out.storage()[i] = Fp16(dense.storage()[i]).ToFloat();
  }
  return out;
}

}  // namespace shflbw
