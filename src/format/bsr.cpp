#include "format/bsr.h"

#include "common/check.h"

namespace shflbw {

BsrMatrix BsrMatrix::FromDense(const Matrix<float>& dense, int block_size) {
  SHFLBW_CHECK_MSG(block_size > 0, "block_size=" << block_size);
  SHFLBW_CHECK_MSG(
      dense.rows() % block_size == 0 && dense.cols() % block_size == 0,
      "shape " << dense.rows() << "x" << dense.cols()
               << " not divisible by V=" << block_size);
  BsrMatrix bsr;
  bsr.rows = dense.rows();
  bsr.cols = dense.cols();
  bsr.block_size = block_size;
  const int brows = bsr.BlockRows();
  const int bcols = bsr.BlockCols();
  bsr.block_row_ptr.reserve(brows + 1);
  bsr.block_row_ptr.push_back(0);
  for (int br = 0; br < brows; ++br) {
    for (int bc = 0; bc < bcols; ++bc) {
      bool any = false;
      for (int r = 0; r < block_size && !any; ++r) {
        for (int c = 0; c < block_size && !any; ++c) {
          any = dense(br * block_size + r, bc * block_size + c) != 0.0f;
        }
      }
      if (!any) continue;
      bsr.block_col_idx.push_back(bc);
      for (int r = 0; r < block_size; ++r) {
        for (int c = 0; c < block_size; ++c) {
          bsr.values.push_back(
              dense(br * block_size + r, bc * block_size + c));
        }
      }
    }
    bsr.block_row_ptr.push_back(static_cast<int>(bsr.block_col_idx.size()));
  }
  return bsr;
}

Matrix<float> BsrMatrix::ToDense() const {
  Matrix<float> dense(rows, cols);
  const int v = block_size;
  for (int br = 0; br < BlockRows(); ++br) {
    for (int i = block_row_ptr[br]; i < block_row_ptr[br + 1]; ++i) {
      const int bc = block_col_idx[i];
      const float* block = &values[static_cast<std::size_t>(i) * v * v];
      for (int r = 0; r < v; ++r) {
        for (int c = 0; c < v; ++c) {
          dense(br * v + r, bc * v + c) = block[r * v + c];
        }
      }
    }
  }
  return dense;
}

void BsrMatrix::Validate() const {
  SHFLBW_CHECK(block_size > 0);
  SHFLBW_CHECK(rows % block_size == 0 && cols % block_size == 0);
  SHFLBW_CHECK_MSG(
      static_cast<int>(block_row_ptr.size()) == BlockRows() + 1,
      "block_row_ptr size mismatch");
  SHFLBW_CHECK(block_row_ptr.front() == 0);
  SHFLBW_CHECK(block_row_ptr.back() == NnzBlocks());
  SHFLBW_CHECK(values.size() == static_cast<std::size_t>(NnzBlocks()) *
                                    block_size * block_size);
  for (int br = 0; br < BlockRows(); ++br) {
    SHFLBW_CHECK(block_row_ptr[br] <= block_row_ptr[br + 1]);
    for (int i = block_row_ptr[br]; i < block_row_ptr[br + 1]; ++i) {
      SHFLBW_CHECK_MSG(block_col_idx[i] >= 0 && block_col_idx[i] < BlockCols(),
                       "block col out of range");
      if (i > block_row_ptr[br]) {
        SHFLBW_CHECK_MSG(block_col_idx[i - 1] < block_col_idx[i],
                         "block columns not sorted in block-row " << br);
      }
    }
  }
}

bool IsBlockAligned(const Matrix<float>& dense, int block_size) {
  if (block_size <= 0 || dense.rows() % block_size != 0 ||
      dense.cols() % block_size != 0) {
    return false;
  }
  // Every kept block must be fully dense (pure block-wise pattern).
  for (int br = 0; br < dense.rows() / block_size; ++br) {
    for (int bc = 0; bc < dense.cols() / block_size; ++bc) {
      int nz = 0;
      for (int r = 0; r < block_size; ++r) {
        for (int c = 0; c < block_size; ++c) {
          if (dense(br * block_size + r, bc * block_size + c) != 0.0f) ++nz;
        }
      }
      if (nz != 0 && nz != block_size * block_size) return false;
    }
  }
  return true;
}

}  // namespace shflbw
