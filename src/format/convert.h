// Cross-format conversion helpers and mask utilities shared by the
// pruning algorithms and the kernels.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/shfl_bw.h"
#include "format/vector_wise.h"

namespace shflbw {

/// Binary mask (1 = kept) of the non-zero pattern of a dense matrix.
Matrix<float> ExtractMask(const Matrix<float>& dense);

/// Elementwise product: returns dense .* mask.
Matrix<float> ApplyMask(const Matrix<float>& dense,
                        const Matrix<float>& mask);

/// The online transformation of §3.1 / Fig. 3: converts a Shfl-BW matrix
/// to an explicit block-wise (BSR) matrix by materializing the row
/// permutation and stitching kept columns into V x V blocks (columns are
/// padded to a multiple of V within each group). This is what the GPU
/// kernel does implicitly per tile; the explicit version exists for
/// testing the equivalence the paper claims.
BsrMatrix ShflBwToBlockWise(const ShflBwMatrix& m);

/// Converts vector-wise to CSR (exact non-zeros; padding dropped).
CsrMatrix VectorWiseToCsr(const VectorWiseMatrix& vw);

/// Round-trips a dense matrix through fp16 (what a GPU kernel sees).
Matrix<float> QuantizeFp16(const Matrix<float>& dense);

}  // namespace shflbw
