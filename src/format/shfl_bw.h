// Shuffled Block-wise (Shfl-BW) sparse format — the paper's contribution
// (§3.1): vector-wise sparsity composed with an arbitrary row permutation.
//
// Offline processing (Fig. 4 step (a)) stores the matrix as a vector-wise
// matrix over *reordered* rows plus the original row indices; the kernel
// computes on the contiguous reordered rows and performs the reordered
// write-back (§4.2) at the end.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "format/vector_wise.h"

namespace shflbw {

/// Shfl-BW sparse matrix = vector-wise matrix on permuted rows + the
/// permutation. storage_to_original[s] is the original row index of
/// storage row s; it is used by the reordered write-back.
struct ShflBwMatrix {
  VectorWiseMatrix vw;                  // over permuted rows
  std::vector<int> storage_to_original; // size vw.rows, a permutation

  int rows() const { return vw.rows; }
  int cols() const { return vw.cols; }
  int v() const { return vw.v; }

  /// Builds from a dense matrix in ORIGINAL row order and an explicit
  /// permutation (storage row s holds original row storage_to_original[s]).
  /// Typically the permutation comes from the Shfl-BW pattern search.
  static ShflBwMatrix FromDense(const Matrix<float>& dense, int v,
                                std::vector<int> storage_to_original);

  /// Builds from a dense matrix by inferring the row grouping: rows with
  /// identical non-zero patterns are grouped first (exactly recovering a
  /// matrix that *is* Shfl-BW); leftover rows are grouped greedily by
  /// pattern overlap, paying padding. Always succeeds.
  static ShflBwMatrix FromDenseAuto(const Matrix<float>& dense, int v);

  /// Expands to dense in ORIGINAL row order (inverse of FromDense).
  Matrix<float> ToDense() const;

  void Validate() const;

  /// Bytes of metadata a kernel loads: vector-wise indices + the
  /// row-index array for the reordered write-back.
  double MetadataBytes() const {
    return vw.MetadataBytes() + 4.0 * storage_to_original.size();
  }
};

/// True iff `dense` is exactly expressible as Shfl-BW with vector size v
/// and no padding: rows can be partitioned into groups of v with
/// identical non-zero column sets.
bool IsShflBw(const Matrix<float>& dense, int v);

}  // namespace shflbw
