// Block Sparse Row format (V x V dense blocks) — the carrier for the
// block-wise sparsity baseline (cuSPARSE bsrmm, Fig. 3(d) of the paper).
#pragma once

#include <vector>

#include "common/matrix.h"

namespace shflbw {

/// BSR matrix: non-zeros form aligned V x V blocks. Values of one block
/// are stored contiguously, row-major within the block.
struct BsrMatrix {
  int rows = 0;        // element rows (multiple of block_size)
  int cols = 0;        // element cols (multiple of block_size)
  int block_size = 0;  // V
  std::vector<int> block_row_ptr;  // size rows/V + 1
  std::vector<int> block_col_idx;  // block-column of each stored block
  std::vector<float> values;       // nnz_blocks * V * V

  int BlockRows() const { return rows / block_size; }
  int BlockCols() const { return cols / block_size; }
  int NnzBlocks() const { return static_cast<int>(block_col_idx.size()); }
  double Density() const {
    const double total = static_cast<double>(BlockRows()) * BlockCols();
    return total > 0 ? NnzBlocks() / total : 0.0;
  }

  /// Builds BSR from a dense matrix whose sparsity is block-aligned: a
  /// block is stored iff it contains any non-zero. (The matrix need not
  /// be *exactly* block-wise; kept blocks may contain zeros, which is the
  /// padding cost block pruning pays.)
  static BsrMatrix FromDense(const Matrix<float>& dense, int block_size);

  Matrix<float> ToDense() const;

  void Validate() const;

  double MetadataBytes() const {
    return 4.0 * (block_row_ptr.size() + block_col_idx.size());
  }
};

/// True iff every V x V block of `dense` is either all-zero or the matrix
/// treats it as kept — i.e. the pattern is exactly expressible at block
/// granularity with no fully-zero stored blocks.
bool IsBlockAligned(const Matrix<float>& dense, int block_size);

}  // namespace shflbw
