#include "format/balanced24.h"

#include "common/check.h"

namespace shflbw {

Balanced24Matrix Balanced24Matrix::FromDense(const Matrix<float>& dense) {
  SHFLBW_CHECK_MSG(dense.cols() % 4 == 0,
                   "cols=" << dense.cols() << " not a multiple of 4");
  Balanced24Matrix m;
  m.rows = dense.rows();
  m.cols = dense.cols();
  m.values.reserve(static_cast<std::size_t>(m.rows) * m.cols / 2);
  m.meta.reserve(m.values.capacity());
  for (int r = 0; r < m.rows; ++r) {
    for (int q = 0; q < m.QuadsPerRow(); ++q) {
      // Select the two stored slots: all non-zeros, then zero padding at
      // the lowest unused positions. Slots are emitted in ascending
      // position order (required by Validate and by the ascending-K
      // accumulation the kernels rely on for bit-exactness).
      int kept = 0;
      std::uint8_t used[4] = {0, 0, 0, 0};
      for (int i = 0; i < 4; ++i) {
        if (dense(r, q * 4 + i) != 0.0f) {
          SHFLBW_CHECK_MSG(kept < 2, "quad (" << r << "," << q
                                              << ") has >2 non-zeros; "
                                                 "matrix is not 2:4");
          used[i] = 1;
          ++kept;
        }
      }
      for (int i = 0; i < 4 && kept < 2; ++i) {
        if (!used[i]) {
          used[i] = 1;
          ++kept;
        }
      }
      for (int i = 0; i < 4; ++i) {
        if (used[i]) {
          m.values.push_back(dense(r, q * 4 + i));
          m.meta.push_back(static_cast<std::uint8_t>(i));
        }
      }
    }
  }
  return m;
}

Matrix<float> Balanced24Matrix::ToDense() const {
  Matrix<float> dense(rows, cols);
  std::size_t k = 0;
  for (int r = 0; r < rows; ++r) {
    for (int q = 0; q < QuadsPerRow(); ++q) {
      for (int s = 0; s < 2; ++s, ++k) {
        dense(r, q * 4 + meta[k]) = values[k];
      }
    }
  }
  return dense;
}

void Balanced24Matrix::Validate() const {
  SHFLBW_CHECK(cols % 4 == 0);
  const std::size_t expected =
      static_cast<std::size_t>(rows) * cols / 2;
  SHFLBW_CHECK_MSG(values.size() == expected,
                   "values size " << values.size() << " != " << expected);
  SHFLBW_CHECK(meta.size() == values.size());
  std::size_t k = 0;
  for (int r = 0; r < rows; ++r) {
    for (int q = 0; q < QuadsPerRow(); ++q, k += 2) {
      SHFLBW_CHECK_MSG(meta[k] < 4 && meta[k + 1] < 4,
                       "meta out of range in quad (" << r << "," << q << ")");
      SHFLBW_CHECK_MSG(meta[k] < meta[k + 1],
                       "meta not strictly increasing in quad (" << r << ","
                                                                << q << ")");
    }
  }
}

bool Satisfies24(const Matrix<float>& dense) {
  if (dense.cols() % 4 != 0) return false;
  for (int r = 0; r < dense.rows(); ++r) {
    for (int q = 0; q < dense.cols() / 4; ++q) {
      int nz = 0;
      for (int i = 0; i < 4; ++i) {
        if (dense(r, q * 4 + i) != 0.0f) ++nz;
      }
      if (nz > 2) return false;
    }
  }
  return true;
}

}  // namespace shflbw
