// Vector-wise sparse format (Fig. 3(c)): the pruning granularity is a
// V x 1 column vector within a group of V consecutive rows. This is also
// the storage format of Shfl-BW after its offline row reordering (§4.2):
// values of one vector are contiguous, so the kernel streams them with
// fully-coalesced loads.
#pragma once

#include <vector>

#include "common/matrix.h"

namespace shflbw {

/// Vector-wise sparse matrix. Rows are partitioned into contiguous groups
/// of V; each group keeps a set of columns; each kept (group, column)
/// pair stores V contiguous values (the "vector").
struct VectorWiseMatrix {
  int rows = 0;
  int cols = 0;
  int v = 0;  // vector length == group height
  std::vector<int> group_col_ptr;  // size rows/v + 1
  std::vector<int> col_idx;        // kept columns, sorted within a group
  std::vector<float> values;       // col_idx.size() * v, vector-contiguous

  int Groups() const { return v > 0 ? rows / v : 0; }
  int KeptVectors() const { return static_cast<int>(col_idx.size()); }
  int KeptColumnsInGroup(int g) const {
    return group_col_ptr[g + 1] - group_col_ptr[g];
  }
  /// Stored-element density including padding zeros inside kept vectors.
  double StoredDensity() const {
    const double total = static_cast<double>(rows) * cols;
    return total > 0 ? static_cast<double>(values.size()) / total : 0.0;
  }
  /// Fraction of stored slots that are padding zeros.
  double PaddingFraction() const;

  /// Builds from a dense matrix: group g keeps every column that has at
  /// least one non-zero among its V rows (zeros inside kept vectors
  /// become explicit padding). rows must be a multiple of v.
  static VectorWiseMatrix FromDense(const Matrix<float>& dense, int v);

  Matrix<float> ToDense() const;

  void Validate() const;

  /// Value of (element row r, kept-vector i) — vector-contiguous layout.
  float ValueAt(int i, int row_in_group) const {
    return values[static_cast<std::size_t>(i) * v + row_in_group];
  }

  double MetadataBytes() const {
    return 4.0 * (group_col_ptr.size() + col_idx.size());
  }
};

}  // namespace shflbw
