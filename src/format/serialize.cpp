#include "format/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace shflbw {
namespace {

constexpr std::uint32_t kMagic = 0x53464C42;  // "SFLB"
constexpr std::uint32_t kVersion = 1;

enum class Kind : std::uint32_t {
  kCsr = 1,
  kBsr = 2,
  kVectorWise = 3,
  kShflBw = 4,
  kBalanced24 = 5,
};

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SHFLBW_CHECK_MSG(is.good(), "truncated stream reading u32");
  return v;
}

template <typename T>
void WriteVec(std::ostream& os, const std::vector<T>& v) {
  WriteU32(os, static_cast<std::uint32_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadVec(std::istream& is) {
  const std::uint32_t n = ReadU32(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  SHFLBW_CHECK_MSG(is.good(), "truncated stream reading array of " << n);
  return v;
}

void WriteHeader(std::ostream& os, Kind kind) {
  WriteU32(os, kMagic);
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<std::uint32_t>(kind));
}

Kind ReadHeader(std::istream& is) {
  SHFLBW_CHECK_MSG(ReadU32(is) == kMagic, "bad magic (not a shflbw file)");
  const std::uint32_t version = ReadU32(is);
  SHFLBW_CHECK_MSG(version == kVersion, "unsupported version " << version);
  return static_cast<Kind>(ReadU32(is));
}

void ExpectKind(std::istream& is, Kind want, const char* name) {
  const Kind got = ReadHeader(is);
  SHFLBW_CHECK_MSG(got == want, "stream holds format kind "
                                    << static_cast<int>(got)
                                    << ", expected " << name);
}

}  // namespace

void Serialize(const CsrMatrix& m, std::ostream& os) {
  WriteHeader(os, Kind::kCsr);
  WriteU32(os, static_cast<std::uint32_t>(m.rows));
  WriteU32(os, static_cast<std::uint32_t>(m.cols));
  WriteVec(os, m.row_ptr);
  WriteVec(os, m.col_idx);
  WriteVec(os, m.values);
}

CsrMatrix DeserializeCsr(std::istream& is) {
  ExpectKind(is, Kind::kCsr, "csr");
  CsrMatrix m;
  m.rows = static_cast<int>(ReadU32(is));
  m.cols = static_cast<int>(ReadU32(is));
  m.row_ptr = ReadVec<int>(is);
  m.col_idx = ReadVec<int>(is);
  m.values = ReadVec<float>(is);
  m.Validate();
  return m;
}

void Serialize(const BsrMatrix& m, std::ostream& os) {
  WriteHeader(os, Kind::kBsr);
  WriteU32(os, static_cast<std::uint32_t>(m.rows));
  WriteU32(os, static_cast<std::uint32_t>(m.cols));
  WriteU32(os, static_cast<std::uint32_t>(m.block_size));
  WriteVec(os, m.block_row_ptr);
  WriteVec(os, m.block_col_idx);
  WriteVec(os, m.values);
}

BsrMatrix DeserializeBsr(std::istream& is) {
  ExpectKind(is, Kind::kBsr, "bsr");
  BsrMatrix m;
  m.rows = static_cast<int>(ReadU32(is));
  m.cols = static_cast<int>(ReadU32(is));
  m.block_size = static_cast<int>(ReadU32(is));
  m.block_row_ptr = ReadVec<int>(is);
  m.block_col_idx = ReadVec<int>(is);
  m.values = ReadVec<float>(is);
  m.Validate();
  return m;
}

void Serialize(const VectorWiseMatrix& m, std::ostream& os) {
  WriteHeader(os, Kind::kVectorWise);
  WriteU32(os, static_cast<std::uint32_t>(m.rows));
  WriteU32(os, static_cast<std::uint32_t>(m.cols));
  WriteU32(os, static_cast<std::uint32_t>(m.v));
  WriteVec(os, m.group_col_ptr);
  WriteVec(os, m.col_idx);
  WriteVec(os, m.values);
}

VectorWiseMatrix DeserializeVectorWise(std::istream& is) {
  ExpectKind(is, Kind::kVectorWise, "vw");
  VectorWiseMatrix m;
  m.rows = static_cast<int>(ReadU32(is));
  m.cols = static_cast<int>(ReadU32(is));
  m.v = static_cast<int>(ReadU32(is));
  m.group_col_ptr = ReadVec<int>(is);
  m.col_idx = ReadVec<int>(is);
  m.values = ReadVec<float>(is);
  m.Validate();
  return m;
}

void Serialize(const ShflBwMatrix& m, std::ostream& os) {
  WriteHeader(os, Kind::kShflBw);
  WriteU32(os, static_cast<std::uint32_t>(m.vw.rows));
  WriteU32(os, static_cast<std::uint32_t>(m.vw.cols));
  WriteU32(os, static_cast<std::uint32_t>(m.vw.v));
  WriteVec(os, m.vw.group_col_ptr);
  WriteVec(os, m.vw.col_idx);
  WriteVec(os, m.vw.values);
  WriteVec(os, m.storage_to_original);
}

ShflBwMatrix DeserializeShflBw(std::istream& is) {
  ExpectKind(is, Kind::kShflBw, "shflbw");
  ShflBwMatrix m;
  m.vw.rows = static_cast<int>(ReadU32(is));
  m.vw.cols = static_cast<int>(ReadU32(is));
  m.vw.v = static_cast<int>(ReadU32(is));
  m.vw.group_col_ptr = ReadVec<int>(is);
  m.vw.col_idx = ReadVec<int>(is);
  m.vw.values = ReadVec<float>(is);
  m.storage_to_original = ReadVec<int>(is);
  m.Validate();
  return m;
}

void Serialize(const Balanced24Matrix& m, std::ostream& os) {
  WriteHeader(os, Kind::kBalanced24);
  WriteU32(os, static_cast<std::uint32_t>(m.rows));
  WriteU32(os, static_cast<std::uint32_t>(m.cols));
  WriteVec(os, m.values);
  WriteVec(os, m.meta);
}

Balanced24Matrix DeserializeBalanced24(std::istream& is) {
  ExpectKind(is, Kind::kBalanced24, "b24");
  Balanced24Matrix m;
  m.rows = static_cast<int>(ReadU32(is));
  m.cols = static_cast<int>(ReadU32(is));
  m.values = ReadVec<float>(is);
  m.meta = ReadVec<std::uint8_t>(is);
  m.Validate();
  return m;
}

std::string PeekFormatKind(std::istream& is) {
  const std::streampos pos = is.tellg();
  const Kind kind = ReadHeader(is);
  is.seekg(pos);
  switch (kind) {
    case Kind::kCsr: return "csr";
    case Kind::kBsr: return "bsr";
    case Kind::kVectorWise: return "vw";
    case Kind::kShflBw: return "shflbw";
    case Kind::kBalanced24: return "b24";
  }
  throw Error("unknown format kind in stream");
}

void SaveShflBw(const ShflBwMatrix& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  SHFLBW_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  Serialize(m, os);
  SHFLBW_CHECK_MSG(os.good(), "write failed for " << path);
}

ShflBwMatrix LoadShflBw(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SHFLBW_CHECK_MSG(is.good(), "cannot open " << path);
  return DeserializeShflBw(is);
}

}  // namespace shflbw
