// 2:4 balanced sparsity format, as supported by the A100 sparse
// tensor-core and the cuSPARSELt library (§2.2): within every run of 4
// consecutive elements in a row, at most 2 are non-zero. Storage keeps
// exactly 2 values per quad plus 2-bit position metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace shflbw {

/// 2:4 structured sparse matrix. cols must be a multiple of 4.
struct Balanced24Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<float> values;       // rows * cols/2 (2 kept per quad)
  std::vector<std::uint8_t> meta;  // same size; position in quad (0..3)

  int QuadsPerRow() const { return cols / 4; }

  /// Builds from a dense matrix that satisfies the 2:4 constraint (every
  /// aligned quad has at most 2 non-zeros). Quads with fewer than 2
  /// non-zeros are padded with zero values at deterministic positions.
  /// Throws if any quad has 3+ non-zeros.
  static Balanced24Matrix FromDense(const Matrix<float>& dense);

  Matrix<float> ToDense() const;

  void Validate() const;

  /// Metadata bytes: 2 bits per kept value, packed (cuSPARSELt layout).
  double MetadataBytes() const {
    return static_cast<double>(meta.size()) * 2.0 / 8.0;
  }
};

/// True iff every aligned 1x4 quad has at most 2 non-zeros.
bool Satisfies24(const Matrix<float>& dense);

}  // namespace shflbw
