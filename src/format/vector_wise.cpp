#include "format/vector_wise.h"

#include "common/check.h"

namespace shflbw {

VectorWiseMatrix VectorWiseMatrix::FromDense(const Matrix<float>& dense,
                                             int v) {
  SHFLBW_CHECK_MSG(v > 0, "v=" << v);
  SHFLBW_CHECK_MSG(dense.rows() % v == 0,
                   "rows=" << dense.rows() << " not divisible by v=" << v);
  VectorWiseMatrix vw;
  vw.rows = dense.rows();
  vw.cols = dense.cols();
  vw.v = v;
  vw.group_col_ptr.reserve(vw.Groups() + 1);
  vw.group_col_ptr.push_back(0);
  for (int g = 0; g < vw.Groups(); ++g) {
    for (int c = 0; c < vw.cols; ++c) {
      bool any = false;
      for (int r = 0; r < v && !any; ++r) {
        any = dense(g * v + r, c) != 0.0f;
      }
      if (!any) continue;
      vw.col_idx.push_back(c);
      for (int r = 0; r < v; ++r) {
        vw.values.push_back(dense(g * v + r, c));
      }
    }
    vw.group_col_ptr.push_back(static_cast<int>(vw.col_idx.size()));
  }
  return vw;
}

Matrix<float> VectorWiseMatrix::ToDense() const {
  Matrix<float> dense(rows, cols);
  for (int g = 0; g < Groups(); ++g) {
    for (int i = group_col_ptr[g]; i < group_col_ptr[g + 1]; ++i) {
      const int c = col_idx[i];
      for (int r = 0; r < v; ++r) {
        dense(g * v + r, c) = ValueAt(i, r);
      }
    }
  }
  return dense;
}

double VectorWiseMatrix::PaddingFraction() const {
  if (values.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float x : values) {
    if (x == 0.0f) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(values.size());
}

void VectorWiseMatrix::Validate() const {
  SHFLBW_CHECK(v > 0);
  SHFLBW_CHECK(rows % v == 0);
  SHFLBW_CHECK_MSG(static_cast<int>(group_col_ptr.size()) == Groups() + 1,
                   "group_col_ptr size mismatch");
  SHFLBW_CHECK(group_col_ptr.front() == 0);
  SHFLBW_CHECK(group_col_ptr.back() == KeptVectors());
  SHFLBW_CHECK(values.size() ==
               static_cast<std::size_t>(KeptVectors()) * v);
  for (int g = 0; g < Groups(); ++g) {
    SHFLBW_CHECK(group_col_ptr[g] <= group_col_ptr[g + 1]);
    for (int i = group_col_ptr[g]; i < group_col_ptr[g + 1]; ++i) {
      SHFLBW_CHECK_MSG(col_idx[i] >= 0 && col_idx[i] < cols,
                       "column out of range in group " << g);
      if (i > group_col_ptr[g]) {
        SHFLBW_CHECK_MSG(col_idx[i - 1] < col_idx[i],
                         "columns not sorted in group " << g);
      }
    }
  }
}

}  // namespace shflbw
