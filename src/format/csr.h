// Compressed Sparse Row format — the carrier for the unstructured-sparsity
// baselines (cuSPARSE csrmm, Sputnik).
#pragma once

#include <vector>

#include "common/matrix.h"

namespace shflbw {

/// CSR sparse matrix with float master values (kernels round operands
/// through fp16, matching half-precision GPU execution).
struct CsrMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_ptr;   // size rows+1
  std::vector<int> col_idx;   // size nnz, sorted within each row
  std::vector<float> values;  // size nnz

  int Nnz() const { return static_cast<int>(values.size()); }
  double Density() const {
    const double total = static_cast<double>(rows) * cols;
    return total > 0 ? Nnz() / total : 0.0;
  }

  /// Builds CSR from a dense matrix, keeping exact non-zeros.
  static CsrMatrix FromDense(const Matrix<float>& dense);

  /// Expands back to dense (exact inverse of FromDense).
  Matrix<float> ToDense() const;

  /// Checks structural invariants (monotone row_ptr, sorted in-range
  /// column indices); throws shflbw::Error on violation.
  void Validate() const;

  /// Bytes of index metadata a GPU kernel must load (row_ptr + col_idx).
  double MetadataBytes() const {
    return 4.0 * (row_ptr.size() + col_idx.size());
  }
};

}  // namespace shflbw
