#include "format/csr.h"

#include "common/check.h"

namespace shflbw {

CsrMatrix CsrMatrix::FromDense(const Matrix<float>& dense) {
  CsrMatrix csr;
  csr.rows = dense.rows();
  csr.cols = dense.cols();
  csr.row_ptr.reserve(csr.rows + 1);
  csr.row_ptr.push_back(0);
  for (int r = 0; r < csr.rows; ++r) {
    for (int c = 0; c < csr.cols; ++c) {
      const float v = dense(r, c);
      if (v != 0.0f) {
        csr.col_idx.push_back(c);
        csr.values.push_back(v);
      }
    }
    csr.row_ptr.push_back(static_cast<int>(csr.col_idx.size()));
  }
  return csr;
}

Matrix<float> CsrMatrix::ToDense() const {
  Matrix<float> dense(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      dense(r, col_idx[i]) = values[i];
    }
  }
  return dense;
}

void CsrMatrix::Validate() const {
  SHFLBW_CHECK_MSG(static_cast<int>(row_ptr.size()) == rows + 1,
                   "row_ptr size " << row_ptr.size() << " != rows+1");
  SHFLBW_CHECK(row_ptr.front() == 0);
  SHFLBW_CHECK(row_ptr.back() == Nnz());
  SHFLBW_CHECK(col_idx.size() == values.size());
  for (int r = 0; r < rows; ++r) {
    SHFLBW_CHECK_MSG(row_ptr[r] <= row_ptr[r + 1],
                     "row_ptr not monotone at row " << r);
    // Bound the slice before indexing col_idx with it: a corrupt
    // row_ptr entry larger than nnz must throw, not read out of range
    // (row_ptr[0] == 0 plus per-row monotonicity already bounds below).
    SHFLBW_CHECK_MSG(row_ptr[r + 1] <= Nnz(),
                     "row_ptr " << row_ptr[r + 1] << " exceeds nnz " << Nnz()
                                << " at row " << r);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      SHFLBW_CHECK_MSG(col_idx[i] >= 0 && col_idx[i] < cols,
                       "col " << col_idx[i] << " out of range at row " << r);
      if (i > row_ptr[r]) {
        SHFLBW_CHECK_MSG(col_idx[i - 1] < col_idx[i],
                         "columns not strictly sorted in row " << r);
      }
    }
  }
}

}  // namespace shflbw
