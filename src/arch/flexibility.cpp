#include "arch/flexibility.h"

#include <cmath>

#include "common/check.h"

namespace shflbw {

double LogFactorial(int n) {
  SHFLBW_CHECK(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogBinomial(int n, int r) {
  SHFLBW_CHECK_MSG(r >= 0 && r <= n, "C(" << n << "," << r << ")");
  return LogFactorial(n) - LogFactorial(r) - LogFactorial(n - r);
}

double LogRowGroupingCount(int m, int v, bool ordered_groups) {
  SHFLBW_CHECK_MSG(v > 0 && m % v == 0, "V=" << v << " must divide M=" << m);
  const int groups = m / v;
  // M! ways to order all rows; within each group of V the order is
  // irrelevant (divide by V! per group); if group identity is also
  // irrelevant divide by (M/V)!.
  double log_count = LogFactorial(m) - groups * LogFactorial(v);
  if (!ordered_groups) log_count -= LogFactorial(groups);
  return log_count;
}

FlexibilityReport AnalyzeFlexibility(int m, int k, double alpha, int v) {
  SHFLBW_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha=" << alpha);
  SHFLBW_CHECK_MSG(v > 0 && m % v == 0 && k % v == 0,
                   "V=" << v << " must divide M=" << m << " and K=" << k);
  FlexibilityReport rep{};

  const long long total = static_cast<long long>(m) * k;
  const int nnz_total = static_cast<int>(std::llround(alpha * total));

  // Unstructured: any subset of positions.
  rep.log_unstructured =
      LogBinomial(static_cast<int>(total), nnz_total);

  // Vector-wise with fixed contiguous row groups of V: each of the M/V
  // groups independently chooses which columns to keep.
  const int groups = m / v;
  const int cols_kept = static_cast<int>(std::llround(alpha * k));
  rep.log_vector_wise = groups * LogBinomial(k, cols_kept);

  // Shfl-BW: vector-wise choices multiplied by the row-grouping count
  // (the paper's M!/(V!)^(M/V) factor).
  rep.log_shfl_bw =
      rep.log_vector_wise + LogRowGroupingCount(m, v, /*ordered_groups=*/true);

  // Block-wise: choose which VxV blocks survive.
  const int blocks_total = (m / v) * (k / v);
  const int blocks_kept =
      static_cast<int>(std::llround(alpha * blocks_total));
  rep.log_block_wise = LogBinomial(blocks_total, blocks_kept);

  return rep;
}

}  // namespace shflbw
