// Closed-form operation-intensity analysis from §3.2.2 of the paper.
//
// The paper derives the maximum achievable data reuse (FLOP per byte
// loaded from global memory) of an SpMM threadblock tile as a function of
// the sparsity pattern:
//   * unstructured / balanced: the tiled sparse matrix stays sparse, and
//     Max_reuse = sqrt(alpha) * Reuse_dense;
//   * block-wise / vector-wise / Shfl-BW: tiles can be made dense, and
//     reuse reaches Reuse_dense as soon as V >= T_opt_dense.
// These functions reproduce that analysis numerically so the benches can
// print the paper's table of intensities and the A100 "63 MACs per loaded
// value" requirement.
#pragma once

#include "arch/gpu_spec.h"

namespace shflbw {

/// Result of maximizing FLOP/byte over tile shapes (TM, TN) subject to
/// the register-file constraint TM*TN <= regfile accumulators.
struct ReuseAnalysis {
  double best_tm = 0;
  double best_tn = 0;
  double flop_per_byte = 0;
};

/// Maximum reuse of a *dense* GEMM tile: optimizing
///   2*TM*TN*TK / ((TM*TK + TK*TN) * bytes)  s.t. TM*TN <= regfile_elems
/// gives TM = TN = sqrt(regfile_elems) and reuse = T_opt/2 flop/byte
/// (for 2-byte elements).
ReuseAnalysis DenseMaxReuse(double regfile_accumulators,
                            int bytes_per_value = 2);

/// Maximum reuse of an *unstructured/balanced* sparse tile at non-zero
/// ratio alpha: the sparse operand contributes alpha*TM*TK useful values
/// but the dense operand must be loaded in full. Optimum is
/// sqrt(alpha) * dense reuse (paper, §3.2.2).
ReuseAnalysis UnstructuredMaxReuse(double regfile_accumulators, double alpha,
                                   int bytes_per_value = 2);

/// Reuse of a block-wise (or vector-wise / Shfl-BW after the online
/// transformation) tile with block size V: the tile is dense, so reuse is
/// the dense formula evaluated at TM = V (clamped by the register file).
ReuseAnalysis BlockWiseReuse(double regfile_accumulators, int block_size,
                             int bytes_per_value = 2);

/// The optimal dense tile edge T_opt = sqrt(regfile accumulators); the
/// paper's condition for full reuse is V >= T_opt.
double OptimalDenseTileEdge(double regfile_accumulators);

/// Register-file accumulators available per threadblock for a GPU
/// (fp32 accumulators in the register file of one SM).
double RegfileAccumulators(const GpuSpec& spec);

}  // namespace shflbw
