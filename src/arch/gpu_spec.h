// Published architectural parameters of the three GPUs the paper evaluates
// on (V100, T4, A100). These feed the analytical performance model that
// substitutes for real-hardware timing (see DESIGN.md §0).
#pragma once

#include <string>
#include <vector>

namespace shflbw {

enum class GpuArch {
  kV100,
  kT4,
  kA100,
  // Extension beyond the paper's evaluation: "tensor-core-like units"
  // on other processors (§7 — AMD CDNA [18], Intel AMX [19]). Same
  // model, different peak numbers; kernel-library efficiencies default
  // to the V100 column (see EfficiencyFor).
  kCdna1,  // AMD MI100-class
  kAmx,    // Intel Sapphire-Rapids-class AMX socket
};

/// Architecture parameters, all from vendor data sheets / whitepapers.
/// Throughputs are half-precision; bandwidths are peak.
struct GpuSpec {
  GpuArch arch;
  std::string name;

  double tensor_core_flops;  // peak fp16 tensor-core FLOP/s
  double cuda_core_flops;    // peak fp16 CUDA-core FLOP/s
  double dram_bandwidth;     // bytes/s
  double l2_bandwidth;       // bytes/s (last-level cache)
  double l2_capacity;        // bytes
  int num_sms;
  double shared_mem_per_sm;   // bytes
  double regfile_per_sm;      // bytes
  double kernel_launch_overhead;  // seconds, per kernel launch

  /// Ratio of tensor-core to CUDA-core throughput (~4x on V100/A100,
  /// used by the paper to place the Fig. 1 curves).
  double TensorCoreAdvantage() const {
    return tensor_core_flops / cuda_core_flops;
  }

  /// FLOP-per-DRAM-byte at which compute and memory time balance.
  /// T4's low value is why the paper sees its largest speedups there
  /// ("lower ratio of computation capability to bandwidth", §6.2).
  double ComputeToBandwidthRatio() const {
    return tensor_core_flops / dram_bandwidth;
  }

  /// MACs that must be performed per value loaded from the LLC to reach
  /// peak tensor-core throughput (the paper computes 63 for A100, §2.1).
  double MacsPerLlcValue(int bytes_per_value = 2) const {
    const double macs_per_s = tensor_core_flops / 2.0;
    const double values_per_s = l2_bandwidth / bytes_per_value;
    return macs_per_s / values_per_s;
  }
};

/// Returns the spec for one of the three evaluated GPUs.
const GpuSpec& GetGpuSpec(GpuArch arch);

/// Parses "V100" / "T4" / "A100" (case-insensitive). Throws on others.
GpuArch ParseGpuArch(const std::string& name);

/// All three evaluation GPUs, in paper order.
const std::vector<GpuSpec>& AllGpus();

/// The extension targets (CDNA, AMX) — not part of the paper's
/// evaluation; used by bench/extension_accelerators.
const std::vector<GpuSpec>& ExtensionAccelerators();

}  // namespace shflbw
