// Occupancy / wave-quantization refinement of the roofline model.
//
// The base CostModel assumes perfect SM utilization. Real launches run
// threadblocks in "waves" of (SMs x blocks-per-SM); a launch whose last
// wave is nearly empty wastes a full wave of time — the tail effect
// that makes small-N GEMMs (like the Fig. 1 shape, 16 threadblocks on
// 80 SMs) inefficient. This module computes the wave count, the tail
// utilization, and an occupancy-adjusted time.
#pragma once

#include "arch/cost_model.h"
#include "arch/gpu_spec.h"
#include "arch/kernel_stats.h"

namespace shflbw {

struct OccupancyReport {
  int blocks_per_sm = 1;      // concurrent threadblocks one SM can host
  int concurrent_blocks = 0;  // blocks_per_sm * num_sms
  int waves = 0;              // ceil(threadblocks / concurrent_blocks)
  double last_wave_fill = 1;  // fraction of the last wave occupied
  double utilization = 1;     // threadblocks / (waves * concurrent)
};

/// Occupancy of a launch: blocks-per-SM is limited by the shared-memory
/// footprint of one threadblock (the tile buffers), which the caller
/// supplies; 0 means "use a typical double-buffered TC-kernel footprint
/// of 64 KiB".
OccupancyReport AnalyzeOccupancy(const KernelStats& stats,
                                 const GpuSpec& spec,
                                 double smem_per_block_bytes = 0);

/// Roofline time divided by the launch utilization: a kernel that fills
/// 40% of the machine takes 1/0.4x longer than the roofline says. The
/// fixed overheads from the base estimate carry over unchanged.
TimeBreakdown EstimateWithOccupancy(const CostModel& model,
                                    const KernelStats& stats,
                                    double smem_per_block_bytes = 0);

}  // namespace shflbw
