// Analytical GPU timing model: turns KernelStats (bytes moved, MACs
// issued, launch shape) into modelled execution time on a GpuSpec.
//
// Model: a kernel is limited by the slowest of three rooflines —
// compute (tensor-core or CUDA-core peak), DRAM bandwidth, and L2
// bandwidth — each derated by the calibrated efficiency of its kernel
// class. Fixed costs (kernel launch, software-pipeline fill) add on top.
// This is the standard roofline formulation the paper itself uses in
// §3.2.2 to argue about operation intensity.
#pragma once

#include "arch/efficiency.h"
#include "arch/gpu_spec.h"
#include "arch/kernel_stats.h"

namespace shflbw {

/// Which roofline a kernel sits under.
enum class Bound { kCompute, kDram, kL2, kOverhead };

const char* BoundName(Bound b);

/// Per-component modelled times (seconds).
struct TimeBreakdown {
  double compute_s = 0;
  double dram_s = 0;
  double l2_s = 0;
  double launch_s = 0;
  double pipeline_fill_s = 0;
  double total_s = 0;
  Bound bound = Bound::kCompute;

  /// Achieved useful FLOP/s.
  double Throughput(double useful_flops) const {
    return total_s > 0 ? useful_flops / total_s : 0.0;
  }
};

/// Roofline + overhead timing model.
class CostModel {
 public:
  explicit CostModel(const GpuSpec& spec) : spec_(spec) {}

  /// Models the execution time of one kernel launch (or an aggregate of
  /// launches if stats.num_kernel_launches > 1).
  TimeBreakdown Estimate(const KernelStats& stats) const;

  /// Convenience: total seconds.
  double Seconds(const KernelStats& stats) const {
    return Estimate(stats).total_s;
  }

  const GpuSpec& spec() const { return spec_; }

 private:
  GpuSpec spec_;
};

}  // namespace shflbw
