#include "arch/occupancy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace shflbw {

OccupancyReport AnalyzeOccupancy(const KernelStats& stats,
                                 const GpuSpec& spec,
                                 double smem_per_block_bytes) {
  SHFLBW_CHECK_MSG(smem_per_block_bytes >= 0, "negative smem footprint");
  if (smem_per_block_bytes == 0) {
    smem_per_block_bytes = 64.0 * 1024;  // double-buffered TC tile set
  }
  OccupancyReport r;
  r.blocks_per_sm = std::max(
      1, static_cast<int>(spec.shared_mem_per_sm / smem_per_block_bytes));
  r.concurrent_blocks = r.blocks_per_sm * spec.num_sms;
  const int blocks = std::max(1, stats.threadblocks);
  r.waves = (blocks + r.concurrent_blocks - 1) / r.concurrent_blocks;
  const int last_wave_blocks =
      blocks - (r.waves - 1) * r.concurrent_blocks;
  r.last_wave_fill =
      static_cast<double>(last_wave_blocks) / r.concurrent_blocks;
  r.utilization = static_cast<double>(blocks) /
                  (static_cast<double>(r.waves) * r.concurrent_blocks);
  return r;
}

TimeBreakdown EstimateWithOccupancy(const CostModel& model,
                                    const KernelStats& stats,
                                    double smem_per_block_bytes) {
  TimeBreakdown t = model.Estimate(stats);
  const OccupancyReport occ =
      AnalyzeOccupancy(stats, model.spec(), smem_per_block_bytes);
  // The compute roof assumes all SMs busy; a partially-filled launch
  // stretches compute-bound time by 1/utilization. Memory roofs are
  // machine-wide (bandwidth is shared) and stretch only mildly — model
  // them as unaffected, which keeps this a pure tail-effect correction.
  const double adj_compute = t.compute_s / std::max(occ.utilization, 1e-6);
  const double roof = std::max({adj_compute, t.dram_s, t.l2_s});
  t.compute_s = adj_compute;
  t.total_s = roof + t.launch_s + t.pipeline_fill_s;
  if (roof == adj_compute) t.bound = Bound::kCompute;
  else if (roof == t.dram_s) t.bound = Bound::kDram;
  else t.bound = Bound::kL2;
  return t;
}

}  // namespace shflbw
