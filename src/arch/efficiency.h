// Calibrated efficiency factors: the fraction of a GPU's peak compute /
// bandwidth each kernel implementation class achieves in practice.
//
// These are the ONLY fitted constants in the performance model; all other
// behaviour (traffic volumes, operation intensity, crossovers, the
// V100-vs-T4-vs-A100 ordering) is derived from first principles in the
// kernel traffic models. Each constant notes the paper anchor it was fit
// to; see DESIGN.md §3 and EXPERIMENTS.md for the resulting fidelity.
#pragma once

#include "arch/gpu_spec.h"
#include "arch/kernel_stats.h"

namespace shflbw {

/// Fractions of peak achieved by a kernel class on a given architecture.
struct Efficiency {
  double compute;  // fraction of peak FLOP/s (TC or CUDA-core as applicable)
  double dram;     // fraction of peak DRAM bandwidth
  double l2;       // fraction of peak L2 bandwidth
};

/// Returns calibrated efficiencies for (kernel class, architecture).
Efficiency EfficiencyFor(KernelClass k, GpuArch arch);

/// cuSPARSE block-wise SpMM shows "unstable performance across GPUs and
/// block sizes" (§6.2: 2.88x slower than ours on T4 at V=64 but 1.2x
/// faster on V100 at V=32). This returns the additional multiplier (>1 is
/// slower) applied to the BSR kernel's modelled time for a block size V.
double CusparseBsrInstability(GpuArch arch, int block_size);

}  // namespace shflbw
