// Flexibility analysis from §3.2.1: the number of candidate weight
// structures a sparsity pattern admits, computed in log-space (the counts
// overflow any integer type — the paper's own example exceeds e^700).
#pragma once

namespace shflbw {

/// ln(n!) via lgamma.
double LogFactorial(int n);

/// ln of the number of ways to partition M rows into unordered groups of
/// size V: M! / (V!)^(M/V) / (M/V)!  — the paper quotes the ordered-group
/// variant M!/(V!)^(M/V); both are provided.
/// Requires V to divide M.
double LogRowGroupingCount(int m, int v, bool ordered_groups = true);

/// ln of the number of candidate structures of each pattern at a given
/// shape and non-zero count, used to reproduce the paper's flexibility
/// ordering (unstructured > Shfl-BW > vector-wise > block-wise).
struct FlexibilityReport {
  double log_unstructured;  // ln C(M*K, nnz)
  double log_shfl_bw;       // ln [rowgroups * C(K, cols_kept)^(M/V)]
  double log_vector_wise;   // ln C(K, cols_kept)^(M/V)
  double log_block_wise;    // ln C((M/V)*(K/V), blocks_kept)
};

/// Computes the report for an MxK matrix at non-zero ratio alpha and
/// block/vector size V (V must divide M and K).
FlexibilityReport AnalyzeFlexibility(int m, int k, double alpha, int v);

/// ln C(n, r).
double LogBinomial(int n, int r);

}  // namespace shflbw
