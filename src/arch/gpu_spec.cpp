#include "arch/gpu_spec.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace shflbw {
namespace {

// Sources: NVIDIA V100 (SXM2) / T4 / A100 (SXM4 40GB) data sheets and
// architecture whitepapers. L2 bandwidths are the commonly measured
// figures (Jia et al. dissecting-series microbenchmarks); the A100 value
// reproduces the paper's "63 MACs per loaded value" observation.
const GpuSpec kV100{
    .arch = GpuArch::kV100,
    .name = "V100",
    .tensor_core_flops = 112e12,
    .cuda_core_flops = 28e12,   // 2x fp32 (14 TFLOPS) with half2
    .dram_bandwidth = 900e9,
    .l2_bandwidth = 2.2e12,
    .l2_capacity = 6.0 * 1024 * 1024,
    .num_sms = 80,
    .shared_mem_per_sm = 96.0 * 1024,
    .regfile_per_sm = 256.0 * 1024,
    .kernel_launch_overhead = 1e-6,
};

const GpuSpec kT4{
    .arch = GpuArch::kT4,
    .name = "T4",
    .tensor_core_flops = 65e12,
    .cuda_core_flops = 16.2e12,
    .dram_bandwidth = 320e9,
    .l2_bandwidth = 1.3e12,
    .l2_capacity = 4.0 * 1024 * 1024,
    .num_sms = 40,
    .shared_mem_per_sm = 64.0 * 1024,
    .regfile_per_sm = 256.0 * 1024,
    .kernel_launch_overhead = 1e-6,
};

const GpuSpec kA100{
    .arch = GpuArch::kA100,
    .name = "A100",
    .tensor_core_flops = 312e12,
    .cuda_core_flops = 78e12,
    .dram_bandwidth = 1555e9,
    .l2_bandwidth = 5.0e12,
    .l2_capacity = 40.0 * 1024 * 1024,
    .num_sms = 108,
    .shared_mem_per_sm = 164.0 * 1024,
    .regfile_per_sm = 256.0 * 1024,
    .kernel_launch_overhead = 1e-6,
};

// Extension targets (§7): matrix-unit peaks and bandwidths from vendor
// documentation; cache terms approximated at the same granularity as
// the NVIDIA entries.
const GpuSpec kCdna1{
    .arch = GpuArch::kCdna1,
    .name = "CDNA1",
    .tensor_core_flops = 184.6e12,  // MI100 fp16 matrix-core
    .cuda_core_flops = 46.1e12,    // fp16 vector
    .dram_bandwidth = 1228e9,
    .l2_bandwidth = 3.0e12,
    .l2_capacity = 8.0 * 1024 * 1024,
    .num_sms = 120,
    .shared_mem_per_sm = 64.0 * 1024,
    .regfile_per_sm = 256.0 * 1024,
    .kernel_launch_overhead = 1e-6,
};

const GpuSpec kAmx{
    .arch = GpuArch::kAmx,
    .name = "AMX",
    .tensor_core_flops = 55e12,   // bf16 AMX, 56-core socket
    .cuda_core_flops = 14e12,     // AVX-512 fp32-equivalent
    .dram_bandwidth = 307e9,      // 8-channel DDR5
    .l2_bandwidth = 2.0e12,       // aggregate LLC
    .l2_capacity = 105.0 * 1024 * 1024,
    .num_sms = 56,  // cores
    .shared_mem_per_sm = 2048.0 * 1024,  // private L2 per core
    .regfile_per_sm = 8.0 * 1024,        // tile registers
    .kernel_launch_overhead = 0.2e-6,    // function call, not a launch
};

}  // namespace

const GpuSpec& GetGpuSpec(GpuArch arch) {
  switch (arch) {
    case GpuArch::kV100: return kV100;
    case GpuArch::kT4: return kT4;
    case GpuArch::kA100: return kA100;
    case GpuArch::kCdna1: return kCdna1;
    case GpuArch::kAmx: return kAmx;
  }
  throw Error("unknown GpuArch");
}

GpuArch ParseGpuArch(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (up == "V100") return GpuArch::kV100;
  if (up == "T4") return GpuArch::kT4;
  if (up == "A100") return GpuArch::kA100;
  if (up == "CDNA1" || up == "MI100") return GpuArch::kCdna1;
  if (up == "AMX") return GpuArch::kAmx;
  throw Error("unknown GPU name: " + name +
              " (expected V100, T4, A100, CDNA1 or AMX)");
}

const std::vector<GpuSpec>& AllGpus() {
  static const std::vector<GpuSpec> kAll{kV100, kT4, kA100};
  return kAll;
}

const std::vector<GpuSpec>& ExtensionAccelerators() {
  static const std::vector<GpuSpec> kExt{kCdna1, kAmx};
  return kExt;
}

}  // namespace shflbw
