#include "arch/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace shflbw {

std::string KernelClassName(KernelClass k) {
  switch (k) {
    case KernelClass::kDenseTensorCore: return "dense-tc";
    case KernelClass::kDenseCudaCore: return "dense-cuda";
    case KernelClass::kCsrScalar: return "csr-scalar";
    case KernelClass::kSputnik: return "sputnik";
    case KernelClass::kBsrTensorCore: return "bsr-tc";
    case KernelClass::kVectorWiseTensorCore: return "vw-tc";
    case KernelClass::kShflBwTensorCore: return "shflbw-tc";
    case KernelClass::kBalanced24: return "balanced-2in4";
    case KernelClass::kVectorSparse: return "vectorsparse";
    case KernelClass::kTilewise: return "tilewise";
  }
  return "?";
}

KernelStats& KernelStats::operator+=(const KernelStats& o) {
  useful_flops += o.useful_flops;
  issued_macs += o.issued_macs;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  l2_read_bytes += o.l2_read_bytes;
  metadata_bytes += o.metadata_bytes;
  block_size = std::max(block_size, o.block_size);
  threadblocks += o.threadblocks;
  main_loop_iters = std::max(main_loop_iters, o.main_loop_iters);
  pipeline_stages = std::max(pipeline_stages, o.pipeline_stages);
  num_streams = std::max(num_streams, o.num_streams);
  num_kernel_launches += o.num_kernel_launches;
  tensor_core = tensor_core || o.tensor_core;
  return *this;
}

namespace {

// ---------------------------------------------------------------------
// Calibration table. Anchors (paper observations) for each class:
//  * dense-tc      : cuBLAS half GEMM reaches ~50-60% of TC peak on DNN
//                    shapes; this with the traffic model places the
//                    Fig. 1 "Tensor-Core" line 4x above "Cuda-Core".
//  * dense-cuda    : cuBLAS half on CUDA-cores, ~55% of peak.
//  * sputnik       : Fig. 1 — crosses dense-cuda at 65% sparsity, crosses
//                    dense-tc only at ~95%; memory-bound behaviour from
//                    its gather traffic, compute derate 0.35 relative.
//  * csr-scalar    : cuSPARSE unstructured is strictly worse than Sputnik
//                    ("cuSPARSE requires >98% sparsity", §1).
//  * bsr-tc        : comparable to ours on average but erratic —
//                    CusparseBsrInstability supplies the per-arch/V swing.
//  * vw/shflbw-tc  : our kernels; Fig. 6 headline 1.81/4.18/1.90x at 75%
//                    on Transformer fixes compute ~0.62/0.57 and dram
//                    ~0.75. Shfl-BW == VW efficiency: the reordered
//                    write-back adds traffic, not derating (§6.2 shows
//                    0.97-1.02x).
//  * balanced-2in4 : cuSPARSELt 50% kernels give 1.07-1.16x end-to-end
//                    (§6.2) — effective compute ~0.60 of the 2x-boosted
//                    TC peak, but must still read the full activation.
//  * vectorsparse  : V=8 limits reuse (traffic model) and its fixed
//                    small-tile schedule derates compute.
//  * tilewise      : per-stream launch overheads dominate (modelled via
//                    num_streams); kernel efficiency itself mid-range.
// ---------------------------------------------------------------------

struct EffRow {
  KernelClass k;
  Efficiency v100;
  Efficiency t4;
  Efficiency a100;
};

// Columns: V100, T4, A100. Each entry {compute, dram, l2} fraction of
// peak. T4's dense-tc compute fraction is low (0.33): sustained T4
// tensor-core throughput is well documented to sit far below the 65T
// datasheet number under thermal limits, and this is what lets the
// paper's sparse kernel reach >4x there (its traffic-bound time is
// unaffected by the dense kernel's compute ceiling).
constexpr EffRow kEffTable[] = {
    {KernelClass::kDenseTensorCore,
     {0.55, 0.80, 0.80}, {0.33, 0.80, 0.80}, {0.55, 0.85, 0.85}},
    {KernelClass::kDenseCudaCore,
     {0.55, 0.80, 0.85}, {0.55, 0.80, 0.85}, {0.55, 0.80, 0.85}},
    {KernelClass::kCsrScalar,
     {0.10, 0.35, 0.60}, {0.10, 0.35, 0.60}, {0.10, 0.35, 0.60}},
    {KernelClass::kSputnik,
     {0.18, 0.62, 0.90}, {0.18, 0.62, 0.90}, {0.18, 0.62, 0.90}},
    {KernelClass::kBsrTensorCore,
     {0.62, 0.42, 0.75}, {0.75, 0.97, 0.50}, {0.60, 0.82, 0.85}},
    {KernelClass::kVectorWiseTensorCore,
     {0.62, 0.42, 0.75}, {0.75, 0.97, 0.50}, {0.60, 0.82, 0.85}},
    {KernelClass::kShflBwTensorCore,
     {0.62, 0.42, 0.75}, {0.75, 0.97, 0.50}, {0.60, 0.82, 0.85}},
    {KernelClass::kBalanced24,
     {0.45, 0.50, 0.80}, {0.45, 0.50, 0.80}, {0.45, 0.50, 0.80}},
    {KernelClass::kVectorSparse,
     {0.35, 0.47, 0.75}, {0.35, 0.70, 0.50}, {0.35, 0.75, 0.85}},
    {KernelClass::kTilewise,
     {0.45, 0.47, 0.75}, {0.45, 0.70, 0.50}, {0.45, 0.75, 0.85}},
};

}  // namespace

Efficiency EfficiencyFor(KernelClass k, GpuArch arch) {
  for (const auto& row : kEffTable) {
    if (row.k != k) continue;
    switch (arch) {
      case GpuArch::kV100: return row.v100;
      case GpuArch::kT4: return row.t4;
      case GpuArch::kA100: return row.a100;
      case GpuArch::kCdna1:
      case GpuArch::kAmx:
        // Extension targets have no published library anchors; assume
        // V100-maturity software (documented in EXPERIMENTS.md).
        return row.v100;
    }
  }
  throw Error("no efficiency entry for kernel class " + KernelClassName(k));
}

double CusparseBsrInstability(GpuArch arch, int block_size) {
  // §6.2: "Shfl-BW is in average 2.88x cusparse block-wise on T4 GPU at
  // V=64, but only 0.83x on V100 at V=32" — i.e. cuSPARSE BSR is *faster*
  // than ours on V100 at small blocks and far slower on T4 at large ones.
  switch (arch) {
    case GpuArch::kV100: return block_size <= 32 ? 0.80 : 1.35;
    case GpuArch::kT4: return block_size <= 32 ? 1.80 : 2.80;
    case GpuArch::kA100: return block_size <= 32 ? 1.25 : 1.60;
    case GpuArch::kCdna1:
    case GpuArch::kAmx:
      return 1.0;  // no cuSPARSE on non-NVIDIA targets
  }
  return 1.0;
}

const char* BoundName(Bound b) {
  switch (b) {
    case Bound::kCompute: return "compute";
    case Bound::kDram: return "dram";
    case Bound::kL2: return "l2";
    case Bound::kOverhead: return "overhead";
  }
  return "?";
}

TimeBreakdown CostModel::Estimate(const KernelStats& s) const {
  const Efficiency eff = EfficiencyFor(s.kernel_class, spec_.arch);

  const double peak_flops =
      s.tensor_core ? spec_.tensor_core_flops : spec_.cuda_core_flops;

  TimeBreakdown t;
  t.compute_s = (2.0 * s.issued_macs) / (peak_flops * eff.compute);
  t.dram_s = (s.dram_read_bytes + s.dram_write_bytes) /
             (spec_.dram_bandwidth * eff.dram);
  t.l2_s = s.l2_read_bytes / (spec_.l2_bandwidth * eff.l2);

  // Fixed costs. Multi-stream baselines (Tilewise) launch many small
  // kernels spread over a stream pool: launches overlap across streams,
  // but each stream adds a synchronization cost at the end — the
  // overhead the paper observes "when the number of streams grows".
  const int launches = std::max(1, s.num_kernel_launches);
  const int streams = std::max(1, s.num_streams);
  if (streams > 1) {
    t.launch_s = spec_.kernel_launch_overhead *
                 (static_cast<double>(launches) / streams + streams);
  } else {
    t.launch_s = spec_.kernel_launch_overhead * launches;
  }
  if (s.pipeline_stages > 0 && s.main_loop_iters > 0) {
    // Prologue iterations before the MMA loop reaches steady state. On
    // real hardware the fill cost is bounded by load latency, not by a
    // full iteration's bandwidth share, so cap it at 10% of the roof.
    const double roof_est = std::max({t.compute_s, t.dram_s, t.l2_s});
    t.pipeline_fill_s = std::min(
        roof_est / s.main_loop_iters * s.pipeline_stages, 0.1 * roof_est);
  }

  const double roof = std::max({t.compute_s, t.dram_s, t.l2_s});
  t.total_s = roof + t.launch_s + t.pipeline_fill_s;

  if (roof == t.compute_s) t.bound = Bound::kCompute;
  else if (roof == t.dram_s) t.bound = Bound::kDram;
  else t.bound = Bound::kL2;
  if (t.launch_s + t.pipeline_fill_s > roof) t.bound = Bound::kOverhead;

  // cuSPARSE BSR erratic-performance multiplier (see efficiency.h).
  if (s.kernel_class == KernelClass::kBsrTensorCore && s.block_size > 0) {
    t.total_s *= CusparseBsrInstability(spec_.arch, s.block_size);
  }
  return t;
}

}  // namespace shflbw
