// Per-kernel-invocation resource counts. Every functional kernel in
// src/kernels fills one of these while (or instead of) executing, by
// counting exactly the traffic and instructions the corresponding CUDA
// kernel would issue. The cost model turns these counts into modelled
// time on a GpuSpec.
#pragma once

#include <string>

namespace shflbw {

/// Kernel implementation classes; each has its own calibrated efficiency
/// factors (see efficiency.h) because real libraries achieve different
/// fractions of peak.
enum class KernelClass {
  kDenseTensorCore,   // cuBLAS / cuDNN half GEMM on tensor-cores
  kDenseCudaCore,     // cuBLAS half GEMM on CUDA-cores
  kCsrScalar,         // cuSPARSE csrmm-style scalar SpMM
  kSputnik,           // Sputnik row-split unstructured SpMM (CUDA-cores)
  kBsrTensorCore,     // cuSPARSE block-wise (BSR) SpMM on tensor-cores
  kVectorWiseTensorCore,  // our vector-wise TC SpMM
  kShflBwTensorCore,      // our Shfl-BW TC SpMM (the paper's kernel)
  kBalanced24,        // cuSPARSELt 2:4 structured sparsity
  kVectorSparse,      // Chen et al. SC'21, small-V (V<=8) TC kernel
  kTilewise,          // Guo et al. SC'20, multi-stream tile-wise
};

std::string KernelClassName(KernelClass k);

/// Resource counts for one kernel launch.
struct KernelStats {
  std::string kernel_name;
  KernelClass kernel_class = KernelClass::kDenseTensorCore;
  bool tensor_core = false;

  // Work.
  double useful_flops = 0;  // 2 * nnz * N — FLOPs that contribute to C
  double issued_macs = 0;   // MACs actually issued, incl. padding/wasted lanes

  // Memory traffic, in bytes.
  double dram_read_bytes = 0;   // unique data + capacity misses
  double dram_write_bytes = 0;  // output write-back
  double l2_read_bytes = 0;     // total loads served by LLC (>= dram reads)
  double metadata_bytes = 0;    // sparse indices (subset of dram_read_bytes)

  // Shape of the launch (for occupancy/pipeline modelling).
  int block_size = 0;  // V for block/vector/Shfl-BW kernels, else 0
  int threadblocks = 0;
  int main_loop_iters = 0;    // K-loop steps per threadblock
  int pipeline_stages = 0;    // software pipeline depth (0 = unpipelined)
  int num_streams = 1;        // >1 only for the Tilewise baseline
  int num_kernel_launches = 1;

  /// Accumulates another launch's stats (used by multi-layer evaluation
  /// and the multi-stream Tilewise model).
  KernelStats& operator+=(const KernelStats& o);

  /// FLOP per DRAM byte — the operation intensity of §3.2.2.
  double OperationIntensity() const {
    const double bytes = dram_read_bytes + dram_write_bytes;
    return bytes > 0 ? useful_flops / bytes : 0.0;
  }
};

}  // namespace shflbw
