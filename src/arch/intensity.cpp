#include "arch/intensity.h"

#include <cmath>

#include "common/check.h"

namespace shflbw {

double RegfileAccumulators(const GpuSpec& spec) {
  // fp32 accumulators; leave half the register file for operands,
  // addresses and pipeline buffers, as real TC kernels do.
  return spec.regfile_per_sm / 4.0 / 2.0;
}

double OptimalDenseTileEdge(double regfile_accumulators) {
  SHFLBW_CHECK(regfile_accumulators > 0);
  return std::sqrt(regfile_accumulators);
}

ReuseAnalysis DenseMaxReuse(double regfile_accumulators, int bytes_per_value) {
  // 2*TM*TN*TK flop over (TM + TN)*TK*bytes — TK cancels; symmetric
  // optimum at TM = TN = sqrt(budget).
  ReuseAnalysis r;
  r.best_tm = r.best_tn = OptimalDenseTileEdge(regfile_accumulators);
  r.flop_per_byte =
      2.0 * r.best_tm * r.best_tn / ((r.best_tm + r.best_tn) * bytes_per_value);
  return r;
}

ReuseAnalysis UnstructuredMaxReuse(double regfile_accumulators, double alpha,
                                   int bytes_per_value) {
  SHFLBW_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha=" << alpha);
  // Useful flop: 2*alpha*TM*TN*TK. Bytes: alpha*TM*TK (sparse operand,
  // compressed) + TK*TN (dense operand, loaded in full because non-zeros
  // hit unpredictable rows). Maximize over TM*TN <= budget:
  //   intensity = 2*alpha*TM*TN / (alpha*TM + TN)
  // Lagrange gives alpha*TM = TN at the optimum, i.e.
  //   TM = sqrt(budget/alpha), TN = sqrt(budget*alpha)
  // -> intensity = sqrt(alpha) * sqrt(budget), matching the paper's
  // Max_reuse = sqrt(alpha) * Reuse_dense.
  ReuseAnalysis r;
  r.best_tm = std::sqrt(regfile_accumulators / alpha);
  r.best_tn = std::sqrt(regfile_accumulators * alpha);
  r.flop_per_byte = 2.0 * alpha * r.best_tm * r.best_tn /
                    ((alpha * r.best_tm + r.best_tn) * bytes_per_value);
  return r;
}

ReuseAnalysis BlockWiseReuse(double regfile_accumulators, int block_size,
                             int bytes_per_value) {
  SHFLBW_CHECK_MSG(block_size > 0, "V=" << block_size);
  // The tile is dense after (online) transformation; TM is pinned to V
  // and TN takes the remaining register budget.
  ReuseAnalysis r;
  r.best_tm = block_size;
  r.best_tn = regfile_accumulators / block_size;
  r.flop_per_byte =
      2.0 * r.best_tm * r.best_tn / ((r.best_tm + r.best_tn) * bytes_per_value);
  // Reuse cannot exceed the dense optimum (TN shrinks as V grows past
  // T_opt; the formula above already captures both sides).
  return r;
}

}  // namespace shflbw
