#include "prune/block_wise.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "format/convert.h"
#include "prune/importance.h"

namespace shflbw {

Matrix<float> BlockWiseMask(const Matrix<float>& scores, double density,
                            int v) {
  SHFLBW_CHECK_MSG(v > 0, "v=" << v);
  SHFLBW_CHECK_MSG(scores.rows() % v == 0 && scores.cols() % v == 0,
                   "shape " << scores.rows() << "x" << scores.cols()
                            << " not divisible by V=" << v);
  SHFLBW_CHECK_MSG(density >= 0.0 && density <= 1.0, "density " << density);
  const int brows = scores.rows() / v;
  const int bcols = scores.cols() / v;
  const std::size_t blocks = static_cast<std::size_t>(brows) * bcols;
  std::vector<double> block_score(blocks, 0.0);
  for (int r = 0; r < scores.rows(); ++r) {
    for (int c = 0; c < scores.cols(); ++c) {
      block_score[static_cast<std::size_t>(r / v) * bcols + c / v] +=
          scores(r, c);
    }
  }
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(blocks)));
  std::vector<std::size_t> order(blocks);
  std::iota(order.begin(), order.end(), 0);
  if (keep < blocks) {
    std::nth_element(order.begin(), order.begin() + keep, order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return block_score[a] != block_score[b]
                                  ? block_score[a] > block_score[b]
                                  : a < b;
                     });
  }
  Matrix<float> mask(scores.rows(), scores.cols());
  const std::size_t kept = std::min(keep, blocks);
  for (std::size_t i = 0; i < kept; ++i) {
    const int br = static_cast<int>(order[i]) / bcols;
    const int bc = static_cast<int>(order[i]) % bcols;
    for (int r = 0; r < v; ++r) {
      for (int c = 0; c < v; ++c) {
        mask(br * v + r, bc * v + c) = 1.0f;
      }
    }
  }
  return mask;
}

Matrix<float> PruneBlockWise(const Matrix<float>& weights, double density,
                             int v) {
  return ApplyMask(weights,
                   BlockWiseMask(MagnitudeScores(weights), density, v));
}

}  // namespace shflbw
