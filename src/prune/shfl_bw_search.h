// The Shfl-BW pattern search (§5, Fig. 5): a two-step heuristic that
// first decides the row shuffling, then applies vector-wise pruning to
// the shuffled matrix.
//
//   (a) importance scores = |W|
//   (b) unstructured prune at a *reduced* sparsity beta (beta = 2*alpha
//       found best in the paper) -> binary mask
//   (c) balanced K-Means clusters mask rows into groups of V
//   (d) permute rows so each group is contiguous
//   (e) vector-wise prune the permuted scores to the target alpha
//   (f) reverse the permutation -> final mask in original row order
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "format/shfl_bw.h"

namespace shflbw {

struct ShflBwSearchOptions {
  /// Mask-generation density multiplier: beta = min(1, ratio * alpha).
  double beta_ratio = 2.0;
  int kmeans_iterations = 10;
  std::uint64_t seed = 42;
};

struct ShflBwSearchResult {
  /// Binary mask in ORIGINAL row order satisfying the Shfl-BW pattern.
  Matrix<float> mask;
  /// The discovered permutation (storage row -> original row).
  std::vector<int> storage_to_original;
};

/// Runs the full Fig. 5 search on an importance-score matrix.
ShflBwSearchResult ShflBwSearch(const Matrix<float>& scores, double density,
                                int v, const ShflBwSearchOptions& opts = {});

/// Convenience: search on |weights|, apply the mask, and package the
/// result into the kernel-ready ShflBwMatrix format.
ShflBwMatrix PruneToShflBw(const Matrix<float>& weights, double density,
                           int v, const ShflBwSearchOptions& opts = {});

}  // namespace shflbw
