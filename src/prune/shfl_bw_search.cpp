#include "prune/shfl_bw_search.h"

#include <algorithm>

#include "common/check.h"
#include "format/convert.h"
#include "prune/importance.h"
#include "prune/kmeans.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

Matrix<float> PermuteRows(const Matrix<float>& m,
                          const std::vector<int>& storage_to_original) {
  Matrix<float> out(m.rows(), m.cols());
  for (int s = 0; s < m.rows(); ++s) {
    const int orig = storage_to_original[s];
    for (int c = 0; c < m.cols(); ++c) out(s, c) = m(orig, c);
  }
  return out;
}

Matrix<float> UnpermuteRows(const Matrix<float>& m,
                            const std::vector<int>& storage_to_original) {
  Matrix<float> out(m.rows(), m.cols());
  for (int s = 0; s < m.rows(); ++s) {
    const int orig = storage_to_original[s];
    for (int c = 0; c < m.cols(); ++c) out(orig, c) = m(s, c);
  }
  return out;
}

}  // namespace

ShflBwSearchResult ShflBwSearch(const Matrix<float>& scores, double density,
                                int v, const ShflBwSearchOptions& opts) {
  SHFLBW_CHECK_MSG(density > 0.0 && density <= 1.0, "density " << density);
  SHFLBW_CHECK_MSG(v > 0 && scores.rows() % v == 0,
                   "rows=" << scores.rows() << " not divisible by V=" << v);

  // (b) Reduced-sparsity unstructured mask: beta = 2*alpha keeps enough
  // candidates for the clustering to see where important weights live
  // without drowning the signal (paper finds this best, §5).
  const double beta = std::min(1.0, opts.beta_ratio * density);
  const Matrix<float> binary_mask = UnstructuredMask(scores, beta);

  // (c) Cluster rows of the binary mask into groups of exactly V.
  KMeansOptions km;
  km.iterations = opts.kmeans_iterations;
  km.seed = opts.seed;
  RowGrouping grouping = BalancedKMeansRows(binary_mask, v, km);

  // (d) Shuffle the ORIGINAL scores (not the mask) into group order.
  const Matrix<float> shuffled =
      PermuteRows(scores, grouping.storage_to_original);

  // (e) Vector-wise prune the shuffled scores at the target density.
  const Matrix<float> shuffled_mask = VectorWiseMask(shuffled, density, v);

  // (f) Reverse the shuffle to express the mask over original rows.
  ShflBwSearchResult result;
  result.mask = UnpermuteRows(shuffled_mask, grouping.storage_to_original);
  result.storage_to_original = std::move(grouping.storage_to_original);
  return result;
}

ShflBwMatrix PruneToShflBw(const Matrix<float>& weights, double density,
                           int v, const ShflBwSearchOptions& opts) {
  const ShflBwSearchResult search =
      ShflBwSearch(MagnitudeScores(weights), density, v, opts);
  const Matrix<float> pruned = ApplyMask(weights, search.mask);
  return ShflBwMatrix::FromDense(pruned, v, search.storage_to_original);
}

}  // namespace shflbw
