#include "prune/taylor_importance.h"

#include <cmath>

#include "common/check.h"

namespace shflbw {

Matrix<float> TaylorScores(const Matrix<float>& weights,
                           const Matrix<float>& gradients) {
  SHFLBW_CHECK_MSG(weights.rows() == gradients.rows() &&
                       weights.cols() == gradients.cols(),
                   "weights " << weights.rows() << "x" << weights.cols()
                              << " vs gradients " << gradients.rows() << "x"
                              << gradients.cols());
  Matrix<float> s(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s.storage()[i] =
        std::fabs(weights.storage()[i] * gradients.storage()[i]);
  }
  return s;
}

Matrix<float> BlendedScores(const Matrix<float>& weights,
                            const Matrix<float>& gradients, double mix) {
  SHFLBW_CHECK_MSG(mix >= 0.0 && mix <= 1.0, "mix " << mix);
  const Matrix<float> taylor = TaylorScores(weights, gradients);
  // Normalize each term by its mean so the blend weight is meaningful.
  double mag_mean = 0.0, taylor_mean = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    mag_mean += std::fabs(weights.storage()[i]);
    taylor_mean += taylor.storage()[i];
  }
  mag_mean = std::max(mag_mean / weights.size(), 1e-20);
  taylor_mean = std::max(taylor_mean / weights.size(), 1e-20);

  Matrix<float> s(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double mag = std::fabs(weights.storage()[i]) / mag_mean;
    const double tay = taylor.storage()[i] / taylor_mean;
    s.storage()[i] = static_cast<float>((1.0 - mix) * mag + mix * tay);
  }
  return s;
}

}  // namespace shflbw
