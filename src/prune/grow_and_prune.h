// Grow-and-Prune schedule (Ma et al. 2021 [22]) — the workflow the paper
// uses for Transformer and ResNet50: multiple rounds in which the mask is
// relaxed (grow) and re-tightened (prune) so mistakenly-pruned weights
// can recover. Here the schedule is expressed over sparsity targets; the
// nn::Trainer consumes it during fine-tuning, and the offline variant
// refines a mask against (re-scored) weights.
#pragma once

#include <functional>
#include <vector>

#include "common/matrix.h"

namespace shflbw {

struct GrowAndPruneOptions {
  int rounds = 4;
  /// Fraction of kept weights additionally re-grown at each round start.
  double grow_ratio = 0.3;
};

/// Pattern-constrained masker: maps (scores, density) to a binary mask.
using PatternMasker =
    std::function<Matrix<float>(const Matrix<float>&, double)>;

/// Per-round target densities interpolating from `initial` down to
/// `final` with a cubic schedule (fast early pruning, gentle tail).
std::vector<double> GrowAndPruneDensities(double initial_density,
                                          double final_density, int rounds);

/// One grow-and-prune round: grows the candidate set by grow_ratio above
/// `density`, then re-masks with the pattern masker at `density`, always
/// scoring with the *current* scores (so recovered weights can displace
/// stale ones).
Matrix<float> GrowAndPruneRound(const Matrix<float>& scores,
                                const Matrix<float>& current_mask,
                                double density, double grow_ratio,
                                const PatternMasker& masker);

/// Full offline schedule: rounds of GrowAndPruneRound from dense to the
/// final density.
Matrix<float> GrowAndPruneSchedule(const Matrix<float>& scores,
                                   double final_density,
                                   const PatternMasker& masker,
                                   const GrowAndPruneOptions& opts = {});

}  // namespace shflbw
