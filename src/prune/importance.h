// Weight-importance scoring. The paper uses absolute magnitude ([11],
// §5); squared magnitude is provided for ablations.
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// |w| elementwise.
Matrix<float> MagnitudeScores(const Matrix<float>& weights);

/// w^2 elementwise.
Matrix<float> SquaredScores(const Matrix<float>& weights);

/// Total score retained by a mask: sum(scores .* mask). The
/// retained-score ratio is the Table 1 quality proxy (see DESIGN.md §0).
double RetainedScore(const Matrix<float>& scores, const Matrix<float>& mask);

/// RetainedScore normalized by the total score (1.0 = nothing pruned).
double RetainedScoreRatio(const Matrix<float>& scores,
                          const Matrix<float>& mask);

}  // namespace shflbw
