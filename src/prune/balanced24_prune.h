// 2:4 balanced pruning: keep the 2 highest-scoring entries of every
// aligned 1x4 quad — the pattern the A100 sparse tensor-core requires.
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// Mask keeping the top 2 entries per aligned quad. cols must be a
/// multiple of 4. Resulting density is exactly 0.5.
Matrix<float> Balanced24Mask(const Matrix<float>& scores);

/// weights .* Balanced24Mask(|weights|).
Matrix<float> PruneBalanced24(const Matrix<float>& weights);

}  // namespace shflbw
