// Block-wise pruning: keep or prune entire V x V aligned blocks by their
// total importance (the greedy method the paper notes suffices for the
// block-wise pattern, §5).
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// Mask keeping the top round(density * num_blocks) blocks of size V x V.
/// Shape must be divisible by V in both dimensions.
Matrix<float> BlockWiseMask(const Matrix<float>& scores, double density,
                            int v);

/// weights .* BlockWiseMask(|weights|, density, v).
Matrix<float> PruneBlockWise(const Matrix<float>& weights, double density,
                             int v);

}  // namespace shflbw
