// Unstructured (magnitude) pruning — both a baseline pattern and the
// first stage of the Shfl-BW search (Fig. 5 step (b)).
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// Binary mask keeping the round(density * size) highest-scoring entries.
/// Ties at the threshold are broken by position (earlier kept), making
/// the result deterministic.
Matrix<float> UnstructuredMask(const Matrix<float>& scores, double density);

/// Convenience: weights .* UnstructuredMask(|weights|, density).
Matrix<float> PruneUnstructured(const Matrix<float>& weights, double density);

}  // namespace shflbw
