// Vector-wise pruning: keep or prune V x 1 column vectors within fixed
// groups of V consecutive rows (Fig. 3(c)); also the second stage of the
// Shfl-BW search, applied after the row shuffle (Fig. 5 step (e)).
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// Mask keeping the top round(density * num_vectors) vectors globally,
/// scored by the sum of importance inside each V x 1 vector. rows must be
/// divisible by V.
Matrix<float> VectorWiseMask(const Matrix<float>& scores, double density,
                             int v);

/// weights .* VectorWiseMask(|weights|, density, v).
Matrix<float> PruneVectorWise(const Matrix<float>& weights, double density,
                              int v);

}  // namespace shflbw
