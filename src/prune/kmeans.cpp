#include "prune/kmeans.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <random>

#include "common/check.h"

namespace shflbw {
namespace {

double SquaredDistance(const float* row, const double* centroid, int k) {
  double d = 0.0;
  for (int c = 0; c < k; ++c) {
    const double diff = static_cast<double>(row[c]) - centroid[c];
    d += diff * diff;
  }
  return d;
}

}  // namespace

namespace {

/// k-means++ style seeding: first seed random, each further seed is the
/// row farthest (in min-distance) from the chosen set. Deterministic
/// given the generator state. Spread-out seeds matter here: two seeds
/// landing in the same row-pattern cluster force the balanced assignment
/// to split that cluster, which plain random sampling does frequently.
std::vector<int> PlusPlusSeeds(const Matrix<float>& mask, int clusters,
                               std::mt19937_64& gen) {
  const int m = mask.rows();
  const int k = mask.cols();
  std::vector<int> seeds;
  std::uniform_int_distribution<int> first(0, m - 1);
  seeds.push_back(first(gen));
  std::vector<double> min_dist(static_cast<std::size_t>(m),
                               std::numeric_limits<double>::infinity());
  while (static_cast<int>(seeds.size()) < clusters) {
    const float* last = mask.row(seeds.back());
    for (int r = 0; r < m; ++r) {
      double d = 0.0;
      const float* row = mask.row(r);
      for (int c = 0; c < k; ++c) {
        const double diff = static_cast<double>(row[c]) - last[c];
        d += diff * diff;
      }
      min_dist[r] = std::min(min_dist[r], d);
    }
    int best = 0;
    for (int r = 1; r < m; ++r) {
      if (min_dist[r] > min_dist[best]) best = r;
    }
    seeds.push_back(best);
    min_dist[best] = -1.0;  // never re-picked
  }
  return seeds;
}

}  // namespace

/// One full k-means run from a fresh seeding; returns assignment + cost.
static double RunOnce(const Matrix<float>& mask, int v, int iterations,
                      std::mt19937_64& gen, std::vector<int>& assignment) {
  const int m = mask.rows();
  const int k = mask.cols();
  const int clusters = m / v;

  const std::vector<int> seeds = PlusPlusSeeds(mask, clusters, gen);
  std::vector<double> centroids(static_cast<std::size_t>(clusters) * k);
  for (int cl = 0; cl < clusters; ++cl) {
    const float* row = mask.row(seeds[cl]);
    for (int c = 0; c < k; ++c) {
      centroids[static_cast<std::size_t>(cl) * k + c] = row[c];
    }
  }

  assignment.assign(static_cast<std::size_t>(m), -1);
  double total_distance = 0.0;

  for (int iter = 0; iter < iterations; ++iter) {
    // Balanced assignment: all (row, cluster) distances, matched
    // greedily in ascending order with per-cluster capacity V.
    struct Pair {
      double dist;
      int row;
      int cluster;
    };
    std::vector<Pair> pairs;
    pairs.reserve(static_cast<std::size_t>(m) * clusters);
    for (int r = 0; r < m; ++r) {
      for (int cl = 0; cl < clusters; ++cl) {
        pairs.push_back({SquaredDistance(
                             mask.row(r),
                             &centroids[static_cast<std::size_t>(cl) * k], k),
                         r, cl});
      }
    }
    std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      if (a.row != b.row) return a.row < b.row;
      return a.cluster < b.cluster;
    });
    std::fill(assignment.begin(), assignment.end(), -1);
    std::vector<int> load(static_cast<std::size_t>(clusters), 0);
    int assigned = 0;
    total_distance = 0.0;
    for (const Pair& p : pairs) {
      if (assigned == m) break;
      if (assignment[p.row] != -1 || load[p.cluster] == v) continue;
      assignment[p.row] = p.cluster;
      ++load[p.cluster];
      ++assigned;
      total_distance += p.dist;
    }
    SHFLBW_CHECK(assigned == m);

    // Centroid update: mean of assigned rows.
    std::fill(centroids.begin(), centroids.end(), 0.0);
    for (int r = 0; r < m; ++r) {
      double* cen = &centroids[static_cast<std::size_t>(assignment[r]) * k];
      const float* row = mask.row(r);
      for (int c = 0; c < k; ++c) cen[c] += row[c];
    }
    for (std::size_t i = 0; i < centroids.size(); ++i) {
      centroids[i] /= v;
    }
  }
  return total_distance;
}

RowGrouping BalancedKMeansRows(const Matrix<float>& mask, int v,
                               const KMeansOptions& opts) {
  SHFLBW_CHECK_MSG(v > 0 && mask.rows() % v == 0,
                   "rows=" << mask.rows() << " not divisible by V=" << v);
  const int m = mask.rows();
  const int clusters = m / v;

  // Restarts guard against unlucky seedings; keep the lowest-cost run.
  constexpr int kRestarts = 3;
  std::mt19937_64 gen(opts.seed);
  std::vector<int> best_assignment;
  double best_distance = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < kRestarts; ++restart) {
    std::vector<int> assignment;
    const double d = RunOnce(mask, v, opts.iterations, gen, assignment);
    if (d < best_distance) {
      best_distance = d;
      best_assignment = std::move(assignment);
    }
  }

  // Emit the permutation: cluster 0's rows first, then cluster 1's, ...
  RowGrouping out;
  out.total_distance = best_distance;
  out.storage_to_original.reserve(m);
  for (int cl = 0; cl < clusters; ++cl) {
    for (int r = 0; r < m; ++r) {
      if (best_assignment[r] == cl) out.storage_to_original.push_back(r);
    }
  }
  return out;
}

}  // namespace shflbw
