// ADMM-style pruning regularization (Zhang et al., ECCV'18 [21]) — the
// training method the paper uses for GNMT: alternating between training
// the dense weights with a quadratic pull toward the nearest
// pattern-feasible point and updating that projection.
//
// The projection operator is pluggable so the same loop serves every
// sparsity pattern in this library.
#pragma once

#include <functional>

#include "common/matrix.h"

namespace shflbw {

/// Projects weights onto a pattern-feasible set (e.g. PruneVectorWise
/// bound at a density). Must return a matrix of the same shape.
using PatternProjector =
    std::function<Matrix<float>(const Matrix<float>&)>;

struct AdmmOptions {
  double rho = 1e-2;  // augmented-Lagrangian penalty
  int iterations = 8;
};

/// One ADMM outer step given current (trained) weights W and the running
/// scaled dual U: Z = project(W + U); U += W - Z. Returns Z and updates u
/// in place. The trainer adds rho*(W - Z + U) to the weight gradient.
Matrix<float> AdmmProjectStep(const Matrix<float>& weights, Matrix<float>& u,
                              const PatternProjector& project);

/// Offline (no-trainer) ADMM: repeatedly pulls W toward its projection,
///   W <- (W + rho * Z) / (1 + rho),  Z = project(W + U),  U += W - Z,
/// then hard-projects. Models the weight-distribution reshaping ADMM
/// performs before the final prune; used by the Table 1 pipeline.
Matrix<float> AdmmRegularize(Matrix<float> weights,
                             const PatternProjector& project,
                             const AdmmOptions& opts = {});

}  // namespace shflbw
