#include "prune/balanced24_prune.h"

#include <array>

#include "common/check.h"
#include "format/convert.h"
#include "prune/importance.h"

namespace shflbw {

Matrix<float> Balanced24Mask(const Matrix<float>& scores) {
  SHFLBW_CHECK_MSG(scores.cols() % 4 == 0,
                   "cols=" << scores.cols() << " not a multiple of 4");
  Matrix<float> mask(scores.rows(), scores.cols());
  for (int r = 0; r < scores.rows(); ++r) {
    for (int q = 0; q < scores.cols() / 4; ++q) {
      // Pick the 2 largest of the 4 (ties -> earlier position).
      std::array<int, 4> idx{0, 1, 2, 3};
      std::sort(idx.begin(), idx.end(), [&](int a, int b) {
        const float sa = scores(r, q * 4 + a);
        const float sb = scores(r, q * 4 + b);
        return sa != sb ? sa > sb : a < b;
      });
      mask(r, q * 4 + idx[0]) = 1.0f;
      mask(r, q * 4 + idx[1]) = 1.0f;
    }
  }
  return mask;
}

Matrix<float> PruneBalanced24(const Matrix<float>& weights) {
  return ApplyMask(weights, Balanced24Mask(MagnitudeScores(weights)));
}

}  // namespace shflbw
