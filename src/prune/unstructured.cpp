#include "prune/unstructured.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "format/convert.h"
#include "prune/importance.h"

namespace shflbw {

Matrix<float> UnstructuredMask(const Matrix<float>& scores, double density) {
  SHFLBW_CHECK_MSG(density >= 0.0 && density <= 1.0,
                   "density " << density << " outside [0,1]");
  const std::size_t total = scores.size();
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(total)));
  Matrix<float> mask(scores.rows(), scores.cols());
  if (keep == 0) return mask;
  if (keep >= total) {
    std::fill(mask.storage().begin(), mask.storage().end(), 1.0f);
    return mask;
  }
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  // Stable selection: higher score first, earlier position wins ties.
  std::nth_element(order.begin(), order.begin() + keep, order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const float sa = scores.storage()[a];
                     const float sb = scores.storage()[b];
                     return sa != sb ? sa > sb : a < b;
                   });
  for (std::size_t i = 0; i < keep; ++i) {
    mask.storage()[order[i]] = 1.0f;
  }
  return mask;
}

Matrix<float> PruneUnstructured(const Matrix<float>& weights, double density) {
  return ApplyMask(weights, UnstructuredMask(MagnitudeScores(weights),
                                             density));
}

}  // namespace shflbw
