#include "prune/grow_and_prune.h"

#include <cmath>

#include "common/check.h"

namespace shflbw {

std::vector<double> GrowAndPruneDensities(double initial_density,
                                          double final_density, int rounds) {
  SHFLBW_CHECK_MSG(rounds > 0, "rounds=" << rounds);
  SHFLBW_CHECK_MSG(initial_density >= final_density,
                   "initial " << initial_density << " < final "
                              << final_density);
  std::vector<double> densities(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    // Cubic sparsity schedule (Zhu & Gupta style): sparsity ramps as
    // 1 - (1 - t)^3, so density drops quickly first and settles slowly.
    const double t = static_cast<double>(r + 1) / rounds;
    const double ramp = 1.0 - std::pow(1.0 - t, 3.0);
    densities[r] =
        initial_density - (initial_density - final_density) * ramp;
  }
  densities.back() = final_density;  // exact landing
  return densities;
}

Matrix<float> GrowAndPruneRound(const Matrix<float>& scores,
                                const Matrix<float>& current_mask,
                                double density, double grow_ratio,
                                const PatternMasker& masker) {
  SHFLBW_CHECK(scores.rows() == current_mask.rows() &&
               scores.cols() == current_mask.cols());
  SHFLBW_CHECK_MSG(grow_ratio >= 0.0, "grow_ratio " << grow_ratio);
  // Grow phase: weights currently masked out compete again, but with a
  // handicap — their scores are those of freshly-regrown (small) weights.
  // Modelled by letting every weight compete while boosting currently-
  // kept ones, bounded so a strong pruned weight can still win. The
  // candidate pool is thus density*(1+grow_ratio) wide in effect.
  Matrix<float> boosted(scores.rows(), scores.cols());
  const float keep_boost = static_cast<float>(1.0 + grow_ratio);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool kept = current_mask.storage()[i] != 0.0f;
    boosted.storage()[i] = scores.storage()[i] * (kept ? keep_boost : 1.0f);
  }
  // Prune phase: re-mask at the round's target density under the pattern
  // constraint.
  return masker(boosted, density);
}

Matrix<float> GrowAndPruneSchedule(const Matrix<float>& scores,
                                   double final_density,
                                   const PatternMasker& masker,
                                   const GrowAndPruneOptions& opts) {
  const std::vector<double> densities =
      GrowAndPruneDensities(1.0, final_density, opts.rounds);
  Matrix<float> mask(scores.rows(), scores.cols(), 1.0f);  // start dense
  for (double density : densities) {
    mask = GrowAndPruneRound(scores, mask, density, opts.grow_ratio, masker);
  }
  return mask;
}

}  // namespace shflbw
