// Balanced K-Means over binary row masks — the row-grouping stage of the
// Shfl-BW search (Fig. 5 step (c)-(d)): "invoke the K-Means algorithm to
// cluster the rows in the binary mask into groups with a fixed size V".
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace shflbw {

struct KMeansOptions {
  int iterations = 10;
  std::uint64_t seed = 42;  // centroid initialization
};

/// Result of balanced clustering: a permutation placing each group's V
/// rows contiguously (storage_to_original[s] = original row of storage
/// slot s), plus the final assignment cost.
struct RowGrouping {
  std::vector<int> storage_to_original;
  double total_distance = 0.0;  // sum of squared distances to centroids
};

/// Clusters the rows of `mask` (entries 0/1) into rows/V groups of
/// exactly V rows each, minimizing within-group pattern disagreement.
/// Balanced assignment: (row, centroid) pairs are greedily matched in
/// ascending distance order, closing centroids once full.
RowGrouping BalancedKMeansRows(const Matrix<float>& mask, int v,
                               const KMeansOptions& opts = {});

}  // namespace shflbw
