#include "prune/importance.h"

#include <cmath>

#include "common/check.h"

namespace shflbw {

Matrix<float> MagnitudeScores(const Matrix<float>& weights) {
  Matrix<float> s(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s.storage()[i] = std::fabs(weights.storage()[i]);
  }
  return s;
}

Matrix<float> SquaredScores(const Matrix<float>& weights) {
  Matrix<float> s(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s.storage()[i] = weights.storage()[i] * weights.storage()[i];
  }
  return s;
}

double RetainedScore(const Matrix<float>& scores, const Matrix<float>& mask) {
  SHFLBW_CHECK(scores.rows() == mask.rows() && scores.cols() == mask.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (mask.storage()[i] != 0.0f) total += scores.storage()[i];
  }
  return total;
}

double RetainedScoreRatio(const Matrix<float>& scores,
                          const Matrix<float>& mask) {
  double all = 0.0;
  for (float s : scores.storage()) all += s;
  return all > 0.0 ? RetainedScore(scores, mask) / all : 0.0;
}

}  // namespace shflbw
