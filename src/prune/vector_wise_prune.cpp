#include "prune/vector_wise_prune.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "format/convert.h"
#include "prune/importance.h"

namespace shflbw {

Matrix<float> VectorWiseMask(const Matrix<float>& scores, double density,
                             int v) {
  SHFLBW_CHECK_MSG(v > 0, "v=" << v);
  SHFLBW_CHECK_MSG(scores.rows() % v == 0,
                   "rows=" << scores.rows() << " not divisible by V=" << v);
  SHFLBW_CHECK_MSG(density >= 0.0 && density <= 1.0, "density " << density);
  const int groups = scores.rows() / v;
  const std::size_t vectors =
      static_cast<std::size_t>(groups) * scores.cols();
  std::vector<double> vec_score(vectors, 0.0);
  for (int r = 0; r < scores.rows(); ++r) {
    const int g = r / v;
    for (int c = 0; c < scores.cols(); ++c) {
      vec_score[static_cast<std::size_t>(g) * scores.cols() + c] +=
          scores(r, c);
    }
  }
  const std::size_t keep = static_cast<std::size_t>(
      std::llround(density * static_cast<double>(vectors)));
  std::vector<std::size_t> order(vectors);
  std::iota(order.begin(), order.end(), 0);
  if (keep < vectors) {
    std::nth_element(order.begin(), order.begin() + keep, order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return vec_score[a] != vec_score[b]
                                  ? vec_score[a] > vec_score[b]
                                  : a < b;
                     });
  }
  Matrix<float> mask(scores.rows(), scores.cols());
  const std::size_t kept = std::min(keep, vectors);
  for (std::size_t i = 0; i < kept; ++i) {
    const int g = static_cast<int>(order[i] / scores.cols());
    const int c = static_cast<int>(order[i] % scores.cols());
    for (int r = 0; r < v; ++r) {
      mask(g * v + r, c) = 1.0f;
    }
  }
  return mask;
}

Matrix<float> PruneVectorWise(const Matrix<float>& weights, double density,
                              int v) {
  return ApplyMask(weights,
                   VectorWiseMask(MagnitudeScores(weights), density, v));
}

}  // namespace shflbw
