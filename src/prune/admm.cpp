#include "prune/admm.h"

#include "common/check.h"

namespace shflbw {

Matrix<float> AdmmProjectStep(const Matrix<float>& weights, Matrix<float>& u,
                              const PatternProjector& project) {
  SHFLBW_CHECK(weights.rows() == u.rows() && weights.cols() == u.cols());
  Matrix<float> shifted(weights.rows(), weights.cols());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    shifted.storage()[i] = weights.storage()[i] + u.storage()[i];
  }
  Matrix<float> z = project(shifted);
  SHFLBW_CHECK_MSG(z.rows() == weights.rows() && z.cols() == weights.cols(),
                   "projector changed shape");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u.storage()[i] += weights.storage()[i] - z.storage()[i];
  }
  return z;
}

Matrix<float> AdmmRegularize(Matrix<float> weights,
                             const PatternProjector& project,
                             const AdmmOptions& opts) {
  SHFLBW_CHECK_MSG(opts.rho > 0.0, "rho=" << opts.rho);
  Matrix<float> u(weights.rows(), weights.cols());
  for (int it = 0; it < opts.iterations; ++it) {
    const Matrix<float> z = AdmmProjectStep(weights, u, project);
    // Proximal pull of W toward Z (stand-in for the SGD steps that the
    // full method interleaves; see DESIGN.md §0 substitutions).
    const float blend = static_cast<float>(opts.rho);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights.storage()[i] =
          (weights.storage()[i] + blend * z.storage()[i]) / (1.0f + blend);
    }
  }
  return project(weights);
}

}  // namespace shflbw
