// First-order (Taylor) importance scores — an extension hook for the §5
// search, which is generic in its score input ("Given the importance
// scores of all weights, our algorithm decides which weights to keep").
// The paper uses |w| (magnitude); first-order scores |w * dL/dw| rank
// weights by the loss change their removal causes to first order, and
// plug into the same ShflBwSearch / PatternMask machinery. (With the nn
// substrate, pass layer.weights() and layer.grad_weights() after a
// backward pass over a scoring batch.)
#pragma once

#include "common/matrix.h"

namespace shflbw {

/// |w .* g| elementwise — the first-order Taylor removal criterion.
Matrix<float> TaylorScores(const Matrix<float>& weights,
                           const Matrix<float>& gradients);

/// Blended criterion: (1-mix)*|w| + mix*|w.*g|, each term normalized by
/// its mean so the blend weight is meaningful. mix in [0,1].
Matrix<float> BlendedScores(const Matrix<float>& weights,
                            const Matrix<float>& gradients, double mix);

}  // namespace shflbw
