#include "quality/quality_planner.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "quality/quality_evaluator.h"

namespace shflbw {
namespace quality {
namespace {

using runtime::ExecutionPlan;
using runtime::Format;
using runtime::FormatCandidate;
using runtime::LayerDesc;
using runtime::LayerPlan;
using runtime::ModelDesc;
using runtime::PlannerOptions;
using runtime::QualityOptions;

// Floor comparisons tolerate double round-off, never real violations.
constexpr double kFloorEps = 1e-12;

std::vector<double> DensityLadder(const QualityOptions& q) {
  std::vector<double> ladder = q.density_ladder;
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

std::vector<int> VLadder(const PlannerOptions& opts) {
  std::vector<int> ladder = opts.quality.v_ladder;
  if (ladder.empty()) ladder.push_back(opts.v);
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  return ladder;
}

/// Enumerates every (format, density, v) candidate for one layer:
/// dense once (ratio 1.0), each sparse format across the ladders, with
/// feasibility and modelled seconds from the same cost model the
/// speed-only planner uses and the retained ratio from the evaluator.
std::vector<FormatCandidate> EnumerateCandidates(
    const LayerDesc& l, int index, const PlannerOptions& opts,
    const std::vector<double>& densities, const std::vector<int>& vs,
    QualityEvaluator& evaluator, double dense_s) {
  std::vector<FormatCandidate> candidates;
  for (Format f : runtime::AllFormats()) {
    if (f == Format::kDense) {
      FormatCandidate c;
      c.format = f;
      c.density = 1.0;
      c.v = opts.v;
      c.feasible = true;
      c.modeled_s = dense_s;
      c.retained_ratio = 1.0;
      candidates.push_back(std::move(c));
      continue;
    }
    const bool excluded =
        std::find(opts.exclude.begin(), opts.exclude.end(), f) !=
        opts.exclude.end();
    if (excluded) {
      FormatCandidate c;
      c.format = f;
      c.density = opts.density;
      c.v = opts.v;
      c.why = "excluded by options";
      candidates.push_back(std::move(c));
      continue;
    }
    if (f == Format::kBalanced24) {
      // 2:4 ignores V and fixes density at 0.5: one candidate, not one
      // per ladder point (duplicates would waste autotune measurement
      // slots on byte-identical packs).
      FormatCandidate c;
      c.format = f;
      c.density = 0.5;
      c.v = opts.v;
      if (std::find(densities.begin(), densities.end(), 0.5) ==
          densities.end()) {
        c.why = "0.5 not in density_ladder (2:4 fixes density at 0.5)";
      } else {
        PlannerOptions point = opts;
        point.density = 0.5;
        const auto s = ModeledLayerSeconds(l, f, point, &c.why);
        if (s) {
          c.feasible = true;
          c.modeled_s = *s;
          c.retained_ratio = evaluator.LayerRetainedRatio(
              l, index, opts.quality.weight_seed, f, 0.5, opts.v);
        }
      }
      candidates.push_back(std::move(c));
      continue;
    }
    for (int v : vs) {
      for (double density : densities) {
        FormatCandidate c;
        c.format = f;
        c.density = density;
        c.v = v;
        PlannerOptions point = opts;
        point.density = density;
        point.v = v;
        const auto s = ModeledLayerSeconds(l, f, point, &c.why);
        if (s) {
          c.feasible = true;
          c.modeled_s = *s;
          c.retained_ratio = evaluator.LayerRetainedRatio(
              l, index, opts.quality.weight_seed, f, density, v);
        }
        candidates.push_back(std::move(c));
      }
    }
  }
  // Same presentation order as the speed-only planner: feasible first,
  // fastest first, stable within ties — the order autotune's top-k
  // window and the greedy upgrade below both key off.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const FormatCandidate& a, const FormatCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     return a.modeled_s < b.modeled_s;
                   });
  return candidates;
}

void Select(LayerPlan& plan, const FormatCandidate& c) {
  plan.format = c.format;
  plan.density = c.density;
  plan.v = c.v;
  plan.modeled_s = c.modeled_s;
  plan.retained_ratio = c.retained_ratio;
}

/// Quality/latency Pareto frontier of a layer's feasible candidates:
/// indices into `candidates` (already sorted fastest-first) where the
/// retained ratio strictly improves. frontier[0] is the layer's fastest
/// candidate; the last entry has the layer's best reachable ratio
/// (always 1.0 — dense is feasible everywhere).
std::vector<std::size_t> ParetoFrontier(
    const std::vector<FormatCandidate>& candidates) {
  std::vector<std::size_t> frontier;
  double best_ratio = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].feasible) break;  // sorted: feasible prefix
    if (candidates[i].retained_ratio > best_ratio) {
      frontier.push_back(i);
      best_ratio = candidates[i].retained_ratio;
    }
  }
  return frontier;
}

/// kAggregate selection: start every layer at its fastest candidate,
/// then buy retained importance where it costs the least modelled time
/// until the importance-weighted mean meets the floor. Deterministic:
/// the most efficient upgrade wins, ties to the lowest layer index.
void SelectAggregate(ExecutionPlan& plan, double floor) {
  std::vector<std::vector<std::size_t>> frontiers;
  std::vector<std::size_t> position(plan.layers.size(), 0);
  double weighted = 0.0;
  double weight = 0.0;
  for (LayerPlan& lp : plan.layers) {
    frontiers.push_back(ParetoFrontier(lp.candidates));
    SHFLBW_CHECK_MSG(!frontiers.back().empty(),
                     "no feasible candidate for layer " << lp.name);
    Select(lp, lp.candidates[frontiers.back().front()]);
    const double w = lp.total_score * lp.repeat;
    weighted += w * lp.retained_ratio;
    weight += w;
  }
  SHFLBW_CHECK_MSG(weight > 0.0, "model carries no importance mass");

  while (weighted / weight + kFloorEps < floor) {
    int best_layer = -1;
    double best_efficiency = -1.0;
    bool best_free = false;
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
      const std::vector<std::size_t>& frontier = frontiers[i];
      if (position[i] + 1 >= frontier.size()) continue;  // at best ratio
      const LayerPlan& lp = plan.layers[i];
      const FormatCandidate& cur = lp.candidates[frontier[position[i]]];
      const FormatCandidate& next = lp.candidates[frontier[position[i] + 1]];
      const double gain = lp.total_score * lp.repeat *
                          (next.retained_ratio - cur.retained_ratio);
      const double cost = (next.modeled_s - cur.modeled_s) * lp.repeat;
      const bool free = cost <= 0.0;  // equal-time quality is always taken
      const double efficiency = free ? 0.0 : gain / cost;
      if (best_layer < 0 || (free && !best_free) ||
          (free == best_free && !free && efficiency > best_efficiency)) {
        best_layer = static_cast<int>(i);
        best_efficiency = efficiency;
        best_free = free;
      }
    }
    // Every frontier ends at ratio 1.0 (dense), so the aggregate can
    // always reach any floor <= 1 before upgrades run out.
    SHFLBW_CHECK_MSG(best_layer >= 0,
                     "aggregate floor " << floor << " unreachable");
    LayerPlan& lp = plan.layers[static_cast<std::size_t>(best_layer)];
    const std::vector<std::size_t>& frontier =
        frontiers[static_cast<std::size_t>(best_layer)];
    std::size_t& pos = position[static_cast<std::size_t>(best_layer)];
    const double w = lp.total_score * lp.repeat;
    weighted -= w * lp.retained_ratio;
    ++pos;
    Select(lp, lp.candidates[frontier[pos]]);
    weighted += w * lp.retained_ratio;
  }
}

}  // namespace

ExecutionPlan PlanModelQualityAware(const ModelDesc& model,
                                    const PlannerOptions& opts) {
  ValidatePlannerOptions(opts);
  SHFLBW_CHECK_MSG(opts.quality.enabled,
                   "PlanModelQualityAware requires options.quality.enabled");
  const std::vector<double> densities = DensityLadder(opts.quality);
  const std::vector<int> vs = VLadder(opts);
  QualityEvaluator& evaluator = QualityEvaluator::Shared();

  ExecutionPlan plan;
  plan.model = model.name;
  plan.gpu = GetGpuSpec(opts.arch).name;
  plan.options = opts;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    const LayerDesc& l = model.layers[i];
    LayerPlan lp;
    lp.name = l.Name();
    lp.layer = static_cast<int>(i);
    lp.repeat = l.repeat;
    const auto dense_s = ModeledLayerSeconds(l, Format::kDense, opts);
    SHFLBW_CHECK_MSG(dense_s.has_value(),
                     "dense must be modelable for layer " << lp.name);
    lp.modeled_dense_s = *dense_s;
    lp.total_score =
        evaluator.LayerTotalScore(l, static_cast<int>(i),
                                  opts.quality.weight_seed);
    lp.candidates = EnumerateCandidates(l, static_cast<int>(i), opts,
                                        densities, vs, evaluator, *dense_s);
    plan.layers.push_back(std::move(lp));
  }

  if (opts.quality.floor == QualityOptions::Floor::kPerLayer) {
    for (LayerPlan& lp : plan.layers) {
      // Latency-minimal candidate meeting the floor; candidates are
      // fastest-first, so the first qualifying one wins. Dense (ratio
      // 1.0) always qualifies — the guaranteed fallback.
      const FormatCandidate* winner = nullptr;
      for (const FormatCandidate& c : lp.candidates) {
        if (!c.feasible) break;
        if (c.retained_ratio + kFloorEps >= opts.quality.min_retained_ratio) {
          winner = &c;
          break;
        }
      }
      SHFLBW_CHECK_MSG(winner != nullptr,
                       "no candidate meets the quality floor for layer "
                           << lp.name << " (dense should always qualify)");
      Select(lp, *winner);
    }
  } else {
    SelectAggregate(plan, opts.quality.min_retained_ratio);
  }
  return plan;
}

std::vector<runtime::PlannerOptions> LadderPlannerOptions(
    const runtime::PlannerOptions& base, const std::vector<double>& floors) {
  SHFLBW_CHECK_MSG(!floors.empty(), "quality ladder needs at least one floor");
  for (std::size_t i = 0; i < floors.size(); ++i) {
    SHFLBW_CHECK_MSG(floors[i] > 0 && floors[i] <= 1.0,
                     "ladder floor " << floors[i] << " must be in (0, 1]");
    SHFLBW_CHECK_MSG(i == 0 || floors[i] < floors[i - 1],
                     "ladder floors must be strictly descending; got "
                         << floors[i - 1] << " then " << floors[i]);
  }
  std::vector<runtime::PlannerOptions> ladder;
  ladder.reserve(floors.size());
  for (const double floor : floors) {
    runtime::PlannerOptions level = base;
    level.quality.enabled = true;
    // Per-layer semantics on purpose: a served response can then be
    // checked against its level's floor via MinRetainedRatio — an
    // aggregate floor would make "this response retained >= X" unstateable.
    level.quality.floor = runtime::QualityOptions::Floor::kPerLayer;
    level.quality.min_retained_ratio = floor;
    ladder.push_back(std::move(level));
  }
  return ladder;
}

}  // namespace quality
}  // namespace shflbw
