// Quality-aware constrained planning: the accuracy half of the paper's
// accuracy-vs-speed trade-off (Table 1) wired into the runtime planner.
//
// Where the speed-only planner ranks formats at one global (density, V)
// and picks the fastest, this pass searches a per-layer ladder of
// (format, density, V) candidates, scores each candidate's mask with
// the QualityEvaluator (retained-score ratio — the Table 1 proxy), and
// picks the LATENCY-MINIMAL candidate that still meets the caller's
// quality floor. Dense (ratio 1.0) is always a candidate, so every
// layer has a fallback and the search never fails: an unreachable
// floor simply degrades the plan toward all-dense.
//
// Two floor semantics (QualityOptions::Floor):
//   kPerLayer   every layer's ratio >= floor — selection decomposes
//               per layer (independent min-latency subject to floor);
//   kAggregate  the importance-weighted mean ratio (weights = repeat ×
//               total layer importance) >= floor — selection starts
//               from each layer's fastest candidate and greedily buys
//               quality where it is cheapest: repeatedly upgrade the
//               layer with the best (importance gained) / (modelled
//               seconds added) step along its quality/latency Pareto
//               frontier until the aggregate meets the floor.
//
// Both are deterministic: same model + options -> bit-identical plan
// (ties break on the stable candidate order), enforced by
// tests/quality/quality_test.cpp and bench_quality's exit code.
#pragma once

#include <vector>

#include "runtime/model_desc.h"
#include "runtime/planner.h"

namespace shflbw {
namespace quality {

/// The entry point PlanModel routes to when options.quality.enabled is
/// set (callable directly as well; it validates options itself).
/// Produces a standard ExecutionPlan whose layers carry per-layer
/// (format, density, v, retained_ratio) — the engine packs each layer
/// at its own plan values.
runtime::ExecutionPlan PlanModelQualityAware(const runtime::ModelDesc& model,
                                             const runtime::PlannerOptions& opts);

/// Expands `base` into one PlannerOptions per ladder floor: each entry
/// is quality-enabled at that floor with per-layer semantics (the floor
/// a served response's min retained ratio can be checked against),
/// inheriting base's density/V ladders and every other knob. `floors`
/// must be non-empty, strictly descending, each in (0, 1] — level 0 is
/// normal service, later levels are the progressively sparser/faster
/// plans an overloaded server degrades onto (BatchServer's quality
/// ladder). Throws shflbw::Error on an invalid ladder.
std::vector<runtime::PlannerOptions> LadderPlannerOptions(
    const runtime::PlannerOptions& base, const std::vector<double>& floors);

}  // namespace quality
}  // namespace shflbw
