// Quality evaluation for planning: scores what a (format, density, V)
// mask would do to a layer's importance BEFORE committing the plan.
//
// For each candidate the evaluator synthesizes the layer's master
// weight (model/weight_synth.h — the same deterministic stand-in for a
// trained checkpoint the engine packs), applies the matching pruner
// from src/prune/ (unstructured for CSR, block-wise for BSR, 2:4 for
// balanced24, vector-wise for VW, the Fig. 5 shuffle search for
// Shfl-BW), and reports RetainedScoreRatio — the Table 1 quality proxy
// (DESIGN.md §0). Because the pruners here are byte-for-byte the ones
// PackWeight runs, the ratio a plan reports is exactly the ratio of
// the mask the engine will execute.
//
// Evaluations are memoized per (shape, seed, format, density, V), and
// synthesized importance scores per (shape, seed), so a planning sweep
// over a density ladder — or a benchmark sweeping many quality floors —
// pays for each mask search once. Deterministic: the same key always
// returns the same ratio. Thread-safe the same way PackedWeightCache
// is: one mutex, evaluation runs under it, concurrent planners with
// the same keys evaluate at most once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <tuple>

#include "common/matrix.h"
#include "common/thread_annotations.h"
#include "runtime/format.h"
#include "runtime/model_desc.h"

namespace shflbw {
namespace quality {

class QualityEvaluator {
 public:
  /// Retained-score ratio of the mask `format` keeps on the synthetic
  /// m x k master seeded `seed`, pruned at (density, v). Dense is
  /// exactly 1.0 (nothing pruned); balanced24 ignores `density` (the
  /// pattern fixes it at 0.5). The caller is responsible for only
  /// asking feasible combinations (shape divisible by v etc.) — the
  /// pruners throw shflbw::Error otherwise, as they do at pack time.
  double RetainedRatio(int m, int k, std::uint64_t seed,
                       runtime::Format format, double density, int v)
      SHFLBW_EXCLUDES(mu_);

  /// Convenience over a model layer: master shape (GemmM x GemmK),
  /// seed = weight_seed + layer — the exact weight Engine::MasterWeight
  /// synthesizes and PackWeight prunes.
  double LayerRetainedRatio(const runtime::LayerDesc& l, int layer,
                            std::uint64_t weight_seed,
                            runtime::Format format, double density, int v);

  /// Total magnitude importance of the layer's master (the denominator
  /// of the ratio) — the per-layer weight of the aggregate floor.
  double LayerTotalScore(const runtime::LayerDesc& l, int layer,
                         std::uint64_t weight_seed) SHFLBW_EXCLUDES(mu_);

  /// Mask evaluations actually performed (i.e. memoization misses).
  std::size_t Evaluations() const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return evaluations_;
  }
  /// Distinct (shape, seed) masters synthesized so far.
  std::size_t ScoreMatrices() const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return scores_.size();
  }
  void Clear() SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    scores_.clear();
    ratios_.clear();
  }

  /// Process-wide shared instance. Planning goes through this one so
  /// every plan of the same model — an engine re-planning, a benchmark
  /// sweeping quality floors, server replicas — reuses each mask
  /// evaluation instead of re-running the Shfl-BW search per plan.
  static QualityEvaluator& Shared();

 private:
  struct ScoresEntry {
    Matrix<float> scores;  // |W| of the synthesized master
    double total = 0;      // sum of scores
  };
  using ScoresKey = std::tuple<int, int, std::uint64_t>;  // m, k, seed
  // m, k, seed, format, density, v
  using RatioKey = std::tuple<int, int, std::uint64_t, int, double, int>;

  /// Synthesizes (or fetches) the master's importance scores.
  const ScoresEntry& Scores(int m, int k, std::uint64_t seed)
      SHFLBW_REQUIRES(mu_);

  /// Rank kLockRankEvaluator: the mask searches under it are serial
  /// (no ParallelFor) and touch no other locked subsystem.
  mutable Mutex mu_{kLockRankEvaluator};
  std::map<ScoresKey, ScoresEntry> scores_ SHFLBW_GUARDED_BY(mu_);
  std::map<RatioKey, double> ratios_ SHFLBW_GUARDED_BY(mu_);
  std::size_t evaluations_ SHFLBW_GUARDED_BY(mu_) = 0;
};

}  // namespace quality
}  // namespace shflbw
