#include "quality/quality_evaluator.h"

#include "common/check.h"
#include "model/weight_synth.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace quality {

const QualityEvaluator::ScoresEntry& QualityEvaluator::Scores(
    int m, int k, std::uint64_t seed) {
  const ScoresKey key{m, k, seed};
  auto it = scores_.find(key);
  if (it == scores_.end()) {
    SynthWeightOptions synth;
    synth.seed = seed;
    ScoresEntry entry;
    entry.scores = MagnitudeScores(SynthesizeWeights(m, k, synth));
    for (float s : entry.scores.storage()) entry.total += s;
    it = scores_.emplace(key, std::move(entry)).first;
  }
  return it->second;
}

double QualityEvaluator::RetainedRatio(int m, int k, std::uint64_t seed,
                                       runtime::Format format, double density,
                                       int v) {
  if (format == runtime::Format::kDense) return 1.0;
  SHFLBW_CHECK_MSG(density > 0.0 && density <= 1.0,
                   "kept density must be in (0, 1], got " << density);
  SHFLBW_CHECK_MSG(v >= 1, "granularity v must be >= 1, got " << v);
  const RatioKey key{m, k, seed, static_cast<int>(format), density, v};
  MutexLock lock(mu_);
  auto it = ratios_.find(key);
  if (it != ratios_.end()) return it->second;

  // Exactly the masks PackWeight applies (runtime/weight_cache.cpp):
  // every pruner scores by magnitude and ShflBwSearch runs with its
  // default (fixed-seed) options, so planning-time quality == the
  // quality of the packed weight the engine executes.
  const ScoresEntry& entry = Scores(m, k, seed);
  Matrix<float> mask;
  switch (format) {
    case runtime::Format::kCsr:
      mask = UnstructuredMask(entry.scores, density);
      break;
    case runtime::Format::kBsr:
      mask = BlockWiseMask(entry.scores, density, v);
      break;
    case runtime::Format::kBalanced24:
      mask = Balanced24Mask(entry.scores);  // density fixed at 0.5
      break;
    case runtime::Format::kVectorWise:
      mask = VectorWiseMask(entry.scores, density, v);
      break;
    case runtime::Format::kShflBw:
      mask = ShflBwSearch(entry.scores, density, v).mask;
      break;
    case runtime::Format::kDense:
      break;  // handled above
  }
  const double ratio = RetainedScoreRatio(entry.scores, mask);
  ++evaluations_;
  ratios_.emplace(key, ratio);
  return ratio;
}

double QualityEvaluator::LayerRetainedRatio(const runtime::LayerDesc& l,
                                            int layer,
                                            std::uint64_t weight_seed,
                                            runtime::Format format,
                                            double density, int v) {
  return RetainedRatio(l.GemmM(), l.GemmK(),
                       weight_seed + static_cast<std::uint64_t>(layer),
                       format, density, v);
}

double QualityEvaluator::LayerTotalScore(const runtime::LayerDesc& l,
                                         int layer,
                                         std::uint64_t weight_seed) {
  MutexLock lock(mu_);
  return Scores(l.GemmM(), l.GemmK(),
                weight_seed + static_cast<std::uint64_t>(layer))
      .total;
}

QualityEvaluator& QualityEvaluator::Shared() {
  static QualityEvaluator* instance = new QualityEvaluator();
  return *instance;
}

}  // namespace quality
}  // namespace shflbw
