#include "model/resnet50.h"

namespace shflbw {

std::vector<ConvLayerSpec> ResNet50Layers(const ResNet50Config& cfg) {
  const int b = cfg.batch;
  const int s = cfg.image / 4;  // 56 at 224 input
  std::vector<ConvLayerSpec> layers;
  // Bottleneck stages: (blocks, width, spatial). Each block is
  // 1x1 reduce -> 3x3 -> 1x1 expand; the stage's first block also has a
  // 1x1 projection shortcut (folded into the expand repeat count below
  // would misstate K, so it gets its own entry).
  struct Stage {
    int blocks, width, spatial, in_expand;
  };
  const Stage stages[4] = {
      {3, 64, s, 256},
      {4, 128, s / 2, 512},
      {6, 256, s / 4, 1024},
      {3, 512, s / 8, 2048},
  };
  for (int i = 0; i < 4; ++i) {
    const Stage& st = stages[i];
    const std::string tag = "conv" + std::to_string(i + 2);
    const int w = st.width;
    const int sp = st.spatial;
    const int expand = st.in_expand;
    // 1x1 reduce: in = expanded width of previous stage (except the very
    // first block, whose input is 64 from the stem — approximated by the
    // dominant repeated shape).
    layers.push_back({tag + ".reduce1x1", b, expand, sp, sp, w, 1, 1, 1, 0,
                      st.blocks - 1});
    layers.push_back(
        {tag + ".conv3x3", b, w, sp, sp, w, 3, 3, 1, 1, st.blocks});
    layers.push_back(
        {tag + ".expand1x1", b, w, sp, sp, expand, 1, 1, 1, 0, st.blocks});
  }
  return layers;
}

}  // namespace shflbw
