// Layer-shape descriptions for the three evaluation workloads (§6.1:
// Transformer and GNMT on WMT, ResNet50 on ImageNet). "When reporting
// model kernel speedup, we use the shapes in real model."
#pragma once

#include <string>
#include <vector>

namespace shflbw {

/// A weight-times-activation GEMM layer: C[m x n] = W[m x k] * X[k x n],
/// n = batch tokens (batch innermost, §4.3).
struct GemmLayerSpec {
  std::string name;
  int m = 0;
  int n = 0;
  int k = 0;

  double Flops() const { return 2.0 * m * n * k; }
};

/// A 2D convolution layer (NCHW), lowered to implicit GEMM.
struct ConvLayerSpec {
  std::string name;
  int batch = 1;
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int kh = 1, kw = 1;
  int stride = 1;
  int pad = 0;
  int repeat = 1;  // how many times this shape occurs in the network

  int OutH() const { return (in_h + 2 * pad - kh) / stride + 1; }
  int OutW() const { return (in_w + 2 * pad - kw) / stride + 1; }
  int GemmM() const { return out_c; }
  int GemmK() const { return in_c * kh * kw; }
  int GemmN() const { return batch * OutH() * OutW(); }
  double Flops() const {
    return 2.0 * GemmM() * GemmK() * static_cast<double>(GemmN()) * repeat;
  }
};

}  // namespace shflbw
