#include "model/gnmt.h"

namespace shflbw {

std::vector<GemmLayerSpec> GnmtLayers(const GnmtConfig& cfg) {
  const int h = cfg.hidden;
  const int n = cfg.batch_tokens;
  std::vector<GemmLayerSpec> layers = {
      // First encoder layer is bidirectional: input h, hidden h per dir.
      {"enc.l0.gates", 4 * h, n, 2 * h},
      // Stacked LSTM layers: gates see [x_t ; h_{t-1}] of width 2h.
      {"enc.lstm.gates", 4 * h, n, 2 * h},
      {"dec.lstm.gates", 4 * h, n, 2 * h},
      // Attention: score + context projections.
      {"attn.proj", h, n, 2 * h},
  };
  if (cfg.vocab_projection > 0) {
    layers.push_back({"dec.vocab_proj", cfg.vocab_projection, n, h});
  }
  return layers;
}

std::vector<int> GnmtLayerCounts(const GnmtConfig& cfg) {
  std::vector<int> counts = {
      1,
      cfg.encoder_layers - 1,
      cfg.decoder_layers,
      1,
  };
  if (cfg.vocab_projection > 0) counts.push_back(1);
  return counts;
}

}  // namespace shflbw
