// GNMT (Wu et al. [5]): 8-layer encoder + 8-layer decoder LSTM seq2seq
// with 1024 hidden units. The compute-intensive layers are the LSTM gate
// GEMMs (4*hidden outputs against concatenated input+hidden) and the
// attention/projection layers.
#pragma once

#include "model/layer_spec.h"

namespace shflbw {

struct GnmtConfig {
  int hidden = 1024;
  int batch_tokens = 512;
  int encoder_layers = 8;
  int decoder_layers = 8;
  int vocab_projection = 0;  // 0 = exclude the softmax projection
};

/// Distinct GEMM shapes of the GNMT stack.
std::vector<GemmLayerSpec> GnmtLayers(const GnmtConfig& cfg = {});

/// Occurrence counts aligned with GnmtLayers().
std::vector<int> GnmtLayerCounts(const GnmtConfig& cfg = {});

}  // namespace shflbw
