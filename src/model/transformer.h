// Transformer (Vaswani et al. [1]) base configuration on WMT: the GEMM
// shapes of the compute-intensive linear layers the paper prunes and
// times (attention projections + FFN, per encoder/decoder layer).
#pragma once

#include "model/layer_spec.h"

namespace shflbw {

struct TransformerConfig {
  int d_model = 512;
  int d_ff = 2048;
  // batch * sequence, the GEMM N dimension. WMT batch inference runs a
  // few hundred tokens per step (e.g. batch 16 x seq ~32).
  int batch_tokens = 512;
  int encoder_layers = 6;
  int decoder_layers = 6;
};

/// Distinct GEMM shapes of one encoder/decoder stack (weights are M x K,
/// activations K x N): Q/K/V/output projections (d_model x d_model) and
/// the two FFN layers. Each entry appears once; use Counts for totals.
std::vector<GemmLayerSpec> TransformerLayers(
    const TransformerConfig& cfg = {});

/// Number of times each TransformerLayers() entry occurs in the full
/// model (aligned by index).
std::vector<int> TransformerLayerCounts(const TransformerConfig& cfg = {});

}  // namespace shflbw
