#include "model/weight_synth.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/check.h"

namespace shflbw {

Matrix<float> SynthesizeWeights(int m, int k,
                                const SynthWeightOptions& opts) {
  SHFLBW_CHECK_MSG(m > 0 && k > 0, "shape " << m << "x" << k);
  SHFLBW_CHECK_MSG(opts.row_types > 0, "row_types " << opts.row_types);
  std::mt19937_64 gen(opts.seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::lognormal_distribution<double> lognormal(0.0, 0.6);

  // Column-importance profile per latent row type: a sparse set of
  // "important" columns with elevated scale.
  const int types = opts.row_types;
  std::vector<double> profile(static_cast<std::size_t>(types) * k);
  for (int t = 0; t < types; ++t) {
    for (int c = 0; c < k; ++c) {
      // ~25% of columns are important to a given type.
      const bool important = uniform(gen) < 0.25;
      profile[static_cast<std::size_t>(t) * k + c] =
          important ? opts.type_strength * lognormal(gen) : 0.0;
    }
  }

  // Scatter types across rows (shuffled round-robin), so recovering the
  // clusters requires an actual row permutation.
  std::vector<int> row_type(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) row_type[r] = r % types;
  std::shuffle(row_type.begin(), row_type.end(), gen);

  Matrix<float> w(m, k);
  for (int r = 0; r < m; ++r) {
    const double row_scale = lognormal(gen);  // per-row scale variation
    const double* prof = &profile[static_cast<std::size_t>(row_type[r]) * k];
    for (int c = 0; c < k; ++c) {
      double mag = opts.noise * std::fabs(normal(gen)) + prof[c];
      if (uniform(gen) < opts.heavy_tail * 0.1) {
        mag += std::fabs(normal(gen)) * 4.0;  // occasional outlier
      }
      const double sign = uniform(gen) < 0.5 ? -1.0 : 1.0;
      w(r, c) = static_cast<float>(sign * row_scale * mag * 0.05);
    }
  }
  return w;
}

}  // namespace shflbw
