// ResNet50 (He et al. [4]) on ImageNet: the 2D-convolution shapes of the
// four bottleneck stages (the compute-intensive layers of Fig. 6's
// ResNet50 column). The 7x7 stem and the FC head are excluded, matching
// the paper's "linear and 2D convolution layers" accounting for conv
// models.
#pragma once

#include "model/layer_spec.h"

namespace shflbw {

struct ResNet50Config {
  int batch = 32;
  int image = 224;  // input resolution (224 -> 56/28/14/7 stage maps)
};

/// Distinct conv shapes with their repeat counts folded in (see
/// ConvLayerSpec::repeat).
std::vector<ConvLayerSpec> ResNet50Layers(const ResNet50Config& cfg = {});

}  // namespace shflbw
