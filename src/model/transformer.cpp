#include "model/transformer.h"

namespace shflbw {

std::vector<GemmLayerSpec> TransformerLayers(const TransformerConfig& cfg) {
  const int d = cfg.d_model;
  const int f = cfg.d_ff;
  const int n = cfg.batch_tokens;
  return {
      {"attn.qkv_proj", 3 * d, n, d},  // fused Q/K/V projection
      {"attn.out_proj", d, n, d},
      {"ffn.fc1", f, n, d},
      {"ffn.fc2", d, n, f},
  };
}

std::vector<int> TransformerLayerCounts(const TransformerConfig& cfg) {
  // Decoder layers carry self- and cross-attention (2x the projections).
  const int enc = cfg.encoder_layers;
  const int dec = cfg.decoder_layers;
  return {
      enc + 2 * dec,  // qkv projections
      enc + 2 * dec,  // output projections
      enc + dec,      // ffn.fc1
      enc + dec,      // ffn.fc2
  };
}

}  // namespace shflbw
