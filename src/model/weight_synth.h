// Synthetic weight matrices with realistic structure — the stand-in for
// trained Transformer/GNMT/ResNet50 weights in the Table 1 quality
// experiments (see DESIGN.md §0).
//
// Real DNN weight matrices have (a) heavy-tailed magnitudes, (b) per-row
// scale variation, and (c) *row clusters that share important columns*
// (co-activated features). Property (c) is precisely what row shuffling
// exploits: rows whose large weights sit in similar columns can be
// grouped so vector-wise pruning keeps them together. Generating weights
// with latent row types therefore exercises the Shfl-BW search exactly
// the way trained weights do.
#pragma once

#include <cstdint>

#include "common/matrix.h"

namespace shflbw {

struct SynthWeightOptions {
  int row_types = 16;        // latent clusters of rows
  double type_strength = 1.5;  // how strongly a row follows its type
  double noise = 0.5;        // idiosyncratic per-weight component
  double heavy_tail = 0.3;   // fraction of variance from a wide tail
  std::uint64_t seed = 1234;
};

/// Generates an m x k weight matrix with the structure described above.
/// Rows of the same latent type are scattered across the matrix (not
/// contiguous), so contiguous vector-wise grouping is suboptimal while a
/// learned row permutation can recover the clusters.
Matrix<float> SynthesizeWeights(int m, int k,
                                const SynthWeightOptions& opts = {});

}  // namespace shflbw
