#include "runtime/weight_cache.h"

#include <chrono>

#include "common/check.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace runtime {

PackedWeight PackWeight(Format format, const Matrix<float>& master,
                        double density, int v) {
  const auto t0 = std::chrono::steady_clock::now();
  PackedWeight p;
  p.format = format;
  switch (format) {
    case Format::kDense:
      // Kernels round operands through fp16 per call; rounding the
      // master once here keeps the execution path conversion-free.
      p.dense = RoundThroughFp16(master);
      break;
    case Format::kCsr:
      p.csr = CsrMatrix::FromDense(PruneUnstructured(master, density));
      break;
    case Format::kBsr:
      p.bsr = BsrMatrix::FromDense(PruneBlockWise(master, density, v), v);
      break;
    case Format::kBalanced24:
      p.balanced24 = Balanced24Matrix::FromDense(PruneBalanced24(master));
      break;
    case Format::kVectorWise:
      p.vw = VectorWiseMatrix::FromDense(PruneVectorWise(master, density, v),
                                         v);
      break;
    case Format::kShflBw:
      p.shflbw = PruneToShflBw(master, density, v);
      break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  p.pack_seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

const PackedWeight& PackedWeightCache::GetOrPack(int layer, Format format,
                                                 const Matrix<float>& master,
                                                 double density, int v) {
  return GetOrPack(
      layer, format, [&]() -> const Matrix<float>& { return master; },
      density, v);
}

const PackedWeight& PackedWeightCache::GetOrPack(
    int layer, Format format,
    const std::function<const Matrix<float>&()>& master_fn, double density,
    int v) {
  const Key key{layer, static_cast<int>(format), density, v};
  MutexLock lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Fault hook fires before any mutation: a TransientFault here
    // leaves the cache byte-identical to before the call (no entry, no
    // pack count), so a scheduler retry re-runs a clean miss.
    if (injector_) injector_->OnPack();
    it = cache_.emplace(key, PackWeight(format, master_fn(), density, v))
             .first;
    ++packs_;
  }
  return it->second;
}

}  // namespace runtime
}  // namespace shflbw
