#include "runtime/weight_cache.h"

#include <chrono>
#include <vector>

#include "common/check.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace runtime {

PackedWeight PackWeight(Format format, const Matrix<float>& master,
                        double density, int v) {
  const auto t0 = std::chrono::steady_clock::now();
  PackedWeight p;
  p.format = format;
  switch (format) {
    case Format::kDense:
      // Kernels round operands through fp16 per call; rounding the
      // master once here keeps the execution path conversion-free.
      p.dense = RoundThroughFp16(master);
      break;
    case Format::kCsr:
      p.csr = CsrMatrix::FromDense(PruneUnstructured(master, density));
      break;
    case Format::kBsr:
      p.bsr = BsrMatrix::FromDense(PruneBlockWise(master, density, v), v);
      break;
    case Format::kBalanced24:
      p.balanced24 = Balanced24Matrix::FromDense(PruneBalanced24(master));
      break;
    case Format::kVectorWise:
      p.vw = VectorWiseMatrix::FromDense(PruneVectorWise(master, density, v),
                                         v);
      break;
    case Format::kShflBw:
      p.shflbw = PruneToShflBw(master, density, v);
      break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  p.pack_seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

const PackedWeight& PackedWeightCache::GetOrPack(int layer, Format format,
                                                 const Matrix<float>& master,
                                                 double density, int v) {
  return GetOrPack(
      layer, format, [&]() -> const Matrix<float>& { return master; },
      density, v);
}

const PackedWeight& PackedWeightCache::GetOrPack(
    int layer, Format format,
    const std::function<const Matrix<float>&()>& master_fn, double density,
    int v) {
  const Key key{layer, static_cast<int>(format), density, v};
  MutexLock lock(mu_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    // Fault hook fires before any mutation: a TransientFault here
    // leaves the cache byte-identical to before the call (no entry, no
    // pack count), so a scheduler retry re-runs a clean miss.
    if (injector_) injector_->OnPack();
    it = cache_.emplace(key, PackWeight(format, master_fn(), density, v))
             .first;
    ++packs_;
  }
  return it->second;
}

namespace {

template <typename T>
std::size_t VecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t PackedBytes(const PackedWeight& p) {
  std::size_t n = sizeof(PackedWeight);
  n += p.dense.size() * sizeof(float);
  n += VecBytes(p.csr.row_ptr) + VecBytes(p.csr.col_idx) +
       VecBytes(p.csr.values);
  n += VecBytes(p.bsr.block_row_ptr) + VecBytes(p.bsr.block_col_idx) +
       VecBytes(p.bsr.values);
  n += VecBytes(p.balanced24.values) + VecBytes(p.balanced24.meta);
  n += VecBytes(p.vw.group_col_ptr) + VecBytes(p.vw.col_idx) +
       VecBytes(p.vw.values);
  n += VecBytes(p.shflbw.vw.group_col_ptr) + VecBytes(p.shflbw.vw.col_idx) +
       VecBytes(p.shflbw.vw.values) + VecBytes(p.shflbw.storage_to_original);
  return n;
}

}  // namespace

std::size_t PackedWeightCache::ApproxBytes() const {
  MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, packed] : cache_) total += PackedBytes(packed);
  return total;
}

}  // namespace runtime
}  // namespace shflbw
