#include "runtime/engine.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/clock.h"
#include "common/rng.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_vector_wise.h"
#include "model/weight_synth.h"

namespace shflbw {
namespace runtime {

Engine::Engine(ModelDesc model, EngineOptions opts)
    : Engine(std::move(model), opts, std::make_shared<PackedWeightCache>()) {}

Engine::Engine(ModelDesc model, EngineOptions opts,
               std::shared_ptr<PackedWeightCache> cache)
    : model_(std::move(model)),
      opts_(opts),
      spec_(GetGpuSpec(opts.planner.arch)),
      cache_(std::move(cache)),
      masters_(model_.layers.size()) {
  SHFLBW_CHECK_MSG(!model_.layers.empty(), "model has no layers");
  SHFLBW_CHECK_MSG(cache_ != nullptr, "engine needs a weight cache");
}

const ExecutionPlan& Engine::Plan() {
  if (plan_) return *plan_;
  plan_ = PlanModel(model_, opts_.planner);
  if (opts_.planner.autotune && !opts_.planner.force_format) Autotune();
  return *plan_;
}

const Matrix<float>& Engine::MasterWeight(int layer) {
  auto& slot = masters_[static_cast<std::size_t>(layer)];
  if (!slot) {
    const LayerDesc& l = model_.layers[static_cast<std::size_t>(layer)];
    SynthWeightOptions synth;
    synth.seed = opts_.weight_seed + static_cast<std::uint64_t>(layer);
    slot = SynthesizeWeights(l.GemmM(), l.GemmK(), synth);
  }
  return *slot;
}

const PackedWeight& Engine::Packed(int layer, Format format) {
  // Lazy master: a cache hit (the steady state, and every layer of a
  // replica running behind a shared warmed cache) never synthesizes or
  // retains the dense master weight.
  return cache_->GetOrPack(
      layer, format,
      [&]() -> const Matrix<float>& { return MasterWeight(layer); },
      opts_.planner.density, opts_.planner.v);
}

KernelResult Engine::ExecuteGemm(const PackedWeight& w,
                                 const Matrix<float>& act) {
  switch (w.format) {
    case Format::kDense: return GemmTensorCore(w.dense, act, spec_);
    case Format::kCsr: return SpmmSputnik(w.csr, act, spec_);
    case Format::kBsr: return SpmmBsr(w.bsr, act, spec_);
    case Format::kBalanced24: return SpmmBalanced24(w.balanced24, act, spec_);
    case Format::kVectorWise: return SpmmVectorWise(w.vw, act, spec_);
    case Format::kShflBw: return SpmmShflBw(w.shflbw, act, spec_);
  }
  throw Error("unknown Format");
}

KernelResult Engine::ExecuteConv(const PackedWeight& w, const ConvShape& shape,
                                 const Tensor4& input) {
  switch (w.format) {
    case Format::kDense: return Conv2dDense(input, w.dense, shape, spec_);
    case Format::kShflBw: return Conv2dShflBw(input, w.shflbw, shape, spec_);
    case Format::kVectorWise: {
      // Implicit GEMM with the VW kernel: same engine as Shfl-BW minus
      // the row shuffle (the unfold is shared with Conv2dDense).
      const Matrix<float> b = Im2Col(input, shape);
      return SpmmVectorWise(w.vw, b, spec_);
    }
    default:
      throw Error("format " + FormatName(w.format) +
                  " has no conv implementation");
  }
}

const Matrix<float>& Engine::StreamGemmInput(int k, int n) {
  if (gemm_input_scratch_.rows() != k || gemm_input_scratch_.cols() != n) {
    gemm_input_scratch_ = Matrix<float>(k, n);
  }
  float* out = gemm_input_scratch_.data();
  const std::size_t total = gemm_input_scratch_.size();
  for (std::size_t i = 0; i < total; ++i) out[i] = StreamValue(i);
  return gemm_input_scratch_;
}

const Tensor4& Engine::StreamConvInput(const ConvShape& shape) {
  if (conv_input_scratch_.n != shape.batch ||
      conv_input_scratch_.c != shape.in_c ||
      conv_input_scratch_.h != shape.in_h ||
      conv_input_scratch_.w != shape.in_w) {
    conv_input_scratch_ =
        Tensor4(shape.batch, shape.in_c, shape.in_h, shape.in_w);
  }
  const std::size_t total = conv_input_scratch_.data.size();
  for (std::size_t i = 0; i < total; ++i) {
    conv_input_scratch_.data[i] = StreamValue(i);
  }
  return conv_input_scratch_;
}

RunResult Engine::Run() { return Run(opts_.activation_seed); }

RunResult Engine::Run(std::uint64_t activation_seed) {
  const ExecutionPlan& plan = Plan();
  const std::size_t packs_before = cache_->TotalPacks();

  RunResult result;
  // Fresh deterministic input stream per Run, so every Run of the same
  // engine (and of any engine with equal seeds) computes identical
  // values regardless of thread count or prior calls.
  {
    Rng rng(activation_seed);
    const LayerDesc& first = model_.layers.front();
    const std::size_t need =
        first.kind == LayerKind::kConv
            ? static_cast<std::size_t>(first.conv.batch) * first.conv.in_c *
                  first.conv.in_h * first.conv.in_w
            : static_cast<std::size_t>(first.gemm.k) * first.gemm.n;
    stream_.resize(need);
    for (float& x : stream_) x = static_cast<float>(rng.Normal());
  }

  for (std::size_t i = 0; i < model_.layers.size(); ++i) {
    const LayerDesc& l = model_.layers[i];
    const LayerPlan& lp = plan.layers[i];
    const PackedWeight& w = Packed(static_cast<int>(i), lp.format);

    double adapt0 = NowSeconds();
    KernelResult kr;
    double t0 = 0, t1 = 0;
    if (l.kind == LayerKind::kGemm) {
      const Matrix<float>& act = StreamGemmInput(l.gemm.k, l.gemm.n);
      t0 = NowSeconds();
      kr = ExecuteGemm(w, act);
      t1 = NowSeconds();
    } else {
      const ConvShape shape = ToConvShape(l.conv);
      const Tensor4& input = StreamConvInput(shape);
      t0 = NowSeconds();
      kr = ExecuteConv(w, shape, input);
      t1 = NowSeconds();
    }

    LayerRunRecord rec;
    rec.name = l.Name();
    rec.format = lp.format;
    rec.repeat = l.repeat;
    rec.seconds = t1 - t0;
    rec.useful_flops = kr.stats.useful_flops;
    rec.modeled_s = lp.modeled_s;
    rec.modeled_dense_s = lp.modeled_dense_s;
    result.kernel_seconds += rec.seconds;
    result.weighted_seconds += rec.seconds * l.repeat;
    result.layers.push_back(std::move(rec));

    // Stream this layer's output into the next layer's input at unit
    // RMS — the stand-in for the inter-layer normalization real models
    // carry; without it activations compound out of fp16 range within a
    // few layers. Serial fixed-order accumulation keeps it exact across
    // thread counts.
    double sum_sq = 0.0;
    const std::vector<float>& out = kr.c.storage();
    for (float x : out) sum_sq += static_cast<double>(x) * x;
    const float inv_rms =
        sum_sq > 0.0
            ? static_cast<float>(1.0 / std::sqrt(sum_sq / out.size()))
            : 1.0f;
    stream_.resize(out.size());
    for (std::size_t j = 0; j < out.size(); ++j) {
      stream_[j] = out[j] * inv_rms;
    }
    result.overhead_seconds += (t0 - adapt0) + (NowSeconds() - t1);

    if (i + 1 == model_.layers.size()) result.output = std::move(kr.c);
  }

  result.packs_performed = cache_->TotalPacks() - packs_before;
  return result;
}

double Engine::TimeLayerOnce(int layer, Format format) {
  const LayerDesc& l = model_.layers[static_cast<std::size_t>(layer)];
  const PackedWeight& w = Packed(layer, format);
  // Deterministic throwaway activations at this layer's shape.
  Rng rng(opts_.activation_seed ^ 0x7a11u);
  if (l.kind == LayerKind::kGemm) {
    const Matrix<float> act = rng.NormalMatrix(l.gemm.k, l.gemm.n);
    const double t0 = NowSeconds();
    (void)ExecuteGemm(w, act);
    return NowSeconds() - t0;
  }
  const ConvShape shape = ToConvShape(l.conv);
  Tensor4 input(shape.batch, shape.in_c, shape.in_h, shape.in_w);
  for (float& x : input.data) x = static_cast<float>(rng.Normal());
  const double t0 = NowSeconds();
  (void)ExecuteConv(w, shape, input);
  return NowSeconds() - t0;
}

void Engine::Autotune() {
  const int top_k = std::max(1, opts_.planner.autotune_top_k);
  for (LayerPlan& lp : plan_->layers) {
    int timed = 0;
    int best = -1;
    for (std::size_t c = 0; c < lp.candidates.size() && timed < top_k; ++c) {
      FormatCandidate& cand = lp.candidates[c];
      if (!cand.feasible) break;  // feasible candidates sort first
      cand.measured_s = TimeLayerOnce(lp.layer, cand.format);
      if (best < 0 || cand.measured_s <
                          lp.candidates[static_cast<std::size_t>(best)]
                              .measured_s) {
        best = static_cast<int>(c);
      }
      ++timed;
    }
    if (timed > 1) {
      const FormatCandidate& winner =
          lp.candidates[static_cast<std::size_t>(best)];
      lp.format = winner.format;
      lp.modeled_s = winner.modeled_s;
      lp.autotuned = true;
    }
  }
}

}  // namespace runtime
}  // namespace shflbw
