#include "runtime/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/clock.h"
#include "common/rng.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_vector_wise.h"
#include "model/weight_synth.h"

namespace shflbw {
namespace runtime {

Engine::Engine(ModelDesc model, EngineOptions opts)
    : Engine(std::move(model), opts, std::make_shared<PackedWeightCache>()) {}

Engine::Engine(ModelDesc model, EngineOptions opts,
               std::shared_ptr<PackedWeightCache> cache)
    : model_(std::move(model)),
      opts_(opts),
      spec_(GetGpuSpec(opts.planner.arch)),
      cache_(std::move(cache)),
      masters_(model_.layers.size()) {
  SHFLBW_CHECK_MSG(!model_.layers.empty(), "model has no layers");
  SHFLBW_CHECK_MSG(cache_ != nullptr, "engine needs a weight cache");
  // Pack-site fault injection rides the cache; engines sharing a cache
  // pass the same injector, so repeated installs are idempotent.
  if (opts_.fault_injector) cache_->SetFaultInjector(opts_.fault_injector);
}

const ExecutionPlan& Engine::Plan() {
  if (plan_) return *plan_;
  // Quality evaluation must score exactly the masters this engine
  // packs, so the engine's weight seed overrides whatever the caller
  // left in the quality options.
  PlannerOptions popts = opts_.planner;
  if (popts.quality.enabled) popts.quality.weight_seed = opts_.weight_seed;
  plan_ = PlanModel(model_, popts);
  // An aggregate quality floor is a whole-model constraint: re-ranking
  // any single layer empirically could silently break it, so autotune
  // is skipped there. Per-layer floors filter candidates instead (see
  // Autotune).
  const bool aggregate_floor =
      popts.quality.enabled &&
      popts.quality.floor == QualityOptions::Floor::kAggregate;
  if (opts_.planner.autotune && !opts_.planner.force_format &&
      !aggregate_floor) {
    Autotune();
  }
  return *plan_;
}

void Engine::AdoptPlan(ExecutionPlan plan) {
  SHFLBW_CHECK_MSG(!plan_, "AdoptPlan called after the engine already has a "
                           "plan");
  SHFLBW_CHECK_MSG(plan.layers.size() == model_.layers.size(),
                   "adopted plan has " << plan.layers.size()
                                       << " layers, model has "
                                       << model_.layers.size());
  plan_ = std::move(plan);
}

const Matrix<float>& Engine::MasterWeight(int layer) {
  auto& slot = masters_[static_cast<std::size_t>(layer)];
  if (!slot) {
    const LayerDesc& l = model_.layers[static_cast<std::size_t>(layer)];
    SynthWeightOptions synth;
    synth.seed = opts_.weight_seed + static_cast<std::uint64_t>(layer);
    slot = SynthesizeWeights(l.GemmM(), l.GemmK(), synth);
  }
  return *slot;
}

const PackedWeight& Engine::Packed(int layer, Format format, double density,
                                   int v) {
  // Lazy master: a cache hit (the steady state, and every layer of a
  // replica running behind a shared warmed cache) never synthesizes or
  // retains the dense master weight.
  return cache_->GetOrPack(
      layer, format,
      [&]() -> const Matrix<float>& { return MasterWeight(layer); }, density,
      v);
}

KernelResult Engine::ExecuteGemm(const PackedWeight& w,
                                 const Matrix<float>& act) {
  switch (w.format) {
    case Format::kDense: return GemmTensorCore(w.dense, act, spec_);
    case Format::kCsr: return SpmmSputnik(w.csr, act, spec_);
    case Format::kBsr: return SpmmBsr(w.bsr, act, spec_);
    case Format::kBalanced24: return SpmmBalanced24(w.balanced24, act, spec_);
    case Format::kVectorWise: return SpmmVectorWise(w.vw, act, spec_);
    case Format::kShflBw: return SpmmShflBw(w.shflbw, act, spec_);
  }
  throw Error("unknown Format");
}

KernelResult Engine::ExecuteConv(const PackedWeight& w, const ConvShape& shape,
                                 const Tensor4& input) {
  switch (w.format) {
    case Format::kDense: return Conv2dDense(input, w.dense, shape, spec_);
    case Format::kShflBw: return Conv2dShflBw(input, w.shflbw, shape, spec_);
    case Format::kVectorWise: {
      // Implicit GEMM with the VW kernel: same engine as Shfl-BW minus
      // the row shuffle (the unfold is shared with Conv2dDense).
      const Matrix<float> b = Im2Col(input, shape);
      return SpmmVectorWise(w.vw, b, spec_);
    }
    default:
      throw Error("format " + FormatName(w.format) +
                  " has no conv implementation");
  }
}

const Matrix<float>& Engine::FusedGemmInput(int k, int n, int width) {
  // Reshape, not reallocate-if-different: the exact logical extent
  // guarantees a narrower batch following a wider one cannot read the
  // wide batch's stale tail columns (Matrix::Reshape drops the tail).
  gemm_input_scratch_.Reshape(k, n * width);
  for (int j = 0; j < width; ++j) {
    const std::vector<float>& stream = streams_[static_cast<std::size_t>(j)];
    const std::size_t len = stream.size();
    // Element order within the block matches a width-1 run exactly:
    // row-major index i = r*n + c wrapped cyclically over the stream.
    std::size_t i = 0;
    for (int r = 0; r < k; ++r) {
      float* dst = gemm_input_scratch_.row(r) + static_cast<std::size_t>(j) * n;
      for (int c = 0; c < n; ++c, ++i) dst[c] = stream[i % len];
    }
  }
  return gemm_input_scratch_;
}

const Tensor4& Engine::FusedConvInput(const ConvShape& shape, int width) {
  conv_input_scratch_.Reshape(shape.batch * width, shape.in_c, shape.in_h,
                              shape.in_w);
  // NCHW with batch outermost: request j's images are the contiguous
  // range [j*per, (j+1)*per), filled in the same order a width-1 run
  // fills its whole tensor.
  const std::size_t per = static_cast<std::size_t>(shape.batch) *
                          shape.in_c * shape.in_h * shape.in_w;
  for (int j = 0; j < width; ++j) {
    const std::vector<float>& stream = streams_[static_cast<std::size_t>(j)];
    const std::size_t len = stream.size();
    float* dst = conv_input_scratch_.data.data() +
                 static_cast<std::size_t>(j) * per;
    for (std::size_t i = 0; i < per; ++i) dst[i] = stream[i % len];
  }
  return conv_input_scratch_;
}

const std::vector<Engine::KernelMetrics>& Engine::KernelMetricsHandles() {
  if (!kernel_metrics_.empty()) return kernel_metrics_;
  obs::Registry& reg = opts_.telemetry->registry();
  kernel_metrics_.reserve(plan_->layers.size());
  for (const LayerPlan& lp : plan_->layers) {
    // Full profiling key: the (layer, format, density, V) tuple the
    // roofline calibration wants, formatted once here and never on the
    // launch path.
    std::ostringstream key;
    key.precision(4);
    key << "{layer=\"" << lp.name << "\",format=\"" << FormatName(lp.format)
        << "\",density=\"" << lp.density << "\",v=\"" << lp.v << "\"}";
    // The drift row shares the full key: distinct ladder levels plan
    // the same layer name at different (format, density, V) — and
    // different modeled_s — so a layer-only label would make levels
    // fight over one gauge. Replicas at the same level share a plan,
    // so sharing the row is correct there.
    const std::string labels = key.str();
    KernelMetrics m;
    m.launches = &reg.GetCounter(
        "shflbw_kernel_launches_total" + labels,
        "Fused kernel launches per (layer, format, density, V)");
    m.seconds = &reg.GetCounter("shflbw_kernel_seconds_total" + labels,
                                "Fused kernel wall-clock seconds");
    m.requests = &reg.GetCounter("shflbw_kernel_requests_total" + labels,
                                 "Requests served by fused launches "
                                 "(sum of widths)");
    m.flops = &reg.GetCounter("shflbw_kernel_flops_total" + labels,
                              "Useful FLOPs retired by fused launches");
    m.measured = &reg.GetGauge("shflbw_plan_measured_seconds" + labels,
                               "Measured per-request layer seconds "
                               "(cumulative mean over launches)");
    m.drift = &reg.GetGauge("shflbw_plan_drift_ratio" + labels,
                            "Measured / planner-modeled per-request layer "
                            "seconds");
    reg.GetGauge("shflbw_plan_modeled_seconds" + labels,
                 "Planner cost-model per-request layer seconds")
        .Set(lp.modeled_s);
    kernel_metrics_.push_back(m);
  }
  return kernel_metrics_;
}

RunResult Engine::Run() { return Run(opts_.activation_seed); }

RunResult Engine::Run(std::uint64_t activation_seed) {
  // Width-1 fused run: one code path for serial and batched execution
  // means the bit-identity contract between them holds by construction.
  BatchRunResult batch = RunBatched({activation_seed});
  RunResult result;
  result.output = std::move(batch.outputs.front());
  result.kernel_seconds = batch.kernel_seconds;
  result.weighted_seconds = batch.weighted_seconds;
  result.overhead_seconds = batch.overhead_seconds;
  result.packs_performed = batch.packs_performed;
  result.layers = std::move(batch.layers);
  return result;
}

BatchRunResult Engine::RunBatched(const std::vector<std::uint64_t>& seeds) {
  return RunBatched(seeds, BatchContext{});
}

BatchRunResult Engine::RunBatched(const std::vector<std::uint64_t>& seeds,
                                  const BatchContext& ctx) {
  SHFLBW_CHECK_MSG(!seeds.empty(), "RunBatched needs at least one request");
  const int width = static_cast<int>(seeds.size());
  const ExecutionPlan& plan = Plan();
  const std::size_t packs_before = cache_->TotalPacks();
  obs::Telemetry* const tel = opts_.telemetry.get();
  const bool profile = tel != nullptr && tel->metrics_on();
  const bool tracing = tel != nullptr && tel->tracing_on();
  const std::vector<KernelMetrics>* km =
      profile ? &KernelMetricsHandles() : nullptr;

  BatchRunResult result;
  result.width = width;
  // Fresh deterministic input stream per request, exactly as a width-1
  // run of the same seed would build it: identical values regardless of
  // thread count, batch width, prior calls or co-batched neighbours.
  streams_.resize(static_cast<std::size_t>(width));
  {
    const LayerDesc& first = model_.layers.front();
    const std::size_t need =
        first.kind == LayerKind::kConv
            ? static_cast<std::size_t>(first.conv.batch) * first.conv.in_c *
                  first.conv.in_h * first.conv.in_w
            : static_cast<std::size_t>(first.gemm.k) * first.gemm.n;
    for (int j = 0; j < width; ++j) {
      Rng rng(seeds[static_cast<std::size_t>(j)]);
      std::vector<float>& stream = streams_[static_cast<std::size_t>(j)];
      stream.resize(need);
      for (float& x : stream) x = static_cast<float>(rng.Normal());
    }
  }

  for (std::size_t i = 0; i < model_.layers.size(); ++i) {
    const LayerDesc& l = model_.layers[i];
    const LayerPlan& lp = plan.layers[i];
    // Fault hook: one consultation per layer launch (may delay or throw
    // TransientFault — the scheduler's retry path re-enters RunBatched,
    // which rebuilds all streaming state, so a mid-model abort leaves
    // nothing to corrupt).
    if (opts_.fault_injector) opts_.fault_injector->OnKernelLaunch();
    const PackedWeight& w =
        Packed(static_cast<int>(i), lp.format, lp.density, lp.v);

    // ONE kernel launch per layer for all `width` requests: GEMM layers
    // widen N to n*width (request j = column block j), conv layers
    // widen the batch to batch*width (request j = batch block j, which
    // Im2Col turns into column block j of the implicit GEMM).
    double adapt0 = NowSeconds();
    KernelResult kr;
    double t0 = 0, t1 = 0;
    int block_n = 0;  // per-request output columns of this layer
    if (l.kind == LayerKind::kGemm) {
      block_n = l.gemm.n;
      const Matrix<float>& act = FusedGemmInput(l.gemm.k, l.gemm.n, width);
      t0 = NowSeconds();
      kr = ExecuteGemm(w, act);
      t1 = NowSeconds();
    } else {
      const ConvShape shape = ToConvShape(l.conv);
      block_n = shape.GemmN();
      ConvShape fused = shape;
      fused.batch = shape.batch * width;
      const Tensor4& input = FusedConvInput(shape, width);
      t0 = NowSeconds();
      kr = ExecuteConv(w, fused, input);
      t1 = NowSeconds();
    }

    LayerRunRecord rec;
    rec.name = l.Name();
    rec.format = lp.format;
    rec.repeat = l.repeat;
    rec.seconds = t1 - t0;
    rec.useful_flops = kr.stats.useful_flops;
    rec.modeled_s = lp.modeled_s;
    rec.modeled_dense_s = lp.modeled_dense_s;
    result.kernel_seconds += rec.seconds;
    result.weighted_seconds += rec.seconds * l.repeat;

    if (profile) {
      // One launch retired: bump the (layer, format, density, V) row
      // and refresh the per-request measured mean + drift against the
      // planner's model. All relaxed adds / stores — replicas sharing
      // the registry converge on the merged totals.
      const KernelMetrics& m = (*km)[i];
      m.launches->Add();
      m.seconds->Add(rec.seconds);
      m.requests->Add(width);
      m.flops->Add(rec.useful_flops);
      const double total_s = m.seconds->Value();
      const double total_req = m.requests->Value();
      if (total_req > 0) {
        const double per_request = total_s / total_req;
        m.measured->Set(per_request);
        if (lp.modeled_s > 0) m.drift->Set(per_request / lp.modeled_s);
      }
    }
    if (tracing) {
      obs::TraceEvent ev;
      ev.kind = obs::SpanKind::kKernel;
      ev.begin_seconds = t0;
      ev.end_seconds = t1;
      ev.batch_id = ctx.batch_id;
      ev.replica = ctx.replica;
      ev.level = ctx.level;
      ev.layer = static_cast<std::int32_t>(i);
      ev.width = width;
      ev.SetLabel(rec.name);
      ev.SetLabel2(FormatName(lp.format));
      tel->trace().Record(ev);
    }
    result.layers.push_back(std::move(rec));

    // Stream this layer's output into the next layer's input at unit
    // RMS — the stand-in for the inter-layer normalization real models
    // carry; without it activations compound out of fp16 range within a
    // few layers. The reduction runs PER REQUEST over its own column
    // block, visiting elements in the block's row-major order — the
    // exact value sequence (and thus the exact double accumulation and
    // inv_rms bit pattern) of a width-1 run of the same request. The
    // final layer streams into nothing, so it skips the pass entirely.
    const int rows = kr.c.rows();
    const bool last = i + 1 == model_.layers.size();
    for (int j = 0; !last && j < width; ++j) {
      double sum_sq = 0.0;
      for (int r = 0; r < rows; ++r) {
        const float* src = kr.c.row(r) + static_cast<std::size_t>(j) * block_n;
        for (int c = 0; c < block_n; ++c) {
          const float x = src[c];
          sum_sq += static_cast<double>(x) * x;
        }
      }
      const std::size_t block_size =
          static_cast<std::size_t>(rows) * block_n;
      const float inv_rms =
          sum_sq > 0.0
              ? static_cast<float>(1.0 / std::sqrt(sum_sq / block_size))
              : 1.0f;
      std::vector<float>& stream = streams_[static_cast<std::size_t>(j)];
      stream.resize(block_size);
      for (int r = 0; r < rows; ++r) {
        const float* src = kr.c.row(r) + static_cast<std::size_t>(j) * block_n;
        float* dst = stream.data() + static_cast<std::size_t>(r) * block_n;
        for (int c = 0; c < block_n; ++c) dst[c] = src[c] * inv_rms;
      }
    }
    result.overhead_seconds += (t0 - adapt0) + (NowSeconds() - t1);

    if (last) {
      // De-interleave the fused output into per-request matrices. At
      // width 1 the whole matrix IS request 0's block: move it, keeping
      // the serial Run path zero-copy as before.
      result.outputs.reserve(static_cast<std::size_t>(width));
      if (width == 1) {
        result.outputs.push_back(std::move(kr.c));
      } else {
        for (int j = 0; j < width; ++j) {
          Matrix<float> out(rows, block_n);
          for (int r = 0; r < rows; ++r) {
            const float* src =
                kr.c.row(r) + static_cast<std::size_t>(j) * block_n;
            std::copy(src, src + block_n, out.row(r));
          }
          result.outputs.push_back(std::move(out));
        }
      }
    }
  }

  result.packs_performed = cache_->TotalPacks() - packs_before;
  return result;
}

double Engine::TimeLayerOnce(int layer, const FormatCandidate& cand) {
  const LayerDesc& l = model_.layers[static_cast<std::size_t>(layer)];
  const PackedWeight& w = Packed(layer, cand.format, cand.density, cand.v);
  // Deterministic throwaway activations at this layer's shape.
  Rng rng(opts_.activation_seed ^ 0x7a11u);
  if (l.kind == LayerKind::kGemm) {
    const Matrix<float> act = rng.NormalMatrix(l.gemm.k, l.gemm.n);
    const double t0 = NowSeconds();
    (void)ExecuteGemm(w, act);
    return NowSeconds() - t0;
  }
  const ConvShape shape = ToConvShape(l.conv);
  Tensor4 input(shape.batch, shape.in_c, shape.in_h, shape.in_w);
  for (float& x : input.data) x = static_cast<float>(rng.Normal());
  const double t0 = NowSeconds();
  (void)ExecuteConv(w, shape, input);
  return NowSeconds() - t0;
}

void Engine::Autotune() {
  const QualityOptions& q = opts_.planner.quality;
  const bool floor_per_layer =
      q.enabled && q.floor == QualityOptions::Floor::kPerLayer;
  for (LayerPlan& lp : plan_->layers) {
    // Only feasible candidates can be timed, and under a per-layer
    // quality floor only candidates MEETING the floor are eligible —
    // autotune re-ranks within the quality-qualified set, it never
    // trades retained importance away for measured speed. Clamp top_k
    // to the eligible count, so a generous autotune_top_k never implies
    // more measurements than were actually taken.
    std::vector<std::size_t> eligible;
    for (std::size_t c = 0; c < lp.candidates.size(); ++c) {
      const FormatCandidate& cand = lp.candidates[c];
      if (!cand.feasible) break;  // sorted: feasible prefix
      if (floor_per_layer &&
          cand.retained_ratio + 1e-12 < q.min_retained_ratio) {
        continue;
      }
      eligible.push_back(c);
    }
    const std::size_t top_k = std::min(
        static_cast<std::size_t>(std::max(1, opts_.planner.autotune_top_k)),
        eligible.size());
    if (top_k < 2) continue;  // nothing to re-rank; autotuned stays false
    std::size_t best = eligible.size();
    for (std::size_t c = 0; c < top_k; ++c) {
      FormatCandidate& cand = lp.candidates[eligible[c]];
      cand.measured_s = TimeLayerOnce(lp.layer, cand);
      if (best == eligible.size() ||
          cand.measured_s < lp.candidates[eligible[best]].measured_s) {
        best = c;
      }
    }
    const FormatCandidate& winner = lp.candidates[eligible[best]];
    // Report a layer as autotuned only when the winner was genuinely
    // measured: a 0-second sample means the clock could not resolve the
    // launch, and re-ranking on it would present unmeasured candidates
    // (measured_s == 0, exactly like the skipped infeasible ones) as
    // empirical winners in the plan summary.
    if (winner.measured_s <= 0.0) continue;
    lp.format = winner.format;
    lp.density = winner.density;
    lp.v = winner.v;
    lp.modeled_s = winner.modeled_s;
    lp.retained_ratio = winner.retained_ratio;
    lp.autotuned = true;
  }
}

}  // namespace runtime
}  // namespace shflbw
