#include "runtime/planner.h"

#include <algorithm>
#include <cmath>

#include "arch/cost_model.h"
#include "common/check.h"
#include "kernels/conv2d.h"
#include "kernels/kernel_registry.h"
#include "quality/quality_planner.h"

namespace shflbw {
namespace runtime {
namespace {

std::optional<double> ModeledConvSeconds(const ConvLayerSpec& l,
                                         Format format,
                                         const PlannerOptions& opts,
                                         const GpuSpec& spec,
                                         std::string* why) {
  const ConvShape shape = ToConvShape(l);
  const CostModel model(spec);
  switch (format) {
    case Format::kDense:
      return model.Seconds(Conv2dDenseStats(shape, spec));
    case Format::kShflBw:
    case Format::kVectorWise: {
      if (shape.GemmM() % opts.v != 0) {
        if (why) *why = "out_c not divisible by V";
        return std::nullopt;
      }
      const KernelStats s =
          format == Format::kShflBw
              ? Conv2dShflBwStats(shape, opts.density, opts.v, spec)
              : Conv2dVectorWiseStats(shape, opts.density, opts.v, spec);
      return model.Seconds(s);
    }
    default:
      if (why) *why = "no conv implementation";  // §6.2
      return std::nullopt;
  }
}

}  // namespace

void ValidatePlannerOptions(const PlannerOptions& opts) {
  SHFLBW_CHECK_MSG(opts.density > 0.0 && opts.density <= 1.0,
                   "PlannerOptions.density must be in (0, 1] — a kept "
                   "density, not a sparsity — got "
                       << opts.density);
  SHFLBW_CHECK_MSG(opts.v >= 1,
                   "PlannerOptions.v (vector/block granularity) must be "
                   ">= 1, got "
                       << opts.v);
  SHFLBW_CHECK_MSG(opts.autotune_top_k >= 1,
                   "PlannerOptions.autotune_top_k must be >= 1 (the number "
                   "of top candidates to time), got "
                       << opts.autotune_top_k);
  const QualityOptions& q = opts.quality;
  if (!q.enabled) return;
  SHFLBW_CHECK_MSG(!opts.force_format,
                   "PlannerOptions.force_format pins every layer, which "
                   "leaves the quality-aware search nothing to decide; "
                   "disable quality.enabled for pinned baselines");
  SHFLBW_CHECK_MSG(q.min_retained_ratio >= 0.0 && q.min_retained_ratio <= 1.0,
                   "QualityOptions.min_retained_ratio must be in [0, 1] "
                   "(a retained-score ratio), got "
                       << q.min_retained_ratio);
  SHFLBW_CHECK_MSG(!q.density_ladder.empty(),
                   "QualityOptions.density_ladder must name at least one "
                   "kept density to search");
  for (double d : q.density_ladder) {
    SHFLBW_CHECK_MSG(d > 0.0 && d <= 1.0,
                     "QualityOptions.density_ladder entries must be in "
                     "(0, 1], got "
                         << d);
  }
  for (int v : q.v_ladder) {
    SHFLBW_CHECK_MSG(v >= 1,
                     "QualityOptions.v_ladder entries must be >= 1, got "
                         << v);
  }
}

std::optional<double> ModeledLayerSeconds(const LayerDesc& l, Format format,
                                          const PlannerOptions& opts,
                                          std::string* why) {
  const GpuSpec& spec = GetGpuSpec(opts.arch);
  if (l.kind == LayerKind::kConv) {
    return ModeledConvSeconds(l.conv, format, opts, spec, why);
  }

  LayerProblem p{l.gemm.m, l.gemm.n, l.gemm.k,
                 format == Format::kDense ? 1.0 : opts.density, opts.v};
  if (format == Format::kBalanced24) {
    // The sparse tensor-core fixes density at exactly 0.5; selecting it
    // at any other pruning budget would execute a different model.
    if (std::abs(opts.density - 0.5) > 1e-9) {
      if (why) *why = "2:4 fixes density at 0.5";
      return std::nullopt;
    }
    p.density = 0.5;
  }
  const auto seconds = LayerSeconds(FormatKernelClass(format), p, spec);
  if (!seconds && why) {
    switch (format) {
      case Format::kBsr:
        *why = "m or k not divisible by V";
        break;
      case Format::kVectorWise:
      case Format::kShflBw:
        *why = "m not divisible by V";
        break;
      case Format::kBalanced24:
        *why = spec.arch != GpuArch::kA100 ? "sparse tensor-core is A100-only"
                                           : "k not divisible by 4";
        break;
      default:
        *why = "stats model undefined";
        break;
    }
  }
  return seconds;
}

LayerPlan PlanLayer(const LayerDesc& l, int index,
                    const PlannerOptions& opts) {
  LayerPlan plan;
  plan.name = l.Name();
  plan.layer = index;
  plan.repeat = l.repeat;

  const auto dense_s = ModeledLayerSeconds(l, Format::kDense, opts);
  SHFLBW_CHECK_MSG(dense_s.has_value(),
                   "dense must be modelable for layer " << plan.name);
  plan.modeled_dense_s = *dense_s;

  for (Format f : AllFormats()) {
    FormatCandidate c;
    c.format = f;
    c.density = f == Format::kDense ? 1.0 : opts.density;
    c.v = opts.v;
    if (f == Format::kDense) c.retained_ratio = 1.0;
    const bool excluded =
        std::find(opts.exclude.begin(), opts.exclude.end(), f) !=
        opts.exclude.end();
    if (opts.force_format && f != *opts.force_format) {
      c.why = "excluded by force_format";
    } else if (excluded && f != Format::kDense) {
      c.why = "excluded by options";
    } else {
      const auto s = ModeledLayerSeconds(l, f, opts, &c.why);
      if (s) {
        c.feasible = true;
        c.modeled_s = *s;
      }
    }
    plan.candidates.push_back(std::move(c));
  }
  // Feasible first, fastest first; ties and infeasibles keep the stable
  // AllFormats order so the ranking is fully deterministic.
  std::stable_sort(plan.candidates.begin(), plan.candidates.end(),
                   [](const FormatCandidate& a, const FormatCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     return a.modeled_s < b.modeled_s;
                   });
  SHFLBW_CHECK_MSG(!plan.candidates.empty() && plan.candidates[0].feasible,
                   "no feasible format for layer " << plan.name);
  plan.format = plan.candidates[0].format;
  plan.density = plan.candidates[0].density;
  plan.v = plan.candidates[0].v;
  plan.modeled_s = plan.candidates[0].modeled_s;
  plan.retained_ratio = plan.candidates[0].retained_ratio;
  return plan;
}

ExecutionPlan PlanModel(const ModelDesc& model, const PlannerOptions& opts) {
  ValidatePlannerOptions(opts);
  if (opts.quality.enabled) return quality::PlanModelQualityAware(model, opts);
  ExecutionPlan plan;
  plan.model = model.name;
  plan.gpu = GetGpuSpec(opts.arch).name;
  plan.options = opts;
  for (std::size_t i = 0; i < model.layers.size(); ++i) {
    plan.layers.push_back(
        PlanLayer(model.layers[i], static_cast<int>(i), opts));
  }
  return plan;
}

double ExecutionPlan::ModeledTotalSeconds() const {
  double total = 0.0;
  for (const LayerPlan& l : layers) total += l.modeled_s * l.repeat;
  return total;
}

double ExecutionPlan::ModeledDenseSeconds() const {
  double total = 0.0;
  for (const LayerPlan& l : layers) total += l.modeled_dense_s * l.repeat;
  return total;
}

double ExecutionPlan::AggregateRetainedRatio() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (const LayerPlan& l : layers) {
    if (l.retained_ratio < 0.0 || l.total_score <= 0.0) return -1.0;
    const double w = l.total_score * l.repeat;
    weighted += w * l.retained_ratio;
    weight += w;
  }
  return weight > 0.0 ? weighted / weight : -1.0;
}

double ExecutionPlan::MinRetainedRatio() const {
  double min = 2.0;
  for (const LayerPlan& l : layers) {
    if (l.retained_ratio < 0.0) return -1.0;
    min = std::min(min, l.retained_ratio);
  }
  return layers.empty() ? -1.0 : min;
}

}  // namespace runtime
}  // namespace shflbw
