// The packing phase of the runtime: converts a layer's master weight
// into the selected format exactly once and keeps the packed bytes
// keyed by (layer, format), so repeated Run calls — and the autotune
// pass, which packs several candidates per layer — never re-convert.
// This is the offline processing of Fig. 4 step (a) hoisted out of the
// execution path.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "common/matrix.h"
#include "format/balanced24.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/shfl_bw.h"
#include "format/vector_wise.h"
#include "runtime/format.h"

namespace shflbw {
namespace runtime {

/// A weight converted and pruned for one format. Only the member
/// matching `format` is populated (dense additionally holds the
/// fp16-rounded master for Format::kDense).
struct PackedWeight {
  Format format = Format::kDense;
  Matrix<float> dense;
  CsrMatrix csr;
  BsrMatrix bsr;
  Balanced24Matrix balanced24;
  VectorWiseMatrix vw;
  ShflBwMatrix shflbw;
  double pack_seconds = 0;  // wall-clock spent pruning + converting
};

/// Pack-once cache keyed by (layer index, format).
class PackedWeightCache {
 public:
  /// Returns the packed weight, converting `master` on first use.
  /// `density` and `v` parameterize the sparse prune (they are fixed
  /// per engine, so they are not part of the key).
  const PackedWeight& GetOrPack(int layer, Format format,
                                const Matrix<float>& master, double density,
                                int v);

  bool Contains(int layer, Format format) const {
    return cache_.count({layer, static_cast<int>(format)}) > 0;
  }

  /// Number of conversions performed over the cache's lifetime. The
  /// engine snapshots this around Run to prove steady-state runs pack
  /// nothing.
  std::size_t TotalPacks() const { return packs_; }
  std::size_t Size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  std::map<std::pair<int, int>, PackedWeight> cache_;
  std::size_t packs_ = 0;
};

/// Prunes `master` to `format` at (density, v) and converts the result
/// into the packed representation. Deterministic (the Shfl-BW search
/// seed is fixed).
PackedWeight PackWeight(Format format, const Matrix<float>& master,
                        double density, int v);

}  // namespace runtime
}  // namespace shflbw
