// The packing phase of the runtime: converts a layer's master weight
// into the selected format exactly once and keeps the packed bytes
// keyed by (layer, format, density, v), so repeated Run calls — and
// the autotune pass, which packs several candidates per layer — never
// re-convert. This is the offline processing of Fig. 4 step (a)
// hoisted out of the execution path. Because the prune parameters are
// part of the key, quality-aware plans with PER-LAYER densities (each
// LayerPlan carries its own density/v) pack into the same cache as
// global-density plans with no collisions: layer 3 at 12.5% Shfl-BW
// and layer 3 at 25% Shfl-BW are distinct entries.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <tuple>

#include "common/matrix.h"
#include "common/thread_annotations.h"
#include "format/balanced24.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/shfl_bw.h"
#include "format/vector_wise.h"
#include "runtime/fault_injection.h"
#include "runtime/format.h"

namespace shflbw {
namespace runtime {

/// A weight converted and pruned for one format. Only the member
/// matching `format` is populated (dense additionally holds the
/// fp16-rounded master for Format::kDense).
struct PackedWeight {
  Format format = Format::kDense;
  Matrix<float> dense;
  CsrMatrix csr;
  BsrMatrix bsr;
  Balanced24Matrix balanced24;
  VectorWiseMatrix vw;
  ShflBwMatrix shflbw;
  double pack_seconds = 0;  // wall-clock spent pruning + converting
};

/// Pack-once cache keyed by (layer index, format, density, v).
///
/// Thread-safe: a single cache may be shared by multiple Engine
/// replicas (the BatchServer does exactly this) calling GetOrPack
/// concurrently. The prune parameters are part of the key — two engines
/// sharing the cache with different density or V settings get distinct
/// entries instead of silently serving each other's packed weights.
/// Returned references are stable for the lifetime of the cache (map
/// nodes never move); only Clear() invalidates them, so don't call
/// Clear() while replicas are running.
class PackedWeightCache {
 public:
  /// Returns the packed weight, converting `master` on first use.
  /// Concurrent callers with the same key pack at most once; the
  /// conversion itself runs under the cache lock, so replicas warming
  /// the same model serialize through the pack phase and every later
  /// lookup is a short locked map find.
  const PackedWeight& GetOrPack(int layer, Format format,
                                const Matrix<float>& master, double density,
                                int v) SHFLBW_EXCLUDES(mu_);

  /// Lazy-master variant: `master_fn` is invoked only on a cache miss,
  /// so a hit never materializes the dense master weight. This is what
  /// lets BatchServer replicas after a warmup serve entirely from the
  /// shared cache without each synthesizing (and retaining) its own
  /// copy of every layer's dense weights.
  const PackedWeight& GetOrPack(
      int layer, Format format,
      const std::function<const Matrix<float>&()>& master_fn, double density,
      int v) SHFLBW_EXCLUDES(mu_);

  [[nodiscard]] bool Contains(int layer, Format format, double density,
                              int v) const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_.count(Key{layer, static_cast<int>(format), density, v}) > 0;
  }

  /// Number of conversions performed over the cache's lifetime. The
  /// engine snapshots this around Run to prove steady-state runs pack
  /// nothing.
  [[nodiscard]] std::size_t TotalPacks() const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return packs_;
  }
  [[nodiscard]] std::size_t Size() const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cache_.size();
  }

  /// Approximate resident bytes of every packed entry (payload vectors
  /// only, not map-node overhead). Feeds the statusz cache section so
  /// an operator can see what the pack-once policy is holding.
  [[nodiscard]] std::size_t ApproxBytes() const SHFLBW_EXCLUDES(mu_);
  void Clear() SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cache_.clear();
  }

  /// Installs a fault injector consulted on every cache miss, BEFORE
  /// the conversion runs or the cache mutates: an injected pack failure
  /// throws TransientFault out of GetOrPack and leaves no partial entry
  /// behind, so a retry sees a clean miss. Engines sharing this cache
  /// install the same injector (EngineOptions::fault_injector); nullptr
  /// uninstalls.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector)
      SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    injector_ = std::move(injector);
  }

 private:
  using Key = std::tuple<int, int, double, int>;  // layer, format, density, v

  /// Rank kLockRankCache: may be acquired while no lock or only
  /// earlier-ranked locks are held; packing under it calls only
  /// lock-free pruners/converters (no ParallelFor — the pool mutex is
  /// rank 10, which would invert the order).
  mutable Mutex mu_{kLockRankCache};
  std::map<Key, PackedWeight> cache_ SHFLBW_GUARDED_BY(mu_);
  std::size_t packs_ SHFLBW_GUARDED_BY(mu_) = 0;
  std::shared_ptr<FaultInjector> injector_ SHFLBW_GUARDED_BY(mu_);
};

/// Prunes `master` to `format` at (density, v) and converts the result
/// into the packed representation. Deterministic (the Shfl-BW search
/// seed is fixed).
PackedWeight PackWeight(Format format, const Matrix<float>& master,
                        double density, int v);

}  // namespace runtime
}  // namespace shflbw
