#include "runtime/model_desc.h"

#include "common/check.h"

namespace shflbw {
namespace runtime {

ConvShape ToConvShape(const ConvLayerSpec& l) {
  ConvShape s;
  s.batch = l.batch;
  s.in_c = l.in_c;
  s.in_h = l.in_h;
  s.in_w = l.in_w;
  s.out_c = l.out_c;
  s.kh = l.kh;
  s.kw = l.kw;
  s.stride = l.stride;
  s.pad = l.pad;
  return s;
}

double ModelDesc::TotalFlops() const {
  double total = 0.0;
  for (const LayerDesc& l : layers) total += l.Flops() * l.repeat;
  return total;
}

ModelDesc ModelDesc::Transformer(const TransformerConfig& cfg) {
  const auto specs = TransformerLayers(cfg);
  const auto counts = TransformerLayerCounts(cfg);
  SHFLBW_CHECK(specs.size() == counts.size());
  ModelDesc m;
  m.name = "transformer";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    LayerDesc l;
    l.kind = LayerKind::kGemm;
    l.gemm = specs[i];
    l.repeat = counts[i];
    m.layers.push_back(std::move(l));
  }
  return m;
}

ModelDesc ModelDesc::Gnmt(const GnmtConfig& cfg) {
  const auto specs = GnmtLayers(cfg);
  const auto counts = GnmtLayerCounts(cfg);
  SHFLBW_CHECK(specs.size() == counts.size());
  ModelDesc m;
  m.name = "gnmt";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    LayerDesc l;
    l.kind = LayerKind::kGemm;
    l.gemm = specs[i];
    l.repeat = counts[i];
    m.layers.push_back(std::move(l));
  }
  return m;
}

ModelDesc ModelDesc::ResNet50(const ResNet50Config& cfg) {
  ModelDesc m;
  m.name = "resnet50";
  for (const ConvLayerSpec& spec : ResNet50Layers(cfg)) {
    LayerDesc l;
    l.kind = LayerKind::kConv;
    l.conv = spec;
    l.repeat = spec.repeat;
    l.conv.repeat = 1;  // occurrence count lives on LayerDesc
    m.layers.push_back(std::move(l));
  }
  return m;
}

}  // namespace runtime
}  // namespace shflbw
