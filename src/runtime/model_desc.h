// Whole-model layer lists for the runtime: a uniform wrapper over the
// GEMM (Transformer, GNMT) and convolution (ResNet50) layer specs of
// src/model/, with occurrence counts carried per layer. The engine
// executes each distinct layer once per Run and weights aggregates by
// `repeat`, exactly the Fig. 6 accounting ("sum of compute-intensive
// layers", §6.1).
#pragma once

#include <string>
#include <vector>

#include "kernels/conv2d.h"
#include "model/gnmt.h"
#include "model/layer_spec.h"
#include "model/resnet50.h"
#include "model/transformer.h"

namespace shflbw {
namespace runtime {

enum class LayerKind { kGemm, kConv };

/// One compute-intensive layer. For kGemm only `gemm` is meaningful;
/// for kConv only `conv` (with conv.repeat folded out into `repeat`).
struct LayerDesc {
  LayerKind kind = LayerKind::kGemm;
  GemmLayerSpec gemm;
  ConvLayerSpec conv;
  int repeat = 1;  // occurrences of this shape in the full model

  [[nodiscard]] const std::string& Name() const {
    return kind == LayerKind::kGemm ? gemm.name : conv.name;
  }
  /// Layer dims viewed as the (implicit) GEMM C[m x n] = W[m x k] * X.
  [[nodiscard]] int GemmM() const {
    return kind == LayerKind::kGemm ? gemm.m : conv.GemmM();
  }
  [[nodiscard]] int GemmN() const {
    return kind == LayerKind::kGemm ? gemm.n : conv.GemmN();
  }
  [[nodiscard]] int GemmK() const {
    return kind == LayerKind::kGemm ? gemm.k : conv.GemmK();
  }
  /// Dense FLOPs of ONE invocation (repeat not folded in).
  [[nodiscard]] double Flops() const {
    return 2.0 * GemmM() * static_cast<double>(GemmN()) * GemmK();
  }
};

/// View of a conv layer spec as the kernel-facing ConvShape (repeat is
/// not part of the shape).
ConvShape ToConvShape(const ConvLayerSpec& l);

/// A model = named ordered layer list. Layers execute in order; the
/// engine streams each layer's output into the next layer's input.
struct ModelDesc {
  std::string name;
  std::vector<LayerDesc> layers;

  /// Dense FLOPs of the full model (repeat-weighted).
  [[nodiscard]] double TotalFlops() const;

  static ModelDesc Transformer(const TransformerConfig& cfg = {});
  static ModelDesc Gnmt(const GnmtConfig& cfg = {});
  static ModelDesc ResNet50(const ResNet50Config& cfg = {});
};

}  // namespace runtime
}  // namespace shflbw
