// Overload control plane for the batch-serving layer: typed admission
// verdicts, QoS classes, deadline feasibility, and the hysteresis
// controller that walks the quality-degradation ladder.
//
// The serving problem this solves: a FIFO queue with blocking Submit
// survives bursts by making *callers* wait, which converts overload
// into unbounded client latency. Production-shape serving instead
// (1) rejects work it can already prove will miss its deadline
// (admission control), (2) drops work whose deadline expired while it
// queued (seal-time shedding, server.cpp), and (3) trades quality for
// speed under sustained pressure by shifting new batches down a ladder
// of quality-aware plans (graceful degradation) — the Clipper-style
// deadline-driven latency/accuracy tradeoff as a runtime policy.
//
// Everything here is deliberately mechanism, not thread-safety: both
// controllers are plain objects the BatchServer guards with its queue
// mutex. That keeps every decision deterministic given the observation
// sequence, which is what the tests exercise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shflbw {
namespace runtime {

/// Typed verdict of Submit/TrySubmit — replaces the old bare bool,
/// which could not distinguish a full queue from a shut-down server.
enum class SubmitStatus {
  kAccepted = 0,
  /// Non-blocking submit found the queue (or the QoS class's share of
  /// it) at capacity.
  kRejectedQueueFull,
  /// The request's deadline cannot be met even if everything queued
  /// ahead of it is served at the estimated service rate — admitting it
  /// would only burn a launch on work that is already dead.
  kRejectedInfeasibleDeadline,
  /// The server is shut down (or shut down while the submit was
  /// blocked waiting for queue space).
  kRejectedShutdown,
};

const char* SubmitStatusName(SubmitStatus status);

/// Request priority class. Orthogonal to deadlines: the deadline says
/// *when* the answer stops being useful, the QoS class says how hard
/// the server should try to produce it under pressure.
enum class QoS {
  /// Admitted only while the queue is below its best-effort share
  /// (AdmissionPolicy::best_effort_occupancy) — the first traffic to be
  /// pushed back when load rises.
  kBestEffort = 0,
  /// Default: full queue share, deadline-checked at admission and shed
  /// at seal time once expired.
  kStandard,
  /// Never shed and never rejected for deadline infeasibility: served
  /// even expired (the caller wants the answer regardless — think
  /// offline evaluation riding a live server).
  kCritical,
};

const char* QoSName(QoS qos);

struct AdmissionPolicy {
  /// Reject requests whose deadline is provably unmeetable at submit
  /// time (kCritical is exempt). Estimation is conservative — see
  /// AdmissionController::DeadlineFeasible.
  bool reject_infeasible_deadlines = true;
  /// Fraction of queue_capacity open to QoS::kBestEffort requests
  /// (at least one slot). 1.0 gives best-effort the whole queue.
  double best_effort_occupancy = 0.5;
  /// Fixed per-request service-time estimate in seconds; 0 = learn it
  /// from observed completions via EWMA. The override exists for tests
  /// and for operators who know their model's latency.
  double service_estimate_seconds = 0;
  /// EWMA smoothing factor for the learned estimate, in (0, 1].
  double ewma_alpha = 0.2;
};

/// Admission decisions for the BatchServer. Not thread-safe on its
/// own: the server's member is declared SHFLBW_GUARDED_BY(mu_) (see
/// server.h and common/thread_annotations.h), so every call site is
/// proven under the queue mutex at compile time.
class AdmissionController {
 public:
  AdmissionController() = default;
  AdmissionController(AdmissionPolicy policy, int replicas);

  /// Queue slots this QoS class may occupy (<= queue_capacity, >= 1).
  [[nodiscard]] std::size_t CapacityFor(QoS qos,
                                        std::size_t queue_capacity) const;

  /// Whether a request submitted now, behind `queue_depth` waiting
  /// requests, can still meet `deadline_seconds` (relative to now).
  /// Uses eta = estimate * (1 + depth / replicas): the request's own
  /// service time plus its share of the backlog ahead of it. With no
  /// estimate yet (no completions observed, no override) everything is
  /// feasible — admission control must fail open, not closed.
  [[nodiscard]] bool DeadlineFeasible(QoS qos, double deadline_seconds,
                                      std::size_t queue_depth) const;

  /// Feeds one observed per-request service time (a fused batch
  /// contributes run_seconds / width) into the EWMA.
  void RecordServiceTime(double seconds);

  /// Current per-request estimate: the policy override if set, else
  /// the EWMA (0 until the first observation).
  [[nodiscard]] double EstimatedServiceSeconds() const;

  [[nodiscard]] const AdmissionPolicy& policy() const { return policy_; }

 private:
  AdmissionPolicy policy_;
  int replicas_ = 1;
  double ewma_seconds_ = 0;
};

struct DegradationPolicy {
  /// Quality floors of the plan ladder, strictly descending, each in
  /// (0, 1]: level 0 (the ladder top) is normal service, higher levels
  /// are progressively sparser/faster plans compiled through the
  /// quality-aware planner. Empty = degradation off (single plan).
  std::vector<double> ladder_floors;
  /// Queue occupancy (depth / capacity) at or above which a seal
  /// observation counts as pressure.
  double degrade_queue_fraction = 0.75;
  /// Occupancy at or below which a seal observation counts as relief
  /// (must be < degrade_queue_fraction — the gap is the hysteresis
  /// band that keeps the controller from flapping).
  double upgrade_queue_fraction = 0.25;
  /// Relief additionally requires the windowed p99 latency/deadline
  /// ratio to sit below 1 - deadline_slack_fraction: upgrading is only
  /// safe with real slack, not at the cliff edge.
  double deadline_slack_fraction = 0.25;
  /// Consecutive pressure (relief) seals required before shifting one
  /// level down (up) the ladder.
  int hysteresis_seals = 3;
  /// Completed-request observations kept for the p99 computation.
  std::size_t latency_window = 64;
};

/// Hysteresis controller over the plan ladder. Observes queue depth at
/// every batch seal and the latency-vs-deadline ratio of every
/// completed deadline-carrying request; shifts the serving level one
/// step at a time after `hysteresis_seals` consecutive agreeing
/// observations. Not thread-safe on its own: like AdmissionController,
/// the server's member carries SHFLBW_GUARDED_BY(mu_), so misuse
/// outside the queue mutex is a compile error under Clang.
class DegradationController {
 public:
  DegradationController() = default;
  DegradationController(DegradationPolicy policy, int levels);

  [[nodiscard]] int levels() const { return levels_; }
  [[nodiscard]] int level() const { return level_; }

  /// Feeds one completed request (latency in seconds, deadline relative
  /// to submit; deadline <= 0 = none, ignored for the p99 window).
  void RecordCompletion(double latency_seconds, double deadline_seconds);

  /// Called when a replica seals a batch; returns the plan level the
  /// batch should run at. Pressure = occupancy >= degrade fraction OR
  /// windowed p99 latency/deadline ratio > 1 (deadlines being missed);
  /// relief = occupancy <= upgrade fraction AND p99 ratio leaves
  /// deadline_slack_fraction of slack (vacuously true with no deadline
  /// traffic). The latency window resets on every shift so a new level
  /// is judged on its own completions, not its predecessor's.
  int OnSeal(std::size_t queue_depth, std::size_t queue_capacity);

  /// Windowed p99 of latency / deadline over completed deadline-
  /// carrying requests; -1 with no samples. > 1 means p99 misses.
  [[nodiscard]] double WindowP99Ratio() const;

  [[nodiscard]] std::uint64_t downshifts() const { return downshifts_; }
  [[nodiscard]] std::uint64_t upshifts() const { return upshifts_; }

 private:
  DegradationPolicy policy_;
  int levels_ = 1;
  int level_ = 0;
  int pressure_streak_ = 0;
  int relief_streak_ = 0;
  std::uint64_t downshifts_ = 0;
  std::uint64_t upshifts_ = 0;
  std::vector<double> ratios_;   // ring buffer, latency/deadline
  std::size_t ratio_next_ = 0;   // ring write cursor
};

}  // namespace runtime
}  // namespace shflbw
