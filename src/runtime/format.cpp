#include "runtime/format.h"

#include "common/check.h"

namespace shflbw {
namespace runtime {

const std::vector<Format>& AllFormats() {
  static const std::vector<Format> kAll{
      Format::kDense,      Format::kCsr,        Format::kBsr,
      Format::kBalanced24, Format::kVectorWise, Format::kShflBw,
  };
  return kAll;
}

std::string FormatName(Format f) {
  switch (f) {
    case Format::kDense: return "dense";
    case Format::kCsr: return "csr";
    case Format::kBsr: return "bsr";
    case Format::kBalanced24: return "2:4";
    case Format::kVectorWise: return "vw";
    case Format::kShflBw: return "shfl-bw";
  }
  throw Error("unknown Format");
}

Format ParseFormat(const std::string& name) {
  for (Format f : AllFormats()) {
    if (FormatName(f) == name) return f;
  }
  throw Error("unknown format name: " + name);
}

KernelClass FormatKernelClass(Format f) {
  switch (f) {
    case Format::kDense: return KernelClass::kDenseTensorCore;
    case Format::kCsr: return KernelClass::kSputnik;
    case Format::kBsr: return KernelClass::kBsrTensorCore;
    case Format::kBalanced24: return KernelClass::kBalanced24;
    case Format::kVectorWise: return KernelClass::kVectorWiseTensorCore;
    case Format::kShflBw: return KernelClass::kShflBwTensorCore;
  }
  throw Error("unknown Format");
}

}  // namespace runtime
}  // namespace shflbw
