// The planning phase of the runtime: ranks every feasible format for
// every layer with the arch cost model (the same roofline the Fig. 6
// sweeps use) and selects the fastest, producing an ExecutionPlan the
// engine packs and executes. Planning is pure and deterministic — the
// same model + planner options always yield the same plan — so a plan
// can be computed once and reused across Run calls; the optional
// empirical autotune pass (engine.h) re-ranks the top candidates by
// measured time afterwards.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "runtime/format.h"
#include "runtime/model_desc.h"

namespace shflbw {
namespace runtime {

struct PlannerOptions {
  /// Target kept density for sparse formats (alpha of §6.1).
  double density = 0.25;
  /// Vector / block granularity V for BSR, VW and Shfl-BW. The paper
  /// evaluates V in [32, 128]; below 16 the 16-row MMA granularity
  /// leaves tensor-core lanes idle and the vector formats rarely win.
  /// Layers whose m (or k, for BSR) V does not divide fall back to the
  /// other formats.
  int v = 32;
  /// GPU whose cost model drives the ranking.
  GpuArch arch = GpuArch::kV100;
  /// Pin every layer to one format (the all-dense baseline engine).
  std::optional<Format> force_format;
  /// Formats the selector must not use. The speed ranking is
  /// quality-blind, so callers enforce accuracy constraints here (e.g.
  /// exclude kBsr and kCsr to restrict selection to the patterns Table 1
  /// shows retain quality at high sparsity). kDense is never excluded —
  /// it is the universal fallback every layer can execute.
  std::vector<Format> exclude;
  /// Empirical re-ranking of the top candidates (engine-side; the pure
  /// planner ignores these).
  bool autotune = false;
  int autotune_top_k = 2;
};

/// One (layer, format) evaluation.
struct FormatCandidate {
  Format format = Format::kDense;
  bool feasible = false;
  double modeled_s = 0;   // cost-model seconds; valid iff feasible
  double measured_s = 0;  // autotune wall-clock seconds; 0 = not timed
  std::string why;        // reason when infeasible
};

/// The decision for one layer.
struct LayerPlan {
  std::string name;
  int layer = 0;  // index into ModelDesc::layers
  int repeat = 1;
  Format format = Format::kDense;  // the winner
  double modeled_s = 0;            // winner's modelled seconds
  double modeled_dense_s = 0;      // dense baseline, same layer
  bool autotuned = false;          // winner picked by measurement
  /// Every format, feasible candidates first, ranked fastest-first.
  std::vector<FormatCandidate> candidates;
};

/// A compiled schedule: one decision per model layer.
struct ExecutionPlan {
  std::string model;
  std::string gpu;
  PlannerOptions options;
  std::vector<LayerPlan> layers;

  /// Repeat-weighted modelled seconds of the plan / of all-dense.
  double ModeledTotalSeconds() const;
  double ModeledDenseSeconds() const;
};

/// Cost-model seconds of `format` on layer `l`, or nullopt with the
/// reason when the (format, layer, options) combination is undefined.
/// Convolution layers are only executable dense, vector-wise or
/// Shfl-BW ("the baselines all lack implementation for convolution",
/// §6.2); 2:4 requires the A100 at density exactly 0.5.
std::optional<double> ModeledLayerSeconds(const LayerDesc& l, Format format,
                                          const PlannerOptions& opts,
                                          std::string* why = nullptr);

/// Ranks all formats for one layer (deterministic).
LayerPlan PlanLayer(const LayerDesc& l, int index,
                    const PlannerOptions& opts);

/// Plans the whole model (deterministic).
ExecutionPlan PlanModel(const ModelDesc& model, const PlannerOptions& opts);

}  // namespace runtime
}  // namespace shflbw
