// The planning phase of the runtime: ranks every feasible format for
// every layer with the arch cost model (the same roofline the Fig. 6
// sweeps use) and selects the fastest, producing an ExecutionPlan the
// engine packs and executes. With quality options enabled the ranking
// becomes a constrained search over per-layer (format, density, V)
// candidates under a retained-importance floor (src/quality/). Either
// way planning is pure and deterministic — the same model + planner
// options always yield the same plan — so a plan can be computed once
// and reused across Run calls; the optional empirical autotune pass
// (engine.h) re-ranks the top candidates by measured time afterwards.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "runtime/format.h"
#include "runtime/model_desc.h"

namespace shflbw {
namespace runtime {

/// Options of the quality-aware planning pass (src/quality/): joint
/// per-layer (format, density, V) selection constrained by a
/// retained-importance floor — the Table 1 accuracy proxy wired into
/// the planner. When `enabled`, PlanModel searches `density_ladder` ×
/// `v_ladder` per layer and picks the latency-minimal combination whose
/// mask keeps at least `min_retained_ratio` of the layer's importance
/// (RetainedScoreRatio on the synthesized master weights), falling back
/// to dense when nothing sparse qualifies.
struct QualityOptions {
  /// Master switch. Off = the classic speed-only ranking at the global
  /// (density, v) of PlannerOptions.
  bool enabled = false;
  /// The quality floor: minimum retained-score ratio in [0, 1]. 1.0
  /// forces all-dense (no lossy mask retains everything); 0.0 degrades
  /// to pure speed ranking over the ladder.
  double min_retained_ratio = 0.9;
  /// Floor semantics: kPerLayer requires EVERY layer to retain at
  /// least the floor; kAggregate requires the importance-weighted mean
  /// over the model (weights = repeat × total layer importance) to
  /// meet the floor, letting unimportant layers trade quality for
  /// speed.
  enum class Floor { kPerLayer, kAggregate };
  Floor floor = Floor::kPerLayer;
  /// Per-layer kept densities the search may choose from (the planner
  /// sorts and deduplicates). Dense (density 1.0, ratio 1.0) is always
  /// a candidate and need not be listed.
  std::vector<double> density_ladder{0.125, 0.25, 0.375, 0.5};
  /// Vector/block granularities the search may choose from; empty means
  /// {PlannerOptions::v}.
  std::vector<int> v_ladder;
  /// Base seed of the synthetic master weights the evaluator scores
  /// (layer i uses weight_seed + i). Must match the engine's
  /// EngineOptions::weight_seed so the scored mask is exactly the mask
  /// the pack phase applies; Engine::Plan overrides it with its own
  /// seed automatically.
  std::uint64_t weight_seed = 0x5eedULL;
};

struct PlannerOptions {
  /// Target kept density for sparse formats (alpha of §6.1).
  double density = 0.25;
  /// Vector / block granularity V for BSR, VW and Shfl-BW. The paper
  /// evaluates V in [32, 128]; below 16 the 16-row MMA granularity
  /// leaves tensor-core lanes idle and the vector formats rarely win.
  /// Layers whose m (or k, for BSR) V does not divide fall back to the
  /// other formats.
  int v = 32;
  /// GPU whose cost model drives the ranking.
  GpuArch arch = GpuArch::kV100;
  /// Pin every layer to one format (the all-dense baseline engine).
  /// Incompatible with quality.enabled: a pinned format leaves the
  /// constrained search nothing to decide, so combining them throws.
  std::optional<Format> force_format;
  /// Formats the selector must not use — a hard blocklist honoured by
  /// both the speed-only ranking and the quality-aware search. For
  /// graded accuracy control prefer `quality` (below), which keeps a
  /// format selectable wherever its mask retains enough importance
  /// instead of banning it outright. kDense is never excluded — it is
  /// the universal fallback every layer can execute.
  std::vector<Format> exclude;
  /// Empirical re-ranking of the top candidates (engine-side; the pure
  /// planner ignores these).
  bool autotune = false;
  int autotune_top_k = 2;
  /// Quality-aware planning (src/quality/): constrain selection by the
  /// Table 1 retained-importance proxy and search per-layer densities /
  /// granularities instead of the single global (density, v) above.
  QualityOptions quality;
};

/// Validates `opts` (density ∈ (0, 1], v ≥ 1, autotune_top_k ≥ 1, plus
/// the quality knobs when enabled), throwing shflbw::Error with a
/// descriptive message on the first violation. PlanModel calls this on
/// entry; exposed so callers can fail fast before building a model.
void ValidatePlannerOptions(const PlannerOptions& opts);

/// One (layer, format, density, v) evaluation. The speed-only planner
/// emits one candidate per format at the global options (density, v);
/// the quality-aware search emits one per ladder point and also fills
/// `retained_ratio`.
struct FormatCandidate {
  Format format = Format::kDense;
  double density = 1.0;  // kept density this candidate packs at
  int v = 32;            // granularity this candidate packs at
  bool feasible = false;
  double modeled_s = 0;   // cost-model seconds; valid iff feasible
  double measured_s = 0;  // autotune wall-clock seconds; 0 = not timed
  /// Retained-score ratio of this candidate's mask (Table 1 proxy);
  /// 1.0 for dense, < 0 when not evaluated (speed-only planning).
  double retained_ratio = -1;
  std::string why;  // reason when infeasible
};

/// The decision for one layer. (density, v) are per layer — the engine
/// packs each layer at ITS plan values, not a global knob, which is
/// what lets the quality-aware search mix e.g. a 12.5%-density Shfl-BW
/// attention layer with a 50%-density BSR projection in one plan.
struct LayerPlan {
  std::string name;
  int layer = 0;  // index into ModelDesc::layers
  int repeat = 1;
  Format format = Format::kDense;  // the winner
  double density = 1.0;            // winner's kept density (1.0 = dense)
  int v = 32;                      // winner's granularity
  double modeled_s = 0;            // winner's modelled seconds
  double modeled_dense_s = 0;      // dense baseline, same layer
  /// Winner's retained-score ratio; 1.0 for dense, < 0 when the plan
  /// was speed-only and quality was never evaluated.
  double retained_ratio = -1;
  /// Total magnitude importance of the layer's master weight (the
  /// aggregate-floor weight); 0 when quality was never evaluated.
  double total_score = 0;
  bool autotuned = false;  // winner picked by measurement
  /// Every evaluated candidate, feasible first, ranked fastest-first.
  std::vector<FormatCandidate> candidates;
};

/// A compiled schedule: one decision per model layer.
struct ExecutionPlan {
  std::string model;
  std::string gpu;
  PlannerOptions options;
  std::vector<LayerPlan> layers;

  /// Repeat-weighted modelled seconds of the plan / of all-dense.
  [[nodiscard]] double ModeledTotalSeconds() const;
  [[nodiscard]] double ModeledDenseSeconds() const;
  /// Importance-weighted mean retained ratio over the model (weights =
  /// repeat × total_score) — the aggregate-floor metric. Returns -1
  /// when any layer lacks a quality evaluation (speed-only plans).
  [[nodiscard]] double AggregateRetainedRatio() const;
  /// Smallest per-layer retained ratio, or -1 when any layer lacks a
  /// quality evaluation.
  [[nodiscard]] double MinRetainedRatio() const;
};

/// Cost-model seconds of `format` on layer `l`, or nullopt with the
/// reason when the (format, layer, options) combination is undefined.
/// Convolution layers are only executable dense, vector-wise or
/// Shfl-BW ("the baselines all lack implementation for convolution",
/// §6.2); 2:4 requires the A100 at density exactly 0.5.
std::optional<double> ModeledLayerSeconds(const LayerDesc& l, Format format,
                                          const PlannerOptions& opts,
                                          std::string* why = nullptr);

/// Ranks all formats for one layer (deterministic).
LayerPlan PlanLayer(const LayerDesc& l, int index,
                    const PlannerOptions& opts);

/// Plans the whole model (deterministic).
ExecutionPlan PlanModel(const ModelDesc& model, const PlannerOptions& opts);

}  // namespace runtime
}  // namespace shflbw
