#include "runtime/admission.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace shflbw {
namespace runtime {

const char* SubmitStatusName(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kRejectedQueueFull: return "rejected-queue-full";
    case SubmitStatus::kRejectedInfeasibleDeadline:
      return "rejected-infeasible-deadline";
    case SubmitStatus::kRejectedShutdown: return "rejected-shutdown";
  }
  return "unknown";
}

const char* QoSName(QoS qos) {
  switch (qos) {
    case QoS::kBestEffort: return "best-effort";
    case QoS::kStandard: return "standard";
    case QoS::kCritical: return "critical";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionPolicy policy, int replicas)
    : policy_(policy), replicas_(std::max(1, replicas)) {}

std::size_t AdmissionController::CapacityFor(QoS qos,
                                             std::size_t queue_capacity) const {
  if (qos != QoS::kBestEffort) return queue_capacity;
  const auto share = static_cast<std::size_t>(
      policy_.best_effort_occupancy * static_cast<double>(queue_capacity));
  return std::clamp<std::size_t>(share, 1, queue_capacity);
}

bool AdmissionController::DeadlineFeasible(QoS qos, double deadline_seconds,
                                           std::size_t queue_depth) const {
  if (!policy_.reject_infeasible_deadlines) return true;
  if (qos == QoS::kCritical) return true;  // served regardless
  if (deadline_seconds <= 0) return true;  // no deadline to miss
  const double est = EstimatedServiceSeconds();
  if (est <= 0) return true;  // nothing observed yet: fail open
  const double eta =
      est * (1.0 + static_cast<double>(queue_depth) / replicas_);
  return deadline_seconds + 1e-12 >= eta;
}

void AdmissionController::RecordServiceTime(double seconds) {
  if (seconds <= 0) return;
  ewma_seconds_ = ewma_seconds_ <= 0
                      ? seconds
                      : policy_.ewma_alpha * seconds +
                            (1.0 - policy_.ewma_alpha) * ewma_seconds_;
}

double AdmissionController::EstimatedServiceSeconds() const {
  return policy_.service_estimate_seconds > 0 ? policy_.service_estimate_seconds
                                              : ewma_seconds_;
}

DegradationController::DegradationController(DegradationPolicy policy,
                                             int levels)
    : policy_(policy), levels_(std::max(1, levels)) {
  ratios_.reserve(policy_.latency_window);
}

void DegradationController::RecordCompletion(double latency_seconds,
                                             double deadline_seconds) {
  if (deadline_seconds <= 0) return;
  const double ratio = latency_seconds / deadline_seconds;
  if (ratios_.size() < policy_.latency_window) {
    ratios_.push_back(ratio);
  } else {
    ratios_[ratio_next_] = ratio;
  }
  ratio_next_ = (ratio_next_ + 1) % std::max<std::size_t>(
                                        1, policy_.latency_window);
}

double DegradationController::WindowP99Ratio() const {
  if (ratios_.empty()) return -1;
  std::vector<double> sorted = ratios_;
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size() - 1)));
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

int DegradationController::OnSeal(std::size_t queue_depth,
                                  std::size_t queue_capacity) {
  if (levels_ <= 1) return 0;
  const double occupancy =
      queue_capacity > 0
          ? static_cast<double>(queue_depth) / queue_capacity
          : 0.0;
  const double p99 = WindowP99Ratio();
  const bool pressure =
      occupancy >= policy_.degrade_queue_fraction || p99 > 1.0;
  const bool relief =
      occupancy <= policy_.upgrade_queue_fraction &&
      (p99 < 0 || p99 <= 1.0 - policy_.deadline_slack_fraction);
  if (pressure) {
    relief_streak_ = 0;
    if (++pressure_streak_ >= policy_.hysteresis_seals &&
        level_ + 1 < levels_) {
      ++level_;
      ++downshifts_;
      pressure_streak_ = 0;
      ratios_.clear();
      ratio_next_ = 0;
    }
  } else if (relief) {
    pressure_streak_ = 0;
    if (++relief_streak_ >= policy_.hysteresis_seals && level_ > 0) {
      --level_;
      ++upshifts_;
      relief_streak_ = 0;
      ratios_.clear();
      ratio_next_ = 0;
    }
  } else {
    // The hysteresis band between the fractions: agree with neither
    // direction, reset both streaks.
    pressure_streak_ = 0;
    relief_streak_ = 0;
  }
  return level_;
}

}  // namespace runtime
}  // namespace shflbw
