// Batch-serving layer on top of the inference engine: the serving-time
// shape of the paper's pitch. A BatchServer owns N Engine replicas of
// one model sharing a single PackedWeightCache (the pack phase is paid
// once, not once per replica), a bounded MPMC request queue, and one
// scheduler thread per replica. Underneath, concurrent replica Runs
// partition the persistent ParallelFor pool (common/thread_pool.h), so
// R replicas on a C-core box each execute kernels on ~C/R workers side
// by side instead of time-slicing behind a region lock.
//
// Cross-request fused batching: an idle replica coalesces up to
// `max_batch` queued requests into ONE Engine::RunBatched call — their
// activations pack into a single n*K-column matrix per layer, so K
// requests cost one kernel launch per layer instead of K. Fairness is
// FIFO: a batch is always the K oldest queued requests (never
// reordered), and `coalesce_window_seconds` bounds how long a partial
// batch may wait for company.
//
// Overload resilience (runtime/admission.h): requests carry a deadline
// and a QoS class; Submit/TrySubmit return a typed SubmitStatus, and a
// deadline the admission controller can prove unmeetable is rejected
// up front. Requests whose deadline expires while queued are shed at
// batch-seal time with a kDeadlineExceeded response instead of burning
// a fused launch on dead work (kCritical requests are exempt). Under
// sustained pressure a hysteresis controller degrades new batches down
// a ladder of quality-aware plans (DegradationPolicy::ladder_floors —
// all levels pack into the same shared cache, whose keys already
// include density/V), and upgrades back when slack returns; every
// Response records its plan_level and retained_ratio so degradation is
// observable and bounded. Transient faults (runtime/fault_injection.h)
// are retried with bounded backoff inside the scheduler loop.
//
// Determinism is preserved end to end: a request is a whole-model Run
// keyed by an activation seed, and its output matrix is bit-identical
// to running the same seed on a standalone single-threaded Engine
// *configured at the same ladder level* — no matter which replica
// served it, what else was in flight, or which requests it was fused
// with (RunBatched's per-column-block contract).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/statusz.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "runtime/admission.h"
#include "runtime/engine.h"
#include "runtime/fault_injection.h"

namespace shflbw {
namespace runtime {

struct ServerOptions {
  /// Engine replicas == scheduler threads.
  int replicas = 2;
  /// Bound of the request queue (requests admitted but not yet
  /// dispatched). Submit blocks when the queue is full — backpressure
  /// instead of unbounded memory growth.
  std::size_t queue_capacity = 64;
  /// Max requests a replica coalesces into one fused RunBatched launch
  /// (1 = classic one-request-per-launch serving). Coalescing is FIFO:
  /// the batch is always the oldest queued requests, in submission
  /// order.
  int max_batch = 8;
  /// How long an idle replica holds a partial batch open waiting for
  /// more requests before launching it (0 = launch immediately with
  /// whatever is queued). A bounded window is the fairness knob: it
  /// caps the extra queue latency any request can pay toward someone
  /// else's fused launch, and shutdown cuts it short.
  double coalesce_window_seconds = 0.0;
  /// Options shared by every replica. `planner.autotune` is forced off:
  /// autotune re-ranks by wall-clock measurement, so replicas could
  /// diverge onto different plans and the shared-cache + bit-identical
  /// guarantees would silently break. With a degradation ladder the
  /// quality knobs (enabled / floor / min_retained_ratio) are overridden
  /// per level; the density/V ladders and every other knob carry over.
  EngineOptions engine;
  /// Deadline admission control (runtime/admission.h).
  AdmissionPolicy admission;
  /// Graceful quality degradation: ladder_floors non-empty compiles one
  /// quality-aware plan per floor and lets the hysteresis controller
  /// shift new batches between them under load. Empty = single plan,
  /// no degradation (the pre-overload server).
  DegradationPolicy degradation;
  /// Bounded retry-with-backoff for TransientFault from the engine
  /// (injected or backend-raised) inside the scheduler loop.
  RetryPolicy retry;
  /// Telemetry switches (obs/telemetry.h): latency histograms + kernel
  /// profiling (metrics, on by default) and per-request span tracing
  /// (tracing, off by default). The server builds one obs::Telemetry
  /// from these and shares it with every engine replica, so serving
  /// spans and kernel spans land in one trace and ServerStats,
  /// MetricsText() and DumpTrace() all read the same sink.
  obs::TelemetryOptions telemetry;
  /// Stall watchdog (obs/watchdog.h): when enabled, a polling thread
  /// watches the replica heartbeats (and the global ParallelFor region
  /// heartbeats); an armed replica silent for longer than the budget
  /// counts a stall, records a kStall flight event and — with a
  /// non-empty dump_path — writes the statusz + flight-recorder
  /// postmortem. The budget must exceed coalesce_window_seconds plus
  /// the longest legitimate launch.
  obs::WatchdogOptions watchdog;
};

/// Validates `opts` (replicas >= 1, queue_capacity >= 1, max_batch >=
/// 1, coalesce window >= 0, admission / degradation / retry knobs, and
/// the ladder x force_format conflict), throwing shflbw::Error with a
/// descriptive message on the first violation. The BatchServer
/// constructor calls this; exposed so callers can fail fast.
void ValidateServerOptions(const ServerOptions& opts);

/// One unit of work: a whole-model inference pass over the activation
/// stream seeded by `activation_seed` (the stand-in for a real
/// request's input tensor, as everywhere else in this repo).
struct Request {
  std::uint64_t activation_seed = 0xac71ULL;
  /// Deadline relative to submission; 0 = none. A request whose
  /// deadline passes while it queues is shed at batch-seal time
  /// (status kDeadlineExceeded) unless its QoS is kCritical.
  double deadline_seconds = 0;
  QoS qos = QoS::kStandard;
};

enum class ResponseStatus {
  kOk = 0,
  /// Shed at seal time: the deadline expired before a replica could
  /// launch it. `output` is empty; queue_seconds covers submit->shed.
  kDeadlineExceeded,
};

struct Response {
  std::uint64_t id = 0;    // submission order, dense from 0
  ResponseStatus status = ResponseStatus::kOk;
  int replica = -1;        // which replica served (or shed) it
  int batch_width = 1;     // requests fused into the launch that served it
  /// Ladder level this request was served at (0 = normal service).
  /// Outputs at a fixed (seed, plan_level) are bit-identical to a
  /// serial single-engine run at that level.
  int plan_level = 0;
  /// Min per-layer retained-score ratio of the serving plan — always
  /// >= the level's ladder floor. -1 when the server runs without a
  /// quality ladder and the plan was never quality-evaluated, and on
  /// shed responses (nothing was served).
  double retained_ratio = -1;
  /// Transient-fault retries the serving launch needed (0 normally).
  int retries = 0;
  Matrix<float> output;    // final layer output (bit-identical to serial)
  /// Latency split. queue_seconds stops at coalesce time (when the
  /// replica seals the batch this request joined — including any
  /// coalesce-window wait), retry_seconds covers the retry overhead of
  /// a faulted launch (failed attempts plus backoff sleeps — 0 on the
  /// common unfaulted path), and run_seconds covers the final
  /// (successful) fused launch only. The split is exact:
  /// queue_seconds + retry_seconds + run_seconds == submit-to-
  /// completion for every request, fused, retried or not.
  double queue_seconds = 0;  // submit -> batch sealed (dispatch)
  double retry_seconds = 0;  // dispatch -> final attempt start
  double run_seconds = 0;    // final attempt start -> completion
  /// Conversions the serving launch triggered (shared by every request
  /// in the fused batch; 0 in the warmed steady state).
  std::size_t packs_performed = 0;
};

/// Point-in-time server statistics. Since the telemetry subsystem this
/// is a SNAPSHOT VIEW composed by Stats() from the metrics registry
/// (obs/metrics.h) plus the server's protocol counters — the struct is
/// kept so call sites and tests keep compiling; the registry (and its
/// Prometheus exposition, BatchServer::MetricsText) is the source of
/// truth and carries strictly more: latency histograms, per-kernel
/// profiling rows, planned-vs-measured drift.
struct ServerStats {
  std::uint64_t submitted = 0;  // admitted to the queue
  std::uint64_t completed = 0;  // resolved by a launch (ok or error)
  std::uint64_t shed = 0;       // deadline-expired, dropped at seal
  // Conservation law (after Drain): submitted == completed + shed.
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;  // infeasible at admission
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t retries = 0;  // transient-fault retries across all batches
  std::uint64_t failed = 0;   // requests resolved with an exception
  std::vector<std::uint64_t> per_replica;  // completed, by replica
  std::vector<std::uint64_t> per_level;    // completed, by plan level
  int level = 0;  // controller's current ladder level
  std::uint64_t downshifts = 0;
  std::uint64_t upshifts = 0;
  double estimated_service_seconds = 0;  // admission EWMA / override
};

class BatchServer {
 public:
  explicit BatchServer(ModelDesc model, ServerOptions opts = {});

  /// Shuts down: drains everything already submitted, then joins the
  /// replica threads.
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// The execution plan of ladder level 0 (normal service). Planning is
  /// deterministic and compiled in the constructor; reading it is safe
  /// while requests are in flight.
  const ExecutionPlan& Plan() const;

  /// The plan of one ladder level (0 <= level < levels()).
  const ExecutionPlan& PlanAt(int level) const;

  /// Number of ladder levels (1 when degradation is off).
  int levels() const;

  /// The quality floor of a ladder level (1.0-capped descending), or
  /// -1 when the server runs without a ladder.
  double LevelFloor(int level) const;

  /// Min per-layer retained ratio of a level's compiled plan (what
  /// every Response served at that level reports); -1 without a ladder.
  double LevelRetainedRatio(int level) const;

  /// Packs every weight every ladder level's plan selects through the
  /// shared cache, so the first served requests don't pay conversion
  /// latency (and a mid-overload downshift doesn't stall on a pack
  /// phase). Optional — the first Run of each (layer, level) packs on
  /// demand otherwise. Implemented as one blocking request per level
  /// through the regular queue, so it is safe to call at any time
  /// (engines are only ever touched by their own replica thread).
  void Warmup() SHFLBW_EXCLUDES(mu_);

  /// Enqueues a request; the future resolves when a replica finishes
  /// (or sheds) it. Blocks while the QoS class's queue share is at
  /// capacity. Returns kAccepted (with *out set), kRejectedShutdown
  /// (including producers that were blocked when Shutdown ran — they
  /// wake with this status instead of hanging), or
  /// kRejectedInfeasibleDeadline; *out is untouched on rejection.
  /// [[nodiscard]]: a dropped verdict is a silently lost rejection
  /// (lint rule nodiscard-status, tools/lint/).
  [[nodiscard]] SubmitStatus Submit(Request req, std::future<Response>* out)
      SHFLBW_EXCLUDES(mu_);

  /// Legacy blocking submit. Throws shflbw::Error on any rejection
  /// (shutdown, infeasible deadline); prefer the SubmitStatus overload.
  std::future<Response> Submit(Request req) SHFLBW_EXCLUDES(mu_);

  /// Non-blocking Submit: like Submit(req, out) but returns
  /// kRejectedQueueFull instead of waiting for space.
  [[nodiscard]] SubmitStatus TrySubmit(Request req,
                                       std::future<Response>* out)
      SHFLBW_EXCLUDES(mu_);

  /// Blocks until the server is idle: completed + shed == submitted,
  /// checked (and re-checked after every wakeup) under the queue mutex,
  /// so a submit landing while Drain is blocked can never slip between
  /// a stale check and the wait and let Drain() return with requests
  /// still in flight. Retirement is batch-atomic and happens after the
  /// batch's promises (served and shed alike) are resolved, so every
  /// future submitted before Drain is ready when it returns.
  void Drain() SHFLBW_EXCLUDES(mu_);

  /// Stops accepting new requests (blocked producers wake with
  /// kRejectedShutdown), drains the queue, joins the replica threads.
  /// Idempotent; called by the destructor.
  void Shutdown() SHFLBW_EXCLUDES(mu_);

  ServerStats Stats() const SHFLBW_EXCLUDES(mu_);
  int replicas() const { return static_cast<int>(engines_.size()); }
  const ServerOptions& options() const { return opts_; }
  const PackedWeightCache& cache() const { return *cache_; }

  /// The server's telemetry sink: the metrics registry every counter /
  /// histogram / profiling row lives in, and the span trace recorder.
  /// Shared with every engine replica.
  obs::Telemetry& telemetry() const { return *telemetry_; }

  /// Prometheus text exposition of the whole registry, with the
  /// point-in-time gauges (queue depth, ladder level, worker-pool
  /// state, admission estimate) refreshed first. Safe while serving.
  std::string MetricsText() const SHFLBW_EXCLUDES(mu_);

  /// Writes the recorded span trace as Chrome trace-event JSON —
  /// loadable at ui.perfetto.dev or chrome://tracing. Call after
  /// Drain() for a complete picture (recording is safe concurrently,
  /// but in-flight requests have unpublished spans). False when the
  /// path cannot be opened or tracing is compiled out.
  bool DumpTrace(const std::string& path) const;

  /// statusz: one structured snapshot of the whole process — build
  /// provenance, queue/occupancy, degradation ladder + shift history,
  /// per-replica scheduler state with heartbeat ages, weight-cache
  /// entries/bytes, worker-pool claims, watchdog state, flight-recorder
  /// fill, and the serving level's per-layer plan table with the
  /// measured-vs-modeled drift gauges. Safe while serving (briefly
  /// takes the queue mutex, then reads lock-free/obs state).
  [[nodiscard]] obs::StatusReport Status() const SHFLBW_EXCLUDES(mu_);

  /// Status() rendered human-readable / as JSON.
  [[nodiscard]] std::string StatusText() const SHFLBW_EXCLUDES(mu_);
  [[nodiscard]] std::string StatusJson() const SHFLBW_EXCLUDES(mu_);

  /// Writes `<path_base>.txt` + `<path_base>.json`; false if either
  /// write failed. This is the "explicit request" leg of the postmortem
  /// triad (stall and fatal dumps reuse it via the watchdog callback).
  [[nodiscard]] bool DumpStatus(const std::string& path_base) const
      SHFLBW_EXCLUDES(mu_);

  /// Dumps the flight-recorder ring as JSON; false on I/O failure.
  [[nodiscard]] bool DumpFlightRecorder(const std::string& path) const;

  /// The replica-thread heartbeat table (ParallelFor regions publish
  /// into obs::GlobalHeartbeats() instead).
  const obs::HeartbeatRegistry& heartbeats() const { return heartbeats_; }

  /// The stall watchdog, or nullptr when ServerOptions::watchdog is
  /// disabled (or after Shutdown). The pointer is stable until
  /// Shutdown moves it out.
  const obs::Watchdog* watchdog() const SHFLBW_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return watchdog_.get();
  }

 private:
  struct Pending {
    Request req;
    std::uint64_t id = 0;
    double submit_time = 0;
    /// Warmup pins its per-level requests to a level (>= 0) and they
    /// run as single-request batches; -1 = controller decides.
    int force_level = -1;
    std::promise<Response> promise;
  };

  /// Common admission path; queue space must be available.
  std::future<Response> Enqueue(Request req, int force_level)
      SHFLBW_REQUIRES(mu_);
  std::future<Response> SubmitInternal(Request req, int force_level)
      SHFLBW_EXCLUDES(mu_);
  void ReplicaLoop(int replica) SHFLBW_EXCLUDES(mu_);

  /// Registers the serving-side metric handles (counters, histograms,
  /// gauges) in telemetry_'s registry; constructor-only.
  void RegisterMetrics();

  /// Records an admission span (begin -> now) when tracing is on, and
  /// a kReject flight event on every rejection (flight recording is
  /// always on). `id` is kNoId on rejections (no id was assigned).
  void TraceAdmission(double begin, std::uint64_t id, SubmitStatus verdict);

  /// Watchdog stall callback (watchdog thread): bumps the stall
  /// counter, records a kStall flight event naming the stalled slot,
  /// and writes the statusz + flight postmortem when
  /// ServerOptions::watchdog.dump_path is set.
  void OnStall(const std::string& name, double age_seconds)
      SHFLBW_EXCLUDES(mu_);

  ServerOptions opts_;
  std::shared_ptr<obs::Telemetry> telemetry_;
  std::shared_ptr<PackedWeightCache> cache_;
  /// engines_[replica][level]: each replica owns one engine per ladder
  /// level (plans differ; packed weights are shared through cache_).
  /// An engine is only ever touched by its replica's scheduler thread.
  std::vector<std::vector<std::unique_ptr<Engine>>> engines_;
  std::vector<double> level_floors_;   // ladder floors (or {-1})
  std::vector<double> level_ratios_;   // MinRetainedRatio per level plan

  /// Rank kLockRankServer: scheduler threads release it around every
  /// engine launch, so it nests only ABOVE the registry lock
  /// (MetricsText's gauge refresh) and never around the pool, cache or
  /// evaluator locks.
  mutable Mutex mu_{kLockRankServer};
  CondVar not_empty_;  // replicas wait for work
  CondVar not_full_;   // Submit waits for queue space
  CondVar idle_;       // Drain waits for completed==submitted
  std::deque<Pending> queue_ SHFLBW_GUARDED_BY(mu_);
  bool stop_ SHFLBW_GUARDED_BY(mu_) = false;
  /// Protocol counters: the cv predicates (Drain's idle condition, the
  /// conservation law) need exact values read under mu_, so these stay
  /// plain members; they are mirrored into registry counters at the
  /// same increment sites (one relaxed add each, already under mu_).
  std::uint64_t next_id_ SHFLBW_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ SHFLBW_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ SHFLBW_GUARDED_BY(mu_) = 0;
  std::uint64_t next_batch_id_ SHFLBW_GUARDED_BY(mu_) = 0;  // seal order
  /// Cached registry handles; every non-protocol stat lives only in the
  /// registry now (Stats() reads it back). All increments happen under
  /// mu_, so Stats() — which also holds mu_ — sees exact values.
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_rejected_queue_full_ = nullptr;
  obs::Counter* c_rejected_deadline_ = nullptr;
  obs::Counter* c_rejected_shutdown_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  std::vector<obs::Counter*> c_per_replica_;  // completed, by replica
  std::vector<obs::Counter*> c_per_level_;    // completed, by plan level
  obs::Histogram* h_queue_seconds_ = nullptr;
  obs::Histogram* h_retry_seconds_ = nullptr;
  obs::Histogram* h_run_seconds_ = nullptr;
  obs::Histogram* h_total_seconds_ = nullptr;
  obs::Histogram* h_batch_width_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_level_ = nullptr;
  obs::Counter* c_stalls_ = nullptr;
  /// Both controllers are plain mechanism objects (runtime/admission.h)
  /// with no locking of their own; every call goes through mu_.
  AdmissionController admission_ SHFLBW_GUARDED_BY(mu_);
  DegradationController controller_ SHFLBW_GUARDED_BY(mu_);

  /// Controller level after the most recent seal; kShift flight events
  /// are emitted on transitions, so any replica's seal can observe the
  /// shared controller moving.
  int last_observed_level_ SHFLBW_GUARDED_BY(mu_) = 0;
  /// Most recent watchdog stall (statusz watchdog section).
  std::string last_stall_ SHFLBW_GUARDED_BY(mu_);
  double last_stall_age_ SHFLBW_GUARDED_BY(mu_) = 0;

  /// Replica-thread heartbeats; slots registered by ReplicaLoop.
  obs::HeartbeatRegistry heartbeats_;
  /// Monotonic construction time (statusz uptime).
  double start_seconds_ = 0;

  /// Populated by the constructor (no concurrent access yet), swapped
  /// out under mu_ by Shutdown and joined lock-free.
  std::vector<std::thread> threads_ SHFLBW_GUARDED_BY(mu_);
  /// Stopped (moved out under mu_, then joined lock-free) first in
  /// Shutdown so no stall callback can run against a half-torn-down
  /// server — and so a concurrent second Shutdown moves an empty
  /// pointer, mirroring the threads_ swap.
  std::unique_ptr<obs::Watchdog> watchdog_ SHFLBW_GUARDED_BY(mu_);
};

}  // namespace runtime
}  // namespace shflbw
