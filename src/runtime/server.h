// Batch-serving layer on top of the inference engine: the serving-time
// shape of the paper's pitch. A BatchServer owns N Engine replicas of
// one model sharing a single PackedWeightCache (the pack phase is paid
// once, not once per replica), a bounded MPMC request queue, and one
// scheduler thread per replica. Underneath, concurrent replica Runs
// partition the persistent ParallelFor pool (common/thread_pool.h), so
// R replicas on a C-core box each execute kernels on ~C/R workers side
// by side instead of time-slicing behind a region lock.
//
// Cross-request fused batching: an idle replica coalesces up to
// `max_batch` queued requests into ONE Engine::RunBatched call — their
// activations pack into a single n*K-column matrix per layer, so K
// requests cost one kernel launch per layer instead of K. Small-batch
// serving is exactly the regime where per-request launches underfeed
// the tile-parallel kernels; fusing re-widens them. Fairness is FIFO:
// a batch is always the K oldest queued requests (never reordered),
// and `coalesce_window_seconds` bounds how long a partial batch may
// wait for company, so no request trades unbounded latency for
// someone else's throughput.
//
// Determinism is preserved end to end: a request is a whole-model Run
// keyed by an activation seed, and its output matrix is bit-identical
// to running the same seed on a standalone single-threaded Engine — no
// matter which replica served it, what else was in flight, or which
// requests it was fused with (RunBatched's per-column-block contract).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/engine.h"

namespace shflbw {
namespace runtime {

struct ServerOptions {
  /// Engine replicas == scheduler threads.
  int replicas = 2;
  /// Bound of the request queue (requests admitted but not yet
  /// dispatched). Submit blocks when the queue is full — backpressure
  /// instead of unbounded memory growth.
  std::size_t queue_capacity = 64;
  /// Max requests a replica coalesces into one fused RunBatched launch
  /// (1 = classic one-request-per-launch serving). Coalescing is FIFO:
  /// the batch is always the oldest queued requests, in submission
  /// order.
  int max_batch = 8;
  /// How long an idle replica holds a partial batch open waiting for
  /// more requests before launching it (0 = launch immediately with
  /// whatever is queued). A bounded window is the fairness knob: it
  /// caps the extra queue latency any request can pay toward someone
  /// else's fused launch, and shutdown cuts it short.
  double coalesce_window_seconds = 0.0;
  /// Options shared by every replica. `planner.autotune` is forced off:
  /// autotune re-ranks by wall-clock measurement, so replicas could
  /// diverge onto different plans and the shared-cache + bit-identical
  /// guarantees would silently break.
  EngineOptions engine;
};

/// One unit of work: a whole-model inference pass over the activation
/// stream seeded by `activation_seed` (the stand-in for a real
/// request's input tensor, as everywhere else in this repo).
struct Request {
  std::uint64_t activation_seed = 0xac71ULL;
};

struct Response {
  std::uint64_t id = 0;    // submission order, dense from 0
  int replica = -1;        // which replica served it
  int batch_width = 1;     // requests fused into the launch that served it
  Matrix<float> output;    // final layer output (bit-identical to serial)
  /// Latency split. queue_seconds stops at coalesce time (when the
  /// replica seals the batch this request joined — including any
  /// coalesce-window wait) and run_seconds covers the fused launch, so
  /// queue_seconds + run_seconds == submit-to-completion for every
  /// request, fused or not.
  double queue_seconds = 0;  // submit -> batch sealed (dispatch)
  double run_seconds = 0;    // dispatch -> completion (fused RunBatched)
  /// Conversions the serving launch triggered (shared by every request
  /// in the fused batch; 0 in the warmed steady state).
  std::size_t packs_performed = 0;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::vector<std::uint64_t> per_replica;  // completed, by replica
};

class BatchServer {
 public:
  explicit BatchServer(ModelDesc model, ServerOptions opts = {});

  /// Shuts down: drains everything already submitted, then joins the
  /// replica threads.
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// The (shared) execution plan. Planning is deterministic, so every
  /// replica compiled this exact plan in the constructor; reading it is
  /// safe while requests are in flight.
  const ExecutionPlan& Plan() const;

  /// Packs every weight the plan selects through the shared cache, so
  /// the first served requests don't pay conversion latency. Optional —
  /// the first Run of each layer packs on demand otherwise. Implemented
  /// as one blocking request through the regular queue, so it is safe
  /// to call at any time (engines are only ever touched by their own
  /// replica thread).
  void Warmup();

  /// Enqueues a request; the future resolves when a replica finishes
  /// it. Blocks while the queue is at capacity; throws std::runtime_error
  /// after Shutdown().
  std::future<Response> Submit(Request req);

  /// Non-blocking Submit: returns false (and leaves *out untouched)
  /// when the queue is full or the server is shut down.
  bool TrySubmit(Request req, std::future<Response>* out);

  /// Blocks until the server is idle: completed == submitted, checked
  /// (and re-checked after every wakeup) under the queue mutex, so a
  /// submit landing while Drain is blocked can never slip between a
  /// stale check and the wait and let Drain() return with requests
  /// still in flight. Note completed counts are batch-atomic: a fused
  /// launch retires all K of its requests under one lock hold.
  void Drain();

  /// Stops accepting new requests, drains the queue, joins the replica
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  ServerStats Stats() const;
  int replicas() const { return static_cast<int>(engines_.size()); }
  const ServerOptions& options() const { return opts_; }
  const PackedWeightCache& cache() const { return *cache_; }

 private:
  struct Pending {
    Request req;
    std::uint64_t id = 0;
    double submit_time = 0;
    std::promise<Response> promise;
  };

  void ReplicaLoop(int replica);

  ServerOptions opts_;
  std::shared_ptr<PackedWeightCache> cache_;
  std::vector<std::unique_ptr<Engine>> engines_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;  // replicas wait for work
  std::condition_variable not_full_;   // Submit waits for queue space
  std::condition_variable idle_;       // Drain waits for completed==submitted
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<std::uint64_t> per_replica_;

  std::vector<std::thread> threads_;
};

}  // namespace runtime
}  // namespace shflbw
