// Batch-serving layer on top of the inference engine: the serving-time
// shape of the paper's pitch. A BatchServer owns N Engine replicas of
// one model sharing a single PackedWeightCache (the pack phase is paid
// once, not once per replica), a bounded MPMC request queue, and one
// scheduler thread per replica that pops requests as soon as its
// replica is idle. Underneath, concurrent replica Runs partition the
// persistent ParallelFor pool (common/thread_pool.h), so R replicas on
// a C-core box each execute kernels on ~C/R workers side by side
// instead of time-slicing behind a region lock.
//
// Determinism is preserved end to end: a request is a whole-model Run
// keyed by an activation seed, and its output matrix is bit-identical
// to running the same seed on a standalone single-threaded Engine — no
// matter which replica served it or what else was in flight.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/engine.h"

namespace shflbw {
namespace runtime {

struct ServerOptions {
  /// Engine replicas == scheduler threads == max requests in flight.
  int replicas = 2;
  /// Bound of the request queue (requests admitted but not yet
  /// dispatched). Submit blocks when the queue is full — backpressure
  /// instead of unbounded memory growth.
  std::size_t queue_capacity = 64;
  /// Options shared by every replica. `planner.autotune` is forced off:
  /// autotune re-ranks by wall-clock measurement, so replicas could
  /// diverge onto different plans and the shared-cache + bit-identical
  /// guarantees would silently break.
  EngineOptions engine;
};

/// One unit of work: a whole-model inference pass over the activation
/// stream seeded by `activation_seed` (the stand-in for a real
/// request's input tensor, as everywhere else in this repo).
struct Request {
  std::uint64_t activation_seed = 0xac71ULL;
};

struct Response {
  std::uint64_t id = 0;    // submission order, dense from 0
  int replica = -1;        // which replica served it
  Matrix<float> output;    // final layer output (bit-identical to serial)
  double queue_seconds = 0;  // submit -> dispatch wait
  double run_seconds = 0;    // dispatch -> completion (Engine::Run)
  std::size_t packs_performed = 0;  // conversions this run triggered
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::vector<std::uint64_t> per_replica;  // completed, by replica
};

class BatchServer {
 public:
  explicit BatchServer(ModelDesc model, ServerOptions opts = {});

  /// Shuts down: drains everything already submitted, then joins the
  /// replica threads.
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// The (shared) execution plan. Planning is deterministic, so every
  /// replica compiled this exact plan in the constructor; reading it is
  /// safe while requests are in flight.
  const ExecutionPlan& Plan() const;

  /// Packs every weight the plan selects through the shared cache, so
  /// the first served requests don't pay conversion latency. Optional —
  /// the first Run of each layer packs on demand otherwise. Implemented
  /// as one blocking request through the regular queue, so it is safe
  /// to call at any time (engines are only ever touched by their own
  /// replica thread).
  void Warmup();

  /// Enqueues a request; the future resolves when a replica finishes
  /// it. Blocks while the queue is at capacity; throws std::runtime_error
  /// after Shutdown().
  std::future<Response> Submit(Request req);

  /// Non-blocking Submit: returns false (and leaves *out untouched)
  /// when the queue is full or the server is shut down.
  bool TrySubmit(Request req, std::future<Response>* out);

  /// Blocks until every request submitted so far has completed.
  void Drain();

  /// Stops accepting new requests, drains the queue, joins the replica
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  ServerStats Stats() const;
  int replicas() const { return static_cast<int>(engines_.size()); }
  const ServerOptions& options() const { return opts_; }
  const PackedWeightCache& cache() const { return *cache_; }

 private:
  struct Pending {
    Request req;
    std::uint64_t id = 0;
    double submit_time = 0;
    std::promise<Response> promise;
  };

  void ReplicaLoop(int replica);

  ServerOptions opts_;
  std::shared_ptr<PackedWeightCache> cache_;
  std::vector<std::unique_ptr<Engine>> engines_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;  // replicas wait for work
  std::condition_variable not_full_;   // Submit waits for queue space
  std::condition_variable idle_;       // Drain waits for completed==submitted
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
  std::vector<std::uint64_t> per_replica_;

  std::vector<std::thread> threads_;
};

}  // namespace runtime
}  // namespace shflbw
