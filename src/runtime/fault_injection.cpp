#include "runtime/fault_injection.h"

#include <chrono>
#include <thread>

namespace shflbw {
namespace runtime {
namespace {

// SplitMix64: the standard 64-bit finalizer — a bijective mix whose
// output over consecutive inputs passes statistical tests, so hashing
// (seed, site, ordinal) gives an independent uniform draw per call.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kSiteLaunchFail = 0x11;
constexpr std::uint64_t kSiteLaunchDelay = 0x22;
constexpr std::uint64_t kSitePackFail = 0x33;

}  // namespace

FaultInjector::FaultInjector(FaultInjectorOptions opts) : opts_(opts) {
  SHFLBW_CHECK_MSG(
      opts_.launch_failure_rate >= 0 && opts_.launch_failure_rate <= 1,
      "launch_failure_rate must be in [0, 1]");
  SHFLBW_CHECK_MSG(
      opts_.launch_delay_rate >= 0 && opts_.launch_delay_rate <= 1,
      "launch_delay_rate must be in [0, 1]");
  SHFLBW_CHECK_MSG(
      opts_.pack_failure_rate >= 0 && opts_.pack_failure_rate <= 1,
      "pack_failure_rate must be in [0, 1]");
  SHFLBW_CHECK_MSG(opts_.launch_delay_seconds >= 0,
                   "launch_delay_seconds must be >= 0");
}

bool FaultInjector::Fires(std::uint64_t site, std::uint64_t n,
                          double rate) const {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  const std::uint64_t h =
      SplitMix64(opts_.seed ^ (site * 0xd1b54a32d192ed03ULL) ^ n);
  // Top 53 bits to a uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultInjector::TakeFailureBudget() {
  std::uint64_t spent = failures_spent_.load();
  while (spent < opts_.max_failures) {
    if (failures_spent_.compare_exchange_weak(spent, spent + 1)) return true;
  }
  return false;
}

void FaultInjector::OnKernelLaunch() {
  const std::uint64_t n = launches_.fetch_add(1);
  if (Fires(kSiteLaunchDelay, n, opts_.launch_delay_rate) &&
      opts_.launch_delay_seconds > 0) {
    launch_delays_.fetch_add(1);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opts_.launch_delay_seconds));
  }
  if (Fires(kSiteLaunchFail, n, opts_.launch_failure_rate) &&
      TakeFailureBudget()) {
    launch_failures_.fetch_add(1);
    throw TransientFault("injected transient kernel-launch failure (ordinal " +
                         std::to_string(n) + ")");
  }
}

void FaultInjector::OnPack() {
  const std::uint64_t n = packs_.fetch_add(1);
  if (Fires(kSitePackFail, n, opts_.pack_failure_rate) &&
      TakeFailureBudget()) {
    pack_failures_.fetch_add(1);
    throw TransientFault("injected transient weight-pack failure (ordinal " +
                         std::to_string(n) + ")");
  }
}

void FaultInjector::PublishMetrics(obs::Registry& reg) const {
  reg.GetGauge("shflbw_fault_launches", "Kernel launches the injector saw")
      .Set(static_cast<double>(launches()));
  reg.GetGauge("shflbw_fault_launch_failures",
               "Transient launch failures injected")
      .Set(static_cast<double>(launch_failures()));
  reg.GetGauge("shflbw_fault_launch_delays", "Launch delays injected")
      .Set(static_cast<double>(launch_delays()));
  reg.GetGauge("shflbw_fault_packs", "Weight packs the injector saw")
      .Set(static_cast<double>(packs()));
  reg.GetGauge("shflbw_fault_pack_failures",
               "Transient pack failures injected")
      .Set(static_cast<double>(pack_failures()));
}

}  // namespace runtime
}  // namespace shflbw
