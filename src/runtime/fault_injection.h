// Deterministic fault injection for the serving stack. Recovery paths
// that are never executed are broken by default; this hook makes the
// scheduler's retry/backoff machinery testable by letting tests and
// benches inject transient kernel-launch failures, launch delays, and
// weight-pack failures at seeded, reproducible points.
//
// Determinism model: every injection site draws its verdict as a pure
// function of (seed, site kind, per-site call ordinal). The ordinal is
// an atomic counter, so with concurrent replicas the *set* of failing
// calls is fixed by the seed — which thread happens to hit ordinal n
// varies, but the number of failures in any N calls does not, and a
// single-threaded replay of the same N calls fails identically.
//
// `max_failures` caps the total injected failures, which is how tests
// prove *bounded* recovery: after the budget is spent the injector goes
// quiet and every retried request must complete — zero lost responses.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/check.h"
#include "obs/metrics.h"

namespace shflbw {
namespace runtime {

/// The exception injected for transient faults. The BatchServer's
/// scheduler retries these (bounded, with backoff); anything else
/// propagates to the request futures as a real error.
class TransientFault : public Error {
 public:
  explicit TransientFault(const std::string& what) : Error(what) {}
};

struct FaultInjectorOptions {
  std::uint64_t seed = 0xfa017ULL;
  /// Probability a kernel launch throws TransientFault.
  double launch_failure_rate = 0;
  /// Probability a kernel launch is delayed by launch_delay_seconds
  /// (drawn independently of the failure verdict).
  double launch_delay_rate = 0;
  double launch_delay_seconds = 0;
  /// Probability a weight-cache pack throws TransientFault (before any
  /// cache mutation, so a failed pack leaves the cache untouched).
  double pack_failure_rate = 0;
  /// Total failure budget across launch + pack sites; once spent, the
  /// injector never fails again (delays continue). Defaults to
  /// unlimited.
  std::uint64_t max_failures = ~0ULL;
};

/// Thread-safe; share one instance across an engine/server and its
/// weight cache via std::shared_ptr (EngineOptions::fault_injector).
/// Lock-free by design — all state is atomics, so it carries no
/// capability annotations (common/thread_annotations.h) and may be
/// called with any subsystem mutex held without affecting lock order.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions opts = {});

  /// Called by Engine::RunBatched once per layer launch. May sleep
  /// (injected delay) and may throw TransientFault.
  void OnKernelLaunch();

  /// Called by PackedWeightCache on a cache miss, before packing. May
  /// throw TransientFault; the cache stays unmodified.
  void OnPack();

  [[nodiscard]] std::uint64_t launches() const { return launches_.load(); }
  [[nodiscard]] std::uint64_t launch_failures() const {
    return launch_failures_.load();
  }
  [[nodiscard]] std::uint64_t launch_delays() const {
    return launch_delays_.load();
  }
  [[nodiscard]] std::uint64_t packs() const { return packs_.load(); }
  [[nodiscard]] std::uint64_t pack_failures() const {
    return pack_failures_.load();
  }
  [[nodiscard]] std::uint64_t total_failures() const {
    return failures_spent_.load();
  }

  /// Snapshots the injector's counters into `reg` as gauges
  /// (shflbw_fault_* family). Called by BatchServer::MetricsText so a
  /// chaos run's Prometheus dump carries the injection ledger.
  void PublishMetrics(obs::Registry& reg) const;

  [[nodiscard]] const FaultInjectorOptions& options() const { return opts_; }

 private:
  /// Pure verdict for call ordinal `n` at `site` against `rate`.
  [[nodiscard]] bool Fires(std::uint64_t site, std::uint64_t n,
                           double rate) const;
  /// Claims one unit of the failure budget; false once exhausted.
  bool TakeFailureBudget();

  FaultInjectorOptions opts_;
  std::atomic<std::uint64_t> launches_{0};
  std::atomic<std::uint64_t> packs_{0};
  std::atomic<std::uint64_t> launch_failures_{0};
  std::atomic<std::uint64_t> launch_delays_{0};
  std::atomic<std::uint64_t> pack_failures_{0};
  std::atomic<std::uint64_t> failures_spent_{0};
};

/// Scheduler retry policy for injected-transient failures (and any
/// other TransientFault a backend might raise).
struct RetryPolicy {
  /// Retries after the first attempt; 0 = fail fast.
  int max_retries = 3;
  /// Sleep before retry k (0-based) is backoff_seconds *
  /// backoff_multiplier^k.
  double backoff_seconds = 0.0005;
  double backoff_multiplier = 2.0;
};

}  // namespace runtime
}  // namespace shflbw
