#include "runtime/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

#include "common/build_info.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "quality/quality_planner.h"
#include "runtime/format.h"

namespace shflbw {
namespace runtime {
namespace {

/// Registry counters hold doubles (exact for integer counts to 2^53);
/// ServerStats speaks uint64.
std::uint64_t AsCount(const obs::Counter* c) {
  return static_cast<std::uint64_t>(std::llround(c->Value()));
}

}  // namespace

void ValidateServerOptions(const ServerOptions& opts) {
  SHFLBW_CHECK_MSG(opts.replicas >= 1,
                   "server needs at least one replica, got " << opts.replicas);
  SHFLBW_CHECK_MSG(opts.queue_capacity >= 1,
                   "queue capacity must be >= 1, got " << opts.queue_capacity);
  SHFLBW_CHECK_MSG(opts.max_batch >= 1,
                   "max_batch must be >= 1, got " << opts.max_batch);
  SHFLBW_CHECK_MSG(opts.coalesce_window_seconds >= 0.0,
                   "coalesce window must be >= 0, got "
                       << opts.coalesce_window_seconds << " seconds");

  const AdmissionPolicy& a = opts.admission;
  SHFLBW_CHECK_MSG(
      a.best_effort_occupancy > 0.0 && a.best_effort_occupancy <= 1.0,
      "admission.best_effort_occupancy must be in (0, 1], got "
          << a.best_effort_occupancy);
  SHFLBW_CHECK_MSG(a.service_estimate_seconds >= 0.0,
                   "admission.service_estimate_seconds must be >= 0, got "
                       << a.service_estimate_seconds);
  SHFLBW_CHECK_MSG(a.ewma_alpha > 0.0 && a.ewma_alpha <= 1.0,
                   "admission.ewma_alpha must be in (0, 1], got "
                       << a.ewma_alpha);

  const DegradationPolicy& d = opts.degradation;
  for (std::size_t i = 0; i < d.ladder_floors.size(); ++i) {
    SHFLBW_CHECK_MSG(d.ladder_floors[i] > 0.0 && d.ladder_floors[i] <= 1.0,
                     "degradation.ladder_floors[" << i << "] = "
                         << d.ladder_floors[i] << " must be in (0, 1]");
    SHFLBW_CHECK_MSG(i == 0 || d.ladder_floors[i] < d.ladder_floors[i - 1],
                     "degradation.ladder_floors must be strictly descending; "
                     "got " << d.ladder_floors[i - 1] << " then "
                            << d.ladder_floors[i]);
  }
  SHFLBW_CHECK_MSG(
      d.degrade_queue_fraction > 0.0 && d.degrade_queue_fraction <= 1.0,
      "degradation.degrade_queue_fraction must be in (0, 1], got "
          << d.degrade_queue_fraction);
  SHFLBW_CHECK_MSG(d.upgrade_queue_fraction >= 0.0 &&
                       d.upgrade_queue_fraction < d.degrade_queue_fraction,
                   "degradation.upgrade_queue_fraction must be in [0, "
                   "degrade_queue_fraction); got "
                       << d.upgrade_queue_fraction << " vs degrade fraction "
                       << d.degrade_queue_fraction);
  SHFLBW_CHECK_MSG(
      d.deadline_slack_fraction >= 0.0 && d.deadline_slack_fraction < 1.0,
      "degradation.deadline_slack_fraction must be in [0, 1), got "
          << d.deadline_slack_fraction);
  SHFLBW_CHECK_MSG(d.hysteresis_seals >= 1,
                   "degradation.hysteresis_seals must be >= 1, got "
                       << d.hysteresis_seals);
  SHFLBW_CHECK_MSG(d.latency_window >= 1,
                   "degradation.latency_window must be >= 1, got "
                       << d.latency_window);
  // A forced format pins every layer; a quality ladder exists to move
  // layers between formats/densities. Honouring both would make the
  // ladder levels identical plans — reject the contradiction instead of
  // silently compiling a ladder that cannot degrade.
  SHFLBW_CHECK_MSG(
      d.ladder_floors.empty() || !opts.engine.planner.force_format.has_value(),
      "degradation.ladder_floors and engine.planner.force_format conflict: a "
      "forced format leaves the quality ladder nothing to trade");

  const RetryPolicy& r = opts.retry;
  SHFLBW_CHECK_MSG(r.max_retries >= 0,
                   "retry.max_retries must be >= 0, got " << r.max_retries);
  SHFLBW_CHECK_MSG(r.backoff_seconds >= 0.0,
                   "retry.backoff_seconds must be >= 0, got "
                       << r.backoff_seconds);
  SHFLBW_CHECK_MSG(r.backoff_multiplier >= 1.0,
                   "retry.backoff_multiplier must be >= 1, got "
                       << r.backoff_multiplier);

  const obs::WatchdogOptions& w = opts.watchdog;
  SHFLBW_CHECK_MSG(w.stall_budget_seconds > 0.0,
                   "watchdog.stall_budget_seconds must be > 0, got "
                       << w.stall_budget_seconds);
  SHFLBW_CHECK_MSG(w.poll_interval_seconds > 0.0,
                   "watchdog.poll_interval_seconds must be > 0, got "
                       << w.poll_interval_seconds);
  // A budget inside the coalesce window would flag every windowed seal
  // as a stall: the replica is armed and silent, legitimately.
  SHFLBW_CHECK_MSG(!w.enabled ||
                       w.stall_budget_seconds > opts.coalesce_window_seconds,
                   "watchdog.stall_budget_seconds ("
                       << w.stall_budget_seconds
                       << ") must exceed coalesce_window_seconds ("
                       << opts.coalesce_window_seconds << ")");
}

BatchServer::BatchServer(ModelDesc model, ServerOptions opts)
    : opts_(std::move(opts)),
      telemetry_(std::make_shared<obs::Telemetry>(opts_.telemetry)),
      cache_(std::make_shared<PackedWeightCache>()) {
  ValidateServerOptions(opts_);
  // Autotune re-ranks plans by wall-clock measurement; replicas could
  // diverge onto different plans, breaking both cache sharing and the
  // bit-identical guarantee. Force the deterministic planner.
  opts_.engine.planner.autotune = false;
  // Every engine shares the server's telemetry, so kernel spans and
  // profiling rows from fused launches land in the same trace /
  // registry as the serving-side spans and counters.
  opts_.engine.telemetry = telemetry_;

  // Expand the quality ladder into one PlannerOptions per level. No
  // ladder = one level with the caller's planner options untouched
  // (quality-aware only if the caller enabled it).
  const std::vector<double>& floors = opts_.degradation.ladder_floors;
  std::vector<PlannerOptions> ladder;
  if (!floors.empty()) {
    ladder = quality::LadderPlannerOptions(opts_.engine.planner, floors);
  } else {
    ladder.push_back(opts_.engine.planner);
  }
  const int levels = static_cast<int>(ladder.size());

  engines_.resize(static_cast<std::size_t>(opts_.replicas));
  for (auto& row : engines_) row.reserve(static_cast<std::size_t>(levels));
  level_floors_.reserve(static_cast<std::size_t>(levels));
  level_ratios_.reserve(static_cast<std::size_t>(levels));
  for (int lvl = 0; lvl < levels; ++lvl) {
    EngineOptions eo = opts_.engine;
    eo.planner = ladder[static_cast<std::size_t>(lvl)];
    // Compile each level's (deterministic, replica-identical) plan
    // exactly once — on replica 0, while no scheduler thread exists —
    // and let the other replicas adopt it. Quality-aware planning
    // scores every (layer, format, density, V) mask, so recompiling it
    // replicas-1 more times per level would multiply the most expensive
    // startup step for bit-identical results. All engines pack into the
    // shared cache_; its key (layer, format, density, v) keeps the
    // levels' mixed-density entries distinct and shareable.
    engines_[0].push_back(std::make_unique<Engine>(model, eo, cache_));
    const ExecutionPlan& plan = engines_[0].back()->Plan();
    for (int r = 1; r < opts_.replicas; ++r) {
      engines_[static_cast<std::size_t>(r)].push_back(
          std::make_unique<Engine>(model, eo, cache_));
      engines_[static_cast<std::size_t>(r)].back()->AdoptPlan(plan);
    }
    if (floors.empty()) {
      level_floors_.push_back(-1.0);
      level_ratios_.push_back(-1.0);
    } else {
      level_floors_.push_back(floors[static_cast<std::size_t>(lvl)]);
      level_ratios_.push_back(plan.MinRetainedRatio());
    }
  }
  RegisterMetrics();
  admission_ = AdmissionController(opts_.admission, opts_.replicas);
  controller_ = DegradationController(opts_.degradation, levels);
  start_seconds_ = NowSeconds();

  threads_.reserve(engines_.size());
  for (int r = 0; r < static_cast<int>(engines_.size()); ++r) {
    threads_.emplace_back([this, r] { ReplicaLoop(r); });
  }
  if (opts_.watchdog.enabled) {
    // Watches the replica heartbeats and the process-wide ParallelFor
    // region heartbeats; the callback runs on the watchdog thread with
    // no watchdog lock held, so it may take mu_.
    watchdog_ = std::make_unique<obs::Watchdog>(
        opts_.watchdog,
        std::vector<const obs::HeartbeatRegistry*>{&heartbeats_,
                                                   &obs::GlobalHeartbeats()},
        [this](const std::string& name, double age) { OnStall(name, age); });
  }
}

void BatchServer::RegisterMetrics() {
  obs::Registry& reg = telemetry_->registry();
  c_submitted_ = &reg.GetCounter("shflbw_requests_submitted_total",
                                 "Requests admitted to the queue");
  c_completed_ = &reg.GetCounter("shflbw_requests_completed_total",
                                 "Requests resolved by a launch (ok or "
                                 "error)");
  c_shed_ = &reg.GetCounter("shflbw_requests_shed_total",
                            "Deadline-expired requests dropped at seal");
  c_rejected_queue_full_ =
      &reg.GetCounter("shflbw_requests_rejected_total{reason=\"queue_full\"}",
                      "Requests rejected at admission");
  c_rejected_deadline_ =
      &reg.GetCounter("shflbw_requests_rejected_total{reason=\"deadline\"}");
  c_rejected_shutdown_ =
      &reg.GetCounter("shflbw_requests_rejected_total{reason=\"shutdown\"}");
  c_retries_ = &reg.GetCounter("shflbw_launch_retries_total",
                               "Transient-fault retries across all batches");
  c_failed_ = &reg.GetCounter("shflbw_requests_failed_total",
                              "Requests resolved with an exception");
  c_per_replica_.reserve(engines_.size());
  for (std::size_t r = 0; r < engines_.size(); ++r) {
    c_per_replica_.push_back(&reg.GetCounter(
        "shflbw_replica_completed_total{replica=\"" + std::to_string(r) +
            "\"}",
        "Requests completed, by replica"));
  }
  c_per_level_.reserve(engines_.front().size());
  for (std::size_t l = 0; l < engines_.front().size(); ++l) {
    c_per_level_.push_back(&reg.GetCounter(
        "shflbw_level_completed_total{level=\"" + std::to_string(l) + "\"}",
        "Requests completed, by ladder level"));
  }
  h_queue_seconds_ = &reg.GetHistogram(
      "shflbw_request_queue_seconds",
      "Submit -> batch seal, including the coalesce window");
  h_retry_seconds_ = &reg.GetHistogram(
      "shflbw_request_retry_seconds",
      "Retry overhead of faulted launches: failed attempts + backoff");
  h_run_seconds_ = &reg.GetHistogram("shflbw_request_run_seconds",
                                     "Final fused launch wall-clock");
  h_total_seconds_ = &reg.GetHistogram("shflbw_request_total_seconds",
                                       "Submit -> completion");
  h_batch_width_ = &reg.GetHistogram(
      "shflbw_batch_width", "Requests fused per launch", /*min_value=*/1.0);
  g_queue_depth_ = &reg.GetGauge("shflbw_queue_depth",
                                 "Requests admitted but not yet dispatched");
  g_level_ = &reg.GetGauge("shflbw_ladder_level",
                           "Degradation controller's current level");
  c_stalls_ = &reg.GetCounter("shflbw_watchdog_stalls_total",
                              "Stall episodes detected by the watchdog");
}

BatchServer::~BatchServer() { Shutdown(); }

const ExecutionPlan& BatchServer::Plan() const { return PlanAt(0); }

const ExecutionPlan& BatchServer::PlanAt(int level) const {
  SHFLBW_CHECK_MSG(level >= 0 && level < levels(),
                   "plan level " << level << " out of range [0, " << levels()
                                 << ")");
  // Safe concurrently with serving: every level's plan was compiled in
  // the constructor, so this is a read of an already-initialized value.
  return engines_.front()[static_cast<std::size_t>(level)]->Plan();
}

int BatchServer::levels() const {
  return static_cast<int>(engines_.front().size());
}

double BatchServer::LevelFloor(int level) const {
  SHFLBW_CHECK_MSG(level >= 0 && level < levels(),
                   "ladder level " << level << " out of range [0, " << levels()
                                   << ")");
  return level_floors_[static_cast<std::size_t>(level)];
}

double BatchServer::LevelRetainedRatio(int level) const {
  SHFLBW_CHECK_MSG(level >= 0 && level < levels(),
                   "ladder level " << level << " out of range [0, " << levels()
                                   << ")");
  return level_ratios_[static_cast<std::size_t>(level)];
}

void BatchServer::Warmup() {
  // One forced request per ladder level through the regular queue:
  // whichever replica serves level L packs every (layer, format,
  // density, v) L's plan selects into the shared cache, and all
  // replicas resolve to the same keys, so later requests — including
  // batches a mid-overload downshift moves to a deeper level — perform
  // zero conversions. Going through the scheduler (instead of touching
  // an engine from this thread) keeps the one-thread-per-engine
  // invariant even when Warmup is called while requests are in flight.
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<std::size_t>(levels()));
  for (int lvl = 0; lvl < levels(); ++lvl) {
    futs.push_back(SubmitInternal(Request{opts_.engine.activation_seed}, lvl));
  }
  for (std::future<Response>& f : futs) (void)f.get();
}

std::future<Response> BatchServer::Enqueue(Request req, int force_level) {
  Pending p;
  p.req = req;
  p.id = next_id_++;
  p.submit_time = NowSeconds();
  p.force_level = force_level;
  std::future<Response> fut = p.promise.get_future();
  const std::uint64_t id = p.id;
  const double submit_time = p.submit_time;
  queue_.push_back(std::move(p));
  c_submitted_->Add();
  g_queue_depth_->Set(static_cast<double>(queue_.size()));
  obs::FlightEvent fe;
  fe.kind = obs::FlightKind::kSubmit;
  fe.t_seconds = submit_time;
  fe.request_id = id;
  fe.detail = static_cast<std::int32_t>(queue_.size());
  telemetry_->flight().Record(fe);
  return fut;
}

void BatchServer::TraceAdmission(double begin, std::uint64_t id,
                                 SubmitStatus verdict) {
  if (verdict != SubmitStatus::kAccepted) {
    // Rejections go to the always-on flight ring (accepted submits are
    // covered by Enqueue's kSubmit event).
    obs::FlightEvent fe;
    fe.kind = obs::FlightKind::kReject;
    fe.t_seconds = NowSeconds();
    fe.request_id = id;
    fe.detail = static_cast<std::int32_t>(verdict);
    fe.SetLabel(SubmitStatusName(verdict));
    telemetry_->flight().Record(fe);
  }
  if (!telemetry_->tracing_on()) return;
  obs::TraceEvent ev;
  ev.kind = obs::SpanKind::kAdmission;
  ev.begin_seconds = begin;
  ev.end_seconds = NowSeconds();
  ev.request_id = id;
  ev.detail = static_cast<std::int32_t>(verdict);
  ev.SetLabel(SubmitStatusName(verdict));
  telemetry_->trace().Record(ev);
}

SubmitStatus BatchServer::Submit(Request req, std::future<Response>* out) {
  const double begin = NowSeconds();
  UniqueLock lock(mu_);
  const std::size_t cap = admission_.CapacityFor(req.qos, opts_.queue_capacity);
  not_full_.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) {
    return stop_ || queue_.size() < cap;
  });
  if (stop_) {
    // Includes producers that were blocked on a full queue when
    // Shutdown ran: they wake here with a typed rejection, never hang.
    c_rejected_shutdown_->Add();
    TraceAdmission(begin, obs::kNoId, SubmitStatus::kRejectedShutdown);
    return SubmitStatus::kRejectedShutdown;
  }
  if (!admission_.DeadlineFeasible(req.qos, req.deadline_seconds,
                                   queue_.size())) {
    c_rejected_deadline_->Add();
    TraceAdmission(begin, obs::kNoId,
                   SubmitStatus::kRejectedInfeasibleDeadline);
    return SubmitStatus::kRejectedInfeasibleDeadline;
  }
  *out = Enqueue(req, /*force_level=*/-1);
  const std::uint64_t id = next_id_ - 1;
  lock.Unlock();
  TraceAdmission(begin, id, SubmitStatus::kAccepted);
  not_empty_.NotifyOne();
  return SubmitStatus::kAccepted;
}

std::future<Response> BatchServer::Submit(Request req) {
  std::future<Response> fut;
  const SubmitStatus status = Submit(req, &fut);
  SHFLBW_CHECK_MSG(status == SubmitStatus::kAccepted,
                   "BatchServer: submit rejected ("
                       << SubmitStatusName(status) << ")");
  return fut;
}

SubmitStatus BatchServer::TrySubmit(Request req, std::future<Response>* out) {
  const double begin = NowSeconds();
  std::uint64_t id = obs::kNoId;
  {
    MutexLock lock(mu_);
    if (stop_) {
      c_rejected_shutdown_->Add();
      TraceAdmission(begin, obs::kNoId, SubmitStatus::kRejectedShutdown);
      return SubmitStatus::kRejectedShutdown;
    }
    const std::size_t cap =
        admission_.CapacityFor(req.qos, opts_.queue_capacity);
    if (queue_.size() >= cap) {
      c_rejected_queue_full_->Add();
      TraceAdmission(begin, obs::kNoId, SubmitStatus::kRejectedQueueFull);
      return SubmitStatus::kRejectedQueueFull;
    }
    if (!admission_.DeadlineFeasible(req.qos, req.deadline_seconds,
                                     queue_.size())) {
      c_rejected_deadline_->Add();
      TraceAdmission(begin, obs::kNoId,
                     SubmitStatus::kRejectedInfeasibleDeadline);
      return SubmitStatus::kRejectedInfeasibleDeadline;
    }
    *out = Enqueue(req, /*force_level=*/-1);
    id = next_id_ - 1;
  }
  TraceAdmission(begin, id, SubmitStatus::kAccepted);
  not_empty_.NotifyOne();
  return SubmitStatus::kAccepted;
}

std::future<Response> BatchServer::SubmitInternal(Request req,
                                                  int force_level) {
  // Warmup path: blocking, full queue share, no admission checks (the
  // request is the server's own and carries no deadline).
  UniqueLock lock(mu_);
  not_full_.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) {
    return stop_ || queue_.size() < opts_.queue_capacity;
  });
  SHFLBW_CHECK_MSG(!stop_, "BatchServer: warmup after shutdown");
  std::future<Response> fut = Enqueue(req, force_level);
  lock.Unlock();
  not_empty_.NotifyOne();
  return fut;
}

void BatchServer::Drain() {
  // The idle condition is evaluated under mu_ by wait() itself — both
  // on entry and after every wakeup — so there is no unlocked
  // check-then-wait gap for a concurrent Submit to slip through:
  // either the submit lands before a predicate evaluation (next_id_
  // grows, Drain keeps waiting for its retirement) or after Drain has
  // already observed completed_ + shed_ == next_id_ and returned, which
  // is correct — that request was not "submitted so far". Both counters
  // are only ever incremented under mu_, batch-atomically with the
  // idle_ notification and after the batch's promises (served and shed
  // alike) were resolved, so Drain cannot miss the transition and every
  // pre-Drain future is ready when it returns.
  UniqueLock lock(mu_);
  idle_.Wait(mu_, [&]() SHFLBW_REQUIRES(mu_) {
    return completed_ + shed_ == next_id_;
  });
}

void BatchServer::Shutdown() {
  // Stop the watchdog before anything else: its stall callback reads
  // server state and must never observe the teardown as a "stall".
  // Moved out under mu_ (a concurrent second caller moves an empty
  // pointer), joined with no lock held — the callback takes mu_.
  std::unique_ptr<obs::Watchdog> watchdog;
  {
    MutexLock lock(mu_);
    watchdog = std::move(watchdog_);
  }
  watchdog.reset();
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    stop_ = true;
    to_join.swap(threads_);  // second caller swaps an empty vector
  }
  not_empty_.NotifyAll();
  not_full_.NotifyAll();
  for (std::thread& th : to_join) th.join();
}

ServerStats BatchServer::Stats() const {
  MutexLock lock(mu_);
  // Snapshot view over the registry: every counter here is only ever
  // incremented under mu_, so reading them under mu_ yields the same
  // exact values the old member counters did.
  ServerStats s;
  s.submitted = next_id_;
  s.completed = completed_;
  s.shed = shed_;
  s.rejected_queue_full = AsCount(c_rejected_queue_full_);
  s.rejected_deadline = AsCount(c_rejected_deadline_);
  s.rejected_shutdown = AsCount(c_rejected_shutdown_);
  s.retries = AsCount(c_retries_);
  s.failed = AsCount(c_failed_);
  s.per_replica.reserve(c_per_replica_.size());
  for (const obs::Counter* c : c_per_replica_) {
    s.per_replica.push_back(AsCount(c));
  }
  s.per_level.reserve(c_per_level_.size());
  for (const obs::Counter* c : c_per_level_) s.per_level.push_back(AsCount(c));
  s.level = controller_.level();
  s.downshifts = controller_.downshifts();
  s.upshifts = controller_.upshifts();
  s.estimated_service_seconds = admission_.EstimatedServiceSeconds();
  return s;
}

std::string BatchServer::MetricsText() const {
  obs::Registry& reg = telemetry_->registry();
  // Refresh the point-in-time gauges the hot path doesn't maintain.
  {
    MutexLock lock(mu_);
    g_queue_depth_->Set(static_cast<double>(queue_.size()));
    g_level_->Set(controller_.level());
    reg.GetGauge("shflbw_ladder_downshifts", "Degradation downshifts")
        .Set(static_cast<double>(controller_.downshifts()));
    reg.GetGauge("shflbw_ladder_upshifts", "Degradation upshifts")
        .Set(static_cast<double>(controller_.upshifts()));
    reg.GetGauge("shflbw_admission_estimated_service_seconds",
                 "Admission controller's per-request service EWMA")
        .Set(admission_.EstimatedServiceSeconds());
  }
  const PoolStats pool = GetPoolStats();
  reg.GetGauge("shflbw_pool_workers", "Worker-pool threads spawned")
      .Set(pool.workers);
  reg.GetGauge("shflbw_pool_active_regions",
               "ParallelFor regions currently executing")
      .Set(pool.active_regions);
  reg.GetGauge("shflbw_pool_regions_total",
               "Parallel regions run since process start")
      .Set(static_cast<double>(pool.regions_entered));
  if (const auto& fi = opts_.engine.fault_injector) fi->PublishMetrics(reg);
  return reg.ExpositionText();
}

bool BatchServer::DumpTrace(const std::string& path) const {
  return telemetry_->trace().DumpChromeTrace(path);
}

void BatchServer::ReplicaLoop(int replica) {
  auto& level_engines = engines_[static_cast<std::size_t>(replica)];
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, opts_.max_batch));
  const bool metrics = telemetry_->metrics_on();
  // Heartbeat discipline: armed whenever this thread owns work (from
  // wait-return to batch retirement), disarmed while it legitimately
  // blocks on an empty queue — so armed silence is always a stall.
  const int hb = heartbeats_.Register("replica" + std::to_string(replica));
  UniqueLock lock(mu_);
  for (;;) {
    heartbeats_.Disarm(hb);
    not_empty_.Wait(mu_,
                    [&]() SHFLBW_REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    heartbeats_.Arm(hb, NowSeconds());
    // Drain-on-shutdown: keep serving until the queue is empty, so
    // every future obtained from Submit resolves.
    if (queue_.empty()) {  // implies stop_
      heartbeats_.Unregister(hb);
      return;
    }
    // Coalescing window: hold a partial batch open briefly so closely
    // spaced requests fuse into one launch. Bounded (fairness — the
    // oldest request pays at most the window on top of its queue wait)
    // and cut short by shutdown or a sealed batch. A batch seals at
    // max_batch, clamped to the queue capacity: with a bounded queue
    // shorter than max_batch, Submit blocks at capacity, so a
    // capacity-full queue is as fused as this server can get and must
    // launch rather than stall out the whole window. The queue can
    // have been emptied by a sibling replica when the wait returns, so
    // re-loop rather than assume work remains. Forced (warmup)
    // requests skip the window: they run alone, immediately.
    const std::size_t seal = std::min(max_batch, opts_.queue_capacity);
    const double window_start = NowSeconds();
    bool windowed = false;
    if (opts_.coalesce_window_seconds > 0 && !stop_ &&
        queue_.front().force_level < 0 && queue_.size() < seal) {
      windowed = true;
      not_empty_.WaitFor(mu_, opts_.coalesce_window_seconds,
                         [&]() SHFLBW_REQUIRES(mu_) {
                           return stop_ || queue_.size() >= seal;
                         });
      heartbeats_.Beat(hb, NowSeconds());
      if (queue_.empty()) continue;
    }

    // Seal the batch: the K oldest requests, FIFO submission order.
    // Deadline-expired requests (except kCritical) are shed here — they
    // resolve with kDeadlineExceeded instead of occupying a width slot
    // in the fused launch, so the launch carries only live work. A
    // forced (warmup) request always runs alone at its pinned level: it
    // exists to pack one level's weights, and fusing user traffic into
    // it would serve that traffic at a level the controller never
    // chose.
    const double seal_time = NowSeconds();
    const std::size_t depth_at_seal = queue_.size();
    std::vector<Pending> batch;
    std::vector<Pending> dropped;
    int level = 0;
    if (queue_.front().force_level >= 0) {
      level = queue_.front().force_level;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    } else {
      while (!queue_.empty() && batch.size() < max_batch &&
             queue_.front().force_level < 0) {
        Pending p = std::move(queue_.front());
        queue_.pop_front();
        const bool expired = p.req.deadline_seconds > 0 &&
                             p.req.qos != QoS::kCritical &&
                             seal_time - p.submit_time > p.req.deadline_seconds;
        (expired ? dropped : batch).push_back(std::move(p));
      }
      // The controller observes every seal (even an all-shed one — a
      // queue full of dead work is the strongest pressure signal there
      // is) and picks the level this batch runs at.
      level = controller_.OnSeal(depth_at_seal, opts_.queue_capacity);
      if (controller_.level() != last_observed_level_) {
        // The shared controller moved on this seal: flight-record the
        // shift (old level in detail, new level in the level field).
        obs::FlightEvent fe;
        fe.kind = obs::FlightKind::kShift;
        fe.t_seconds = seal_time;
        fe.replica = static_cast<std::int8_t>(replica);
        fe.level = static_cast<std::int16_t>(controller_.level());
        fe.detail = last_observed_level_;
        telemetry_->flight().Record(fe);
        last_observed_level_ = controller_.level();
      }
    }
    const std::size_t take = batch.size();
    const std::uint64_t batch_id = next_batch_id_++;
    g_queue_depth_->Set(static_cast<double>(queue_.size()));
    g_level_->Set(controller_.level());
    lock.Unlock();
    heartbeats_.Beat(hb, NowSeconds());
    {
      obs::FlightEvent fe;
      fe.kind = obs::FlightKind::kSeal;
      fe.t_seconds = seal_time;
      fe.batch_id = batch_id;
      fe.replica = static_cast<std::int8_t>(replica);
      fe.level = static_cast<std::int16_t>(level);
      fe.width = static_cast<std::int32_t>(take);
      fe.detail = static_cast<std::int32_t>(dropped.size());
      fe.detail2 = static_cast<std::int32_t>(depth_at_seal);
      telemetry_->flight().Record(fe);
    }
    // Freed slots: wake every blocked Submit, not just one.
    if (take + dropped.size() > 1) {
      not_full_.NotifyAll();
    } else {
      not_full_.NotifyOne();
    }

    const bool tracing = telemetry_->tracing_on();
    if (tracing) {
      // Queue spans of everything this seal consumed, a coalesce span
      // when the replica actually held the window open, and a shed
      // span per deadline-expired drop.
      obs::TraceEvent base;
      base.batch_id = batch_id;
      base.replica = replica;
      base.level = level;
      if (windowed) {
        obs::TraceEvent ev = base;
        ev.kind = obs::SpanKind::kCoalesce;
        ev.begin_seconds = window_start;
        ev.end_seconds = seal_time;
        ev.width = static_cast<std::int32_t>(take);
        telemetry_->trace().Record(ev);
      }
      for (const Pending& p : batch) {
        obs::TraceEvent ev = base;
        ev.kind = obs::SpanKind::kQueue;
        ev.begin_seconds = p.submit_time;
        ev.end_seconds = seal_time;
        ev.request_id = p.id;
        telemetry_->trace().Record(ev);
      }
      for (const Pending& p : dropped) {
        obs::TraceEvent ev = base;
        ev.kind = obs::SpanKind::kQueue;
        ev.begin_seconds = p.submit_time;
        ev.end_seconds = seal_time;
        ev.request_id = p.id;
        telemetry_->trace().Record(ev);
        ev.kind = obs::SpanKind::kShed;
        ev.begin_seconds = seal_time;
        ev.end_seconds = NowSeconds();
        ev.detail = 1;
        telemetry_->trace().Record(ev);
      }
    }

    // Resolve shed promises before the counters are bumped under
    // relock, so Drain returning implies every future is ready.
    for (Pending& p : dropped) {
      Response resp;
      resp.id = p.id;
      resp.status = ResponseStatus::kDeadlineExceeded;
      resp.replica = replica;
      resp.batch_width = 0;
      resp.plan_level = level;
      resp.queue_seconds = seal_time - p.submit_time;
      if (metrics) h_queue_seconds_->Record(resp.queue_seconds);
      obs::FlightEvent fe;
      fe.kind = obs::FlightKind::kShed;
      fe.t_seconds = seal_time;
      fe.request_id = p.id;
      fe.batch_id = batch_id;
      fe.replica = static_cast<std::int8_t>(replica);
      fe.level = static_cast<std::int16_t>(level);
      fe.value = resp.queue_seconds;
      telemetry_->flight().Record(fe);
      p.promise.set_value(std::move(resp));
    }

    if (batch.empty()) {
      lock.Lock();
      shed_ += dropped.size();
      c_shed_->Add(static_cast<double>(dropped.size()));
      if (completed_ + shed_ == next_id_) idle_.NotifyAll();
      continue;
    }

    // queue_seconds stops here — coalesce time — for every request in
    // the batch; run_seconds covers the fused launch (including any
    // retries), so the split still sums to submit-to-completion per
    // request.
    Engine& engine = *level_engines[static_cast<std::size_t>(level)];
    const double dispatch_time = seal_time;
    std::vector<std::uint64_t> seeds;
    seeds.reserve(take);
    for (const Pending& p : batch) seeds.push_back(p.req.activation_seed);
    BatchContext ctx;
    ctx.batch_id = batch_id;
    ctx.replica = replica;
    ctx.level = level;
    {
      obs::FlightEvent fe;
      fe.kind = obs::FlightKind::kLaunch;
      fe.t_seconds = dispatch_time;
      fe.batch_id = batch_id;
      fe.replica = static_cast<std::int8_t>(replica);
      fe.level = static_cast<std::int16_t>(level);
      fe.width = static_cast<std::int32_t>(take);
      telemetry_->flight().Record(fe);
    }
    int attempts = 0;
    bool batch_failed = false;
    double done = dispatch_time;
    // Start of the attempt that ultimately succeeds: everything before
    // it (failed attempts + backoff sleeps) is retry overhead, reported
    // separately so queue + retry + run == submit-to-completion exactly
    // even for retried launches.
    double final_attempt_start = dispatch_time;
    try {
      // Bounded retry-with-backoff on transient faults (injected or
      // backend-raised). A failed launch leaves the cache and the
      // engine's streaming state unmodified — the injector fires before
      // any mutation — so a retry is a clean re-execution and the
      // eventual output is bit-identical to an unfaulted run.
      // Non-transient errors propagate immediately.
      BatchRunResult run;
      for (;;) {
        try {
          run = engine.RunBatched(seeds, ctx);
          break;
        } catch (const TransientFault&) {
          if (attempts >= opts_.retry.max_retries) throw;
          const double fail_time = NowSeconds();
          const double backoff =
              opts_.retry.backoff_seconds *
              std::pow(opts_.retry.backoff_multiplier, attempts);
          if (backoff > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
          }
          ++attempts;
          final_attempt_start = NowSeconds();
          heartbeats_.Beat(hb, final_attempt_start);
          {
            obs::FlightEvent fe;
            fe.kind = obs::FlightKind::kRetry;
            fe.t_seconds = fail_time;
            fe.batch_id = batch_id;
            fe.replica = static_cast<std::int8_t>(replica);
            fe.level = static_cast<std::int16_t>(level);
            fe.width = static_cast<std::int32_t>(take);
            fe.detail = attempts;
            telemetry_->flight().Record(fe);
          }
          if (tracing) {
            obs::TraceEvent ev;
            ev.kind = obs::SpanKind::kRetry;
            ev.begin_seconds = fail_time;
            ev.end_seconds = final_attempt_start;
            ev.batch_id = batch_id;
            ev.replica = replica;
            ev.level = level;
            ev.width = static_cast<std::int32_t>(take);
            ev.attempt = attempts;
            telemetry_->trace().Record(ev);
          }
        }
      }
      done = NowSeconds();
      const double retry_s = final_attempt_start - dispatch_time;
      const double run_s = done - final_attempt_start;
      {
        obs::FlightEvent fe;
        fe.kind = obs::FlightKind::kComplete;
        fe.t_seconds = done;
        fe.batch_id = batch_id;
        fe.replica = static_cast<std::int8_t>(replica);
        fe.level = static_cast<std::int16_t>(level);
        fe.width = static_cast<std::int32_t>(take);
        fe.detail = attempts;
        fe.value = run_s;
        telemetry_->flight().Record(fe);
      }
      if (metrics) {
        h_batch_width_->Record(static_cast<double>(take));
        h_run_seconds_->Record(run_s);
        if (attempts > 0) h_retry_seconds_->Record(retry_s);
      }
      for (std::size_t i = 0; i < take; ++i) {
        Pending& p = batch[i];
        Response resp;
        resp.id = p.id;
        resp.replica = replica;
        resp.batch_width = static_cast<int>(take);
        resp.plan_level = level;
        resp.retained_ratio = level_ratios_[static_cast<std::size_t>(level)];
        resp.retries = attempts;
        resp.queue_seconds = dispatch_time - p.submit_time;
        resp.retry_seconds = retry_s;
        resp.run_seconds = run_s;
        resp.packs_performed = run.packs_performed;
        resp.output = std::move(run.outputs[i]);
        if (metrics) {
          h_queue_seconds_->Record(resp.queue_seconds);
          h_total_seconds_->Record(done - p.submit_time);
        }
        if (tracing) {
          obs::TraceEvent ev;
          ev.kind = obs::SpanKind::kRun;
          ev.begin_seconds = dispatch_time;
          ev.end_seconds = done;
          ev.request_id = p.id;
          ev.batch_id = batch_id;
          ev.replica = replica;
          ev.level = level;
          ev.width = static_cast<std::int32_t>(take);
          ev.retries = attempts;
          telemetry_->trace().Record(ev);
        }
        p.promise.set_value(std::move(resp));
      }
    } catch (...) {
      batch_failed = true;
      done = NowSeconds();
      obs::FlightEvent fe;
      fe.kind = obs::FlightKind::kComplete;
      fe.t_seconds = done;
      fe.batch_id = batch_id;
      fe.replica = static_cast<std::int8_t>(replica);
      fe.level = static_cast<std::int16_t>(level);
      fe.width = static_cast<std::int32_t>(take);
      fe.detail = attempts;
      fe.SetLabel("error");
      telemetry_->flight().Record(fe);
      for (Pending& p : batch) {
        p.promise.set_exception(std::current_exception());
      }
    }
    heartbeats_.Beat(hb, done);

    lock.Lock();
    // Retire the whole batch (served and shed together) under one lock
    // hold, atomically with the idle_ notification Drain waits on. The
    // protocol counters and their registry mirrors move together.
    completed_ += take;
    shed_ += dropped.size();
    c_completed_->Add(static_cast<double>(take));
    if (!dropped.empty()) c_shed_->Add(static_cast<double>(dropped.size()));
    if (attempts > 0) c_retries_->Add(attempts);
    c_per_replica_[static_cast<std::size_t>(replica)]->Add(
        static_cast<double>(take));
    c_per_level_[static_cast<std::size_t>(level)]->Add(
        static_cast<double>(take));
    if (batch_failed) {
      c_failed_->Add(static_cast<double>(take));
    } else {
      // Feed the control plane: the admission EWMA learns per-request
      // service time from the fused launch (one observation per
      // launch), the degradation controller sees every deadline-
      // carrying completion's latency/deadline ratio. Warmup (forced)
      // batches are excluded — they measure pack latency, not
      // steady-state service.
      if (batch.front().force_level < 0) {
        admission_.RecordServiceTime((done - dispatch_time) /
                                     static_cast<double>(take));
        for (const Pending& p : batch) {
          if (p.req.deadline_seconds > 0) {
            controller_.RecordCompletion(done - p.submit_time,
                                         p.req.deadline_seconds);
          }
        }
      }
    }
    if (completed_ + shed_ == next_id_) idle_.NotifyAll();
  }
}

namespace {

std::string FmtDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// The exact label suffix the engine appends to the plan drift gauges
/// (shflbw_plan_{modeled,measured}_seconds / shflbw_plan_drift_ratio),
/// so statusz can look up per-layer drift by reconstructing the name.
std::string PlanGaugeLabel(const LayerPlan& lp) {
  std::ostringstream os;
  os << "{layer=\"" << lp.name << "\",format=\"" << FormatName(lp.format)
     << "\",density=\"" << lp.density << "\",v=\"" << lp.v << "\"}";
  return os.str();
}

std::string GaugeCell(const obs::Registry& reg, const std::string& name) {
  const obs::Gauge* g = reg.FindGauge(name);
  return g == nullptr ? std::string("-") : FmtDouble(g->Value());
}

}  // namespace

obs::StatusReport BatchServer::Status() const {
  obs::StatusReport report;
  report.title = "shflbw batch server";
  const double now = NowSeconds();

  {
    const BuildInfo& bi = GetBuildInfo();
    obs::StatusSection& s = report.AddSection("build");
    s.AddText("git_sha", bi.git_sha);
    s.AddText("compiler", bi.compiler);
    s.AddText("build_type", bi.build_type);
    s.AddText("cxx_flags", bi.cxx_flags);
    s.AddNumber("cxx_standard", static_cast<double>(bi.cxx_standard));
    s.AddNumber("obs_compiled_in", bi.obs_compiled_in ? 1 : 0);
    s.AddNumber("threads", ParallelThreadCount());
    s.AddNumber("uptime_seconds", now - start_seconds_);
  }

  // Stats() takes mu_ itself; the second short hold picks up the bits
  // the snapshot struct doesn't carry. Everything after reads lock-free
  // obs state or coarser-ranked locks (cache is rank 30 > server 20,
  // taken with mu_ released).
  const ServerStats stats = Stats();
  std::size_t depth = 0;
  double p99_ratio = -1;
  std::string last_stall;
  double last_stall_age = 0;
  bool watchdog_running = false;
  {
    MutexLock lock(mu_);
    depth = queue_.size();
    p99_ratio = controller_.WindowP99Ratio();
    last_stall = last_stall_;
    last_stall_age = last_stall_age_;
    watchdog_running = watchdog_ != nullptr;
  }

  {
    obs::StatusSection& s = report.AddSection("server");
    s.AddNumber("replicas", replicas());
    s.AddNumber("levels", levels());
    s.AddNumber("queue_depth", static_cast<double>(depth));
    s.AddNumber("queue_capacity", static_cast<double>(opts_.queue_capacity));
    s.AddNumber("queue_occupancy",
                opts_.queue_capacity > 0
                    ? static_cast<double>(depth) /
                          static_cast<double>(opts_.queue_capacity)
                    : 0.0);
    s.AddNumber("max_batch", opts_.max_batch);
    s.AddNumber("coalesce_window_seconds", opts_.coalesce_window_seconds);
    s.AddNumber("submitted", static_cast<double>(stats.submitted));
    s.AddNumber("completed", static_cast<double>(stats.completed));
    s.AddNumber("shed", static_cast<double>(stats.shed));
    s.AddNumber("rejected_queue_full",
                static_cast<double>(stats.rejected_queue_full));
    s.AddNumber("rejected_deadline",
                static_cast<double>(stats.rejected_deadline));
    s.AddNumber("rejected_shutdown",
                static_cast<double>(stats.rejected_shutdown));
    s.AddNumber("retries", static_cast<double>(stats.retries));
    s.AddNumber("failed", static_cast<double>(stats.failed));
    s.AddNumber("estimated_service_seconds", stats.estimated_service_seconds);
  }

  {
    obs::StatusSection& s = report.AddSection("ladder");
    s.AddNumber("level", stats.level);
    s.AddNumber("downshifts", static_cast<double>(stats.downshifts));
    s.AddNumber("upshifts", static_cast<double>(stats.upshifts));
    s.AddNumber("window_p99_ratio", p99_ratio);
    obs::StatusTable& t = s.AddTable(
        "levels", {"level", "floor", "retained", "modeled_s", "completed"});
    for (int lvl = 0; lvl < levels(); ++lvl) {
      const std::size_t l = static_cast<std::size_t>(lvl);
      t.rows.push_back({std::to_string(lvl), FmtDouble(level_floors_[l]),
                        FmtDouble(level_ratios_[l]),
                        FmtDouble(PlanAt(lvl).ModeledTotalSeconds()),
                        l < stats.per_level.size()
                            ? std::to_string(stats.per_level[l])
                            : std::string("-")});
    }
  }

  {
    obs::StatusSection& s = report.AddSection("replicas");
    obs::StatusTable& t = s.AddTable(
        "heartbeats", {"name", "armed", "beats", "age_s", "completed"});
    for (const obs::HeartbeatRegistry::View& v : heartbeats_.Snapshot()) {
      std::string completed_cell = "-";
      if (v.name.rfind("replica", 0) == 0) {
        const int idx = std::atoi(v.name.c_str() + 7);
        if (idx >= 0 &&
            idx < static_cast<int>(stats.per_replica.size())) {
          completed_cell = std::to_string(
              stats.per_replica[static_cast<std::size_t>(idx)]);
        }
      }
      t.rows.push_back({v.name, v.armed ? "yes" : "no",
                        std::to_string(v.beats),
                        v.beat_seconds > 0 ? FmtDouble(now - v.beat_seconds)
                                           : std::string("-"),
                        completed_cell});
    }
  }

  {
    obs::StatusSection& s = report.AddSection("weight_cache");
    s.AddNumber("entries", static_cast<double>(cache_->Size()));
    s.AddNumber("total_packs", static_cast<double>(cache_->TotalPacks()));
    s.AddNumber("approx_bytes", static_cast<double>(cache_->ApproxBytes()));
  }

  {
    const PoolStats pool = GetPoolStats();
    obs::StatusSection& s = report.AddSection("worker_pool");
    s.AddNumber("workers", pool.workers);
    s.AddNumber("active_regions", pool.active_regions);
    s.AddNumber("regions_total", static_cast<double>(pool.regions_entered));
    obs::StatusTable& t =
        s.AddTable("regions", {"name", "armed", "beats", "age_s"});
    for (const obs::HeartbeatRegistry::View& v :
         obs::GlobalHeartbeats().Snapshot()) {
      t.rows.push_back({v.name, v.armed ? "yes" : "no",
                        std::to_string(v.beats),
                        v.beat_seconds > 0 ? FmtDouble(now - v.beat_seconds)
                                           : std::string("-")});
    }
  }

  {
    obs::StatusSection& s = report.AddSection("watchdog");
    s.AddNumber("enabled", opts_.watchdog.enabled ? 1 : 0);
    s.AddNumber("running", watchdog_running ? 1 : 0);
    s.AddNumber("stall_budget_seconds", opts_.watchdog.stall_budget_seconds);
    s.AddNumber("poll_interval_seconds",
                opts_.watchdog.poll_interval_seconds);
    s.AddNumber("stalls", static_cast<double>(AsCount(c_stalls_)));
    s.AddText("last_stall", last_stall.empty() ? "-" : last_stall);
    s.AddNumber("last_stall_age_seconds", last_stall_age);
  }

  {
    const obs::FlightRecorder& flight = telemetry_->flight();
    obs::StatusSection& s = report.AddSection("flight_recorder");
    s.AddNumber("total", static_cast<double>(flight.total()));
    s.AddNumber("dropped", static_cast<double>(flight.dropped()));
    s.AddNumber("capacity", static_cast<double>(flight.capacity()));
  }

  {
    // The serving level's plan, with measured-vs-modeled drift looked
    // up from the gauges the engine publishes after each run ("-" until
    // a layer has been measured).
    const obs::Registry& reg = telemetry_->registry();
    const ExecutionPlan& plan = PlanAt(stats.level);
    obs::StatusSection& s = report.AddSection("plan");
    s.AddText("model", plan.model);
    s.AddText("gpu", plan.gpu);
    obs::StatusTable& t =
        s.AddTable("layers", {"layer", "format", "density", "v", "modeled_s",
                              "retained", "measured_s", "drift"});
    for (const LayerPlan& lp : plan.layers) {
      const std::string label = PlanGaugeLabel(lp);
      t.rows.push_back(
          {lp.name, FormatName(lp.format), FmtDouble(lp.density),
           std::to_string(lp.v), FmtDouble(lp.modeled_s),
           FmtDouble(lp.retained_ratio),
           GaugeCell(reg, "shflbw_plan_measured_seconds" + label),
           GaugeCell(reg, "shflbw_plan_drift_ratio" + label)});
    }
  }

  return report;
}

std::string BatchServer::StatusText() const { return Status().RenderText(); }

std::string BatchServer::StatusJson() const { return Status().RenderJson(); }

bool BatchServer::DumpStatus(const std::string& path_base) const {
  const obs::StatusReport report = Status();
  const bool text_ok = report.DumpText(path_base + ".txt");
  const bool json_ok = report.DumpJson(path_base + ".json");
  return text_ok && json_ok;
}

bool BatchServer::DumpFlightRecorder(const std::string& path) const {
  return telemetry_->flight().DumpJson(path);
}

void BatchServer::OnStall(const std::string& name, double age_seconds) {
  c_stalls_->Add();
  {
    MutexLock lock(mu_);
    last_stall_ = name;
    last_stall_age_ = age_seconds;
  }
  // Record the detection itself before dumping, so the postmortem's
  // last event is the stall that triggered it.
  obs::FlightEvent fe;
  fe.kind = obs::FlightKind::kStall;
  fe.t_seconds = NowSeconds();
  fe.value = age_seconds;
  fe.SetLabel(name.c_str());
  telemetry_->flight().Record(fe);
  if (!opts_.watchdog.dump_path.empty()) {
    // Best effort: the stall is already counted and flight-recorded
    // even when the dump path is unwritable.
    (void)DumpStatus(opts_.watchdog.dump_path + "_statusz");
    (void)DumpFlightRecorder(opts_.watchdog.dump_path + "_flight.json");
  }
}

}  // namespace runtime
}  // namespace shflbw
