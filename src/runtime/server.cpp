#include "runtime/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/clock.h"

namespace shflbw {
namespace runtime {

BatchServer::BatchServer(ModelDesc model, ServerOptions opts)
    : opts_(opts), cache_(std::make_shared<PackedWeightCache>()) {
  SHFLBW_CHECK_MSG(opts_.replicas >= 1, "server needs at least one replica");
  SHFLBW_CHECK_MSG(opts_.queue_capacity >= 1, "queue capacity must be >= 1");
  SHFLBW_CHECK_MSG(opts_.max_batch >= 1, "max_batch must be >= 1");
  SHFLBW_CHECK_MSG(opts_.coalesce_window_seconds >= 0.0,
                   "coalesce window must be >= 0");
  // Autotune re-ranks plans by wall-clock measurement; replicas could
  // diverge onto different plans, breaking both cache sharing and the
  // bit-identical guarantee. Force the deterministic planner.
  opts_.engine.planner.autotune = false;

  engines_.reserve(static_cast<std::size_t>(opts_.replicas));
  for (int r = 0; r < opts_.replicas; ++r) {
    engines_.push_back(std::make_unique<Engine>(model, opts_.engine, cache_));
    // Compile the (deterministic, identical) plan now, while no
    // scheduler thread exists: Engine::Plan lazily initializes engine
    // state, and an engine is only ever touched by one thread — its
    // replica loop — once the threads below start.
    (void)engines_.back()->Plan();
  }
  per_replica_.assign(engines_.size(), 0);

  threads_.reserve(engines_.size());
  for (int r = 0; r < static_cast<int>(engines_.size()); ++r) {
    threads_.emplace_back([this, r] { ReplicaLoop(r); });
  }
}

BatchServer::~BatchServer() { Shutdown(); }

const ExecutionPlan& BatchServer::Plan() const {
  // Safe concurrently with serving: every engine's plan was compiled in
  // the constructor, so this is a read of an already-initialized value.
  return engines_.front()->Plan();
}

void BatchServer::Warmup() {
  // One warmup request through the regular queue: whichever replica
  // serves it packs every (layer, format) the plan selects into the
  // shared cache, and all replicas resolve to the same keys, so later
  // requests perform zero conversions. Going through the scheduler
  // (instead of touching an engine from this thread) keeps the
  // one-thread-per-engine invariant even when Warmup is called while
  // requests are already in flight.
  (void)Submit(Request{opts_.engine.activation_seed}).get();
}

std::future<Response> BatchServer::Submit(Request req) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [&] { return stop_ || queue_.size() < opts_.queue_capacity; });
  if (stop_) throw std::runtime_error("BatchServer: submit after shutdown");
  Pending p;
  p.req = req;
  p.id = next_id_++;
  p.submit_time = NowSeconds();
  std::future<Response> fut = p.promise.get_future();
  queue_.push_back(std::move(p));
  lock.unlock();
  not_empty_.notify_one();
  return fut;
}

bool BatchServer::TrySubmit(Request req, std::future<Response>* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= opts_.queue_capacity) return false;
    Pending p;
    p.req = req;
    p.id = next_id_++;
    p.submit_time = NowSeconds();
    *out = p.promise.get_future();
    queue_.push_back(std::move(p));
  }
  not_empty_.notify_one();
  return true;
}

void BatchServer::Drain() {
  // The idle condition is evaluated under mu_ by wait() itself — both
  // on entry and after every wakeup — so there is no unlocked
  // check-then-wait gap for a concurrent Submit to slip through:
  // either the submit lands before a predicate evaluation (next_id_
  // grows, Drain keeps waiting for its completion) or after Drain has
  // already observed completed_ == next_id_ and returned, which is
  // correct — that request was not "submitted so far". completed_ is
  // only ever incremented under mu_, batch-atomically with the
  // idle_ notification, so Drain cannot miss the transition either.
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return completed_ == next_id_; });
}

void BatchServer::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    to_join.swap(threads_);  // second caller swaps an empty vector
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& th : to_join) th.join();
}

ServerStats BatchServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s;
  s.submitted = next_id_;
  s.completed = completed_;
  s.per_replica = per_replica_;
  return s;
}

void BatchServer::ReplicaLoop(int replica) {
  Engine& engine = *engines_[static_cast<std::size_t>(replica)];
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, opts_.max_batch));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    // Drain-on-shutdown: keep serving until the queue is empty, so
    // every future obtained from Submit resolves.
    if (queue_.empty()) return;  // implies stop_
    // Coalescing window: hold a partial batch open briefly so closely
    // spaced requests fuse into one launch. Bounded (fairness — the
    // oldest request pays at most the window on top of its queue wait)
    // and cut short by shutdown or a sealed batch. A batch seals at
    // max_batch, clamped to the queue capacity: with a bounded queue
    // shorter than max_batch, Submit blocks at capacity, so a
    // capacity-full queue is as fused as this server can get and must
    // launch rather than stall out the whole window. The queue can
    // have been emptied by a sibling replica when the wait returns, so
    // re-loop rather than assume work remains.
    const std::size_t seal = std::min(max_batch, opts_.queue_capacity);
    if (opts_.coalesce_window_seconds > 0 && !stop_ &&
        queue_.size() < seal) {
      not_empty_.wait_for(
          lock,
          std::chrono::duration<double>(opts_.coalesce_window_seconds),
          [&] { return stop_ || queue_.size() >= seal; });
      if (queue_.empty()) continue;
    }

    // Seal the batch: the K oldest requests, FIFO submission order.
    const std::size_t take = std::min(max_batch, queue_.size());
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    // K slots freed: wake every blocked Submit, not just one.
    if (take > 1) {
      not_full_.notify_all();
    } else {
      not_full_.notify_one();
    }

    // queue_seconds stops here — coalesce time — for every request in
    // the batch; run_seconds covers the fused launch, so the split
    // still sums to submit-to-completion per request.
    const double dispatch_time = NowSeconds();
    std::vector<std::uint64_t> seeds;
    seeds.reserve(take);
    for (const Pending& p : batch) seeds.push_back(p.req.activation_seed);
    try {
      BatchRunResult run = engine.RunBatched(seeds);
      const double done = NowSeconds();
      for (std::size_t i = 0; i < take; ++i) {
        Pending& p = batch[i];
        Response resp;
        resp.id = p.id;
        resp.replica = replica;
        resp.batch_width = static_cast<int>(take);
        resp.queue_seconds = dispatch_time - p.submit_time;
        resp.run_seconds = done - dispatch_time;
        resp.packs_performed = run.packs_performed;
        resp.output = std::move(run.outputs[i]);
        p.promise.set_value(std::move(resp));
      }
    } catch (...) {
      for (Pending& p : batch) {
        p.promise.set_exception(std::current_exception());
      }
    }

    lock.lock();
    // Retire the whole batch under one lock hold, atomically with the
    // idle_ notification Drain waits on.
    completed_ += take;
    per_replica_[static_cast<std::size_t>(replica)] += take;
    if (completed_ == next_id_) idle_.notify_all();
  }
}

}  // namespace runtime
}  // namespace shflbw
