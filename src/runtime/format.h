// Storage formats the inference runtime can select per layer. Each
// format pairs a packed weight representation (src/format/) with the
// kernel that executes it (src/kernels/); the planner ranks them with
// the arch cost model and the engine packs the winner once into the
// PackedWeightCache.
#pragma once

#include <string>
#include <vector>

#include "arch/kernel_stats.h"

namespace shflbw {
namespace runtime {

/// Selectable weight formats, in planner evaluation order.
enum class Format {
  kDense,       // fp16 dense weight, cuBLAS-style tensor-core GEMM
  kCsr,         // unstructured CSR, executed with the Sputnik schedule
  kBsr,         // V x V block-sparse, cuSPARSE bsrmm-style
  kBalanced24,  // 2:4 structured, A100 sparse tensor-core only
  kVectorWise,  // V x 1 vector-wise tensor-core SpMM
  kShflBw,      // the paper's shuffled vector-wise kernel
};

/// All selectable formats, in evaluation order.
const std::vector<Format>& AllFormats();

/// Short stable name ("dense", "csr", "bsr", "2:4", "vw", "shfl-bw").
std::string FormatName(Format f);

/// Inverse of FormatName; throws shflbw::Error on unknown names.
Format ParseFormat(const std::string& name);

/// The kernel class whose stats model / efficiency calibration times
/// this format. CSR maps to Sputnik — the stronger of the two
/// unstructured baselines — and both CSR kernels share one functional
/// core anyway (RunCsrRowParallel).
KernelClass FormatKernelClass(Format f);

}  // namespace runtime
}  // namespace shflbw
