// The inference engine: plan / pack / execute.
//
//   plan     PlanModel ranks every format per layer with the cost
//            model; an optional autotune pass packs the top candidates
//            and re-ranks them by measured wall-clock.
//   pack     the selected format of each layer is pruned + converted
//            once into the PackedWeightCache (weights are synthesized
//            deterministically per layer, standing in for trained
//            checkpoints as everywhere else in this repo).
//   execute  Run streams activations layer-to-layer through the
//            functional kernels on the persistent ParallelFor pool,
//            reusing per-engine activation scratch; outputs are
//            bit-identical at any thread count because every kernel is.
//
// The schedule-once / run-many split follows the compile-then-execute
// structure of inductor-style runtimes: Plan() is paid once, Run() is
// the steady-state serving path and performs zero conversions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "kernels/conv2d.h"
#include "obs/telemetry.h"
#include "runtime/fault_injection.h"
#include "runtime/model_desc.h"
#include "runtime/planner.h"
#include "runtime/weight_cache.h"

namespace shflbw {
namespace runtime {

struct EngineOptions {
  PlannerOptions planner;
  /// Base seed for the per-layer synthetic master weights (layer i uses
  /// weight_seed + i).
  std::uint64_t weight_seed = 0x5eedULL;
  /// Seed for the first layer's input activations.
  std::uint64_t activation_seed = 0xac71ULL;
  /// Optional fault-injection hook (tests, chaos benches): consulted
  /// once per kernel launch in RunBatched and, via the weight cache, on
  /// every pack. The engine installs it on its cache at construction;
  /// engines sharing a cache must share the injector (or leave it
  /// null). Injection is seeded and deterministic — see
  /// runtime/fault_injection.h.
  std::shared_ptr<FaultInjector> fault_injector;
  /// Optional telemetry sink. When set, every fused layer launch
  /// accumulates per-(layer, format, density, V) wall-time / FLOP
  /// counters plus a planned-vs-measured drift gauge per layer
  /// (metrics_on), and emits one kernel span per layer (tracing_on).
  /// The BatchServer shares its own Telemetry with every replica so
  /// engine-side spans land in the same trace as the serving spans.
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// Serving context a BatchServer threads through a fused launch so the
/// engine's kernel spans / profiling rows carry the batch identity:
/// the K request `run` spans and the per-layer kernel spans of one
/// fused launch correlate through the shared batch_id.
struct BatchContext {
  std::uint64_t batch_id = obs::kNoId;
  std::int32_t replica = -1;
  std::int32_t level = -1;  // ladder level this engine serves
};

/// Measured execution of one layer (one invocation).
struct LayerRunRecord {
  std::string name;
  Format format = Format::kDense;
  int repeat = 1;
  double seconds = 0;       // measured kernel wall-clock
  double useful_flops = 0;  // from the kernel's stats counters
  double modeled_s = 0;     // planner's cost-model prediction
  double modeled_dense_s = 0;

  [[nodiscard]] double Gflops() const {
    return seconds > 0 ? useful_flops / seconds / 1e9 : 0.0;
  }
};

/// Result of one whole-model Run.
struct RunResult {
  Matrix<float> output;        // final layer output (original row order)
  double kernel_seconds = 0;   // sum of per-layer kernel time, 1 invocation each
  double weighted_seconds = 0; // repeat-weighted whole-model latency
  double overhead_seconds = 0; // activation streaming + normalization
  std::size_t packs_performed = 0;  // conversions triggered by this Run
  std::vector<LayerRunRecord> layers;
};

/// Result of one fused whole-model RunBatched over K requests.
struct BatchRunResult {
  /// outputs[j] is bit-identical to Run(seeds[j]).output — the
  /// de-interleaved column block of the fused final-layer launch.
  std::vector<Matrix<float>> outputs;
  int width = 0;               // K, the number of fused requests
  double kernel_seconds = 0;   // sum of per-layer fused kernel time
  double weighted_seconds = 0; // repeat-weighted fused whole-model latency
  double overhead_seconds = 0; // activation streaming + normalization
  std::size_t packs_performed = 0;  // conversions triggered by this call
  /// One record per layer — ONE fused launch per layer, not K; seconds
  /// and useful_flops cover the K-wide launch, modeled_* stay
  /// per-request (the planner models the serving shape).
  std::vector<LayerRunRecord> layers;
};

class Engine {
 public:
  explicit Engine(ModelDesc model, EngineOptions opts = {});

  /// Constructs an engine packing into an external shared cache. The
  /// BatchServer uses this to let N replicas of the same model share
  /// one pack phase: the cache key includes (layer, format, density,
  /// v), and replicas share (model, options, weight_seed), so every
  /// replica resolves to the same entries. The cache must outlive the
  /// engine.
  Engine(ModelDesc model, EngineOptions opts,
         std::shared_ptr<PackedWeightCache> cache);

  /// Compiles the schedule on first call (cost-model ranking, plus the
  /// empirical autotune pass when options.planner.autotune is set) and
  /// returns the same plan thereafter.
  const ExecutionPlan& Plan();

  /// Installs a precompiled plan instead of compiling one. Planning is
  /// deterministic, so an engine identical in (model, options) to the
  /// plan's producer would compile this exact plan anyway — adopting it
  /// just skips the redundant work, which matters when the BatchServer
  /// stands up replicas x ladder-levels engines whose quality-aware
  /// plans each score every (layer, format, density, V) mask. Only
  /// valid before the first Plan()/Run(), and the layer count must
  /// match the model.
  void AdoptPlan(ExecutionPlan plan);

  /// Executes the model end-to-end. The first Run packs any weight the
  /// plan selected that autotune has not already packed; later Runs hit
  /// the cache and perform zero conversions.
  RunResult Run();

  /// Run with an explicit activation seed: the per-request entry point
  /// the BatchServer uses, so distinct requests stream distinct inputs
  /// through the same packed weights. Run() == Run(activation_seed from
  /// the engine options). Deterministic: the same seed on any replica
  /// (or thread count) yields a bit-identical output matrix.
  /// Implemented as RunBatched of width 1, so the single-request and
  /// fused paths can never diverge.
  RunResult Run(std::uint64_t activation_seed);

  /// Cross-request fused execution: packs the K requests' activations
  /// into one n*K-column matrix per GEMM layer (batch*K per conv layer)
  /// and streams it through the packed weights with ONE kernel launch
  /// per layer instead of K. Inter-layer RMS normalization is applied
  /// per request over its own column block in the serial element order,
  /// so outputs[j] is bit-identical to Run(seeds[j]) at any thread
  /// count and any batch width — the wide-batch contract of
  /// kernels/kernel_api.h carried through the whole model. Scratch is
  /// re-shaped (exact extent, never capacity-only) between calls, so
  /// mixed widths K cannot leak stale tail columns. seeds must be
  /// non-empty.
  BatchRunResult RunBatched(const std::vector<std::uint64_t>& seeds);

  /// RunBatched with a serving context: identical execution, but the
  /// kernel spans and profiling rows it records carry the caller's
  /// batch/replica/level identity. RunBatched(seeds) ==
  /// RunBatched(seeds, BatchContext{}).
  BatchRunResult RunBatched(const std::vector<std::uint64_t>& seeds,
                            const BatchContext& ctx);

  [[nodiscard]] const ModelDesc& model() const { return model_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] const PackedWeightCache& cache() const { return *cache_; }
  [[nodiscard]] const GpuSpec& gpu() const { return spec_; }

 private:
  /// Synthesized master weight of layer i (created once, then cached).
  const Matrix<float>& MasterWeight(int layer);

  /// Packs (or fetches) layer i's weight in `format` at (density, v) —
  /// per-layer values from the plan, not the global planner knobs, so a
  /// quality-aware plan can mix densities across layers while the
  /// cache key (layer, format, density, v) keeps entries distinct.
  const PackedWeight& Packed(int layer, Format format, double density, int v);

  /// Executes one GEMM layer on the packed weight.
  KernelResult ExecuteGemm(const PackedWeight& w, const Matrix<float>& act);
  /// Executes one conv layer on the packed weight.
  KernelResult ExecuteConv(const PackedWeight& w, const ConvShape& shape,
                           const Tensor4& input);

  /// Fills this layer's fused input from the per-request activation
  /// streams (each request's previous-layer RMS-normalized output,
  /// wrapped cyclically to the required shape) into the per-engine
  /// scratch buffers. Request j occupies column block [j*n, (j+1)*n)
  /// (GEMM) / batch block [j*batch, (j+1)*batch) (conv), filled in the
  /// exact element order a width-1 run uses.
  const Matrix<float>& FusedGemmInput(int k, int n, int width);
  const Tensor4& FusedConvInput(const ConvShape& shape, int width);

  /// Re-ranks each layer's top candidates by measured time (packs them
  /// through the cache, so the work is reused by Run). With per-layer
  /// quality floors enabled, only candidates meeting the floor are
  /// eligible — empirical re-ranking must not undo the quality
  /// constraint the plan was built around.
  void Autotune();

  /// Times one invocation of layer i under the candidate's
  /// (format, density, v); used by Autotune.
  double TimeLayerOnce(int layer, const FormatCandidate& cand);

  /// Cached registry handles of one plan layer's profiling row, so the
  /// per-launch hot path is a handful of relaxed atomic adds — no name
  /// formatting, no registry lookup.
  struct KernelMetrics {
    obs::Counter* launches = nullptr;
    obs::Counter* seconds = nullptr;   // fused launch wall-clock
    obs::Counter* requests = nullptr;  // sum of fused widths
    obs::Counter* flops = nullptr;     // useful FLOPs retired
    obs::Gauge* measured = nullptr;    // cumulative per-request seconds
    obs::Gauge* drift = nullptr;       // measured / planner-modeled
  };

  /// Registers (first call) and returns the profiling handles for every
  /// plan layer. Requires a plan and opts_.telemetry.
  const std::vector<KernelMetrics>& KernelMetricsHandles();

  ModelDesc model_;
  EngineOptions opts_;
  GpuSpec spec_;
  std::optional<ExecutionPlan> plan_;
  std::shared_ptr<PackedWeightCache> cache_;  // owned unless injected
  std::vector<std::optional<Matrix<float>>> masters_;

  // Streaming state + per-engine scratch, reused across layers and
  // Runs. streams_[j] is request j's activation stream; the fused input
  // scratch is re-shaped to the current batch width on every layer (see
  // Matrix::Reshape — exact extent, so a narrow batch after a wide one
  // never reads the wide batch's tail columns).
  std::vector<std::vector<float>> streams_;
  Matrix<float> gemm_input_scratch_;
  Tensor4 conv_input_scratch_;
  std::vector<KernelMetrics> kernel_metrics_;  // empty until first use
};

}  // namespace runtime
}  // namespace shflbw
