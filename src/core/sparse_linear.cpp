#include "core/sparse_linear.h"

#include "common/check.h"
#include "kernels/gemm_dense.h"
#include "kernels/kernel_registry.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_vector_wise.h"

namespace shflbw {

SparseLinear::SparseLinear(const Matrix<float>& weights,
                           const Options& options)
    : options_(options) {
  PruneOptions popt;
  popt.v = options.v;
  popt.shflbw = options.search;
  PruneResult pr =
      PruneWithPattern(weights, options.pattern, options.density, popt);
  pruned_weights_ = std::move(pr.pruned_weights);
  mask_ = std::move(pr.mask);

  switch (options.pattern) {
    case SparsePattern::kDense:
      break;  // dense path keeps only pruned_weights_
    case SparsePattern::kUnstructured:
      csr_ = CsrMatrix::FromDense(pruned_weights_);
      break;
    case SparsePattern::kBlockWise:
      bsr_ = BsrMatrix::FromDense(pruned_weights_, options.v);
      break;
    case SparsePattern::kVectorWise:
      vw_ = VectorWiseMatrix::FromDense(pruned_weights_, options.v);
      break;
    case SparsePattern::kShflBw:
      SHFLBW_CHECK(pr.storage_to_original.has_value());
      shflbw_ = ShflBwMatrix::FromDense(pruned_weights_, options.v,
                                        *pr.storage_to_original);
      break;
    case SparsePattern::kBalanced24:
      b24_ = Balanced24Matrix::FromDense(pruned_weights_);
      break;
  }
}

Matrix<float> SparseLinear::Forward(const Matrix<float>& x) const {
  // Functional execution is architecture-independent; any spec works for
  // the stats side of the kernel calls.
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  switch (options_.pattern) {
    case SparsePattern::kDense:
      return GemmTensorCore(pruned_weights_, x, spec).c;
    case SparsePattern::kUnstructured:
      return SpmmSputnik(*csr_, x, spec).c;
    case SparsePattern::kBlockWise:
      return SpmmBsr(*bsr_, x, spec, options_.tile).c;
    case SparsePattern::kVectorWise:
      return SpmmVectorWise(*vw_, x, spec, options_.tile).c;
    case SparsePattern::kShflBw:
      return SpmmShflBw(*shflbw_, x, spec, options_.tile).c;
    case SparsePattern::kBalanced24:
      return SpmmBalanced24(*b24_, x, spec).c;
  }
  throw Error("unknown pattern");
}

KernelStats SparseLinear::Stats(int n, const GpuSpec& spec) const {
  const int m = rows(), k = cols();
  switch (options_.pattern) {
    case SparsePattern::kDense:
      return GemmTensorCoreStats(m, n, k, spec);
    case SparsePattern::kUnstructured:
      return SpmmSputnikStats(m, n, k, csr_->Nnz(), spec);
    case SparsePattern::kBlockWise:
      return SpmmBsrStats(m, n, k, bsr_->NnzBlocks(), options_.v, spec,
                          options_.tile);
    case SparsePattern::kVectorWise: {
      std::vector<int> kept(static_cast<std::size_t>(vw_->Groups()));
      for (int g = 0; g < vw_->Groups(); ++g) {
        kept[g] = vw_->KeptColumnsInGroup(g);
      }
      return VwFamilyStats(m, n, k, kept, options_.v, spec, options_.tile,
                           KernelClass::kVectorWiseTensorCore, 0.0);
    }
    case SparsePattern::kShflBw: {
      std::vector<int> kept(static_cast<std::size_t>(shflbw_->vw.Groups()));
      for (int g = 0; g < shflbw_->vw.Groups(); ++g) {
        kept[g] = shflbw_->vw.KeptColumnsInGroup(g);
      }
      return VwFamilyStats(m, n, k, kept, options_.v, spec, options_.tile,
                           KernelClass::kShflBwTensorCore, 4.0 * m);
    }
    case SparsePattern::kBalanced24:
      return SpmmBalanced24Stats(m, n, k, spec);
  }
  throw Error("unknown pattern");
}

TimeBreakdown SparseLinear::ModelTime(int n, const GpuSpec& spec) const {
  return CostModel(spec).Estimate(Stats(n, spec));
}

double SparseLinear::SpeedupOverDense(int n, const GpuSpec& spec) const {
  const CostModel model(spec);
  const double dense_s =
      model.Seconds(GemmTensorCoreStats(rows(), n, cols(), spec));
  const double sparse_s = ModelTime(n, spec).total_s;
  return dense_s / sparse_s;
}

double SparseLinear::AchievedDensity() const {
  return 1.0 - Sparsity(mask_);
}

}  // namespace shflbw
