// SparseConv2d — the paper's Shfl-BW convolution layer (implicit GEMM,
// §4.1), plus a dense cuDNN-style baseline mode.
#pragma once

#include <optional>

#include "arch/cost_model.h"
#include "core/pattern.h"
#include "core/pipeline.h"
#include "kernels/conv2d.h"

namespace shflbw {

/// A 2D convolution whose filters are pruned to Shfl-BW (or kept dense).
/// Filter weights live in implicit-GEMM layout: out_c x (in_c*kh*kw).
class SparseConv2d {
 public:
  struct Options {
    SparsePattern pattern = SparsePattern::kShflBw;  // kDense or kShflBw
    double density = 0.25;
    int v = 32;
    TileConfig tile;
    ShflBwSearchOptions search;
  };

  SparseConv2d(const Matrix<float>& filter_matrix, const ConvShape& shape,
               const Options& options);

  /// Runs the convolution; output is out_c x (batch*oh*ow).
  Matrix<float> Forward(const Tensor4& input) const;

  KernelStats Stats(const GpuSpec& spec) const;
  TimeBreakdown ModelTime(const GpuSpec& spec) const;
  double SpeedupOverDense(const GpuSpec& spec) const;

  const Matrix<float>& pruned_weights() const { return pruned_weights_; }
  const ConvShape& shape() const { return shape_; }

 private:
  Options options_;
  ConvShape shape_;
  Matrix<float> pruned_weights_;
  std::optional<ShflBwMatrix> shflbw_;
};

}  // namespace shflbw
