// The sparsity patterns compared throughout the paper (Fig. 3), as a
// public-API enum.
#pragma once

#include <string>

namespace shflbw {

enum class SparsePattern {
  kDense,         // no pruning
  kUnstructured,  // magnitude pruning, no structure
  kBlockWise,     // V x V blocks (Fig. 3(d))
  kVectorWise,    // V x 1 vectors, contiguous row groups (Fig. 3(c))
  kShflBw,        // shuffled block-wise — the paper's pattern (Fig. 3(b))
  kBalanced24,    // 2:4 balanced (A100 sparse tensor-core)
};

std::string SparsePatternName(SparsePattern p);

/// Parses "dense", "unstructured", "bw", "vw", "shflbw", "2in4"
/// (case-insensitive; also accepts the long names). Throws on others.
SparsePattern ParseSparsePattern(const std::string& name);

}  // namespace shflbw
