#include "core/evaluator.h"

#include <cmath>

#include "arch/cost_model.h"
#include "common/check.h"
#include "kernels/conv2d.h"
#include "kernels/kernel_registry.h"
#include "prune/importance.h"

namespace shflbw {

KernelClass PatternKernelClass(SparsePattern pattern) {
  switch (pattern) {
    case SparsePattern::kDense: return KernelClass::kDenseTensorCore;
    case SparsePattern::kUnstructured: return KernelClass::kSputnik;
    case SparsePattern::kBlockWise: return KernelClass::kBsrTensorCore;
    case SparsePattern::kVectorWise:
      return KernelClass::kVectorWiseTensorCore;
    case SparsePattern::kShflBw: return KernelClass::kShflBwTensorCore;
    case SparsePattern::kBalanced24: return KernelClass::kBalanced24;
  }
  throw Error("unknown pattern");
}

std::optional<ModelSpeedup> EvaluateGemmModel(
    const std::vector<GemmLayerSpec>& layers, const std::vector<int>& counts,
    KernelClass klass, double density, int v, const GpuSpec& spec) {
  SHFLBW_CHECK_MSG(layers.size() == counts.size(),
                   "layers/counts size mismatch");
  ModelSpeedup total;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const GemmLayerSpec& l = layers[i];
    LayerProblem p{l.m, l.n, l.k, density, v};
    const auto sparse_s = LayerSeconds(klass, p, spec);
    if (!sparse_s) return std::nullopt;
    LayerProblem dense_p = p;
    dense_p.density = 1.0;
    const auto dense_s =
        LayerSeconds(KernelClass::kDenseTensorCore, dense_p, spec);
    LayerTiming t{l.name, *dense_s * counts[i], *sparse_s * counts[i],
                  *dense_s / *sparse_s};
    total.dense_s += t.dense_s;
    total.sparse_s += t.sparse_s;
    total.layers.push_back(std::move(t));
  }
  total.speedup = total.dense_s / total.sparse_s;
  return total;
}

std::optional<ModelSpeedup> EvaluateConvModel(
    const std::vector<ConvLayerSpec>& layers, KernelClass klass,
    double density, int v, const GpuSpec& spec) {
  const bool has_conv =
      klass == KernelClass::kDenseTensorCore ||
      klass == KernelClass::kVectorWiseTensorCore ||
      klass == KernelClass::kShflBwTensorCore;
  if (!has_conv) return std::nullopt;  // §6.2: baselines lack convolution

  const CostModel model(spec);
  ModelSpeedup total;
  for (const ConvLayerSpec& l : layers) {
    ConvShape shape;
    shape.batch = l.batch;
    shape.in_c = l.in_c;
    shape.in_h = l.in_h;
    shape.in_w = l.in_w;
    shape.out_c = l.out_c;
    shape.kh = l.kh;
    shape.kw = l.kw;
    shape.stride = l.stride;
    shape.pad = l.pad;

    if (shape.GemmM() % v != 0) return std::nullopt;

    const double dense_s = model.Seconds(Conv2dDenseStats(shape, spec));
    double sparse_s = 0;
    if (klass == KernelClass::kDenseTensorCore) {
      sparse_s = dense_s;
    } else {
      sparse_s = model.Seconds(
          klass == KernelClass::kVectorWiseTensorCore
              ? Conv2dVectorWiseStats(shape, density, v, spec)
              : Conv2dShflBwStats(shape, density, v, spec));
    }
    LayerTiming t{l.name, dense_s * l.repeat, sparse_s * l.repeat,
                  dense_s / sparse_s};
    total.dense_s += t.dense_s;
    total.sparse_s += t.sparse_s;
    total.layers.push_back(std::move(t));
  }
  total.speedup = total.dense_s / total.sparse_s;
  return total;
}

double ProxyQuality(double dense_score, double relative_retention,
                    double sensitivity) {
  SHFLBW_CHECK_MSG(relative_retention >= 0.0 && relative_retention <= 1.0001,
                   "relative_retention " << relative_retention);
  return dense_score *
         std::pow(std::min(relative_retention, 1.0), sensitivity);
}

QualityResult EvaluateQuality(const std::vector<Matrix<float>>& weights,
                              SparsePattern pattern, double density,
                              const PruneOptions& opts, double dense_score,
                              double sensitivity) {
  SHFLBW_CHECK_MSG(!weights.empty(), "no weight matrices");
  double retained = 0.0;
  double unstructured_retained = 0.0;
  double total = 0.0;
  for (const Matrix<float>& w : weights) {
    const Matrix<float> scores = MagnitudeScores(w);
    const Matrix<float> mask = PatternMask(scores, pattern, density, opts);
    retained += RetainedScore(scores, mask);
    unstructured_retained += RetainedScore(
        scores, PatternMask(scores, SparsePattern::kUnstructured, density,
                            opts));
    for (float s : scores.storage()) total += s;
  }
  QualityResult q;
  q.retained_ratio = total > 0.0 ? retained / total : 0.0;
  q.relative_retention = unstructured_retained > 0.0
                             ? retained / unstructured_retained
                             : 0.0;
  q.proxy_score =
      ProxyQuality(dense_score, q.relative_retention, sensitivity);
  return q;
}

}  // namespace shflbw
