#include "core/sparse_model.h"

#include "common/check.h"
#include "kernels/gemm_dense.h"

namespace shflbw {

void SparseModel::AddLayer(const std::string& name,
                           const Matrix<float>& weights,
                           const SparseLinear::Options& options,
                           Activation activation) {
  if (!layers_.empty()) {
    const int prev_out = layers_.back().linear.rows();
    SHFLBW_CHECK_MSG(weights.cols() == prev_out,
                     "layer '" << name << "' expects input width "
                               << weights.cols() << " but previous layer '"
                               << layers_.back().name << "' outputs "
                               << prev_out);
  }
  layers_.push_back({name, SparseLinear(weights, options), activation});
}

Matrix<float> SparseModel::Forward(const Matrix<float>& x) const {
  SHFLBW_CHECK_MSG(!layers_.empty(), "empty model");
  Matrix<float> h = x;
  for (const SparseModelLayer& l : layers_) {
    h = l.linear.Forward(h);
    if (l.activation == Activation::kRelu) {
      for (auto& v : h.storage()) v = v > 0.0f ? v : 0.0f;
    }
  }
  return h;
}

double SparseModel::ModelSeconds(int n, const GpuSpec& spec) const {
  double total = 0.0;
  for (const SparseModelLayer& l : layers_) {
    total += l.linear.ModelTime(n, spec).total_s;
  }
  return total;
}

double SparseModel::SpeedupOverDense(int n, const GpuSpec& spec) const {
  SHFLBW_CHECK_MSG(!layers_.empty(), "empty model");
  const CostModel model(spec);
  double dense = 0.0;
  for (const SparseModelLayer& l : layers_) {
    dense += model.Seconds(GemmTensorCoreStats(l.linear.rows(), n,
                                               l.linear.cols(), spec));
  }
  return dense / ModelSeconds(n, spec);
}

double SparseModel::CompressedBytes() const {
  double total = 0.0;
  for (const SparseModelLayer& l : layers_) {
    const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
    const KernelStats s = l.linear.Stats(/*n=*/1, spec);
    // Stats count the weight stream (values) inside dram_read_bytes and
    // metadata separately; recompute directly from density instead for
    // an exact storage figure.
    const double kept =
        l.linear.AchievedDensity() * l.linear.rows() * l.linear.cols();
    total += kept * 2.0 + s.metadata_bytes;
  }
  return total;
}

double SparseModel::DenseBytes() const {
  double total = 0.0;
  for (const SparseModelLayer& l : layers_) {
    total += 2.0 * l.linear.rows() * l.linear.cols();
  }
  return total;
}

}  // namespace shflbw
