// The prune -> mask pipeline shared by SparseLinear/SparseConv2d and the
// quality experiments: one entry point that applies any SparsePattern to
// a weight matrix at a target density.
#pragma once

#include <optional>
#include <vector>

#include "common/matrix.h"
#include "core/pattern.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {

struct PruneResult {
  Matrix<float> mask;             // binary mask, original row order
  Matrix<float> pruned_weights;   // weights .* mask
  /// Set only for kShflBw: the discovered row permutation.
  std::optional<std::vector<int>> storage_to_original;
};

struct PruneOptions {
  int v = 32;  // block / vector size (ignored by patterns without V)
  ShflBwSearchOptions shflbw;  // search knobs for kShflBw
};

/// Applies `pattern` pruning at `density` to `weights`. kDense returns an
/// all-ones mask; kBalanced24 requires density == 0.5.
PruneResult PruneWithPattern(const Matrix<float>& weights,
                             SparsePattern pattern, double density,
                             const PruneOptions& opts = {});

/// The masker for a pattern as a grow-and-prune-compatible callable
/// (scores, density) -> mask.
Matrix<float> PatternMask(const Matrix<float>& scores, SparsePattern pattern,
                          double density, const PruneOptions& opts = {});

}  // namespace shflbw
