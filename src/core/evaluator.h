// Model-level evaluation: the machinery behind the Fig. 2 / Fig. 6 /
// Table 1 benches. Times whole models (sum of compute-intensive layers,
// §6.1) under every kernel class, and scores pruned-model quality with
// the retained-importance proxy (DESIGN.md §0).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/gpu_spec.h"
#include "arch/kernel_stats.h"
#include "core/pattern.h"
#include "core/pipeline.h"
#include "model/layer_spec.h"

namespace shflbw {

/// Per-layer timing line of a model sweep.
struct LayerTiming {
  std::string name;
  double dense_s = 0;
  double sparse_s = 0;
  double speedup = 0;
};

/// Whole-model timing result.
struct ModelSpeedup {
  double dense_s = 0;
  double sparse_s = 0;
  double speedup = 0;
  std::vector<LayerTiming> layers;
};

/// Times a GEMM model (Transformer / GNMT) under `klass` at the given
/// density and V on `spec`, weighting each layer by its occurrence
/// count. nullopt if the class cannot run some layer (e.g. 2:4 off-A100
/// or at density != 0.5).
std::optional<ModelSpeedup> EvaluateGemmModel(
    const std::vector<GemmLayerSpec>& layers, const std::vector<int>& counts,
    KernelClass klass, double density, int v, const GpuSpec& spec);

/// Times a convolution model (ResNet50). Only the dense baseline and our
/// VW / Shfl-BW kernels implement convolution ("the baselines all lack
/// implementation for convolution", §6.2) — others return nullopt.
std::optional<ModelSpeedup> EvaluateConvModel(
    const std::vector<ConvLayerSpec>& layers, KernelClass klass,
    double density, int v, const GpuSpec& spec);

/// Maps a SparsePattern to the kernel class that executes it in Fig. 6.
KernelClass PatternKernelClass(SparsePattern pattern);

// ---------------------------------------------------------------------
// Quality proxy (Table 1 / Fig. 2).
// ---------------------------------------------------------------------

/// Quality result for one pruned model.
struct QualityResult {
  double retained_ratio = 0;  // retained importance / total importance
  /// retained_ratio relative to unstructured pruning at the SAME
  /// density — the pattern penalty, isolated from the sparsity penalty
  /// that fine-tuning largely recovers.
  double relative_retention = 1.0;
  double proxy_score = 0;  // mapped to the model's metric scale
};

/// Maps relative retention to the model's quality metric:
///   score = dense_score * relative_retention^sensitivity.
/// Unstructured pruning maps to ~dense_score (matching the paper, where
/// fine-tuned unstructured models sit within a few tenths of dense);
/// structured patterns are discounted by how much pattern-constrained
/// selection loses versus free selection. `sensitivity` is calibrated
/// per model (see EXPERIMENTS.md); pattern ORDERINGS are independent of
/// it.
double ProxyQuality(double dense_score, double relative_retention,
                    double sensitivity);

/// Prunes every weight matrix with `pattern` at `density` and returns
/// the aggregate retained-importance ratio and proxied score.
QualityResult EvaluateQuality(const std::vector<Matrix<float>>& weights,
                              SparsePattern pattern, double density,
                              const PruneOptions& opts, double dense_score,
                              double sensitivity);

}  // namespace shflbw
