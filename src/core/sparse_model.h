// SparseModel — a stack of pruned linear layers executed end-to-end:
// the deployment-side object a user builds once (prune + compress every
// layer) and then runs per batch. Provides whole-model modelled time,
// compressed-size accounting, and speedup over the dense stack.
#pragma once

#include <string>
#include <vector>

#include "core/sparse_linear.h"

namespace shflbw {

/// Activation applied between layers of the stack.
enum class Activation { kNone, kRelu };

/// A named pruned layer inside the model.
struct SparseModelLayer {
  std::string name;
  SparseLinear linear;
  Activation activation = Activation::kRelu;
};

class SparseModel {
 public:
  SparseModel() = default;

  /// Appends a layer (weights are pruned/compressed on insertion).
  /// Layer input width must match the previous layer's output width.
  void AddLayer(const std::string& name, const Matrix<float>& weights,
                const SparseLinear::Options& options,
                Activation activation = Activation::kRelu);

  /// Runs the whole stack on x (features x batch).
  Matrix<float> Forward(const Matrix<float>& x) const;

  /// Sum of modelled layer times for a batch of n columns.
  double ModelSeconds(int n, const GpuSpec& spec) const;

  /// Modelled speedup of the whole stack over its dense counterpart.
  double SpeedupOverDense(int n, const GpuSpec& spec) const;

  /// Compressed weight + metadata bytes across all layers (fp16 values).
  double CompressedBytes() const;
  /// Dense fp16 weight bytes across all layers.
  double DenseBytes() const;

  std::size_t NumLayers() const { return layers_.size(); }
  const SparseModelLayer& layer(std::size_t i) const { return layers_[i]; }

 private:
  std::vector<SparseModelLayer> layers_;
};

}  // namespace shflbw
