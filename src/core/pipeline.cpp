#include "core/pipeline.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/check.h"
#include "format/convert.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {

std::string SparsePatternName(SparsePattern p) {
  switch (p) {
    case SparsePattern::kDense: return "dense";
    case SparsePattern::kUnstructured: return "unstructured";
    case SparsePattern::kBlockWise: return "block-wise";
    case SparsePattern::kVectorWise: return "vector-wise";
    case SparsePattern::kShflBw: return "shfl-bw";
    case SparsePattern::kBalanced24: return "balanced-2in4";
  }
  return "?";
}

SparsePattern ParseSparsePattern(const std::string& name) {
  std::string low = name;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (low == "dense") return SparsePattern::kDense;
  if (low == "unstructured") return SparsePattern::kUnstructured;
  if (low == "bw" || low == "block-wise" || low == "blockwise")
    return SparsePattern::kBlockWise;
  if (low == "vw" || low == "vector-wise" || low == "vectorwise")
    return SparsePattern::kVectorWise;
  if (low == "shflbw" || low == "shfl-bw") return SparsePattern::kShflBw;
  if (low == "2in4" || low == "balanced-2in4" || low == "balanced")
    return SparsePattern::kBalanced24;
  throw Error("unknown sparse pattern: " + name);
}

Matrix<float> PatternMask(const Matrix<float>& scores, SparsePattern pattern,
                          double density, const PruneOptions& opts) {
  switch (pattern) {
    case SparsePattern::kDense:
      return Matrix<float>(scores.rows(), scores.cols(), 1.0f);
    case SparsePattern::kUnstructured:
      return UnstructuredMask(scores, density);
    case SparsePattern::kBlockWise:
      return BlockWiseMask(scores, density, opts.v);
    case SparsePattern::kVectorWise:
      return VectorWiseMask(scores, density, opts.v);
    case SparsePattern::kShflBw:
      return ShflBwSearch(scores, density, opts.v, opts.shflbw).mask;
    case SparsePattern::kBalanced24:
      SHFLBW_CHECK_MSG(std::abs(density - 0.5) < 1e-9,
                       "balanced 2:4 is fixed at 50% density, got "
                           << density);
      return Balanced24Mask(scores);
  }
  throw Error("unknown pattern");
}

PruneResult PruneWithPattern(const Matrix<float>& weights,
                             SparsePattern pattern, double density,
                             const PruneOptions& opts) {
  const Matrix<float> scores = MagnitudeScores(weights);
  PruneResult result;
  if (pattern == SparsePattern::kShflBw) {
    ShflBwSearchResult search =
        ShflBwSearch(scores, density, opts.v, opts.shflbw);
    result.mask = std::move(search.mask);
    result.storage_to_original = std::move(search.storage_to_original);
  } else {
    result.mask = PatternMask(scores, pattern, density, opts);
  }
  result.pruned_weights = ApplyMask(weights, result.mask);
  return result;
}

}  // namespace shflbw
