// SparseLinear — the flagship public API: a weight-pruned linear layer
// that owns the whole paper pipeline (prune -> compress -> execute on the
// pattern's best kernel -> model the GPU time).
//
// Typical use (see examples/quickstart.cpp):
//   SparseLinear::Options opt;
//   opt.pattern = SparsePattern::kShflBw;
//   opt.density = 0.25;           // 75% sparsity
//   opt.v = 64;
//   SparseLinear layer(weights, opt);
//   Matrix<float> y = layer.Forward(x);
//   double speedup = layer.SpeedupOverDense(x.cols(), GetGpuSpec(arch));
#pragma once

#include <optional>

#include "arch/cost_model.h"
#include "arch/gpu_spec.h"
#include "core/pattern.h"
#include "core/pipeline.h"
#include "format/balanced24.h"
#include "format/bsr.h"
#include "format/csr.h"
#include "format/shfl_bw.h"
#include "format/vector_wise.h"
#include "kernels/kernel_api.h"

namespace shflbw {

/// A pruned, compressed linear layer: y = W_sparse * x.
class SparseLinear {
 public:
  struct Options {
    SparsePattern pattern = SparsePattern::kShflBw;
    double density = 0.25;
    int v = 32;
    TileConfig tile;
    ShflBwSearchOptions search;
  };

  /// Prunes `weights` (M x K, original order) per the options and
  /// compresses into the pattern's kernel format.
  SparseLinear(const Matrix<float>& weights, const Options& options);

  /// Executes the layer on activations x (K x N) with the pattern's
  /// kernel; returns M x N. Bit-identical to GemmReference on the pruned
  /// weights.
  Matrix<float> Forward(const Matrix<float>& x) const;

  /// Kernel resource counts for a batch of n columns on `spec`.
  KernelStats Stats(int n, const GpuSpec& spec) const;

  /// Modelled execution time for a batch of n columns on `spec`.
  TimeBreakdown ModelTime(int n, const GpuSpec& spec) const;

  /// Modelled speedup over the dense tensor-core baseline.
  double SpeedupOverDense(int n, const GpuSpec& spec) const;

  const Matrix<float>& pruned_weights() const { return pruned_weights_; }
  const Matrix<float>& mask() const { return mask_; }
  const Options& options() const { return options_; }
  int rows() const { return pruned_weights_.rows(); }
  int cols() const { return pruned_weights_.cols(); }
  /// Achieved (exact) density after pruning.
  double AchievedDensity() const;

 private:
  Options options_;
  Matrix<float> pruned_weights_;  // dense masked weights, original order
  Matrix<float> mask_;
  // Compressed form matching the pattern (at most one is engaged).
  std::optional<CsrMatrix> csr_;
  std::optional<BsrMatrix> bsr_;
  std::optional<VectorWiseMatrix> vw_;
  std::optional<ShflBwMatrix> shflbw_;
  std::optional<Balanced24Matrix> b24_;
};

}  // namespace shflbw
