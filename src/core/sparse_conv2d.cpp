#include "core/sparse_conv2d.h"

#include "common/check.h"

namespace shflbw {

SparseConv2d::SparseConv2d(const Matrix<float>& filter_matrix,
                           const ConvShape& shape, const Options& options)
    : options_(options), shape_(shape) {
  SHFLBW_CHECK_MSG(filter_matrix.rows() == shape.out_c &&
                       filter_matrix.cols() == shape.GemmK(),
                   "filter matrix " << filter_matrix.rows() << "x"
                                    << filter_matrix.cols()
                                    << " does not match conv shape");
  SHFLBW_CHECK_MSG(options.pattern == SparsePattern::kDense ||
                       options.pattern == SparsePattern::kShflBw,
                   "SparseConv2d supports dense and shfl-bw patterns "
                   "(the paper's conv kernel); got "
                       << SparsePatternName(options.pattern));
  if (options.pattern == SparsePattern::kDense) {
    pruned_weights_ = filter_matrix;
    return;
  }
  PruneOptions popt;
  popt.v = options.v;
  popt.shflbw = options.search;
  PruneResult pr = PruneWithPattern(filter_matrix, SparsePattern::kShflBw,
                                    options.density, popt);
  pruned_weights_ = std::move(pr.pruned_weights);
  shflbw_ = ShflBwMatrix::FromDense(pruned_weights_, options.v,
                                    *pr.storage_to_original);
}

Matrix<float> SparseConv2d::Forward(const Tensor4& input) const {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  if (options_.pattern == SparsePattern::kDense) {
    return Conv2dDense(input, pruned_weights_, shape_, spec).c;
  }
  return Conv2dShflBw(input, *shflbw_, shape_, spec, options_.tile).c;
}

KernelStats SparseConv2d::Stats(const GpuSpec& spec) const {
  if (options_.pattern == SparsePattern::kDense) {
    return Conv2dDenseStats(shape_, spec);
  }
  return Conv2dShflBwStats(shape_, options_.density, options_.v, spec,
                           options_.tile);
}

TimeBreakdown SparseConv2d::ModelTime(const GpuSpec& spec) const {
  return CostModel(spec).Estimate(Stats(spec));
}

double SparseConv2d::SpeedupOverDense(const GpuSpec& spec) const {
  const CostModel model(spec);
  const double dense_s = model.Seconds(Conv2dDenseStats(shape_, spec));
  return dense_s / ModelTime(spec).total_s;
}

}  // namespace shflbw
