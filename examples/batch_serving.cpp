// Batch serving: stand up a BatchServer with multiple Engine replicas
// sharing one packed-weight cache, submit a stream of inference
// requests that the scheduler coalesces into fused multi-request
// launches (one n*K-column kernel launch per layer instead of K), and
// verify every response is bit-identical to a serial single-engine
// run — neither concurrency nor fusion changes an answer.
//
// A second part overloads a deliberately slow server (injected launch
// delays stand in for a saturated host) with deadline-bearing
// requests: TrySubmit returns typed rejections at the door, expired
// requests are shed at seal time with kDeadlineExceeded, the
// degradation controller walks down a quality ladder under queue
// pressure, and a kCritical request rides through it all untouched.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_batch_serving
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/server.h"

using namespace shflbw;
using namespace shflbw::runtime;

int main() {
  // A scaled-down Transformer encoder/decoder pair: serving-sized
  // layers, where request-level parallelism matters more than
  // intra-kernel parallelism.
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  const ModelDesc model = ModelDesc::Transformer(cfg);

  ServerOptions opts;
  opts.replicas = 2;
  opts.engine.planner.density = 0.25;
  opts.engine.planner.v = 8;
  // Cross-request batching: an idle replica coalesces up to max_batch
  // queued requests (FIFO, oldest first) into one fused RunBatched
  // launch, holding a partial batch open up to the coalescing window.
  opts.max_batch = 4;
  opts.coalesce_window_seconds = 0.002;

  BatchServer server(model, opts);
  std::printf("%s: %d replicas, %zu-deep queue, fuse up to %d, plan on %s\n",
              model.name.c_str(), server.replicas(),
              server.options().queue_capacity, server.options().max_batch,
              server.Plan().gpu.c_str());

  // Pack the planned formats once, into the cache all replicas share.
  server.Warmup();
  const std::size_t packed = server.cache().TotalPacks();
  std::printf("warmup packed %zu weights (shared across replicas)\n", packed);

  // Submit a burst of requests; each seed stands in for one user's
  // input tensor. The scheduler hands them to whichever replica is
  // idle, and the replicas' ParallelFor regions run side by side on
  // disjoint partitions of the worker pool.
  constexpr int kRequests = 12;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0xfeedULL + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }

  // Verify: every served output equals the serial single-engine result
  // for the same seed, bit for bit.
  SetParallelThreads(1);
  Engine reference(model, opts.engine);
  int mismatches = 0;
  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    const Matrix<float> expect =
        reference.Run(0xfeedULL + static_cast<std::uint64_t>(i)).output;
    const bool same = resp.output == expect;
    mismatches += same ? 0 : 1;
    std::printf(
        "request %2d -> replica %d (fused x%d)  queue %6.3f ms  "
        "run %6.3f ms  %s\n",
        i, resp.replica, resp.batch_width, resp.queue_seconds * 1e3,
        resp.run_seconds * 1e3, same ? "bit-identical" : "MISMATCH");
  }
  SetParallelThreads(0);

  const ServerStats stats = server.Stats();
  std::printf("served %llu requests (incl. warmup):",
              static_cast<unsigned long long>(stats.completed));
  for (std::size_t r = 0; r < stats.per_replica.size(); ++r) {
    std::printf(" replica %zu x%llu", r,
                static_cast<unsigned long long>(stats.per_replica[r]));
  }
  std::printf("; packs during serving %zu (cache hit every layer)\n",
              server.cache().TotalPacks() - packed);

  // ---- Part 2: overload — deadlines, shedding, degradation ----
  ServerOptions oopts;
  oopts.replicas = 1;
  oopts.engine.planner.density = 0.25;
  oopts.engine.planner.v = 8;
  oopts.max_batch = 2;
  oopts.queue_capacity = 8;
  // Three quality levels; the controller needs only one pressured seal
  // to move (hysteresis 1 keeps the demo short).
  oopts.degradation.ladder_floors = {0.95, 0.85, 0.70};
  oopts.degradation.degrade_queue_fraction = 0.5;
  oopts.degradation.hysteresis_seals = 1;
  // Shedding at seal time is the mechanism on display; don't also
  // reject at the door on estimated feasibility.
  oopts.admission.reject_infeasible_deadlines = false;
  // The fault injector doubles as a load generator: +2 ms per kernel
  // launch, deterministically, makes this server slow enough that a
  // burst of cheap requests genuinely overloads it.
  FaultInjectorOptions slow;
  slow.launch_delay_rate = 1.0;
  slow.launch_delay_seconds = 0.002;
  oopts.engine.fault_injector = std::make_shared<FaultInjector>(slow);

  BatchServer overloaded(model, oopts);
  overloaded.Warmup();
  std::printf("\noverload demo: ladder");
  for (int l = 0; l < overloaded.levels(); ++l) {
    std::printf(" L%d(floor %.2f, retains %.3f)", l, overloaded.LevelFloor(l),
                overloaded.LevelRetainedRatio(l));
  }
  std::printf("\n");

  // An open-loop burst twice the queue depth: TrySubmit does not
  // block, so once the queue fills the client sheds at the door and
  // sees the typed reason.
  constexpr int kBurst = 16;
  const double kDeadline = 0.030;  // seconds; ~4 batches' worth of work
  std::vector<std::future<Response>> burst;
  int rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    Request req;
    req.activation_seed = 0xd00dULL + static_cast<std::uint64_t>(i);
    req.deadline_seconds = kDeadline;
    std::future<Response> fut;
    const SubmitStatus st = overloaded.TrySubmit(req, &fut);
    if (st == SubmitStatus::kAccepted) {
      burst.push_back(std::move(fut));
    } else {
      ++rejected;  // SubmitStatus::kRejectedQueueFull
    }
  }
  // One paying customer with the same deadline but kCritical QoS: the
  // scheduler never sheds it, no matter how late it runs. Blocking
  // Submit waits for queue space instead of bouncing.
  Request vip;
  vip.activation_seed = 0x715ULL;
  vip.deadline_seconds = kDeadline;
  vip.qos = QoS::kCritical;
  std::future<Response> vip_fut = overloaded.Submit(vip);

  overloaded.Drain();
  int ok = 0, shed = 0, degraded = 0;
  for (auto& fut : burst) {
    Response resp = fut.get();
    if (resp.status == ResponseStatus::kDeadlineExceeded) {
      ++shed;
      continue;
    }
    ++ok;
    if (resp.plan_level > 0) ++degraded;
  }
  const Response vip_resp = vip_fut.get();
  const ServerStats os = overloaded.Stats();
  std::printf("burst of %d + 1 critical: %d served (%d at degraded "
              "quality), %d shed past deadline, %d bounced at the door\n",
              kBurst, ok, degraded, shed, rejected);
  std::printf("controller: %llu downshifts, %llu upshifts, finished at "
              "level %d; critical request %s (level %d, retained %.3f)\n",
              static_cast<unsigned long long>(os.downshifts),
              static_cast<unsigned long long>(os.upshifts), os.level,
              vip_resp.status == ResponseStatus::kOk ? "served" : "SHED",
              vip_resp.plan_level, vip_resp.retained_ratio);

  const bool books_balance = os.submitted == os.completed + os.shed;
  const bool vip_served = vip_resp.status == ResponseStatus::kOk;
  return (mismatches == 0 && books_balance && vip_served) ? 0 : 1;
}
