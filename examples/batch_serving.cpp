// Batch serving: stand up a BatchServer with multiple Engine replicas
// sharing one packed-weight cache, submit a stream of inference
// requests that the scheduler coalesces into fused multi-request
// launches (one n*K-column kernel launch per layer instead of K), and
// verify every response is bit-identical to a serial single-engine
// run — neither concurrency nor fusion changes an answer.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/example_batch_serving
#include <cstdio>
#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/server.h"

using namespace shflbw;
using namespace shflbw::runtime;

int main() {
  // A scaled-down Transformer encoder/decoder pair: serving-sized
  // layers, where request-level parallelism matters more than
  // intra-kernel parallelism.
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 256;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  const ModelDesc model = ModelDesc::Transformer(cfg);

  ServerOptions opts;
  opts.replicas = 2;
  opts.engine.planner.density = 0.25;
  opts.engine.planner.v = 8;
  // Cross-request batching: an idle replica coalesces up to max_batch
  // queued requests (FIFO, oldest first) into one fused RunBatched
  // launch, holding a partial batch open up to the coalescing window.
  opts.max_batch = 4;
  opts.coalesce_window_seconds = 0.002;

  BatchServer server(model, opts);
  std::printf("%s: %d replicas, %zu-deep queue, fuse up to %d, plan on %s\n",
              model.name.c_str(), server.replicas(),
              server.options().queue_capacity, server.options().max_batch,
              server.Plan().gpu.c_str());

  // Pack the planned formats once, into the cache all replicas share.
  server.Warmup();
  const std::size_t packed = server.cache().TotalPacks();
  std::printf("warmup packed %zu weights (shared across replicas)\n", packed);

  // Submit a burst of requests; each seed stands in for one user's
  // input tensor. The scheduler hands them to whichever replica is
  // idle, and the replicas' ParallelFor regions run side by side on
  // disjoint partitions of the worker pool.
  constexpr int kRequests = 12;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0xfeedULL + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }

  // Verify: every served output equals the serial single-engine result
  // for the same seed, bit for bit.
  SetParallelThreads(1);
  Engine reference(model, opts.engine);
  int mismatches = 0;
  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    const Matrix<float> expect =
        reference.Run(0xfeedULL + static_cast<std::uint64_t>(i)).output;
    const bool same = resp.output == expect;
    mismatches += same ? 0 : 1;
    std::printf(
        "request %2d -> replica %d (fused x%d)  queue %6.3f ms  "
        "run %6.3f ms  %s\n",
        i, resp.replica, resp.batch_width, resp.queue_seconds * 1e3,
        resp.run_seconds * 1e3, same ? "bit-identical" : "MISMATCH");
  }
  SetParallelThreads(0);

  const ServerStats stats = server.Stats();
  std::printf("served %llu requests (incl. warmup):",
              static_cast<unsigned long long>(stats.completed));
  for (std::size_t r = 0; r < stats.per_replica.size(); ++r) {
    std::printf(" replica %zu x%llu", r,
                static_cast<unsigned long long>(stats.per_replica[r]));
  }
  std::printf("; packs during serving %zu (cache hit every layer)\n",
              server.cache().TotalPacks() - packed);
  return mismatches == 0 ? 0 : 1;
}
