// End-to-end pruning workflow (the paper's §5 + §6.1 pipeline on the
// trainable proxy): train a dense model, prune to Shfl-BW with the
// Fig. 5 search, fine-tune with grow-and-prune, and compare final test
// accuracy against block-wise and vector-wise pruning of the same model.
#include <cstdio>

#include "nn/trainer.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/vector_wise_prune.h"

using namespace shflbw;

namespace {

double RunPattern(const char* name, const nn::LayerMasker& masker,
                  double sparsity, const nn::Dataset& data) {
  nn::Mlp model({32, 64, 64, 8}, /*seed=*/77);
  nn::Trainer trainer(model, data);
  nn::TrainOptions dense_opts;
  dense_opts.epochs = 25;
  trainer.Train(dense_opts);

  nn::TrainOptions ft = dense_opts;
  ft.epochs = 6;
  trainer.GrowAndPruneFineTune(masker, 1.0 - sparsity, /*rounds=*/3,
                               /*grow_ratio=*/0.3, ft);
  const double acc = trainer.TestAccuracy();
  std::printf("%-16s %5.0f%% sparsity -> test accuracy %5.1f%%\n", name,
              sparsity * 100, acc * 100);
  return acc;
}

}  // namespace

int main() {
  nn::DatasetOptions dopt;
  dopt.num_classes = 8;
  dopt.dim = 32;
  dopt.train_per_class = 120;
  dopt.test_per_class = 40;
  const nn::Dataset data = nn::MakeClusterDataset(dopt);

  // Dense baseline.
  {
    nn::Mlp model({32, 64, 64, 8}, /*seed=*/77);
    nn::Trainer trainer(model, data);
    nn::TrainOptions opts;
    opts.epochs = 25;
    trainer.Train(opts);
    std::printf("%-16s  dense baseline -> test accuracy %5.1f%%\n", "dense",
                trainer.TestAccuracy() * 100);
  }

  const int v = 8;
  for (double sparsity : {0.8, 0.9}) {
    std::printf("\n");
    RunPattern("block-wise",
               [&](const Matrix<float>& s, double d) {
                 return BlockWiseMask(s, d, v);
               },
               sparsity, data);
    RunPattern("vector-wise",
               [&](const Matrix<float>& s, double d) {
                 return VectorWiseMask(s, d, v);
               },
               sparsity, data);
    RunPattern("shfl-bw",
               [&](const Matrix<float>& s, double d) {
                 return ShflBwSearch(s, d, v).mask;
               },
               sparsity, data);
  }
  std::printf(
      "\nExpected ordering (Table 1): shfl-bw >= vector-wise >= "
      "block-wise.\n");
  return 0;
}
