// ResNet50 scenario: run a real Shfl-BW sparse convolution (implicit
// GEMM, §4.1) on one bottleneck 3x3 layer, verify numerics, and sweep
// the whole network's conv stack through the performance model.
#include <cstdio>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/sparse_conv2d.h"
#include "model/resnet50.h"

using namespace shflbw;

int main() {
  // conv4_x 3x3 layer (256->256 at 14x14), small batch for the
  // functional run.
  ConvShape shape;
  shape.batch = 2;
  shape.in_c = 256;
  shape.in_h = shape.in_w = 14;
  shape.out_c = 256;
  shape.kh = shape.kw = 3;
  shape.pad = 1;

  Rng rng(2);
  const Matrix<float> filters =
      rng.NormalMatrix(shape.out_c, shape.GemmK());
  Tensor4 input(shape.batch, shape.in_c, shape.in_h, shape.in_w);
  for (auto& v : input.data) v = static_cast<float>(rng.Normal());

  SparseConv2d::Options opt;
  opt.pattern = SparsePattern::kShflBw;
  opt.density = 0.25;
  opt.v = 32;
  const SparseConv2d conv(filters, shape, opt);

  const Matrix<float> y = conv.Forward(input);
  const Matrix<float> ref =
      Conv2dDense(input, conv.pruned_weights(), shape,
                  GetGpuSpec(GpuArch::kV100))
          .c;
  std::printf("conv4.3x3: output %dx%d, max |sparse-dense ref| = %g\n",
              y.rows(), y.cols(), MaxAbsDiff(y, ref));
  for (const GpuSpec& spec : AllGpus()) {
    std::printf("%-6s conv speedup over cuDNN-dense: %5.2fx\n",
                spec.name.c_str(), conv.SpeedupOverDense(spec));
  }

  // Whole-network sweep (performance model, batch 32 as in Fig. 6).
  std::printf("\nResNet50 conv stack, Shfl-BW V=32:\n%-10s", "sparsity");
  for (const GpuSpec& spec : AllGpus()) {
    std::printf(" %9s", spec.name.c_str());
  }
  std::printf("\n");
  for (double sparsity : {0.50, 0.75, 0.85, 0.95}) {
    std::printf("%8.0f%% ", sparsity * 100);
    for (const GpuSpec& spec : AllGpus()) {
      const auto r = EvaluateConvModel(ResNet50Layers(),
                                       KernelClass::kShflBwTensorCore,
                                       1.0 - sparsity, 32, spec);
      std::printf(" %8.2fx", r->speedup);
    }
    std::printf("\n");
  }
  return 0;
}
