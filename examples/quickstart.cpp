// Quickstart: prune a linear layer to Shfl-BW, run the sparse kernel,
// verify against the dense reference, and read the modelled GPU speedup.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/sparse_linear.h"
#include "kernels/gemm_dense.h"

using namespace shflbw;

int main() {
  // A 1024x1024 weight matrix (e.g. an attention projection) and a
  // batch of 128 activation columns.
  Rng rng(1);
  const Matrix<float> weights = rng.NormalMatrix(1024, 1024);
  const Matrix<float> x = rng.NormalMatrix(1024, 128);

  // Prune to 75% sparsity with the Shfl-BW pattern, vector size 64.
  SparseLinear::Options opt;
  opt.pattern = SparsePattern::kShflBw;
  opt.density = 0.25;
  opt.v = 64;
  const SparseLinear layer(weights, opt);
  std::printf("pruned to %.1f%% density (target 25%%)\n",
              layer.AchievedDensity() * 100);

  // Execute the Shfl-BW tensor-core kernel (functional simulation).
  const Matrix<float> y = layer.Forward(x);

  // The sparse kernel is bit-identical to the dense reference on the
  // pruned weights (fp16 operands, fp32 accumulation).
  const Matrix<float> ref = GemmReference(layer.pruned_weights(), x);
  std::printf("max |sparse - reference| = %g (expect 0)\n",
              MaxAbsDiff(y, ref));

  // Modelled speedup over cuBLAS-style dense tensor-core GEMM.
  for (const GpuSpec& spec : AllGpus()) {
    const TimeBreakdown t = layer.ModelTime(x.cols(), spec);
    std::printf(
        "%-6s modelled %7.2f us (%s-bound), speedup over dense %5.2fx\n",
        spec.name.c_str(), t.total_s * 1e6, BoundName(t.bound),
        layer.SpeedupOverDense(x.cols(), spec));
  }
  return 0;
}
