// Transformer scenario on the inference runtime: build the model's
// layer list, let the planner auto-select each layer's format with the
// cost model, pack the winning formats once, and run batched multi-layer
// inference — the paper's headline experiment (Fig. 6, Transformer
// column) executed end-to-end instead of layer-by-layer by hand.
//
// Also shows the two planner policies that matter in practice:
//   - unrestricted speed ranking (may pick block-wise, which Table 1
//     shows costs accuracy at high sparsity);
//   - a plan that hard-excludes the accuracy-hostile patterns, which
//     selects the paper's Shfl-BW family. (For the graded version of
//     this control — a retained-importance floor searched over
//     per-layer densities instead of an all-or-nothing blocklist —
//     see examples/quality_planning.cpp.)
#include <cstdio>

#include "runtime/engine.h"

using namespace shflbw;
using namespace shflbw::runtime;

namespace {

void PrintPlan(const ExecutionPlan& plan) {
  std::printf("  %-16s %-8s %12s %12s %9s\n", "layer", "format",
              "plan (us)", "dense (us)", "plan_x");
  for (const LayerPlan& l : plan.layers) {
    std::printf("  %-16s %-8s %12.2f %12.2f %8.2fx\n", l.name.c_str(),
                FormatName(l.format).c_str(), l.modeled_s * 1e6,
                l.modeled_dense_s * 1e6, l.modeled_dense_s / l.modeled_s);
  }
  std::printf("  %-16s %-8s %12.2f %12.2f %8.2fx\n", "TOTAL (weighted)", "",
              plan.ModeledTotalSeconds() * 1e6,
              plan.ModeledDenseSeconds() * 1e6,
              plan.ModeledDenseSeconds() / plan.ModeledTotalSeconds());
}

}  // namespace

int main() {
  EngineOptions opts;
  opts.planner.density = 0.25;  // 75% sparsity, the paper's headline point
  opts.planner.v = 32;
  opts.planner.arch = GpuArch::kV100;

  // --- Plan phase at the full base config (planning is analytic, so
  // full-size shapes cost nothing). Two policies:
  //   - unrestricted speed ranking;
  //   - quality-constrained: exclude the patterns Table 1 shows losing
  //     accuracy at 75% sparsity, which lands on the vector-wise family.
  //     (The ranking is quality-blind between VW and Shfl-BW — they are
  //     the same kernel up to row-index metadata — so exclude kVectorWise
  //     as well when the checkpoint was pruned with the row shuffle.)
  const TransformerConfig base;  // d_model=512, d_ff=2048, tokens=512
  std::printf("Transformer base (%d enc + %d dec, d_model=%d d_ff=%d "
              "tokens=%d), density %.2f, V=%d, planned for %s\n",
              base.encoder_layers, base.decoder_layers, base.d_model,
              base.d_ff, base.batch_tokens, opts.planner.density,
              opts.planner.v, GetGpuSpec(opts.planner.arch).name.c_str());

  Engine base_engine(ModelDesc::Transformer(base), opts);
  std::printf("\nAuto-selected plan (speed ranking):\n");
  PrintPlan(base_engine.Plan());

  EngineOptions constrained = opts;
  constrained.planner.exclude = {Format::kCsr, Format::kBsr,
                                 Format::kBalanced24};
  Engine quality_engine(ModelDesc::Transformer(base), constrained);
  std::printf("\nExclude-list plan (no csr/bsr/2:4):\n");
  PrintPlan(quality_engine.Plan());

  // --- Pack + execute a scaled-down replica (the functional simulator
  // pays real FLOPs, so execution uses smaller shapes with the same
  // proportions; bench_e2e tracks these numbers over time).
  TransformerConfig cfg;
  cfg.d_model = 256;
  cfg.d_ff = 1024;
  cfg.batch_tokens = 128;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  std::printf("\nExecuting scaled replica (d_model=%d d_ff=%d tokens=%d, "
              "%d enc + %d dec):\n", cfg.d_model, cfg.d_ff,
              cfg.batch_tokens, cfg.encoder_layers, cfg.decoder_layers);
  Engine engine(ModelDesc::Transformer(cfg), opts);

  const RunResult first = engine.Run();  // pays the pack phase
  const RunResult steady = engine.Run();
  std::printf("\nExecution (auto plan, %d distinct layers):\n",
              static_cast<int>(first.layers.size()));
  std::printf("  first run:  %8.3f ms kernels, %zu weight packs\n",
              first.weighted_seconds * 1e3, first.packs_performed);
  std::printf("  steady run: %8.3f ms kernels, %zu weight packs\n",
              steady.weighted_seconds * 1e3, steady.packs_performed);

  EngineOptions dense_opts = opts;
  dense_opts.planner.force_format = Format::kDense;
  Engine dense_engine(ModelDesc::Transformer(cfg), dense_opts);
  dense_engine.Run();
  const RunResult dense = dense_engine.Run();
  std::printf("  all-dense:  %8.3f ms kernels\n",
              dense.weighted_seconds * 1e3);
  std::printf("  measured speedup: %.2fx (modeled %.2fx)\n",
              dense.weighted_seconds / steady.weighted_seconds,
              engine.Plan().ModeledDenseSeconds() /
                  engine.Plan().ModeledTotalSeconds());

  std::printf("\nPer-layer steady-state measurements:\n");
  std::printf("  %-16s %-8s %10s %10s\n", "layer", "format", "ms", "GFLOP/s");
  for (const LayerRunRecord& r : steady.layers) {
    std::printf("  %-16s %-8s %10.3f %10.2f\n", r.name.c_str(),
                FormatName(r.format).c_str(), r.seconds * 1e3, r.Gflops());
  }
  return 0;
}
