// Transformer scenario: prune every compute-intensive GEMM layer of a
// Transformer stack to Shfl-BW and estimate the end-to-end speedup of
// the linear layers on each GPU — the paper's headline experiment
// (Fig. 6, Transformer column).
#include <cstdio>

#include "core/evaluator.h"
#include "model/transformer.h"

using namespace shflbw;

int main() {
  const TransformerConfig cfg;  // base: d_model=512, d_ff=2048, N=128
  const auto layers = TransformerLayers(cfg);
  const auto counts = TransformerLayerCounts(cfg);

  std::printf("Transformer base, %d enc + %d dec layers, batch tokens %d\n",
              cfg.encoder_layers, cfg.decoder_layers, cfg.batch_tokens);
  std::printf("%-16s %10s %10s %10s\n", "", "V100", "T4", "A100");

  for (double sparsity : {0.50, 0.75, 0.85, 0.95}) {
    std::printf("sparsity %3.0f%%   ", sparsity * 100);
    for (const GpuSpec& spec : AllGpus()) {
      const auto r =
          EvaluateGemmModel(layers, counts, KernelClass::kShflBwTensorCore,
                            1.0 - sparsity, 64, spec);
      std::printf(" %9.2fx", r->speedup);
    }
    std::printf("\n");
  }

  // Per-layer breakdown at the headline point (75%, V=64, V100).
  const auto r =
      EvaluateGemmModel(layers, counts, KernelClass::kShflBwTensorCore, 0.25,
                        64, GetGpuSpec(GpuArch::kV100));
  std::printf("\nPer-layer breakdown @75%% on V100 (Shfl-BW V=64):\n");
  std::printf("%-16s %12s %12s %9s\n", "layer", "dense (us)", "sparse (us)",
              "speedup");
  for (const LayerTiming& t : r->layers) {
    std::printf("%-16s %12.2f %12.2f %8.2fx\n", t.name.c_str(),
                t.dense_s * 1e6, t.sparse_s * 1e6, t.speedup);
  }
  std::printf("%-16s %12.2f %12.2f %8.2fx\n", "TOTAL", r->dense_s * 1e6,
              r->sparse_s * 1e6, r->speedup);
  return 0;
}
