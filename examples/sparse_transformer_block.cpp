// A full Transformer encoder block with every linear layer pruned to
// Shfl-BW: multi-head self-attention (sparse Q/K/V/output projections +
// dense softmax(QK^T)V, which stays dense in the paper too) and the
// FFN through the SparseModel API, with the §4.3 LayerNorm-fused
// transposition feeding the sparse kernels. Shows a realistic
// deployment flow: build once (prune + compress + save), then serve.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/sparse_model.h"
#include "format/serialize.h"
#include "kernels/layernorm_fuse.h"
#include "prune/shfl_bw_search.h"

using namespace shflbw;

namespace {

/// Multi-head self-attention over feature-major-transposed activations
/// (x is dim x tokens). The four projections are Shfl-BW sparse; the
/// attention matmuls are activation-activation products and remain
/// dense (no weights to prune — same as the paper, which prunes only
/// weight GEMMs).
Matrix<float> SelfAttention(const Matrix<float>& x, const SparseLinear& wq,
                            const SparseLinear& wk, const SparseLinear& wv,
                            const SparseLinear& wo, int heads) {
  const int dim = x.rows();
  const int tokens = x.cols();
  const int hd = dim / heads;
  const Matrix<float> q = wq.Forward(x);  // dim x tokens
  const Matrix<float> k = wk.Forward(x);
  const Matrix<float> v = wv.Forward(x);

  Matrix<float> context(dim, tokens);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  for (int h = 0; h < heads; ++h) {
    const int base = h * hd;
    for (int ti = 0; ti < tokens; ++ti) {
      // scores over all source tokens, softmaxed.
      std::vector<float> scores(static_cast<std::size_t>(tokens));
      float maxv = -1e30f;
      for (int tj = 0; tj < tokens; ++tj) {
        float dot = 0;
        for (int d = 0; d < hd; ++d) {
          dot += q(base + d, ti) * k(base + d, tj);
        }
        scores[tj] = dot * scale;
        maxv = std::max(maxv, scores[tj]);
      }
      float denom = 0;
      for (float& s : scores) {
        s = std::exp(s - maxv);
        denom += s;
      }
      for (int d = 0; d < hd; ++d) {
        float acc = 0;
        for (int tj = 0; tj < tokens; ++tj) {
          acc += scores[tj] / denom * v(base + d, tj);
        }
        context(base + d, ti) = acc;
      }
    }
  }
  return wo.Forward(context);
}

}  // namespace

int main() {
  constexpr int kDim = 512;
  constexpr int kFf = 2048;
  constexpr int kTokens = 256;
  Rng rng(4);

  // ---- Build phase: prune + compress the FFN of one encoder block.
  SparseLinear::Options opt;
  opt.pattern = SparsePattern::kShflBw;
  opt.density = 0.25;
  opt.v = 64;

  SparseModel ffn;
  ffn.AddLayer("ffn.fc1", rng.NormalMatrix(kFf, kDim), opt,
               Activation::kRelu);
  ffn.AddLayer("ffn.fc2", rng.NormalMatrix(kDim, kFf), opt,
               Activation::kNone);
  std::printf("FFN compressed: %.2f MB (dense: %.2f MB, %.1fx smaller)\n",
              ffn.CompressedBytes() / 1e6, ffn.DenseBytes() / 1e6,
              ffn.DenseBytes() / ffn.CompressedBytes());

  // The compressed weights can be stored and reloaded byte-exactly —
  // what a serving system does after offline pruning.
  const ShflBwMatrix fc1 = PruneToShflBw(rng.NormalMatrix(kFf, kDim),
                                         opt.density, opt.v);
  SaveShflBw(fc1, "/tmp/shflbw_fc1.bin");
  const ShflBwMatrix reloaded = LoadShflBw("/tmp/shflbw_fc1.bin");
  std::printf("serialize round-trip: %s\n",
              reloaded.ToDense() == fc1.ToDense() ? "exact" : "MISMATCH");

  // ---- Attention projections, also Shfl-BW at 75%.
  const SparseLinear wq(rng.NormalMatrix(kDim, kDim), opt);
  const SparseLinear wk(rng.NormalMatrix(kDim, kDim), opt);
  const SparseLinear wv(rng.NormalMatrix(kDim, kDim), opt);
  const SparseLinear wo(rng.NormalMatrix(kDim, kDim), opt);

  // ---- Serve phase: LayerNorm (feature-major residual stream) fused
  // with the transpose into the batch-innermost kernel layout, then
  // attention -> FFN.
  const Matrix<float> residual = rng.NormalMatrix(kTokens, kDim);
  LayerNormParams ln;
  ln.gamma.assign(kDim, 1.0f);
  ln.beta.assign(kDim, 0.0f);
  const Matrix<float> x = LayerNormTransposed(residual, ln);  // dim x tok
  const Matrix<float> attn = SelfAttention(x, wq, wk, wv, wo, /*heads=*/8);
  const Matrix<float> y = ffn.Forward(attn);
  std::printf("block output: %dx%d\n", y.rows(), y.cols());

  // ---- What did sparsity buy across the block's weight GEMMs?
  for (const GpuSpec& spec : AllGpus()) {
    const double proj_sparse = 4 * wq.ModelTime(kTokens, spec).total_s;
    const double ffn_sparse = ffn.ModelSeconds(kTokens, spec);
    const double proj_dense =
        proj_sparse * wq.SpeedupOverDense(kTokens, spec);
    const double ffn_dense =
        ffn_sparse * ffn.SpeedupOverDense(kTokens, spec);
    std::printf(
        "%-6s block weight-GEMMs modelled %7.2f us, speedup %5.2fx\n",
        spec.name.c_str(), (proj_sparse + ffn_sparse) * 1e6,
        (proj_dense + ffn_dense) / (proj_sparse + ffn_sparse));
  }
  return 0;
}
