// Quality-aware planning end-to-end: the quality floor knob from plan
// to packed weights to execution.
//
// Plans a small Transformer three ways — speed-only (quality-blind),
// quality-constrained at a retained-importance floor, and a higher
// floor in aggregate (importance-weighted) mode — then packs and runs
// the quality-constrained plan, printing each layer's selected
// (format, density, V) and the retained-score ratio its mask keeps.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quality_planning
#include <cstdio>

#include "runtime/engine.h"

namespace {

using namespace shflbw;
using namespace shflbw::runtime;

void PrintPlan(const char* title, const ExecutionPlan& plan) {
  std::printf("\n%s\n", title);
  std::printf("  %-16s %-8s %8s %4s %9s %12s\n", "layer", "format",
              "density", "V", "retained", "modeled_us");
  for (const LayerPlan& l : plan.layers) {
    if (l.retained_ratio >= 0) {
      std::printf("  %-16s %-8s %8.3f %4d %9.3f %12.3f\n", l.name.c_str(),
                  FormatName(l.format).c_str(), l.density, l.v,
                  l.retained_ratio, l.modeled_s * 1e6);
    } else {
      std::printf("  %-16s %-8s %8.3f %4d %9s %12.3f\n", l.name.c_str(),
                  FormatName(l.format).c_str(), l.density, l.v, "n/a",
                  l.modeled_s * 1e6);
    }
  }
  std::printf("  modeled total %.3f us (all-dense %.3f us)",
              plan.ModeledTotalSeconds() * 1e6,
              plan.ModeledDenseSeconds() * 1e6);
  if (plan.MinRetainedRatio() >= 0) {
    std::printf(", min ratio %.3f, importance-weighted %.3f",
                plan.MinRetainedRatio(), plan.AggregateRetainedRatio());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  TransformerConfig cfg;
  cfg.d_model = 128;
  cfg.d_ff = 512;
  cfg.batch_tokens = 64;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  const ModelDesc model = ModelDesc::Transformer(cfg);

  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 16;

  // 1. Speed-only: the quality-blind cost-model ranking. Fastest plan,
  //    but nothing bounds how much importance the masks throw away.
  Engine speed_engine(model, opts);
  PrintPlan("speed-only plan (quality-blind)", speed_engine.Plan());

  // 2. Quality-constrained: every layer must retain at least 60% of
  //    its importance; the planner searches (format, density, V) per
  //    layer — note how it DOWNSHIFTS the granularity to V=8 where the
  //    V=16 mask would miss the floor — and picks the fastest
  //    qualifying combination, falling back to dense where nothing
  //    sparse qualifies (try floor 0.8 here to see it).
  EngineOptions qopts = opts;
  qopts.planner.quality.enabled = true;
  qopts.planner.quality.min_retained_ratio = 0.60;
  qopts.planner.quality.v_ladder = {8, 16};
  Engine quality_engine(model, qopts);
  PrintPlan("quality-constrained plan (per-layer floor 0.60)",
            quality_engine.Plan());

  // 3. Aggregate mode at a floor no single sparse mask reaches: the
  //    importance-weighted mean must meet it, so the planner keeps the
  //    cheap layers sparse and spends dense latency only where the
  //    importance lives.
  EngineOptions aopts = qopts;
  aopts.planner.quality.min_retained_ratio = 0.65;
  aopts.planner.quality.floor = QualityOptions::Floor::kAggregate;
  Engine aggregate_engine(model, aopts);
  PrintPlan("quality-constrained plan (aggregate floor 0.65)",
            aggregate_engine.Plan());

  // Pack + run the per-layer-floor plan: the first Run prunes and
  // converts each layer at ITS plan (density, V) into the weight
  // cache; the second run packs nothing.
  const RunResult first = quality_engine.Run();
  const RunResult second = quality_engine.Run();
  std::printf("\nquality engine: first run packed %zu weights, steady "
              "state packed %zu; whole-model latency %.3f ms\n",
              first.packs_performed, second.packs_performed,
              second.weighted_seconds * 1e3);

  Engine dense_engine(model, [] {
    EngineOptions d;
    d.planner.force_format = Format::kDense;
    return d;
  }());
  dense_engine.Run();
  const RunResult dense = dense_engine.Run();
  const ExecutionPlan& qplan = quality_engine.Plan();
  std::printf("all-dense latency %.3f ms -> quality-constrained keeps "
              ">= 60%% importance per layer at %.2fx the measured speed "
              "(%.2fx modeled)\n",
              dense.weighted_seconds * 1e3,
              second.weighted_seconds > 0
                  ? dense.weighted_seconds / second.weighted_seconds
                  : 0.0,
              qplan.ModeledTotalSeconds() > 0
                  ? qplan.ModeledDenseSeconds() / qplan.ModeledTotalSeconds()
                  : 0.0);
  return 0;
}
