# Configure-time assertions over Clang's thread-safety analysis.
#
# The annotation layer (src/common/thread_annotations.h) is only worth
# anything while the analysis actually rejects broken code. Compilers
# change, macros rot, and a single stray SHFLBW_NO_THREAD_SAFETY_ANALYSIS
# in the wrong place can neuter a whole translation unit — so this
# module try_compiles three deliberately-broken probes and FAILS THE
# CONFIGURE if any of them is accepted:
#
#   probe_write_without_lock.cpp    write a GUARDED_BY field, no lock
#   probe_requires_without_lock.cpp call a REQUIRES helper, no lock
#   probe_double_acquire.cpp        lock the same Mutex twice in scope
#
# plus one positive control (probe_ok.cpp) that must COMPILE — it
# proves the harness isn't rejecting everything for an unrelated
# reason (bad include path, macro typo), which would make the three
# failures above meaningless.
#
# Clang-only: GCC has no capability analysis, the macros expand to
# nothing there, and every probe would "wrongly" compile. The CI job
# `clang-thread-safety` runs this path on every push.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(STATUS "Thread-safety probes: skipped (${CMAKE_CXX_COMPILER_ID} "
                 "has no capability analysis; run with Clang to verify)")
  return()
endif()

set(_probe_dir ${CMAKE_CURRENT_SOURCE_DIR}/tests/static)
set(_probe_flags "-Wall -Werror=thread-safety -pthread")

# Positive control: disciplined wrapper use must compile and link.
try_compile(SHFLBW_PROBE_OK
  ${CMAKE_BINARY_DIR}/thread_safety_probes/ok
  ${_probe_dir}/probe_ok.cpp
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
    "-DCMAKE_CXX_FLAGS=${_probe_flags}"
  CXX_STANDARD 20
  CXX_STANDARD_REQUIRED ON
  OUTPUT_VARIABLE _probe_ok_output)
if(NOT SHFLBW_PROBE_OK)
  message(FATAL_ERROR
    "Thread-safety probe control FAILED: tests/static/probe_ok.cpp must "
    "compile cleanly under -Werror=thread-safety but did not. The probe "
    "harness (or thread_annotations.h itself) is broken.\n"
    "Compiler output:\n${_probe_ok_output}")
endif()

# Negative probes: each must fail, and fail FOR THE RIGHT REASON — the
# output has to mention thread-safety, or an unrelated compile error
# (missing header, syntax rot) would masquerade as a passing probe.
foreach(_probe write_without_lock requires_without_lock double_acquire)
  try_compile(SHFLBW_PROBE_${_probe}
    ${CMAKE_BINARY_DIR}/thread_safety_probes/${_probe}
    ${_probe_dir}/probe_${_probe}.cpp
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_FLAGS=${_probe_flags}"
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE _probe_output)
  if(SHFLBW_PROBE_${_probe})
    message(FATAL_ERROR
      "Thread-safety probe FAILED: tests/static/probe_${_probe}.cpp "
      "compiled, but it violates the locking discipline and must be "
      "rejected under -Werror=thread-safety. The annotation layer is no "
      "longer protecting anything.")
  endif()
  if(NOT _probe_output MATCHES "thread-safety")
    message(FATAL_ERROR
      "Thread-safety probe probe_${_probe}.cpp failed to compile, but "
      "not with a thread-safety diagnostic — an unrelated error is "
      "masking the check.\nCompiler output:\n${_probe_output}")
  endif()
  message(STATUS "Thread-safety probe: probe_${_probe}.cpp correctly rejected")
endforeach()

message(STATUS "Thread-safety probes: all passed")
