# SHFLBW_SANITIZE: comma-separated sanitizer selection applied to every
# target in the build (library, tests, benches, examples).
#
#   cmake -B build -S . -DSHFLBW_SANITIZE=thread
#   cmake -B build -S . -DSHFLBW_SANITIZE=address,undefined
#
# Supported: thread | address | undefined (and the compatible combo
# address,undefined). thread+address cannot coexist in one process —
# both want the shadow-memory region — so that combination is rejected
# at configure time instead of failing obscurely at link.
#
# CI uses this for the tsan-concurrency and asan-ubsan jobs; the flags
# here replace the hand-rolled -fsanitize strings those jobs used to
# carry, so local repro is exactly one cache variable.

set(SHFLBW_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers: thread, address, undefined")

if(NOT SHFLBW_SANITIZE)
  return()
endif()

string(REPLACE "," ";" _san_list "${SHFLBW_SANITIZE}")
set(_san_flags "")
set(_has_thread FALSE)
set(_has_address FALSE)

foreach(_san ${_san_list})
  string(STRIP "${_san}" _san)
  if(_san STREQUAL "thread")
    set(_has_thread TRUE)
    list(APPEND _san_flags -fsanitize=thread)
  elseif(_san STREQUAL "address")
    set(_has_address TRUE)
    list(APPEND _san_flags -fsanitize=address)
  elseif(_san STREQUAL "undefined")
    # Abort on the first report instead of recovering: a UB finding in
    # CI must fail the job, not scroll past in the log.
    list(APPEND _san_flags -fsanitize=undefined -fno-sanitize-recover=all)
  else()
    message(FATAL_ERROR
      "SHFLBW_SANITIZE: unknown sanitizer '${_san}' "
      "(expected thread, address, or undefined)")
  endif()
endforeach()

if(_has_thread AND _has_address)
  message(FATAL_ERROR
    "SHFLBW_SANITIZE: thread and address sanitizers cannot be combined "
    "in one binary; build them as separate configurations")
endif()

# -O1 keeps stacks honest in reports while staying fast enough for the
# full suite; frame pointers make the traces readable.
add_compile_options(${_san_flags} -O1 -g -fno-omit-frame-pointer)
add_link_options(${_san_flags})
message(STATUS "Sanitizers enabled: ${SHFLBW_SANITIZE}")
