// Negative-compilation probe: writing a SHFLBW_GUARDED_BY field
// without holding its mutex must be rejected by Clang's thread-safety
// analysis. cmake/ThreadSafetyProbes.cmake asserts this file FAILS to
// compile under -Werror=thread-safety; if it ever compiles, the
// annotation layer has silently stopped protecting anything.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {  // no lock taken: must trip "writing variable ... requires"
    ++value_;
  }

 private:
  shflbw::Mutex mu_;
  int value_ SHFLBW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
