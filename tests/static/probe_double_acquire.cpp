// Negative-compilation probe: acquiring the same mutex twice in one
// scope must be rejected ("acquiring mutex ... that is already held")
// — std::mutex makes recursive locking undefined behaviour, and the
// analysis catches it before the deadlock does.
// cmake/ThreadSafetyProbes.cmake asserts this file FAILS to compile
// under -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

class Table {
 public:
  void Touch() {
    shflbw::MutexLock outer(mu_);
    shflbw::MutexLock inner(mu_);  // double acquire: must not compile
    ++value_;
  }

 private:
  shflbw::Mutex mu_;
  int value_ SHFLBW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Touch();
  return 0;
}
