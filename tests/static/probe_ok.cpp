// Positive control for the negative-compilation probes: disciplined
// use of every wrapper in common/thread_annotations.h MUST compile
// cleanly under -Werror=thread-safety. If this file fails, the probe
// harness is rejecting everything (e.g. a broken include path or a
// macro typo), and the three negative probes' failures prove nothing.
#include "common/thread_annotations.h"

namespace {

class Table {
 public:
  void Bump() SHFLBW_EXCLUDES(mu_) {
    shflbw::MutexLock lock(mu_);
    BumpLocked();
  }

  void WaitNonZero() SHFLBW_EXCLUDES(mu_) {
    shflbw::UniqueLock lock(mu_);
    cv_.Wait(mu_, [this]() SHFLBW_REQUIRES(mu_) { return value_ != 0; });
    lock.Unlock();  // early release, as the scheduler loops do
  }

  int Value() SHFLBW_EXCLUDES(mu_) {
    shflbw::MutexLock lock(mu_);
    return value_;
  }

  void Notify() { cv_.NotifyAll(); }

 private:
  void BumpLocked() SHFLBW_REQUIRES(mu_) { ++value_; }

  shflbw::Mutex mu_;
  shflbw::CondVar cv_;
  int value_ SHFLBW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Bump();
  t.Notify();
  return t.Value() == 1 ? 0 : 1;
}
