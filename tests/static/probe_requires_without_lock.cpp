// Negative-compilation probe: calling a SHFLBW_REQUIRES(mu_) helper
// without holding mu_ must be rejected ("calling function ... requires
// holding mutex"). cmake/ThreadSafetyProbes.cmake asserts this file
// FAILS to compile under -Werror=thread-safety.
#include "common/thread_annotations.h"

namespace {

class Table {
 public:
  int Get() {  // calls the locked helper with no lock held
    return GetLocked();
  }

 private:
  int GetLocked() SHFLBW_REQUIRES(mu_) { return value_; }

  shflbw::Mutex mu_;
  int value_ SHFLBW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  return t.Get();
}
