// Metrics-registry contract: sharded counters count exactly under
// concurrency, log-bucketed histogram quantiles stay within the
// documented 2^(1/8) factor of the exact sorted-sample quantiles,
// snapshots taken while recording are consistent (counter reads are
// monotone, histogram count never exceeds what was recorded), and the
// Prometheus exposition is well-formed.
#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/metrics.h"

namespace shflbw {
namespace obs {
namespace {

TEST(Counter, ExactUnderConcurrentSharding) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Counter, WeightedAddsSum) {
  Counter c;
  c.Add(2.5);
  c.Add(0.5);
  c.Add();  // default 1
  EXPECT_DOUBLE_EQ(c.Value(), 4.0);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(3.0);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
}

#if SHFLBW_OBS  // histogram Record() compiles to a no-op when off

// The headline histogram guarantee: for samples inside the bucketed
// range, every quantile is within a factor QuantileErrorFactor() ==
// 2^(1/8) of the exact sorted-sample quantile — without retaining one
// sample. Checked against three differently shaped distributions.
TEST(Histogram, QuantileWithinDocumentedBoundOfExact) {
  std::mt19937_64 rng(0x0b5e55ed);
  struct Case {
    const char* name;
    std::vector<double> samples;
  };
  std::vector<Case> cases;
  {
    Case c{"uniform", {}};
    std::uniform_real_distribution<double> d(1e-4, 1e-1);
    for (int i = 0; i < 20000; ++i) c.samples.push_back(d(rng));
    cases.push_back(std::move(c));
  }
  {
    Case c{"lognormal", {}};
    std::lognormal_distribution<double> d(-6.0, 1.5);
    for (int i = 0; i < 20000; ++i) c.samples.push_back(d(rng));
    cases.push_back(std::move(c));
  }
  {
    Case c{"bimodal", {}};
    std::normal_distribution<double> fast(1e-3, 1e-4), slow(5e-2, 5e-3);
    for (int i = 0; i < 20000; ++i) {
      c.samples.push_back(std::abs(i % 10 == 0 ? slow(rng) : fast(rng)));
    }
    cases.push_back(std::move(c));
  }

  const double bound = Histogram::QuantileErrorFactor();
  for (Case& c : cases) {
    Histogram h(1e-6);
    for (double s : c.samples) h.Record(s);
    std::sort(c.samples.begin(), c.samples.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      // Exact nearest-rank quantile over the sorted samples — the same
      // rank convention Quantile() uses over buckets.
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(c.samples.size()))));
      const double exact = c.samples[rank - 1];
      const double approx = h.Quantile(q);
      EXPECT_GT(approx, 0.0) << c.name << " q=" << q;
      const double ratio = approx / exact;
      EXPECT_LE(ratio, bound * (1 + 1e-12))
          << c.name << " q=" << q << " exact=" << exact
          << " approx=" << approx;
      EXPECT_GE(ratio, 1.0 / bound * (1 - 1e-12))
          << c.name << " q=" << q << " exact=" << exact
          << " approx=" << approx;
    }
    EXPECT_EQ(h.Count(), c.samples.size());
  }
}

TEST(Histogram, UnderflowAndOverflowBucketsCatchEverything) {
  Histogram h(1e-3);
  h.Record(0.0);                     // underflow
  h.Record(-5.0);                    // underflow (negative)
  h.Record(std::nan(""));            // underflow by convention
  h.Record(1e9);                     // overflow
  h.Record(1e-2);                    // in range
  EXPECT_EQ(h.Count(), 5u);
  const std::vector<std::uint64_t> b = h.MergedBuckets();
  EXPECT_EQ(b.front(), 3u);
  EXPECT_EQ(b.back(), 1u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h(1e-6);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      std::uniform_real_distribution<double> d(1e-5, 1e-1);
      for (int i = 0; i < kPerThread; ++i) h.Record(d(rng));
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(h.Sum(), 0.0);
}

// Snapshot-while-recording consistency: a reader polling Value()/
// Count() concurrently with writers must see monotone non-decreasing
// values (per-cell modification orders are coherent; sums of coherent
// cells read by one thread can only grow).
TEST(Registry, SnapshotWhileRecordingIsMonotone) {
  Registry reg;
  Counter& c = reg.GetCounter("shflbw_test_total");
  Histogram& h = reg.GetHistogram("shflbw_test_seconds");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.Add();
        h.Record(1e-3);
      }
    });
  }
  double last_v = 0;
  std::uint64_t last_n = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = c.Value();
    const std::uint64_t n = h.Count();
    EXPECT_GE(v, last_v);
    EXPECT_GE(n, last_n);
    last_v = v;
    last_n = n;
  }
  stop.store(true);
  for (std::thread& th : writers) th.join();
  EXPECT_EQ(c.Value(), static_cast<double>(h.Count()));
}

#endif  // SHFLBW_OBS

TEST(Registry, SameNameReturnsSameMetricDifferentTypeThrows) {
  Registry reg;
  Counter& a = reg.GetCounter("shflbw_x_total");
  Counter& b = reg.GetCounter("shflbw_x_total");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.GetGauge("shflbw_x_total"), Error);
  EXPECT_EQ(reg.FindCounter("shflbw_x_total"), &a);
  EXPECT_EQ(reg.FindGauge("shflbw_x_total"), nullptr);
  EXPECT_EQ(reg.FindCounter("absent"), nullptr);
}

#if SHFLBW_OBS  // the histogram series below need live Record()
TEST(Registry, ExpositionTextIsWellFormed) {
  Registry reg;
  reg.GetCounter("shflbw_req_total{reason=\"ok\"}", "Requests").Add(3);
  reg.GetCounter("shflbw_req_total{reason=\"shed\"}").Add(1);
  reg.GetGauge("shflbw_depth", "Queue depth").Set(7);
  Histogram& h = reg.GetHistogram("shflbw_lat_seconds", "Latency");
  h.Record(1e-3);
  h.Record(2e-3);
  const std::string text = reg.ExpositionText();

  // One HELP/TYPE per family, labeled series both present.
  EXPECT_NE(text.find("# HELP shflbw_req_total Requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE shflbw_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("shflbw_req_total{reason=\"ok\"} 3"), std::string::npos);
  EXPECT_NE(text.find("shflbw_req_total{reason=\"shed\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE shflbw_req_total counter",
                      text.find("# TYPE shflbw_req_total counter") + 1),
            std::string::npos)
      << "TYPE emitted once per family";
  EXPECT_NE(text.find("# TYPE shflbw_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("shflbw_depth 7"), std::string::npos);
  // Histogram: cumulative buckets ending at +Inf == _count, plus
  // _sum/_count lines.
  EXPECT_NE(text.find("# TYPE shflbw_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("shflbw_lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("shflbw_lat_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("shflbw_lat_seconds_sum"), std::string::npos);
  // Cumulative monotonicity of the bucket lines.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t last_cum = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("shflbw_lat_seconds_bucket", 0) == 0) {
      const std::size_t sp = line.rfind(' ');
      const std::uint64_t cum = std::stoull(line.substr(sp + 1));
      EXPECT_GE(cum, last_cum) << line;
      last_cum = cum;
    }
  }
  EXPECT_EQ(last_cum, 2u);
}
#endif  // SHFLBW_OBS

#if SHFLBW_OBS
// Compiled-in marker so the SHFLBW_OBS=0 configuration (exercised by a
// dedicated CI build) still compiles this file; the histogram Record
// path is the part that vanishes.
TEST(ObsConfig, CompiledIn) { EXPECT_TRUE(kCompiledIn); }
#else
TEST(ObsConfig, CompiledOutHistogramRecordsNothing) {
  Histogram h;
  h.Record(1e-3);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_FALSE(kCompiledIn);
}
#endif

}  // namespace
}  // namespace obs
}  // namespace shflbw
