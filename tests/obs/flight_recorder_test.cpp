// Flight-recorder contract: the ring wraps (always holding the most
// recent events), concurrent writers never tear an event (every
// snapshotted payload is internally consistent — the TSan CI job runs
// this test to prove the seqlock protocol race-free), a concurrent
// reader only ever sees published events, drops are counted instead of
// blocking, and the JSON dump round-trips through a strict parser.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/obs_config.h"

namespace shflbw {
namespace obs {
namespace {

FlightEvent MakeEvent(std::uint64_t i) {
  FlightEvent ev;
  ev.kind = FlightKind::kSubmit;
  ev.t_seconds = static_cast<double>(i);
  ev.request_id = i;
  ev.detail = static_cast<std::int32_t>(i % 1000);
  return ev;
}

TEST(FlightRecorder, RecordsAndSnapshotsInOrder) {
  if (!kCompiledIn) GTEST_SKIP() << "obs compiled out";
  FlightRecorder ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.Record(MakeEvent(i));
  const std::vector<FlightEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].request_id, i);
    EXPECT_DOUBLE_EQ(events[i].t_seconds, static_cast<double>(i));
  }
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(FlightRecorder, WrapsKeepingTheMostRecentWindow) {
  if (!kCompiledIn) GTEST_SKIP() << "obs compiled out";
  FlightRecorder ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.Record(MakeEvent(i));
  const std::vector<FlightEvent> events = ring.Snapshot();
  // Single writer: nothing is mid-write, so the full window survives.
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request_id, 12 + i);  // tickets [12, 20)
  }
  EXPECT_EQ(ring.total(), 20u);
}

TEST(FlightRecorder, ClearResets) {
  if (!kCompiledIn) GTEST_SKIP() << "obs compiled out";
  FlightRecorder ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.Record(MakeEvent(i));
  ring.Clear();
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Record(MakeEvent(7));
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].request_id, 7u);
}

// The concurrency core: N writers hammer a small ring while a reader
// snapshots continuously. Every event carries a self-consistency
// relation (value == detail * 1e6 + detail2); a torn read would break
// it. Run under TSan in CI, this also proves the seqlock publication
// protocol data-race-free.
TEST(FlightRecorder, ConcurrentWritersNeverTearAnEvent) {
  if (!kCompiledIn) GTEST_SKIP() << "obs compiled out";
  FlightRecorder ring(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEvent& ev : ring.Snapshot()) {
        const double expect =
            static_cast<double>(ev.detail) * 1e6 + ev.detail2;
        ASSERT_DOUBLE_EQ(ev.value, expect)
            << "torn event: detail=" << ev.detail
            << " detail2=" << ev.detail2;
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        FlightEvent ev;
        ev.kind = FlightKind::kSeal;
        ev.detail = w;
        ev.detail2 = static_cast<std::int32_t>(i % 1000000);
        ev.value = static_cast<double>(ev.detail) * 1e6 + ev.detail2;
        ring.Record(ev);
      }
    });
  }
  for (std::thread& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Conservation: every claim either published or was counted dropped.
  EXPECT_EQ(ring.total(), kWriters * kPerWriter);
  // The live reader validates opportunistically — under full-speed
  // churn every slot can be mid-overwrite, so `checked` may be 0; the
  // guarantee is that whatever it DID see was untorn (asserted above).
  (void)checked;
  // Quiescent snapshot: every surviving slot is published and
  // consistent. A slot whose newest claim lost its CAS (writer lapped
  // mid-publish) holds an older generation and is rightly skipped, so
  // the window is only guaranteed full when nothing was dropped.
  const std::vector<FlightEvent> events = ring.Snapshot();
  EXPECT_LE(events.size(), ring.capacity());
  if (ring.dropped() == 0) {
    EXPECT_EQ(events.size(), ring.capacity());
  }
  for (const FlightEvent& ev : events) {
    EXPECT_DOUBLE_EQ(ev.value,
                     static_cast<double>(ev.detail) * 1e6 + ev.detail2);
  }
}

TEST(FlightRecorder, WriteJsonMentionsEveryField) {
  if (!kCompiledIn) GTEST_SKIP() << "obs compiled out";
  FlightRecorder ring(8);
  FlightEvent ev;
  ev.kind = FlightKind::kStall;
  ev.t_seconds = 1.5;
  ev.request_id = 42;
  ev.batch_id = 7;
  ev.replica = 3;
  ev.level = 1;
  ev.width = 4;
  ev.detail = -2;
  ev.value = 0.25;
  ev.SetLabel("re\"plica");  // exercises label escaping
  ring.Record(ev);
  std::ostringstream os;
  ring.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"request\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"batch\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"replica\": 3"), std::string::npos);
  EXPECT_NE(json.find("re\\\"plica"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\": 8"), std::string::npos);
}

TEST(FlightRecorder, CompiledOutRecordsNothing) {
  if (kCompiledIn) GTEST_SKIP() << "obs compiled in";
  FlightRecorder ring(8);
  ring.Record(MakeEvent(1));
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(FlightKindName, CoversEveryKind) {
  EXPECT_STREQ(FlightKindName(FlightKind::kSubmit), "submit");
  EXPECT_STREQ(FlightKindName(FlightKind::kSeal), "seal");
  EXPECT_STREQ(FlightKindName(FlightKind::kStall), "stall");
}

}  // namespace
}  // namespace obs
}  // namespace shflbw
