// Heartbeat + watchdog contract: registration claims and frees slots,
// the publish path works from any thread, a stall episode fires the
// callback exactly once (not once per poll), a beat closes the episode
// so a second silence fires again, and disarmed slots never fire no
// matter how stale their last beat is.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/watchdog.h"

namespace shflbw {
namespace obs {
namespace {

/// Spin until `pred` holds or ~2 s pass; returns whether it held.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(HeartbeatRegistry, RegisterSnapshotUnregister) {
  HeartbeatRegistry reg;
  const int a = reg.Register("alpha");
  const int b = reg.Register("beta");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  reg.Arm(a, 1.5);
  reg.Beat(a, 2.5);
  std::vector<HeartbeatRegistry::View> views = reg.Snapshot();
  ASSERT_EQ(views.size(), 2u);
  bool saw_alpha = false;
  for (const auto& v : views) {
    if (v.name != "alpha") continue;
    saw_alpha = true;
    EXPECT_TRUE(v.armed);
    EXPECT_DOUBLE_EQ(v.beat_seconds, 2.5);
    EXPECT_EQ(v.beats, 2u);  // Arm counts as a beat
  }
  EXPECT_TRUE(saw_alpha);
  reg.Unregister(a);
  reg.Unregister(b);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(HeartbeatRegistry, NegativeSlotIsANoOpEverywhere) {
  HeartbeatRegistry reg;
  reg.Arm(-1, 1.0);
  reg.Beat(-1, 2.0);
  reg.Disarm(-1);
  reg.Unregister(-1);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST(HeartbeatRegistry, SlotsAreReusedAfterUnregister) {
  HeartbeatRegistry reg;
  std::vector<int> slots;
  for (int i = 0; i < HeartbeatRegistry::kMaxSlots; ++i) {
    // Built via += rather than `"s" + std::to_string(i)`, which trips
    // a GCC 12 -Wrestrict false positive (fatal under CI's -Werror).
    std::string name = "s";
    name += std::to_string(i);
    slots.push_back(reg.Register(name));
    ASSERT_GE(slots.back(), 0);
  }
  EXPECT_EQ(reg.Register("overflow"), -1);  // table full degrades
  reg.Unregister(slots[3]);
  EXPECT_GE(reg.Register("reused"), 0);
  for (int i = 0; i < HeartbeatRegistry::kMaxSlots; ++i) {
    if (i != 3) reg.Unregister(slots[static_cast<std::size_t>(i)]);
  }
}

struct StallLog {
  Mutex mu;
  std::vector<std::string> names SHFLBW_GUARDED_BY(mu);
  std::atomic<int> count{0};

  void Record(const std::string& name) {
    MutexLock lock(mu);
    names.push_back(name);
    count.fetch_add(1);
  }
};

TEST(Watchdog, FiresOncePerEpisodeAndAgainAfterRecovery) {
  HeartbeatRegistry reg;
  const int slot = reg.Register("wedged");
  ASSERT_GE(slot, 0);
  reg.Arm(slot, NowSeconds());

  StallLog log;
  WatchdogOptions opts;
  opts.enabled = true;
  opts.stall_budget_seconds = 0.03;
  opts.poll_interval_seconds = 0.005;
  Watchdog dog(opts, {&reg},
               [&log](const std::string& name, double age) {
                 EXPECT_GT(age, 0.0);
                 log.Record(name);
               });

  // Armed silence -> exactly one firing, no matter how many polls pass.
  ASSERT_TRUE(WaitFor([&] { return log.count.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(log.count.load(), 1);
  EXPECT_EQ(dog.stalls(), 1u);

  // A beat closes the episode; renewed silence opens a second one.
  reg.Beat(slot, NowSeconds());
  ASSERT_TRUE(WaitFor([&] { return log.count.load() >= 2; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(log.count.load(), 2);
  EXPECT_EQ(dog.stalls(), 2u);
  {
    MutexLock lock(log.mu);
    for (const std::string& n : log.names) EXPECT_EQ(n, "wedged");
  }
  dog.Stop();
  reg.Unregister(slot);
}

TEST(Watchdog, DisarmedSlotsNeverFire) {
  HeartbeatRegistry reg;
  const int slot = reg.Register("idle");
  ASSERT_GE(slot, 0);
  reg.Arm(slot, NowSeconds() - 100.0);  // ancient beat...
  reg.Disarm(slot);                     // ...but legitimately idle

  StallLog log;
  WatchdogOptions opts;
  opts.enabled = true;
  opts.stall_budget_seconds = 0.01;
  opts.poll_interval_seconds = 0.002;
  Watchdog dog(opts, {&reg},
               [&log](const std::string& name, double) { log.Record(name); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(log.count.load(), 0);
  EXPECT_EQ(dog.stalls(), 0u);
  dog.Stop();
  reg.Unregister(slot);
}

TEST(Watchdog, UnregisterClosesTheEpisode) {
  HeartbeatRegistry reg;
  const int slot = reg.Register("transient");
  ASSERT_GE(slot, 0);
  reg.Arm(slot, NowSeconds());

  StallLog log;
  WatchdogOptions opts;
  opts.enabled = true;
  opts.stall_budget_seconds = 0.02;
  opts.poll_interval_seconds = 0.005;
  Watchdog dog(opts, {&reg},
               [&log](const std::string& name, double) { log.Record(name); });
  ASSERT_TRUE(WaitFor([&] { return log.count.load() >= 1; }));
  // Freeing the slot must clear its episode state; a new registration
  // in the same slot that stalls fires fresh.
  reg.Unregister(slot);
  const int slot2 = reg.Register("transient2");
  ASSERT_GE(slot2, 0);
  reg.Arm(slot2, NowSeconds());
  ASSERT_TRUE(WaitFor([&] { return log.count.load() >= 2; }));
  dog.Stop();
  reg.Unregister(slot2);
}

TEST(Watchdog, StopIsIdempotentAndDestructorSafe) {
  HeartbeatRegistry reg;
  WatchdogOptions opts;
  opts.enabled = true;
  opts.stall_budget_seconds = 1.0;
  opts.poll_interval_seconds = 0.01;
  Watchdog dog(opts, {&reg}, [](const std::string&, double) {});
  dog.Stop();
  dog.Stop();  // second call is a no-op; destructor runs after
}

}  // namespace
}  // namespace obs
}  // namespace shflbw
