// Tracing contract: the span ring records whole POD events and drops
// newest when full, every span a serving run records is well-formed
// (begin <= end, request-scoped spans carry a real request id), the
// Chrome trace-event dump is syntactically valid JSON with the
// process-metadata events Perfetto keys on, and the three interesting
// request fates — shed, retried, degraded — each leave their expected
// span sequence, with fused batches sharing one set of kernel spans.
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "runtime/server.h"

namespace shflbw {
namespace obs {
namespace {

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec(8);
  TraceEvent ev;
  rec.Record(ev);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, LabelsTruncateSafely) {
  TraceEvent ev;
  ev.SetLabel(std::string(200, 'x'));
  ev.SetLabel2(std::string(200, 'y'));
  EXPECT_EQ(std::string(ev.label).size(), sizeof(ev.label) - 1);
  EXPECT_EQ(std::string(ev.label2).size(), sizeof(ev.label2) - 1);
}

#if SHFLBW_OBS  // Record() and the serving integration need the hot path

using runtime::BatchServer;
using runtime::EngineOptions;
using runtime::FaultInjector;
using runtime::FaultInjectorOptions;
using runtime::ModelDesc;
using runtime::Request;
using runtime::Response;
using runtime::ResponseStatus;
using runtime::ServerOptions;
using shflbw::TransformerConfig;  // model-level config lives one namespace up

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

/// Minimal recursive-descent JSON syntax validator — enough to prove
/// the trace dump is loadable by a real parser without shipping one.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // escape consumes one extra char
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Every span must be a closed interval, and request-scoped spans must
/// point at a request that exists (id < submitted).
void ExpectWellFormed(const std::vector<TraceEvent>& events,
                      std::uint64_t submitted) {
  for (const TraceEvent& ev : events) {
    EXPECT_LE(ev.begin_seconds, ev.end_seconds)
        << SpanKindName(ev.kind) << " span runs backwards";
    switch (ev.kind) {
      case SpanKind::kQueue:
      case SpanKind::kRun:
      case SpanKind::kShed:
        ASSERT_NE(ev.request_id, kNoId) << SpanKindName(ev.kind);
        EXPECT_LT(ev.request_id, submitted)
            << SpanKindName(ev.kind) << " parented to a request that was "
            << "never submitted";
        break;
      case SpanKind::kAdmission:
        // Rejected submissions legitimately carry no id.
        if (ev.request_id != kNoId) {
          EXPECT_LT(ev.request_id, submitted);
        }
        break;
      case SpanKind::kCoalesce:
      case SpanKind::kKernel:
      case SpanKind::kRetry:
        EXPECT_GE(ev.replica, 0) << SpanKindName(ev.kind);
        break;
    }
  }
}

std::vector<TraceEvent> OfKind(const std::vector<TraceEvent>& events,
                               SpanKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events) {
    if (ev.kind == kind) out.push_back(ev);
  }
  return out;
}

TEST(TraceRecorder, DropsNewestWhenFullAndCounts) {
  TraceRecorder rec(4);
  rec.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.kind = SpanKind::kQueue;
    ev.request_id = static_cast<std::uint64_t>(i);
    ev.begin_seconds = i;
    ev.end_seconds = i + 1;
    rec.Record(ev);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Drop-NEWEST: the survivors are the first four events.
  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].request_id,
              static_cast<std::uint64_t>(i));
  }
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

// A fused batch leaves K run spans sharing ONE set of kernel spans:
// exactly one kernel span per model layer, all width K, all carrying
// the same batch id as the run spans.
TEST(BatchServerTrace, FusedBatchSharesKernelSpans) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  // max_batch above the submit count: the replica always finds the
  // queue below seal size, provably opens the window, and seals on its
  // expiry — so the coalesce span is deterministic, not a race.
  opts.max_batch = 8;
  opts.coalesce_window_seconds = 0.05;
  opts.engine = SmallOptions();
  opts.telemetry.tracing = true;
  BatchServer server(SmallTransformer(), opts);
  server.telemetry().trace().Clear();  // drop construction-time spans

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) futs.push_back(server.Submit(Request{}));
  server.Drain();
  for (auto& f : futs) EXPECT_EQ(f.get().batch_width, 4);

  const std::vector<TraceEvent> events = server.telemetry().trace().Snapshot();
  ExpectWellFormed(events, server.Stats().submitted);

  const std::vector<TraceEvent> runs = OfKind(events, SpanKind::kRun);
  ASSERT_EQ(runs.size(), 4u);
  const std::uint64_t batch_id = runs.front().batch_id;
  ASSERT_NE(batch_id, kNoId);
  for (const TraceEvent& r : runs) {
    EXPECT_EQ(r.batch_id, batch_id);
    EXPECT_EQ(r.width, 4);
  }
  const std::vector<TraceEvent> kernels = OfKind(events, SpanKind::kKernel);
  const std::size_t layers = server.Plan().layers.size();
  ASSERT_EQ(kernels.size(), layers) << "one fused launch per layer, not K";
  for (const TraceEvent& k : kernels) {
    EXPECT_EQ(k.batch_id, batch_id);
    EXPECT_EQ(k.width, 4);
    EXPECT_NE(k.label[0], '\0') << "kernel span carries the layer name";
  }
  // The replica held the window open: a coalesce span precedes the run.
  EXPECT_GE(OfKind(events, SpanKind::kCoalesce).size(), 1u);
  // Queue spans end where run spans begin (the seal instant).
  const std::vector<TraceEvent> queues = OfKind(events, SpanKind::kQueue);
  ASSERT_EQ(queues.size(), 4u);
  for (const TraceEvent& q : queues) {
    EXPECT_DOUBLE_EQ(q.end_seconds, runs.front().begin_seconds);
  }
}

// A retried launch leaves retry spans (one per backoff) and a run span
// reporting the retry count; the failed attempts contribute no kernel
// spans (the fault fires before the kernel executes).
TEST(BatchServerTrace, RetriedRequestLeavesRetrySpans) {
  ThreadGuard guard;
  SetParallelThreads(1);
  FaultInjectorOptions fi;
  fi.launch_failure_rate = 1.0;
  fi.max_failures = 2;  // attempts 1 and 2 fail, attempt 3 completes
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.engine.fault_injector = std::make_shared<FaultInjector>(fi);
  opts.retry.max_retries = 3;
  opts.retry.backoff_seconds = 1e-4;
  opts.telemetry.tracing = true;
  BatchServer server(SmallTransformer(), opts);  // no Warmup: faults hit serving

  Response resp = server.Submit(Request{}).get();
  server.Drain();
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  ASSERT_EQ(resp.retries, 2);
  EXPECT_GT(resp.retry_seconds, 0.0);

  const std::vector<TraceEvent> events = server.telemetry().trace().Snapshot();
  ExpectWellFormed(events, server.Stats().submitted);
  const std::vector<TraceEvent> retries = OfKind(events, SpanKind::kRetry);
  ASSERT_EQ(retries.size(), 2u);
  EXPECT_EQ(retries[0].attempt, 1);
  EXPECT_EQ(retries[1].attempt, 2);
  const std::vector<TraceEvent> runs = OfKind(events, SpanKind::kRun);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().retries, 2);
  // Retry spans nest inside the run span and share its batch.
  for (const TraceEvent& r : retries) {
    EXPECT_EQ(r.batch_id, runs.front().batch_id);
    EXPECT_GE(r.begin_seconds, runs.front().begin_seconds);
    EXPECT_LE(r.end_seconds, runs.front().end_seconds);
  }
  // Only the successful attempt executed kernels.
  EXPECT_EQ(OfKind(events, SpanKind::kKernel).size(),
            server.Plan().layers.size());
}

// A deadline-shed request leaves queue + shed spans and no run span;
// its live batch-mates get run spans as usual.
TEST(BatchServerTrace, ShedRequestLeavesShedSpanAndNoRunSpan) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 4;
  opts.coalesce_window_seconds = 0.05;  // seal happens after the deadline
  opts.engine = SmallOptions();
  opts.telemetry.tracing = true;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  server.telemetry().trace().Clear();

  Request doomed;
  doomed.deadline_seconds = 1e-6;
  std::future<Response> doomed_fut = server.Submit(doomed);
  std::future<Response> live_fut = server.Submit(Request{});
  server.Drain();
  const std::uint64_t doomed_id = doomed_fut.get().id;
  const std::uint64_t live_id = live_fut.get().id;

  const std::vector<TraceEvent> events = server.telemetry().trace().Snapshot();
  ExpectWellFormed(events, server.Stats().submitted);
  const std::vector<TraceEvent> sheds = OfKind(events, SpanKind::kShed);
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds.front().request_id, doomed_id);
  std::size_t doomed_queue_spans = 0;
  for (const TraceEvent& q : OfKind(events, SpanKind::kQueue)) {
    doomed_queue_spans += q.request_id == doomed_id;
  }
  EXPECT_EQ(doomed_queue_spans, 1u);
  const std::vector<TraceEvent> runs = OfKind(events, SpanKind::kRun);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs.front().request_id, live_id);
}

// Under pressure with a quality ladder, degraded requests' run and
// kernel spans carry the level they were served at.
TEST(BatchServerTrace, DegradedRequestSpansCarryLevel) {
  ThreadGuard guard;
  SetParallelThreads(1);
  FaultInjectorOptions fi;
  fi.launch_delay_rate = 1.0;
  fi.launch_delay_seconds = 0.03;  // slow launches so the queue builds
  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 4;
  opts.max_batch = 1;
  opts.engine = SmallOptions();
  opts.engine.fault_injector = std::make_shared<FaultInjector>(fi);
  opts.degradation.ladder_floors = {0.95, 0.7};
  opts.degradation.degrade_queue_fraction = 0.5;
  opts.degradation.hysteresis_seals = 1;
  opts.telemetry.tracing = true;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  server.telemetry().trace().Clear();

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(server.Submit(Request{}));
  server.Drain();
  bool saw_degraded = false;
  for (auto& f : futs) saw_degraded = saw_degraded || f.get().plan_level > 0;
  ASSERT_TRUE(saw_degraded);

  const std::vector<TraceEvent> events = server.telemetry().trace().Snapshot();
  ExpectWellFormed(events, server.Stats().submitted);
  bool degraded_run = false, degraded_kernel = false;
  for (const TraceEvent& ev : OfKind(events, SpanKind::kRun)) {
    degraded_run = degraded_run || ev.level > 0;
  }
  for (const TraceEvent& ev : OfKind(events, SpanKind::kKernel)) {
    degraded_kernel = degraded_kernel || ev.level > 0;
  }
  EXPECT_TRUE(degraded_run);
  EXPECT_TRUE(degraded_kernel);
}

// The Chrome trace dump is valid JSON and carries the process/thread
// metadata Perfetto uses to name the tracks.
TEST(BatchServerTrace, ChromeTraceJsonParsesAndNamesTracks) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.max_batch = 2;
  opts.engine = SmallOptions();
  opts.telemetry.tracing = true;
  BatchServer server(SmallTransformer(), opts);
  for (int i = 0; i < 3; ++i) (void)server.Submit(Request{}).get();
  server.Drain();

  std::ostringstream os;
  server.telemetry().trace().WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"shflbw server\""), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// Tracing disabled (the default) must record nothing anywhere in the
// stack — the trace stays empty across a full serving run.
TEST(BatchServerTrace, DisabledByDefaultRecordsNoSpans) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  (void)server.Submit(Request{}).get();
  server.Drain();
  EXPECT_EQ(server.telemetry().trace().size(), 0u);
}

#endif  // SHFLBW_OBS

}  // namespace
}  // namespace obs
}  // namespace shflbw
