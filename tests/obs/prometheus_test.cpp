// Strict Prometheus text-format conformance of Registry::
// ExpositionText(): every line must be a well-formed HELP, TYPE or
// sample line; each family announces its TYPE exactly once, before any
// of its samples, with HELP (when present) immediately preceding it;
// metric and label names match the Prometheus grammar; label values
// use only the sanctioned escapes; histogram bucket series are
// cumulative and monotone with le bounds strictly increasing and the
// +Inf bucket equal to _count. This is the consumer-side contract the
// scrape endpoint (and the committed BENCH_serving_metrics.prom
// artifact) relies on; a formatting regression fails here, not in a
// downstream Prometheus.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace shflbw {
namespace obs {
namespace {

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  auto tail = [&head](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!tail(c)) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

struct Sample {
  std::string name;  // base metric name (no labels)
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;
  std::string labels_without_le;  // histogram series key
  bool has_le = false;
  double le = 0;
};

/// Parses `name{label="value",...} value` (labels optional). Returns
/// false with a diagnostic on any grammar violation.
bool ParseSampleLine(const std::string& line, Sample* out,
                     std::string* why) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *why = "bad metric name: " + out->name;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    std::ostringstream without_le;
    bool first = true;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos) {
        *why = "label without '='";
        return false;
      }
      const std::string lname = line.substr(i, eq - i);
      if (!ValidLabelName(lname)) {
        *why = "bad label name: " + lname;
        return false;
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        *why = "label value not quoted";
        return false;
      }
      ++i;
      std::string value;
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i];
        if (c == '\\') {
          if (i + 1 >= line.size()) {
            *why = "dangling escape";
            return false;
          }
          const char e = line[i + 1];
          if (e != '\\' && e != '"' && e != 'n') {
            *why = std::string("illegal escape \\") + e;
            return false;
          }
          value += e == 'n' ? '\n' : e;
          i += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        if (c == '\n') {
          *why = "raw newline in label value";
          return false;
        }
        value += c;
        ++i;
      }
      if (!closed) {
        *why = "unterminated label value";
        return false;
      }
      out->labels.emplace_back(lname, value);
      if (lname == "le") {
        out->has_le = true;
        out->le = value == "+Inf"
                      ? std::numeric_limits<double>::infinity()
                      : std::strtod(value.c_str(), nullptr);
      } else {
        without_le << (first ? "" : ",") << lname << "=" << value;
        first = false;
      }
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      *why = "unterminated label set";
      return false;
    }
    ++i;
    out->labels_without_le = without_le.str();
  }
  if (i >= line.size() || line[i] != ' ') {
    *why = "missing space before value";
    return false;
  }
  ++i;
  const std::string value_str = line.substr(i);
  if (value_str == "+Inf") {
    out->value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (value_str == "-Inf") {
    out->value = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  out->value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0') {
    *why = "unparseable value: " + value_str;
    return false;
  }
  return true;
}

std::string HistogramFamily(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

/// Populates a registry with every shape the server emits: counters
/// with/without help, labelled counter series, gauges, histograms with
/// and without labels, and help text needing every escape. (Registry
/// owns a Mutex, so it is populated in place, not returned.)
void MakeEventful(Registry& reg) {
  reg.GetCounter("alpha_total", "back\\slash \"quote\"\nnewline").Add(3);
  reg.GetCounter("labeled_total{reason=\"queue_full\"}", "by reason")
      .Add(2);
  reg.GetCounter("labeled_total{reason=\"deadline\"}").Add(5);  // no help
  reg.GetGauge("some_gauge", "a gauge").Set(-1.25);
  Histogram& h = reg.GetHistogram("lat_seconds", "latency");
  for (double v : {2e-6, 1e-3, 2e-3, 5.0, 10.0, 0.5e-6}) h.Record(v);
  Histogram& lh =
      reg.GetHistogram("shard_seconds{shard=\"a\"}", "sharded latency");
  lh.Record(0.5);
  lh.Record(1.5);
}

TEST(PrometheusExposition, EveryLineParsesStrictly) {
  Registry reg;
  MakeEventful(reg);
  const std::string text = reg.ExpositionText();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";

  std::map<std::string, std::string> family_type;  // family -> type
  std::map<std::string, int> type_lines;           // family -> TYPE count
  std::string pending_help;  // family of the HELP line just seen
  std::vector<Sample> samples;

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string family = rest.substr(0, sp);
      ASSERT_TRUE(ValidMetricName(family)) << line;
      ASSERT_EQ(family_type.count(family), 0u)
          << "HELP after samples for " << family;
      pending_help = family;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string family = rest.substr(0, sp);
      const std::string type = rest.substr(sp + 1);
      ASSERT_TRUE(ValidMetricName(family)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      if (!pending_help.empty()) {
        // HELP, when present, names the family TYPE announces next.
        EXPECT_EQ(pending_help, family);
        pending_help.clear();
      }
      family_type[family] = type;
      EXPECT_EQ(++type_lines[family], 1) << "duplicate TYPE for " << family;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    ASSERT_TRUE(pending_help.empty())
        << "HELP not followed by TYPE: " << pending_help;
    Sample s;
    std::string why;
    ASSERT_TRUE(ParseSampleLine(line, &s, &why)) << line << " — " << why;
    samples.push_back(std::move(s));
  }

  ASSERT_FALSE(samples.empty());
  for (const Sample& s : samples) {
    const std::string family = HistogramFamily(s.name);
    const auto it = family_type.find(family);
    // Histogram suffix names resolve to their family; plain metrics to
    // themselves. Either way the TYPE line must precede (map insertion
    // happened while scanning earlier lines).
    ASSERT_NE(it, family_type.end()) << "sample before TYPE: " << s.name;
    if (s.name != family || it->second == "histogram") {
      EXPECT_EQ(it->second, "histogram") << s.name;
    }
    EXPECT_FALSE(std::isnan(s.value)) << s.name;
  }
}

TEST(PrometheusExposition, FamiliesAreContiguousAndTypedOnce) {
  Registry reg;
  MakeEventful(reg);
  const std::string text = reg.ExpositionText();
  // The two labeled_total series share one TYPE line.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE labeled_total ", pos)) !=
         std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 1u);
  // Help text is escaped: the raw backslash, quote and newline of the
  // registered help must appear as \\, literal quote is allowed, and
  // \n as the two-character escape (the HELP line stays one line).
  EXPECT_NE(text.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(text.find("\\nnewline"), std::string::npos);
}

TEST(PrometheusExposition, HistogramBucketsAreCumulativeAndMonotone) {
  Registry reg;
  MakeEventful(reg);
  const std::string text = reg.ExpositionText();

  std::map<std::string, std::vector<Sample>> buckets;  // series -> buckets
  std::map<std::string, double> sums, counts;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    Sample s;
    std::string why;
    ASSERT_TRUE(ParseSampleLine(line, &s, &why)) << line << " — " << why;
    const std::string family = HistogramFamily(s.name);
    const std::string key = family + "{" + s.labels_without_le + "}";
    if (s.name == family + "_bucket") {
      ASSERT_TRUE(s.has_le) << line;
      buckets[key].push_back(s);
    } else if (s.name == family + "_sum") {
      sums[key] = s.value;
    } else if (s.name == family + "_count") {
      counts[key] = s.value;
    }
  }

  ASSERT_GE(buckets.size(), 2u);  // lat_seconds + shard_seconds{shard=a}
  for (const auto& [key, series] : buckets) {
    ASSERT_FALSE(series.empty()) << key;
    ASSERT_EQ(counts.count(key), 1u) << key << " lacks _count";
    ASSERT_EQ(sums.count(key), 1u) << key << " lacks _sum";
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_cum = -1;
    for (const Sample& s : series) {
      EXPECT_GT(s.le, prev_le) << key << ": le bounds must increase";
      EXPECT_GE(s.value, prev_cum) << key << ": buckets must be cumulative";
      prev_le = s.le;
      prev_cum = s.value;
    }
    EXPECT_TRUE(std::isinf(series.back().le))
        << key << ": last bucket must be +Inf";
    EXPECT_EQ(series.back().value, counts[key])
        << key << ": +Inf bucket must equal _count";
    EXPECT_GE(sums[key], 0) << key;
  }
}

}  // namespace
}  // namespace obs
}  // namespace shflbw
