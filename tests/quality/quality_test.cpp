// Quality subsystem contract: the evaluator scores exactly the masks
// the pack phase applies (memoized), and the quality-aware planner
// meets its retained-importance floor with the latency-minimal
// per-layer (format, density, V) choices — dense fallback included —
// deterministically, with the engine packing each layer at its own
// plan density and staying bit-identical at any thread count.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "model/weight_synth.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"
#include "quality/quality_evaluator.h"
#include "quality/quality_planner.h"
#include "runtime/engine.h"

namespace shflbw {
namespace quality {
namespace {

using runtime::Engine;
using runtime::EngineOptions;
using runtime::ExecutionPlan;
using runtime::Format;
using runtime::FormatCandidate;
using runtime::LayerPlan;
using runtime::ModelDesc;
using runtime::PlannerOptions;
using runtime::QualityOptions;

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

PlannerOptions QualityPlannerOptions(double floor) {
  PlannerOptions opts;
  opts.density = 0.25;
  opts.v = 8;
  opts.quality.enabled = true;
  opts.quality.min_retained_ratio = floor;
  return opts;
}

TEST(QualityEvaluator, MatchesDirectMaskComputation) {
  const int m = 64, k = 64, v = 8;
  const std::uint64_t seed = 0x5eedULL + 3;
  const double density = 0.25;
  SynthWeightOptions synth;
  synth.seed = seed;
  const Matrix<float> scores = MagnitudeScores(SynthesizeWeights(m, k, synth));

  QualityEvaluator eval;
  EXPECT_DOUBLE_EQ(
      eval.RetainedRatio(m, k, seed, Format::kCsr, density, v),
      RetainedScoreRatio(scores, UnstructuredMask(scores, density)));
  EXPECT_DOUBLE_EQ(
      eval.RetainedRatio(m, k, seed, Format::kBsr, density, v),
      RetainedScoreRatio(scores, BlockWiseMask(scores, density, v)));
  EXPECT_DOUBLE_EQ(
      eval.RetainedRatio(m, k, seed, Format::kVectorWise, density, v),
      RetainedScoreRatio(scores, VectorWiseMask(scores, density, v)));
  EXPECT_DOUBLE_EQ(
      eval.RetainedRatio(m, k, seed, Format::kShflBw, density, v),
      RetainedScoreRatio(scores, ShflBwSearch(scores, density, v).mask));
}

TEST(QualityEvaluator, DenseIsExactlyOneWithoutEvaluation) {
  QualityEvaluator eval;
  EXPECT_DOUBLE_EQ(eval.RetainedRatio(64, 64, 1, Format::kDense, 1.0, 8),
                   1.0);
  EXPECT_EQ(eval.Evaluations(), 0u);
}

TEST(QualityEvaluator, MemoizesPerKeyAndSharesScores) {
  QualityEvaluator eval;
  const double a =
      eval.RetainedRatio(64, 64, 7, Format::kVectorWise, 0.25, 8);
  EXPECT_EQ(eval.Evaluations(), 1u);
  EXPECT_EQ(eval.ScoreMatrices(), 1u);
  // Same key: no new evaluation, same value.
  EXPECT_DOUBLE_EQ(eval.RetainedRatio(64, 64, 7, Format::kVectorWise, 0.25, 8),
                   a);
  EXPECT_EQ(eval.Evaluations(), 1u);
  // New density on the same master: one more mask, zero new syntheses.
  eval.RetainedRatio(64, 64, 7, Format::kVectorWise, 0.5, 8);
  EXPECT_EQ(eval.Evaluations(), 2u);
  EXPECT_EQ(eval.ScoreMatrices(), 1u);
  // New seed: new master.
  eval.RetainedRatio(64, 64, 8, Format::kVectorWise, 0.25, 8);
  EXPECT_EQ(eval.ScoreMatrices(), 2u);
}

TEST(QualityEvaluator, RejectsBadArguments) {
  QualityEvaluator eval;
  EXPECT_THROW(eval.RetainedRatio(64, 64, 1, Format::kCsr, 0.0, 8), Error);
  EXPECT_THROW(eval.RetainedRatio(64, 64, 1, Format::kCsr, 1.5, 8), Error);
  EXPECT_THROW(eval.RetainedRatio(64, 64, 1, Format::kCsr, 0.5, 0), Error);
}

TEST(QualityPlanner, EveryLayerMeetsPerLayerFloor) {
  const ModelDesc model = SmallTransformer();
  for (double floor : {0.0, 0.5, 0.7, 0.9}) {
    const ExecutionPlan plan =
        PlanModel(model, QualityPlannerOptions(floor));
    EXPECT_GE(plan.MinRetainedRatio(), floor - 1e-9) << "floor " << floor;
    for (const LayerPlan& l : plan.layers) {
      EXPECT_GE(l.retained_ratio, floor - 1e-9) << l.name;
      EXPECT_GT(l.total_score, 0.0) << l.name;
      // The winner is a real candidate of the search space.
      EXPECT_TRUE(l.density == 1.0 || l.density <= 0.5) << l.name;
      if (l.format == Format::kDense) {
        EXPECT_DOUBLE_EQ(l.density, 1.0) << l.name;
        EXPECT_DOUBLE_EQ(l.retained_ratio, 1.0) << l.name;
      }
    }
    // Dense always qualifies, so the plan never exceeds the dense
    // latency envelope.
    EXPECT_LE(plan.ModeledTotalSeconds(), plan.ModeledDenseSeconds() + 1e-15);
  }
}

TEST(QualityPlanner, UnreachableFloorFallsBackToDense) {
  const ExecutionPlan plan =
      PlanModel(SmallTransformer(), QualityPlannerOptions(1.0));
  for (const LayerPlan& l : plan.layers) {
    EXPECT_EQ(l.format, Format::kDense) << l.name;
    EXPECT_DOUBLE_EQ(l.retained_ratio, 1.0) << l.name;
  }
  EXPECT_DOUBLE_EQ(plan.ModeledTotalSeconds(), plan.ModeledDenseSeconds());
}

TEST(QualityPlanner, LowFloorSelectsSparseAndBeatsDense) {
  const ExecutionPlan plan =
      PlanModel(SmallTransformer(), QualityPlannerOptions(0.3));
  bool any_sparse = false;
  for (const LayerPlan& l : plan.layers) {
    if (l.format != Format::kDense) any_sparse = true;
  }
  EXPECT_TRUE(any_sparse);
  EXPECT_LT(plan.ModeledTotalSeconds(), plan.ModeledDenseSeconds());
}

TEST(QualityPlanner, ModeledLatencyMonotoneInFloor) {
  const ModelDesc model = SmallTransformer();
  double prev = 0.0;
  for (double floor : {0.0, 0.3, 0.5, 0.7, 0.85, 0.95, 1.0}) {
    const double s =
        PlanModel(model, QualityPlannerOptions(floor)).ModeledTotalSeconds();
    EXPECT_GE(s, prev - 1e-15) << "floor " << floor;
    prev = s;
  }
}

TEST(QualityPlanner, PerLayerDensitiesComeFromTheLadder) {
  PlannerOptions opts = QualityPlannerOptions(0.5);
  opts.quality.density_ladder = {0.125, 0.25, 0.5};
  const ExecutionPlan plan = PlanModel(SmallTransformer(), opts);
  for (const LayerPlan& l : plan.layers) {
    const bool on_ladder = l.density == 0.125 || l.density == 0.25 ||
                           l.density == 0.5 || l.density == 1.0;
    EXPECT_TRUE(on_ladder) << l.name << " density " << l.density;
  }
}

TEST(QualityPlanner, VLadderSearchesGranularities) {
  PlannerOptions opts = QualityPlannerOptions(0.0);
  opts.quality.v_ladder = {8, 16};
  const ExecutionPlan plan = PlanModel(SmallTransformer(), opts);
  for (const LayerPlan& l : plan.layers) {
    EXPECT_TRUE(l.v == 8 || l.v == 16) << l.name;
    // The candidate sweep covered both granularities for the vector
    // formats.
    bool saw8 = false, saw16 = false;
    for (const FormatCandidate& c : l.candidates) {
      if (c.format == Format::kVectorWise && c.v == 8) saw8 = true;
      if (c.format == Format::kVectorWise && c.v == 16) saw16 = true;
    }
    EXPECT_TRUE(saw8 && saw16) << l.name;
  }
}

TEST(QualityPlanner, DeterministicPlanBitIdenticalAcrossCalls) {
  const ModelDesc model = SmallTransformer();
  const PlannerOptions opts = QualityPlannerOptions(0.8);
  const ExecutionPlan a = PlanModel(model, opts);
  const ExecutionPlan b = PlanModel(model, opts);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].format, b.layers[i].format);
    EXPECT_EQ(a.layers[i].density, b.layers[i].density);
    EXPECT_EQ(a.layers[i].v, b.layers[i].v);
    EXPECT_EQ(a.layers[i].modeled_s, b.layers[i].modeled_s);
    EXPECT_EQ(a.layers[i].retained_ratio, b.layers[i].retained_ratio);
    ASSERT_EQ(a.layers[i].candidates.size(), b.layers[i].candidates.size());
    for (std::size_t c = 0; c < a.layers[i].candidates.size(); ++c) {
      EXPECT_EQ(a.layers[i].candidates[c].format,
                b.layers[i].candidates[c].format);
      EXPECT_EQ(a.layers[i].candidates[c].density,
                b.layers[i].candidates[c].density);
      EXPECT_EQ(a.layers[i].candidates[c].retained_ratio,
                b.layers[i].candidates[c].retained_ratio);
    }
  }
}

TEST(QualityPlanner, AggregateFloorMetAndNeverSlowerThanDense) {
  const ModelDesc model = SmallTransformer();
  for (double floor : {0.5, 0.8, 0.95, 1.0}) {
    PlannerOptions opts = QualityPlannerOptions(floor);
    opts.quality.floor = QualityOptions::Floor::kAggregate;
    const ExecutionPlan plan = PlanModel(model, opts);
    EXPECT_GE(plan.AggregateRetainedRatio(), floor - 1e-9)
        << "floor " << floor;
    EXPECT_LE(plan.ModeledTotalSeconds(), plan.ModeledDenseSeconds() + 1e-15);
  }
}

TEST(QualityPlanner, AggregateTradesUnimportantLayersFirst) {
  // The aggregate floor is a relaxation of the per-layer floor: at the
  // same floor value the aggregate plan can keep cheap low-quality
  // layers sparse, so its modelled latency never exceeds... the
  // per-layer plan is not formally an upper bound for the greedy, but
  // the aggregate metric itself must sit at or above the floor while
  // SOME layer may sit below it — that freedom is the point.
  PlannerOptions opts = QualityPlannerOptions(0.9);
  opts.quality.floor = QualityOptions::Floor::kAggregate;
  const ExecutionPlan plan = PlanModel(SmallTransformer(), opts);
  EXPECT_GE(plan.AggregateRetainedRatio(), 0.9 - 1e-9);
  EXPECT_LE(plan.MinRetainedRatio(), plan.AggregateRetainedRatio() + 1e-12);
}

TEST(QualityPlanner, Balanced24AppearsExactlyOncePerLayer) {
  // 2:4 ignores V and fixes density at 0.5, so the ladder sweep must
  // emit ONE candidate for it (per layer), not one per ladder point —
  // duplicates would waste autotune measurement slots.
  PlannerOptions opts = QualityPlannerOptions(0.8);
  opts.arch = GpuArch::kA100;
  opts.quality.v_ladder = {8, 16};
  const ExecutionPlan plan = PlanModel(SmallTransformer(), opts);
  for (const LayerPlan& l : plan.layers) {
    int total = 0, feasible = 0;
    for (const FormatCandidate& c : l.candidates) {
      if (c.format != Format::kBalanced24) continue;
      ++total;
      if (c.feasible) {
        ++feasible;
        EXPECT_DOUBLE_EQ(c.density, 0.5) << l.name;
        EXPECT_GT(c.retained_ratio, 0.0) << l.name;
      }
    }
    EXPECT_EQ(total, 1) << l.name;
    // A100 + k % 4 == 0 + 0.5 on the default ladder: feasible here.
    EXPECT_EQ(feasible, 1) << l.name;
  }
  // Without 0.5 on the ladder the single candidate reports why.
  opts.quality.density_ladder = {0.125, 0.25};
  for (const LayerPlan& l : PlanModel(SmallTransformer(), opts).layers) {
    for (const FormatCandidate& c : l.candidates) {
      if (c.format != Format::kBalanced24) continue;
      EXPECT_FALSE(c.feasible) << l.name;
      EXPECT_NE(c.why.find("0.5"), std::string::npos) << l.name;
    }
  }
}

TEST(QualityPlanner, ExcludedFormatsStayExcluded) {
  PlannerOptions opts = QualityPlannerOptions(0.0);
  opts.exclude = {Format::kCsr, Format::kBsr};
  const ExecutionPlan plan = PlanModel(SmallTransformer(), opts);
  for (const LayerPlan& l : plan.layers) {
    EXPECT_NE(l.format, Format::kCsr) << l.name;
    EXPECT_NE(l.format, Format::kBsr) << l.name;
  }
}

TEST(QualityPlanner, ForceFormatWithQualityThrows) {
  PlannerOptions opts = QualityPlannerOptions(0.9);
  opts.force_format = Format::kDense;
  EXPECT_THROW(PlanModel(SmallTransformer(), opts), Error);
}

TEST(QualityPlanner, RejectsBadQualityOptions) {
  const ModelDesc model = SmallTransformer();
  {
    PlannerOptions opts = QualityPlannerOptions(1.5);
    EXPECT_THROW(PlanModel(model, opts), Error);
  }
  {
    PlannerOptions opts = QualityPlannerOptions(0.9);
    opts.quality.density_ladder.clear();
    EXPECT_THROW(PlanModel(model, opts), Error);
  }
  {
    PlannerOptions opts = QualityPlannerOptions(0.9);
    opts.quality.density_ladder = {0.25, 1.25};
    EXPECT_THROW(PlanModel(model, opts), Error);
  }
  {
    PlannerOptions opts = QualityPlannerOptions(0.9);
    opts.quality.v_ladder = {8, 0};
    EXPECT_THROW(PlanModel(model, opts), Error);
  }
}

EngineOptions QualityEngineOptions(double floor) {
  EngineOptions opts;
  opts.planner = QualityPlannerOptions(floor);
  return opts;
}

TEST(QualityEngine, PacksEachLayerAtItsPlanDensity) {
  Engine engine(SmallTransformer(), QualityEngineOptions(0.6));
  engine.Run();
  for (const LayerPlan& l : engine.Plan().layers) {
    EXPECT_TRUE(
        engine.cache().Contains(l.layer, l.format, l.density, l.v))
        << l.name << " format " << runtime::FormatName(l.format)
        << " density " << l.density;
  }
}

TEST(QualityEngine, SecondRunPerformsZeroConversions) {
  Engine engine(SmallTransformer(), QualityEngineOptions(0.6));
  const auto first = engine.Run();
  EXPECT_GT(first.packs_performed, 0u);
  const auto second = engine.Run();
  EXPECT_EQ(second.packs_performed, 0u);
  EXPECT_EQ(first.output, second.output);
}

TEST(QualityEngine, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SetParallelThreads(1);
  Engine e1(SmallTransformer(), QualityEngineOptions(0.6));
  const Matrix<float> ref = e1.Run().output;
  for (int threads : {2, 8}) {
    SetParallelThreads(threads);
    Engine en(SmallTransformer(), QualityEngineOptions(0.6));
    EXPECT_EQ(en.Run().output, ref) << threads << " threads";
  }
}

TEST(QualityEngine, AutotuneNeverBreaksThePerLayerFloor) {
  EngineOptions opts = QualityEngineOptions(0.7);
  opts.planner.autotune = true;
  opts.planner.autotune_top_k = 16;  // generous: spans the whole ladder
  Engine engine(SmallTransformer(), opts);
  for (const LayerPlan& l : engine.Plan().layers) {
    EXPECT_GE(l.retained_ratio, 0.7 - 1e-9)
        << l.name << (l.autotuned ? " (autotuned)" : "");
  }
}

TEST(QualityEngine, RunsAllThreeEvaluationModels) {
  // ResNet50 truncated to its small bottleneck shapes: the Fig. 5
  // Shfl-BW search the evaluator must run per (density, V) candidate
  // costs seconds on the 2048-row stage-4 weights — representative
  // conv coverage without a minutes-long unit test (bench_quality owns
  // the larger sweep).
  ModelDesc resnet = ModelDesc::ResNet50(ResNet50Config{1, 32});
  std::erase_if(resnet.layers, [](const runtime::LayerDesc& l) {
    return l.GemmM() > 256 || l.GemmK() > 640;
  });
  ASSERT_FALSE(resnet.layers.empty());
  const std::vector<ModelDesc> models = {
      SmallTransformer(),
      ModelDesc::Gnmt(GnmtConfig{64, 32, 2, 2, 0}),
      resnet,
  };
  for (const ModelDesc& model : models) {
    Engine engine(model, QualityEngineOptions(0.5));
    const auto r = engine.Run();
    EXPECT_EQ(r.layers.size(), model.layers.size()) << model.name;
    EXPECT_GE(engine.Plan().MinRetainedRatio(), 0.5 - 1e-9) << model.name;
  }
}

}  // namespace
}  // namespace quality
}  // namespace shflbw
