// Golden tests for shflbw_lint (tools/lint/). Each fixture under
// tests/lint/fixtures/ is a source file plus a <name>.expected sidecar:
//
//   # path: src/runtime/widget.cpp     <- pretend repo path (scoping)
//   2 raw-sync                         <- expected line + rule, one per
//   11 raw-sync                           finding (duplicates allowed)
//
// The fixture is linted in-process via LintSource under its pretend
// path and the (line, rule) multiset must match exactly — a missing
// finding, an extra finding, or a finding on the wrong line all fail.
// The fixtures deliberately violate the rules, which is why the CLI's
// tree walk skips tests/lint/fixtures entirely.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace shflbw {
namespace lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "cannot open " << p;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

struct Manifest {
  std::string pretend_path;
  std::multimap<int, std::string> expected;  // line -> rule
};

Manifest ParseManifest(const fs::path& p) {
  Manifest m;
  std::istringstream in(ReadFile(p));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# path: ", 0) == 0) {
      m.pretend_path = line.substr(8);
      continue;
    }
    std::istringstream row(line);
    int lineno = 0;
    std::string rule;
    row >> lineno >> rule;
    EXPECT_TRUE(lineno > 0 && !rule.empty()) << "bad manifest row: " << line;
    m.expected.emplace(lineno, rule);
  }
  EXPECT_FALSE(m.pretend_path.empty()) << p << " has no '# path:' header";
  return m;
}

TEST(LintGolden, FixturesMatchManifests) {
  const fs::path dir = SHFLBW_LINT_FIXTURE_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  int fixtures = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const fs::path manifest_path = entry.path();
    if (manifest_path.extension() != ".expected") continue;
    ++fixtures;
    SCOPED_TRACE(manifest_path.filename().string());
    const Manifest manifest = ParseManifest(manifest_path);
    fs::path src_path = manifest_path;
    src_path.replace_extension();  // strip ".expected"
    const std::vector<Finding> got =
        LintSource(manifest.pretend_path, ReadFile(src_path));
    std::multimap<int, std::string> actual;
    for (const Finding& f : got) {
      EXPECT_EQ(f.path, manifest.pretend_path);
      actual.emplace(f.line, f.rule);
    }
    if (actual != manifest.expected) {
      std::ostringstream diff;
      diff << "expected findings:\n";
      for (const auto& [line, rule] : manifest.expected) {
        diff << "  " << line << " " << rule << "\n";
      }
      diff << "actual findings:\n";
      for (const Finding& f : got) diff << "  " << FormatFinding(f) << "\n";
      ADD_FAILURE() << diff.str();
    }
  }
  // A fixture silently dropped (renamed, glob typo) must not pass.
  EXPECT_GE(fixtures, 16) << "fixture corpus shrank";
}

TEST(LintGolden, DiagnosticFormatIsStable) {
  // The exact text CI greps and humans read — locked here once.
  const std::vector<Finding> got = LintSource(
      "src/runtime/widget.cpp", "#include <mutex>\n");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(FormatFinding(got[0]),
            "src/runtime/widget.cpp:1: [raw-sync] #include <mutex> bypasses "
            "the annotated locking layer; use shflbw::Mutex / MutexLock / "
            "UniqueLock / CondVar (common/thread_annotations.h)");
}

TEST(LintGolden, SuppressionRequiresJustification) {
  // The justification is load-bearing: the same suppression with and
  // without one.
  const std::string with =
      "// SHFLBW_LINT_ALLOW(raw-sync): interop shim\nstd::mutex m;\n";
  EXPECT_TRUE(LintSource("src/a.cpp", with).empty());

  const std::string without =
      "// SHFLBW_LINT_ALLOW(raw-sync)\nstd::mutex m;\n";
  const std::vector<Finding> got = LintSource("src/a.cpp", without);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].rule, "bad-suppression");
  EXPECT_EQ(got[1].rule, "raw-sync");
}

TEST(LintGolden, SuppressionCoversOwnAndNextLineOnly) {
  const std::string two_below =
      "// SHFLBW_LINT_ALLOW(raw-sync): too far away\n\nstd::mutex m;\n";
  const std::vector<Finding> got = LintSource("src/a.cpp", two_below);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].rule, "raw-sync");
  EXPECT_EQ(got[0].line, 3);
}

TEST(LintGolden, StringsAndCommentsAreNotCode) {
  // The classic grep failure mode the lexer exists to avoid.
  const std::string src =
      "// std::mutex in a comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "/* rand() time( std::cout in a block comment */\n";
  EXPECT_TRUE(LintSource("src/a.cpp", src).empty());
}

TEST(LintGolden, RuleNamesAreExhaustive) {
  const std::vector<std::string>& rules = RuleNames();
  for (const char* expected :
       {"raw-sync", "hot-path", "hot-marker", "determinism",
        "nodiscard-status", "logging", "bad-suppression"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), expected), rules.end())
        << expected;
  }
  EXPECT_EQ(rules.size(), 7u);
}

}  // namespace
}  // namespace lint
}  // namespace shflbw
