// Fixture: status-returning declarations must carry [[nodiscard]].
// Enum definitions, attributed declarations, variables and out-of-line
// qualified definitions are all negatives.
enum class SubmitStatus { kAccepted, kRejectedQueueFull };

class FakeServer {
 public:
  SubmitStatus Submit(int req);
  [[nodiscard]] SubmitStatus TrySubmit(int req);
  ResponseStatus Poll() const;
};

SubmitStatus FakeServer::Submit(int req) {
  SubmitStatus verdict = SubmitStatus::kAccepted;
  return verdict;
}
