// Fixture: a justified SHFLBW_LINT_ALLOW suppresses hot-path.
void Kernel(Trace* t) {
  SHFLBW_HOT_BEGIN;
  // SHFLBW_LINT_ALLOW(hot-path): first-tile-only instrumentation
  t->push_back(1);
  SHFLBW_HOT_END;
}
