// Fixture: marker discipline — nested BEGIN, dangling END, unclosed.
void Kernel() {
  SHFLBW_HOT_BEGIN;
  SHFLBW_HOT_BEGIN;
  SHFLBW_HOT_END;
  SHFLBW_HOT_END;
  SHFLBW_HOT_BEGIN;
}
