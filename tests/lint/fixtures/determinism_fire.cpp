// Fixture: nondeterminism sources in library code.
#pragma float_control(precise, off)
#pragma GCC optimize("O3")
int Pick() {
  std::unordered_map<int, int> m;
  int seed = rand();
  long t = time(nullptr);
  std::random_device rd;
  return seed;
}
