// Fixture: the flight recorder is a sanctioned dump sink — its file
// output does not fire the logging rule.
#include <fstream>

void DumpPostmortem(const char* path) {
  std::ofstream os(path);
  os << "{}";
}
