// Fixture: a justified SHFLBW_LINT_ALLOW suppresses determinism.
// SHFLBW_LINT_ALLOW(determinism): scratch map, never iterated in order-sensitive code
std::unordered_map<int, int> scratch;
