// Fixture: direct console output in library code.
#include <cstdio>
#include <iostream>

void Report(int n) {
  std::cout << n;
  std::cerr << "oops";
  printf("%d", n);
  fprintf(stderr, "%d", n);
}
