// Fixture: file output smuggled into library code outside the
// sanctioned dump sinks.
#include <cstdio>
#include <fstream>

void Persist(const char* path, const void* data, unsigned long n) {
  std::ofstream os(path);
  os << "side channel";
  FILE* f = fopen(path, "wb");
  fwrite(data, 1, n, f);
  freopen(path, "a", f);
}
