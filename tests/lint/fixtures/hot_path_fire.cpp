// Fixture: allocation, logging and throw inside a SHFLBW_HOT region.
void Kernel(std::vector<float>& v) {
  SHFLBW_HOT_BEGIN;
  v.push_back(1.0f);
  float* p = new float[8];
  SHFLBW_LOG("tile done");
  if (!p) throw 1;
  SHFLBW_HOT_END;
}
