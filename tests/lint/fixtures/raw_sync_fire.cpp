// Fixture: raw-sync fires on the std primitives and their headers.
#include <mutex>
#include <condition_variable>

struct Widget {
  std::mutex mu;
  std::condition_variable cv;
};

void Use(Widget& w) {
  std::lock_guard<std::mutex> lock(w.mu);
}
