// Fixture: a justified SHFLBW_LINT_ALLOW suppresses nodiscard-status.
class LegacyShim {
 public:
  // SHFLBW_LINT_ALLOW(nodiscard-status): legacy fire-and-forget API kept for ABI
  SubmitStatus Submit(int req);
};
