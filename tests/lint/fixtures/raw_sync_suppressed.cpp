// Fixture: a justified SHFLBW_LINT_ALLOW suppresses raw-sync.
struct Widget {
  // SHFLBW_LINT_ALLOW(raw-sync): interop shim for a third-party API
  std::mutex mu;
};
