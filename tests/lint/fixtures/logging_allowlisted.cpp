// Fixture: src/common/logging.cpp is the one sanctioned sink.
void Emit(const char* msg) {
  std::cerr << msg;
}
