// Fixture: malformed suppressions are findings and grant nothing.
// SHFLBW_LINT_ALLOW(raw-sync)
std::mutex mu;
// SHFLBW_LINT_ALLOW(not-a-rule): misspelled rule name
// SHFLBW_LINT_ALLOW(raw-sync):
std::mutex mu2;
