// Fixture: the determinism identifier rules apply to src/ only —
// benches may use rand() and unordered containers freely.
int Jitter() {
  std::unordered_map<int, int> m;
  return rand();
}
