// Fixture: the annotated locking layer itself may wrap the std
// primitives — it is the one allowlisted file for raw-sync.
#include <mutex>

struct Mutex {
  std::mutex raw;
};
