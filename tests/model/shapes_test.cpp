#include <gtest/gtest.h>

#include "model/gnmt.h"
#include "model/resnet50.h"
#include "model/transformer.h"

namespace shflbw {
namespace {

TEST(Transformer, LayerShapes) {
  const auto layers = TransformerLayers();
  const auto counts = TransformerLayerCounts();
  ASSERT_EQ(layers.size(), counts.size());
  ASSERT_EQ(layers.size(), 4u);
  // Base config: d_model=512, d_ff=2048, N=512.
  EXPECT_EQ(layers[0].m, 1536);  // fused QKV
  EXPECT_EQ(layers[0].k, 512);
  EXPECT_EQ(layers[2].m, 2048);  // fc1
  EXPECT_EQ(layers[3].k, 2048);  // fc2
  for (const auto& l : layers) {
    EXPECT_EQ(l.n, 512);
    EXPECT_GT(l.Flops(), 0.0);
    // All Ms are multiples of 128 so every kernel (incl. Tilewise V=128)
    // can run the GEMM layers.
    EXPECT_EQ(l.m % 128, 0) << l.name;
  }
  // 6 encoder + 6 decoder layers; decoder has self+cross attention.
  EXPECT_EQ(counts[0], 18);
  EXPECT_EQ(counts[2], 12);
}

TEST(Gnmt, LayerShapes) {
  const auto layers = GnmtLayers();
  const auto counts = GnmtLayerCounts();
  ASSERT_EQ(layers.size(), counts.size());
  // LSTM gates: 4*1024 outputs against 2*1024 inputs.
  EXPECT_EQ(layers[0].m, 4096);
  EXPECT_EQ(layers[0].k, 2048);
  EXPECT_EQ(counts[1], 7);  // 8 encoder layers, first listed separately
  EXPECT_EQ(counts[2], 8);  // decoder layers
  for (const auto& l : layers) EXPECT_EQ(l.m % 128, 0) << l.name;
}

TEST(Gnmt, OptionalVocabProjection) {
  GnmtConfig cfg;
  cfg.vocab_projection = 32768;
  const auto layers = GnmtLayers(cfg);
  EXPECT_EQ(layers.back().m, 32768);
  EXPECT_EQ(layers.size(), GnmtLayerCounts(cfg).size());
}

TEST(ResNet50, LayerShapes) {
  const auto layers = ResNet50Layers();
  ASSERT_EQ(layers.size(), 12u);  // 4 stages x 3 conv types
  double total_flops = 0;
  for (const auto& l : layers) {
    EXPECT_GT(l.repeat, 0);
    EXPECT_EQ(l.GemmM(), l.out_c);
    EXPECT_EQ(l.GemmK(), l.in_c * l.kh * l.kw);
    EXPECT_GT(l.GemmN(), 0);
    total_flops += l.Flops();
  }
  // ResNet50's bottleneck stages at batch 32 are ~3.8 GFLOPs/image x 32
  // x 2 (MACs->FLOPs already counted); sanity: order 1e11.
  EXPECT_GT(total_flops, 5e10);
  EXPECT_LT(total_flops, 5e12);
}

TEST(ResNet50, SpatialSizesHalvePerStage) {
  const auto layers = ResNet50Layers();
  // conv2 3x3 at 56, conv3 at 28, conv4 at 14, conv5 at 7 (224 input).
  EXPECT_EQ(layers[1].in_h, 56);
  EXPECT_EQ(layers[4].in_h, 28);
  EXPECT_EQ(layers[7].in_h, 14);
  EXPECT_EQ(layers[10].in_h, 7);
}

TEST(ResNet50, OutChannelsDivisibleByCommonV) {
  for (const auto& l : ResNet50Layers()) {
    EXPECT_EQ(l.out_c % 32, 0) << l.name;
  }
}

}  // namespace
}  // namespace shflbw
