#include "model/weight_synth.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

TEST(WeightSynth, DeterministicWithSeed) {
  SynthWeightOptions opt;
  opt.seed = 42;
  EXPECT_EQ(SynthesizeWeights(32, 32, opt), SynthesizeWeights(32, 32, opt));
}

TEST(WeightSynth, DifferentSeedsDiffer) {
  SynthWeightOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_FALSE(SynthesizeWeights(16, 16, a) == SynthesizeWeights(16, 16, b));
}

TEST(WeightSynth, NoExactZeros) {
  // Trained dense weights are never exactly zero; neither are ours.
  const Matrix<float> w = SynthesizeWeights(64, 64);
  EXPECT_EQ(CountNonZeros(w), w.size());
}

TEST(WeightSynth, HeavyTailedMagnitudes) {
  // Kurtosis of the magnitudes should exceed a Gaussian's.
  const Matrix<float> w = SynthesizeWeights(128, 128);
  double mean = 0;
  for (float v : w.storage()) mean += std::fabs(v);
  mean /= static_cast<double>(w.size());
  double m2 = 0, m4 = 0;
  for (float v : w.storage()) {
    const double d = std::fabs(v) - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(w.size());
  m4 /= static_cast<double>(w.size());
  EXPECT_GT(m4 / (m2 * m2), 3.5);  // > Gaussian kurtosis
}

TEST(WeightSynth, RowTypesCreateColumnStructure) {
  // Rows of the same latent type share important columns: the max
  // cosine similarity between row-magnitude profiles across rows must
  // be much higher than for iid weights.
  SynthWeightOptions opt;
  opt.row_types = 4;
  opt.type_strength = 3.0;
  opt.noise = 0.2;
  const Matrix<float> w = SynthesizeWeights(32, 64, opt);

  auto cosine = [&](int r1, int r2) {
    double dot = 0, n1 = 0, n2 = 0;
    for (int c = 0; c < w.cols(); ++c) {
      const double a = std::fabs(w(r1, c));
      const double b = std::fabs(w(r2, c));
      dot += a * b;
      n1 += a * a;
      n2 += b * b;
    }
    return dot / std::sqrt(n1 * n2);
  };
  // For each row, its best match should be strongly correlated.
  double mean_best = 0;
  for (int r = 0; r < w.rows(); ++r) {
    double best = 0;
    for (int o = 0; o < w.rows(); ++o) {
      if (o != r) best = std::max(best, cosine(r, o));
    }
    mean_best += best;
  }
  mean_best /= w.rows();
  EXPECT_GT(mean_best, 0.7);
}

TEST(WeightSynth, InvalidArgsThrow) {
  SynthWeightOptions opt;
  opt.row_types = 0;
  EXPECT_THROW(SynthesizeWeights(8, 8, opt), Error);
  EXPECT_THROW(SynthesizeWeights(0, 8), Error);
}

}  // namespace
}  // namespace shflbw
