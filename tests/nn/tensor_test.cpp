#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace shflbw {
namespace {

using nn::AddBias;
using nn::MatMul;
using nn::MatMulTransA;
using nn::MatMulTransB;
using nn::RowSums;
using nn::Transpose;

TEST(NnTensor, MatMulKnown) {
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b(2, 2, {5, 6, 7, 8});
  EXPECT_EQ(MatMul(a, b), Matrix<float>(2, 2, {19, 22, 43, 50}));
}

TEST(NnTensor, TransposedVariantsConsistent) {
  Rng rng(257);
  const Matrix<float> a = rng.NormalMatrix(5, 7);
  const Matrix<float> b = rng.NormalMatrix(5, 3);
  const Matrix<float> c = rng.NormalMatrix(4, 7);
  // A^T * B == MatMul(Transpose(A), B)
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(Transpose(a), b)), 1e-5f);
  // A * C^T == MatMul(A, Transpose(C)) with A 5x7, C 4x7.
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, c), MatMul(a, Transpose(c))), 1e-5f);
}

TEST(NnTensor, TransposeInvolution) {
  Rng rng(263);
  const Matrix<float> a = rng.NormalMatrix(4, 6);
  EXPECT_EQ(Transpose(Transpose(a)), a);
}

TEST(NnTensor, AddBiasAndRowSums) {
  Matrix<float> y(2, 3, {1, 2, 3, 4, 5, 6});
  AddBias(y, {10, 20});
  EXPECT_EQ(y, Matrix<float>(2, 3, {11, 12, 13, 24, 25, 26}));
  const std::vector<float> sums = RowSums(y);
  EXPECT_FLOAT_EQ(sums[0], 36.0f);
  EXPECT_FLOAT_EQ(sums[1], 75.0f);
}

TEST(NnTensor, ShapeMismatchThrows) {
  EXPECT_THROW(MatMul(Matrix<float>(2, 3), Matrix<float>(4, 2)), Error);
  Matrix<float> y(2, 2);
  EXPECT_THROW(AddBias(y, {1, 2, 3}), Error);
}

}  // namespace
}  // namespace shflbw
