#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

nn::DatasetOptions SmallData() {
  nn::DatasetOptions d;
  d.num_classes = 4;
  d.dim = 16;
  d.train_per_class = 60;
  d.test_per_class = 25;
  d.seed = 999;
  return d;
}

nn::TrainOptions FastTrain(int epochs) {
  nn::TrainOptions t;
  t.epochs = epochs;
  t.batch_size = 32;
  t.sgd.lr = 0.1f;
  return t;
}

TEST(Training, LearnsAboveChance) {
  const nn::Dataset data = nn::MakeClusterDataset(SmallData());
  nn::Mlp model({16, 32, 4}, /*seed=*/21);
  nn::Trainer trainer(model, data);
  const double before = trainer.TestAccuracy();
  trainer.Train(FastTrain(15));
  const double after = trainer.TestAccuracy();
  EXPECT_GT(after, 0.7);
  EXPECT_GT(after, before);
}

TEST(Training, LossDecreases) {
  const nn::Dataset data = nn::MakeClusterDataset(SmallData());
  nn::Mlp model({16, 32, 4}, /*seed=*/23);
  nn::Trainer trainer(model, data);
  const double early = trainer.Train(FastTrain(2));
  const double late = trainer.Train(FastTrain(10));
  EXPECT_LT(late, early);
}

TEST(Training, PruneThenFineTuneKeepsMaskAndRecovers) {
  const nn::Dataset data = nn::MakeClusterDataset(SmallData());
  nn::Mlp model({16, 32, 4}, /*seed=*/25);
  nn::Trainer trainer(model, data);
  trainer.Train(FastTrain(15));
  const double dense_acc = trainer.TestAccuracy();

  trainer.PruneModel(
      [](const Matrix<float>& s, double d) {
        return UnstructuredMask(s, d);
      },
      0.5);
  trainer.Train(FastTrain(8));  // fine-tune
  const double pruned_acc = trainer.TestAccuracy();

  // Mask held through fine-tuning: exactly half the weights are zero.
  nn::Linear* layer = model.PrunableLayers()[0];
  EXPECT_NEAR(Sparsity(layer->weights()), 0.5, 0.02);
  // Recovery: within a few points of the dense model at 50%.
  EXPECT_GT(pruned_acc, dense_acc - 0.12);
}

TEST(Training, GrowAndPruneFineTuneReachesTarget) {
  const nn::Dataset data = nn::MakeClusterDataset(SmallData());
  nn::Mlp model({16, 32, 4}, /*seed=*/27);
  nn::Trainer trainer(model, data);
  trainer.Train(FastTrain(12));
  trainer.GrowAndPruneFineTune(
      [](const Matrix<float>& s, double d) {
        return VectorWiseMask(s, d, 8);
      },
      0.25, /*rounds=*/3, /*grow_ratio=*/0.3, FastTrain(4));
  nn::Linear* layer = model.PrunableLayers()[0];
  EXPECT_NEAR(Sparsity(layer->weights()), 0.75, 0.03);
  EXPECT_GT(trainer.TestAccuracy(), 0.5);
}

TEST(Training, DeterministicGivenSeeds) {
  const nn::Dataset data = nn::MakeClusterDataset(SmallData());
  nn::Mlp m1({16, 24, 4}, /*seed=*/31);
  nn::Mlp m2({16, 24, 4}, /*seed=*/31);
  nn::Trainer t1(m1, data), t2(m2, data);
  t1.Train(FastTrain(5));
  t2.Train(FastTrain(5));
  EXPECT_EQ(m1.PrunableLayers()[0]->weights(),
            m2.PrunableLayers()[0]->weights());
}

}  // namespace
}  // namespace shflbw
