// Finite-difference gradient checks for the training substrate — the
// backprop must be right or every Table 1 accuracy number is noise.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/mlp.h"

namespace shflbw {
namespace {

/// Loss of the model on a fixed tiny batch.
double LossOf(nn::Mlp& model, const Matrix<float>& x,
              const std::vector<int>& y) {
  return nn::SoftmaxCrossEntropy(model.Forward(x), y).loss;
}

TEST(GradCheck, LinearWeightsMatchFiniteDifference) {
  Rng rng(269);
  nn::Mlp model({4, 5, 3}, /*seed=*/11);
  const Matrix<float> x = rng.NormalMatrix(4, 6);
  const std::vector<int> y{0, 1, 2, 0, 1, 2};

  // Analytic gradients.
  const Matrix<float> logits = model.Forward(x);
  const nn::LossResult lr = nn::SoftmaxCrossEntropy(logits, y);
  model.Backward(lr.grad_logits);

  const float eps = 1e-3f;
  for (nn::Linear* layer : model.Layers()) {
    Matrix<float>& w = layer->weights();
    const Matrix<float> analytic = layer->grad_weights();
    // Spot-check a grid of entries (full check is O(params * forward)).
    for (int r = 0; r < w.rows(); r += 2) {
      for (int c = 0; c < w.cols(); c += 2) {
        const float orig = w(r, c);
        w(r, c) = orig + eps;
        const double up = LossOf(model, x, y);
        w(r, c) = orig - eps;
        const double down = LossOf(model, x, y);
        w(r, c) = orig;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(analytic(r, c), numeric, 2e-3)
            << "weight (" << r << "," << c << ")";
      }
    }
  }
}

TEST(GradCheck, BiasMatchesFiniteDifference) {
  Rng rng(271);
  nn::Mlp model({3, 4, 2}, /*seed=*/13);
  const Matrix<float> x = rng.NormalMatrix(3, 5);
  const std::vector<int> y{0, 1, 0, 1, 0};

  const nn::LossResult lr = nn::SoftmaxCrossEntropy(model.Forward(x), y);
  model.Backward(lr.grad_logits);

  const float eps = 1e-3f;
  for (nn::Linear* layer : model.Layers()) {
    for (std::size_t i = 0; i < layer->bias().size(); ++i) {
      const float orig = layer->bias()[i];
      layer->bias()[i] = orig + eps;
      const double up = LossOf(model, x, y);
      layer->bias()[i] = orig - eps;
      const double down = LossOf(model, x, y);
      layer->bias()[i] = orig;
      EXPECT_NEAR(layer->grad_bias()[i], (up - down) / (2.0 * eps), 2e-3);
    }
  }
}

TEST(GradCheck, MaskedWeightsGetZeroGradient) {
  Rng rng(277);
  nn::Mlp model({4, 6, 3}, /*seed=*/17);
  nn::Linear* layer = model.PrunableLayers()[0];
  Matrix<float> mask(6, 4);
  mask(0, 0) = 1;  // keep exactly one weight
  layer->SetMask(mask);

  const Matrix<float> x = rng.NormalMatrix(4, 5);
  const std::vector<int> y{0, 1, 2, 0, 1};
  const nn::LossResult lr = nn::SoftmaxCrossEntropy(model.Forward(x), y);
  model.Backward(lr.grad_logits);

  const Matrix<float>& g = layer->grad_weights();
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (r == 0 && c == 0) continue;
      EXPECT_EQ(g(r, c), 0.0f) << r << "," << c;
    }
  }
}

TEST(GradCheck, SoftmaxGradSumsToZeroPerColumn) {
  Rng rng(281);
  const Matrix<float> logits = rng.NormalMatrix(5, 7);
  std::vector<int> y(7, 2);
  const nn::LossResult lr = nn::SoftmaxCrossEntropy(logits, y);
  for (int j = 0; j < 7; ++j) {
    float sum = 0;
    for (int i = 0; i < 5; ++i) sum += lr.grad_logits(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(GradCheck, SoftmaxLossMatchesUniformAtZeroLogits) {
  const Matrix<float> logits(4, 2);
  const nn::LossResult lr = nn::SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(lr.loss, std::log(4.0), 1e-6);
}

}  // namespace
}  // namespace shflbw
