#include "nn/optimizer.h"

#include <gtest/gtest.h>

namespace shflbw {
namespace {

nn::SgdOptions NoFrills(float lr) {
  nn::SgdOptions o;
  o.lr = lr;
  o.momentum = 0.0f;
  o.weight_decay = 0.0f;
  return o;
}

TEST(Sgd, PlainStepDescendsGradient) {
  nn::Linear layer(2, 2, /*seed=*/1);
  layer.weights() = Matrix<float>(2, 2, {1, 1, 1, 1});
  layer.grad_weights() = Matrix<float>(2, 2, {1, 0, 0, -1});
  nn::Sgd sgd({&layer}, NoFrills(0.5f));
  sgd.Step();
  EXPECT_EQ(layer.weights(), Matrix<float>(2, 2, {0.5f, 1, 1, 1.5f}));
  // Gradients zeroed after the step.
  EXPECT_EQ(layer.grad_weights(), Matrix<float>(2, 2));
}

TEST(Sgd, MomentumAccumulates) {
  nn::Linear layer(1, 1, /*seed=*/2);
  layer.weights() = Matrix<float>(1, 1, {0.0f});
  nn::SgdOptions o = NoFrills(1.0f);
  o.momentum = 0.5f;
  nn::Sgd sgd({&layer}, o);
  // Two steps with constant gradient 1: velocities 1 then 1.5.
  layer.grad_weights()(0, 0) = 1.0f;
  sgd.Step();
  EXPECT_FLOAT_EQ(layer.weights()(0, 0), -1.0f);
  layer.grad_weights()(0, 0) = 1.0f;
  sgd.Step();
  EXPECT_FLOAT_EQ(layer.weights()(0, 0), -2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  nn::Linear layer(1, 1, /*seed=*/3);
  layer.weights() = Matrix<float>(1, 1, {2.0f});
  nn::SgdOptions o = NoFrills(0.1f);
  o.weight_decay = 0.5f;
  nn::Sgd sgd({&layer}, o);
  sgd.Step();  // gradient 0, decay 0.5*2 = 1 -> step -0.1
  EXPECT_FLOAT_EQ(layer.weights()(0, 0), 1.9f);
}

TEST(Sgd, MaskedWeightsStayZeroAfterSteps) {
  nn::Linear layer(2, 2, /*seed=*/4);
  layer.weights() = Matrix<float>(2, 2, {1, 2, 3, 4});
  Matrix<float> mask(2, 2, {1, 0, 0, 1});
  layer.SetMask(mask);
  nn::SgdOptions o = NoFrills(0.1f);
  o.momentum = 0.9f;
  o.weight_decay = 0.1f;
  nn::Sgd sgd({&layer}, o);
  for (int i = 0; i < 5; ++i) {
    layer.grad_weights() = Matrix<float>(2, 2, {1, 1, 1, 1});
    sgd.Step();
  }
  EXPECT_EQ(layer.weights()(0, 1), 0.0f);
  EXPECT_EQ(layer.weights()(1, 0), 0.0f);
  EXPECT_NE(layer.weights()(0, 0), 0.0f);
}

TEST(Sgd, BiasUpdated) {
  nn::Linear layer(2, 1, /*seed=*/5);
  layer.bias() = {1.0f, 1.0f};
  layer.grad_bias() = {2.0f, -2.0f};
  nn::Sgd sgd({&layer}, NoFrills(0.25f));
  sgd.Step();
  EXPECT_FLOAT_EQ(layer.bias()[0], 0.5f);
  EXPECT_FLOAT_EQ(layer.bias()[1], 1.5f);
}

TEST(Sgd, NullLayerRejected) {
  EXPECT_THROW(nn::Sgd({nullptr}), Error);
}

}  // namespace
}  // namespace shflbw
