// benchdiff unit contract: the strict JSON parser accepts exactly what
// bench/ emits and rejects garbage with a located error, flattening
// produces stable identity-keyed paths (so reordered result arrays
// still line up), glob matching and first-match-wins rule resolution
// behave, a self-diff is always clean, and an injected
// beyond-threshold throughput drop is flagged as a regression while
// equal-sized noise on an un-gated metric is not.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchdiff/benchdiff.h"

namespace shflbw {
namespace benchdiff {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(ParseJson(text, &v, &err)) << err;
  return v;
}

TEST(ParseJson, RoundTripsTheBenchSubset) {
  const JsonValue v = MustParse(
      "{\"bench\": \"serving\", \"pi\": 3.25, \"neg\": -1e-3,\n"
      " \"flag\": true, \"off\": false, \"nothing\": null,\n"
      " \"list\": [1, 2.5, \"s\"], \"nested\": {\"k\": 0}}");
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  EXPECT_EQ(v.Find("bench")->str, "serving");
  EXPECT_DOUBLE_EQ(v.Find("pi")->number, 3.25);
  EXPECT_DOUBLE_EQ(v.Find("neg")->number, -1e-3);
  EXPECT_TRUE(v.Find("flag")->boolean);
  EXPECT_FALSE(v.Find("off")->boolean);
  EXPECT_EQ(v.Find("nothing")->type, JsonValue::Type::kNull);
  ASSERT_EQ(v.Find("list")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("nested")->Find("k")->number, 0.0);
  EXPECT_EQ(v.Find("absent"), nullptr);
}

TEST(ParseJson, DecodesStringEscapes) {
  const JsonValue v =
      MustParse("{\"s\": \"a\\\"b\\\\c\\n\\t\\u0041\"}");
  EXPECT_EQ(v.Find("s")->str, "a\"b\\c\n\tA");
}

TEST(ParseJson, RejectsMalformedInputWithALocatedError) {
  const char* bad[] = {
      "",                        // empty
      "{",                       // unterminated object
      "{\"a\": }",               // missing value
      "{\"a\": 1,}",             // trailing comma
      "[1 2]",                   // missing comma
      "{\"a\": 1} trailing",     // trailing garbage
      "{'a': 1}",                // wrong quotes
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(ParseJson(text, &v, &err)) << "accepted: " << text;
    EXPECT_NE(err.find("offset"), std::string::npos) << err;
  }
}

TEST(FlattenNumeric, JoinsObjectsAndKeysArraysByIdentity) {
  const JsonValue v = MustParse(
      "{\"throughput_rps\": 100,\n"
      " \"provenance\": {\"threads\": 8},\n"
      " \"results\": [\n"
      "   {\"name\": \"enc0\", \"gflops\": 5.0},\n"
      "   {\"name\": \"dec0\", \"gflops\": 7.0}],\n"
      " \"curve\": [1, 2, 3],\n"
      " \"ok\": true, \"note\": \"skipped\"}");
  const std::map<std::string, double> flat = FlattenNumeric(v);
  EXPECT_DOUBLE_EQ(flat.at("throughput_rps"), 100);
  EXPECT_DOUBLE_EQ(flat.at("provenance.threads"), 8);
  EXPECT_DOUBLE_EQ(flat.at("results[enc0].gflops"), 5.0);
  EXPECT_DOUBLE_EQ(flat.at("results[dec0].gflops"), 7.0);
  EXPECT_DOUBLE_EQ(flat.at("ok"), 1.0);           // bools count 0/1
  EXPECT_EQ(flat.count("note"), 0u);              // strings skipped
  // Anonymous numeric arrays fall back to the index.
  EXPECT_DOUBLE_EQ(flat.at("curve[0]"), 1);
  EXPECT_DOUBLE_EQ(flat.at("curve[2]"), 3);
}

TEST(FlattenNumeric, IdentityKeysSurviveReordering) {
  const JsonValue a = MustParse(
      "{\"r\": [{\"name\": \"x\", \"v\": 1}, {\"name\": \"y\", \"v\": 2}]}");
  const JsonValue b = MustParse(
      "{\"r\": [{\"name\": \"y\", \"v\": 2}, {\"name\": \"x\", \"v\": 1}]}");
  EXPECT_EQ(FlattenNumeric(a), FlattenNumeric(b));
}

TEST(GlobMatch, StarAndQuestionSemantics) {
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("*throughput*", "serving.throughput_rps"));
  EXPECT_TRUE(GlobMatch("results[*].gflops", "results[enc0].gflops"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_FALSE(GlobMatch("*p99*", "throughput_rps.p50"));
  EXPECT_TRUE(GlobMatch("**p50", "throughput_rps.p50"));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("", ""));
}

TEST(Diff, SelfDiffIsAlwaysClean) {
  const std::map<std::string, double> run = {
      {"throughput_rps", 123.4},
      {"latency.p99_seconds", 0.02},
      {"provenance.threads", 8},
      {"quality.retained", 0.97},
  };
  const DiffResult r = Diff(run, run, DefaultRules());
  EXPECT_EQ(r.regressions, 0);
  EXPECT_TRUE(r.only_old.empty());
  EXPECT_TRUE(r.only_new.empty());
  for (const MetricDelta& d : r.deltas) EXPECT_FALSE(d.regressed);
}

TEST(Diff, FlagsThroughputCollapseButToleratesNoise) {
  std::map<std::string, double> old_run = {{"serving.throughput_rps", 100.0}};
  // Halved throughput: far beyond the 35% noise allowance.
  std::map<std::string, double> new_run = {{"serving.throughput_rps", 50.0}};
  DiffResult r = Diff(old_run, new_run, DefaultRules());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(r.deltas[0].gated);
  EXPECT_TRUE(r.deltas[0].regressed);
  EXPECT_EQ(r.regressions, 1);
  // Render mentions the path and the verdict.
  const std::string table = RenderTable(r);
  EXPECT_NE(table.find("serving.throughput_rps"), std::string::npos);

  // A 10% dip is inside the allowance: gated but not a regression.
  new_run["serving.throughput_rps"] = 90.0;
  r = Diff(old_run, new_run, DefaultRules());
  EXPECT_EQ(r.regressions, 0);

  // Movement in the GOOD direction never regresses, however large.
  new_run["serving.throughput_rps"] = 500.0;
  r = Diff(old_run, new_run, DefaultRules());
  EXPECT_EQ(r.regressions, 0);
}

TEST(Diff, LatencyGatesInTheOppositeDirection) {
  const std::map<std::string, double> old_run = {
      {"latency.p99_seconds", 0.010}};
  // Latency tripling is a regression (lower is better, rel 1.0).
  const std::map<std::string, double> bad = {{"latency.p99_seconds", 0.031}};
  EXPECT_EQ(Diff(old_run, bad, DefaultRules()).regressions, 1);
  // Improvement is never flagged.
  const std::map<std::string, double> good = {{"latency.p99_seconds", 0.002}};
  EXPECT_EQ(Diff(old_run, good, DefaultRules()).regressions, 0);
}

TEST(Diff, FirstMatchingRuleWinsAndIgnoreNeverGates) {
  // provenance.* is ignored by the defaults even though *threads* also
  // appears later in the list; a collapse there must not gate.
  const std::map<std::string, double> old_run = {{"provenance.threads", 16}};
  const std::map<std::string, double> new_run = {{"provenance.threads", 1}};
  const DiffResult r = Diff(old_run, new_run, DefaultRules());
  EXPECT_EQ(r.regressions, 0);

  // A user rule prepended ahead of the defaults overrides them.
  std::vector<MetricRule> rules = {{"provenance.*",
                                    Direction::kLowerBetter, 0.0, 0.0}};
  for (const MetricRule& d : DefaultRules()) rules.push_back(d);
  EXPECT_EQ(Diff(old_run, new_run, rules).regressions, 0);  // 16 -> 1 fell
  EXPECT_EQ(Diff(new_run, old_run, rules).regressions, 1);  // 1 -> 16 rose
}

TEST(Diff, BitIdenticalFlagsHaveZeroTolerance) {
  const std::map<std::string, double> old_run = {
      {"serving.bit_identical", 1.0}};
  const std::map<std::string, double> new_run = {
      {"serving.bit_identical", 0.0}};
  EXPECT_EQ(Diff(old_run, new_run, DefaultRules()).regressions, 1);
}

TEST(Diff, DisappearedMetricsWarnAndNewOnesInform) {
  const std::map<std::string, double> old_run = {{"a", 1}, {"b", 2}};
  const std::map<std::string, double> new_run = {{"b", 2}, {"c", 3}};
  const DiffResult r = Diff(old_run, new_run, DefaultRules());
  ASSERT_EQ(r.only_old.size(), 1u);
  EXPECT_EQ(r.only_old[0], "a");
  ASSERT_EQ(r.only_new.size(), 1u);
  EXPECT_EQ(r.only_new[0], "c");
  EXPECT_EQ(r.regressions, 0);  // absence is a warning, not a gate
}

TEST(Diff, RelScaleLoosensEveryRelativeThreshold) {
  const std::map<std::string, double> old_run = {
      {"serving.throughput_rps", 100.0}};
  const std::map<std::string, double> new_run = {
      {"serving.throughput_rps", 60.0}};  // -40%: beyond rel 0.35
  EXPECT_EQ(Diff(old_run, new_run, DefaultRules(), 1.0).regressions, 1);
  EXPECT_EQ(Diff(old_run, new_run, DefaultRules(), 2.0).regressions, 0);
}

}  // namespace
}  // namespace benchdiff
}  // namespace shflbw
