#include "common/matrix.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<float> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix<float> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.storage()[i], 0.0f);
  }
}

TEST(Matrix, RowMajorLayout) {
  Matrix<float> m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 0) = 4;
  EXPECT_EQ(m.storage()[0], 1.0f);
  EXPECT_EQ(m.storage()[2], 3.0f);
  EXPECT_EQ(m.storage()[3], 4.0f);
  EXPECT_EQ(m.row(1)[0], 4.0f);
}

TEST(Matrix, AtThrowsOutOfBounds) {
  Matrix<float> m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
  EXPECT_THROW(m.at(-1, 0), Error);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, DataVectorConstructorValidatesSize) {
  EXPECT_THROW(Matrix<float>(2, 2, std::vector<float>{1, 2, 3}), Error);
  Matrix<float> m(2, 2, std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b(2, 2, {1, 2, 3, 4});
  Matrix<float> c(2, 2, {1, 2, 3, 5});
  Matrix<float> d(4, 1, {1, 2, 3, 4});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(Matrix, Fp16RoundTripQuantizes) {
  Matrix<float> m(1, 2, {1.0f, 2049.0f});
  const Matrix<float> q = ToFloat(ToFp16(m));
  EXPECT_EQ(q(0, 0), 1.0f);
  EXPECT_EQ(q(0, 1), 2048.0f);  // 2049 not representable in fp16
}

TEST(Matrix, SparsityAndNnz) {
  Matrix<float> m(2, 2, {0, 1, 0, 2});
  EXPECT_EQ(CountNonZeros(m), 2u);
  EXPECT_DOUBLE_EQ(Sparsity(m), 0.5);
  Matrix<float> z(3, 3);
  EXPECT_DOUBLE_EQ(Sparsity(z), 1.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix<float> a(1, 3, {1, 2, 3});
  Matrix<float> b(1, 3, {1, 2.5f, 2});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
  Matrix<float> c(3, 1, {1, 2, 3});
  EXPECT_THROW(MaxAbsDiff(a, c), Error);
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    SHFLBW_CHECK_MSG(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace shflbw
