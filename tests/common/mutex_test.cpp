// Tests for the annotated mutex wrappers and the runtime lock-order
// rank assertion (common/thread_annotations.h). The Clang capability
// analysis is exercised at configure time by tests/static/probe_*.cpp;
// this file pins down the part that runs in EVERY build: acquiring
// ranked mutexes out of the documented global order throws
// shflbw::Error deterministically instead of deadlocking.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"

namespace shflbw {
namespace {

// The violation tests below intentionally commit the exact misuse the
// capability analysis rejects at compile time (the runtime assertion
// throws before anything blocks). Analysis off for these two helpers
// only — the whole point is to reach the runtime check.
void AcquireBypassingAnalysis(Mutex& mu) SHFLBW_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock();
}

/// try_lock that immediately releases on success, so no capability
/// escapes; returns whether acquisition succeeded.
bool TryAcquireBypassingAnalysis(Mutex& mu) SHFLBW_NO_THREAD_SAFETY_ANALYSIS {
  if (!mu.try_lock()) return false;
  mu.unlock();
  return true;
}

TEST(MutexTest, InOrderNestingIsAllowed) {
  Mutex pool(kLockRankPool);
  Mutex server(kLockRankServer);
  Mutex registry(kLockRankRegistry);
  MutexLock l1(pool);
  MutexLock l2(server);
  MutexLock l3(registry);  // 10 -> 20 -> 50: strictly increasing, fine
}

TEST(MutexTest, OutOfOrderAcquisitionThrows) {
  Mutex server(kLockRankServer);
  Mutex pool(kLockRankPool);
  MutexLock hold_server(server);
  // Acquiring the pool mutex (rank 10) while holding the server mutex
  // (rank 20) inverts the documented order; must throw BEFORE blocking.
  EXPECT_THROW(AcquireBypassingAnalysis(pool), Error);
}

TEST(MutexTest, EqualRankAcquisitionThrows) {
  // Two locks of the same rank were never meant to nest (and on the
  // same mutex it would be UB recursion); the assertion rejects both.
  Mutex a(kLockRankCache);
  Mutex b(kLockRankCache);
  MutexLock hold_a(a);
  EXPECT_THROW(AcquireBypassingAnalysis(b), Error);
}

TEST(MutexTest, OrderResetsAfterRelease) {
  Mutex server(kLockRankServer);
  Mutex pool(kLockRankPool);
  {
    MutexLock hold(server);
  }
  // Server mutex released: acquiring the lower rank is legal again.
  MutexLock hold_pool(pool);
  MutexLock hold_server(server);  // and re-nesting upward still works
}

TEST(MutexTest, UnrankedMutexIsExemptFromOrder) {
  Mutex registry(kLockRankRegistry);
  Mutex leaf;  // kLockRankUnordered: a leaf lock, never part of the order
  MutexLock hold_registry(registry);
  MutexLock hold_leaf(leaf);  // no throw, despite "nesting" under rank 50
}

TEST(MutexTest, TryLockRespectsOrderAndReportsContention) {
  Mutex server(kLockRankServer);
  Mutex pool(kLockRankPool);
  {
    MutexLock hold(server);
    // Order applies to try_lock too.
    EXPECT_THROW(TryAcquireBypassingAnalysis(pool), Error);
  }
  // Contended try_lock from another thread fails cleanly (no throw —
  // contention is not an order violation).
  MutexLock hold_pool(pool);
  std::atomic<int> result{-1};
  std::thread t([&] { result = TryAcquireBypassingAnalysis(pool) ? 1 : 0; });
  t.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(MutexTest, UniqueLockUnlockRelockRoundTrip) {
  Mutex server(kLockRankServer);
  Mutex pool(kLockRankPool);
  UniqueLock lock(server);
  EXPECT_TRUE(lock.held());
  lock.Unlock();
  EXPECT_FALSE(lock.held());
  {
    // With the server mutex dropped, the thread holds nothing: a
    // lower-rank acquisition is legal in the gap (this is exactly the
    // scheduler-loop shape — drop the queue lock, run, relock).
    MutexLock hold_pool(pool);
  }
  lock.Lock();
  EXPECT_TRUE(lock.held());
}

TEST(MutexTest, CondVarWaitPredicateAndNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread t([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    UniqueLock lock(mu);
    cv.Wait(mu, [&]() SHFLBW_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  t.join();
}

TEST(MutexTest, CondVarWaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  UniqueLock lock(mu);
  const bool ok =
      cv.WaitFor(mu, 0.01, [&]() SHFLBW_REQUIRES(mu) { return false; });
  EXPECT_FALSE(ok);
}

TEST(MutexTest, RankAccessorsMatchConstruction) {
  Mutex ranked(kLockRankEvaluator);
  Mutex unranked;
  EXPECT_EQ(ranked.rank(), kLockRankEvaluator);
  EXPECT_EQ(unranked.rank(), kLockRankUnordered);
}

TEST(MutexTest, ViolationMessageNamesBothRanksAndTheOrder) {
  Mutex registry(kLockRankRegistry);
  Mutex pool(kLockRankPool);
  MutexLock hold(registry);
  try {
    AcquireBypassingAnalysis(pool);
    FAIL() << "expected lock-order violation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 10"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 50"), std::string::npos) << what;
    EXPECT_NE(what.find("pool(10)"), std::string::npos) << what;
  }
}

TEST(MutexTest, OrderIsPerThread) {
  // Held ranks are thread-local: another thread may acquire a lower
  // rank concurrently without tripping this thread's held set.
  Mutex registry(kLockRankRegistry);
  Mutex pool(kLockRankPool);
  MutexLock hold(registry);
  std::thread t([&] {
    MutexLock low(pool);  // fresh thread, empty held set: fine
  });
  t.join();
}

}  // namespace
}  // namespace shflbw
