#include "common/fp16.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace shflbw {
namespace {

TEST(Fp16, ZeroRoundTrips) {
  EXPECT_EQ(Fp16(0.0f).ToFloat(), 0.0f);
  EXPECT_EQ(Fp16(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(Fp16(0.0f).IsZero());
  EXPECT_TRUE(Fp16(-0.0f).IsZero());
}

TEST(Fp16, SmallIntegersExact) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(Fp16(static_cast<float>(i)).ToFloat(), static_cast<float>(i))
        << "i=" << i;
  }
}

TEST(Fp16, PowersOfTwoExact) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(Fp16(v).ToFloat(), v) << "2^" << e;
  }
}

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(Fp16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Fp16(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(Fp16(2.0f).bits(), 0x4000u);
  EXPECT_EQ(Fp16(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Fp16(65504.0f).bits(), 0x7BFFu);  // max finite
}

TEST(Fp16, OverflowToInfinity) {
  EXPECT_TRUE(Fp16(65520.0f).IsInf());
  EXPECT_TRUE(Fp16(1e10f).IsInf());
  EXPECT_TRUE(Fp16(-1e10f).IsInf());
  EXPECT_EQ(Fp16(1e10f).bits(), 0x7C00u);
  EXPECT_EQ(Fp16(-1e10f).bits(), 0xFC00u);
}

TEST(Fp16, MaxFiniteSurvives) {
  EXPECT_FALSE(Fp16(65504.0f).IsInf());
  EXPECT_EQ(Fp16(65504.0f).ToFloat(), 65504.0f);
  // 65519.996 rounds down to 65504, 65520 rounds up to inf.
  EXPECT_FALSE(Fp16(65519.0f).IsInf());
}

TEST(Fp16, SubnormalsRepresented) {
  const float smallest = std::ldexp(1.0f, -24);  // 2^-24
  EXPECT_EQ(Fp16(smallest).ToFloat(), smallest);
  EXPECT_EQ(Fp16(smallest).bits(), 0x0001u);
  const float largest_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Fp16(largest_sub).ToFloat(), largest_sub);
}

TEST(Fp16, UnderflowToZero) {
  EXPECT_TRUE(Fp16(std::ldexp(1.0f, -26)).IsZero());
  EXPECT_TRUE(Fp16(1e-20f).IsZero());
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and 1+2^-10: rounds to even (1.0).
  EXPECT_EQ(Fp16(1.0f + std::ldexp(1.0f, -11)).ToFloat(), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
  EXPECT_EQ(Fp16(1.0f + 3.0f * std::ldexp(1.0f, -11)).ToFloat(),
            1.0f + std::ldexp(1.0f, -9));
  // Slightly above the midpoint rounds up.
  EXPECT_EQ(Fp16(1.0f + std::ldexp(1.2f, -11)).ToFloat(),
            1.0f + std::ldexp(1.0f, -10));
}

TEST(Fp16, NanPropagates) {
  const Fp16 nan(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(nan.IsNan());
  EXPECT_TRUE(std::isnan(nan.ToFloat()));
  EXPECT_FALSE(nan == nan);
}

TEST(Fp16, InfinityRoundTrips) {
  const Fp16 inf(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(inf.IsInf());
  EXPECT_EQ(inf.ToFloat(), std::numeric_limits<float>::infinity());
  EXPECT_EQ((-inf).ToFloat(), -std::numeric_limits<float>::infinity());
}

TEST(Fp16, NegationFlipsSignBit) {
  EXPECT_EQ((-Fp16(1.5f)).ToFloat(), -1.5f);
  EXPECT_EQ((-Fp16(-3.25f)).ToFloat(), 3.25f);
}

TEST(Fp16, ArithmeticRoundsThroughHalf) {
  // 2048 + 1 = 2049 is not representable (spacing 2 at that magnitude):
  // result rounds back to 2048.
  EXPECT_EQ((Fp16(2048.0f) + Fp16(1.0f)).ToFloat(), 2048.0f);
  EXPECT_EQ((Fp16(3.0f) * Fp16(0.5f)).ToFloat(), 1.5f);
  EXPECT_EQ((Fp16(1.0f) / Fp16(4.0f)).ToFloat(), 0.25f);
}

TEST(Fp16, FmaAccumulatesInFp32) {
  // fp32 accumulation keeps precision fp16 arithmetic would lose:
  // 2048 + 1 stays 2049 in the fp32 accumulator.
  float acc = 2048.0f;
  acc = FmaF16F32(Fp16(1.0f), Fp16(1.0f), acc);
  EXPECT_EQ(acc, 2049.0f);
}

// Round-trip property over a wide value sweep: fp16 -> float -> fp16 is
// the identity on every finite fp16 bit pattern.
TEST(Fp16, AllFiniteBitPatternsRoundTrip) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const Fp16 h = Fp16::FromBits(static_cast<std::uint16_t>(bits));
    if (h.IsNan()) continue;
    const Fp16 back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=0x" << std::hex << bits;
  }
}

// Conversion from float is monotone: ordering is preserved (weak).
TEST(Fp16, ConversionIsMonotone) {
  float prev = -70000.0f;
  for (float v = -70000.0f; v <= 70000.0f; v += 333.77f) {
    EXPECT_LE(Fp16(prev).ToFloat(), Fp16(v).ToFloat());
    prev = v;
  }
}

}  // namespace
}  // namespace shflbw
