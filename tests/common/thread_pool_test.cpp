// ParallelFor contract tests: full coverage of the index range, chunk
// bounds respecting grain, serial fallback, exception propagation, and
// the thread-count resolution order (override > env > hardware).
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace shflbw {
namespace {

/// RAII guard: clears the programmatic override on scope exit so tests
/// cannot leak a pinned thread count into each other.
struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetParallelThreads(threads);
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelFor, ChunksNeverExceedGrain) {
  ThreadGuard guard;
  SetParallelThreads(4);
  std::atomic<bool> ok{true};
  ParallelFor(5, 103, 10, [&](std::int64_t lo, std::int64_t hi) {
    if (hi - lo > 10 || lo < 5 || hi > 103) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(10, 10, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(10, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleThreadRunsWholeRangeInOneCall) {
  ThreadGuard guard;
  SetParallelThreads(1);
  int calls = 0;
  std::int64_t seen_lo = -1, seen_hi = -1;
  ParallelFor(3, 50, 4, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  // Serial fallback ignores grain: one call covering the full range.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 50);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    SetParallelThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](std::int64_t lo, std::int64_t hi) {
                      if (lo <= 42 && 42 < hi) {
                        throw std::runtime_error("boom");
                      }
                    }),
        std::runtime_error);
  }
}

TEST(ParallelFor, PersistentWorkersAreReused) {
  ThreadGuard guard;
  SetParallelThreads(4);
  // Two regions at the same thread count must draw on the same parked
  // workers: the union of participating thread ids over both calls stays
  // within the resolved team size (caller + 3 workers). A fork-join
  // implementation could show up to 7 distinct ids here.
  std::mutex mu;
  std::set<std::thread::id> ids;
  auto collect = [&](std::int64_t, std::int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  };
  for (int call = 0; call < 2; ++call) {
    ParallelFor(0, 64, 1, collect);
  }
  EXPECT_LE(ids.size(), 4u);
}

TEST(ParallelFor, RegionNeverExceedsResolvedThreadCount) {
  ThreadGuard guard;
  // Grow the pool large, then shrink the resolved count: the smaller
  // region must not be joined by the extra parked workers.
  SetParallelThreads(8);
  ParallelFor(0, 256, 1, [](std::int64_t, std::int64_t) {});
  SetParallelThreads(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(0, 256, 1, [&](std::int64_t, std::int64_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), 3u);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  ThreadGuard guard;
  SetParallelThreads(4);
  // A ParallelFor issued from inside a region must not deadlock on the
  // pool; it degrades to a serial call on the issuing thread.
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](std::int64_t, std::int64_t) {
    ParallelFor(0, 10, 2, [&](std::int64_t lo, std::int64_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadCount, OverrideBeatsEnvBeatsHardware) {
  ThreadGuard guard;
  ASSERT_EQ(setenv("SHFLBW_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelThreadCount(), 3);
  SetParallelThreads(5);
  EXPECT_EQ(ParallelThreadCount(), 5);
  SetParallelThreads(0);
  EXPECT_EQ(ParallelThreadCount(), 3);
  ASSERT_EQ(unsetenv("SHFLBW_NUM_THREADS"), 0);
  EXPECT_GE(ParallelThreadCount(), 1);
}

TEST(ThreadCount, MalformedEnvIsIgnored) {
  ThreadGuard guard;
  for (const char* bad : {"", "zero", "-4", "0"}) {
    ASSERT_EQ(setenv("SHFLBW_NUM_THREADS", bad, 1), 0);
    EXPECT_GE(ParallelThreadCount(), 1) << "env=\"" << bad << "\"";
  }
  ASSERT_EQ(unsetenv("SHFLBW_NUM_THREADS"), 0);
}

}  // namespace
}  // namespace shflbw
