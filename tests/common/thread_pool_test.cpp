// ParallelFor contract tests: full coverage of the index range, chunk
// bounds respecting grain, serial fallback, exception propagation, and
// the thread-count resolution order (override > env > hardware).
#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace shflbw {
namespace {

/// RAII guard: clears the programmatic override on scope exit so tests
/// cannot leak a pinned thread count into each other.
struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetParallelThreads(threads);
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelFor, ChunksNeverExceedGrain) {
  ThreadGuard guard;
  SetParallelThreads(4);
  std::atomic<bool> ok{true};
  ParallelFor(5, 103, 10, [&](std::int64_t lo, std::int64_t hi) {
    if (hi - lo > 10 || lo < 5 || hi > 103) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ParallelFor, EmptyAndReversedRangesAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(10, 10, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(10, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleThreadRunsWholeRangeInOneCall) {
  ThreadGuard guard;
  SetParallelThreads(1);
  int calls = 0;
  std::int64_t seen_lo = -1, seen_hi = -1;
  ParallelFor(3, 50, 4, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  // Serial fallback ignores grain: one call covering the full range.
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 50);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadGuard guard;
  for (int threads : {1, 4}) {
    SetParallelThreads(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](std::int64_t lo, std::int64_t hi) {
                      if (lo <= 42 && 42 < hi) {
                        throw std::runtime_error("boom");
                      }
                    }),
        std::runtime_error);
  }
}

TEST(ParallelFor, PersistentWorkersAreReused) {
  ThreadGuard guard;
  SetParallelThreads(4);
  // Two regions at the same thread count must draw on the same parked
  // workers: the union of participating thread ids over both calls stays
  // within the resolved team size (caller + 3 workers). A fork-join
  // implementation could show up to 7 distinct ids here.
  shflbw::Mutex mu;
  std::set<std::thread::id> ids;
  auto collect = [&](std::int64_t, std::int64_t) {
    shflbw::MutexLock lock(mu);
    ids.insert(std::this_thread::get_id());
  };
  for (int call = 0; call < 2; ++call) {
    ParallelFor(0, 64, 1, collect);
  }
  EXPECT_LE(ids.size(), 4u);
}

TEST(ParallelFor, RegionNeverExceedsResolvedThreadCount) {
  ThreadGuard guard;
  // Grow the pool large, then shrink the resolved count: the smaller
  // region must not be joined by the extra parked workers.
  SetParallelThreads(8);
  ParallelFor(0, 256, 1, [](std::int64_t, std::int64_t) {});
  SetParallelThreads(3);
  shflbw::Mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(0, 256, 1, [&](std::int64_t, std::int64_t) {
    shflbw::MutexLock lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_LE(ids.size(), 3u);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  ThreadGuard guard;
  SetParallelThreads(4);
  // A ParallelFor issued from inside a region must not deadlock on the
  // pool; it degrades to a serial call on the issuing thread.
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](std::int64_t, std::int64_t) {
    ParallelFor(0, 10, 2, [&](std::int64_t lo, std::int64_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadCount, OverrideBeatsEnvBeatsHardware) {
  ThreadGuard guard;
  ASSERT_EQ(setenv("SHFLBW_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelThreadCount(), 3);
  SetParallelThreads(5);
  EXPECT_EQ(ParallelThreadCount(), 5);
  SetParallelThreads(0);
  EXPECT_EQ(ParallelThreadCount(), 3);
  ASSERT_EQ(unsetenv("SHFLBW_NUM_THREADS"), 0);
  EXPECT_GE(ParallelThreadCount(), 1);
}

TEST(ParallelFor, ConcurrentCallersDoNotDeadlock) {
  ThreadGuard guard;
  SetParallelThreads(4);
  // Several std::threads hammering ParallelFor simultaneously: every
  // region must complete with full index coverage, regardless of how
  // the pool partitions workers between them.
  constexpr int kCallers = 4;
  constexpr int kIters = 50;
  std::vector<std::int64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < kIters; ++iter) {
        std::atomic<std::int64_t> sum{0};
        ParallelFor(0, 500, 7, [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t local = 0;
          for (std::int64_t i = lo; i < hi; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
        sums[static_cast<std::size_t>(t)] = sum.load();
      }
    });
  }
  for (std::thread& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], 500 * 499 / 2);
  }
}

TEST(ParallelFor, ConcurrentRegionsGetDisjointWorkerPartitions) {
  ThreadGuard guard;
  // Grow the pool to 7 workers first so two subsequent 4-thread regions
  // can each claim a real partition (3 workers apiece).
  SetParallelThreads(8);
  ParallelFor(0, 256, 1, [](std::int64_t, std::int64_t) {});
  SetParallelThreads(4);

  // Two callers enter regions that overlap in time (each chunk spins
  // until both regions have started), then record which threads ran
  // their chunks. The partitions must be disjoint: a pool worker serves
  // exactly one region at a time.
  std::atomic<int> regions_started{0};
  shflbw::Mutex mu;
  std::set<std::thread::id> ids[2];
  std::thread::id caller_ids[2];
  std::vector<std::thread> callers;
  for (int t = 0; t < 2; ++t) {
    callers.emplace_back([&, t] {
      caller_ids[t] = std::this_thread::get_id();
      regions_started.fetch_add(1);
      // Both callers enter ParallelFor before either can finish: the
      // first chunk of each region waits for the other region to exist.
      ParallelFor(0, 64, 1, [&](std::int64_t, std::int64_t) {
        while (regions_started.load() < 2) std::this_thread::yield();
        shflbw::MutexLock lock(mu);
        ids[t].insert(std::this_thread::get_id());
      });
    });
  }
  for (std::thread& th : callers) th.join();

  // Strip each region's own calling thread; what remains are the pool
  // workers assigned to it.
  ids[0].erase(caller_ids[0]);
  ids[1].erase(caller_ids[1]);
  for (std::thread::id id : ids[0]) {
    EXPECT_EQ(ids[1].count(id), 0u)
        << "worker served two concurrent regions";
  }
  // Neither region may exceed its resolved team (caller + 3 workers).
  EXPECT_LE(ids[0].size(), 3u);
  EXPECT_LE(ids[1].size(), 3u);
}

TEST(ParallelFor, ConcurrentOutputsAreBitIdenticalToSerial) {
  ThreadGuard guard;
  // Reference: serial execution.
  SetParallelThreads(1);
  constexpr int kN = 4096;
  std::vector<float> ref(kN);
  auto fill = [](std::vector<float>& out, float scale) {
    ParallelFor(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        // Non-trivial float arithmetic: any change in evaluation order
        // or partitioning that altered per-index work would show up.
        float x = static_cast<float>(i) * scale;
        for (int k = 0; k < 8; ++k) x = x * 1.0009765625f + 0.5f;
        out[static_cast<std::size_t>(i)] = x;
      }
    });
  };
  fill(ref, 0.25f);

  SetParallelThreads(4);
  constexpr int kCallers = 3;
  std::vector<std::vector<float>> outs(kCallers,
                                       std::vector<float>(kN, 0.0f));
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < 10; ++iter) fill(outs[t], 0.25f);
    });
  }
  for (std::thread& th : callers) th.join();
  for (int t = 0; t < kCallers; ++t) {
    ASSERT_EQ(outs[static_cast<std::size_t>(t)], ref) << "caller " << t;
  }
}

TEST(ThreadCount, NegativeOverrideIsClampedToNoOverride) {
  ThreadGuard guard;
  SetParallelThreads(5);
  EXPECT_EQ(ParallelThreadCount(), 5);
  // Negative means "clear the override", never an error or a bogus
  // count (the documented [0, 1024] clamp).
  SetParallelThreads(-3);
  EXPECT_GE(ParallelThreadCount(), 1);
  EXPECT_NE(ParallelThreadCount(), -3);
  SetParallelThreads(1 << 20);  // absurd request: capped at 1024
  EXPECT_EQ(ParallelThreadCount(), 1024);
}

TEST(ThreadCount, MalformedEnvIsIgnored) {
  ThreadGuard guard;
  for (const char* bad : {"", "zero", "-4", "0"}) {
    ASSERT_EQ(setenv("SHFLBW_NUM_THREADS", bad, 1), 0);
    EXPECT_GE(ParallelThreadCount(), 1) << "env=\"" << bad << "\"";
  }
  ASSERT_EQ(unsetenv("SHFLBW_NUM_THREADS"), 0);
}

}  // namespace
}  // namespace shflbw
