// Exhaustive proof that the fp16 decode-table fast path is bit-for-bit
// identical to the arithmetic reference decoder over every one of the
// 65536 bit patterns — including subnormals, +-0, +-inf and every NaN
// payload (compared as bit patterns, since NaN != NaN as floats).
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/fp16.h"

namespace shflbw {
namespace {

std::uint32_t BitsOf(float f) { return std::bit_cast<std::uint32_t>(f); }

TEST(Fp16Table, MatchesReferenceDecoderOnAllBitPatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const std::uint16_t bits = static_cast<std::uint16_t>(b);
    const float fast = Fp16::FromBits(bits).ToFloat();
    const float ref = Fp16::DecodeReference(bits);
    ASSERT_EQ(BitsOf(fast), BitsOf(ref))
        << "fp16 bits=0x" << std::hex << b << " decode mismatch: table="
        << fast << " reference=" << ref;
  }
}

TEST(Fp16Table, CoversSpecialValueClasses) {
  // Spot-check that the table region test above really exercised the
  // interesting classes (guards against a future reference refactor
  // accidentally shrinking a class to nothing).
  EXPECT_TRUE(Fp16::FromBits(0x0001u).ToFloat() > 0.0f);   // min subnormal
  EXPECT_EQ(BitsOf(Fp16::FromBits(0x8000u).ToFloat()),
            BitsOf(-0.0f));                                // negative zero
  EXPECT_TRUE(Fp16::FromBits(0x7C00u).IsInf());            // +inf
  EXPECT_TRUE(Fp16::FromBits(0xFC00u).IsInf());            // -inf
  EXPECT_TRUE(Fp16::FromBits(0x7C01u).IsNan());            // signalling NaN
  EXPECT_TRUE(Fp16::FromBits(0xFE00u).IsNan());            // quiet NaN
}

TEST(Fp16Table, BatchHelpersRoundTripEveryFinitePattern) {
  // DecodeRows / EncodeRows over the full finite range: decode all
  // values in one batch, re-encode, and require identical bits.
  std::vector<Fp16> src;
  src.reserve(65536);
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const Fp16 h = Fp16::FromBits(static_cast<std::uint16_t>(b));
    if (!h.IsNan()) src.push_back(h);
  }
  std::vector<float> decoded(src.size());
  DecodeRows(src.data(), decoded.data(), src.size());
  std::vector<Fp16> back(src.size());
  EncodeRows(decoded.data(), back.data(), decoded.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(back[i].bits(), src[i].bits()) << "index " << i;
  }
}

TEST(Fp16Table, RoundRowsMatchesScalarRoundTrip) {
  const float vals[] = {0.0f,    -0.0f,  1.0f,     65504.0f, 65520.0f,
                        1e-8f,   -3.25f, 0.333f,   1e10f,    -1e-30f,
                        2048.5f, 0.1f,   -65504.f, 5.9604645e-8f};
  constexpr std::size_t n = sizeof(vals) / sizeof(vals[0]);
  float out[n];
  RoundRows(vals, out, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(BitsOf(out[i]), BitsOf(Fp16(vals[i]).ToFloat())) << "i=" << i;
  }
}

}  // namespace
}  // namespace shflbw
