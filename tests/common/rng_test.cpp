#include "common/rng.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

namespace shflbw {
namespace {

TEST(Rng, DeterministicWithSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 20) == b.UniformInt(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(7);
  const std::vector<int> p = rng.Permutation(257);
  std::vector<int> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 257; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SparseMatrixDensityApproximate) {
  Rng rng(11);
  const Matrix<float> m = rng.SparseMatrix(200, 200, 0.25);
  const double density = 1.0 - Sparsity(m);
  EXPECT_NEAR(density, 0.25, 0.02);
}

TEST(Rng, SparseMatrixExtremes) {
  Rng rng(5);
  EXPECT_EQ(CountNonZeros(rng.SparseMatrix(10, 10, 0.0)), 0u);
  EXPECT_EQ(CountNonZeros(rng.SparseMatrix(10, 10, 1.0)), 100u);
  EXPECT_THROW(rng.SparseMatrix(4, 4, 1.5), Error);
}

TEST(Rng, NormalMatrixMoments) {
  Rng rng(13);
  const Matrix<float> m = rng.NormalMatrix(100, 100, 2.0f, 0.5f);
  double mean = 0;
  for (float v : m.storage()) mean += v;
  mean /= static_cast<double>(m.size());
  EXPECT_NEAR(mean, 2.0, 0.05);
}

}  // namespace
}  // namespace shflbw
