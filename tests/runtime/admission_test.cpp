// Overload-resilience contract of the serving layer: typed admission
// verdicts (queue-full vs infeasible-deadline vs shutdown), QoS queue
// shares, seal-time shedding of expired requests, the hysteresis
// controller walking the quality-degradation ladder, and the
// conservation law submitted == completed + shed that Drain enforces.
// The Shutdown-while-Submit-blocked and Drain-vs-shed races are
// hammered under TSan in CI.
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "quality/quality_planner.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

/// A delay-every-launch injector: keeps a replica measurably busy per
/// batch so tests can deterministically build queue depth.
std::shared_ptr<FaultInjector> SlowLaunches(double delay_seconds) {
  FaultInjectorOptions fi;
  fi.launch_delay_rate = 1.0;
  fi.launch_delay_seconds = delay_seconds;
  return std::make_shared<FaultInjector>(fi);
}

TEST(ValidateServerOptions, RejectsEachBadKnobDescriptively) {
  const auto expect_rejects = [](auto mutate, const char* what) {
    ServerOptions opts;
    mutate(opts);
    EXPECT_THROW(ValidateServerOptions(opts), Error) << what;
  };
  expect_rejects([](ServerOptions& o) { o.replicas = 0; }, "replicas");
  expect_rejects([](ServerOptions& o) { o.queue_capacity = 0; },
                 "queue_capacity");
  expect_rejects([](ServerOptions& o) { o.max_batch = 0; }, "max_batch");
  expect_rejects([](ServerOptions& o) { o.coalesce_window_seconds = -0.1; },
                 "coalesce window");
  expect_rejects([](ServerOptions& o) { o.admission.best_effort_occupancy = 0; },
                 "best_effort_occupancy zero");
  expect_rejects(
      [](ServerOptions& o) { o.admission.best_effort_occupancy = 1.5; },
      "best_effort_occupancy > 1");
  expect_rejects(
      [](ServerOptions& o) { o.admission.service_estimate_seconds = -1; },
      "negative service estimate");
  expect_rejects([](ServerOptions& o) { o.admission.ewma_alpha = 0; },
                 "ewma_alpha");
  expect_rejects(
      [](ServerOptions& o) { o.degradation.ladder_floors = {0.9, 0.9}; },
      "non-descending ladder");
  expect_rejects(
      [](ServerOptions& o) { o.degradation.ladder_floors = {1.2, 0.5}; },
      "floor out of range");
  expect_rejects(
      [](ServerOptions& o) { o.degradation.degrade_queue_fraction = 0; },
      "degrade fraction");
  expect_rejects(
      [](ServerOptions& o) {
        o.degradation.upgrade_queue_fraction =
            o.degradation.degrade_queue_fraction;
      },
      "upgrade >= degrade fraction");
  expect_rejects(
      [](ServerOptions& o) { o.degradation.deadline_slack_fraction = 1.0; },
      "slack fraction");
  expect_rejects([](ServerOptions& o) { o.degradation.hysteresis_seals = 0; },
                 "hysteresis_seals");
  expect_rejects([](ServerOptions& o) { o.degradation.latency_window = 0; },
                 "latency_window");
  expect_rejects([](ServerOptions& o) { o.retry.max_retries = -1; },
                 "max_retries");
  expect_rejects([](ServerOptions& o) { o.retry.backoff_seconds = -1; },
                 "backoff_seconds");
  expect_rejects([](ServerOptions& o) { o.retry.backoff_multiplier = 0.5; },
                 "backoff_multiplier");
  expect_rejects(
      [](ServerOptions& o) {
        o.degradation.ladder_floors = {0.95, 0.7};
        o.engine.planner.force_format = Format::kDense;
      },
      "ladder x force_format conflict");

  ServerOptions ok;
  ok.degradation.ladder_floors = {0.95, 0.85, 0.7};
  EXPECT_NO_THROW(ValidateServerOptions(ok));
}

TEST(AdmissionController, BestEffortGetsABoundedQueueShare) {
  AdmissionPolicy policy;
  policy.best_effort_occupancy = 0.5;
  AdmissionController ctl(policy, 2);
  EXPECT_EQ(ctl.CapacityFor(QoS::kStandard, 8), 8u);
  EXPECT_EQ(ctl.CapacityFor(QoS::kCritical, 8), 8u);
  EXPECT_EQ(ctl.CapacityFor(QoS::kBestEffort, 8), 4u);
  // At least one slot even when the share rounds to zero.
  EXPECT_EQ(ctl.CapacityFor(QoS::kBestEffort, 1), 1u);
}

TEST(AdmissionController, DeadlineFeasibilityUsesEtaAndFailsOpen) {
  AdmissionPolicy policy;
  AdmissionController learning(policy, 2);
  // Nothing observed yet: fail open — admission control must never
  // reject traffic it knows nothing about.
  EXPECT_TRUE(learning.DeadlineFeasible(QoS::kStandard, 1e-9, 100));

  policy.service_estimate_seconds = 0.1;
  AdmissionController ctl(policy, 2);
  // eta = 0.1 * (1 + depth/replicas); depth 4, replicas 2 -> 0.3 s.
  EXPECT_TRUE(ctl.DeadlineFeasible(QoS::kStandard, 0.31, 4));
  EXPECT_FALSE(ctl.DeadlineFeasible(QoS::kStandard, 0.29, 4));
  // No deadline, critical QoS, or the policy switched off: all feasible.
  EXPECT_TRUE(ctl.DeadlineFeasible(QoS::kStandard, 0, 4));
  EXPECT_TRUE(ctl.DeadlineFeasible(QoS::kCritical, 0.29, 4));
  policy.reject_infeasible_deadlines = false;
  AdmissionController open(policy, 2);
  EXPECT_TRUE(open.DeadlineFeasible(QoS::kStandard, 0.29, 4));
}

TEST(AdmissionController, EwmaLearnsFromObservedServiceTimes) {
  AdmissionPolicy policy;
  policy.ewma_alpha = 0.5;
  AdmissionController ctl(policy, 1);
  EXPECT_EQ(ctl.EstimatedServiceSeconds(), 0.0);
  ctl.RecordServiceTime(0.1);  // first sample taken directly
  EXPECT_DOUBLE_EQ(ctl.EstimatedServiceSeconds(), 0.1);
  ctl.RecordServiceTime(0.2);
  EXPECT_DOUBLE_EQ(ctl.EstimatedServiceSeconds(), 0.15);
}

TEST(DegradationController, HysteresisRequiresConsecutiveAgreement) {
  DegradationPolicy policy;
  policy.degrade_queue_fraction = 0.75;
  policy.upgrade_queue_fraction = 0.25;
  policy.hysteresis_seals = 3;
  DegradationController ctl(policy, 3);

  // Two pressure seals, then one in the hysteresis band: streak resets,
  // no shift.
  EXPECT_EQ(ctl.OnSeal(8, 10), 0);
  EXPECT_EQ(ctl.OnSeal(8, 10), 0);
  EXPECT_EQ(ctl.OnSeal(5, 10), 0);
  EXPECT_EQ(ctl.OnSeal(8, 10), 0);
  EXPECT_EQ(ctl.OnSeal(8, 10), 0);
  // Third consecutive pressure seal: down one level, never two at once.
  EXPECT_EQ(ctl.OnSeal(8, 10), 1);
  EXPECT_EQ(ctl.downshifts(), 1u);

  // Sustained pressure walks to the ladder bottom and saturates there.
  for (int i = 0; i < 12; ++i) ctl.OnSeal(10, 10);
  EXPECT_EQ(ctl.level(), 2);

  // Relief (low occupancy, no deadline samples = vacuous slack) climbs
  // back one hysteresis streak at a time.
  EXPECT_EQ(ctl.OnSeal(1, 10), 2);
  EXPECT_EQ(ctl.OnSeal(1, 10), 2);
  EXPECT_EQ(ctl.OnSeal(1, 10), 1);
  EXPECT_EQ(ctl.upshifts(), 1u);
}

TEST(DegradationController, MissedDeadlinesArePressureAndBlockUpgrades) {
  DegradationPolicy policy;
  policy.hysteresis_seals = 2;
  policy.deadline_slack_fraction = 0.25;
  policy.latency_window = 4;  // small ring so fresh samples dominate
  DegradationController ctl(policy, 2);

  // p99 latency/deadline > 1 counts as pressure even with an empty
  // queue: deadlines already missing is the strongest overload signal.
  for (int i = 0; i < 4; ++i) ctl.RecordCompletion(0.2, 0.1);
  EXPECT_EQ(ctl.OnSeal(0, 10), 0);
  EXPECT_EQ(ctl.OnSeal(0, 10), 1);

  // The window was cleared on the shift; completions without slack
  // (ratio above 1 - slack) block the upgrade despite low occupancy.
  EXPECT_LT(ctl.WindowP99Ratio(), 0);
  for (int i = 0; i < 4; ++i) ctl.RecordCompletion(0.09, 0.1);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ctl.OnSeal(0, 10), 1);
  // Once completions with real slack wash the ring, the upgrade goes
  // through.
  for (int i = 0; i < 4; ++i) ctl.RecordCompletion(0.05, 0.1);
  EXPECT_EQ(ctl.OnSeal(0, 10), 1);
  EXPECT_EQ(ctl.OnSeal(0, 10), 0);
}

TEST(BatchServer, RejectsProvablyInfeasibleDeadlines) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  // Operator-pinned estimate: 100 ms per request, so a 1 ms deadline is
  // provably dead on arrival even with an empty queue.
  opts.admission.service_estimate_seconds = 0.1;
  BatchServer server(SmallTransformer(), opts);

  std::future<Response> fut;
  Request doomed;
  doomed.deadline_seconds = 0.001;
  EXPECT_EQ(server.TrySubmit(doomed, &fut),
            SubmitStatus::kRejectedInfeasibleDeadline);
  EXPECT_EQ(server.Submit(doomed, &fut),
            SubmitStatus::kRejectedInfeasibleDeadline);
  // Critical traffic is exempt: the caller wants the answer regardless.
  doomed.qos = QoS::kCritical;
  ASSERT_EQ(server.Submit(doomed, &fut), SubmitStatus::kAccepted);
  EXPECT_GT(fut.get().output.size(), 0u);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_deadline, 2u);
  EXPECT_DOUBLE_EQ(stats.estimated_service_seconds, 0.1);
}

TEST(BatchServer, ShedsExpiredRequestsAtSealTime) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.max_batch = 4;
  // The window guarantees the seal happens well after the deadline.
  opts.coalesce_window_seconds = 0.05;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();

  Request doomed;
  doomed.deadline_seconds = 1e-6;  // expired long before the 50 ms seal
  Request live;  // no deadline
  Request critical;
  critical.deadline_seconds = 1e-6;
  critical.qos = QoS::kCritical;  // expired but never shed
  std::future<Response> doomed_fut = server.Submit(doomed);
  std::future<Response> live_fut = server.Submit(live);
  std::future<Response> critical_fut = server.Submit(critical);
  server.Drain();

  Response shed = doomed_fut.get();
  EXPECT_EQ(shed.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(shed.output.size(), 0u);
  EXPECT_GE(shed.queue_seconds, doomed.deadline_seconds);

  Response served = live_fut.get();
  EXPECT_EQ(served.status, ResponseStatus::kOk);
  EXPECT_GT(served.output.size(), 0u);
  // The shed request freed its width slot: only the two live requests
  // fused into the launch.
  EXPECT_EQ(served.batch_width, 2);

  Response crit = critical_fut.get();
  EXPECT_EQ(crit.status, ResponseStatus::kOk);
  EXPECT_GT(crit.output.size(), 0u);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

TEST(BatchServer, BestEffortShareSaturatesBeforeStandard) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 4;
  opts.max_batch = 1;
  opts.admission.best_effort_occupancy = 0.5;  // 2 of 4 slots
  opts.engine = SmallOptions();
  // Every layer launch sleeps 50 ms (4 layers per request), so the
  // queue depth we build below is stable for the assertions.
  opts.engine.fault_injector = SlowLaunches(0.05);
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();

  // Replica picks up one request and goes slow; two best-effort
  // requests then fill the class share.
  std::vector<std::future<Response>> futs(5);
  ASSERT_EQ(server.Submit(Request{}, &futs[0]), SubmitStatus::kAccepted);
  Request be;
  be.qos = QoS::kBestEffort;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(server.TrySubmit(be, &futs[1]), SubmitStatus::kAccepted);
  ASSERT_EQ(server.TrySubmit(be, &futs[2]), SubmitStatus::kAccepted);
  // Share exhausted for best-effort; standard still has queue room.
  EXPECT_EQ(server.TrySubmit(be, &futs[3]), SubmitStatus::kRejectedQueueFull);
  EXPECT_EQ(server.TrySubmit(Request{}, &futs[3]), SubmitStatus::kAccepted);
  server.Drain();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

TEST(BatchServer, DegradesDownTheLadderUnderPressureBitIdentically) {
  ThreadGuard guard;
  SetParallelThreads(1);
  const std::vector<double> floors = {0.95, 0.7};

  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 4;
  opts.max_batch = 1;  // one request per seal: many controller samples
  opts.engine = SmallOptions();
  opts.engine.fault_injector = SlowLaunches(0.03);
  opts.degradation.ladder_floors = floors;
  opts.degradation.degrade_queue_fraction = 0.5;  // depth >= 2 of 4
  opts.degradation.hysteresis_seals = 1;
  BatchServer server(SmallTransformer(), opts);
  ASSERT_EQ(server.levels(), 2);
  EXPECT_DOUBLE_EQ(server.LevelFloor(0), 0.95);
  EXPECT_DOUBLE_EQ(server.LevelFloor(1), 0.7);
  // Each compiled level honours its floor, and deeper levels are
  // genuinely sparser plans (strictly lower modeled latency would be
  // ideal; at minimum the plans differ).
  EXPECT_GE(server.LevelRetainedRatio(0), 0.95);
  EXPECT_GE(server.LevelRetainedRatio(1), 0.7);
  server.Warmup();

  // Saturate: the replica sleeps 30 ms per launch while four more
  // requests queue behind it, so seals after the first observe
  // occupancy >= 1/2 and the controller (hysteresis 1) downshifts.
  const std::uint64_t kSeed = 0x7700u;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i) {
    futs.push_back(server.Submit(Request{kSeed + static_cast<unsigned>(i)}));
  }
  server.Drain();

  // Reference engines, one per ladder level, serial execution.
  std::vector<std::unique_ptr<Engine>> refs;
  for (const PlannerOptions& po :
       quality::LadderPlannerOptions(SmallOptions().planner, floors)) {
    EngineOptions eo = SmallOptions();
    eo.planner = po;
    refs.push_back(std::make_unique<Engine>(SmallTransformer(), eo));
  }

  bool saw_degraded = false;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Response resp = futs[i].get();
    ASSERT_EQ(resp.status, ResponseStatus::kOk);
    ASSERT_GE(resp.plan_level, 0);
    ASSERT_LT(resp.plan_level, 2);
    saw_degraded = saw_degraded || resp.plan_level > 0;
    // Every served response's retained ratio honours its level's floor.
    EXPECT_GE(resp.retained_ratio, server.LevelFloor(resp.plan_level));
    // Bit-identity at a fixed (seed, plan_level): the degraded output
    // matches a serial single-engine run configured at that level.
    const std::uint64_t seed = kSeed + static_cast<std::uint64_t>(i);
    ASSERT_EQ(resp.output,
              refs[static_cast<std::size_t>(resp.plan_level)]->Run(seed).output)
        << "request " << i << " at level " << resp.plan_level;
  }
  EXPECT_TRUE(saw_degraded);
  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.downshifts, 1u);
  ASSERT_EQ(stats.per_level.size(), 2u);
  EXPECT_GT(stats.per_level[1], 0u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

// Satellite (c): producers blocked in Submit on a full queue must wake
// with a typed rejection when Shutdown runs — never hang. TSan-covered.
TEST(BatchServer, ShutdownWakesBlockedSubmittersWithTypedRejection) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 1;
  opts.max_batch = 1;
  opts.engine = SmallOptions();
  // Replica sleeps 200 ms per launch: the first request keeps it busy,
  // the second fills the queue, further Submits block.
  opts.engine.fault_injector = SlowLaunches(0.2);
  BatchServer server(SmallTransformer(), opts);

  std::vector<std::future<Response>> admitted(2);
  ASSERT_EQ(server.Submit(Request{}, &admitted[0]), SubmitStatus::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(server.Submit(Request{}, &admitted[1]), SubmitStatus::kAccepted);

  std::atomic<bool> blocked_started{false};
  SubmitStatus blocked_status = SubmitStatus::kAccepted;
  std::thread producer([&] {
    std::future<Response> fut;
    blocked_started.store(true);
    blocked_status = server.Submit(Request{}, &fut);
  });
  while (!blocked_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  server.Shutdown();
  producer.join();  // hangs forever here if the wakeup is broken
  EXPECT_EQ(blocked_status, SubmitStatus::kRejectedShutdown);
  // Everything admitted before shutdown still resolves.
  for (auto& f : admitted) EXPECT_GT(f.get().output.size(), 0u);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

// Satellite (c): Drain racing deadline-expired drops. Drain must count
// shed requests as retired (or it deadlocks), must not return before
// their futures are ready, and the conservation law holds throughout.
// TSan-covered.
TEST(BatchServer, DrainIsCorrectConcurrentWithDeadlineSheds) {
  ThreadGuard guard;
  SetParallelThreads(2);
  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 8;

  ServerOptions opts;
  opts.replicas = 2;
  opts.max_batch = 4;
  opts.engine = SmallOptions();
  // Admit the already-expired requests (instead of rejecting them up
  // front once the EWMA learns a service estimate): this test is about
  // seal-time shedding racing Drain, so the sheds must actually happen.
  opts.admission.reject_infeasible_deadlines = false;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();

  shflbw::Mutex futures_mu;
  std::vector<std::future<Response>> futures;
  std::atomic<bool> done{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        Request req;
        req.activation_seed = 0x5000u + static_cast<std::uint64_t>(t * 64 + i);
        // Alternate live traffic with already-expired deadlines so
        // sheds and completions interleave at every seal.
        if (i % 2 == 1) req.deadline_seconds = 1e-9;
        std::future<Response> fut;
        if (server.Submit(req, &fut) == SubmitStatus::kAccepted) {
          shflbw::MutexLock lock(futures_mu);
          futures.push_back(std::move(fut));
        }
      }
    });
  }

  std::thread drainer([&] {
    while (!done.load()) {
      std::size_t snapshot = 0;
      {
        shflbw::MutexLock lock(futures_mu);
        snapshot = futures.size();
      }
      server.Drain();
      shflbw::MutexLock lock(futures_mu);
      for (std::size_t i = 0; i < snapshot; ++i) {
        EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "Drain returned with request " << i << " unresolved";
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : submitters) t.join();
  server.Drain();
  done.store(true);
  drainer.join();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter) + 1);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
  shflbw::MutexLock lock(futures_mu);
  for (auto& f : futures) {
    Response resp = f.get();
    if (resp.status == ResponseStatus::kOk) {
      EXPECT_GT(resp.output.size(), 0u);
    } else {
      EXPECT_EQ(resp.output.size(), 0u);
    }
  }
}

// The typed TrySubmit is the only non-blocking submit path (the old
// bool shim is gone): an uncontended submit is kAccepted and the
// future resolves with real output.
TEST(BatchServer, TypedTrySubmitAccepts) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  std::future<Response> fut;
  EXPECT_EQ(server.TrySubmit(Request{}, &fut), SubmitStatus::kAccepted);
  EXPECT_GT(fut.get().output.size(), 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
