// PackedWeightCache contract: pack exactly once per (layer, format),
// and every packed representation expands back to the pruned weight it
// stores.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"
#include "runtime/weight_cache.h"

namespace shflbw {
namespace runtime {
namespace {

TEST(PackedWeightCache, PacksOncePerKey) {
  Rng rng(7);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  PackedWeightCache cache;
  EXPECT_EQ(cache.TotalPacks(), 0u);

  const PackedWeight& a = cache.GetOrPack(0, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 1u);
  const PackedWeight& b = cache.GetOrPack(0, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 1u);
  EXPECT_EQ(&a, &b);  // same cached object, no re-conversion

  cache.GetOrPack(0, Format::kVectorWise, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 2u);
  cache.GetOrPack(1, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 3u);
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_TRUE(cache.Contains(0, Format::kCsr));
  EXPECT_FALSE(cache.Contains(1, Format::kVectorWise));
}

TEST(PackWeight, RepresentationsMatchTheirPrunes) {
  Rng rng(11);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  const double density = 0.25;
  const int v = 8;

  EXPECT_EQ(PackWeight(Format::kDense, master, density, v).dense,
            RoundThroughFp16(master));
  EXPECT_EQ(PackWeight(Format::kCsr, master, density, v).csr.ToDense(),
            PruneUnstructured(master, density));
  EXPECT_EQ(PackWeight(Format::kVectorWise, master, density, v).vw.ToDense(),
            PruneVectorWise(master, density, v));
  // Shfl-BW: the packed matrix must expand to a mask-consistent subset
  // of the master in original row order.
  const ShflBwMatrix shfl =
      PackWeight(Format::kShflBw, master, density, v).shflbw;
  const Matrix<float> dense = shfl.ToDense();
  ASSERT_EQ(dense.rows(), master.rows());
  for (int r = 0; r < dense.rows(); ++r) {
    for (int c = 0; c < dense.cols(); ++c) {
      if (dense(r, c) != 0.0f) {
        EXPECT_EQ(dense(r, c), master(r, c));
      }
    }
  }
}

TEST(PackWeight, DeterministicAcrossCalls) {
  Rng rng(13);
  const Matrix<float> master = rng.NormalMatrix(64, 64);
  const PackedWeight a = PackWeight(Format::kShflBw, master, 0.25, 8);
  const PackedWeight b = PackWeight(Format::kShflBw, master, 0.25, 8);
  EXPECT_EQ(a.shflbw.ToDense(), b.shflbw.ToDense());
  EXPECT_EQ(a.shflbw.storage_to_original, b.shflbw.storage_to_original);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
