// PackedWeightCache contract: pack exactly once per (layer, format,
// density, v), every packed representation expands back to the pruned
// weight it stores, and the cache survives concurrent GetOrPack from
// many threads (the BatchServer shares one cache across replicas).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"
#include "runtime/weight_cache.h"

namespace shflbw {
namespace runtime {
namespace {

TEST(PackedWeightCache, PacksOncePerKey) {
  Rng rng(7);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  PackedWeightCache cache;
  EXPECT_EQ(cache.TotalPacks(), 0u);

  const PackedWeight& a = cache.GetOrPack(0, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 1u);
  const PackedWeight& b = cache.GetOrPack(0, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 1u);
  EXPECT_EQ(&a, &b);  // same cached object, no re-conversion

  cache.GetOrPack(0, Format::kVectorWise, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 2u);
  cache.GetOrPack(1, Format::kCsr, master, 0.25, 8);
  EXPECT_EQ(cache.TotalPacks(), 3u);
  EXPECT_EQ(cache.Size(), 3u);
  EXPECT_TRUE(cache.Contains(0, Format::kCsr, 0.25, 8));
  EXPECT_FALSE(cache.Contains(1, Format::kVectorWise, 0.25, 8));
}

// Regression: the key must include the prune parameters. A cache shared
// across engines with different density or V settings used to serve the
// first engine's packed weight to the second one silently.
TEST(PackedWeightCache, DensityAndVArePartOfTheKey) {
  Rng rng(17);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  PackedWeightCache cache;

  const PackedWeight& dense25 =
      cache.GetOrPack(0, Format::kCsr, master, 0.25, 8);
  const PackedWeight& dense50 =
      cache.GetOrPack(0, Format::kCsr, master, 0.50, 8);
  EXPECT_EQ(cache.TotalPacks(), 2u);  // distinct entries, both packed
  EXPECT_NE(&dense25, &dense50);
  // And they really hold different prunes.
  EXPECT_EQ(dense25.csr.ToDense(), PruneUnstructured(master, 0.25));
  EXPECT_EQ(dense50.csr.ToDense(), PruneUnstructured(master, 0.50));

  // Same density, different vector width: also distinct.
  cache.GetOrPack(0, Format::kVectorWise, master, 0.25, 8);
  cache.GetOrPack(0, Format::kVectorWise, master, 0.25, 16);
  EXPECT_EQ(cache.TotalPacks(), 4u);
  EXPECT_TRUE(cache.Contains(0, Format::kVectorWise, 0.25, 8));
  EXPECT_TRUE(cache.Contains(0, Format::kVectorWise, 0.25, 16));
  EXPECT_FALSE(cache.Contains(0, Format::kVectorWise, 0.50, 8));
}

// Hammer: many threads racing GetOrPack over a small key space. Each
// key must pack exactly once, every returned reference must be stable
// (same address for the same key), and the contents must be correct.
TEST(PackedWeightCache, ConcurrentGetOrPackPacksOncePerKey) {
  Rng rng(23);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  PackedWeightCache cache;

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50;
  constexpr int kLayers = 4;
  const Format kFormats[] = {Format::kDense, Format::kCsr,
                             Format::kVectorWise};
  constexpr int kNumFormats = 3;

  std::vector<std::vector<const PackedWeight*>> seen(
      kThreads, std::vector<const PackedWeight*>(kLayers * kNumFormats,
                                                 nullptr));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        // Walk the key space in a thread-dependent order to vary the
        // interleavings.
        for (int k = 0; k < kLayers * kNumFormats; ++k) {
          const int idx = (k + t * 5 + iter) % (kLayers * kNumFormats);
          const int layer = idx / kNumFormats;
          const Format format = kFormats[idx % kNumFormats];
          const PackedWeight& w =
              cache.GetOrPack(layer, format, master, 0.25, 8);
          if (seen[t][static_cast<std::size_t>(idx)] == nullptr) {
            seen[t][static_cast<std::size_t>(idx)] = &w;
          } else {
            // Stable reference: later lookups return the same object.
            ASSERT_EQ(seen[t][static_cast<std::size_t>(idx)], &w);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Exactly one pack per key despite the races...
  EXPECT_EQ(cache.TotalPacks(),
            static_cast<std::size_t>(kLayers * kNumFormats));
  EXPECT_EQ(cache.Size(), static_cast<std::size_t>(kLayers * kNumFormats));
  // ...and every thread saw the same object per key.
  for (int t = 1; t < kThreads; ++t) {
    for (int k = 0; k < kLayers * kNumFormats; ++k) {
      EXPECT_EQ(seen[0][static_cast<std::size_t>(k)],
                seen[t][static_cast<std::size_t>(k)]);
    }
  }
  // Spot-check contents survived the stampede.
  EXPECT_EQ(cache.GetOrPack(0, Format::kCsr, master, 0.25, 8).csr.ToDense(),
            PruneUnstructured(master, 0.25));
}

TEST(PackWeight, RepresentationsMatchTheirPrunes) {
  Rng rng(11);
  const Matrix<float> master = rng.NormalMatrix(32, 32);
  const double density = 0.25;
  const int v = 8;

  EXPECT_EQ(PackWeight(Format::kDense, master, density, v).dense,
            RoundThroughFp16(master));
  EXPECT_EQ(PackWeight(Format::kCsr, master, density, v).csr.ToDense(),
            PruneUnstructured(master, density));
  EXPECT_EQ(PackWeight(Format::kVectorWise, master, density, v).vw.ToDense(),
            PruneVectorWise(master, density, v));
  // Shfl-BW: the packed matrix must expand to a mask-consistent subset
  // of the master in original row order.
  const ShflBwMatrix shfl =
      PackWeight(Format::kShflBw, master, density, v).shflbw;
  const Matrix<float> dense = shfl.ToDense();
  ASSERT_EQ(dense.rows(), master.rows());
  for (int r = 0; r < dense.rows(); ++r) {
    for (int c = 0; c < dense.cols(); ++c) {
      if (dense(r, c) != 0.0f) {
        EXPECT_EQ(dense(r, c), master(r, c));
      }
    }
  }
}

TEST(PackWeight, DeterministicAcrossCalls) {
  Rng rng(13);
  const Matrix<float> master = rng.NormalMatrix(64, 64);
  const PackedWeight a = PackWeight(Format::kShflBw, master, 0.25, 8);
  const PackedWeight b = PackWeight(Format::kShflBw, master, 0.25, 8);
  EXPECT_EQ(a.shflbw.ToDense(), b.shflbw.ToDense());
  EXPECT_EQ(a.shflbw.storage_to_original, b.shflbw.storage_to_original);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
