// Planner contract tests: schedule determinism, feasibility
// constraints, force_format pinning, and the cost-model preference for
// sparse formats on the paper's sparse-friendly NLP shapes.
#include <gtest/gtest.h>

#include "common/check.h"
#include "runtime/planner.h"

namespace shflbw {
namespace runtime {
namespace {

TransformerConfig SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return cfg;
}

TEST(Planner, SamePlanTwice) {
  const ModelDesc model = ModelDesc::Transformer(SmallTransformer());
  PlannerOptions opts;
  opts.density = 0.25;
  opts.v = 8;
  const ExecutionPlan a = PlanModel(model, opts);
  const ExecutionPlan b = PlanModel(model, opts);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].format, b.layers[i].format);
    EXPECT_EQ(a.layers[i].modeled_s, b.layers[i].modeled_s);
    ASSERT_EQ(a.layers[i].candidates.size(), b.layers[i].candidates.size());
    for (std::size_t c = 0; c < a.layers[i].candidates.size(); ++c) {
      EXPECT_EQ(a.layers[i].candidates[c].format,
                b.layers[i].candidates[c].format);
      EXPECT_EQ(a.layers[i].candidates[c].modeled_s,
                b.layers[i].candidates[c].modeled_s);
    }
  }
}

TEST(Planner, PlanDiffersAcrossGpus) {
  // Not required to differ, but the gpu tag and dense baselines must
  // reflect the requested spec.
  const ModelDesc model = ModelDesc::Transformer(SmallTransformer());
  PlannerOptions v100;
  PlannerOptions t4;
  t4.arch = GpuArch::kT4;
  EXPECT_EQ(PlanModel(model, v100).gpu, "V100");
  EXPECT_EQ(PlanModel(model, t4).gpu, "T4");
}

TEST(Planner, ForceFormatPinsEveryLayer) {
  const ModelDesc model = ModelDesc::Transformer(SmallTransformer());
  PlannerOptions opts;
  opts.force_format = Format::kDense;
  const ExecutionPlan plan = PlanModel(model, opts);
  for (const LayerPlan& l : plan.layers) {
    EXPECT_EQ(l.format, Format::kDense);
    EXPECT_EQ(l.modeled_s, l.modeled_dense_s);
  }
}

TEST(Planner, SparseWinsOnNlpShapesAtQuarterDensity) {
  // The acceptance-criterion property at plan level: at 25% density the
  // auto plan must beat the all-dense plan on Transformer and GNMT.
  for (const ModelDesc& model :
       {ModelDesc::Transformer(SmallTransformer()),
        ModelDesc::Gnmt(GnmtConfig{64, 32, 2, 2, 0})}) {
    PlannerOptions opts;
    opts.density = 0.25;
    opts.v = 8;
    const ExecutionPlan plan = PlanModel(model, opts);
    EXPECT_LT(plan.ModeledTotalSeconds(), plan.ModeledDenseSeconds())
        << model.name;
  }
}

TEST(Planner, ExcludedFormatsAreNeverSelected) {
  const ModelDesc model = ModelDesc::Transformer(SmallTransformer());
  PlannerOptions opts;
  opts.density = 0.25;
  opts.v = 8;
  opts.exclude = {Format::kBsr, Format::kCsr};
  const ExecutionPlan plan = PlanModel(model, opts);
  for (const LayerPlan& l : plan.layers) {
    EXPECT_NE(l.format, Format::kBsr) << l.name;
    EXPECT_NE(l.format, Format::kCsr) << l.name;
  }
  // Dense is the universal fallback and cannot be excluded.
  opts.exclude = AllFormats();
  for (const LayerPlan& l : PlanModel(model, opts).layers) {
    EXPECT_EQ(l.format, Format::kDense) << l.name;
  }
}

TEST(Planner, Balanced24NeedsA100AndHalfDensity) {
  LayerDesc l;
  l.gemm = {"fc", 64, 32, 64};
  PlannerOptions opts;
  opts.density = 0.5;
  opts.arch = GpuArch::kV100;
  std::string why;
  EXPECT_FALSE(
      ModeledLayerSeconds(l, Format::kBalanced24, opts, &why).has_value());
  EXPECT_EQ(why, "sparse tensor-core is A100-only");

  opts.arch = GpuArch::kA100;
  EXPECT_TRUE(
      ModeledLayerSeconds(l, Format::kBalanced24, opts).has_value());

  opts.density = 0.25;
  EXPECT_FALSE(
      ModeledLayerSeconds(l, Format::kBalanced24, opts, &why).has_value());
  EXPECT_EQ(why, "2:4 fixes density at 0.5");
}

TEST(Planner, VectorFormatsNeedDivisibleM) {
  LayerDesc l;
  l.gemm = {"odd", 60, 32, 64};  // 60 % 8 != 0
  PlannerOptions opts;
  opts.v = 8;
  std::string why;
  for (Format f : {Format::kVectorWise, Format::kShflBw, Format::kBsr}) {
    EXPECT_FALSE(ModeledLayerSeconds(l, f, opts, &why).has_value())
        << FormatName(f);
  }
  // Dense and CSR stay feasible, so planning still succeeds.
  const LayerPlan plan = PlanLayer(l, 0, opts);
  EXPECT_TRUE(plan.format == Format::kDense || plan.format == Format::kCsr);
}

TEST(Planner, ConvLayersOnlyOfferConvCapableFormats) {
  const ModelDesc model = ModelDesc::ResNet50(ResNet50Config{1, 32});
  PlannerOptions opts;
  opts.density = 0.25;
  opts.v = 8;
  const ExecutionPlan plan = PlanModel(model, opts);
  ASSERT_FALSE(plan.layers.empty());
  for (const LayerPlan& l : plan.layers) {
    for (const FormatCandidate& c : l.candidates) {
      if (c.format == Format::kCsr || c.format == Format::kBsr ||
          c.format == Format::kBalanced24) {
        EXPECT_FALSE(c.feasible) << l.name << " " << FormatName(c.format);
      }
    }
    EXPECT_TRUE(l.format == Format::kDense ||
                l.format == Format::kVectorWise ||
                l.format == Format::kShflBw);
  }
}

// Regression coverage for option validation: every reject must throw a
// descriptive shflbw::Error naming the offending knob instead of
// silently misbehaving (e.g. density 0 used to reach the pruners).
TEST(Planner, RejectsInvalidOptionsWithDescriptiveErrors) {
  const ModelDesc model = ModelDesc::Transformer(SmallTransformer());
  const auto expect_reject = [&](PlannerOptions opts,
                                 const std::string& needle) {
    try {
      PlanModel(model, opts);
      FAIL() << "expected reject mentioning '" << needle << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  {
    PlannerOptions opts;
    opts.density = 0.0;
    expect_reject(opts, "density");
  }
  {
    PlannerOptions opts;
    opts.density = 1.5;
    expect_reject(opts, "density");
  }
  {
    PlannerOptions opts;
    opts.density = -0.25;
    expect_reject(opts, "density");
  }
  {
    PlannerOptions opts;
    opts.v = 0;
    expect_reject(opts, "v");
  }
  {
    PlannerOptions opts;
    opts.v = -8;
    expect_reject(opts, "v");
  }
  {
    PlannerOptions opts;
    opts.autotune_top_k = 0;
    expect_reject(opts, "autotune_top_k");
  }
  // Boundary values stay accepted: density 1.0 (dense), v 1, top_k 1.
  PlannerOptions ok;
  ok.density = 1.0;
  ok.v = 1;
  ok.autotune_top_k = 1;
  EXPECT_NO_THROW(PlanModel(model, ok));
}

TEST(Format, NamesRoundTrip) {
  for (Format f : AllFormats()) {
    EXPECT_EQ(ParseFormat(FormatName(f)), f);
  }
  EXPECT_THROW(ParseFormat("nope"), Error);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
