// statusz + watchdog integration: the report structure renders
// consistently as text and JSON (the JSON side validated by the strict
// benchdiff parser — the same consumer the CI regression gate uses),
// BatchServer::Status() exposes every operational section, DumpStatus
// writes the text/JSON pair, and — the acceptance path — a replica
// deterministically wedged via fault-injected launch delay trips the
// watchdog within its budget and leaves a postmortem on disk naming
// the stalled replica.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchdiff/benchdiff.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "obs/obs_config.h"
#include "obs/statusz.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Files this test writes; removed even on assertion failure.
class TempFiles {
 public:
  std::string Track(const std::string& path) {
    paths_.push_back(path);
    return path;
  }
  ~TempFiles() {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }

 private:
  std::vector<std::string> paths_;
};

TEST(StatusReport, TextAndJsonRenderTheSameContent) {
  obs::StatusReport report;
  report.title = "unit \"quoted\" title";
  obs::StatusSection& s = report.AddSection("alpha");
  s.AddText("mode", "serving\nline2");
  s.AddNumber("depth", 3.5);
  obs::StatusTable& t = s.AddTable("rows", {"name", "value"});
  t.rows.push_back({"r0", "1"});
  t.rows.push_back({"r1", "2"});

  const std::string text = report.RenderText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
  EXPECT_NE(text.find("r1"), std::string::npos);

  std::string err;
  benchdiff::JsonValue root;
  ASSERT_TRUE(benchdiff::ParseJson(report.RenderJson(), &root, &err)) << err;
  const benchdiff::JsonValue* title = root.Find("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->str, "unit \"quoted\" title");
  const benchdiff::JsonValue* sections = root.Find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_EQ(sections->type, benchdiff::JsonValue::Type::kArray);
  ASSERT_EQ(sections->array.size(), 1u);
}

TEST(BatchServer, StatusExposesEveryOperationalSection) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  for (int i = 0; i < 4; ++i) (void)server.Submit(Request{}).get();

  const obs::StatusReport report = server.Status();
  std::set<std::string> names;
  for (const obs::StatusSection& s : report.sections) names.insert(s.name);
  for (const char* want :
       {"build", "server", "ladder", "replicas", "weight_cache",
        "worker_pool", "watchdog", "flight_recorder", "plan"}) {
    EXPECT_EQ(names.count(want), 1u) << "missing section " << want;
  }

  // The two replica scheduler threads appear (and stay registered for
  // the server's lifetime) in the replicas table.
  const std::string text = server.StatusText();
  EXPECT_NE(text.find("replica0"), std::string::npos);
  EXPECT_NE(text.find("replica1"), std::string::npos);

  std::string err;
  benchdiff::JsonValue root;
  ASSERT_TRUE(benchdiff::ParseJson(server.StatusJson(), &root, &err)) << err;
}

TEST(BatchServer, DumpStatusWritesTextAndJson) {
  ThreadGuard guard;
  SetParallelThreads(1);
  TempFiles tmp;
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  (void)server.Submit(Request{}).get();

  const std::string base = "statusz_test_dump";
  ASSERT_TRUE(server.DumpStatus(base));
  const std::string text = ReadWholeFile(tmp.Track(base + ".txt"));
  const std::string json = ReadWholeFile(tmp.Track(base + ".json"));
  EXPECT_NE(text.find("replica0"), std::string::npos);
  std::string err;
  benchdiff::JsonValue root;
  ASSERT_TRUE(benchdiff::ParseJson(json, &root, &err)) << err;

  ASSERT_TRUE(
      server.DumpFlightRecorder(tmp.Track("statusz_test_flight.json")));
  benchdiff::JsonValue flight;
  ASSERT_TRUE(benchdiff::ParseJson(ReadWholeFile("statusz_test_flight.json"),
                                   &flight, &err))
      << err;
  ASSERT_NE(flight.Find("events"), nullptr);
}

// The ISSUE acceptance path: a replica wedged mid-launch (fault
// injector delays every kernel launch well past the stall budget) is
// detected by the watchdog within its budget, the stall is counted,
// and the postmortem statusz + flight dumps land on disk naming the
// stalled replica.
TEST(BatchServer, WedgedReplicaTripsWatchdogAndDumpsPostmortem) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "flight recorder compiled out";
  }
  ThreadGuard guard;
  SetParallelThreads(1);
  TempFiles tmp;

  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  FaultInjectorOptions fault;
  fault.launch_delay_rate = 1.0;   // every launch wedges...
  fault.launch_delay_seconds = 0.4;  // ...for >> the stall budget
  opts.engine.fault_injector = std::make_shared<FaultInjector>(fault);
  opts.watchdog.enabled = true;
  opts.watchdog.stall_budget_seconds = 0.05;
  opts.watchdog.poll_interval_seconds = 0.01;
  opts.watchdog.dump_path = "statusz_test_wedge";
  tmp.Track("statusz_test_wedge_statusz.txt");
  tmp.Track("statusz_test_wedge_statusz.json");
  tmp.Track("statusz_test_wedge_flight.json");

  BatchServer server(SmallTransformer(), opts);
  const double begin = NowSeconds();
  (void)server.Submit(Request{}).get();  // wedges inside the launch
  server.Drain();

  const obs::Watchdog* dog = server.watchdog();
  ASSERT_NE(dog, nullptr);
  EXPECT_GE(dog->stalls(), 1u);
  // Detection happened while the 0.4 s launch was still wedged — i.e.
  // within the configured budget + poll jitter, not after the fact.
  EXPECT_LT(NowSeconds() - begin, 10.0);

  const std::string text =
      ReadWholeFile("statusz_test_wedge_statusz.txt");
  ASSERT_FALSE(text.empty()) << "stall postmortem was not written";
  EXPECT_NE(text.find("replica0"), std::string::npos);

  std::string err;
  benchdiff::JsonValue root;
  ASSERT_TRUE(benchdiff::ParseJson(
      ReadWholeFile("statusz_test_wedge_statusz.json"), &root, &err))
      << err;

  const std::string flight =
      ReadWholeFile("statusz_test_wedge_flight.json");
  ASSERT_FALSE(flight.empty());
  EXPECT_NE(flight.find("\"stall\""), std::string::npos);
  EXPECT_NE(flight.find("replica0"), std::string::npos);

  // The server recovered: the wedged launch completed and stats add up.
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, stats.submitted);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
