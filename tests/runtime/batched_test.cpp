// Fused-batch contract: Engine::RunBatched({s1..sK}) de-interleaved
// output j is bit-identical to a serial single-request Run(sj) — for
// every format the planner can select, at 1 / 2 / max threads, at any
// batch width, across mixed widths on one engine (no stale scratch
// leakage), and through conv layers (batch-block fusion) as well as
// GEMM layers (column-block fusion).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "runtime/engine.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

/// 1 / 2 / "max" — the hardware's own concurrency, plus 8 so multi-
/// worker schedules are exercised even on small CI boxes.
std::vector<int> ThreadSweep() {
  std::vector<int> sweep = {1, 2, 8};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 8) sweep.push_back(hw);
  return sweep;
}

/// One GEMM layer shaped so every format is feasible: m and k divisible
/// by V (BSR / VW / Shfl-BW) and k divisible by 4 (2:4).
ModelDesc SingleGemmModel() {
  ModelDesc model;
  model.name = "single-gemm";
  LayerDesc l;
  l.kind = LayerKind::kGemm;
  l.gemm = GemmLayerSpec{"gemm", /*m=*/32, /*n=*/16, /*k=*/32};
  l.repeat = 1;
  model.layers.push_back(l);
  return model;
}

/// Options pinning `format`, with the prune/arch knobs each format
/// needs to be feasible (2:4 requires the A100 at density exactly 0.5).
EngineOptions ForcedOptions(Format format) {
  EngineOptions opts;
  opts.planner.v = 8;
  opts.planner.force_format = format;
  if (format == Format::kBalanced24) {
    opts.planner.arch = GpuArch::kA100;
    opts.planner.density = 0.5;
  } else {
    opts.planner.density = 0.25;
  }
  return opts;
}

std::vector<std::uint64_t> Seeds(int count) {
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < count; ++i) {
    seeds.push_back(0xba7cULL + static_cast<std::uint64_t>(i) * 0x9e37ULL);
  }
  return seeds;
}

/// Serial width-1 references for `seeds` on a fresh single-threaded
/// engine of the same (model, options).
std::vector<Matrix<float>> SerialRefs(const ModelDesc& model,
                                      const EngineOptions& opts,
                                      const std::vector<std::uint64_t>& seeds) {
  SetParallelThreads(1);
  Engine engine(model, opts);
  std::vector<Matrix<float>> refs;
  for (std::uint64_t s : seeds) refs.push_back(engine.Run(s).output);
  return refs;
}

void ExpectFusedMatchesSerial(const ModelDesc& model,
                              const EngineOptions& opts, int max_width,
                              const std::string& label) {
  const std::vector<std::uint64_t> seeds = Seeds(max_width);
  const std::vector<Matrix<float>> refs = SerialRefs(model, opts, seeds);
  for (int threads : ThreadSweep()) {
    SetParallelThreads(threads);
    Engine engine(model, opts);
    for (int width : {1, 2, max_width}) {
      const std::vector<std::uint64_t> batch(seeds.begin(),
                                             seeds.begin() + width);
      BatchRunResult run = engine.RunBatched(batch);
      ASSERT_EQ(run.outputs.size(), static_cast<std::size_t>(width));
      EXPECT_EQ(run.width, width);
      // One fused launch per layer, not K.
      ASSERT_EQ(run.layers.size(), model.layers.size());
      for (int j = 0; j < width; ++j) {
        ASSERT_EQ(run.outputs[static_cast<std::size_t>(j)],
                  refs[static_cast<std::size_t>(j)])
            << label << ": request " << j << " of width " << width << " at "
            << threads << " thread(s)";
      }
    }
  }
}

TEST(RunBatched, BitIdenticalPerFormatAnyThreadsAnyWidth) {
  ThreadGuard guard;
  for (Format format : AllFormats()) {
    ExpectFusedMatchesSerial(SingleGemmModel(), ForcedOptions(format),
                             /*max_width=*/5, FormatName(format));
  }
}

TEST(RunBatched, BitIdenticalOnMultiLayerAutoPlan) {
  ThreadGuard guard;
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  ExpectFusedMatchesSerial(ModelDesc::Transformer(cfg), opts,
                           /*max_width=*/4, "transformer-auto");
}

/// Two small conv layers (ResNet-style 3x3 stack, out_c divisible by V
/// so the sparse conv formats are feasible) — the full ResNet50 is far
/// too slow to sweep widths x threads over.
ModelDesc TinyConvModel() {
  ModelDesc model;
  model.name = "tiny-conv";
  ConvLayerSpec c1{"conv1", /*batch=*/1, /*in_c=*/8, /*in_h=*/12,
                   /*in_w=*/12, /*out_c=*/16, /*kh=*/3, /*kw=*/3,
                   /*stride=*/1, /*pad=*/1, /*repeat=*/1};
  ConvLayerSpec c2{"conv2", /*batch=*/1, /*in_c=*/16, /*in_h=*/12,
                   /*in_w=*/12, /*out_c=*/8, /*kh=*/3, /*kw=*/3,
                   /*stride=*/2, /*pad=*/1, /*repeat=*/1};
  for (const ConvLayerSpec& c : {c1, c2}) {
    LayerDesc l;
    l.kind = LayerKind::kConv;
    l.conv = c;
    l.repeat = c.repeat;
    model.layers.push_back(l);
  }
  return model;
}

TEST(RunBatched, BitIdenticalThroughConvLayers) {
  ThreadGuard guard;
  const ModelDesc model = TinyConvModel();
  // Conv layers plan over dense / vw / shfl-bw; cover the auto plan and
  // every forced conv-capable format.
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  ExpectFusedMatchesSerial(model, opts, /*max_width=*/3, "conv-auto");
  for (Format format :
       {Format::kDense, Format::kVectorWise, Format::kShflBw}) {
    EngineOptions forced = opts;
    forced.planner.force_format = format;
    ExpectFusedMatchesSerial(model, forced, /*max_width=*/2,
                             "conv-" + FormatName(format));
  }
}

// Regression for scratch reuse across mixed batch widths: after a wide
// batch, a narrower batch on the SAME engine must re-shape (not merely
// re-capacity) the fused input scratch — stale tail columns from the
// wide batch would otherwise survive into the narrow launch and corrupt
// stats or RMS normalization.
TEST(RunBatched, MixedWidthsOnOneEngineNeverLeakStaleColumns) {
  ThreadGuard guard;
  const ModelDesc model = SingleGemmModel();
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  const std::vector<std::uint64_t> seeds = Seeds(6);
  const std::vector<Matrix<float>> refs = SerialRefs(model, opts, seeds);

  SetParallelThreads(2);
  Engine engine(model, opts);
  // Shrinking width sequence on one engine: 6 -> 3 -> 1 -> 4.
  for (int width : {6, 3, 1, 4}) {
    const std::vector<std::uint64_t> batch(seeds.begin(),
                                           seeds.begin() + width);
    BatchRunResult run = engine.RunBatched(batch);
    for (int j = 0; j < width; ++j) {
      ASSERT_EQ(run.outputs[static_cast<std::size_t>(j)],
                refs[static_cast<std::size_t>(j)])
          << "width " << width << " request " << j;
    }
  }
  // And Run() (width 1) after a wide batch sees no residue either.
  EXPECT_EQ(engine.Run(seeds[0]).output, refs[0]);
}

TEST(RunBatched, SteadyStatePacksNothingAndReportsFusedWork) {
  const ModelDesc model = SingleGemmModel();
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  Engine engine(model, opts);
  const BatchRunResult first = engine.RunBatched(Seeds(4));
  EXPECT_GT(first.packs_performed, 0u);
  const BatchRunResult second = engine.RunBatched(Seeds(4));
  EXPECT_EQ(second.packs_performed, 0u);
  ASSERT_EQ(second.layers.size(), 1u);
  // The single record covers the fused 4-wide launch: 4x the useful
  // FLOPs of a width-1 run of the same layer.
  const RunResult single = engine.Run(Seeds(1)[0]);
  EXPECT_DOUBLE_EQ(second.layers[0].useful_flops,
                   4.0 * single.layers[0].useful_flops);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
