// Engine contract: pack-once steady state (second Run performs zero
// conversions), bit-identical outputs at 1/2/8 threads, deterministic
// results across engine instances, and end-to-end execution of all
// three evaluation models.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "runtime/engine.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

TEST(Engine, SecondRunPerformsZeroConversions) {
  Engine engine(SmallTransformer(), SmallOptions());
  const RunResult first = engine.Run();
  EXPECT_GT(first.packs_performed, 0u);
  const std::size_t packs_after_first = engine.cache().TotalPacks();

  const RunResult second = engine.Run();
  EXPECT_EQ(second.packs_performed, 0u);
  EXPECT_EQ(engine.cache().TotalPacks(), packs_after_first);
  // Steady-state output is identical to the first run's.
  EXPECT_EQ(first.output, second.output);
}

TEST(Engine, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  SetParallelThreads(1);
  Engine e1(SmallTransformer(), SmallOptions());
  const Matrix<float> ref = e1.Run().output;
  for (int threads : {2, 8}) {
    SetParallelThreads(threads);
    Engine en(SmallTransformer(), SmallOptions());
    EXPECT_EQ(en.Run().output, ref) << threads << " threads";
  }
}

TEST(Engine, DeterministicAcrossInstances) {
  Engine a(SmallTransformer(), SmallOptions());
  Engine b(SmallTransformer(), SmallOptions());
  EXPECT_EQ(a.Run().output, b.Run().output);
  // Same plan, too.
  const ExecutionPlan& pa = a.Plan();
  const ExecutionPlan& pb = b.Plan();
  ASSERT_EQ(pa.layers.size(), pb.layers.size());
  for (std::size_t i = 0; i < pa.layers.size(); ++i) {
    EXPECT_EQ(pa.layers[i].format, pb.layers[i].format);
  }
}

TEST(Engine, RunsAllThreeEvaluationModels) {
  const std::vector<ModelDesc> models = {
      SmallTransformer(),
      ModelDesc::Gnmt(GnmtConfig{64, 32, 2, 2, 0}),
      ModelDesc::ResNet50(ResNet50Config{1, 32}),
  };
  for (const ModelDesc& model : models) {
    Engine engine(model, SmallOptions());
    const RunResult r = engine.Run();
    EXPECT_EQ(r.layers.size(), model.layers.size()) << model.name;
    EXPECT_GT(r.output.size(), 0u) << model.name;
    for (const LayerRunRecord& rec : r.layers) {
      EXPECT_GT(rec.useful_flops, 0.0) << model.name << " " << rec.name;
      EXPECT_GT(rec.modeled_s, 0.0) << model.name << " " << rec.name;
    }
    // Outputs must be finite (the inter-layer RMS normalization keeps
    // activations inside fp16 range).
    for (float x : r.output.storage()) ASSERT_TRUE(std::isfinite(x));
  }
}

TEST(Engine, ForcedDenseMatchesPlan) {
  EngineOptions opts = SmallOptions();
  opts.planner.force_format = Format::kDense;
  Engine engine(SmallTransformer(), opts);
  const RunResult r = engine.Run();
  for (const LayerRunRecord& rec : r.layers) {
    EXPECT_EQ(rec.format, Format::kDense);
  }
}

TEST(Engine, AutotunePacksAtPlanTimeAndKeepsRunsCacheOnly) {
  EngineOptions opts = SmallOptions();
  opts.planner.autotune = true;
  opts.planner.autotune_top_k = 2;
  Engine engine(SmallTransformer(), opts);
  engine.Plan();  // autotune packs the timed candidates
  const std::size_t packs_after_plan = engine.cache().TotalPacks();
  EXPECT_GT(packs_after_plan, 0u);
  const RunResult r = engine.Run();
  // Every executed format was already packed during autotune.
  EXPECT_EQ(r.packs_performed, 0u);
  // Timed candidates carry their measurements.
  bool any_measured = false;
  for (const LayerPlan& lp : engine.Plan().layers) {
    for (const FormatCandidate& c : lp.candidates) {
      if (c.measured_s > 0) any_measured = true;
    }
  }
  EXPECT_TRUE(any_measured);
}

// Regression: with autotune_top_k far above the number of feasible
// candidates, the plan summary must still only report genuinely
// measured winners — a candidate skipped by feasibility rules keeps
// measured_s == 0 and can never surface as an "autotuned" choice.
// With a telemetry sink attached, every plan layer publishes its
// planned-vs-measured drift after a run: modeled seconds are set at
// plan registration, measured seconds and the drift ratio after the
// first launch. One gauge per plan layer, all strictly positive.
// Kernel profiling compiles out entirely at SHFLBW_OBS=0.
#if SHFLBW_OBS
TEST(Engine, KernelProfilingPublishesDriftPerPlanLayer) {
  ThreadGuard guard;
  SetParallelThreads(1);
  EngineOptions opts = SmallOptions();
  opts.telemetry = std::make_shared<obs::Telemetry>(obs::TelemetryOptions{});
  Engine engine(SmallTransformer(), opts);
  (void)engine.Run();

  obs::Registry& reg = opts.telemetry->registry();
  std::size_t drift_rows = 0;
  for (const std::string& name : reg.Names()) {
    if (name.rfind("shflbw_plan_drift_ratio{", 0) != 0) continue;
    ++drift_rows;
    const obs::Gauge* drift = reg.FindGauge(name);
    ASSERT_NE(drift, nullptr) << name;
    EXPECT_GT(drift->Value(), 0.0) << name;
  }
  EXPECT_EQ(drift_rows, engine.Plan().layers.size());
  // The companion rows follow the same keying, so modeled and measured
  // seconds for each layer line up with its drift gauge.
  for (const std::string& name : reg.Names()) {
    if (name.rfind("shflbw_plan_drift_ratio{", 0) != 0) continue;
    const std::string key = name.substr(std::string("shflbw_plan_drift_ratio").size());
    const obs::Gauge* modeled = reg.FindGauge("shflbw_plan_modeled_seconds" + key);
    const obs::Gauge* measured = reg.FindGauge("shflbw_plan_measured_seconds" + key);
    ASSERT_NE(modeled, nullptr) << key;
    ASSERT_NE(measured, nullptr) << key;
    EXPECT_GT(modeled->Value(), 0.0);
    EXPECT_GT(measured->Value(), 0.0);
  }
}
#endif  // SHFLBW_OBS

TEST(Engine, AutotuneReportsOnlyGenuinelyMeasuredWinners) {
  EngineOptions opts = SmallOptions();
  opts.planner.autotune = true;
  opts.planner.autotune_top_k = 1000;  // clamped to the feasible count
  Engine engine(SmallTransformer(), opts);
  for (const LayerPlan& lp : engine.Plan().layers) {
    int feasible = 0;
    int measured = 0;
    for (const FormatCandidate& c : lp.candidates) {
      if (c.feasible) ++feasible;
      if (c.measured_s > 0) ++measured;
      // Infeasible candidates are never timed.
      if (!c.feasible) {
        EXPECT_EQ(c.measured_s, 0.0) << lp.name;
      }
      // No measurement can exceed the feasible candidate count, no
      // matter how large top_k was.
      EXPECT_LE(measured, feasible) << lp.name;
    }
    if (lp.autotuned) {
      // The reported winner is one of the measured candidates, with a
      // real (> 0) sample behind it.
      bool winner_measured = false;
      for (const FormatCandidate& c : lp.candidates) {
        if (c.format == lp.format && c.measured_s > 0) {
          winner_measured = true;
        }
      }
      EXPECT_TRUE(winner_measured) << lp.name;
      EXPECT_GE(measured, 2) << lp.name;
    }
  }
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
