// BatchServer contract: every request's output is bit-identical to a
// standalone serial Engine run with the same seed (including when
// coalesced into a fused multi-request launch), the shared cache packs
// each (layer, format) exactly once across all replicas, the bounded
// queue applies backpressure, Drain never returns with requests in
// flight, and shutdown resolves every admitted request.
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

TEST(BatchServer, OutputsBitIdenticalToSerialEngine) {
  ThreadGuard guard;
  constexpr int kRequests = 12;

  // Reference: a standalone engine, serial execution, one run per seed.
  SetParallelThreads(1);
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    Engine engine(SmallTransformer(), SmallOptions());
    for (int i = 0; i < kRequests; ++i) {
      const std::uint64_t seed = 0x1000u + static_cast<std::uint64_t>(i);
      ref.emplace(seed, engine.Run(seed).output);
    }
  }

  // Served: 3 replicas, parallel kernels, concurrent in-flight runs.
  SetParallelThreads(4);
  ServerOptions opts;
  opts.replicas = 3;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0x1000u + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }
  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    const std::uint64_t seed = 0x1000u + static_cast<std::uint64_t>(i);
    EXPECT_EQ(resp.id, static_cast<std::uint64_t>(i));
    ASSERT_EQ(resp.output, ref.at(seed)) << "request " << i;
  }
}

TEST(BatchServer, ReplicasShareOnePackPhase) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 3;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  const std::size_t packs_after_warmup = server.cache().TotalPacks();
  EXPECT_GT(packs_after_warmup, 0u);
  // One entry per planned (layer, format) — N replicas do not multiply
  // the pack phase.
  EXPECT_LE(packs_after_warmup, server.Plan().layers.size());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(server.Submit(Request{0x2000u + i}));
  }
  for (auto& f : futures) {
    // Steady state: no request triggers a conversion.
    EXPECT_EQ(f.get().packs_performed, 0u);
  }
  EXPECT_EQ(server.cache().TotalPacks(), packs_after_warmup);
}

TEST(BatchServer, SchedulerUsesMultipleReplicas) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(server.Submit(Request{}));
  server.Drain();
  const ServerStats stats = server.Stats();
  // 16 requests + the warmup request (Warmup goes through the queue).
  EXPECT_EQ(stats.submitted, 17u);
  EXPECT_EQ(stats.completed, 17u);
  ASSERT_EQ(stats.per_replica.size(), 2u);
  EXPECT_EQ(stats.per_replica[0] + stats.per_replica[1], 17u);
  // With 16 queued requests and 2 replicas popping as they go idle,
  // both must have served something.
  EXPECT_GT(stats.per_replica[0], 0u);
  EXPECT_GT(stats.per_replica[1], 0u);
  for (auto& f : futures) (void)f.get();
}

TEST(BatchServer, TrySubmitReportsFullQueue) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  // Saturate: 1 replica busy + capacity-2 queue. Eventually TrySubmit
  // must observe a full queue and refuse.
  std::vector<std::future<Response>> accepted;
  bool saw_full = false;
  for (int i = 0; i < 64 && !saw_full; ++i) {
    std::future<Response> fut;
    const SubmitStatus status = server.TrySubmit(Request{}, &fut);
    if (status == SubmitStatus::kAccepted) {
      accepted.push_back(std::move(fut));
    } else {
      // The typed status distinguishes a full queue from shutdown.
      EXPECT_EQ(status, SubmitStatus::kRejectedQueueFull);
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
  for (auto& f : accepted) (void)f.get();  // all admitted requests resolve
}

TEST(BatchServer, ShutdownDrainsAdmittedRequestsAndRejectsNew) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  auto server = std::make_unique<BatchServer>(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server->Submit(Request{}));
  server->Shutdown();
  for (auto& f : futures) {
    EXPECT_GT(f.get().output.size(), 0u);  // resolved, not abandoned
  }
  EXPECT_THROW(server->Submit(Request{}), std::runtime_error);
  std::future<Response> fut;
  EXPECT_EQ(server->TrySubmit(Request{}, &fut),
            SubmitStatus::kRejectedShutdown);
  EXPECT_EQ(server->Submit(Request{}, &fut), SubmitStatus::kRejectedShutdown);
  server.reset();  // double shutdown via destructor is safe
}

TEST(BatchServer, CoalescesRequestsIntoFusedLaunches) {
  ThreadGuard guard;
  SetParallelThreads(2);
  constexpr int kRequests = 8;

  SetParallelThreads(1);
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    Engine engine(SmallTransformer(), SmallOptions());
    for (int i = 0; i < kRequests; ++i) {
      const std::uint64_t seed = 0x3000u + static_cast<std::uint64_t>(i);
      ref.emplace(seed, engine.Run(seed).output);
    }
  }
  SetParallelThreads(2);

  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.max_batch = kRequests;
  // Generous window: the replica holds its first partial batch open
  // until all kRequests (== max_batch) are queued, making the fused
  // width deterministic.
  opts.coalesce_window_seconds = 5.0;
  BatchServer server(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0x3000u + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }
  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    const std::uint64_t seed = 0x3000u + static_cast<std::uint64_t>(i);
    // All eight fused into one launch, each output still bit-identical
    // to its serial single-request run.
    EXPECT_EQ(resp.batch_width, kRequests) << "request " << i;
    ASSERT_EQ(resp.output, ref.at(seed)) << "request " << i;
  }
}

TEST(BatchServer, CoalescingWindowLaunchesPartialBatches) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.max_batch = 64;  // never reachable with 3 requests
  opts.coalesce_window_seconds = 0.05;
  BatchServer server(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(server.Submit(Request{}));
  // The window expires with only 3 queued; the batch launches anyway —
  // a partial batch must never wait forever for a full one.
  for (auto& f : futures) {
    Response resp = f.get();
    EXPECT_GE(resp.batch_width, 1);
    EXPECT_LE(resp.batch_width, 3);
  }
}

// Regression: with queue_capacity < max_batch the seal threshold must
// clamp to the capacity — a capacity-full queue is as fused as the
// server can get, so it must launch immediately instead of stalling
// out the whole coalescing window on an unreachable max_batch.
TEST(BatchServer, WindowSealClampsToQueueCapacity) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.queue_capacity = 2;
  opts.max_batch = 8;          // unreachable: Submit blocks at 2
  opts.coalesce_window_seconds = 5.0;  // would dominate if waited out
  BatchServer server(SmallTransformer(), opts);
  const double t0 = NowSeconds();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.Submit(Request{}));
  for (auto& f : futures) {
    EXPECT_LE(f.get().batch_width, 2);
  }
  // Unfixed, every launch waits the full 5 s window (>= 10 s total);
  // sealed-at-capacity launches finish in milliseconds.
  EXPECT_LT(NowSeconds() - t0, 4.0);
}

// Regression (TSan-covered): Drain must re-check completed == submitted
// under the queue mutex on every wakeup, so a Submit racing the wait
// can never let Drain return with that request still in flight.
// Hammered here with concurrent submitters + concurrent drainers; every
// Drain return asserts that all futures whose submission
// happened-before the Drain call are already resolved.
TEST(BatchServer, DrainNeverReturnsEarlyUnderConcurrentSubmits) {
  ThreadGuard guard;
  SetParallelThreads(2);
  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 6;

  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  opts.max_batch = 4;
  BatchServer server(SmallTransformer(), opts);

  shflbw::Mutex futures_mu;
  std::vector<std::future<Response>> futures;
  std::atomic<bool> done{false};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        Request req;
        req.activation_seed =
            0x4000u + static_cast<std::uint64_t>(t * 100 + i);
        std::future<Response> fut = server.Submit(req);
        shflbw::MutexLock lock(futures_mu);
        futures.push_back(std::move(fut));
      }
    });
  }

  std::thread drainer([&] {
    while (!done.load()) {
      // Snapshot the futures submitted so far, then Drain: when Drain
      // returns, every one of them must already be resolved (an early
      // return would surface here as a non-ready future).
      std::vector<std::size_t> snapshot_ids;
      {
        shflbw::MutexLock lock(futures_mu);
        for (std::size_t i = 0; i < futures.size(); ++i) {
          snapshot_ids.push_back(i);
        }
      }
      server.Drain();
      shflbw::MutexLock lock(futures_mu);
      for (std::size_t i : snapshot_ids) {
        EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                  std::future_status::ready)
            << "Drain returned with request " << i << " still in flight";
      }
      std::this_thread::yield();
    }
  });

  for (std::thread& t : submitters) t.join();
  server.Drain();
  done.store(true);
  drainer.join();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(stats.completed, stats.submitted);
  shflbw::MutexLock lock(futures_mu);
  for (auto& f : futures) EXPECT_GT(f.get().output.size(), 0u);
}

// The latency split must keep summing to submit-to-completion when
// requests are coalesced: queue_seconds stops at coalesce (batch-seal)
// time — including any coalescing-window wait — retry_seconds is 0 on
// this unfaulted path, and run_seconds covers the fused launch.
TEST(BatchServer, CoalescedLatencySplitSumsToSubmitToCompletion) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.max_batch = 4;
  opts.coalesce_window_seconds = 0.02;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();

  const double t_submit = NowSeconds();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.Submit(Request{}));
  for (auto& f : futures) {
    Response resp = f.get();
    const double elapsed = NowSeconds() - t_submit;
    EXPECT_GE(resp.queue_seconds, 0.0);
    EXPECT_EQ(resp.retry_seconds, 0.0);  // no faults injected
    EXPECT_GT(resp.run_seconds, 0.0);
    // queue + retry + run covers exactly submit -> completion, so it
    // can never exceed the externally observed submit -> get() span
    // (get() adds only wakeup latency on top).
    EXPECT_LE(resp.queue_seconds + resp.retry_seconds + resp.run_seconds,
              elapsed + 1e-3);
  }
}

TEST(BatchServer, LatencyBreakdownIsSane) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  Response resp = server.Submit(Request{}).get();
  EXPECT_GE(resp.queue_seconds, 0.0);
  EXPECT_GT(resp.run_seconds, 0.0);
  EXPECT_GE(resp.replica, 0);
  EXPECT_LT(resp.replica, 2);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
