// BatchServer contract: every request's output is bit-identical to a
// standalone serial Engine run with the same seed, the shared cache
// packs each (layer, format) exactly once across all replicas, the
// bounded queue applies backpressure, and shutdown resolves every
// admitted request.
#include <future>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

TEST(BatchServer, OutputsBitIdenticalToSerialEngine) {
  ThreadGuard guard;
  constexpr int kRequests = 12;

  // Reference: a standalone engine, serial execution, one run per seed.
  SetParallelThreads(1);
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    Engine engine(SmallTransformer(), SmallOptions());
    for (int i = 0; i < kRequests; ++i) {
      const std::uint64_t seed = 0x1000u + static_cast<std::uint64_t>(i);
      ref.emplace(seed, engine.Run(seed).output);
    }
  }

  // Served: 3 replicas, parallel kernels, concurrent in-flight runs.
  SetParallelThreads(4);
  ServerOptions opts;
  opts.replicas = 3;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0x1000u + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }
  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    const std::uint64_t seed = 0x1000u + static_cast<std::uint64_t>(i);
    EXPECT_EQ(resp.id, static_cast<std::uint64_t>(i));
    ASSERT_EQ(resp.output, ref.at(seed)) << "request " << i;
  }
}

TEST(BatchServer, ReplicasShareOnePackPhase) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 3;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  const std::size_t packs_after_warmup = server.cache().TotalPacks();
  EXPECT_GT(packs_after_warmup, 0u);
  // One entry per planned (layer, format) — N replicas do not multiply
  // the pack phase.
  EXPECT_LE(packs_after_warmup, server.Plan().layers.size());

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(server.Submit(Request{0x2000u + i}));
  }
  for (auto& f : futures) {
    // Steady state: no request triggers a conversion.
    EXPECT_EQ(f.get().packs_performed, 0u);
  }
  EXPECT_EQ(server.cache().TotalPacks(), packs_after_warmup);
}

TEST(BatchServer, SchedulerUsesMultipleReplicas) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(server.Submit(Request{}));
  server.Drain();
  const ServerStats stats = server.Stats();
  // 16 requests + the warmup request (Warmup goes through the queue).
  EXPECT_EQ(stats.submitted, 17u);
  EXPECT_EQ(stats.completed, 17u);
  ASSERT_EQ(stats.per_replica.size(), 2u);
  EXPECT_EQ(stats.per_replica[0] + stats.per_replica[1], 17u);
  // With 16 queued requests and 2 replicas popping as they go idle,
  // both must have served something.
  EXPECT_GT(stats.per_replica[0], 0u);
  EXPECT_GT(stats.per_replica[1], 0u);
  for (auto& f : futures) (void)f.get();
}

TEST(BatchServer, TrySubmitReportsFullQueue) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 1;
  opts.queue_capacity = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  // Saturate: 1 replica busy + capacity-2 queue. Eventually TrySubmit
  // must observe a full queue and refuse.
  std::vector<std::future<Response>> accepted;
  bool saw_full = false;
  for (int i = 0; i < 64 && !saw_full; ++i) {
    std::future<Response> fut;
    if (server.TrySubmit(Request{}, &fut)) {
      accepted.push_back(std::move(fut));
    } else {
      saw_full = true;
    }
  }
  EXPECT_TRUE(saw_full);
  for (auto& f : accepted) (void)f.get();  // all admitted requests resolve
}

TEST(BatchServer, ShutdownDrainsAdmittedRequestsAndRejectsNew) {
  ThreadGuard guard;
  SetParallelThreads(1);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  auto server = std::make_unique<BatchServer>(SmallTransformer(), opts);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server->Submit(Request{}));
  server->Shutdown();
  for (auto& f : futures) {
    EXPECT_GT(f.get().output.size(), 0u);  // resolved, not abandoned
  }
  EXPECT_THROW(server->Submit(Request{}), std::runtime_error);
  std::future<Response> fut;
  EXPECT_FALSE(server->TrySubmit(Request{}, &fut));
  server.reset();  // double shutdown via destructor is safe
}

TEST(BatchServer, LatencyBreakdownIsSane) {
  ThreadGuard guard;
  SetParallelThreads(2);
  ServerOptions opts;
  opts.replicas = 2;
  opts.engine = SmallOptions();
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();
  Response resp = server.Submit(Request{}).get();
  EXPECT_GE(resp.queue_seconds, 0.0);
  EXPECT_GT(resp.run_seconds, 0.0);
  EXPECT_GE(resp.replica, 0);
  EXPECT_LT(resp.replica, 2);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
