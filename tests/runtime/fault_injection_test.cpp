// Fault-injection contract: verdicts are a pure function of
// (seed, site, ordinal) so runs replay identically, the failure budget
// provably bounds injected faults, a failed pack leaves the shared
// cache untouched, and the BatchServer's bounded retry-with-backoff
// recovers every request bit-identically with zero lost or duplicated
// responses (submitted == completed + shed).
#include <future>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "runtime/server.h"

namespace shflbw {
namespace runtime {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

EngineOptions SmallOptions() {
  EngineOptions opts;
  opts.planner.density = 0.25;
  opts.planner.v = 8;
  return opts;
}

ModelDesc SmallTransformer() {
  TransformerConfig cfg;
  cfg.d_model = 64;
  cfg.d_ff = 128;
  cfg.batch_tokens = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  return ModelDesc::Transformer(cfg);
}

std::vector<bool> FailurePattern(const FaultInjectorOptions& opts, int n) {
  FaultInjector injector(opts);
  std::vector<bool> fired;
  for (int i = 0; i < n; ++i) {
    bool threw = false;
    try {
      injector.OnKernelLaunch();
    } catch (const TransientFault&) {
      threw = true;
    }
    fired.push_back(threw);
  }
  return fired;
}

TEST(FaultInjector, VerdictsAreDeterministicInSeedAndOrdinal) {
  FaultInjectorOptions opts;
  opts.launch_failure_rate = 0.5;
  const std::vector<bool> a = FailurePattern(opts, 128);
  const std::vector<bool> b = FailurePattern(opts, 128);
  EXPECT_EQ(a, b);  // same seed: bit-identical failure set

  opts.seed ^= 0xdeadbeefULL;
  const std::vector<bool> c = FailurePattern(opts, 128);
  EXPECT_NE(a, c);  // different seed: different (valid) schedule

  // Rate extremes short-circuit: never / always (budget permitting).
  opts.launch_failure_rate = 0.0;
  for (bool f : FailurePattern(opts, 64)) EXPECT_FALSE(f);
  opts.launch_failure_rate = 1.0;
  for (bool f : FailurePattern(opts, 64)) EXPECT_TRUE(f);
}

TEST(FaultInjector, FailureBudgetBoundsInjectedFaults) {
  FaultInjectorOptions opts;
  opts.launch_failure_rate = 1.0;
  opts.pack_failure_rate = 1.0;
  opts.max_failures = 3;
  FaultInjector injector(opts);
  int thrown = 0;
  for (int i = 0; i < 32; ++i) {
    try {
      (i % 2 == 0) ? injector.OnKernelLaunch() : injector.OnPack();
    } catch (const TransientFault&) {
      ++thrown;
    }
  }
  // The budget is shared across sites and strictly enforced: after it
  // is spent the injector goes quiet forever.
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(injector.total_failures(), 3u);
  EXPECT_EQ(injector.launches(), 16u);
  EXPECT_EQ(injector.packs(), 16u);
}

TEST(FaultInjector, RejectsInvalidOptions) {
  FaultInjectorOptions bad;
  bad.launch_failure_rate = 1.5;
  EXPECT_THROW(FaultInjector{bad}, Error);
  bad = {};
  bad.pack_failure_rate = -0.1;
  EXPECT_THROW(FaultInjector{bad}, Error);
  bad = {};
  bad.launch_delay_seconds = -1;
  EXPECT_THROW(FaultInjector{bad}, Error);
}

TEST(Engine, FailedPackLeavesCacheUntouchedAndRetryRecovers) {
  ThreadGuard guard;
  SetParallelThreads(1);

  // Reference: no injector.
  Matrix<float> ref;
  {
    Engine engine(SmallTransformer(), SmallOptions());
    ref = engine.Run().output;
  }

  FaultInjectorOptions fi;
  fi.pack_failure_rate = 1.0;
  fi.max_failures = 1;
  EngineOptions opts = SmallOptions();
  opts.fault_injector = std::make_shared<FaultInjector>(fi);
  Engine engine(SmallTransformer(), opts);
  // First run hits the injected pack failure before any cache mutation.
  EXPECT_THROW(engine.Run(), TransientFault);
  EXPECT_EQ(engine.cache().TotalPacks(), 0u);
  // Budget spent: the clean re-execution packs everything and the
  // output is bit-identical to the unfaulted engine.
  RunResult run = engine.Run();
  EXPECT_GT(run.packs_performed, 0u);
  ASSERT_EQ(run.output, ref);
}

TEST(Engine, InjectedLaunchDelaysSlowExecutionDeterministically) {
  ThreadGuard guard;
  SetParallelThreads(1);
  FaultInjectorOptions fi;
  fi.launch_delay_rate = 1.0;
  fi.launch_delay_seconds = 0.01;
  EngineOptions opts = SmallOptions();
  opts.fault_injector = std::make_shared<FaultInjector>(fi);
  Engine engine(SmallTransformer(), opts);
  (void)engine.Run();  // pack + first pass
  const double t0 = NowSeconds();
  (void)engine.Run();
  // 4 transformer layers, 10 ms injected per launch.
  EXPECT_GE(NowSeconds() - t0, 0.03);
  EXPECT_EQ(opts.fault_injector->launch_delays(),
            opts.fault_injector->launches());
  EXPECT_EQ(opts.fault_injector->total_failures(), 0u);
}

// The acceptance test of the harness: under injected transient launch
// faults the server's bounded retry-with-backoff recovers every
// request — zero lost, zero duplicated, outputs bit-identical to an
// unfaulted serial engine — and the books balance.
TEST(BatchServer, RetryWithBackoffRecoversAllRequestsBitIdentically) {
  ThreadGuard guard;
  constexpr int kRequests = 12;

  SetParallelThreads(1);
  std::map<std::uint64_t, Matrix<float>> ref;
  {
    Engine engine(SmallTransformer(), SmallOptions());
    for (int i = 0; i < kRequests; ++i) {
      const std::uint64_t seed = 0x9000u + static_cast<std::uint64_t>(i);
      ref.emplace(seed, engine.Run(seed).output);
    }
  }

  SetParallelThreads(2);
  FaultInjectorOptions fi;
  fi.launch_failure_rate = 0.2;
  // Budget 3 < max_retries 4: even if every injected fault lands on the
  // same batch consecutively, the retry loop outlasts the injector, so
  // recovery is guaranteed (and bounded), not probabilistic.
  fi.max_failures = 3;
  auto injector = std::make_shared<FaultInjector>(fi);

  ServerOptions opts;
  opts.replicas = 2;
  opts.max_batch = 3;
  opts.engine = SmallOptions();
  opts.engine.fault_injector = injector;
  opts.retry.max_retries = 4;
  opts.retry.backoff_seconds = 1e-4;
  BatchServer server(SmallTransformer(), opts);
  server.Warmup();

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.activation_seed = 0x9000u + static_cast<std::uint64_t>(i);
    futures.push_back(server.Submit(req));
  }
  server.Drain();

  for (int i = 0; i < kRequests; ++i) {
    Response resp = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_GE(resp.retries, 0);
    // Retry accounting: retry_seconds carries the failed attempts +
    // backoff of a retried launch (and only then), run_seconds covers
    // just the final successful attempt, so the split sums exactly —
    // retried or not.
    if (resp.retries > 0) {
      EXPECT_GT(resp.retry_seconds, 0.0) << "request " << i;
    } else {
      EXPECT_EQ(resp.retry_seconds, 0.0) << "request " << i;
    }
    EXPECT_GT(resp.run_seconds, 0.0);
    const std::uint64_t seed = 0x9000u + static_cast<std::uint64_t>(i);
    ASSERT_EQ(resp.output, ref.at(seed)) << "request " << i;
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
  EXPECT_EQ(stats.failed, 0u);
  // Every injected fault was absorbed by exactly one retry.
  EXPECT_EQ(stats.retries, injector->total_failures());
  EXPECT_GE(injector->total_failures(), 1u);
}

TEST(BatchServer, ExhaustedRetriesSurfaceTheFaultWithoutLosingAccounting) {
  ThreadGuard guard;
  SetParallelThreads(1);
  FaultInjectorOptions fi;
  fi.launch_failure_rate = 1.0;  // unbounded: every attempt fails
  ServerOptions opts;
  opts.replicas = 1;
  opts.engine = SmallOptions();
  opts.engine.fault_injector = std::make_shared<FaultInjector>(fi);
  opts.retry.max_retries = 1;
  opts.retry.backoff_seconds = 1e-4;
  BatchServer server(SmallTransformer(), opts);

  std::future<Response> fut = server.Submit(Request{});
  EXPECT_THROW(fut.get(), TransientFault);
  server.Drain();  // failed batches still retire — Drain must not hang
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 1u);  // one retry attempted, then surfaced
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed);
}

}  // namespace
}  // namespace runtime
}  // namespace shflbw
