#include "kernels/gemm_dense.h"

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/rng.h"

namespace shflbw {
namespace {

Matrix<float> QuantizeForTest(const Matrix<float>& m) {
  Matrix<float> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.storage()[i] = Fp16(m.storage()[i]).ToFloat();
  }
  return out;
}

TEST(GemmReference, IdentityTimesMatrix) {
  Matrix<float> eye(3, 3);
  for (int i = 0; i < 3; ++i) eye(i, i) = 1.0f;
  Rng rng(3);
  // Use fp16-representable inputs so identity multiply is exact.
  Matrix<float> b = QuantizeForTest(rng.NormalMatrix(3, 5));
  EXPECT_EQ(GemmReference(eye, b), b);
}

TEST(GemmReference, KnownSmallProduct) {
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b(2, 2, {5, 6, 7, 8});
  EXPECT_EQ(GemmReference(a, b), Matrix<float>(2, 2, {19, 22, 43, 50}));
}

TEST(GemmReference, ShapeMismatchThrows) {
  EXPECT_THROW(GemmReference(Matrix<float>(2, 3), Matrix<float>(4, 2)),
               Error);
}

TEST(GemmReference, Fp16OperandsRounded) {
  // 1.0003 rounds to 1.0 in fp16 (below the 1.000488 midpoint), so the
  // product must be exactly 2.0.
  Matrix<float> a(1, 1, {1.0003f});
  Matrix<float> b(1, 1, {2.0f});
  EXPECT_EQ(GemmReference(a, b)(0, 0), 2.0f);
}

TEST(GemmReference, Fp32Accumulation) {
  // Summing 4096 ones would saturate in fp16 (max step at 2048); with
  // fp32 accumulation and a final fp16 round it lands at 4096 exactly.
  Matrix<float> a(1, 4096, std::vector<float>(4096, 1.0f));
  Matrix<float> b(4096, 1, std::vector<float>(4096, 1.0f));
  EXPECT_EQ(GemmReference(a, b)(0, 0), 4096.0f);
}

TEST(GemmDense, TensorCoreAndCudaCoreSameResult) {
  Rng rng(67);
  const Matrix<float> a = rng.NormalMatrix(17, 23);
  const Matrix<float> b = rng.NormalMatrix(23, 9);
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  EXPECT_EQ(GemmTensorCore(a, b, spec).c, GemmCudaCore(a, b, spec).c);
}

TEST(GemmDenseStats, FlopsAndTraffic) {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const KernelStats s = GemmTensorCoreStats(2048, 128, 2048, spec);
  EXPECT_DOUBLE_EQ(s.useful_flops, 2.0 * 2048 * 128 * 2048);
  EXPECT_TRUE(s.tensor_core);
  // A (8MB) + B (0.5MB) with A exceeding L2 -> reloads; write = C.
  EXPECT_GE(s.dram_read_bytes, (2048.0 * 2048 + 2048.0 * 128) * 2);
  EXPECT_DOUBLE_EQ(s.dram_write_bytes, 2048.0 * 128 * 2);
  EXPECT_GT(s.l2_read_bytes, 0.0);
}

TEST(GemmDenseStats, PaddingWastesMacs) {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  // M=100 pads to 128: issued > useful.
  const KernelStats s = GemmTensorCoreStats(100, 128, 256, spec);
  EXPECT_GT(s.issued_macs, s.useful_flops / 2.0);
}

TEST(GemmDenseStats, TensorCoreModeledFasterThanCudaCore) {
  // Fig. 1: the TC dense line sits ~4x above the CUDA-core dense line.
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);
  const double tc = model.Seconds(GemmTensorCoreStats(2048, 128, 2048, spec));
  const double cc = model.Seconds(GemmCudaCoreStats(2048, 128, 2048, spec));
  EXPECT_GT(cc / tc, 2.5);
  EXPECT_LT(cc / tc, 5.0);
}

}  // namespace
}  // namespace shflbw
