#include "kernels/kernel_registry.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }
const GpuSpec& A100() { return GetGpuSpec(GpuArch::kA100); }

TEST(Registry, AllClassesProduceStatsOnFriendlyShape) {
  LayerProblem p{2048, 128, 2048, 0.5, 32};
  for (KernelClass k : Fig6KernelClasses()) {
    if (k == KernelClass::kBalanced24) continue;  // A100-only
    EXPECT_TRUE(LayerStats(k, p, V100()).has_value())
        << KernelClassName(k);
  }
  EXPECT_TRUE(LayerStats(KernelClass::kBalanced24, p, A100()).has_value());
}

TEST(Registry, Balanced24OnlyOnA100At50) {
  LayerProblem p{2048, 128, 2048, 0.5, 32};
  EXPECT_FALSE(LayerStats(KernelClass::kBalanced24, p, V100()).has_value());
  p.density = 0.25;
  EXPECT_FALSE(LayerStats(KernelClass::kBalanced24, p, A100()).has_value());
}

TEST(Registry, VConstraintsEnforced) {
  LayerProblem p{100, 128, 2048, 0.5, 32};  // m=100 not divisible by 32
  EXPECT_FALSE(
      LayerStats(KernelClass::kShflBwTensorCore, p, V100()).has_value());
  EXPECT_FALSE(LayerStats(KernelClass::kTilewise, p, V100()).has_value());
  // Unstructured kernels have no V constraint.
  EXPECT_TRUE(LayerStats(KernelClass::kSputnik, p, V100()).has_value());
}

TEST(Registry, SpeedupOverDenseDefinition) {
  LayerProblem p{4096, 128, 1024, 0.25, 64};
  const auto speedup =
      SpeedupOverDense(KernelClass::kShflBwTensorCore, p, V100());
  ASSERT_TRUE(speedup.has_value());
  const auto dense_s = LayerSeconds(KernelClass::kDenseTensorCore, p, V100());
  const auto sparse_s =
      LayerSeconds(KernelClass::kShflBwTensorCore, p, V100());
  EXPECT_NEAR(*speedup, *dense_s / *sparse_s, 1e-12);
}

TEST(Registry, DenseSpeedupIsOne) {
  LayerProblem p{1024, 128, 1024, 1.0, 32};
  const auto s = SpeedupOverDense(KernelClass::kDenseTensorCore, p, V100());
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 1.0, 1e-12);
}

TEST(Registry, TotalSecondsSumsLayers) {
  std::vector<LayerProblem> layers{{1024, 128, 1024, 0.25, 32},
                                   {2048, 128, 512, 0.25, 32}};
  const auto total =
      TotalSeconds(KernelClass::kShflBwTensorCore, layers, V100());
  ASSERT_TRUE(total.has_value());
  const auto a = LayerSeconds(KernelClass::kShflBwTensorCore, layers[0],
                              V100());
  const auto b = LayerSeconds(KernelClass::kShflBwTensorCore, layers[1],
                              V100());
  EXPECT_NEAR(*total, *a + *b, 1e-15);
}

TEST(Registry, TotalSecondsNulloptIfAnyLayerUnsupported) {
  std::vector<LayerProblem> layers{{1024, 128, 1024, 0.25, 32},
                                   {100, 128, 512, 0.25, 32}};
  EXPECT_FALSE(TotalSeconds(KernelClass::kShflBwTensorCore, layers, V100())
                   .has_value());
}

TEST(Registry, BadShapesThrow) {
  LayerProblem p{0, 128, 1024, 0.25, 32};
  EXPECT_THROW(LayerStats(KernelClass::kSputnik, p, V100()), Error);
  LayerProblem p2{128, 128, 1024, 0.0, 32};
  EXPECT_THROW(LayerStats(KernelClass::kSputnik, p2, V100()), Error);
}

}  // namespace
}  // namespace shflbw
