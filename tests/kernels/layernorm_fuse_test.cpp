#include "kernels/layernorm_fuse.h"

#include <cmath>

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/rng.h"

namespace shflbw {
namespace {

LayerNormParams UnitParams(int features) {
  LayerNormParams p;
  p.gamma.assign(static_cast<std::size_t>(features), 1.0f);
  p.beta.assign(static_cast<std::size_t>(features), 0.0f);
  return p;
}

TEST(LayerNorm, NormalizesPerToken) {
  Rng rng(647);
  const Matrix<float> x = rng.NormalMatrix(8, 64, 3.0f, 2.0f);
  const Matrix<float> y = LayerNorm(x, UnitParams(64));
  for (int t = 0; t < 8; ++t) {
    double mean = 0, var = 0;
    for (int f = 0; f < 64; ++f) mean += y(t, f);
    mean /= 64;
    for (int f = 0; f < 64; ++f) {
      var += (y(t, f) - mean) * (y(t, f) - mean);
    }
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-2) << "token " << t;
    EXPECT_NEAR(var, 1.0, 0.05) << "token " << t;
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  Matrix<float> x(1, 4, {1, 2, 3, 4});
  LayerNormParams p = UnitParams(4);
  p.gamma = {2, 2, 2, 2};
  p.beta = {10, 10, 10, 10};
  const Matrix<float> y = LayerNorm(x, p);
  double mean = 0;
  for (int f = 0; f < 4; ++f) mean += y(0, f);
  EXPECT_NEAR(mean / 4, 10.0, 1e-2);  // beta shifts the mean
}

TEST(LayerNorm, FusedEqualsNormThenTranspose) {
  Rng rng(653);
  const Matrix<float> x = rng.NormalMatrix(16, 32, 1.0f, 3.0f);
  LayerNormParams p = UnitParams(32);
  for (int f = 0; f < 32; ++f) {
    p.gamma[f] = 0.5f + 0.01f * f;
    p.beta[f] = -0.2f + 0.02f * f;
  }
  const Matrix<float> plain = LayerNorm(x, p);
  const Matrix<float> fused = LayerNormTransposed(x, p);
  ASSERT_EQ(fused.rows(), 32);
  ASSERT_EQ(fused.cols(), 16);
  for (int t = 0; t < 16; ++t) {
    for (int f = 0; f < 32; ++f) {
      EXPECT_EQ(fused(f, t), plain(t, f)) << t << "," << f;
    }
  }
}

TEST(LayerNorm, ParamSizeValidated) {
  Matrix<float> x(4, 8);
  EXPECT_THROW(LayerNorm(x, UnitParams(7)), Error);
  LayerNormParams bad = UnitParams(8);
  bad.epsilon = 0.0f;
  EXPECT_THROW(LayerNorm(x, bad), Error);
}

TEST(LayerNormStats, FusionSavesOneActivationRoundTrip) {
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const KernelStats fused = LayerNormFusedStats(512, 1024, spec);
  const KernelStats unfused = LayerNormThenTransposeStats(512, 1024, spec);
  const double elems = 512.0 * 1024;
  EXPECT_DOUBLE_EQ(unfused.dram_read_bytes - fused.dram_read_bytes,
                   elems * 2);
  EXPECT_DOUBLE_EQ(unfused.dram_write_bytes - fused.dram_write_bytes,
                   elems * 2);
  const CostModel model(spec);
  EXPECT_LT(model.Seconds(fused), model.Seconds(unfused));
}

}  // namespace
}  // namespace shflbw
