// Randomized cross-kernel differential tests: for many random shapes,
// sparsities and tile configurations, every kernel's output must be
// bit-identical to the dense reference on the same masked weights.
// This is the failure-injection net under the whole kernel layer.
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

class KernelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(KernelFuzz, AllKernelsAgreeOnRandomProblem) {
  Rng rng(static_cast<std::uint64_t>(10000 + GetParam()));
  // Random problem: v in {2,4,8,16}, m a multiple of 4v, odd-ish n/k.
  const int v = 1 << rng.UniformInt(1, 4);
  const int m = v * rng.UniformInt(2, 6) * 4;
  const int k = 4 * rng.UniformInt(3, 24);
  const int n = rng.UniformInt(1, 40);
  const double density = rng.Uniform(0.05, 0.95);

  const Matrix<float> w = rng.NormalMatrix(m, k);
  const Matrix<float> b = rng.NormalMatrix(k, n);
  TileConfig cfg;
  cfg.tn = 1 << rng.UniformInt(3, 7);
  cfg.tk = 1 << rng.UniformInt(0, 5);
  cfg.pipeline_stages = rng.UniformInt(1, 4);
  cfg.meta_prefetch_stage = 1 << rng.UniformInt(0, 3);

  // Unstructured -> Sputnik.
  {
    const Matrix<float> pruned = PruneUnstructured(w, density);
    EXPECT_EQ(SpmmSputnik(CsrMatrix::FromDense(pruned), b, Spec()).c,
              GemmReference(pruned, b))
        << "sputnik m=" << m << " k=" << k << " n=" << n;
  }
  // Vector-wise.
  {
    const Matrix<float> pruned = PruneVectorWise(w, density, v);
    const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, v);
    EXPECT_EQ(SpmmVectorWise(vw, b, Spec(), cfg).c,
              GemmReference(pruned, b))
        << "vw v=" << v << " tk=" << cfg.tk << " tn=" << cfg.tn;
  }
  // Shfl-BW through the full search.
  {
    const ShflBwMatrix sm = PruneToShflBw(w, density, v);
    EXPECT_EQ(SpmmShflBw(sm, b, Spec(), cfg).c,
              GemmReference(sm.ToDense(), b))
        << "shflbw v=" << v << " density=" << density;
  }
  // Block-wise (needs k % v == 0).
  if (k % v == 0) {
    const Matrix<float> pruned = PruneBlockWise(w, density, v);
    EXPECT_EQ(SpmmBsr(BsrMatrix::FromDense(pruned, v), b, Spec(), cfg).c,
              GemmReference(pruned, b))
        << "bsr v=" << v;
  }
  // Balanced 2:4.
  {
    const Matrix<float> pruned = PruneBalanced24(w);
    EXPECT_EQ(
        SpmmBalanced24(Balanced24Matrix::FromDense(pruned), b, Spec()).c,
        GemmReference(pruned, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz, ::testing::Range(0, 24));

class FormatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FormatFuzz, RoundTripsOnRandomSparseMatrices) {
  Rng rng(static_cast<std::uint64_t>(20000 + GetParam()));
  const int v = 1 << rng.UniformInt(1, 3);
  const int m = v * rng.UniformInt(1, 8);
  const int k = rng.UniformInt(1, 50);
  const double density = rng.Uniform(0.0, 1.0);
  const Matrix<float> d = rng.SparseMatrix(m, k, density);

  const CsrMatrix csr = CsrMatrix::FromDense(d);
  csr.Validate();
  EXPECT_EQ(csr.ToDense(), d);

  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, v);
  vw.Validate();
  EXPECT_EQ(vw.ToDense(), d);

  const ShflBwMatrix sm = ShflBwMatrix::FromDenseAuto(d, v);
  sm.Validate();
  EXPECT_EQ(sm.ToDense(), d);

  if (m % v == 0 && k % v == 0 && k > 0) {
    const BsrMatrix bsr = BsrMatrix::FromDense(d, v);
    bsr.Validate();
    EXPECT_EQ(bsr.ToDense(), d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzz, ::testing::Range(0, 24));

class SearchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SearchFuzz, SearchInvariantsOnRandomScores) {
  Rng rng(static_cast<std::uint64_t>(30000 + GetParam()));
  const int v = 1 << rng.UniformInt(2, 4);
  const int m = v * rng.UniformInt(2, 6);
  const int k = 8 * rng.UniformInt(2, 16);
  const double density = rng.Uniform(0.05, 0.6);
  const Matrix<float> scores = rng.UniformMatrix(m, k, 0.0f, 1.0f);

  const ShflBwSearchResult r = ShflBwSearch(scores, density, v);
  // (1) permutation is valid
  std::vector<char> seen(static_cast<std::size_t>(m), 0);
  for (int x : r.storage_to_original) {
    ASSERT_GE(x, 0);
    ASSERT_LT(x, m);
    ASSERT_FALSE(seen[x]);
    seen[x] = 1;
  }
  // (2) mask is binary and close to the target density
  for (float x : r.mask.storage()) {
    ASSERT_TRUE(x == 0.0f || x == 1.0f);
  }
  EXPECT_NEAR(1.0 - Sparsity(r.mask), density, 0.5 / (m / double(v)));
  // (3) groups share identical patterns under the permutation
  for (int g = 0; g < m / v; ++g) {
    for (int c = 0; c < k; ++c) {
      float sum = 0;
      for (int i = 0; i < v; ++i) {
        sum += r.mask(r.storage_to_original[g * v + i], c);
      }
      ASSERT_TRUE(sum == 0.0f || sum == static_cast<float>(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearchFuzz, ::testing::Range(0, 16));

}  // namespace
}  // namespace shflbw
