// Parameterized convolution sweeps: implicit GEMM must match the direct
// convolution definition across strides, paddings, kernel sizes and
// batch sizes, for both the dense and the Shfl-BW sparse kernels.
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/conv2d.h"
#include "kernels/gemm_dense.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

// (kh/kw, stride, pad, batch)
using ConvCase = std::tuple<int, int, int, int>;

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ImplicitGemmMatchesDirectConvolution) {
  const auto [ksize, stride, pad, batch] = GetParam();
  ConvShape s;
  s.batch = batch;
  s.in_c = 3;
  s.in_h = s.in_w = 9;
  s.out_c = 4;
  s.kh = s.kw = ksize;
  s.stride = stride;
  s.pad = pad;
  if (s.OutH() <= 0 || s.OutW() <= 0) GTEST_SKIP();

  Rng rng(900 + ksize * 100 + stride * 10 + pad);
  Tensor4 input(s.batch, s.in_c, s.in_h, s.in_w);
  for (auto& v : input.data) v = static_cast<float>(rng.Normal());
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());

  const Matrix<float> out = Conv2dDense(input, w, s, Spec()).c;
  ASSERT_EQ(out.rows(), s.out_c);
  ASSERT_EQ(out.cols(), s.GemmN());

  // Direct convolution in the same fp16/fp32 arithmetic and (ci,r,s)
  // accumulation order.
  for (int oc = 0; oc < s.out_c; ++oc) {
    for (int b = 0; b < s.batch; ++b) {
      for (int y = 0; y < s.OutH(); ++y) {
        for (int x = 0; x < s.OutW(); ++x) {
          float acc = 0.0f;
          for (int ci = 0; ci < s.in_c; ++ci) {
            for (int r = 0; r < s.kh; ++r) {
              for (int ss = 0; ss < s.kw; ++ss) {
                const int hy = y * s.stride - s.pad + r;
                const int wx = x * s.stride - s.pad + ss;
                float iv = 0.0f;
                if (hy >= 0 && hy < s.in_h && wx >= 0 && wx < s.in_w) {
                  iv = input.at(b, ci, hy, wx);
                }
                acc = FmaF16F32(Fp16(w(oc, (ci * s.kh + r) * s.kw + ss)),
                                Fp16(iv), acc);
              }
            }
          }
          const int col = (b * s.OutH() + y) * s.OutW() + x;
          ASSERT_EQ(out(oc, col), Fp16(acc).ToFloat())
              << "oc=" << oc << " b=" << b << " y=" << y << " x=" << x;
        }
      }
    }
  }
}

TEST_P(ConvSweep, SparseConvMatchesDenseOnPrunedFilters) {
  const auto [ksize, stride, pad, batch] = GetParam();
  ConvShape s;
  s.batch = batch;
  s.in_c = 3;
  s.in_h = s.in_w = 9;
  s.out_c = 4;
  s.kh = s.kw = ksize;
  s.stride = stride;
  s.pad = pad;
  if (s.OutH() <= 0 || s.OutW() <= 0) GTEST_SKIP();

  Rng rng(950 + ksize * 100 + stride * 10 + pad);
  Tensor4 input(s.batch, s.in_c, s.in_h, s.in_w);
  for (auto& v : input.data) v = static_cast<float>(rng.Normal());
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  const ShflBwMatrix sparse = PruneToShflBw(w, 0.5, 2);

  EXPECT_EQ(Conv2dShflBw(input, sparse, s, Spec()).c,
            Conv2dDense(input, sparse.ToDense(), s, Spec()).c);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvSweep,
    ::testing::Combine(::testing::Values(1, 3, 5),   // kernel size
                       ::testing::Values(1, 2),      // stride
                       ::testing::Values(0, 1, 2),   // pad
                       ::testing::Values(1, 2)));    // batch

}  // namespace
}  // namespace shflbw
