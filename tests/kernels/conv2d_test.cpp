#include "kernels/conv2d.h"

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/rng.h"
#include "kernels/gemm_dense.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

ConvShape SmallShape() {
  ConvShape s;
  s.batch = 2;
  s.in_c = 4;
  s.in_h = 6;
  s.in_w = 6;
  s.out_c = 8;
  s.kh = 3;
  s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

Tensor4 RandomInput(const ConvShape& s, std::uint64_t seed) {
  Rng rng(seed);
  Tensor4 t(s.batch, s.in_c, s.in_h, s.in_w);
  for (auto& v : t.data) v = static_cast<float>(rng.Normal());
  return t;
}

TEST(Conv2d, ShapeArithmetic) {
  const ConvShape s = SmallShape();
  EXPECT_EQ(s.OutH(), 6);
  EXPECT_EQ(s.OutW(), 6);
  EXPECT_EQ(s.GemmM(), 8);
  EXPECT_EQ(s.GemmK(), 36);
  EXPECT_EQ(s.GemmN(), 72);
  ConvShape strided = s;
  strided.stride = 2;
  EXPECT_EQ(strided.OutH(), 3);
}

TEST(Conv2d, Im2ColMatchesDirectConvolution) {
  const ConvShape s = SmallShape();
  const Tensor4 input = RandomInput(s, 113);
  Rng rng(127);
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  const Matrix<float> out = Conv2dDense(input, w, s, Spec()).c;

  // Direct NCHW convolution in fp16-operand/fp32-accumulate arithmetic,
  // accumulating in the same (ci, r, s) order as the im2col rows.
  for (int oc = 0; oc < s.out_c; ++oc) {
    for (int b = 0; b < s.batch; ++b) {
      for (int y = 0; y < s.OutH(); ++y) {
        for (int x = 0; x < s.OutW(); ++x) {
          float acc = 0.0f;
          for (int ci = 0; ci < s.in_c; ++ci) {
            for (int r = 0; r < s.kh; ++r) {
              for (int ss = 0; ss < s.kw; ++ss) {
                const int hy = y * s.stride - s.pad + r;
                const int wx = x * s.stride - s.pad + ss;
                float iv = 0.0f;
                if (hy >= 0 && hy < s.in_h && wx >= 0 && wx < s.in_w) {
                  iv = input.at(b, ci, hy, wx);
                }
                acc = FmaF16F32(
                    Fp16(w(oc, (ci * s.kh + r) * s.kw + ss)), Fp16(iv), acc);
              }
            }
          }
          const int col = (b * s.OutH() + y) * s.OutW() + x;
          EXPECT_EQ(out(oc, col), Fp16(acc).ToFloat())
              << "oc=" << oc << " col=" << col;
        }
      }
    }
  }
}

TEST(Conv2d, ZeroPaddingBordersAreZeroInIm2Col) {
  ConvShape s = SmallShape();
  Tensor4 input(s.batch, s.in_c, s.in_h, s.in_w);
  for (auto& v : input.data) v = 1.0f;
  const Matrix<float> b = Im2Col(input, s);
  // Row 0 = (ci=0, r=0, s=0): for output (0,0) it reads input(-1,-1) = 0.
  EXPECT_EQ(b(0, 0), 0.0f);
  // Center outputs read in-bounds ones.
  const int center = (0 * s.OutH() + 3) * s.OutW() + 3;
  EXPECT_EQ(b(0, center), 1.0f);
}

TEST(Conv2d, ShflBwConvMatchesDenseOnPrunedWeights) {
  const ConvShape s = SmallShape();
  const Tensor4 input = RandomInput(s, 131);
  Rng rng(137);
  const Matrix<float> w = rng.NormalMatrix(s.out_c, s.GemmK());
  const ShflBwMatrix sparse = PruneToShflBw(w, 0.25, 4);
  const Matrix<float> sparse_out =
      Conv2dShflBw(input, sparse, s, Spec()).c;
  const Matrix<float> ref = Conv2dDense(input, sparse.ToDense(), s, Spec()).c;
  EXPECT_EQ(sparse_out, ref);
}

TEST(Conv2d, FilterToMatrixLayout) {
  ConvShape s;
  s.out_c = 2;
  s.in_c = 1;
  s.kh = 2;
  s.kw = 2;
  s.in_h = s.in_w = 4;
  const std::vector<float> filter{1, 2, 3, 4, 5, 6, 7, 8};
  const Matrix<float> m = FilterToMatrix(filter, s);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(m(1, 3), 8.0f);
  EXPECT_THROW(FilterToMatrix({1, 2}, s), Error);
}

TEST(Conv2dStats, ActivationTrafficDeduplicated) {
  // Implicit GEMM reads the feature map from DRAM, not the kh*kw-times
  // duplicated unfolded matrix.
  ConvShape s;
  s.batch = 32;
  s.in_c = 128;
  s.in_h = s.in_w = 28;
  s.out_c = 128;
  s.kh = s.kw = 3;
  s.pad = 1;
  const KernelStats conv = Conv2dDenseStats(s, Spec());
  const KernelStats gemm =
      GemmTensorCoreStats(s.GemmM(), s.GemmN(), s.GemmK(), Spec());
  EXPECT_LT(conv.dram_read_bytes, gemm.dram_read_bytes);
  // Compute is identical.
  EXPECT_DOUBLE_EQ(conv.issued_macs, gemm.issued_macs);
}

TEST(Conv2dStats, SparseConvFasterThanDenseInModel) {
  ConvShape s;
  s.batch = 32;
  s.in_c = 256;
  s.in_h = s.in_w = 14;
  s.out_c = 256;
  s.kh = s.kw = 3;
  s.pad = 1;
  const CostModel model(Spec());
  const double dense = model.Seconds(Conv2dDenseStats(s, Spec()));
  const double sparse =
      model.Seconds(Conv2dShflBwStats(s, 0.25, 32, Spec()));
  EXPECT_GT(dense / sparse, 1.0);
}

}  // namespace
}  // namespace shflbw
