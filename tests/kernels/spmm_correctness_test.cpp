// Numerical correctness of every sparse kernel: each must produce output
// bit-identical to the dense reference GEMM on the same masked weights
// (all kernels accumulate along ascending K in fp32; see kernel_api.h).
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pipeline.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_csr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_tilewise.h"
#include "kernels/spmm_vector_sparse.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

struct SpmmCase {
  int m, n, k;
  double density;
};

class SpmmCorrectness : public ::testing::TestWithParam<SpmmCase> {
 protected:
  void SetUp() override {
    const SpmmCase& c = GetParam();
    Rng rng(1000 + c.m + c.n + c.k);
    weights_ = rng.NormalMatrix(c.m, c.k);
    b_ = rng.NormalMatrix(c.k, c.n);
  }
  Matrix<float> weights_;
  Matrix<float> b_;
};

TEST_P(SpmmCorrectness, CsrScalarMatchesReference) {
  const Matrix<float> pruned =
      PruneUnstructured(weights_, GetParam().density);
  const CsrMatrix csr = CsrMatrix::FromDense(pruned);
  EXPECT_EQ(SpmmCsrScalar(csr, b_, Spec()).c, GemmReference(pruned, b_));
}

TEST_P(SpmmCorrectness, SputnikMatchesReference) {
  const Matrix<float> pruned =
      PruneUnstructured(weights_, GetParam().density);
  const CsrMatrix csr = CsrMatrix::FromDense(pruned);
  EXPECT_EQ(SpmmSputnik(csr, b_, Spec()).c, GemmReference(pruned, b_));
}

TEST_P(SpmmCorrectness, BsrMatchesReference) {
  const int v = 8;
  if (GetParam().m % v != 0 || GetParam().k % v != 0) GTEST_SKIP();
  const Matrix<float> pruned =
      PruneBlockWise(weights_, GetParam().density, v);
  const BsrMatrix bsr = BsrMatrix::FromDense(pruned, v);
  EXPECT_EQ(SpmmBsr(bsr, b_, Spec()).c, GemmReference(pruned, b_));
}

TEST_P(SpmmCorrectness, VectorWiseMatchesReference) {
  const int v = 8;
  if (GetParam().m % v != 0) GTEST_SKIP();
  const Matrix<float> pruned =
      PruneVectorWise(weights_, GetParam().density, v);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, v);
  EXPECT_EQ(SpmmVectorWise(vw, b_, Spec()).c, GemmReference(pruned, b_));
}

TEST_P(SpmmCorrectness, ShflBwMatchesReference) {
  const int v = 8;
  if (GetParam().m % v != 0) GTEST_SKIP();
  const ShflBwMatrix m = PruneToShflBw(weights_, GetParam().density, v);
  // The kernel writes rows back in ORIGINAL order; reference runs on the
  // pruned dense matrix in original order.
  EXPECT_EQ(SpmmShflBw(m, b_, Spec()).c, GemmReference(m.ToDense(), b_));
}

TEST_P(SpmmCorrectness, VectorSparseMatchesReference) {
  if (GetParam().m % kVectorSparseV != 0) GTEST_SKIP();
  const Matrix<float> pruned =
      PruneVectorWise(weights_, GetParam().density, kVectorSparseV);
  const VectorWiseMatrix vw =
      VectorWiseMatrix::FromDense(pruned, kVectorSparseV);
  EXPECT_EQ(SpmmVectorSparse(vw, b_, Spec()).c, GemmReference(pruned, b_));
}

TEST_P(SpmmCorrectness, Balanced24MatchesReference) {
  if (GetParam().k % 4 != 0) GTEST_SKIP();
  const Matrix<float> pruned = PruneBalanced24(weights_);
  const Balanced24Matrix m = Balanced24Matrix::FromDense(pruned);
  EXPECT_EQ(SpmmBalanced24(m, b_, Spec()).c, GemmReference(pruned, b_));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmCorrectness,
    ::testing::Values(SpmmCase{16, 8, 16, 0.5}, SpmmCase{32, 16, 32, 0.25},
                      SpmmCase{64, 24, 48, 0.25}, SpmmCase{64, 33, 64, 0.1},
                      SpmmCase{128, 7, 96, 0.15}, SpmmCase{40, 12, 20, 0.5},
                      SpmmCase{64, 128, 64, 0.05},
                      SpmmCase{96, 17, 128, 0.75}));

TEST(SpmmTilewiseCorrectness, MatchesReference) {
  Rng rng(71);
  const Matrix<float> w = rng.NormalMatrix(256, 64);
  const Matrix<float> b = rng.NormalMatrix(64, 16);
  const Matrix<float> pruned = PruneVectorWise(w, 0.25, kTilewiseV);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, kTilewiseV);
  EXPECT_EQ(SpmmTilewise(vw, b, Spec()).c, GemmReference(pruned, b));
}

TEST(SpmmEdgeCases, EmptySparseMatrixGivesZeros) {
  Rng rng(73);
  const Matrix<float> b = rng.NormalMatrix(16, 8);
  const VectorWiseMatrix vw =
      VectorWiseMatrix::FromDense(Matrix<float>(16, 16), 4);
  EXPECT_EQ(SpmmVectorWise(vw, b, Spec()).c, Matrix<float>(16, 8));
}

TEST(SpmmEdgeCases, FullyDenseShflBwMatchesDenseGemm) {
  Rng rng(79);
  const Matrix<float> w = rng.NormalMatrix(16, 16);
  const Matrix<float> b = rng.NormalMatrix(16, 8);
  const ShflBwMatrix m = PruneToShflBw(w, 1.0, 4);
  EXPECT_EQ(SpmmShflBw(m, b, Spec()).c, GemmReference(m.ToDense(), b));
  // At density 1.0 nothing is pruned.
  EXPECT_EQ(m.ToDense(), w);
}

TEST(SpmmEdgeCases, SingleColumnActivation) {
  Rng rng(83);
  const Matrix<float> w = rng.NormalMatrix(8, 8);
  const Matrix<float> b = rng.NormalMatrix(8, 1);
  const ShflBwMatrix m = PruneToShflBw(w, 0.5, 4);
  EXPECT_EQ(SpmmShflBw(m, b, Spec()).c, GemmReference(m.ToDense(), b));
}

TEST(SpmmEdgeCases, ShapeMismatchThrows) {
  const VectorWiseMatrix vw =
      VectorWiseMatrix::FromDense(Matrix<float>(8, 8), 4);
  EXPECT_THROW(SpmmVectorWise(vw, Matrix<float>(9, 4), Spec()), Error);
}

// The reordered write-back property in isolation: permuting the rows of
// the weight matrix and carrying the permutation in the format must give
// exactly the same output as not permuting at all.
TEST(ReorderedWriteBack, PermutationInvariance) {
  Rng rng(89);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  const Matrix<float> b = rng.NormalMatrix(32, 8);
  const Matrix<float> pruned = PruneVectorWise(w, 0.25, 8);

  // Identity permutation.
  std::vector<int> identity(32);
  std::iota(identity.begin(), identity.end(), 0);
  const ShflBwMatrix id = ShflBwMatrix::FromDense(pruned, 8, identity);

  // Random permutation: the vector-wise structure inside each group is
  // destroyed, but auto-grouping restores contiguity; outputs match.
  Rng prng(97);
  const std::vector<int> perm = prng.Permutation(32);
  const ShflBwMatrix shuffled = ShflBwMatrix::FromDense(pruned, 8, perm);

  const Matrix<float> expected = GemmReference(pruned, b);
  EXPECT_EQ(SpmmShflBw(id, b, Spec()).c, expected);
  EXPECT_EQ(SpmmShflBw(shuffled, b, Spec()).c, expected);
}

}  // namespace
}  // namespace shflbw
