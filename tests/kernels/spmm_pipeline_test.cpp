// Tests of the Algorithm 1 software-pipeline mechanics: the skewed
// metaload/load/MMA counters and the two-level prefetch invariant
// ("metadata of future weight tiles is loaded ahead of time", §4.4).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "kernels/spmm_shfl_bw.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

std::vector<PipelineEvent> TraceFor(int m, int k, double density,
                                    const TileConfig& cfg) {
  Rng rng(101);
  const Matrix<float> w = rng.NormalMatrix(m, k);
  const ShflBwMatrix sm = PruneToShflBw(w, density, 8);
  const Matrix<float> b = rng.NormalMatrix(k, 16);
  std::vector<PipelineEvent> trace;
  SpmmShflBwTraced(sm, b, Spec(), cfg, trace);
  return trace;
}

TEST(Pipeline, CountersAreSkewed) {
  TileConfig cfg;
  cfg.tk = 4;
  cfg.pipeline_stages = 2;
  cfg.meta_prefetch_stage = 4;
  const std::vector<PipelineEvent> trace = TraceFor(16, 64, 0.5, cfg);
  ASSERT_FALSE(trace.empty());
  for (const PipelineEvent& e : trace) {
    // Alg. 1 lines 1-3: metaload leads load by MetaPrefetchStage; load
    // leads MMA by the pipeline depth.
    EXPECT_EQ(e.metaload_step - e.load_step, cfg.meta_prefetch_stage);
    EXPECT_EQ(e.load_step - e.mma_step, cfg.pipeline_stages);
  }
}

TEST(Pipeline, MetadataAlwaysPrefetchedBeforeStitch) {
  for (int meta_stage : {1, 2, 4, 8}) {
    for (int pipe : {1, 2, 3}) {
      TileConfig cfg;
      cfg.tk = 4;
      cfg.pipeline_stages = pipe;
      cfg.meta_prefetch_stage = meta_stage;
      const std::vector<PipelineEvent> trace = TraceFor(16, 64, 0.5, cfg);
      for (const PipelineEvent& e : trace) {
        EXPECT_TRUE(e.meta_ready)
            << "meta_stage=" << meta_stage << " pipe=" << pipe;
      }
    }
  }
}

TEST(Pipeline, PrologueWarmsUpBeforeFirstMma) {
  TileConfig cfg;
  cfg.tk = 4;
  cfg.pipeline_stages = 2;
  cfg.meta_prefetch_stage = 4;
  const std::vector<PipelineEvent> trace = TraceFor(16, 64, 0.5, cfg);
  // The first events have mma_step < 0 (pipeline fill); the count of
  // such events equals the total skew.
  int prologue = 0;
  for (const PipelineEvent& e : trace) {
    if (e.mma_step < 0) ++prologue;
  }
  EXPECT_EQ(prologue, cfg.meta_prefetch_stage + cfg.pipeline_stages);
}

TEST(Pipeline, ResultsIndependentOfPipelineDepth) {
  // The pipeline is a latency-hiding mechanism; functional results must
  // be identical under any legal (stages >= 1) configuration.
  Rng rng(103);
  const Matrix<float> w = rng.NormalMatrix(32, 64);
  const ShflBwMatrix sm = PruneToShflBw(w, 0.25, 8);
  const Matrix<float> b = rng.NormalMatrix(64, 24);
  TileConfig base;
  base.tk = 8;
  base.pipeline_stages = 1;
  base.meta_prefetch_stage = 1;
  const Matrix<float> ref = SpmmShflBw(sm, b, Spec(), base).c;
  for (int stages : {2, 3, 5}) {
    for (int meta : {1, 2, 4, 16}) {
      TileConfig cfg;
      cfg.tk = 8;
      cfg.pipeline_stages = stages;
      cfg.meta_prefetch_stage = meta;
      EXPECT_EQ(SpmmShflBw(sm, b, Spec(), cfg).c, ref)
          << "stages=" << stages << " meta=" << meta;
    }
  }
}

TEST(Pipeline, ResultsIndependentOfTileSizes) {
  Rng rng(107);
  const Matrix<float> w = rng.NormalMatrix(32, 96);
  const ShflBwMatrix sm = PruneToShflBw(w, 0.3, 16);
  const Matrix<float> b = rng.NormalMatrix(96, 40);
  TileConfig base;
  const Matrix<float> ref = SpmmShflBw(sm, b, Spec(), base).c;
  for (int tk : {1, 2, 4, 8, 16, 32}) {
    for (int tn : {8, 16, 64, 128}) {
      TileConfig cfg;
      cfg.tk = tk;
      cfg.tn = tn;
      EXPECT_EQ(SpmmShflBw(sm, b, Spec(), cfg).c, ref)
          << "tk=" << tk << " tn=" << tn;
    }
  }
}

TEST(Pipeline, InvalidConfigRejected) {
  Rng rng(109);
  const Matrix<float> w = rng.NormalMatrix(16, 16);
  const ShflBwMatrix sm = PruneToShflBw(w, 0.5, 4);
  const Matrix<float> b = rng.NormalMatrix(16, 4);
  TileConfig cfg;
  cfg.pipeline_stages = 0;
  EXPECT_THROW(SpmmShflBw(sm, b, Spec(), cfg), Error);
  cfg = TileConfig{};
  cfg.tk = 0;
  EXPECT_THROW(SpmmShflBw(sm, b, Spec(), cfg), Error);
}

}  // namespace
}  // namespace shflbw
