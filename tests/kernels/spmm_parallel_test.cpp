// Parallel-vs-serial determinism: every SpMM-family kernel must produce
// BIT-identical output at any thread count, because the tile / row
// decomposition writes disjoint output regions and accumulation order
// within each output element never changes. Shapes deliberately include
// ragged tails (n % tn != 0, kept % tk != 0, n < kMmaN).
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_csr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_tilewise.h"
#include "kernels/spmm_vector_sparse.h"
#include "kernels/spmm_vector_wise.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

constexpr int kThreadSweep[] = {1, 2, 8};

/// Runs `kernel` at 1, 2 and 8 threads and requires bit-identical
/// output matrices (Matrix::operator== compares raw storage).
template <typename KernelFn>
void ExpectThreadCountInvariant(const KernelFn& kernel, const char* what) {
  SetParallelThreads(kThreadSweep[0]);
  const Matrix<float> ref = kernel();
  for (std::size_t i = 1; i < std::size(kThreadSweep); ++i) {
    SetParallelThreads(kThreadSweep[i]);
    EXPECT_EQ(kernel(), ref)
        << what << " differs at " << kThreadSweep[i] << " threads";
  }
  SetParallelThreads(0);
}

struct ParallelCase {
  int m, n, k;
  double density;
};

class SpmmParallelDeterminism : public ::testing::TestWithParam<ParallelCase> {
 protected:
  void SetUp() override {
    const ParallelCase& c = GetParam();
    Rng rng(7000 + c.m + c.n + c.k);
    weights_ = rng.NormalMatrix(c.m, c.k);
    b_ = rng.NormalMatrix(c.k, c.n);
  }
  void TearDown() override { SetParallelThreads(0); }
  Matrix<float> weights_;
  Matrix<float> b_;
};

TEST_P(SpmmParallelDeterminism, VectorWise) {
  const Matrix<float> pruned =
      PruneVectorWise(weights_, GetParam().density, 8);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, 8);
  ExpectThreadCountInvariant(
      [&] { return SpmmVectorWise(vw, b_, Spec()).c; }, "vector-wise");
}

TEST_P(SpmmParallelDeterminism, ShflBw) {
  const ShflBwMatrix m = PruneToShflBw(weights_, GetParam().density, 8);
  ExpectThreadCountInvariant([&] { return SpmmShflBw(m, b_, Spec()).c; },
                             "shfl-bw");
}

TEST_P(SpmmParallelDeterminism, CsrScalar) {
  const Matrix<float> pruned =
      PruneUnstructured(weights_, GetParam().density);
  const CsrMatrix csr = CsrMatrix::FromDense(pruned);
  ExpectThreadCountInvariant([&] { return SpmmCsrScalar(csr, b_, Spec()).c; },
                             "csr-scalar");
}

TEST_P(SpmmParallelDeterminism, Sputnik) {
  const Matrix<float> pruned =
      PruneUnstructured(weights_, GetParam().density);
  const CsrMatrix csr = CsrMatrix::FromDense(pruned);
  ExpectThreadCountInvariant([&] { return SpmmSputnik(csr, b_, Spec()).c; },
                             "sputnik");
}

TEST_P(SpmmParallelDeterminism, Bsr) {
  if (GetParam().k % 8 != 0) GTEST_SKIP();
  const Matrix<float> pruned =
      PruneBlockWise(weights_, GetParam().density, 8);
  const BsrMatrix bsr = BsrMatrix::FromDense(pruned, 8);
  ExpectThreadCountInvariant([&] { return SpmmBsr(bsr, b_, Spec()).c; },
                             "bsr");
}

TEST_P(SpmmParallelDeterminism, Balanced24) {
  if (GetParam().k % 4 != 0) GTEST_SKIP();
  const Matrix<float> pruned = PruneBalanced24(weights_);
  const Balanced24Matrix m = Balanced24Matrix::FromDense(pruned);
  ExpectThreadCountInvariant([&] { return SpmmBalanced24(m, b_, Spec()).c; },
                             "balanced-2:4");
}

TEST_P(SpmmParallelDeterminism, VectorSparse) {
  const Matrix<float> pruned =
      PruneVectorWise(weights_, GetParam().density, kVectorSparseV);
  const VectorWiseMatrix vw =
      VectorWiseMatrix::FromDense(pruned, kVectorSparseV);
  ExpectThreadCountInvariant(
      [&] { return SpmmVectorSparse(vw, b_, Spec()).c; }, "vector-sparse");
}

TEST_P(SpmmParallelDeterminism, DenseGemm) {
  ExpectThreadCountInvariant([&] { return GemmReference(weights_, b_); },
                             "dense-gemm");
}

// Every m is a multiple of 8 (the vector length); n and k sweep ragged
// tails: n % tn != 0, n < kMmaN, kept % tk != 0 (kept counts follow
// from density), and one shape where a single group holds everything.
INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmParallelDeterminism,
    ::testing::Values(ParallelCase{64, 33, 64, 0.25},   // ragged n
                      ParallelCase{128, 7, 96, 0.15},   // n < kMmaN
                      ParallelCase{40, 12, 20, 0.5},    // tiny, kept%tk!=0
                      ParallelCase{96, 17, 128, 0.75},  // dense-ish
                      ParallelCase{8, 130, 44, 0.3},    // 1 group, n%tn!=0
                      ParallelCase{256, 64, 64, 0.05},  // many groups
                      ParallelCase{64, 128, 52, 0.2}));

TEST(SpmmParallelDeterminismTilewise, MatchesAcrossThreadCounts) {
  Rng rng(411);
  const Matrix<float> w = rng.NormalMatrix(256, 96);
  const Matrix<float> b = rng.NormalMatrix(96, 40);
  const Matrix<float> pruned = PruneVectorWise(w, 0.25, kTilewiseV);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, kTilewiseV);
  ExpectThreadCountInvariant([&] { return SpmmTilewise(vw, b, Spec()).c; },
                             "tilewise");
  SetParallelThreads(0);
}

// The engine's executed tiling now matches VwFamilyStats for n < kMmaN:
// both clamp the tile width to min(cfg.tn, max(kMmaN, n)), so the
// modelled threadblock count equals the number of executed tiles.
TEST(VwTileWidthConsistency, StatsMatchExecutedTilingForNarrowN) {
  Rng rng(431);
  const int m = 32, k = 64, n = 5;  // n < kMmaN
  const Matrix<float> pruned =
      PruneVectorWise(rng.NormalMatrix(m, k), 0.5, 8);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, 8);
  const Matrix<float> b = rng.NormalMatrix(k, n);
  const KernelResult r = SpmmVectorWise(vw, b, Spec());
  // One column tile per group: stats must agree with the executed grid.
  EXPECT_EQ(r.stats.threadblocks, vw.Groups());
  // And the output is still correct on the narrow activation.
  EXPECT_EQ(r.c, GemmReference(pruned, b));
}

}  // namespace
}  // namespace shflbw
