// Parameterized GEMM property sweeps across shapes: algebraic identities
// the fp16-reference kernel must satisfy, and stats invariants every
// kernel class must uphold.
#include <tuple>

#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/rng.h"
#include "kernels/gemm_dense.h"
#include "kernels/kernel_registry.h"

namespace shflbw {
namespace {

using ShapeCase = std::tuple<int, int, int>;  // m, n, k

class GemmShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(GemmShapeSweep, ZeroOperandGivesZero) {
  const auto [m, n, k] = GetParam();
  Rng rng(1200 + m + n + k);
  const Matrix<float> b = rng.NormalMatrix(k, n);
  EXPECT_EQ(GemmReference(Matrix<float>(m, k), b), Matrix<float>(m, n));
}

TEST_P(GemmShapeSweep, ScalingCommutesThroughFp16) {
  // (2A)B == 2(AB) exactly: scaling by a power of two only changes the
  // exponent, so every rounding decision is identical.
  const auto [m, n, k] = GetParam();
  Rng rng(1300 + m + n + k);
  const Matrix<float> a = rng.NormalMatrix(m, k);
  const Matrix<float> b = rng.NormalMatrix(k, n);
  Matrix<float> a2 = a;
  for (auto& v : a2.storage()) v *= 2.0f;
  const Matrix<float> lhs = GemmReference(a2, b);
  Matrix<float> rhs = GemmReference(a, b);
  for (auto& v : rhs.storage()) v *= 2.0f;
  // rhs scaling happens after the final fp16 round; re-round to align.
  for (auto& v : rhs.storage()) v = Fp16(v).ToFloat();
  EXPECT_EQ(lhs, rhs);
}

TEST_P(GemmShapeSweep, BlockDiagonalDecomposes) {
  // A GEMM against a block-diagonal A equals two half-size GEMMs.
  const auto [m, n, k] = GetParam();
  if (m % 2 != 0 || k % 2 != 0) GTEST_SKIP();
  Rng rng(1400 + m + n + k);
  const Matrix<float> a1 = rng.NormalMatrix(m / 2, k / 2);
  const Matrix<float> a2 = rng.NormalMatrix(m / 2, k / 2);
  const Matrix<float> b = rng.NormalMatrix(k, n);

  Matrix<float> block(m, k);
  for (int r = 0; r < m / 2; ++r) {
    for (int c = 0; c < k / 2; ++c) {
      block(r, c) = a1(r, c);
      block(m / 2 + r, k / 2 + c) = a2(r, c);
    }
  }
  const Matrix<float> full = GemmReference(block, b);

  Matrix<float> b1(k / 2, n), b2(k / 2, n);
  for (int r = 0; r < k / 2; ++r) {
    for (int c = 0; c < n; ++c) {
      b1(r, c) = b(r, c);
      b2(r, c) = b(k / 2 + r, c);
    }
  }
  const Matrix<float> top = GemmReference(a1, b1);
  const Matrix<float> bottom = GemmReference(a2, b2);
  for (int r = 0; r < m / 2; ++r) {
    for (int c = 0; c < n; ++c) {
      EXPECT_EQ(full(r, c), top(r, c));
      EXPECT_EQ(full(m / 2 + r, c), bottom(r, c));
    }
  }
}

TEST_P(GemmShapeSweep, StatsInvariantsForEveryKernelClass) {
  const auto [m, n, k] = GetParam();
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  LayerProblem p{m, n, k, 0.5, 2};
  for (KernelClass klass :
       {KernelClass::kDenseTensorCore, KernelClass::kDenseCudaCore,
        KernelClass::kCsrScalar, KernelClass::kSputnik}) {
    const auto stats = LayerStats(klass, p, spec);
    ASSERT_TRUE(stats.has_value()) << KernelClassName(klass);
    // Bytes and ops non-negative; issued >= useful/2; DRAM reads are a
    // lower bound of L2 reads plus the gap the L2 absorbs.
    EXPECT_GE(stats->issued_macs, stats->useful_flops / 2.0 - 1e-9);
    EXPECT_GT(stats->dram_read_bytes, 0.0);
    EXPECT_GT(stats->dram_write_bytes, 0.0);
    EXPECT_GE(stats->l2_read_bytes, 0.0);
    // Modelled time strictly positive and finite.
    const double t = CostModel(spec).Seconds(*stats);
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(ShapeCase{4, 4, 4}, ShapeCase{16, 8, 32},
                      ShapeCase{32, 1, 16}, ShapeCase{1, 32, 16},
                      ShapeCase{20, 12, 28}, ShapeCase{64, 64, 64},
                      ShapeCase{10, 3, 50}));

}  // namespace
}  // namespace shflbw
