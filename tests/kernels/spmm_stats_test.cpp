// Tests of the kernel traffic/instruction models — the quantities the
// paper's §3.2.2 analysis is about.
#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "kernels/gemm_dense.h"
#include "kernels/spmm_balanced24.h"
#include "kernels/spmm_bsr.h"
#include "kernels/spmm_shfl_bw.h"
#include "kernels/spmm_sputnik.h"
#include "kernels/spmm_tilewise.h"
#include "kernels/spmm_vector_sparse.h"

namespace shflbw {
namespace {

const GpuSpec& Spec() { return GetGpuSpec(GpuArch::kV100); }

TEST(SpmmStats, UsefulFlopsScaleWithDensity) {
  const KernelStats half = SpmmShflBwStats(2048, 128, 2048, 0.5, 64, Spec());
  const KernelStats quarter =
      SpmmShflBwStats(2048, 128, 2048, 0.25, 64, Spec());
  EXPECT_NEAR(half.useful_flops / quarter.useful_flops, 2.0, 0.01);
}

TEST(SpmmStats, ShflBwL2TrafficScalesInverselyWithV) {
  // The data-reuse core claim: B-operand L2 traffic divides by V.
  const KernelStats v8 = SpmmVectorWiseStats(2048, 128, 2048, 0.25, 8, Spec());
  const KernelStats v64 =
      SpmmVectorWiseStats(2048, 128, 2048, 0.25, 64, Spec());
  EXPECT_GT(v8.l2_read_bytes / v64.l2_read_bytes, 5.0);
}

TEST(SpmmStats, ShflBwVsVectorWiseOnlyRowIndexMetadata) {
  const KernelStats vw = SpmmVectorWiseStats(2048, 128, 2048, 0.25, 64, Spec());
  const KernelStats sb = SpmmShflBwStats(2048, 128, 2048, 0.25, 64, Spec());
  EXPECT_DOUBLE_EQ(sb.metadata_bytes - vw.metadata_bytes, 4.0 * 2048);
  EXPECT_DOUBLE_EQ(sb.useful_flops, vw.useful_flops);
  EXPECT_DOUBLE_EQ(sb.issued_macs, vw.issued_macs);
  EXPECT_DOUBLE_EQ(sb.l2_read_bytes - vw.l2_read_bytes, 4.0 * 2048);
}

TEST(SpmmStats, ReorderedWriteBackOverheadNegligible) {
  // §6.2: "Shfl-BW is in average 0.97-1.02x faster [than] our
  // vector-wise implementation, showing that row shuffling involves
  // negligible overhead" — modelled time ratio must sit in that band.
  const CostModel model(Spec());
  for (double alpha : {0.5, 0.25, 0.15, 0.05}) {
    for (int v : {32, 64}) {
      const double vw_s =
          model.Seconds(SpmmVectorWiseStats(4096, 128, 1024, alpha, v, Spec()));
      const double sb_s =
          model.Seconds(SpmmShflBwStats(4096, 128, 1024, alpha, v, Spec()));
      const double ratio = vw_s / sb_s;
      EXPECT_GT(ratio, 0.95) << "alpha=" << alpha << " v=" << v;
      EXPECT_LT(ratio, 1.05) << "alpha=" << alpha << " v=" << v;
    }
  }
}

TEST(SpmmStats, SputnikGatherTrafficScalesWithNnz) {
  const double nnz1 = 0.25 * 2048 * 2048;
  const double nnz2 = 0.5 * 2048 * 2048;
  const KernelStats a = SpmmSputnikStats(2048, 128, 2048, nnz1, Spec());
  const KernelStats b = SpmmSputnikStats(2048, 128, 2048, nnz2, Spec());
  EXPECT_NEAR(b.l2_read_bytes / a.l2_read_bytes, 2.0, 0.1);
}

TEST(SpmmStats, SputnikHasNoTensorCore) {
  const KernelStats s =
      SpmmSputnikStats(2048, 128, 2048, 1e6, Spec());
  EXPECT_FALSE(s.tensor_core);
}

TEST(SpmmStats, Balanced24LoadsFullActivation) {
  // §1: "redundant data still need to be loaded from DRAM before
  // effective operands are selected out" — B traffic equals dense.
  const KernelStats sparse = SpmmBalanced24Stats(2048, 128, 2048, Spec());
  const KernelStats dense = GemmTensorCoreStats(2048, 128, 2048, Spec());
  // B flows through L2 once per row tile, exactly as in the dense
  // kernel: no reduction despite the 2x compute cut.
  const double b_l2 = 2048.0 * 128 * 2 * (2048.0 / 128);
  EXPECT_GE(sparse.l2_read_bytes, b_l2);
  EXPECT_NEAR(sparse.issued_macs / dense.issued_macs, 0.5, 0.01);
}

TEST(SpmmStats, TilewiseLaunchesPerGroup) {
  const KernelStats s = SpmmTilewiseStats(4096, 128, 1024, 0.25, Spec());
  EXPECT_EQ(s.num_kernel_launches, 4096 / kTilewiseV);
  EXPECT_EQ(s.num_streams, kTilewiseStreams);
}

TEST(SpmmStats, PaddedMacsAtLeastUseful) {
  for (double alpha : {0.03, 0.1, 0.33}) {
    const KernelStats s = SpmmShflBwStats(512, 100, 512, alpha, 32, Spec());
    EXPECT_GE(s.issued_macs, s.useful_flops / 2.0 - 1e-6) << alpha;
  }
}

TEST(SpmmStats, BsrBlockSizeRecorded) {
  const KernelStats s = SpmmBsrStats(512, 128, 512, 64, 32, Spec());
  EXPECT_EQ(s.block_size, 32);
  EXPECT_TRUE(s.tensor_core);
}

TEST(SpmmStats, OperationIntensityOrdering) {
  // §3.2: dense-tileable patterns expose higher FLOP/byte than
  // unstructured at the same density.
  const double nnz = 0.25 * 2048 * 2048;
  const double shflbw =
      SpmmShflBwStats(2048, 128, 2048, 0.25, 64, Spec()).OperationIntensity();
  const double sputnik =
      SpmmSputnikStats(2048, 128, 2048, nnz, Spec()).OperationIntensity();
  EXPECT_GT(shflbw, sputnik);
}

class DensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweep, ModeledTimeMonotoneInDensity) {
  // More non-zeros can never be faster under the same kernel.
  const double alpha = GetParam();
  const CostModel model(Spec());
  const double t1 =
      model.Seconds(SpmmShflBwStats(2048, 128, 2048, alpha, 64, Spec()));
  const double t2 = model.Seconds(
      SpmmShflBwStats(2048, 128, 2048, std::min(1.0, alpha * 2), 64, Spec()));
  EXPECT_LE(t1, t2 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Alphas, DensitySweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2, 0.25, 0.4,
                                           0.5));

}  // namespace
}  // namespace shflbw
