#include "format/balanced24.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/balanced24_prune.h"

namespace shflbw {
namespace {

TEST(Balanced24, RejectsNonMultipleOf4Cols) {
  EXPECT_THROW(Balanced24Matrix::FromDense(Matrix<float>(2, 6)), Error);
}

TEST(Balanced24, RejectsOverfullQuad) {
  Matrix<float> d(1, 4, {1, 2, 3, 0});
  EXPECT_THROW(Balanced24Matrix::FromDense(d), Error);
}

TEST(Balanced24, KnownSmallMatrix) {
  Matrix<float> d(1, 8, {1, 0, 0, 2, 0, 3, 4, 0});
  const Balanced24Matrix m = Balanced24Matrix::FromDense(d);
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.values, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(m.meta, (std::vector<std::uint8_t>{0, 3, 1, 2}));
  EXPECT_EQ(m.ToDense(), d);
}

TEST(Balanced24, PadsSparseQuads) {
  Matrix<float> d(1, 4, {0, 5, 0, 0});  // one non-zero: pad with a zero
  const Balanced24Matrix m = Balanced24Matrix::FromDense(d);
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.ToDense(), d);
  EXPECT_EQ(m.values.size(), 2u);
}

TEST(Balanced24, EmptyQuadPads) {
  const Balanced24Matrix m = Balanced24Matrix::FromDense(Matrix<float>(2, 4));
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.ToDense(), Matrix<float>(2, 4));
}

TEST(Balanced24, RoundTripPrunedRandom) {
  Rng rng(47);
  const Matrix<float> w = rng.NormalMatrix(32, 64);
  const Matrix<float> pruned = PruneBalanced24(w);
  EXPECT_TRUE(Satisfies24(pruned));
  const Balanced24Matrix m = Balanced24Matrix::FromDense(pruned);
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.ToDense(), pruned);
  EXPECT_NEAR(1.0 - Sparsity(pruned), 0.5, 1e-9);
}

TEST(Balanced24, Satisfies24Detection) {
  Matrix<float> ok(1, 4, {1, 0, 2, 0});
  Matrix<float> bad(1, 4, {1, 2, 3, 0});
  EXPECT_TRUE(Satisfies24(ok));
  EXPECT_FALSE(Satisfies24(bad));
  EXPECT_FALSE(Satisfies24(Matrix<float>(1, 6)));  // bad width
}

TEST(Balanced24, MetadataIsTwoBitsPerValue) {
  const Balanced24Matrix m =
      Balanced24Matrix::FromDense(Matrix<float>(4, 16));
  // 4*16/2 = 32 kept slots, 2 bits each = 8 bytes.
  EXPECT_DOUBLE_EQ(m.MetadataBytes(), 8.0);
}

}  // namespace
}  // namespace shflbw
