#include "format/vector_wise.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(VectorWise, RejectsMisalignedRows) {
  EXPECT_THROW(VectorWiseMatrix::FromDense(Matrix<float>(6, 4), 4), Error);
}

TEST(VectorWise, KnownSmallMatrix) {
  // Two groups of 2 rows; group 0 keeps cols {0,2}, group 1 keeps {1}.
  Matrix<float> d(4, 3, {1, 0, 2,
                         3, 0, 4,
                         0, 5, 0,
                         0, 6, 0});
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 2);
  EXPECT_EQ(vw.Groups(), 2);
  EXPECT_EQ(vw.KeptVectors(), 3);
  EXPECT_EQ(vw.group_col_ptr, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(vw.col_idx, (std::vector<int>{0, 2, 1}));
  // Vector-contiguous: values of one vector are adjacent.
  EXPECT_EQ(vw.values, (std::vector<float>{1, 3, 2, 4, 5, 6}));
  EXPECT_EQ(vw.ToDense(), d);
}

TEST(VectorWise, PaddingZerosStored) {
  // A kept column with a zero inside the group stores the zero.
  Matrix<float> d(2, 2, {1, 0,
                         0, 0});
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 2);
  EXPECT_EQ(vw.KeptVectors(), 1);
  EXPECT_EQ(vw.values, (std::vector<float>{1, 0}));
  EXPECT_DOUBLE_EQ(vw.PaddingFraction(), 0.5);
}

TEST(VectorWise, NoPaddingAfterVectorWisePruning) {
  Rng rng(31);
  // All-non-zero weights pruned vector-wise have no padding.
  const Matrix<float> w = rng.UniformMatrix(64, 48, 0.5f, 1.5f);
  const Matrix<float> pruned = PruneVectorWise(w, 0.25, 16);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(pruned, 16);
  EXPECT_NO_THROW(vw.Validate());
  EXPECT_DOUBLE_EQ(vw.PaddingFraction(), 0.0);
  EXPECT_NEAR(vw.StoredDensity(), 0.25, 1e-9);
}

TEST(VectorWise, RoundTripRandom) {
  Rng rng(37);
  for (int v : {2, 4, 8, 16}) {
    const Matrix<float> d = rng.SparseMatrix(32, 40, 0.3);
    const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, v);
    EXPECT_NO_THROW(vw.Validate());
    EXPECT_EQ(vw.ToDense(), d) << "v=" << v;
  }
}

TEST(VectorWise, PerGroupCountsVary) {
  Matrix<float> d(4, 4);
  d(0, 0) = d(0, 1) = d(0, 2) = 1;  // group 0: 3 vectors
  d(2, 3) = 1;                      // group 1: 1 vector
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 2);
  EXPECT_EQ(vw.KeptColumnsInGroup(0), 3);
  EXPECT_EQ(vw.KeptColumnsInGroup(1), 1);
}

TEST(VectorWise, ValidateCatchesUnsortedColumns) {
  Matrix<float> d(2, 3, {1, 1, 0, 1, 1, 0});
  VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 2);
  std::swap(vw.col_idx[0], vw.col_idx[1]);
  EXPECT_THROW(vw.Validate(), Error);
}

}  // namespace
}  // namespace shflbw
