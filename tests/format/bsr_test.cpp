#include "format/bsr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/block_wise.h"
#include "format/convert.h"

namespace shflbw {
namespace {

TEST(Bsr, RejectsMisalignedShape) {
  EXPECT_THROW(BsrMatrix::FromDense(Matrix<float>(6, 6), 4), Error);
  EXPECT_THROW(BsrMatrix::FromDense(Matrix<float>(8, 6), 4), Error);
}

TEST(Bsr, SingleBlock) {
  Matrix<float> d(2, 2, {1, 2, 3, 4});
  const BsrMatrix bsr = BsrMatrix::FromDense(d, 2);
  EXPECT_EQ(bsr.NnzBlocks(), 1);
  EXPECT_EQ(bsr.values, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(bsr.ToDense(), d);
}

TEST(Bsr, SkipsAllZeroBlocks) {
  Matrix<float> d(4, 4);
  d(0, 0) = 5;  // only block (0,0) kept
  const BsrMatrix bsr = BsrMatrix::FromDense(d, 2);
  EXPECT_EQ(bsr.NnzBlocks(), 1);
  EXPECT_EQ(bsr.block_col_idx, (std::vector<int>{0}));
  EXPECT_EQ(bsr.ToDense(), d);
}

TEST(Bsr, KeptBlocksMayContainZeros) {
  // Padding semantics: a block with any non-zero is stored whole.
  Matrix<float> d(2, 2, {1, 0, 0, 0});
  const BsrMatrix bsr = BsrMatrix::FromDense(d, 2);
  EXPECT_EQ(bsr.NnzBlocks(), 1);
  EXPECT_EQ(bsr.ToDense(), d);
}

TEST(Bsr, RoundTripBlockPrunedRandom) {
  Rng rng(23);
  const Matrix<float> w = rng.NormalMatrix(64, 64);
  const Matrix<float> pruned = PruneBlockWise(w, 0.25, 16);
  const BsrMatrix bsr = BsrMatrix::FromDense(pruned, 16);
  EXPECT_NO_THROW(bsr.Validate());
  EXPECT_EQ(bsr.ToDense(), pruned);
  EXPECT_NEAR(bsr.Density(), 0.25, 1e-9);
}

TEST(Bsr, ValidateCatchesCorruptedBlockColumns) {
  Matrix<float> d(4, 4, std::vector<float>(16, 1.0f));
  BsrMatrix bsr = BsrMatrix::FromDense(d, 2);
  std::swap(bsr.block_col_idx[0], bsr.block_col_idx[1]);
  EXPECT_THROW(bsr.Validate(), Error);
}

TEST(Bsr, IsBlockAlignedDetectsPurePattern) {
  Rng rng(29);
  const Matrix<float> w = rng.UniformMatrix(32, 32, 0.5f, 1.0f);  // no zeros
  const Matrix<float> pruned = PruneBlockWise(w, 0.5, 8);
  EXPECT_TRUE(IsBlockAligned(pruned, 8));
  Matrix<float> broken = pruned;
  // Zero one element inside a kept block -> no longer pure block-wise.
  for (int r = 0; r < 32 && broken == pruned; ++r) {
    for (int c = 0; c < 32; ++c) {
      if (broken(r, c) != 0.0f) {
        broken(r, c) = 0.0f;
        break;
      }
    }
  }
  EXPECT_FALSE(IsBlockAligned(broken, 8));
}

}  // namespace
}  // namespace shflbw
