#include "format/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(Serialize, CsrRoundTrip) {
  Rng rng(601);
  const CsrMatrix m =
      CsrMatrix::FromDense(PruneUnstructured(rng.NormalMatrix(23, 31), 0.3));
  std::stringstream ss;
  Serialize(m, ss);
  const CsrMatrix back = DeserializeCsr(ss);
  EXPECT_EQ(back.ToDense(), m.ToDense());
  EXPECT_EQ(back.row_ptr, m.row_ptr);
}

TEST(Serialize, BsrRoundTrip) {
  Rng rng(607);
  const BsrMatrix m = BsrMatrix::FromDense(
      PruneBlockWise(rng.NormalMatrix(32, 32), 0.25, 8), 8);
  std::stringstream ss;
  Serialize(m, ss);
  EXPECT_EQ(DeserializeBsr(ss).ToDense(), m.ToDense());
}

TEST(Serialize, VectorWiseRoundTrip) {
  Rng rng(613);
  const VectorWiseMatrix m = VectorWiseMatrix::FromDense(
      PruneVectorWise(rng.NormalMatrix(32, 48), 0.25, 8), 8);
  std::stringstream ss;
  Serialize(m, ss);
  const VectorWiseMatrix back = DeserializeVectorWise(ss);
  EXPECT_EQ(back.ToDense(), m.ToDense());
  EXPECT_EQ(back.v, 8);
}

TEST(Serialize, ShflBwRoundTripIncludingPermutation) {
  Rng rng(617);
  const ShflBwMatrix m = PruneToShflBw(rng.NormalMatrix(32, 32), 0.25, 8);
  std::stringstream ss;
  Serialize(m, ss);
  const ShflBwMatrix back = DeserializeShflBw(ss);
  EXPECT_EQ(back.ToDense(), m.ToDense());
  EXPECT_EQ(back.storage_to_original, m.storage_to_original);
  EXPECT_EQ(back.vw.values, m.vw.values);  // bit-exact
}

TEST(Serialize, Balanced24RoundTrip) {
  Rng rng(619);
  const Balanced24Matrix m =
      Balanced24Matrix::FromDense(PruneBalanced24(rng.NormalMatrix(16, 32)));
  std::stringstream ss;
  Serialize(m, ss);
  EXPECT_EQ(DeserializeBalanced24(ss).ToDense(), m.ToDense());
}

TEST(Serialize, PeekKindDoesNotConsume) {
  Rng rng(621);
  const ShflBwMatrix m = PruneToShflBw(rng.NormalMatrix(16, 16), 0.5, 4);
  std::stringstream ss;
  Serialize(m, ss);
  EXPECT_EQ(PeekFormatKind(ss), "shflbw");
  // Stream still deserializes from the start.
  EXPECT_EQ(DeserializeShflBw(ss).ToDense(), m.ToDense());
}

TEST(Serialize, WrongKindRejected) {
  Rng rng(631);
  const CsrMatrix m =
      CsrMatrix::FromDense(PruneUnstructured(rng.NormalMatrix(8, 8), 0.5));
  std::stringstream ss;
  Serialize(m, ss);
  EXPECT_THROW(DeserializeShflBw(ss), Error);
}

TEST(Serialize, GarbageRejected) {
  std::stringstream ss("this is not a shflbw file at all............");
  EXPECT_THROW(DeserializeCsr(ss), Error);
}

TEST(Serialize, TruncatedStreamRejected) {
  Rng rng(641);
  const ShflBwMatrix m = PruneToShflBw(rng.NormalMatrix(16, 16), 0.5, 4);
  std::stringstream ss;
  Serialize(m, ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(DeserializeShflBw(truncated), Error);
}

TEST(Serialize, FileHelpersRoundTrip) {
  Rng rng(643);
  const ShflBwMatrix m = PruneToShflBw(rng.NormalMatrix(32, 32), 0.25, 8);
  const std::string path = ::testing::TempDir() + "/shflbw_roundtrip.bin";
  SaveShflBw(m, path);
  EXPECT_EQ(LoadShflBw(path).ToDense(), m.ToDense());
  EXPECT_THROW(LoadShflBw("/nonexistent/dir/x.bin"), Error);
}

}  // namespace
}  // namespace shflbw
