#include "format/csr.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace shflbw {
namespace {

TEST(Csr, EmptyMatrix) {
  const CsrMatrix csr = CsrMatrix::FromDense(Matrix<float>(3, 4));
  EXPECT_EQ(csr.Nnz(), 0);
  EXPECT_NO_THROW(csr.Validate());
  EXPECT_EQ(csr.ToDense(), Matrix<float>(3, 4));
}

TEST(Csr, KnownSmallMatrix) {
  Matrix<float> d(2, 3, {1, 0, 2, 0, 3, 0});
  const CsrMatrix csr = CsrMatrix::FromDense(d);
  EXPECT_EQ(csr.Nnz(), 3);
  EXPECT_EQ(csr.row_ptr, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(csr.col_idx, (std::vector<int>{0, 2, 1}));
  EXPECT_EQ(csr.values, (std::vector<float>{1, 2, 3}));
}

TEST(Csr, RoundTripRandom) {
  Rng rng(17);
  for (double density : {0.05, 0.3, 0.9}) {
    const Matrix<float> d = rng.SparseMatrix(37, 53, density);
    const CsrMatrix csr = CsrMatrix::FromDense(d);
    EXPECT_NO_THROW(csr.Validate());
    EXPECT_EQ(csr.ToDense(), d) << "density=" << density;
  }
}

TEST(Csr, DensityComputed) {
  Matrix<float> d(2, 2, {1, 0, 0, 1});
  EXPECT_DOUBLE_EQ(CsrMatrix::FromDense(d).Density(), 0.5);
}

TEST(Csr, ValidateCatchesBadRowPtr) {
  CsrMatrix csr = CsrMatrix::FromDense(Matrix<float>(2, 2, {1, 0, 0, 1}));
  csr.row_ptr[1] = 5;
  EXPECT_THROW(csr.Validate(), Error);
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  CsrMatrix csr = CsrMatrix::FromDense(Matrix<float>(1, 3, {1, 2, 3}));
  std::swap(csr.col_idx[0], csr.col_idx[2]);
  EXPECT_THROW(csr.Validate(), Error);
}

TEST(Csr, ValidateCatchesOutOfRangeColumn) {
  CsrMatrix csr = CsrMatrix::FromDense(Matrix<float>(1, 3, {1, 0, 0}));
  csr.col_idx[0] = 7;
  EXPECT_THROW(csr.Validate(), Error);
}

TEST(Csr, MetadataBytesCounted) {
  const CsrMatrix csr =
      CsrMatrix::FromDense(Matrix<float>(2, 2, {1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(csr.MetadataBytes(), 4.0 * (3 + 4));
}

}  // namespace
}  // namespace shflbw
