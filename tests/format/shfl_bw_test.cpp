#include "format/shfl_bw.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

/// A matrix that is exactly Shfl-BW: rows 0/2 share a pattern, 1/3 share
/// another, interleaved so grouping requires a shuffle.
Matrix<float> InterleavedPatternMatrix() {
  Matrix<float> d(4, 4);
  d(0, 0) = 1; d(0, 2) = 2;   // pattern A
  d(1, 1) = 3; d(1, 3) = 4;   // pattern B
  d(2, 0) = 5; d(2, 2) = 6;   // pattern A
  d(3, 1) = 7; d(3, 3) = 8;   // pattern B
  return d;
}

TEST(ShflBw, ExplicitPermutationRoundTrip) {
  const Matrix<float> d = InterleavedPatternMatrix();
  const ShflBwMatrix m = ShflBwMatrix::FromDense(d, 2, {0, 2, 1, 3});
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.ToDense(), d);
  // Grouped correctly: each group keeps exactly 2 columns, no padding.
  EXPECT_EQ(m.vw.KeptColumnsInGroup(0), 2);
  EXPECT_EQ(m.vw.KeptColumnsInGroup(1), 2);
  EXPECT_DOUBLE_EQ(m.vw.PaddingFraction(), 0.0);
}

TEST(ShflBw, BadPermutationRejected) {
  const Matrix<float> d = InterleavedPatternMatrix();
  EXPECT_THROW(ShflBwMatrix::FromDense(d, 2, {0, 0, 1, 3}), Error);  // dup
  EXPECT_THROW(ShflBwMatrix::FromDense(d, 2, {0, 1, 2}), Error);  // short
  EXPECT_THROW(ShflBwMatrix::FromDense(d, 2, {0, 1, 2, 4}), Error);  // range
}

TEST(ShflBw, AutoGroupingRecoversExactPattern) {
  const Matrix<float> d = InterleavedPatternMatrix();
  const ShflBwMatrix m = ShflBwMatrix::FromDenseAuto(d, 2);
  EXPECT_EQ(m.ToDense(), d);
  EXPECT_DOUBLE_EQ(m.vw.PaddingFraction(), 0.0);  // perfect grouping
}

TEST(ShflBw, AutoGroupingHandlesNonGroupableMatrix) {
  // Every row has a different pattern: grouping must pad, never fail.
  Matrix<float> d(4, 4);
  d(0, 0) = 1;
  d(1, 1) = 1;
  d(2, 2) = 1;
  d(3, 3) = 1;
  const ShflBwMatrix m = ShflBwMatrix::FromDenseAuto(d, 2);
  EXPECT_NO_THROW(m.Validate());
  EXPECT_EQ(m.ToDense(), d);
  EXPECT_GT(m.vw.PaddingFraction(), 0.0);
}

TEST(ShflBw, IsShflBwDetection) {
  EXPECT_TRUE(IsShflBw(InterleavedPatternMatrix(), 2));
  Matrix<float> odd(4, 4);
  odd(0, 0) = 1;  // one row with a unique pattern, three empty
  EXPECT_FALSE(IsShflBw(odd, 2));
  EXPECT_FALSE(IsShflBw(InterleavedPatternMatrix(), 3));  // no divisibility
}

Matrix<float> ExtractMaskForTest(const ShflBwMatrix& m) {
  const Matrix<float> dense = m.ToDense();
  Matrix<float> mask(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    mask.storage()[i] = dense.storage()[i] != 0.0f ? 1.0f : 0.0f;
  }
  return mask;
}

TEST(ShflBw, SearchOutputIsAlwaysValidShflBw) {
  Rng rng(41);
  const Matrix<float> w = rng.NormalMatrix(64, 64);
  const ShflBwMatrix m = PruneToShflBw(w, 0.25, 16);
  EXPECT_NO_THROW(m.Validate());
  // The search's mask groups rows exactly: pattern check passes.
  EXPECT_TRUE(IsShflBw(ExtractMaskForTest(m), 16));
}

TEST(ShflBw, MetadataIncludesRowIndices) {
  const Matrix<float> d = InterleavedPatternMatrix();
  const ShflBwMatrix m = ShflBwMatrix::FromDense(d, 2, {0, 2, 1, 3});
  EXPECT_DOUBLE_EQ(m.MetadataBytes() - m.vw.MetadataBytes(), 4.0 * 4);
}

TEST(ShflBw, IdentityPermutationEqualsVectorWise) {
  Rng rng(43);
  const Matrix<float> d = rng.SparseMatrix(16, 16, 0.4);
  std::vector<int> identity(16);
  std::iota(identity.begin(), identity.end(), 0);
  const ShflBwMatrix m = ShflBwMatrix::FromDense(d, 4, identity);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 4);
  EXPECT_EQ(m.vw.col_idx, vw.col_idx);
  EXPECT_EQ(m.vw.values, vw.values);
}

}  // namespace
}  // namespace shflbw
