#include "format/convert.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/shfl_bw_search.h"

namespace shflbw {
namespace {

TEST(Convert, ExtractAndApplyMask) {
  Matrix<float> d(2, 2, {1.5f, 0, 0, -2});
  const Matrix<float> mask = ExtractMask(d);
  EXPECT_EQ(mask, Matrix<float>(2, 2, {1, 0, 0, 1}));
  const Matrix<float> other(2, 2, {10, 20, 30, 40});
  EXPECT_EQ(ApplyMask(other, mask), Matrix<float>(2, 2, {10, 0, 0, 40}));
}

TEST(Convert, QuantizeFp16MatchesElementwise) {
  Matrix<float> d(1, 3, {0.1f, 2049.0f, -1e-20f});
  const Matrix<float> q = QuantizeFp16(d);
  EXPECT_EQ(q(0, 0), Fp16(0.1f).ToFloat());
  EXPECT_EQ(q(0, 1), 2048.0f);
  EXPECT_EQ(q(0, 2), 0.0f);
}

TEST(Convert, VectorWiseToCsrPreservesValues) {
  Rng rng(53);
  const Matrix<float> d = rng.SparseMatrix(16, 16, 0.4);
  const VectorWiseMatrix vw = VectorWiseMatrix::FromDense(d, 4);
  const CsrMatrix csr = VectorWiseToCsr(vw);
  EXPECT_EQ(csr.ToDense(), d);
}

// The paper's central structural claim (Fig. 3): a Shfl-BW matrix
// transforms into a block-wise matrix via row grouping + column
// stitching. The stitched BSR must contain exactly the same values,
// reorganized, with only zero padding added.
TEST(Convert, ShflBwToBlockWiseStitching) {
  Rng rng(59);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  const ShflBwMatrix m = PruneToShflBw(w, 0.25, 8);
  const BsrMatrix bsr = ShflBwToBlockWise(m);
  EXPECT_NO_THROW(bsr.Validate());
  EXPECT_EQ(bsr.block_size, 8);
  EXPECT_EQ(bsr.rows, 32);

  // Value multiset preserved: every non-zero of the Shfl-BW matrix
  // appears in the stitched blocks, and everything else is padding.
  std::vector<float> original = m.vw.values;
  std::vector<float> stitched = bsr.values;
  std::erase(original, 0.0f);
  std::erase(stitched, 0.0f);
  std::sort(original.begin(), original.end());
  std::sort(stitched.begin(), stitched.end());
  EXPECT_EQ(original, stitched);
}

TEST(Convert, ShflBwToBlockWiseBlockCounts) {
  // Column stitching packs each group's kept vectors into ceil(kept/V)
  // blocks (the last one zero-padded).
  Rng rng(61);
  const Matrix<float> w = rng.UniformMatrix(16, 16, 0.5f, 1.0f);
  const ShflBwMatrix m = PruneToShflBw(w, 0.5, 4);
  const BsrMatrix bsr = ShflBwToBlockWise(m);
  for (int g = 0; g < m.vw.Groups(); ++g) {
    const int kept = m.vw.KeptColumnsInGroup(g);
    EXPECT_EQ(bsr.block_row_ptr[g + 1] - bsr.block_row_ptr[g],
              (kept + 3) / 4)
        << "group " << g;
  }
}

}  // namespace
}  // namespace shflbw
