#include "arch/flexibility.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

TEST(Flexibility, LogFactorialMatchesSmallCases) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-6);
}

TEST(Flexibility, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 5), std::log(252.0), 1e-9);
  EXPECT_NEAR(LogBinomial(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(7, 7), 0.0, 1e-12);
  EXPECT_THROW(LogBinomial(5, 6), Error);
}

TEST(Flexibility, RowGroupingSmallCase) {
  // 4 rows in ordered groups of 2: 4!/(2!^2) = 6.
  EXPECT_NEAR(LogRowGroupingCount(4, 2, true), std::log(6.0), 1e-9);
  // Unordered groups: 6/2! = 3.
  EXPECT_NEAR(LogRowGroupingCount(4, 2, false), std::log(3.0), 1e-9);
}

TEST(Flexibility, PaperExampleExceedsE700) {
  // §3.2.1: "for a weight matrix with M=512 rows and when V=128, this
  // combination number already exceeds e^700".
  const double log_count = LogRowGroupingCount(512, 128, true);
  EXPECT_GT(log_count, 700.0);
}

TEST(Flexibility, GroupingRequiresDivisibility) {
  EXPECT_THROW(LogRowGroupingCount(10, 3, true), Error);
}

TEST(Flexibility, PatternOrdering) {
  // Unstructured > Shfl-BW > vector-wise > block-wise (Fig. 3 order).
  const FlexibilityReport rep = AnalyzeFlexibility(256, 256, 0.25, 32);
  EXPECT_GT(rep.log_unstructured, rep.log_shfl_bw);
  EXPECT_GT(rep.log_shfl_bw, rep.log_vector_wise);
  EXPECT_GT(rep.log_vector_wise, rep.log_block_wise);
}

TEST(Flexibility, ShflBwGainIsTheGroupingCount) {
  const FlexibilityReport rep = AnalyzeFlexibility(256, 256, 0.25, 32);
  EXPECT_NEAR(rep.log_shfl_bw - rep.log_vector_wise,
              LogRowGroupingCount(256, 32, true), 1e-9);
}

class FlexibilitySweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(FlexibilitySweep, OrderingHoldsAcrossVAndAlpha) {
  const int v = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  const FlexibilityReport rep = AnalyzeFlexibility(512, 512, alpha, v);
  EXPECT_GE(rep.log_unstructured, rep.log_shfl_bw - 1e-9);
  EXPECT_GT(rep.log_shfl_bw, rep.log_vector_wise);
  EXPECT_GT(rep.log_vector_wise, rep.log_block_wise);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlexibilitySweep,
    ::testing::Combine(::testing::Values(8, 16, 32, 64, 128),
                       ::testing::Values(0.05, 0.1, 0.2, 0.25, 0.5)));

}  // namespace
}  // namespace shflbw
