#include "arch/intensity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

constexpr double kBudget = 16384.0;  // accumulators (128x128 tile)

TEST(Intensity, DenseOptimumIsSquareTile) {
  const ReuseAnalysis r = DenseMaxReuse(kBudget);
  EXPECT_DOUBLE_EQ(r.best_tm, 128.0);
  EXPECT_DOUBLE_EQ(r.best_tn, 128.0);
  // 2*128*128 / ((128+128)*2) = 64 flop/byte.
  EXPECT_DOUBLE_EQ(r.flop_per_byte, 64.0);
}

TEST(Intensity, UnstructuredFollowsSqrtAlphaLaw) {
  // §3.2.2: Max_reuse = sqrt(alpha) * Reuse_dense.
  const double dense = DenseMaxReuse(kBudget).flop_per_byte;
  for (double alpha : {0.5, 0.25, 0.1, 0.05, 0.02}) {
    const ReuseAnalysis r = UnstructuredMaxReuse(kBudget, alpha);
    EXPECT_NEAR(r.flop_per_byte, std::sqrt(alpha) * dense, 1e-9)
        << "alpha=" << alpha;
  }
}

TEST(Intensity, UnstructuredOptimalTilesSkewed) {
  const ReuseAnalysis r = UnstructuredMaxReuse(kBudget, 0.25);
  // TM = sqrt(budget/alpha), TN = sqrt(budget*alpha).
  EXPECT_NEAR(r.best_tm, 256.0, 1e-9);
  EXPECT_NEAR(r.best_tn, 64.0, 1e-9);
  EXPECT_NEAR(r.best_tm * r.best_tn, kBudget, 1e-6);
}

TEST(Intensity, BlockWiseReachesDenseAtOptimalV) {
  // §3.2.2: reuse reaches Reuse_dense as soon as V >= T_opt.
  const double dense = DenseMaxReuse(kBudget).flop_per_byte;
  const double t_opt = OptimalDenseTileEdge(kBudget);
  EXPECT_DOUBLE_EQ(t_opt, 128.0);
  EXPECT_NEAR(BlockWiseReuse(kBudget, 128).flop_per_byte, dense, 1e-9);
}

TEST(Intensity, BlockWiseBelowOptimalVLosesReuse) {
  const double dense = DenseMaxReuse(kBudget).flop_per_byte;
  const double v8 = BlockWiseReuse(kBudget, 8).flop_per_byte;
  const double v32 = BlockWiseReuse(kBudget, 32).flop_per_byte;
  const double v64 = BlockWiseReuse(kBudget, 64).flop_per_byte;
  EXPECT_LT(v8, v32);
  EXPECT_LT(v32, v64);
  EXPECT_LT(v64, dense + 1e-9);
  // V=8 (VectorSparse) reuse is ~8x worse than dense — the paper's
  // explanation of why that baseline loses.
  EXPECT_LT(v8, dense / 7.0);
}

TEST(Intensity, BlockWiseBeatsUnstructuredAtModerateSparsity) {
  // The core of the paper's argument: at DNN-relevant sparsities, a
  // dense-tileable pattern (V>=32) has higher intensity than
  // unstructured.
  for (double alpha : {0.5, 0.25, 0.15, 0.05}) {
    EXPECT_GT(BlockWiseReuse(kBudget, 64).flop_per_byte,
              UnstructuredMaxReuse(kBudget, alpha).flop_per_byte)
        << "alpha=" << alpha;
  }
}

TEST(Intensity, RegfileAccumulatorsPositive) {
  for (const GpuSpec& spec : AllGpus()) {
    EXPECT_GT(RegfileAccumulators(spec), 1000.0) << spec.name;
  }
}

TEST(Intensity, InvalidArgsThrow) {
  EXPECT_THROW(UnstructuredMaxReuse(kBudget, 0.0), Error);
  EXPECT_THROW(UnstructuredMaxReuse(kBudget, 1.5), Error);
  EXPECT_THROW(BlockWiseReuse(kBudget, 0), Error);
}

class IntensityAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(IntensityAlphaSweep, SqrtLawHoldsForAllAlpha) {
  const double alpha = GetParam();
  const double dense = DenseMaxReuse(kBudget).flop_per_byte;
  EXPECT_NEAR(UnstructuredMaxReuse(kBudget, alpha).flop_per_byte,
              std::sqrt(alpha) * dense, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, IntensityAlphaSweep,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1, 0.15, 0.2,
                                           0.25, 0.3, 0.4, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace shflbw
