#include "arch/gpu_spec.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace shflbw {
namespace {

TEST(GpuSpec, ThreeGpusAvailable) {
  EXPECT_EQ(AllGpus().size(), 3u);
  EXPECT_EQ(GetGpuSpec(GpuArch::kV100).name, "V100");
  EXPECT_EQ(GetGpuSpec(GpuArch::kT4).name, "T4");
  EXPECT_EQ(GetGpuSpec(GpuArch::kA100).name, "A100");
}

TEST(GpuSpec, ParseIsCaseInsensitive) {
  EXPECT_EQ(ParseGpuArch("v100"), GpuArch::kV100);
  EXPECT_EQ(ParseGpuArch("T4"), GpuArch::kT4);
  EXPECT_EQ(ParseGpuArch("a100"), GpuArch::kA100);
  EXPECT_THROW(ParseGpuArch("H100"), Error);
}

TEST(GpuSpec, TensorCoreAdvantageAboutFour) {
  // §2.1: "The peak throughput of tensor-cores exceeds original
  // CUDA-cores by a large margin, e.g. 4x on V100 and A100".
  EXPECT_NEAR(GetGpuSpec(GpuArch::kV100).TensorCoreAdvantage(), 4.0, 0.2);
  EXPECT_NEAR(GetGpuSpec(GpuArch::kA100).TensorCoreAdvantage(), 4.0, 0.2);
  EXPECT_NEAR(GetGpuSpec(GpuArch::kT4).TensorCoreAdvantage(), 4.0, 0.2);
}

TEST(GpuSpec, ComputeToBandwidthRatiosPinned) {
  // These ratios drive which kernels are compute- vs memory-bound per
  // GPU (the §6.2 T4-vs-V100 argument); pin them so calibration is
  // stable: V100 112T/900G = 124, T4 65T/320G = 203, A100 312T/1555G =
  // 201 flop per DRAM byte.
  EXPECT_NEAR(GetGpuSpec(GpuArch::kV100).ComputeToBandwidthRatio(), 124.4,
              1.0);
  EXPECT_NEAR(GetGpuSpec(GpuArch::kT4).ComputeToBandwidthRatio(), 203.1,
              1.0);
  EXPECT_NEAR(GetGpuSpec(GpuArch::kA100).ComputeToBandwidthRatio(), 200.6,
              1.0);
}

TEST(GpuSpec, A100NeedsAbout63MacsPerLlcValue) {
  // §2.1: "given the A100 tensor-core throughput and last-level-cache
  // bandwidth, one needs to perform 63 MACs on each loaded value".
  EXPECT_NEAR(GetGpuSpec(GpuArch::kA100).MacsPerLlcValue(), 63.0, 3.0);
}

TEST(GpuSpec, BandwidthOrdering) {
  EXPECT_GT(GetGpuSpec(GpuArch::kA100).dram_bandwidth,
            GetGpuSpec(GpuArch::kV100).dram_bandwidth);
  EXPECT_GT(GetGpuSpec(GpuArch::kV100).dram_bandwidth,
            GetGpuSpec(GpuArch::kT4).dram_bandwidth);
}

}  // namespace
}  // namespace shflbw
