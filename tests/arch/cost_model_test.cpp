#include "arch/cost_model.h"

#include <gtest/gtest.h>

namespace shflbw {
namespace {

KernelStats SimpleStats() {
  KernelStats s;
  s.kernel_class = KernelClass::kDenseTensorCore;
  s.tensor_core = true;
  s.useful_flops = 2e9;
  s.issued_macs = 1e9;
  s.dram_read_bytes = 1e6;
  s.dram_write_bytes = 1e5;
  s.l2_read_bytes = 2e6;
  s.main_loop_iters = 100;
  s.pipeline_stages = 2;
  return s;
}

TEST(CostModel, ComputeBoundWhenTrafficTiny) {
  KernelStats s = SimpleStats();
  s.dram_read_bytes = 10;
  s.dram_write_bytes = 0;
  s.l2_read_bytes = 10;
  const TimeBreakdown t = CostModel(GetGpuSpec(GpuArch::kV100)).Estimate(s);
  EXPECT_EQ(t.bound, Bound::kCompute);
  EXPECT_GT(t.compute_s, t.dram_s);
}

TEST(CostModel, DramBoundWhenComputeTiny) {
  KernelStats s = SimpleStats();
  s.issued_macs = 10;
  s.dram_read_bytes = 1e9;
  const TimeBreakdown t = CostModel(GetGpuSpec(GpuArch::kV100)).Estimate(s);
  EXPECT_EQ(t.bound, Bound::kDram);
}

TEST(CostModel, L2BoundPossible) {
  KernelStats s = SimpleStats();
  s.issued_macs = 10;
  s.dram_read_bytes = 100;
  s.dram_write_bytes = 0;
  s.l2_read_bytes = 1e9;
  const TimeBreakdown t = CostModel(GetGpuSpec(GpuArch::kV100)).Estimate(s);
  EXPECT_EQ(t.bound, Bound::kL2);
}

TEST(CostModel, TotalIsRoofPlusOverheads) {
  const TimeBreakdown t =
      CostModel(GetGpuSpec(GpuArch::kV100)).Estimate(SimpleStats());
  const double roof = std::max({t.compute_s, t.dram_s, t.l2_s});
  EXPECT_DOUBLE_EQ(t.total_s, roof + t.launch_s + t.pipeline_fill_s);
}

TEST(CostModel, TensorCoreFasterThanCudaCoreOnSameWork) {
  KernelStats tc = SimpleStats();
  KernelStats cc = SimpleStats();
  cc.kernel_class = KernelClass::kDenseCudaCore;
  cc.tensor_core = false;
  const CostModel model(GetGpuSpec(GpuArch::kV100));
  EXPECT_LT(model.Seconds(tc), model.Seconds(cc));
}

TEST(CostModel, MultiLaunchAddsOverhead) {
  KernelStats s = SimpleStats();
  const CostModel model(GetGpuSpec(GpuArch::kV100));
  const double one = model.Seconds(s);
  s.num_kernel_launches = 32;
  EXPECT_GT(model.Seconds(s), one);
}

TEST(CostModel, PipelineFillScalesWithStages) {
  KernelStats s = SimpleStats();
  const CostModel model(GetGpuSpec(GpuArch::kV100));
  s.pipeline_stages = 0;
  const double no_pipe = model.Estimate(s).pipeline_fill_s;
  EXPECT_EQ(no_pipe, 0.0);
  s.pipeline_stages = 4;
  EXPECT_GT(model.Estimate(s).pipeline_fill_s, 0.0);
}

TEST(CostModel, BsrInstabilityMultiplierApplied) {
  KernelStats s = SimpleStats();
  s.kernel_class = KernelClass::kBsrTensorCore;
  s.block_size = 64;
  const CostModel t4(GetGpuSpec(GpuArch::kT4));
  KernelStats base = s;
  base.block_size = 0;  // multiplier off
  EXPECT_GT(t4.Seconds(s), t4.Seconds(base));
  // On V100 with small blocks cuSPARSE is *faster* than baseline.
  KernelStats small = s;
  small.block_size = 32;
  const CostModel v100(GetGpuSpec(GpuArch::kV100));
  EXPECT_LT(v100.Seconds(small), v100.Seconds(base));
}

TEST(CostModel, StatsAccumulation) {
  KernelStats a = SimpleStats();
  KernelStats b = SimpleStats();
  b.useful_flops = 5;
  b.dram_read_bytes = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a.useful_flops, 2e9 + 5);
  EXPECT_DOUBLE_EQ(a.dram_read_bytes, 1e6 + 7);
  EXPECT_EQ(a.num_kernel_launches, 2);
}

TEST(CostModel, OperationIntensity) {
  KernelStats s;
  s.useful_flops = 1000;
  s.dram_read_bytes = 400;
  s.dram_write_bytes = 100;
  EXPECT_DOUBLE_EQ(s.OperationIntensity(), 2.0);
}

TEST(Efficiency, AllClassesHaveEntries) {
  for (KernelClass k :
       {KernelClass::kDenseTensorCore, KernelClass::kDenseCudaCore,
        KernelClass::kCsrScalar, KernelClass::kSputnik,
        KernelClass::kBsrTensorCore, KernelClass::kVectorWiseTensorCore,
        KernelClass::kShflBwTensorCore, KernelClass::kBalanced24,
        KernelClass::kVectorSparse, KernelClass::kTilewise}) {
    for (GpuArch a : {GpuArch::kV100, GpuArch::kT4, GpuArch::kA100}) {
      const Efficiency e = EfficiencyFor(k, a);
      EXPECT_GT(e.compute, 0.0);
      EXPECT_LE(e.compute, 1.0);
      EXPECT_GT(e.dram, 0.0);
      EXPECT_LE(e.dram, 1.0);
      EXPECT_GT(e.l2, 0.0);
      EXPECT_LE(e.l2, 1.0);
    }
  }
}

TEST(Efficiency, ShflBwMatchesVectorWise) {
  // §6.2: Shfl-BW is 0.97-1.02x our vector-wise kernel — identical
  // efficiency class; only the row-index metadata differs.
  for (GpuArch a : {GpuArch::kV100, GpuArch::kT4, GpuArch::kA100}) {
    const Efficiency vw = EfficiencyFor(KernelClass::kVectorWiseTensorCore, a);
    const Efficiency sb = EfficiencyFor(KernelClass::kShflBwTensorCore, a);
    EXPECT_DOUBLE_EQ(vw.compute, sb.compute);
    EXPECT_DOUBLE_EQ(vw.dram, sb.dram);
    EXPECT_DOUBLE_EQ(vw.l2, sb.l2);
  }
}

}  // namespace
}  // namespace shflbw
