// Tests for the beyond-NVIDIA extension targets (§7) and the
// multi-stream launch model.
#include <gtest/gtest.h>

#include "arch/cost_model.h"
#include "common/check.h"
#include "kernels/kernel_registry.h"

namespace shflbw {
namespace {

TEST(Extension, AcceleratorsRegistered) {
  ASSERT_EQ(ExtensionAccelerators().size(), 2u);
  EXPECT_EQ(GetGpuSpec(GpuArch::kCdna1).name, "CDNA1");
  EXPECT_EQ(GetGpuSpec(GpuArch::kAmx).name, "AMX");
  EXPECT_EQ(ParseGpuArch("MI100"), GpuArch::kCdna1);
  EXPECT_EQ(ParseGpuArch("amx"), GpuArch::kAmx);
}

TEST(Extension, NotPartOfPaperEvaluationSet) {
  for (const GpuSpec& spec : AllGpus()) {
    EXPECT_NE(spec.arch, GpuArch::kCdna1);
    EXPECT_NE(spec.arch, GpuArch::kAmx);
  }
}

TEST(Extension, EfficiencyFallsBackToV100Column) {
  const Efficiency v100 =
      EfficiencyFor(KernelClass::kShflBwTensorCore, GpuArch::kV100);
  const Efficiency cdna =
      EfficiencyFor(KernelClass::kShflBwTensorCore, GpuArch::kCdna1);
  EXPECT_DOUBLE_EQ(v100.compute, cdna.compute);
  EXPECT_DOUBLE_EQ(v100.dram, cdna.dram);
}

TEST(Extension, ShflBwProjectsSpeedupOnBothTargets) {
  LayerProblem p{4096, 512, 1024, 0.25, 64};
  for (const GpuSpec& spec : ExtensionAccelerators()) {
    const auto s =
        SpeedupOverDense(KernelClass::kShflBwTensorCore, p, spec);
    ASSERT_TRUE(s.has_value()) << spec.name;
    EXPECT_GT(*s, 1.0) << spec.name;
  }
}

TEST(Extension, Balanced24StillA100Only) {
  LayerProblem p{2048, 128, 2048, 0.5, 32};
  EXPECT_FALSE(LayerStats(KernelClass::kBalanced24, p,
                          GetGpuSpec(GpuArch::kCdna1))
                   .has_value());
}

TEST(LaunchModel, MultiStreamOverheadShape) {
  // launches/streams amortization + per-stream sync: more streams help
  // until the sync term dominates.
  const GpuSpec& spec = GetGpuSpec(GpuArch::kV100);
  const CostModel model(spec);
  KernelStats s;
  s.kernel_class = KernelClass::kTilewise;
  s.tensor_core = true;
  s.issued_macs = 1;
  s.dram_read_bytes = 1;
  s.l2_read_bytes = 1;
  s.num_kernel_launches = 64;
  s.num_streams = 8;
  const double t8 = model.Estimate(s).launch_s;
  s.num_streams = 1;
  // Single stream pays all launches serially.
  const double t1 = model.Estimate(s).launch_s;
  EXPECT_LT(t8, t1);
  EXPECT_NEAR(t8, spec.kernel_launch_overhead * (64.0 / 8 + 8), 1e-12);
}

}  // namespace
}  // namespace shflbw
