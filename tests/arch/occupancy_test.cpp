#include "arch/occupancy.h"

#include <gtest/gtest.h>

#include "kernels/gemm_dense.h"

namespace shflbw {
namespace {

const GpuSpec& V100() { return GetGpuSpec(GpuArch::kV100); }

KernelStats ComputeBoundStats(int blocks) {
  KernelStats s;
  s.kernel_class = KernelClass::kDenseTensorCore;
  s.tensor_core = true;
  s.useful_flops = 2e9;
  s.issued_macs = 1e9;
  s.dram_read_bytes = 100;
  s.dram_write_bytes = 10;
  s.l2_read_bytes = 100;
  s.threadblocks = blocks;
  return s;
}

TEST(Occupancy, SingleWaveFullMachine) {
  // 80 SMs x 1 block/SM at 96KB smem and 64KB/block -> 80 concurrent.
  const OccupancyReport r =
      AnalyzeOccupancy(ComputeBoundStats(80), V100());
  EXPECT_EQ(r.blocks_per_sm, 1);
  EXPECT_EQ(r.concurrent_blocks, 80);
  EXPECT_EQ(r.waves, 1);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(Occupancy, TailWaveWastesTime) {
  // 81 blocks -> 2 waves, second wave 1/80 full.
  const OccupancyReport r =
      AnalyzeOccupancy(ComputeBoundStats(81), V100());
  EXPECT_EQ(r.waves, 2);
  EXPECT_NEAR(r.last_wave_fill, 1.0 / 80, 1e-12);
  EXPECT_NEAR(r.utilization, 81.0 / 160, 1e-12);
}

TEST(Occupancy, SmallLaunchUnderutilizes) {
  // The Fig. 1 dense GEMM at M/N = 2048/128 launches only 16 blocks.
  const GpuSpec& spec = V100();
  const KernelStats s = GemmTensorCoreStats(2048, 128, 2048, spec);
  const OccupancyReport r = AnalyzeOccupancy(s, spec);
  EXPECT_LT(r.utilization, 0.5);
}

TEST(Occupancy, AdjustedTimeNeverFaster) {
  const CostModel model(V100());
  for (int blocks : {1, 16, 80, 81, 160, 1000}) {
    const KernelStats s = ComputeBoundStats(blocks);
    EXPECT_GE(EstimateWithOccupancy(model, s).total_s,
              model.Estimate(s).total_s - 1e-15)
        << blocks;
  }
}

TEST(Occupancy, ComputeBoundStretchesByUtilization) {
  const CostModel model(V100());
  const KernelStats s = ComputeBoundStats(40);  // half a wave
  const TimeBreakdown base = model.Estimate(s);
  const TimeBreakdown adj = EstimateWithOccupancy(model, s);
  EXPECT_NEAR(adj.compute_s, base.compute_s * 2.0, 1e-12);
}

TEST(Occupancy, MemoryBoundUnaffected) {
  KernelStats s = ComputeBoundStats(8);
  s.issued_macs = 1;          // compute negligible
  s.dram_read_bytes = 1e9;    // firmly DRAM-bound
  const CostModel model(V100());
  const TimeBreakdown base = model.Estimate(s);
  const TimeBreakdown adj = EstimateWithOccupancy(model, s);
  EXPECT_DOUBLE_EQ(adj.total_s, base.total_s);
  EXPECT_EQ(adj.bound, Bound::kDram);
}

TEST(Occupancy, SmemFootprintLimitsBlocksPerSm) {
  const OccupancyReport tight =
      AnalyzeOccupancy(ComputeBoundStats(200), V100(), 96.0 * 1024);
  const OccupancyReport loose =
      AnalyzeOccupancy(ComputeBoundStats(200), V100(), 24.0 * 1024);
  EXPECT_EQ(tight.blocks_per_sm, 1);
  EXPECT_EQ(loose.blocks_per_sm, 4);
  EXPECT_LE(loose.waves, tight.waves);
}

}  // namespace
}  // namespace shflbw
