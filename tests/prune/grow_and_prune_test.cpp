#include "prune/grow_and_prune.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/importance.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(GrowAndPrune, ScheduleMonotoneAndLandsExactly) {
  const std::vector<double> d = GrowAndPruneDensities(1.0, 0.2, 5);
  ASSERT_EQ(d.size(), 5u);
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_LE(d[i], d[i - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.back(), 0.2);
  EXPECT_LT(d.front(), 1.0);  // prunes from round one
}

TEST(GrowAndPrune, CubicFrontLoaded) {
  // The cubic ramp prunes most of the way in the first half of rounds.
  const std::vector<double> d = GrowAndPruneDensities(1.0, 0.0, 10);
  EXPECT_LT(d[4], 0.15);  // >85% of the way after half the rounds
}

TEST(GrowAndPrune, InvalidScheduleThrows) {
  EXPECT_THROW(GrowAndPruneDensities(0.5, 0.8, 3), Error);
  EXPECT_THROW(GrowAndPruneDensities(1.0, 0.5, 0), Error);
}

TEST(GrowAndPrune, RoundRespectsTargetDensity) {
  Rng rng(229);
  const Matrix<float> scores = MagnitudeScores(rng.NormalMatrix(32, 32));
  const Matrix<float> current = UnstructuredMask(scores, 0.5);
  const auto masker = [](const Matrix<float>& s, double density) {
    return UnstructuredMask(s, density);
  };
  const Matrix<float> next =
      GrowAndPruneRound(scores, current, 0.25, 0.3, masker);
  EXPECT_NEAR(1.0 - Sparsity(next), 0.25, 0.01);
}

TEST(GrowAndPrune, AllowsRecoveryOfStrongPrunedWeights) {
  // A weight pruned by mistake (strong score, currently masked out) must
  // be able to displace a weak kept weight.
  Matrix<float> scores(1, 4, {10, 1, 2, 3});
  Matrix<float> current(1, 4, {0, 1, 1, 1});  // the 10 is pruned
  const auto masker = [](const Matrix<float>& s, double density) {
    return UnstructuredMask(s, density);
  };
  const Matrix<float> next =
      GrowAndPruneRound(scores, current, 0.5, 0.3, masker);
  EXPECT_EQ(next(0, 0), 1.0f);  // recovered
}

TEST(GrowAndPrune, KeepBoostStabilizesMask) {
  // With grow_ratio > 0, a kept weight narrowly ahead of a pruned one
  // stays kept (hysteresis).
  Matrix<float> scores(1, 4, {1.0f, 1.05f, 5, 6});
  Matrix<float> current(1, 4, {1, 0, 1, 1});
  const auto masker = [](const Matrix<float>& s, double density) {
    return UnstructuredMask(s, density);
  };
  const Matrix<float> next =
      GrowAndPruneRound(scores, current, 0.75, 0.3, masker);
  EXPECT_EQ(next(0, 0), 1.0f);  // kept despite slightly lower raw score
}

TEST(GrowAndPrune, FullScheduleWithPatternConstraint) {
  Rng rng(233);
  const Matrix<float> scores = MagnitudeScores(rng.NormalMatrix(64, 64));
  const auto masker = [](const Matrix<float>& s, double density) {
    return VectorWiseMask(s, density, 16);
  };
  const Matrix<float> mask = GrowAndPruneSchedule(scores, 0.25, masker);
  EXPECT_NEAR(1.0 - Sparsity(mask), 0.25, 0.01);
  // Pattern constraint holds on the final mask.
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 64; ++c) {
      float sum = 0;
      for (int r = 0; r < 16; ++r) sum += mask(g * 16 + r, c);
      EXPECT_TRUE(sum == 0.0f || sum == 16.0f);
    }
  }
}

}  // namespace
}  // namespace shflbw
