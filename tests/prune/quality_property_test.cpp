// Property tests of the Table 1 quality ordering over a grid of shapes,
// densities and V — Shfl-BW must dominate vector-wise, which must
// dominate block-wise, on realistically-clustered weights.
#include <tuple>

#include <gtest/gtest.h>

#include "model/weight_synth.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

struct QualityCase {
  int m, k, v;
  double density;
};

class QualityOrdering : public ::testing::TestWithParam<QualityCase> {};

TEST_P(QualityOrdering, ShflBwBetweenUnstructuredAndBlockWise) {
  const QualityCase& c = GetParam();
  SynthWeightOptions opt;
  opt.row_types = 8;
  opt.seed = 3000 + c.m + c.v;
  const Matrix<float> w = SynthesizeWeights(c.m, c.k, opt);
  const Matrix<float> scores = MagnitudeScores(w);

  const double unstructured =
      RetainedScoreRatio(scores, UnstructuredMask(scores, c.density));
  const double shflbw = RetainedScoreRatio(
      scores, ShflBwSearch(scores, c.density, c.v).mask);
  const double vw =
      RetainedScoreRatio(scores, VectorWiseMask(scores, c.density, c.v));
  const double bw =
      RetainedScoreRatio(scores, BlockWiseMask(scores, c.density, c.v));

  // Hard bounds: unstructured is the ceiling; BW is a subset of VW's
  // feasible set.
  EXPECT_GE(unstructured, shflbw - 1e-9);
  EXPECT_GE(vw, bw - 1e-9);
  // The paper's ordering (small slack for the heuristic search).
  EXPECT_GE(shflbw, vw * 0.99)
      << "m=" << c.m << " v=" << c.v << " density=" << c.density;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QualityOrdering,
    ::testing::Values(QualityCase{128, 128, 32, 0.2},
                      QualityCase{128, 128, 32, 0.1},
                      QualityCase{128, 128, 64, 0.2},
                      QualityCase{256, 128, 32, 0.25},
                      QualityCase{256, 192, 64, 0.1},
                      QualityCase{64, 256, 16, 0.2},
                      QualityCase{128, 64, 32, 0.5}));

// Table 1's second observation: Shfl-BW at V=64 can beat plain
// vector-wise at the SMALLER V=32 — the shuffle recovers more than the
// coarser granularity costs.
TEST(QualityOrdering, ShflBwV64VsVectorWiseV32) {
  SynthWeightOptions opt;
  opt.row_types = 8;
  opt.type_strength = 2.5;
  opt.seed = 239;
  const Matrix<float> w = SynthesizeWeights(256, 256, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  const double density = 0.2;
  const double shflbw64 = RetainedScoreRatio(
      scores, ShflBwSearch(scores, density, 64).mask);
  const double vw32 =
      RetainedScoreRatio(scores, VectorWiseMask(scores, density, 32));
  EXPECT_GT(shflbw64, vw32 * 0.98);
}

// Retention degrades monotonically as V grows (for a fixed pattern).
TEST(QualityOrdering, RetentionMonotoneInV) {
  SynthWeightOptions opt;
  opt.seed = 241;
  const Matrix<float> w = SynthesizeWeights(256, 256, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  double prev = 1.0;
  for (int v : {8, 16, 32, 64, 128}) {
    const double r =
        RetainedScoreRatio(scores, VectorWiseMask(scores, 0.25, v));
    EXPECT_LE(r, prev + 0.02) << "v=" << v;
    prev = r;
  }
}

// Retention degrades monotonically with sparsity.
TEST(QualityOrdering, RetentionMonotoneInSparsity) {
  SynthWeightOptions opt;
  opt.seed = 251;
  const Matrix<float> w = SynthesizeWeights(128, 128, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  double prev = 1.0;
  for (double density : {0.5, 0.25, 0.2, 0.15, 0.1, 0.05}) {
    const double r = RetainedScoreRatio(
        scores, ShflBwSearch(scores, density, 32).mask);
    EXPECT_LT(r, prev + 1e-9) << "density=" << density;
    prev = r;
  }
}

}  // namespace
}  // namespace shflbw
