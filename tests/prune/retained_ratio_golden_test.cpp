// Golden-value coverage of RetainedScoreRatio across ALL prune
// families at fixed densities on synthesized weights — the numbers the
// quality-aware planner (src/quality/) ranks candidates by. The golden
// values pin the proxy itself: a change to any pruner, the synthesizer,
// or the ratio computation that shifts quality silently would surface
// here before it silently re-shapes every quality-constrained plan.
// The ordering assertions are the Table 1 reproduction: flexible
// patterns retain the most importance (unstructured > 2:4 > Shfl-BW >=
// vector-wise > block-wise), and the gap widens with sparsity.
#include <gtest/gtest.h>

#include "model/weight_synth.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

constexpr int kM = 128;
constexpr int kK = 128;
constexpr int kV = 32;

Matrix<float> GoldenScores() {
  SynthWeightOptions opt;
  opt.seed = 20260727;
  return MagnitudeScores(SynthesizeWeights(kM, kK, opt));
}

struct GoldenRatios {
  double density;
  double unstructured;
  double shflbw;
  double vw;
  double bsr;
};

// Reference values computed from the committed implementations; the
// tolerance allows only round-off-level drift, not behavioral change.
const GoldenRatios kGolden[] = {
    {0.5, 0.911191540144, 0.644298338709, 0.644298338709, 0.530848715030},
    {0.25, 0.737729294129, 0.520051421449, 0.376594099986, 0.278705158287},
    {0.125, 0.545828132482, 0.303071259155, 0.213347558331, 0.142221773658},
};
constexpr double kBalanced24Golden = 0.834074614209;  // density fixed at 0.5
constexpr double kTol = 1e-9;

TEST(RetainedRatioGolden, AllFamiliesMatchGoldenValues) {
  const Matrix<float> s = GoldenScores();
  for (const GoldenRatios& g : kGolden) {
    EXPECT_NEAR(RetainedScoreRatio(s, UnstructuredMask(s, g.density)),
                g.unstructured, kTol)
        << "unstructured at " << g.density;
    EXPECT_NEAR(RetainedScoreRatio(s, ShflBwSearch(s, g.density, kV).mask),
                g.shflbw, kTol)
        << "shfl-bw at " << g.density;
    EXPECT_NEAR(RetainedScoreRatio(s, VectorWiseMask(s, g.density, kV)),
                g.vw, kTol)
        << "vector-wise at " << g.density;
    EXPECT_NEAR(RetainedScoreRatio(s, BlockWiseMask(s, g.density, kV)),
                g.bsr, kTol)
        << "block-wise at " << g.density;
  }
}

TEST(RetainedRatioGolden, Balanced24MatchesGoldenValue) {
  const Matrix<float> s = GoldenScores();
  EXPECT_NEAR(RetainedScoreRatio(s, Balanced24Mask(s)), kBalanced24Golden,
              kTol);
}

// Table 1's quality ranking at every fixed density: flexibility order
// is unstructured >= Shfl-BW >= vector-wise >= block-wise, strictly
// separated once sparsity bites (density <= 0.25).
TEST(RetainedRatioGolden, Table1OrderingHoldsAtEveryDensity) {
  const Matrix<float> s = GoldenScores();
  for (const GoldenRatios& g : kGolden) {
    const double unstructured =
        RetainedScoreRatio(s, UnstructuredMask(s, g.density));
    const double shflbw =
        RetainedScoreRatio(s, ShflBwSearch(s, g.density, kV).mask);
    const double vw = RetainedScoreRatio(s, VectorWiseMask(s, g.density, kV));
    const double bsr = RetainedScoreRatio(s, BlockWiseMask(s, g.density, kV));
    EXPECT_GE(unstructured, shflbw) << g.density;
    EXPECT_GE(shflbw, vw) << g.density;
    EXPECT_GE(vw, bsr) << g.density;
    if (g.density <= 0.25) {
      EXPECT_GT(shflbw, vw) << g.density;
      EXPECT_GT(vw, bsr) << g.density;
    }
  }
}

// 2:4 sits between unstructured and the vector family at its fixed 0.5
// density — the A100 pattern trades little quality for its speed.
TEST(RetainedRatioGolden, Balanced24BetweenUnstructuredAndVectorWise) {
  const Matrix<float> s = GoldenScores();
  const double unstructured = RetainedScoreRatio(s, UnstructuredMask(s, 0.5));
  const double b24 = RetainedScoreRatio(s, Balanced24Mask(s));
  const double vw = RetainedScoreRatio(s, VectorWiseMask(s, 0.5, kV));
  EXPECT_GT(unstructured, b24);
  EXPECT_GT(b24, vw);
}

}  // namespace
}  // namespace shflbw
