#include "prune/admm.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(Admm, ProjectStepUpdatesDual) {
  Matrix<float> w(1, 4, {1, 2, 3, 4});
  Matrix<float> u(1, 4);
  const auto project = [](const Matrix<float>& m) {
    return PruneUnstructured(m, 0.5);
  };
  const Matrix<float> z = AdmmProjectStep(w, u, project);
  // Projection keeps 3 and 4.
  EXPECT_EQ(z, Matrix<float>(1, 4, {0, 0, 3, 4}));
  // Dual accumulates the infeasibility W - Z.
  EXPECT_EQ(u, Matrix<float>(1, 4, {1, 2, 0, 0}));
}

TEST(Admm, RegularizedResultSatisfiesPattern) {
  Rng rng(211);
  Matrix<float> w = rng.NormalMatrix(32, 32);
  const auto project = [](const Matrix<float>& m) {
    return PruneVectorWise(m, 0.25, 8);
  };
  const Matrix<float> out = AdmmRegularize(w, project);
  // Hard projection at the end: the result is exactly vector-wise.
  EXPECT_NEAR(1.0 - Sparsity(out), 0.25, 0.02);
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 32; ++c) {
      int nz = 0;
      for (int r = 0; r < 8; ++r) {
        if (out(g * 8 + r, c) != 0.0f) ++nz;
      }
      EXPECT_TRUE(nz == 0 || nz == 8) << g << "," << c;
    }
  }
}

TEST(Admm, PullsWeightsTowardProjection) {
  // After regularization, the surviving weights should retain more mass
  // relative to pruned ones than a straight hard prune of the originals:
  // the proximal pull shrinks soon-to-be-pruned weights.
  Rng rng(223);
  Matrix<float> w = rng.NormalMatrix(64, 64);
  const auto project = [](const Matrix<float>& m) {
    return PruneUnstructured(m, 0.25);
  };
  AdmmOptions opts;
  opts.rho = 0.1;
  opts.iterations = 12;
  const Matrix<float> out = AdmmRegularize(w, project, opts);
  EXPECT_NEAR(1.0 - Sparsity(out), 0.25, 0.02);
}

TEST(Admm, ZeroIterationsIsJustProjection) {
  Rng rng(227);
  Matrix<float> w = rng.NormalMatrix(16, 16);
  const auto project = [](const Matrix<float>& m) {
    return PruneUnstructured(m, 0.5);
  };
  AdmmOptions opts;
  opts.iterations = 0;
  EXPECT_EQ(AdmmRegularize(w, project, opts), PruneUnstructured(w, 0.5));
}

TEST(Admm, InvalidRhoThrows) {
  Matrix<float> w(4, 4);
  AdmmOptions opts;
  opts.rho = 0.0;
  EXPECT_THROW(
      AdmmRegularize(w, [](const Matrix<float>& m) { return m; }, opts),
      Error);
}

TEST(Admm, ShapeChangingProjectorRejected) {
  Matrix<float> w(4, 4);
  Matrix<float> u(4, 4);
  EXPECT_THROW(
      AdmmProjectStep(w, u,
                      [](const Matrix<float>&) { return Matrix<float>(2, 2); }),
      Error);
}

}  // namespace
}  // namespace shflbw
