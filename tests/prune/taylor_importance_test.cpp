#include "prune/taylor_importance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "prune/importance.h"
#include "prune/shfl_bw_search.h"
#include "prune/unstructured.h"

namespace shflbw {
namespace {

TEST(TaylorScores, ElementwiseDefinition) {
  Matrix<float> w(1, 3, {2, -3, 0.5f});
  Matrix<float> g(1, 3, {-1, 2, 4});
  EXPECT_EQ(TaylorScores(w, g), Matrix<float>(1, 3, {2, 6, 2}));
}

TEST(TaylorScores, ShapeMismatchThrows) {
  EXPECT_THROW(TaylorScores(Matrix<float>(2, 2), Matrix<float>(2, 3)),
               Error);
}

TEST(TaylorScores, ZeroGradientMeansZeroImportance) {
  // A weight the loss does not depend on gets zero Taylor score even if
  // its magnitude is huge — the key difference from |w| scoring.
  Matrix<float> w(1, 2, {100.0f, 0.01f});
  Matrix<float> g(1, 2, {0.0f, 5.0f});
  const Matrix<float> s = TaylorScores(w, g);
  EXPECT_EQ(s(0, 0), 0.0f);
  EXPECT_GT(s(0, 1), 0.0f);
}

TEST(BlendedScores, EndpointsMatchComponents) {
  Rng rng(761);
  const Matrix<float> w = rng.NormalMatrix(4, 4);
  const Matrix<float> g = rng.NormalMatrix(4, 4);
  // mix=0: proportional to |w|; mix=1: proportional to |w.*g|. The
  // masks they induce must match the pure criteria.
  const Matrix<float> m0 =
      UnstructuredMask(BlendedScores(w, g, 0.0), 0.5);
  const Matrix<float> m0_ref = UnstructuredMask(MagnitudeScores(w), 0.5);
  EXPECT_EQ(m0, m0_ref);
  const Matrix<float> m1 =
      UnstructuredMask(BlendedScores(w, g, 1.0), 0.5);
  const Matrix<float> m1_ref = UnstructuredMask(TaylorScores(w, g), 0.5);
  EXPECT_EQ(m1, m1_ref);
  EXPECT_THROW(BlendedScores(w, g, 1.5), Error);
}

TEST(TaylorScores, PlugsIntoShflBwSearch) {
  // The §5 search is score-agnostic: run it on Taylor scores gathered
  // from a real backward pass.
  Rng rng(769);
  nn::Mlp model({8, 16, 4}, /*seed=*/91);
  const Matrix<float> x = rng.NormalMatrix(8, 12);
  std::vector<int> y(12);
  for (int i = 0; i < 12; ++i) y[i] = i % 4;
  const nn::LossResult lr = nn::SoftmaxCrossEntropy(model.Forward(x), y);
  model.Backward(lr.grad_logits);

  nn::Linear* layer = model.PrunableLayers()[0];
  const Matrix<float> scores =
      TaylorScores(layer->weights(), layer->grad_weights());
  const ShflBwSearchResult r = ShflBwSearch(scores, 0.25, 4);
  EXPECT_NEAR(1.0 - Sparsity(r.mask), 0.25, 0.05);
  // The mask respects the Shfl-BW structure regardless of score source.
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 8; ++c) {
      float sum = 0;
      for (int i = 0; i < 4; ++i) {
        sum += r.mask(r.storage_to_original[g * 4 + i], c);
      }
      EXPECT_TRUE(sum == 0.0f || sum == 4.0f);
    }
  }
}

}  // namespace
}  // namespace shflbw
