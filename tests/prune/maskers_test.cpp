#include <gtest/gtest.h>

#include "common/rng.h"
#include "format/balanced24.h"
#include "format/bsr.h"
#include "prune/balanced24_prune.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(Importance, MagnitudeAndSquared) {
  Matrix<float> w(1, 3, {-2, 0, 3});
  EXPECT_EQ(MagnitudeScores(w), Matrix<float>(1, 3, {2, 0, 3}));
  EXPECT_EQ(SquaredScores(w), Matrix<float>(1, 3, {4, 0, 9}));
}

TEST(Importance, RetainedScoreRatio) {
  Matrix<float> scores(1, 4, {1, 2, 3, 4});
  Matrix<float> mask(1, 4, {0, 1, 0, 1});
  EXPECT_DOUBLE_EQ(RetainedScore(scores, mask), 6.0);
  EXPECT_DOUBLE_EQ(RetainedScoreRatio(scores, mask), 0.6);
}

TEST(Unstructured, KeepsExactCountAndTopScores) {
  Matrix<float> scores(2, 3, {5, 1, 4, 2, 6, 3});
  const Matrix<float> mask = UnstructuredMask(scores, 0.5);
  EXPECT_EQ(CountNonZeros(mask), 3u);
  // Top-3 scores are 6, 5, 4.
  EXPECT_EQ(mask(0, 0), 1.0f);
  EXPECT_EQ(mask(1, 1), 1.0f);
  EXPECT_EQ(mask(0, 2), 1.0f);
}

TEST(Unstructured, ExtremeDensities) {
  Matrix<float> scores(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(CountNonZeros(UnstructuredMask(scores, 0.0)), 0u);
  EXPECT_EQ(CountNonZeros(UnstructuredMask(scores, 1.0)), 4u);
  EXPECT_THROW(UnstructuredMask(scores, 1.5), Error);
}

TEST(Unstructured, DeterministicOnTies) {
  Matrix<float> scores(1, 4, {1, 1, 1, 1});
  const Matrix<float> a = UnstructuredMask(scores, 0.5);
  const Matrix<float> b = UnstructuredMask(scores, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(CountNonZeros(a), 2u);
}

TEST(BlockWise, ResultIsBlockAligned) {
  Rng rng(139);
  const Matrix<float> w = rng.UniformMatrix(64, 64, 0.1f, 1.0f);
  const Matrix<float> pruned = PruneBlockWise(w, 0.25, 16);
  EXPECT_TRUE(IsBlockAligned(pruned, 16));
  EXPECT_NEAR(1.0 - Sparsity(pruned), 0.25, 1e-9);
}

TEST(BlockWise, KeepsHighestScoringBlocks) {
  Matrix<float> scores(4, 4);
  // Block (1,1) has the mass.
  for (int r = 2; r < 4; ++r) {
    for (int c = 2; c < 4; ++c) scores(r, c) = 10;
  }
  const Matrix<float> mask = BlockWiseMask(scores, 0.25, 2);
  for (int r = 2; r < 4; ++r) {
    for (int c = 2; c < 4; ++c) EXPECT_EQ(mask(r, c), 1.0f);
  }
  EXPECT_EQ(CountNonZeros(mask), 4u);
}

TEST(BlockWise, ShapeValidation) {
  EXPECT_THROW(BlockWiseMask(Matrix<float>(6, 8), 0.5, 4), Error);
}

TEST(VectorWise, KeepsWholeVectors) {
  Rng rng(149);
  const Matrix<float> w = rng.UniformMatrix(32, 32, 0.1f, 1.0f);
  const Matrix<float> mask =
      VectorWiseMask(MagnitudeScores(w), 0.25, 8);
  // Every kept column within a group is fully kept.
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 32; ++c) {
      float sum = 0;
      for (int r = 0; r < 8; ++r) sum += mask(g * 8 + r, c);
      EXPECT_TRUE(sum == 0.0f || sum == 8.0f)
          << "group " << g << " col " << c;
    }
  }
  EXPECT_NEAR(1.0 - Sparsity(mask), 0.25, 1e-9);
}

TEST(VectorWise, GlobalSelectionAcrossGroups) {
  // One group has all the mass: at 50% density it should keep (nearly)
  // all its vectors while the weak group keeps (nearly) none.
  Matrix<float> scores(4, 4);
  for (int c = 0; c < 4; ++c) {
    scores(0, c) = scores(1, c) = 100;  // group 0 rows
    scores(2, c) = scores(3, c) = 0.01f;
  }
  const Matrix<float> mask = VectorWiseMask(scores, 0.5, 2);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(mask(0, c), 1.0f);
    EXPECT_EQ(mask(2, c), 0.0f);
  }
}

TEST(Balanced24Prune, SatisfiesConstraintAndKeepsTop2) {
  Matrix<float> w(1, 4, {0.1f, -5, 3, 0.2f});
  const Matrix<float> pruned = PruneBalanced24(w);
  EXPECT_TRUE(Satisfies24(pruned));
  EXPECT_EQ(pruned(0, 1), -5.0f);
  EXPECT_EQ(pruned(0, 2), 3.0f);
  EXPECT_EQ(pruned(0, 0), 0.0f);
  EXPECT_EQ(pruned(0, 3), 0.0f);
}

TEST(Balanced24Prune, ExactlyHalfDensity) {
  Rng rng(151);
  const Matrix<float> w = rng.UniformMatrix(16, 32, 0.1f, 1.0f);
  EXPECT_DOUBLE_EQ(Sparsity(PruneBalanced24(w)), 0.5);
}

// Retained-score dominance: looser structure always retains at least as
// much importance (the Fig. 3 flexibility ordering, measured).
TEST(MaskerProperty, RetentionOrderingUnstructuredVsStructured) {
  Rng rng(157);
  const Matrix<float> scores =
      MagnitudeScores(rng.NormalMatrix(128, 128));
  // Densities chosen so the kept-weight budgets of the three
  // granularities round to exactly the same count (otherwise the
  // comparison is between different budgets, not different patterns).
  for (double density : {0.5, 0.25, 0.125}) {
    const double unstructured = RetainedScoreRatio(
        scores, UnstructuredMask(scores, density));
    const double vw =
        RetainedScoreRatio(scores, VectorWiseMask(scores, density, 32));
    const double bw =
        RetainedScoreRatio(scores, BlockWiseMask(scores, density, 32));
    EXPECT_GE(unstructured, vw) << density;
    EXPECT_GE(vw, bw) << density;
  }
}

}  // namespace
}  // namespace shflbw
