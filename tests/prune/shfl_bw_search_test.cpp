#include "prune/shfl_bw_search.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/weight_synth.h"
#include "prune/block_wise.h"
#include "prune/importance.h"
#include "prune/unstructured.h"
#include "prune/vector_wise_prune.h"

namespace shflbw {
namespace {

TEST(ShflBwSearch, MaskHasTargetDensity) {
  Rng rng(179);
  const Matrix<float> scores = MagnitudeScores(rng.NormalMatrix(64, 64));
  for (double density : {0.5, 0.25, 0.1}) {
    const ShflBwSearchResult r = ShflBwSearch(scores, density, 16);
    EXPECT_NEAR(1.0 - Sparsity(r.mask), density, 0.02) << density;
  }
}

TEST(ShflBwSearch, MaskIsVectorWiseUnderDiscoveredPermutation) {
  Rng rng(181);
  const Matrix<float> scores = MagnitudeScores(rng.NormalMatrix(32, 32));
  const ShflBwSearchResult r = ShflBwSearch(scores, 0.25, 8);
  // Permute the mask rows by the discovered permutation: every group of
  // 8 rows must share an identical pattern.
  for (int g = 0; g < 4; ++g) {
    for (int c = 0; c < 32; ++c) {
      float sum = 0;
      for (int i = 0; i < 8; ++i) {
        sum += r.mask(r.storage_to_original[g * 8 + i], c);
      }
      EXPECT_TRUE(sum == 0.0f || sum == 8.0f)
          << "group " << g << " col " << c;
    }
  }
}

TEST(ShflBwSearch, RecoversPlantedRowTypes) {
  // Weights with strong latent row types: the search should retain
  // nearly as much importance as unstructured pruning.
  SynthWeightOptions opt;
  opt.row_types = 4;
  opt.type_strength = 5.0;
  opt.noise = 0.05;
  opt.seed = 77;
  const Matrix<float> w = SynthesizeWeights(64, 64, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  const double density = 0.25;
  const ShflBwSearchResult r = ShflBwSearch(scores, density, 16);
  const double shflbw_ratio = RetainedScoreRatio(scores, r.mask);
  const double unstructured_ratio =
      RetainedScoreRatio(scores, UnstructuredMask(scores, density));
  EXPECT_GT(shflbw_ratio, 0.80 * unstructured_ratio);
}

TEST(ShflBwSearch, BeatsVectorWiseOnClusteredWeights) {
  // Table 1's mechanism: with scattered row clusters, the shuffle finds
  // groupings contiguous vector-wise cannot.
  SynthWeightOptions opt;
  opt.row_types = 8;
  opt.type_strength = 3.0;
  opt.noise = 0.3;
  opt.seed = 191;
  const Matrix<float> w = SynthesizeWeights(128, 128, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  for (double density : {0.2, 0.1}) {
    const double shflbw = RetainedScoreRatio(
        scores, ShflBwSearch(scores, density, 32).mask);
    const double vw =
        RetainedScoreRatio(scores, VectorWiseMask(scores, density, 32));
    const double bw =
        RetainedScoreRatio(scores, BlockWiseMask(scores, density, 32));
    EXPECT_GT(shflbw, vw) << "density=" << density;
    EXPECT_GT(vw, bw) << "density=" << density;
  }
}

TEST(ShflBwSearch, BetaRatioKnobStaysInBand) {
  // §5 prefers beta = 2*alpha; that preference comes from training
  // dynamics (the looser mask leaves room for fine-tuning recovery),
  // which the static retained-score proxy cannot capture — on frozen
  // scores, clustering on the exact target mask (beta = alpha) is
  // trivially better aligned. What must hold is that the knob is mild:
  // both settings retain similar importance, and both beat plain
  // vector-wise grouping.
  SynthWeightOptions opt;
  opt.row_types = 8;
  opt.seed = 193;
  const Matrix<float> w = SynthesizeWeights(128, 128, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  ShflBwSearchOptions beta1;
  beta1.beta_ratio = 1.0;
  ShflBwSearchOptions beta2;
  beta2.beta_ratio = 2.0;
  const double r1 = RetainedScoreRatio(
      scores, ShflBwSearch(scores, 0.15, 32, beta1).mask);
  const double r2 = RetainedScoreRatio(
      scores, ShflBwSearch(scores, 0.15, 32, beta2).mask);
  EXPECT_GE(r2, r1 * 0.90);
  EXPECT_GE(r1, r2 * 0.90);
  const double vw =
      RetainedScoreRatio(scores, VectorWiseMask(scores, 0.15, 32));
  EXPECT_GT(r1, vw);
  EXPECT_GT(r2, vw);
}

TEST(ShflBwSearch, PruneToShflBwAppliesMask) {
  Rng rng(197);
  const Matrix<float> w = rng.NormalMatrix(32, 32);
  const ShflBwMatrix m = PruneToShflBw(w, 0.25, 8);
  const Matrix<float> back = m.ToDense();
  // Every surviving value matches the original weight.
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      if (back(r, c) != 0.0f) {
        EXPECT_EQ(back(r, c), w(r, c));
      }
    }
  }
  EXPECT_NEAR(1.0 - Sparsity(back), 0.25, 0.03);
}

TEST(ShflBwSearch, InvalidArgsThrow) {
  Matrix<float> scores(32, 32);
  EXPECT_THROW(ShflBwSearch(scores, 0.0, 8), Error);
  EXPECT_THROW(ShflBwSearch(scores, 0.5, 5), Error);  // 32 % 5 != 0
}

class SearchDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(SearchDensitySweep, ShflBwAtLeastMatchesVectorWise) {
  // Property: the shuffle search never does worse than contiguous
  // grouping on clustered weights (it can always fall back to it).
  SynthWeightOptions opt;
  opt.seed = 199;
  const Matrix<float> w = SynthesizeWeights(128, 96, opt);
  const Matrix<float> scores = MagnitudeScores(w);
  const double density = GetParam();
  const double shflbw =
      RetainedScoreRatio(scores, ShflBwSearch(scores, density, 32).mask);
  const double vw =
      RetainedScoreRatio(scores, VectorWiseMask(scores, density, 32));
  EXPECT_GE(shflbw, vw * 0.98) << "density=" << density;
}

INSTANTIATE_TEST_SUITE_P(Densities, SearchDensitySweep,
                         ::testing::Values(0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                                           0.5));

}  // namespace
}  // namespace shflbw
